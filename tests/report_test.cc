// Tests for the workload characterization / energy report.

#include <sstream>

#include <gtest/gtest.h>

#include "core/attention.h"
#include "gpusim/device.h"
#include "gpusim/report.h"
#include "patterns/presets.h"

namespace multigrain::sim {
namespace {

TbShape
shape()
{
    TbShape s;
    s.threads = 256;
    s.regs_per_thread = 32;
    return s;
}

TEST(ReportTest, ComputeBoundKernelClassifiedTensor)
{
    GpuSim sim(DeviceSpec::a100());
    KernelLaunch k;
    k.name = "gemm";
    k.shape = shape();
    TbWork w;
    w.tensor_flops = 1e9;
    w.dram_read_bytes = 1e3;  // Negligible memory.
    k.add_tb(w, 2000);
    sim.launch(0, std::move(k));
    const SimResult r = sim.run();
    const WorkloadReport report = characterize(r, DeviceSpec::a100());
    ASSERT_EQ(report.kernels.size(), 1u);
    EXPECT_EQ(report.kernels[0].bound, Bound::kTensor);
    // Prologues and the admission ramp cost a few percent of the span.
    EXPECT_GT(report.kernels[0].tensor_util, 0.7);
    EXPECT_GT(report.kernels[0].arithmetic_intensity, 1e5);
}

TEST(ReportTest, StreamKernelClassifiedDram)
{
    GpuSim sim(DeviceSpec::a100());
    KernelLaunch k;
    k.name = "stream";
    k.shape = shape();
    TbWork w;
    w.dram_read_bytes = 2e6;
    w.dram_write_bytes = 2e6;
    w.cuda_flops = 10;
    k.add_tb(w, 2000);
    sim.launch(0, std::move(k));
    const WorkloadReport report =
        characterize(sim.run(), DeviceSpec::a100());
    EXPECT_EQ(report.kernels[0].bound, Bound::kDram);
    EXPECT_GT(report.kernels[0].dram_util, 0.7);
    EXPECT_LT(report.kernels[0].arithmetic_intensity, 0.01);
}

TEST(ReportTest, TinyKernelIsLatencyBound)
{
    GpuSim sim(DeviceSpec::a100());
    KernelLaunch k;
    k.name = "tiny";
    k.shape = shape();
    TbWork w;
    w.cuda_flops = 100;
    k.add_tb(w, 1);
    sim.launch(0, std::move(k));
    const WorkloadReport report =
        characterize(sim.run(), DeviceSpec::a100());
    EXPECT_EQ(report.kernels[0].bound, Bound::kLatency);
}

TEST(ReportTest, EnergyScalesWithWork)
{
    const auto run = [](double scale) {
        GpuSim sim(DeviceSpec::a100());
        KernelLaunch k;
        k.name = "k";
        k.shape = shape();
        TbWork w;
        w.tensor_flops = 1e8 * scale;
        w.dram_read_bytes = 1e6 * scale;
        k.add_tb(w, 500);
        sim.launch(0, std::move(k));
        return characterize(sim.run(), DeviceSpec::a100());
    };
    const WorkloadReport small = run(1.0);
    const WorkloadReport big = run(2.0);
    EXPECT_NEAR(big.dynamic_j, 2.0 * small.dynamic_j,
                0.01 * big.dynamic_j);
    EXPECT_GT(big.static_j, small.static_j);  // Longer makespan.
    EXPECT_GT(small.average_watts(), 90.0);   // Above idle.
    EXPECT_LT(small.average_watts(), 500.0);  // Below any sane TDP.
}

TEST(ReportTest, EnergyMatchesClosedForm)
{
    const DeviceSpec d = DeviceSpec::a100();
    GpuSim sim(d);
    KernelLaunch k;
    k.name = "k";
    k.shape = shape();
    TbWork w;
    w.tensor_flops = 1e7;
    w.cuda_flops = 2e6;
    w.dram_read_bytes = 3e5;
    w.dram_write_bytes = 1e5;
    w.l2_bytes = 5e5;
    k.add_tb(w, 10);
    sim.launch(0, std::move(k));
    const WorkloadReport report = characterize(sim.run(), d);
    const double expected =
        (1e7 * 10 * d.pj_per_tensor_flop + 2e6 * 10 * d.pj_per_cuda_flop +
         4e5 * 10 * d.pj_per_dram_byte + 5e5 * 10 * d.pj_per_l2_byte) *
        1e-12;
    EXPECT_NEAR(report.dynamic_j, expected, 1e-12);
}

TEST(ReportTest, MultigrainUsesLessEnergyThanTriton)
{
    // Fewer stored elements -> less traffic and compute -> less energy.
    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 4;
    const CompoundPattern p = preset_local_selected(2048, 0.05, 3);
    const auto energy = [&](SliceMode mode) {
        const AttentionEngine engine(p, config, mode);
        return characterize(engine.simulate(DeviceSpec::a100()),
                            DeviceSpec::a100())
            .total_j();
    };
    EXPECT_LT(energy(SliceMode::kMultigrain),
              energy(SliceMode::kCoarseOnly));
}

TEST(ReportTest, PrintsTableWithTotals)
{
    GpuSim sim(DeviceSpec::a100());
    KernelLaunch k;
    k.name = "my_kernel";
    k.shape = shape();
    TbWork w;
    w.cuda_flops = 1e7;
    k.add_tb(w, 100);
    sim.launch(0, std::move(k));
    const WorkloadReport report =
        characterize(sim.run(), DeviceSpec::a100());
    std::ostringstream os;
    print_report(report, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("my_kernel"), std::string::npos);
    EXPECT_NE(text.find("bound"), std::string::npos);
    EXPECT_NE(text.find("energy"), std::string::npos);
}

}  // namespace
}  // namespace multigrain::sim
