// Tests for the slice-and-dice classifier (paper §3.1): the partition
// property (coarse ⊎ fine ⊎ special == full pattern, no double coverage),
// mode behaviour, overlap invalidation, and the global-routing ablation.

#include <cctype>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/error.h"
#include "formats/convert.h"
#include "patterns/presets.h"
#include "patterns/slice.h"

namespace multigrain {
namespace {

CompoundPattern
longformer_like(index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(8));
    p.atoms.push_back(AtomicPattern::selected({0, 5, seq / 2, seq - 3}));
    p.atoms.push_back(AtomicPattern::global({0, 5, seq / 2, seq - 3}));
    return p;
}

TEST(SliceTest, MultigrainSplitsIntoThreeParts)
{
    const SlicePlan plan =
        slice_and_dice(longformer_like(128), {.block = 16});
    EXPECT_TRUE(plan.has_coarse());
    EXPECT_TRUE(plan.has_fine());
    EXPECT_TRUE(plan.has_special());
    EXPECT_EQ(plan.global_rows.size(), 4u);
    plan.validate_partition();
}

TEST(SliceTest, CoarseOnlyBlockifiesEverything)
{
    SliceOptions options;
    options.block = 16;
    options.mode = SliceMode::kCoarseOnly;
    const SlicePlan plan = slice_and_dice(longformer_like(128), options);
    EXPECT_TRUE(plan.has_coarse());
    EXPECT_FALSE(plan.has_fine());
    EXPECT_FALSE(plan.has_special());
    // Every valid element of the full pattern is stored in some block.
    EXPECT_EQ(plan.coarse->total_valid(), plan.full->nnz());
    plan.validate_partition();
}

TEST(SliceTest, FineOnlyKeepsFullLayout)
{
    SliceOptions options;
    options.block = 16;
    options.mode = SliceMode::kFineOnly;
    const SlicePlan plan = slice_and_dice(longformer_like(128), options);
    EXPECT_FALSE(plan.has_coarse());
    EXPECT_TRUE(plan.has_fine());
    EXPECT_FALSE(plan.has_special());
    EXPECT_EQ(plan.fine->nnz(), plan.full->nnz());
    plan.validate_partition();
}

TEST(SliceTest, OverlapBetweenCoarseAndFineInvalidated)
{
    // Selected tokens inside the local band: the fine part must not
    // duplicate elements the coarse band already owns (§3.3).
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::local(4));
    p.atoms.push_back(
        AtomicPattern::selected({10, 11, 12}));  // Near the diagonal.
    const SlicePlan plan = slice_and_dice(p, {.block = 16});
    plan.validate_partition();
    // Row 10 attends column 10 via both atoms; only the coarse part may
    // keep it, so the fine row 10 must not contain column 10.
    if (plan.has_fine()) {
        for (index_t i = plan.fine->row_offsets[10];
             i < plan.fine->row_offsets[11]; ++i) {
            EXPECT_NE(plan.fine->col_indices[static_cast<std::size_t>(i)],
                      10);
        }
    }
}

TEST(SliceTest, GlobalRowsCarvedOutOfOtherParts)
{
    const SlicePlan plan =
        slice_and_dice(longformer_like(128), {.block = 16});
    const CsrLayout coarse_csr = csr_from_bsr(*plan.coarse);
    for (const index_t g : plan.global_rows) {
        EXPECT_EQ(coarse_csr.row_nnz(g), 0) << "global row " << g;
        EXPECT_EQ(plan.fine->row_nnz(g), 0) << "global row " << g;
    }
}

TEST(SliceTest, GlobalRoutingAblationKeepsGlobalsFine)
{
    SliceOptions options;
    options.block = 16;
    options.route_global_to_dense = false;
    const SlicePlan plan = slice_and_dice(longformer_like(128), options);
    EXPECT_FALSE(plan.has_special());
    // Global row 0 is dense across coarse + fine (overlap invalidation
    // leaves the band elements with the coarse part).
    const CsrLayout coarse_csr = csr_from_bsr(*plan.coarse);
    EXPECT_EQ(plan.fine->row_nnz(0) + coarse_csr.row_nnz(0), 128);
    EXPECT_GT(plan.fine->row_nnz(0), 100);  // Most of the row stays fine.
    plan.validate_partition();
}

TEST(SliceTest, PureCoarsePatternHasNoFinePart)
{
    CompoundPattern p;
    p.seq_len = 128;
    p.atoms.push_back(AtomicPattern::local(8));
    const SlicePlan plan = slice_and_dice(p, {.block = 16});
    EXPECT_TRUE(plan.has_coarse());
    EXPECT_FALSE(plan.has_fine());
    EXPECT_FALSE(plan.has_special());
    plan.validate_partition();
}

TEST(SliceTest, PureFinePatternHasNoCoarsePart)
{
    CompoundPattern p;
    p.seq_len = 128;
    p.atoms.push_back(AtomicPattern::random(6, 3));
    const SlicePlan plan = slice_and_dice(p, {.block = 16});
    EXPECT_FALSE(plan.has_coarse());
    EXPECT_TRUE(plan.has_fine());
    plan.validate_partition();
}

TEST(SliceTest, ZeroPaddingPropagatesToParts)
{
    CompoundPattern p = longformer_like(128);
    p.valid_len = 100;
    const SlicePlan plan = slice_and_dice(p, {.block = 16});
    EXPECT_EQ(plan.valid_len, 100);
    plan.validate_partition();
    // Padded rows are empty in every part.
    const CsrLayout coarse_csr = csr_from_bsr(*plan.coarse);
    for (index_t r = 100; r < 128; ++r) {
        EXPECT_EQ(coarse_csr.row_nnz(r), 0);
        EXPECT_EQ(plan.fine->row_nnz(r), 0);
    }
    // Global tokens beyond valid_len are dropped.
    for (const index_t g : plan.global_rows) {
        EXPECT_LT(g, 100);
    }
}

TEST(SliceTest, SeqLenMustBeBlockMultiple)
{
    CompoundPattern p;
    p.seq_len = 100;
    p.atoms.push_back(AtomicPattern::local(4));
    EXPECT_THROW(slice_and_dice(p, {.block = 16}), Error);
}

TEST(SliceTest, ElementCountsAreConsistent)
{
    const SlicePlan plan =
        slice_and_dice(longformer_like(128), {.block = 16});
    EXPECT_EQ(plan.coarse_valid_elements() + plan.fine_elements() +
                  plan.special_elements(),
              plan.full->nnz());
    EXPECT_GE(plan.coarse_stored_elements(), plan.coarse_valid_elements());
}

// Partition property across every evaluation preset and mode.
class SlicePartitionTest
    : public ::testing::TestWithParam<std::tuple<int, SliceMode>> {};

TEST_P(SlicePartitionTest, PartitionExact)
{
    const auto [pattern_idx, mode] = GetParam();
    const auto patterns = fig9_patterns(256, 0.08, 17);
    SliceOptions options;
    options.block = 64;
    options.mode = mode;
    const SlicePlan plan =
        slice_and_dice(patterns[static_cast<std::size_t>(pattern_idx)]
                           .pattern,
                       options);
    plan.validate_partition();
    EXPECT_EQ(plan.coarse_valid_elements() + plan.fine_elements() +
                  plan.special_elements(),
              plan.full->nnz());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresetsAllModes, SlicePartitionTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(SliceMode::kMultigrain,
                                         SliceMode::kCoarseOnly,
                                         SliceMode::kFineOnly)),
    [](const ::testing::TestParamInfo<std::tuple<int, SliceMode>> &info) {
        const auto patterns = fig9_patterns(256, 0.08, 17);
        std::string name =
            patterns[static_cast<std::size_t>(std::get<0>(info.param))]
                .label +
            std::string("_") + to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

}  // namespace
}  // namespace multigrain
