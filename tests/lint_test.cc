// mglint analyzer tests. The load-bearing pair of properties:
//
//  * Sensitivity: seeding a missing-edge hazard into an otherwise-correct
//    captured plan (dropping one dep via the test hook) is detected, with
//    the right endpoints, the right buffer, and a witness chain proving
//    both kernels can be in flight at once.
//  * Specificity: every plan the engines and the runner actually ship —
//    all models x devices x slice modes, forward and backward, per-phase
//    and composed per-layer — lints clean with zero hazards.
//
// Plus unit coverage for each lint kind over hand-built graphs, the
// buffer interner/namespacing, the strengthened validate(), and the
// capture-time enforcement that keeps a racy plan out of the PlanCache.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/attention.h"
#include "core/launch_graph.h"
#include "core/lint.h"
#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "patterns/slice.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

sim::KernelLaunch
toy_launch(const std::string &name)
{
    sim::KernelLaunch launch;
    launch.name = name;
    sim::TbWork work;
    work.cuda_flops = 1024;
    work.dram_read_bytes = 1024;
    launch.add_tb(work, 4);
    return launch;
}

/// Ensures capture-time enforcement stays off for tests that lint
/// explicitly (release builds default off, debug builds default on).
struct ScopedLintEnv {
    explicit ScopedLintEnv(const char *value)
    {
        if (value == nullptr) {
            unsetenv("MULTIGRAIN_LINT");
        } else {
            setenv("MULTIGRAIN_LINT", value, 1);
        }
    }
    ~ScopedLintEnv() { unsetenv("MULTIGRAIN_LINT"); }
};

int
find_node(const LaunchGraph &graph, const std::string &name)
{
    for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
        if (graph.nodes()[i].launch.name == name) {
            return static_cast<int>(i);
        }
    }
    ADD_FAILURE() << "no node named " << name;
    return -1;
}

bool
has_dep(const LaunchGraph &graph, int node, int dep)
{
    const std::vector<int> &deps =
        graph.nodes()[static_cast<std::size_t>(node)].deps;
    return std::find(deps.begin(), deps.end(), dep) != deps.end();
}

/// The witness contract: oldest-first, consecutive elements connected by
/// real dep edges, ending at the endpoint, never passing through the
/// other endpoint.
void
check_witness(const LaunchGraph &graph, const std::vector<int> &chain,
              int endpoint, int other)
{
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back(), endpoint);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        EXPECT_TRUE(has_dep(graph, chain[i + 1], chain[i]))
            << chain[i] << " -> " << chain[i + 1] << " is not an edge";
    }
    EXPECT_EQ(std::find(chain.begin(), chain.end(), other), chain.end())
        << "witness for node " << endpoint
        << " passes through the other endpoint " << other;
}

LaunchGraph
tiny_forward_graph(const sim::DeviceSpec &device)
{
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(2022);
    const WorkloadSample sample = sample_for_model(rng, model);
    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);
    // Copy out of the cache: the tests below mutate the graph.
    return runner.attention().forward_graphs(device)->forward;
}

// ---------------------------------------------------------------------------
// Sensitivity: seeded missing-edge hazards are caught with correct witness.

TEST(LintHazards, DroppedSoftmaxToSpmmEdgeIsRawHazard)
{
    const ScopedLintEnv env("0");
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    LaunchGraph graph = tiny_forward_graph(device);
    EXPECT_TRUE(lint_graph(graph).clean());

    // spmm.fine reads the compound scores softmax.compound rewrote; the
    // join barrier between the phases carries that edge. Drop it.
    const int softmax = find_node(graph, "softmax.compound");
    const int spmm = find_node(graph, "spmm.fine");
    graph.drop_dep_for_test(spmm, softmax);

    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.hazards(), 1u);
    const LintFinding &f = report.findings.front();
    EXPECT_EQ(f.kind, LintKind::kRawHazard);
    EXPECT_EQ(f.severity, LintSeverity::kError);
    EXPECT_EQ(f.node_a, softmax);
    EXPECT_EQ(f.node_b, spmm);
    EXPECT_EQ(f.buffer, "%s.fine");
    check_witness(graph, f.witness_a, softmax, spmm);
    check_witness(graph, f.witness_b, spmm, softmax);
    EXPECT_NE(f.message.find("softmax.compound"), std::string::npos);
    EXPECT_NE(f.message.find("spmm.fine"), std::string::npos);
}

TEST(LintHazards, DroppedSddmmToSoftmaxEdgeIsHazard)
{
    const ScopedLintEnv env("0");
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    LaunchGraph graph = tiny_forward_graph(device);

    // The paper-critical cross-stream edge: the fine SDDMM feeds the
    // compound softmax on the coarse stream. softmax.compound rewrites
    // the scores in place, so the dropped edge surfaces as a
    // write-after-write on the fine score buffer.
    const int sddmm = find_node(graph, "sddmm.fine");
    const int softmax = find_node(graph, "softmax.compound");
    graph.drop_dep_for_test(softmax, sddmm);

    const LintReport report = lint_graph(graph);
    ASSERT_GE(report.hazards(), 1u);
    const LintFinding &f = report.findings.front();
    EXPECT_TRUE(is_hazard(f.kind));
    EXPECT_EQ(f.node_a, sddmm);
    EXPECT_EQ(f.node_b, softmax);
    EXPECT_EQ(f.buffer, "%s.fine");
    check_witness(graph, f.witness_a, sddmm, softmax);
    check_witness(graph, f.witness_b, softmax, sddmm);
}

// ---------------------------------------------------------------------------
// Specificity: every shipped preset plan lints clean, and every shipped
// kernel is annotated.

TEST(LintPresets, AllPresetPlansAreHazardFree)
{
    const ScopedLintEnv env("0");
    const char *models[] = {"longformer", "qds", "bigbird",
                            "poolingformer", "tiny"};
    const char *devices[] = {"a100", "rtx3090"};
    const char *modes[] = {"multigrain", "coarse-only", "fine-only",
                           "dense"};
    for (const char *model_name : models) {
        for (const char *device_name : devices) {
            for (const char *mode_name : modes) {
                SCOPED_TRACE(std::string(model_name) + "|" + device_name +
                             "|" + mode_name);
                const ModelConfig model = model_config_by_name(model_name);
                const sim::DeviceSpec device =
                    sim::device_spec_by_name(device_name);
                Rng rng(2022);
                const WorkloadSample sample = sample_for_model(rng, model);
                const TransformerRunner runner(
                    model, slice_mode_by_name(mode_name), sample, 1);

                LintOptions options;
                options.device = &device;
                const auto graphs =
                    runner.attention().forward_graphs(device);
                const auto check = [&](const LaunchGraph &graph,
                                       const char *what) {
                    SCOPED_TRACE(what);
                    const LintReport report = lint_graph(graph, options);
                    EXPECT_EQ(report.hazards(), 0u) << report.summary();
                    // The shipped kernels never silently clamp occupancy
                    // and always carve into mgprof phases.
                    for (const LintFinding &f : report.findings) {
                        EXPECT_NE(f.kind, LintKind::kOccupancyClamp)
                            << f.message;
                        EXPECT_NE(f.kind, LintKind::kPhaseName)
                            << f.message;
                        EXPECT_NE(f.kind, LintKind::kEmptyKernel)
                            << f.message;
                    }
                    // Dataflow annotation coverage: every kernel family
                    // declares what it touches.
                    for (const LaunchGraphNode &node : graph.nodes()) {
                        EXPECT_FALSE(node.launch.reads.empty() &&
                                     node.launch.writes.empty() &&
                                     node.launch.accums.empty())
                            << node.launch.name << " is unannotated";
                    }
                };
                check(graphs->sddmm, "engine.sddmm");
                check(graphs->softmax, "engine.softmax");
                check(graphs->spmm, "engine.spmm");
                check(graphs->forward, "engine.forward");
                check(*runner.attention().backward_graph(device),
                      "engine.backward");
                check(*runner.layer_graph(
                          device, TransformerRunner::LayerKind::kInference),
                      "layer.infer");
                check(*runner.layer_graph(
                          device,
                          TransformerRunner::LayerKind::kTrainForward),
                      "layer.train_fwd");
                check(*runner.layer_graph(
                          device,
                          TransformerRunner::LayerKind::kTrainBackward),
                      "layer.train_bwd");
            }
        }
        // Bound the process-wide cache across the matrix sweep.
        PlanCache::instance().clear();
    }
}

TEST(LintPresets, HeterogeneousBatchEnginesDoNotAliasIntermediates)
{
    const ScopedLintEnv env("0");
    const ModelConfig model = ModelConfig::tiny_test();
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    Rng rng(7);
    std::vector<WorkloadSample> samples;
    samples.push_back(sample_for_model(rng, model));
    samples.push_back(sample_for_model(rng, model));
    samples.push_back(sample_for_model(rng, model));
    const TransformerRunner runner(model, SliceMode::kMultigrain, samples);

    LintOptions options;
    options.device = &device;
    for (const TransformerRunner::LayerKind kind :
         {TransformerRunner::LayerKind::kInference,
          TransformerRunner::LayerKind::kTrainForward,
          TransformerRunner::LayerKind::kTrainBackward}) {
        const LintReport report =
            lint_graph(*runner.layer_graph(device, kind), options);
        EXPECT_EQ(report.hazards(), 0u) << report.summary();
    }
}

// ---------------------------------------------------------------------------
// Hazard classification over hand-built graphs.

TEST(LintKinds, UnorderedWriteThenReadIsRaw)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {}, {"t"}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {"t"}, {}));
    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.hazards(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kRawHazard);
    EXPECT_EQ(report.findings.front().buffer, "t");
}

TEST(LintKinds, UnorderedReadThenWriteIsWar)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {"t"}, {}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {}, {"t"}));
    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.hazards(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kWarHazard);
}

TEST(LintKinds, UnorderedWritesAreWaw)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {}, {"t"}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {}, {"t"}));
    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.hazards(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kWawHazard);
}

TEST(LintKinds, ConcurrentAccumulationCommutes)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("spmm.a"), {}, {}, {"o"}));
    graph.launch(s1, sim::annotate(toy_launch("spmm.b"), {}, {}, {"o"}));
    EXPECT_TRUE(lint_graph(graph).clean());
}

TEST(LintKinds, ConcurrentReadsAreFine)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {"q"}, {"x"}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {"q"}, {"y"}));
    EXPECT_TRUE(lint_graph(graph).clean());
}

TEST(LintKinds, StreamOrderAndJoinBarriersEstablishHappensBefore)
{
    {
        // Same stream: ordered by stream order.
        LaunchGraph graph;
        graph.launch(0, sim::annotate(toy_launch("gemm.a"), {}, {"t"}));
        graph.launch(0, sim::annotate(toy_launch("gemm.b"), {"t"}, {}));
        EXPECT_TRUE(lint_graph(graph).clean());
    }
    {
        // Cross stream with a join barrier in between.
        LaunchGraph graph;
        const int s1 = graph.create_stream();
        graph.launch(s1, sim::annotate(toy_launch("gemm.a"), {}, {"t"}));
        graph.join_streams();
        graph.launch(0, sim::annotate(toy_launch("gemm.b"), {"t"}, {}));
        EXPECT_TRUE(lint_graph(graph).clean());
    }
}

// ---------------------------------------------------------------------------
// Schedule lints over hand-built graphs.

TEST(LintKinds, DeadStreamIsFlagged)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(s1, sim::annotate(toy_launch("gemm.a"), {"x"}, {"y"}));
    (void)s2;
    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kDeadStream);
    EXPECT_EQ(report.findings.front().node_a, s2);
    // Stream 0 sitting empty is the normal engine-graph shape, never
    // flagged.
    EXPECT_EQ(report.findings.front().severity, LintSeverity::kWarning);
}

TEST(LintKinds, TransitivelyRedundantEdgeIsFlagged)
{
    // a(s0) ; join ; b(s1) ; join ; c(s0): c's dep on a is implied by its
    // dep on b (which already waits on a).
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {}, {"a"}));
    graph.join_streams();
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {"a"}, {"b"}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("gemm.c"), {"b"}, {"c"}));
    const LintReport report = lint_graph(graph);
    bool found = false;
    for (const LintFinding &f : report.findings) {
        if (f.kind == LintKind::kRedundantEdge) {
            EXPECT_EQ(f.node_a, 0);
            EXPECT_EQ(f.node_b, 2);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(report.clean());
}

TEST(LintKinds, OverSerializingJoinNamesTheLoadBearingTail)
{
    // a and b run concurrently; the join serializes both under c, but c
    // only consumes a's output.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(s1, sim::annotate(toy_launch("gemm.a"), {}, {"a"}));
    graph.launch(s2, sim::annotate(toy_launch("gemm.b"), {}, {"b"}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("gemm.c"), {"a"}, {"c"}));
    const LintReport report = lint_graph(graph);
    bool found = false;
    for (const LintFinding &f : report.findings) {
        if (f.kind == LintKind::kOverSerializingJoin) {
            EXPECT_EQ(f.node_b, 0) << "load-bearing tail should be gemm.a";
            EXPECT_NE(f.message.find("gemm.a"), std::string::npos);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(LintKinds, NecessaryJoinIsNotFlagged)
{
    // Same shape, but c consumes both tails: the barrier earns its keep.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(s1, sim::annotate(toy_launch("gemm.a"), {}, {"a"}));
    graph.launch(s2, sim::annotate(toy_launch("gemm.b"), {}, {"b"}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("gemm.c"), {"a", "b"}, {"c"}));
    for (const LintFinding &f : lint_graph(graph).findings) {
        EXPECT_NE(f.kind, LintKind::kOverSerializingJoin) << f.message;
    }
}

TEST(LintKinds, TrailingJoinIsCompositionContract)
{
    // Every engine graph ends with a join for append()-composition; with
    // no consumer after it, it must not be analyzed.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(s1, sim::annotate(toy_launch("gemm.a"), {}, {"a"}));
    graph.launch(s2, sim::annotate(toy_launch("gemm.b"), {}, {"b"}));
    graph.join_streams();
    for (const LintFinding &f : lint_graph(graph).findings) {
        EXPECT_NE(f.kind, LintKind::kOverSerializingJoin) << f.message;
        EXPECT_NE(f.kind, LintKind::kEmptyJoin) << f.message;
    }
}

TEST(LintKinds, EmptyJoinIsFlagged)
{
    LaunchGraph graph;
    graph.join_streams();  // Nothing submitted yet.
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {"x"}, {"y"}));
    bool found = false;
    for (const LintFinding &f : lint_graph(graph).findings) {
        found = found || f.kind == LintKind::kEmptyJoin;
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Per-node lints.

TEST(LintKinds, OccupancyClampIsFlaggedOnlyWithDevice)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    LaunchGraph graph;
    sim::KernelLaunch launch = toy_launch("gemm.huge");
    launch.shape.threads = device.max_threads_per_sm + 1;
    graph.launch(0, sim::annotate(std::move(launch), {"x"}, {"y"}));

    EXPECT_TRUE(lint_graph(graph).findings.empty());

    LintOptions options;
    options.device = &device;
    const LintReport report = lint_graph(graph, options);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kOccupancyClamp);
    EXPECT_EQ(report.findings.front().severity, LintSeverity::kWarning);

    // Matching the clamp the simulator applies.
    EXPECT_EQ(sim::occupancy_per_sm(device, graph.nodes()[0].launch.shape),
              1);
}

TEST(LintKinds, SmemAndRegisterPressureClampsAreFlagged)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    LintOptions options;
    options.device = &device;
    {
        LaunchGraph graph;
        sim::KernelLaunch launch = toy_launch("gemm.smem");
        launch.shape.smem_bytes = device.smem_per_sm_bytes + 1;
        graph.launch(0, sim::annotate(std::move(launch), {"x"}, {"y"}));
        const LintReport report = lint_graph(graph, options);
        ASSERT_EQ(report.findings.size(), 1u);
        EXPECT_EQ(report.findings.front().kind,
                  LintKind::kOccupancyClamp);
    }
    {
        LaunchGraph graph;
        sim::KernelLaunch launch = toy_launch("gemm.regs");
        launch.shape.threads = 1024;
        launch.shape.regs_per_thread = device.regs_per_sm / 1024 + 1;
        graph.launch(0, sim::annotate(std::move(launch), {"x"}, {"y"}));
        const LintReport report = lint_graph(graph, options);
        ASSERT_EQ(report.findings.size(), 1u);
        EXPECT_EQ(report.findings.front().kind,
                  LintKind::kOccupancyClamp);
    }
}

TEST(LintKinds, EmptyKernelIsFlagged)
{
    LaunchGraph graph;
    sim::KernelLaunch launch;
    launch.name = "gemm.empty";
    graph.launch(0, sim::annotate(std::move(launch), {"x"}, {"y"}));
    const LintReport report = lint_graph(graph);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().kind, LintKind::kEmptyKernel);
}

TEST(LintKinds, PhaseNameConventionIsChecked)
{
    const auto problem_count = [](const std::string &name) {
        LaunchGraph graph;
        graph.launch(0, sim::annotate(toy_launch(name), {"x"}, {"y"}));
        std::size_t count = 0;
        for (const LintFinding &f : lint_graph(graph).findings) {
            count += f.kind == LintKind::kPhaseName ? 1 : 0;
        }
        return count;
    };
    // The shipped naming shapes all carve.
    EXPECT_EQ(problem_count("sddmm.fine"), 0u);
    EXPECT_EQ(problem_count("L03.attn.softmax.compound"), 0u);
    EXPECT_EQ(problem_count("B12.attn.bwd.spmm.dq.global"), 0u);
    EXPECT_EQ(problem_count("F00.gemm.qkv"), 0u);
    EXPECT_EQ(problem_count("ew.ln1"), 0u);
    // Off-convention names land in one-off phase buckets.
    EXPECT_EQ(problem_count("weird_kernel"), 1u);
    EXPECT_EQ(problem_count("attn."), 1u);
    EXPECT_EQ(problem_count("L03.attn"), 1u);
    EXPECT_EQ(problem_count("my.sddmm"), 1u);  // "my" is not a layer tag.
}

// ---------------------------------------------------------------------------
// Buffer interning and append() namespacing.

TEST(BufferTable, InternsAndRoundTrips)
{
    const sim::BufferId a = sim::intern_buffer("lint_test.buf");
    EXPECT_EQ(sim::intern_buffer("lint_test.buf"), a);
    EXPECT_NE(sim::intern_buffer("lint_test.other"), a);
    EXPECT_EQ(sim::buffer_name(a), "lint_test.buf");
    EXPECT_FALSE(sim::buffer_is_plan_local(a));
    EXPECT_TRUE(sim::buffer_is_plan_local(sim::intern_buffer("%tmp")));
}

TEST(LaunchGraphAppend, PlanLocalBuffersGetFreshNamespaces)
{
    LaunchGraph phase;
    phase.launch(0, sim::annotate(toy_launch("gemm.t"), {"q"}, {"%scratch"}));

    LaunchGraph composed;
    composed.append(phase);
    composed.append(phase);
    const sim::BufferId first = composed.nodes()[0].launch.writes[0];
    const sim::BufferId second = composed.nodes()[1].launch.writes[0];
    // Two blind appends must not alias their intermediates...
    EXPECT_NE(first, second);
    EXPECT_TRUE(sim::buffer_is_plan_local(first));
    // ...while the shared input passes through untouched.
    EXPECT_EQ(composed.nodes()[0].launch.reads[0],
              sim::intern_buffer("q"));

    // Appends sharing an explicit namespace do alias (one engine's
    // phases see each other's scores).
    LaunchGraph shared;
    const std::string ns = "e0";
    shared.append(phase, "", nullptr, &ns);
    shared.append(phase, "", nullptr, &ns);
    EXPECT_EQ(shared.nodes()[0].launch.writes[0],
              shared.nodes()[1].launch.writes[0]);
    EXPECT_EQ(sim::buffer_name(shared.nodes()[0].launch.writes[0]),
              "%e0.scratch");
}

// ---------------------------------------------------------------------------
// Strengthened validate().

TEST(LaunchGraphValidate, RejectsSkippedAndDuplicatedOps)
{
    LaunchGraph graph;
    graph.launch(0, toy_launch("gemm.a"));
    graph.launch(0, toy_launch("gemm.b"));
    EXPECT_NO_THROW(graph.validate());

    LaunchGraph dup = graph;
    dup.set_ops_for_test({0, 0});
    EXPECT_THROW(dup.validate(), Error);

    LaunchGraph skip = graph;
    skip.set_ops_for_test({1, 0});
    EXPECT_THROW(skip.validate(), Error);

    LaunchGraph missing = graph;
    missing.set_ops_for_test({0});
    EXPECT_THROW(missing.validate(), Error);

    LaunchGraph unknown = graph;
    unknown.set_ops_for_test({0, 5});
    EXPECT_THROW(unknown.validate(), Error);
}

TEST(LaunchGraphValidate, AppendRejectsMalformedSource)
{
    LaunchGraph malformed;
    malformed.launch(0, toy_launch("gemm.a"));
    malformed.launch(0, toy_launch("gemm.b"));
    malformed.set_ops_for_test({0, 0});

    LaunchGraph target;
    EXPECT_THROW(target.append(malformed), Error);
    EXPECT_TRUE(target.empty());
}

TEST(LaunchGraphValidate, LintValidatesFirst)
{
    LaunchGraph graph;
    graph.launch(0, toy_launch("gemm.a"));
    graph.set_ops_for_test({0, 0});
    EXPECT_THROW(lint_graph(graph), Error);
}

// ---------------------------------------------------------------------------
// Capture-time enforcement: a hazardous plan never enters the PlanCache.

TEST(LintEnforcement, EnvironmentControlsEnforcement)
{
    {
        const ScopedLintEnv env("0");
        EXPECT_FALSE(capture_lint_enabled());
    }
    {
        const ScopedLintEnv env("1");
        EXPECT_TRUE(capture_lint_enabled());
    }
}

TEST(LintEnforcement, CleanPlanPassesWithEnforcementOn)
{
    const ScopedLintEnv env("1");
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    // Building every tiny-model graph under enforcement must not throw.
    const LaunchGraph graph = tiny_forward_graph(device);
    EXPECT_NO_THROW(enforce_capture_lint(graph, device, "tiny fwd"));
}

TEST(LintEnforcement, HazardousPlanNeverEntersTheCache)
{
    const ScopedLintEnv env("1");
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    const std::string key = "lint_test|hazardous|v1";
    int builds = 0;
    const auto build = [&]() {
        ++builds;
        auto graph = std::make_shared<LaunchGraph>();
        const int s1 = graph->create_stream();
        graph->launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"hz"}));
        graph->launch(s1, sim::annotate(toy_launch("gemm.r"), {"hz"}, {}));
        // The builders call this right before returning into the cache.
        enforce_capture_lint(*graph, device, key);
        return graph;
    };
    EXPECT_THROW(PlanCache::instance().get_or_build<LaunchGraph>(key, build),
                 PlanLintError);
    EXPECT_THROW(PlanCache::instance().get_or_build<LaunchGraph>(key, build),
                 PlanLintError);
    // The second call re-ran the builder: the throw kept the racy plan
    // out of the cache entirely.
    EXPECT_EQ(builds, 2);

    // With enforcement off the same plan caches fine (mglint reports it
    // instead).
    const ScopedLintEnv off("0");
    EXPECT_NO_THROW(
        PlanCache::instance().get_or_build<LaunchGraph>(key, build));
    EXPECT_EQ(builds, 3);
}

TEST(LintReportApi, SummaryAndCounts)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.a"), {}, {"t"}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.b"), {"t"}, {}));
    (void)s2;  // Dead stream -> one warning.
    const LintReport report = lint_graph(graph);
    EXPECT_EQ(report.num_nodes, 2u);
    EXPECT_EQ(report.num_streams, 3);
    EXPECT_EQ(report.count(LintSeverity::kError), 1u);
    EXPECT_EQ(report.count(LintSeverity::kWarning), 1u);
    EXPECT_EQ(report.hazards(), 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.summary(), "1 error(s), 1 warning(s), 0 info(s)");
    // Hazards sort first regardless of discovery order.
    EXPECT_TRUE(is_hazard(report.findings.front().kind));
}

// ---------------------------------------------------------------------------
// HappensBefore vs a naive per-node BFS oracle. The bitset implementation
// packs ancestors into 64-bit words; these shapes are chosen to stress the
// packing (chains longer than one word, fan-out wider than one word) and
// the transitive closure (diamonds, randomized join schedules).

/// Reference implementation: reach[j] = ancestors of j, via backward BFS
/// over the dep edges — O(V * E), obviously correct.
std::vector<std::vector<bool>>
bfs_ancestors(const LaunchGraph &graph)
{
    const std::vector<LaunchGraphNode> &nodes = graph.nodes();
    std::vector<std::vector<bool>> reach(nodes.size());
    for (std::size_t j = 0; j < nodes.size(); ++j) {
        reach[j].assign(nodes.size(), false);
        std::vector<int> frontier = nodes[j].deps;
        while (!frontier.empty()) {
            const int i = frontier.back();
            frontier.pop_back();
            if (reach[j][static_cast<std::size_t>(i)]) {
                continue;
            }
            reach[j][static_cast<std::size_t>(i)] = true;
            const std::vector<int> &deps =
                nodes[static_cast<std::size_t>(i)].deps;
            frontier.insert(frontier.end(), deps.begin(), deps.end());
        }
    }
    return reach;
}

void
expect_matches_oracle(const LaunchGraph &graph)
{
    const HappensBefore hb(graph.nodes());
    const std::vector<std::vector<bool>> oracle = bfs_ancestors(graph);
    for (std::size_t j = 0; j < graph.nodes().size(); ++j) {
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            ASSERT_EQ(hb.ordered(static_cast<int>(i), static_cast<int>(j)),
                      oracle[j][i])
                << "ordered(" << i << ", " << j << ") disagrees with the"
                << " BFS oracle";
        }
    }
}

TEST(HappensBeforeOracle, DeepChainCrossesWordBoundaries)
{
    // 150 nodes on one stream: every pair is ordered, and the ancestor
    // bitsets span three 64-bit words.
    LaunchGraph graph;
    for (int i = 0; i < 150; ++i) {
        graph.launch(0, toy_launch("chain"));
    }
    expect_matches_oracle(graph);
    const HappensBefore hb(graph.nodes());
    EXPECT_TRUE(hb.ordered(0, 149));
    EXPECT_TRUE(hb.ordered(63, 64));   // Word-boundary neighbors.
    EXPECT_TRUE(hb.ordered(64, 128));
    EXPECT_FALSE(hb.ordered(149, 0));
}

TEST(HappensBeforeOracle, WideFanOutIsMutuallyUnordered)
{
    // One producer, a join barrier, then 70 single-node streams: each
    // consumer is ordered after the producer but unordered against its
    // 69 siblings.
    LaunchGraph graph;
    graph.launch(0, toy_launch("produce"));
    graph.join_streams();
    std::vector<int> streams;
    for (int i = 0; i < 69; ++i) {
        streams.push_back(graph.create_stream());
    }
    graph.launch(0, toy_launch("consume"));
    for (const int s : streams) {
        graph.launch(s, toy_launch("consume"));
    }
    expect_matches_oracle(graph);
    const HappensBefore hb(graph.nodes());
    EXPECT_TRUE(hb.ordered(0, 35));
    EXPECT_FALSE(hb.ordered(35, 36));
    EXPECT_FALSE(hb.ordered(1, 69));
}

TEST(HappensBeforeOracle, DiamondJoins)
{
    // a -> {b, c} -> d: the classic shape where naive "dep of dep"
    // reasoning breaks and transitive closure is required.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, toy_launch("a"));
    graph.join_streams();
    graph.launch(0, toy_launch("b"));
    graph.launch(s1, toy_launch("c"));
    graph.join_streams();
    graph.launch(0, toy_launch("d"));
    expect_matches_oracle(graph);
    const HappensBefore hb(graph.nodes());
    EXPECT_TRUE(hb.ordered(0, 3));   // a -> d through either arm.
    EXPECT_FALSE(hb.ordered(1, 2));  // The arms stay unordered.
    EXPECT_FALSE(hb.ordered(2, 1));
}

TEST(HappensBeforeOracle, RandomizedSchedulesMatchOracle)
{
    // Adversarial soup: random stream choices and join barriers across
    // enough nodes to exercise multi-word bitsets, pinned seeds so a
    // failure reproduces.
    for (const std::uint64_t seed : {1ull, 2022ull, 0xdecafull}) {
        Rng rng(seed);
        LaunchGraph graph;
        std::vector<int> streams = {0};
        for (int i = 0; i < 4; ++i) {
            streams.push_back(graph.create_stream());
        }
        for (int i = 0; i < 90; ++i) {
            if (rng.next_below(8) == 0) {
                graph.join_streams();
            }
            const std::size_t s = static_cast<std::size_t>(
                rng.next_below(streams.size()));
            graph.launch(streams[s], toy_launch("rnd"));
        }
        expect_matches_oracle(graph);
    }
}

}  // namespace
}  // namespace multigrain
