// Tests for mgtrace (ISSUE 6): span reconstruction and reconciliation
// against ServeReport across every preset x device, byte-identical
// same-seed event logs, zero-perturbation of untraced runs, the anomaly
// flight recorder (triggers, ring bounds, incident JSON round-trip and
// replay), and the correlated Perfetto export.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "gpusim/device.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "serve/traffic.h"

namespace multigrain::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct TracedRun {
    TraceLog log;
    ServeReport report;
};

/// Runs `preset` on `device` with tracing attached.
TracedRun
traced_run(const std::string &preset, const std::string &device,
           TraceConfig config = {})
{
    TracedRun out{TraceLog(config), ServeReport{}};
    const ServeConfig serve_config = serve_preset_by_name(preset);
    Server server(serve_config, sim::device_spec_by_name(device));
    server.set_trace(&out.log);
    out.report = server.run();
    return out;
}

TraceRunInfo
run_info(const std::string &preset, const std::string &device)
{
    TraceRunInfo info;
    info.preset = preset;
    info.device = device;
    info.seed = serve_preset_by_name(preset).traffic.seed;
    return info;
}

// ---- Reconciliation across the preset matrix ----------------------------

TEST(TraceReconcileTest, EveryPresetAndDeviceReconciles)
{
    for (const char *preset : {"tiny", "steady", "overload", "closed",
                               "memtight", "noisy"}) {
        for (const char *device : {"a100", "rtx3090"}) {
            SCOPED_TRACE(std::string(preset) + "@" + device);
            TracedRun run = traced_run(preset, device);
            const TraceReport report = build_trace_report(
                run.log, run.report, run_info(preset, device));
            for (const std::string &err : report.reconcile_errors) {
                ADD_FAILURE() << err;
            }
            EXPECT_TRUE(report.reconciled());
            EXPECT_EQ(report.requests,
                      static_cast<std::size_t>(
                          run.report.admission.offered));
            EXPECT_EQ(report.completed,
                      static_cast<std::size_t>(run.report.completed));
        }
    }
}

TEST(TraceSpanTest, ComponentsTelescopeToLatency)
{
    TracedRun run = traced_run("tiny", "a100");
    const std::vector<RequestSpans> spans =
        spans_from_events(run.log.events());
    ASSERT_FALSE(spans.empty());
    for (const RequestSpans &s : spans) {
        SCOPED_TRACE("request " + std::to_string(s.request));
        // Boundaries chain: each component is a difference of adjacent
        // boundaries, so the telescoped sum is exact by construction.
        EXPECT_LE(s.arrive_us, s.admit_us);
        EXPECT_LE(s.admit_us, s.batched_us);
        EXPECT_LE(s.batched_us, s.dispatched_us);
        EXPECT_LE(s.dispatched_us, s.finish_us);
        EXPECT_DOUBLE_EQ(s.admission_us() + s.queue_us() +
                             s.batch_wait_us() + s.device_us(),
                         s.latency_us());
        EXPECT_GE(s.pad_us, 0);
        EXPECT_LE(s.pad_us, s.device_us());
        if (s.outcome == "completed") {
            EXPECT_GE(s.batch, 0);
            EXPECT_GE(s.round, 0);
            EXPECT_GT(s.device_us(), 0);
        } else {
            // Terminal sheds/age-outs never reach the device.
            EXPECT_DOUBLE_EQ(s.device_us(), 0);
            EXPECT_DOUBLE_EQ(s.pad_us, 0);
        }
    }
}

TEST(TraceSpanTest, OutcomeCensusMatchesAdmissionCounters)
{
    TracedRun run = traced_run("overload", "a100");
    const std::vector<RequestSpans> spans =
        spans_from_events(run.log.events());
    std::size_t completed = 0, shed = 0, aged = 0;
    for (const RequestSpans &s : spans) {
        if (s.outcome == "completed") {
            ++completed;
        } else if (s.outcome == "shed") {
            ++shed;
        } else if (s.outcome == "aged_out") {
            ++aged;
        }
    }
    EXPECT_EQ(completed + shed + aged, spans.size());
    EXPECT_EQ(completed, static_cast<std::size_t>(run.report.completed));
    EXPECT_EQ(shed,
              static_cast<std::size_t>(run.report.admission.rejected));
    EXPECT_EQ(aged,
              static_cast<std::size_t>(run.report.admission.timed_out));
    EXPECT_EQ(spans.size(),
              static_cast<std::size_t>(run.report.admission.offered));
}

// ---- Determinism --------------------------------------------------------

TEST(TraceDeterminismTest, SameSeedProducesByteIdenticalEventLogs)
{
    TracedRun first = traced_run("tiny", "a100");
    TracedRun second = traced_run("tiny", "a100");
    std::ostringstream a, b;
    write_events_jsonl(first.log.events(), a);
    write_events_jsonl(second.log.events(), b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());
}

TEST(TraceDeterminismTest, TracingDoesNotPerturbTheRun)
{
    // The traced run must produce the exact ServeReport an untraced run
    // does: tracing observes the clock, never advances it. The plan
    // cache is process-global, so warm it first — otherwise the two
    // runs differ in their hit/miss delta for reasons unrelated to
    // tracing.
    const ServeConfig config = serve_preset_by_name("tiny");
    const sim::DeviceSpec device = sim::device_spec_by_name("a100");
    Server(config, device).run();

    Server untraced(config, device);
    const ServeReport plain = untraced.run();

    TracedRun traced = traced_run("tiny", "a100");
    EXPECT_EQ(serve_bench_run(plain, "a100").to_json(),
              serve_bench_run(traced.report, "a100").to_json());
}

// ---- Event serialization ------------------------------------------------

TEST(TraceEventTest, JsonlRoundTripPreservesEveryField)
{
    TracedRun run = traced_run("overload", "a100");
    std::ostringstream os;
    write_events_jsonl(run.log.events(), os);
    const std::vector<TraceEvent> parsed = events_from_jsonl(os.str());
    ASSERT_EQ(parsed.size(), run.log.events().size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const TraceEvent &x = run.log.events()[i];
        const TraceEvent &y = parsed[i];
        EXPECT_EQ(x.seq, y.seq);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.t_us, y.t_us);
        EXPECT_EQ(x.request, y.request);
        EXPECT_EQ(x.batch, y.batch);
        EXPECT_EQ(x.round, y.round);
        EXPECT_EQ(x.tenant, y.tenant);
        EXPECT_EQ(x.model, y.model);
        EXPECT_EQ(x.slo, y.slo);
        EXPECT_EQ(x.valid_len, y.valid_len);
        EXPECT_EQ(x.deadline_us, y.deadline_us);
        EXPECT_EQ(x.bucket, y.bucket);
        EXPECT_EQ(x.planned_batch, y.planned_batch);
        EXPECT_EQ(x.actual_batch, y.actual_batch);
        EXPECT_EQ(x.flag, y.flag);
    }
}

TEST(TraceEventTest, InfiniteDeadlineSurvivesTheRoundTrip)
{
    TraceEvent e;
    e.kind = TraceEventKind::kArrive;
    e.t_us = 1.5;
    e.request = 3;
    e.tenant = "t";
    e.model = "tiny";
    e.slo = 2;
    e.valid_len = 64;
    e.deadline_us = kInf;
    const TraceEvent back = event_from_json(json_parse(event_to_json(e)));
    EXPECT_EQ(back.deadline_us, kInf);
}

// ---- Flight recorder ----------------------------------------------------

/// A synthetic shed event at `t_us`.
TraceEvent
shed_at(double t_us, std::int64_t request)
{
    TraceEvent e;
    e.kind = TraceEventKind::kShed;
    e.t_us = t_us;
    e.request = request;
    return e;
}

TEST(FlightRecorderTest, ShedBurstFiresInsideTheWindowOnly)
{
    TraceConfig config;
    config.shed_burst = 3;
    config.shed_window_us = 100;
    config.miss_streak = 0;
    TraceLog log(config);
    // Two sheds 200us apart never fire; three within 100us do.
    log.record(shed_at(0, 0));
    log.record(shed_at(200, 1));
    EXPECT_TRUE(log.incidents().empty());
    log.record(shed_at(250, 2));
    log.record(shed_at(260, 3));
    ASSERT_EQ(log.incidents().size(), 1u);
    EXPECT_EQ(log.incidents()[0].trigger, "shed_burst");
    EXPECT_EQ(log.incidents()[0].t_us, 260);
    // The window clears on firing: the next shed alone cannot re-fire.
    log.record(shed_at(261, 4));
    EXPECT_EQ(log.incidents().size(), 1u);
}

TEST(FlightRecorderTest, DeadlineMissStreakFiresAndResets)
{
    TraceConfig config;
    config.shed_burst = 0;
    config.miss_streak = 2;
    TraceLog log(config);
    TraceEvent miss;
    miss.kind = TraceEventKind::kComplete;
    miss.flag = false;  // deadline missed
    TraceEvent hit = miss;
    hit.flag = true;

    log.record(miss);
    log.record(hit);  // streak broken
    log.record(miss);
    EXPECT_TRUE(log.incidents().empty());
    log.record(miss);
    ASSERT_EQ(log.incidents().size(), 1u);
    EXPECT_EQ(log.incidents()[0].trigger, "deadline_miss_streak");
    // The streak resets when it fires.
    log.record(miss);
    EXPECT_EQ(log.incidents().size(), 1u);
}

TEST(FlightRecorderTest, EmptyRoundStallFires)
{
    TraceConfig config;
    config.shed_burst = 0;
    config.miss_streak = 0;
    config.stall_us = 50;
    TraceLog log(config);
    TraceEvent done;
    done.kind = TraceEventKind::kRoundDone;
    done.t_us = 100;
    done.round = 0;
    TraceEvent dispatch;
    dispatch.kind = TraceEventKind::kRoundDispatch;
    dispatch.round = 1;

    log.record(done);
    dispatch.t_us = 120;  // 20us idle: fine
    log.record(dispatch);
    EXPECT_TRUE(log.incidents().empty());

    done.t_us = 200;
    done.round = 1;
    log.record(done);
    dispatch.round = 2;
    dispatch.t_us = 300;  // 100us idle > 50us stall bound
    log.record(dispatch);
    ASSERT_EQ(log.incidents().size(), 1u);
    EXPECT_EQ(log.incidents()[0].trigger, "empty_round_stall");
}

TEST(FlightRecorderTest, RateLimitBurstFiresAfterAnUnbrokenStreak)
{
    TraceConfig config;
    config.shed_burst = 0;
    config.miss_streak = 0;
    config.ratelimit_streak = 3;
    TraceLog log(config);
    TraceEvent rl;
    rl.kind = TraceEventKind::kShedRateLimit;
    TraceEvent admit;
    admit.kind = TraceEventKind::kAdmit;

    rl.t_us = 10;
    log.record(rl);
    rl.t_us = 20;
    log.record(rl);
    admit.t_us = 25;
    log.record(admit);  // An admit breaks the streak.
    rl.t_us = 30;
    log.record(rl);
    rl.t_us = 40;
    log.record(rl);
    EXPECT_TRUE(log.incidents().empty());
    rl.t_us = 50;
    log.record(rl);
    ASSERT_EQ(log.incidents().size(), 1u);
    EXPECT_EQ(log.incidents()[0].trigger, "ratelimit_burst");
    EXPECT_EQ(log.incidents()[0].t_us, 50);
    // The streak resets when it fires: one more shed cannot re-fire.
    rl.t_us = 60;
    log.record(rl);
    EXPECT_EQ(log.incidents().size(), 1u);
}

TEST(TraceReportTest, NoisyPresetCountsRateLimitShedsApart)
{
    TracedRun run = traced_run("noisy", "a100");
    const TraceReport report = build_trace_report(
        run.log, run.report, run_info("noisy", "a100"));
    EXPECT_TRUE(report.reconciled());
    EXPECT_GT(report.rate_limited, 0u);
    EXPECT_EQ(report.rate_limited,
              static_cast<std::size_t>(
                  run.report.admission.shed_ratelimit));
    // Token-bucket sheds are not double-counted as depth/memory sheds.
    EXPECT_EQ(report.shed + report.rate_limited,
              static_cast<std::size_t>(run.report.admission.rejected));
}

TEST(FlightRecorderTest, RingIsBoundedToTheConfiguredRounds)
{
    TraceConfig config;
    config.ring_rounds = 2;
    config.shed_burst = 0;
    config.miss_streak = 0;
    TraceLog log(config);
    for (std::int64_t round = 0; round < 5; ++round) {
        TraceEvent dispatch;
        dispatch.kind = TraceEventKind::kRoundDispatch;
        dispatch.round = round;
        dispatch.t_us = 100.0 * static_cast<double>(round);
        log.record(dispatch);
        TraceEvent done = dispatch;
        done.kind = TraceEventKind::kRoundDone;
        done.t_us += 50;
        log.record(done);
    }
    // Only the last two rounds' events remain in the ring; the full log
    // still has everything.
    EXPECT_EQ(log.ring().size(), 4u);
    EXPECT_EQ(log.ring().front().round, 3);
    EXPECT_EQ(log.events().size(), 10u);
}

TEST(FlightRecorderTest, OverloadPresetDeterministicallyTriggers)
{
    TracedRun first = traced_run("overload", "a100");
    TracedRun second = traced_run("overload", "a100");
    ASSERT_FALSE(first.log.incidents().empty());
    ASSERT_EQ(first.log.incidents().size(),
              second.log.incidents().size());
    const TraceRunInfo info = run_info("overload", "a100");
    for (std::size_t i = 0; i < first.log.incidents().size(); ++i) {
        EXPECT_EQ(first.log.incidents()[i].trigger, "shed_burst");
        // Byte-identical incident documents across same-seed runs.
        EXPECT_EQ(incident_to_json(first.log.incidents()[i], info,
                                   first.log.config()),
                  incident_to_json(second.log.incidents()[i], info,
                                   second.log.config()));
    }
}

TEST(FlightRecorderTest, IncidentJsonReplaysToTheSameSpans)
{
    TracedRun run = traced_run("overload", "a100");
    ASSERT_FALSE(run.log.incidents().empty());
    const Incident &live = run.log.incidents().back();
    const TraceRunInfo info = run_info("overload", "a100");

    const Incident parsed = incident_from_json(
        incident_to_json(live, info, run.log.config()));
    EXPECT_EQ(parsed.trigger, live.trigger);
    EXPECT_EQ(parsed.t_us, live.t_us);
    EXPECT_EQ(parsed.first_seq, live.first_seq);
    EXPECT_EQ(parsed.last_seq, live.last_seq);
    ASSERT_EQ(parsed.events.size(), live.events.size());

    const std::vector<RequestSpans> live_spans =
        spans_from_events(live.events);
    const std::vector<RequestSpans> replayed =
        spans_from_events(parsed.events);
    ASSERT_EQ(replayed.size(), live_spans.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(replayed[i].request, live_spans[i].request);
        EXPECT_EQ(replayed[i].outcome, live_spans[i].outcome);
        EXPECT_EQ(replayed[i].arrive_us, live_spans[i].arrive_us);
        EXPECT_EQ(replayed[i].finish_us, live_spans[i].finish_us);
        EXPECT_EQ(replayed[i].pad_us, live_spans[i].pad_us);
    }
}

TEST(FlightRecorderTest, IncidentRejectsWrongSchema)
{
    EXPECT_THROW(
        incident_from_json(std::string("{\"schema\": \"bogus\"}")),
        Error);
}

// ---- Report document ----------------------------------------------------

TEST(TraceReportTest, JsonCarriesSchemaAndReconciles)
{
    TracedRun run = traced_run("tiny", "rtx3090");
    const TraceReport report = build_trace_report(
        run.log, run.report, run_info("tiny", "rtx3090"));
    ASSERT_TRUE(report.reconciled());
    const JsonValue doc = json_parse(trace_report_json(report));
    EXPECT_EQ(doc.at("schema").as_string(), "mgtrace.report");
    EXPECT_EQ(doc.at("schema_version").as_number(), 1);
    EXPECT_EQ(doc.at("preset").as_string(), "tiny");
    EXPECT_EQ(doc.at("device").as_string(), "rtx3090");
    EXPECT_EQ(doc.at("reconciled").as_bool(), true);
    EXPECT_EQ(doc.at("requests").as_number(),
              static_cast<double>(report.requests));
    // Per-class decomposition rows are present.
    EXPECT_FALSE(doc.at("classes").array.empty());
}

// ---- Perfetto export ----------------------------------------------------

TEST(ServeTraceExportTest, EmitsCorrelatedTimeline)
{
    TraceConfig config;
    config.capture_sim = true;
    TracedRun run = traced_run("tiny", "a100", config);
    const JsonValue doc = json_parse(serve_trace_json(run.log));
    const auto &events = doc.at("traceEvents").array;
    ASSERT_FALSE(events.empty());

    std::size_t request_spans = 0, device_slices = 0, counters = 0;
    std::set<double> pids;
    for (const JsonValue &e : events) {
        const std::string &ph = e.at("ph").as_string();
        pids.insert(e.at("pid").as_number());
        if (ph == "b") {
            ++request_spans;
        } else if (ph == "C") {
            ++counters;
        } else if (ph == "X" && e.at("pid").as_number() == 1) {
            ++device_slices;
        }
    }
    // Serving process 0 and the device-replay process 1 share the file.
    EXPECT_EQ(pids.count(0), 1u);
    EXPECT_EQ(pids.count(1), 1u);
    EXPECT_GT(request_spans, 0u);
    EXPECT_GT(device_slices, 0u);
    EXPECT_GT(counters, 0u);
}

TEST(ServeTraceExportTest, AsyncSpansBalance)
{
    TracedRun run = traced_run("overload", "a100");
    const JsonValue doc = json_parse(serve_trace_json(run.log));
    std::size_t begins = 0, ends = 0;
    for (const JsonValue &e : doc.at("traceEvents").array) {
        const std::string &ph = e.at("ph").as_string();
        if (ph == "b") {
            ++begins;
        } else if (ph == "e") {
            ++ends;
        }
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
}

}  // namespace
}  // namespace multigrain::serve
