// Tests for the mgperf comparator (profiler/regress.h): direction-aware
// thresholds, zero-baseline handling, missing/new rows and metrics, the
// default per-metric policies, and the report's JSON form.

#include "profiler/regress.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.h"
#include "profiler/export.h"

namespace multigrain::prof {
namespace {

BenchRow
make_row(const std::string &series,
         std::vector<std::pair<std::string, std::string>> labels,
         std::vector<std::pair<std::string, double>> metrics)
{
    BenchRow row;
    row.series = series;
    row.labels = std::move(labels);
    row.metrics = std::move(metrics);
    return row;
}

BenchRun
one_row_run(const std::string &metric, double value)
{
    BenchRun run;
    run.name = "test@a100";
    run.rows.push_back(make_row("s", {{"mode", "mg"}}, {{metric, value}}));
    return run;
}

TEST(PolicyTest, DefaultDirectionsByNamingConvention)
{
    EXPECT_EQ(default_metric_policy("total_us").direction,
              Direction::kLowerIsBetter);
    EXPECT_EQ(default_metric_policy("dram_bytes").direction,
              Direction::kLowerIsBetter);
    EXPECT_EQ(default_metric_policy("dynamic_j").direction,
              Direction::kLowerIsBetter);
    EXPECT_EQ(default_metric_policy("mg_speedup").direction,
              Direction::kHigherIsBetter);
    EXPECT_EQ(default_metric_policy("effective_gflops").direction,
              Direction::kHigherIsBetter);
    EXPECT_EQ(default_metric_policy("tensor_util").direction,
              Direction::kHigherIsBetter);
    EXPECT_EQ(default_metric_policy("overlap").direction,
              Direction::kHigherIsBetter);
}

TEST(PolicyTest, PlanCacheCountersAreExactOrInformational)
{
    const MetricPolicy hits = default_metric_policy("plan_cache.hits");
    EXPECT_EQ(hits.direction, Direction::kHigherIsBetter);
    EXPECT_EQ(hits.rel_tol, 0.0);
    EXPECT_LT(hits.abs_tol, 1.0);  // A single lost hit must gate.

    const MetricPolicy misses = default_metric_policy("plan_cache.misses");
    EXPECT_EQ(misses.direction, Direction::kLowerIsBetter);
    EXPECT_EQ(misses.rel_tol, 0.0);

    EXPECT_EQ(default_metric_policy("plan_cache.entries").direction,
              Direction::kInformational);
    EXPECT_EQ(default_metric_policy("plan_cache.capacity").direction,
              Direction::kInformational);
    EXPECT_EQ(default_metric_policy("plan_cache.hit_rate").direction,
              Direction::kHigherIsBetter);
}

TEST(CompareTest, LowerIsBetterDirections)
{
    const BenchRun baseline = one_row_run("total_us", 100.0);

    // +5 % on a lower-is-better metric regresses (default tol 2 %).
    RegressionReport r =
        compare_runs(baseline, one_row_run("total_us", 105.0));
    EXPECT_EQ(r.regressed, 1);
    EXPECT_TRUE(r.gate_failed());
    ASSERT_EQ(r.rows.size(), 1u);
    ASSERT_EQ(r.rows[0].metrics.size(), 1u);
    EXPECT_EQ(r.rows[0].metrics[0].status, DeltaStatus::kRegressed);
    EXPECT_NEAR(r.rows[0].metrics[0].rel_change, 0.05, 1e-12);

    // -5 % improves; the gate stays green.
    r = compare_runs(baseline, one_row_run("total_us", 95.0));
    EXPECT_EQ(r.improved, 1);
    EXPECT_FALSE(r.gate_failed());

    // +1 % is inside the default 2 % tolerance.
    r = compare_runs(baseline, one_row_run("total_us", 101.0));
    EXPECT_EQ(r.ok, 1);
    EXPECT_FALSE(r.gate_failed());
}

TEST(CompareTest, HigherIsBetterDirections)
{
    const BenchRun baseline = one_row_run("mg_speedup", 2.0);

    // A speedup drop regresses.
    RegressionReport r =
        compare_runs(baseline, one_row_run("mg_speedup", 1.8));
    EXPECT_EQ(r.regressed, 1);

    // A speedup gain improves.
    r = compare_runs(baseline, one_row_run("mg_speedup", 2.2));
    EXPECT_EQ(r.improved, 1);
    EXPECT_FALSE(r.gate_failed());
}

TEST(CompareTest, ZeroBaselineUsesAbsoluteToleranceOnly)
{
    const BenchRun baseline = one_row_run("extra_us", 0.0);

    // Within the absolute slack (0.05 us for *_us): ok, and rel_change
    // stays finite (0 by definition).
    RegressionReport r =
        compare_runs(baseline, one_row_run("extra_us", 0.04));
    ASSERT_EQ(r.rows[0].metrics.size(), 1u);
    EXPECT_EQ(r.rows[0].metrics[0].status, DeltaStatus::kOk);
    EXPECT_EQ(r.rows[0].metrics[0].rel_change, 0.0);

    // Beyond it: regressed, no division by zero anywhere.
    r = compare_runs(baseline, one_row_run("extra_us", 10.0));
    EXPECT_EQ(r.rows[0].metrics[0].status, DeltaStatus::kRegressed);
    EXPECT_EQ(r.rows[0].metrics[0].rel_change, 0.0);
}

TEST(CompareTest, TolScaleWidensThresholds)
{
    const BenchRun baseline = one_row_run("total_us", 100.0);
    CompareOptions options;
    options.tol_scale = 5.0;  // 2 % -> 10 %.
    const RegressionReport r =
        compare_runs(baseline, one_row_run("total_us", 105.0), options);
    EXPECT_EQ(r.ok, 1);
    EXPECT_FALSE(r.gate_failed());
}

TEST(CompareTest, MissingBaselineRowIsReportedNotFailed)
{
    BenchRun baseline = one_row_run("total_us", 100.0);
    BenchRun current = baseline;
    current.rows.push_back(
        make_row("s", {{"mode", "dense"}}, {{"total_us", 50.0}}));

    const RegressionReport r = compare_runs(baseline, current);
    EXPECT_EQ(r.new_rows, 1);
    EXPECT_FALSE(r.gate_failed());
    bool found = false;
    for (const RowDelta &rd : r.rows) {
        if (rd.status == RowStatus::kNewInCurrent) {
            EXPECT_EQ(rd.row_key, "s|mode=dense");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(CompareTest, VanishedRowFailsTheGate)
{
    BenchRun baseline = one_row_run("total_us", 100.0);
    baseline.rows.push_back(
        make_row("s", {{"mode", "dense"}}, {{"total_us", 50.0}}));
    const BenchRun current = one_row_run("total_us", 100.0);

    const RegressionReport r = compare_runs(baseline, current);
    EXPECT_EQ(r.missing_rows, 1);
    EXPECT_TRUE(r.gate_failed());
}

TEST(CompareTest, VanishedMetricFailsTheGate)
{
    BenchRun baseline;
    baseline.name = "t";
    baseline.rows.push_back(make_row(
        "s", {}, {{"total_us", 100.0}, {"dram_bytes", 1e9}}));
    BenchRun current;
    current.name = "t";
    current.rows.push_back(make_row("s", {}, {{"total_us", 100.0}}));

    const RegressionReport r = compare_runs(baseline, current);
    EXPECT_EQ(r.missing_metrics, 1);
    EXPECT_TRUE(r.gate_failed());
}

TEST(CompareTest, NewMetricIsRecordedNotFailed)
{
    BenchRun baseline;
    baseline.rows.push_back(make_row("s", {}, {{"total_us", 100.0}}));
    BenchRun current;
    current.rows.push_back(make_row(
        "s", {}, {{"total_us", 100.0}, {"l2_bytes", 5.0}}));

    const RegressionReport r = compare_runs(baseline, current);
    EXPECT_FALSE(r.gate_failed());
    ASSERT_EQ(r.rows.size(), 1u);
    bool saw_new = false;
    for (const MetricDelta &d : r.rows[0].metrics) {
        saw_new = saw_new || d.status == DeltaStatus::kNewMetric;
    }
    EXPECT_TRUE(saw_new);
}

TEST(CompareTest, InformationalMetricsNeverGate)
{
    const BenchRun baseline = one_row_run("plan_cache.capacity", 256.0);
    const RegressionReport r =
        compare_runs(baseline, one_row_run("plan_cache.capacity", 16.0));
    EXPECT_EQ(r.ok, 1);
    EXPECT_FALSE(r.gate_failed());
}

TEST(CompareTest, PlanCacheMissDeltaGates)
{
    const BenchRun baseline = one_row_run("plan_cache.misses", 12.0);
    const RegressionReport r =
        compare_runs(baseline, one_row_run("plan_cache.misses", 13.0));
    EXPECT_EQ(r.regressed, 1);
    EXPECT_TRUE(r.gate_failed());
}

TEST(RegressReportTest, MarkdownMentionsRegressions)
{
    const BenchRun baseline = one_row_run("total_us", 100.0);
    const RegressionReport r =
        compare_runs(baseline, one_row_run("total_us", 120.0));
    std::ostringstream os;
    print_report(r, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("total_us"), std::string::npos);
    EXPECT_NE(text.find("+20.00%"), std::string::npos);
}

TEST(RegressReportTest, JsonFormParses)
{
    const BenchRun baseline = one_row_run("total_us", 100.0);
    const RegressionReport r =
        compare_runs(baseline, one_row_run("total_us", 120.0));
    std::ostringstream os;
    {
        JsonWriter w(os);
        write_report_json(w, r);
    }
    const JsonValue doc = json_parse(os.str());
    EXPECT_TRUE(doc.at("gate_failed").as_bool());
    EXPECT_EQ(static_cast<int>(doc.at("regressed").as_number()), 1);
    const JsonValue &rows = doc.at("rows");
    ASSERT_TRUE(rows.is_array());
    ASSERT_EQ(rows.array.size(), 1u);
    const JsonValue &metrics = rows.array[0].at("metrics");
    ASSERT_EQ(metrics.array.size(), 1u);
    EXPECT_EQ(metrics.array[0].at("status").as_string(), "regressed");
    EXPECT_EQ(metrics.array[0].at("direction").as_string(),
              "lower-is-better");
}

}  // namespace
}  // namespace multigrain::prof
