// Tests for the transformer substrate: model configs, synthetic workload
// generators, the functional encoder layer, and the end-to-end runner.

#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/attention.h"
#include "gpusim/device.h"
#include "kernels/reference.h"
#include "transformer/config.h"
#include "transformer/layer.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

// -------------------------------------------------------------- config ----

TEST(ConfigTest, LongformerMatchesPaperSetup)
{
    const ModelConfig c = ModelConfig::longformer_large();
    EXPECT_EQ(c.max_seq_len, 4096);
    EXPECT_EQ(c.num_heads, 16);
    EXPECT_EQ(c.head_dim(), 64);
    EXPECT_EQ(c.num_layers, 24);
    EXPECT_TRUE(c.has_global_rows);
    // §5.1: sparse:dense stored-block ratio ~1:3 for the ±256 window at
    // block 64 — enough dense interior blocks to favor tensor cores.
    EXPECT_EQ(2 * c.local_window, 512);
}

TEST(ConfigTest, QdsMatchesPaperSetup)
{
    const ModelConfig c = ModelConfig::qds_base();
    EXPECT_EQ(c.max_seq_len, 2048);
    EXPECT_EQ(c.head_dim(), 64);
    EXPECT_FALSE(c.has_global_rows);
    EXPECT_EQ(2 * c.local_window, 128);
}

TEST(ConfigTest, BlockRatiosMatchSection51)
{
    // Stored blocks per interior block row: 2w/B + 1 fully-dense plus 2
    // partial; the paper quotes sparse:dense 1:3 (Longformer) vs 2:1 (QDS).
    const auto ratio = [](const ModelConfig &c) {
        CompoundPattern p;
        p.seq_len = c.max_seq_len;
        p.atoms.push_back(AtomicPattern::local(c.local_window));
        const SlicePlan plan = slice_and_dice(p, {.block = c.block});
        index_t dense = 0, sparse = 0;
        const BsrLayout &l = *plan.coarse;
        for (index_t b = 0; b < l.nnz_blocks(); ++b) {
            if (l.block_valid_count(b) == l.block * l.block) {
                ++dense;
            } else {
                ++sparse;
            }
        }
        return static_cast<double>(sparse) / static_cast<double>(dense);
    };
    EXPECT_LT(ratio(ModelConfig::longformer_large()), 0.6);  // ~1:3.
    EXPECT_GT(ratio(ModelConfig::qds_base()), 1.4);          // ~2:1.
}

TEST(ConfigTest, BigBirdPatternHasBlockedAtomsAndGlobals)
{
    const ModelConfig c = ModelConfig::bigbird_etc_base();
    EXPECT_EQ(c.family, PatternFamily::kBigBird);
    Rng rng(40);
    const WorkloadSample s = sample_for_model(rng, c);
    const CompoundPattern p = build_model_pattern(c, s);
    bool blocked_local = false, blocked_random = false, global = false;
    for (const auto &atom : p.atoms) {
        blocked_local |= atom.kind == AtomicKind::kBlockedLocal;
        blocked_random |= atom.kind == AtomicKind::kBlockedRandom;
        global |= atom.kind == AtomicKind::kGlobal;
    }
    EXPECT_TRUE(blocked_local);
    EXPECT_TRUE(blocked_random);
    EXPECT_TRUE(global);
    // Random block draws are input dependent: different samples differ.
    const WorkloadSample s2 = sample_for_model(rng, c);
    ASSERT_NE(s.valid_len, s2.valid_len);
    const SlicePlan a = slice_and_dice(p, {.block = c.block});
    const SlicePlan b =
        slice_and_dice(build_model_pattern(c, s2), {.block = c.block});
    EXPECT_NE(a.coarse->nnz_blocks(), b.coarse->nnz_blocks());
}

TEST(ConfigTest, PoolingformerPatternIsTwoLevelWindow)
{
    const ModelConfig c = ModelConfig::poolingformer_base();
    Rng rng(41);
    const CompoundPattern p =
        build_model_pattern(c, sample_for_model(rng, c));
    ASSERT_EQ(p.atoms.size(), 2u);
    EXPECT_EQ(p.atoms[0].kind, AtomicKind::kLocal);
    EXPECT_EQ(p.atoms[1].kind, AtomicKind::kDilated);
    // Second level reaches far beyond the sliding window.
    EXPECT_GT(c.dilated_window * c.dilated_stride, 2 * c.local_window);
}

TEST(ConfigTest, ExtraModelsSliceCleanly)
{
    for (const ModelConfig &c : {ModelConfig::bigbird_etc_base(),
                                 ModelConfig::poolingformer_base()}) {
        Rng rng(42);
        const CompoundPattern p =
            build_model_pattern(c, sample_for_model(rng, c));
        const SlicePlan plan = slice_and_dice(p, {.block = c.block});
        plan.validate_partition();
        EXPECT_TRUE(plan.has_coarse()) << c.name;
        EXPECT_TRUE(plan.has_fine()) << c.name;
    }
}

// ------------------------------------------------------------ workload ----

TEST(WorkloadTest, SamplesAreDeterministic)
{
    const ModelConfig c = ModelConfig::longformer_large();
    Rng a(5), b(5);
    const WorkloadSample sa = sample_hotpotqa(a, c);
    const WorkloadSample sb = sample_hotpotqa(b, c);
    EXPECT_EQ(sa.valid_len, sb.valid_len);
    EXPECT_EQ(sa.special_tokens, sb.special_tokens);
}

TEST(WorkloadTest, HotpotqaSamplesWithinBounds)
{
    const ModelConfig c = ModelConfig::longformer_large();
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        const WorkloadSample s = sample_hotpotqa(rng, c);
        EXPECT_GT(s.valid_len, 0);
        EXPECT_LE(s.valid_len, c.max_seq_len);
        EXPECT_FALSE(s.special_tokens.empty());
        EXPECT_LT(s.special_tokens.size(), 200u);
        for (const index_t t : s.special_tokens) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, s.valid_len);
        }
    }
}

TEST(WorkloadTest, MarcoHasDenserSeparators)
{
    // QDS attends a separator per sentence: more special tokens per token
    // of document than Longformer's paragraph markers.
    Rng rng(7);
    const WorkloadSample lf =
        sample_hotpotqa(rng, ModelConfig::longformer_large());
    const WorkloadSample ms = sample_msmarco(rng, ModelConfig::qds_base());
    const double lf_density =
        static_cast<double>(lf.special_tokens.size()) /
        static_cast<double>(lf.valid_len);
    const double ms_density =
        static_cast<double>(ms.special_tokens.size()) /
        static_cast<double>(ms.valid_len);
    EXPECT_GT(ms_density, lf_density);
}

TEST(WorkloadTest, ModelPatternHasExpectedAtoms)
{
    const ModelConfig lf = ModelConfig::longformer_large();
    Rng rng(8);
    const WorkloadSample s = sample_for_model(rng, lf);
    const CompoundPattern p = build_model_pattern(lf, s);
    ASSERT_EQ(p.atoms.size(), 3u);  // local + selected + global.
    EXPECT_EQ(p.atoms[0].kind, AtomicKind::kLocal);
    EXPECT_EQ(p.atoms[1].kind, AtomicKind::kSelected);
    EXPECT_EQ(p.atoms[2].kind, AtomicKind::kGlobal);
    EXPECT_EQ(p.valid_len, s.valid_len);

    const CompoundPattern q = build_model_pattern(
        ModelConfig::qds_base(),
        sample_for_model(rng, ModelConfig::qds_base()));
    ASSERT_EQ(q.atoms.size(), 2u);  // local + selected.
}

TEST(WorkloadTest, SampleTextRoundTrips)
{
    WorkloadSample s;
    s.valid_len = 1000;
    s.special_tokens = {0, 5, 17, 500};
    std::stringstream ss;
    write_workload_sample(s, ss);
    const WorkloadSample back = read_workload_sample(ss);
    EXPECT_EQ(back.valid_len, s.valid_len);
    EXPECT_EQ(back.special_tokens, s.special_tokens);
}

TEST(WorkloadTest, ReaderRejectsMalformedInput)
{
    {
        std::stringstream ss("nonsense 4");
        EXPECT_THROW(read_workload_sample(ss), Error);
    }
    {
        std::stringstream ss("valid_len -3\ntokens 1\n");
        EXPECT_THROW(read_workload_sample(ss), Error);
    }
    {
        std::stringstream ss("valid_len 10\ntokens 12\n");  // Out of range.
        EXPECT_THROW(read_workload_sample(ss), Error);
    }
}

TEST(WorkloadTest, ReaderSortsAndDedupes)
{
    std::stringstream ss("valid_len 100\ntokens 9 3 9 1\n");
    const WorkloadSample s = read_workload_sample(ss);
    const std::vector<index_t> expected = {1, 3, 9};
    EXPECT_EQ(s.special_tokens, expected);
}

// --------------------------------------------------------------- layer ----

TEST(LayerTest, ForwardPreservesShapeAndFiniteness)
{
    const ModelConfig c = ModelConfig::tiny_test();
    Rng rng(9);
    const WorkloadSample s{.valid_len = 100,
                           .special_tokens = {0, 1, 2, 40, 80}};
    AttentionConfig ac;
    ac.head_dim = c.head_dim();
    ac.num_heads = c.num_heads;
    ac.block = c.block;
    const AttentionEngine engine(build_model_pattern(c, s), ac,
                                 SliceMode::kMultigrain);
    const LayerWeights w = LayerWeights::random(rng, c);
    const HalfMatrix hidden =
        random_half_matrix(rng, c.max_seq_len, c.d_model, -0.5f, 0.5f);
    const HalfMatrix out = layer_forward(c, engine, w, hidden);
    ASSERT_EQ(out.rows(), c.max_seq_len);
    ASSERT_EQ(out.cols(), c.d_model);
    for (index_t r = 0; r < out.rows(); ++r) {
        for (index_t col = 0; col < out.cols(); ++col) {
            ASSERT_TRUE(std::isfinite(float(out.at(r, col))))
                << r << "," << col;
        }
    }
}

TEST(LayerTest, LayerNormStandardizesRows)
{
    Rng rng(10);
    HalfMatrix m = random_half_matrix(rng, 4, 64, -3.0f, 5.0f);
    std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
    layer_norm_rows(m, gamma, beta);
    for (index_t r = 0; r < 4; ++r) {
        double mean = 0, var = 0;
        for (index_t c = 0; c < 64; ++c) {
            mean += float(m.at(r, c));
        }
        mean /= 64;
        for (index_t c = 0; c < 64; ++c) {
            var += (float(m.at(r, c)) - mean) * (float(m.at(r, c)) - mean);
        }
        var /= 64;
        EXPECT_NEAR(mean, 0.0, 0.02);
        EXPECT_NEAR(var, 1.0, 0.05);
    }
}

TEST(LayerTest, GeluMatchesKnownValues)
{
    HalfMatrix m(1, 3);
    m.at(0, 0) = half(0.0f);
    m.at(0, 1) = half(1.0f);
    m.at(0, 2) = half(-1.0f);
    gelu_inplace(m);
    EXPECT_NEAR(float(m.at(0, 0)), 0.0f, 1e-4);
    EXPECT_NEAR(float(m.at(0, 1)), 0.8412f, 0.01f);
    EXPECT_NEAR(float(m.at(0, 2)), -0.1588f, 0.01f);
}

TEST(LayerTest, ModelForwardAgreesAcrossMethods)
{
    // The whole 2-layer tiny model must produce (nearly) the same output
    // whichever processing method computes the attention.
    const ModelConfig c = ModelConfig::tiny_test();
    Rng rng(11);
    const WorkloadSample s{.valid_len = 128,
                           .special_tokens = {0, 3, 64, 100}};
    const CompoundPattern pattern = build_model_pattern(c, s);
    AttentionConfig ac;
    ac.head_dim = c.head_dim();
    ac.num_heads = c.num_heads;
    ac.block = c.block;
    std::vector<LayerWeights> weights;
    for (index_t i = 0; i < c.num_layers; ++i) {
        weights.push_back(LayerWeights::random(rng, c));
    }
    const HalfMatrix hidden =
        random_half_matrix(rng, c.max_seq_len, c.d_model, -0.5f, 0.5f);

    const AttentionEngine mg(pattern, ac, SliceMode::kMultigrain);
    const AttentionEngine fine(pattern, ac, SliceMode::kFineOnly);
    const HalfMatrix out_mg = model_forward(c, mg, weights, hidden);
    const HalfMatrix out_fine = model_forward(c, fine, weights, hidden);
    EXPECT_LT(kernels::max_abs_diff(widen(out_mg), widen(out_fine)), 0.15);
}

// -------------------------------------------------------------- runner ----

TEST(RunnerTest, EndToEndProducesLayeredTimeline)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(12);
    const WorkloadSample s = sample_for_model(rng, c);
    const TransformerRunner runner(c, SliceMode::kMultigrain, s, 1);
    const EndToEndResult r = runner.simulate(sim::DeviceSpec::a100());
    EXPECT_GT(r.total_us, 0);
    EXPECT_GT(r.attention_us, 0);
    EXPECT_LT(r.attention_us, r.total_us);
    EXPECT_GT(r.dram_bytes, r.attention_dram_bytes);
    // One QKV GEMM per layer present in the timeline.
    int qkv = 0;
    for (const auto &k : r.sim.kernels) {
        qkv += k.name.find("gemm.qkv") != std::string::npos;
    }
    EXPECT_EQ(qkv, static_cast<int>(c.num_layers));
}

TEST(RunnerTest, DenseWorkIdenticalAcrossMethods)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(13);
    const WorkloadSample s = sample_for_model(rng, c);
    const auto dense_flops = [&](SliceMode mode) {
        const TransformerRunner runner(c, mode, s, 1);
        const EndToEndResult r = runner.simulate(sim::DeviceSpec::a100());
        double flops = 0;
        for (const auto &k : r.sim.kernels) {
            if (k.name.find("gemm.") != std::string::npos) {
                flops += k.work.tensor_flops;
            }
        }
        return flops;
    };
    EXPECT_DOUBLE_EQ(dense_flops(SliceMode::kMultigrain),
                     dense_flops(SliceMode::kFineOnly));
    EXPECT_DOUBLE_EQ(dense_flops(SliceMode::kMultigrain),
                     dense_flops(SliceMode::kCoarseOnly));
}

TEST(RunnerTest, HeterogeneousBatchSumsSampleWork)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(15);
    const WorkloadSample s1 = sample_for_model(rng, c);
    const WorkloadSample s2 = sample_for_model(rng, c);
    ASSERT_NE(s1.valid_len, s2.valid_len);  // Genuinely heterogeneous.

    const TransformerRunner hetero(c, SliceMode::kMultigrain, {s1, s2});
    EXPECT_EQ(hetero.batch(), 2);
    const EndToEndResult r = hetero.simulate(sim::DeviceSpec::a100());

    const EndToEndResult r1 =
        TransformerRunner(c, SliceMode::kMultigrain, s1, 1)
            .simulate(sim::DeviceSpec::a100());
    const EndToEndResult r2 =
        TransformerRunner(c, SliceMode::kMultigrain, s2, 1)
            .simulate(sim::DeviceSpec::a100());

    // Attention DRAM traffic is exactly the sum of the two samples'.
    EXPECT_NEAR(r.attention_dram_bytes,
                r1.attention_dram_bytes + r2.attention_dram_bytes,
                1e-3 * r.attention_dram_bytes);
    // Co-scheduling makes the batched pass cheaper than serial execution.
    EXPECT_LT(r.total_us, r1.total_us + r2.total_us);
}

TEST(RunnerTest, HeterogeneousSamplesCoSchedule)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(16);
    const WorkloadSample s1 = sample_for_model(rng, c);
    const WorkloadSample s2 = sample_for_model(rng, c);
    const TransformerRunner hetero(c, SliceMode::kMultigrain, {s1, s2});
    const EndToEndResult r = hetero.simulate(sim::DeviceSpec::a100());

    // Layer 0's SDDMM phase contains both samples' coarse kernels, on
    // different streams, overlapping in time.
    std::vector<const sim::KernelStats *> coarse;
    for (const auto &k : r.sim.kernels) {
        if (k.name == "L00.attn.sddmm.coarse") {
            coarse.push_back(&k);
        }
    }
    ASSERT_EQ(coarse.size(), 2u);
    EXPECT_NE(coarse[0]->stream, coarse[1]->stream);
    EXPECT_LT(coarse[1]->start_us, coarse[0]->end_us);
}

TEST(RunnerTest, HomogeneousAndHeterogeneousAgreeOnIdenticalSamples)
{
    // A heterogeneous batch of two *identical* samples must do the same
    // attention work as the fused homogeneous batch-2 launch.
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(17);
    const WorkloadSample s = sample_for_model(rng, c);
    const EndToEndResult fused =
        TransformerRunner(c, SliceMode::kMultigrain, s, 2)
            .simulate(sim::DeviceSpec::a100());
    const EndToEndResult split =
        TransformerRunner(c, SliceMode::kMultigrain, {s, s})
            .simulate(sim::DeviceSpec::a100());
    EXPECT_NEAR(fused.attention_dram_bytes, split.attention_dram_bytes,
                1e-3 * fused.attention_dram_bytes);
    // Timing differs (kernel count, launch overheads) but stays close.
    EXPECT_NEAR(fused.total_us, split.total_us, 0.25 * fused.total_us);
}

TEST(RunnerTest, TrainingStepExtendsForward)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(18);
    const WorkloadSample s = sample_for_model(rng, c);
    const TransformerRunner runner(c, SliceMode::kMultigrain, s, 1);
    const EndToEndResult fwd = runner.simulate(sim::DeviceSpec::a100());
    const EndToEndResult step =
        runner.simulate_training(sim::DeviceSpec::a100());
    // A step costs roughly 3x a forward pass (backward dense GEMMs are 2x
    // and the attention backward is ~2-3x the forward attention).
    EXPECT_GT(step.total_us, 2.0 * fwd.total_us);
    EXPECT_LT(step.total_us, 4.5 * fwd.total_us);
    // The backward attention kernels are present.
    bool saw_dv = false, saw_softmax_bwd = false;
    for (const auto &k : step.sim.kernels) {
        saw_dv |= k.name.find("spmm_t.dv") != std::string::npos;
        saw_softmax_bwd |= k.name.find("bwd.softmax") != std::string::npos;
    }
    EXPECT_TRUE(saw_dv);
    EXPECT_TRUE(saw_softmax_bwd);
}

TEST(RunnerTest, MultigrainWinsTrainingToo)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(19);
    const WorkloadSample s = sample_for_model(rng, c);
    const double mg = TransformerRunner(c, SliceMode::kMultigrain, s, 2)
                          .simulate_training(sim::DeviceSpec::a100())
                          .total_us;
    const double tr = TransformerRunner(c, SliceMode::kCoarseOnly, s, 2)
                          .simulate_training(sim::DeviceSpec::a100())
                          .total_us;
    EXPECT_LT(mg, tr);
}

TEST(RunnerTest, BatchScalesAttentionWork)
{
    const ModelConfig c = ModelConfig::qds_base();
    Rng rng(14);
    const WorkloadSample s = sample_for_model(rng, c);
    const TransformerRunner b1(c, SliceMode::kMultigrain, s, 1);
    const TransformerRunner b2(c, SliceMode::kMultigrain, s, 2);
    const EndToEndResult r1 = b1.simulate(sim::DeviceSpec::a100());
    const EndToEndResult r2 = b2.simulate(sim::DeviceSpec::a100());
    EXPECT_NEAR(r2.attention_dram_bytes, 2 * r1.attention_dram_bytes,
                0.01 * r1.attention_dram_bytes);
    EXPECT_GT(r2.total_us, r1.total_us);
    EXPECT_LT(r2.total_us, 2 * r1.total_us);  // Better utilization.
}

}  // namespace
}  // namespace multigrain
