// Unit tests for src/common: the FP16 type, the deterministic RNG, the
// error-check macro, and the arithmetic helpers.

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/half.h"
#include "common/rng.h"
#include "common/util.h"

namespace multigrain {
namespace {

// ---------------------------------------------------------------- half ----

TEST(HalfTest, ZeroRoundTrips)
{
    EXPECT_EQ(float(half(0.0f)), 0.0f);
    EXPECT_EQ(half(0.0f).bits(), 0u);
    EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
}

TEST(HalfTest, ExactSmallIntegersRoundTrip)
{
    for (int i = -2048; i <= 2048; ++i) {
        const float f = static_cast<float>(i);
        EXPECT_EQ(float(half(f)), f) << "integer " << i;
    }
}

TEST(HalfTest, PowersOfTwoRoundTrip)
{
    for (int e = -14; e <= 15; ++e) {
        const float f = std::ldexp(1.0f, e);
        EXPECT_EQ(float(half(f)), f) << "2^" << e;
    }
}

TEST(HalfTest, KnownBitPatterns)
{
    EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(half(-2.0f).bits(), 0xc000u);
    EXPECT_EQ(half(0.5f).bits(), 0x3800u);
    EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);  // Max finite.
    EXPECT_EQ(half(6.103515625e-5f).bits(), 0x0400u);  // Min normal.
    EXPECT_EQ(half(5.960464477539063e-8f).bits(), 0x0001u);  // Min subnorm.
}

TEST(HalfTest, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
    // keep 1.0; anything above the halfway point rounds up.
    EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), 0x3c00u);
    EXPECT_EQ(half(1.0f + 0x1.2p-11f).bits(), 0x3c01u);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
    // round *up* to the even mantissa 2.
    EXPECT_EQ(half(1.0f + 0x1.8p-10f).bits(), 0x3c02u);
}

TEST(HalfTest, OverflowBecomesInfinity)
{
    EXPECT_EQ(half(65520.0f).bits(), 0x7c00u);
    EXPECT_EQ(half(1e30f).bits(), 0x7c00u);
    EXPECT_EQ(half(-1e30f).bits(), 0xfc00u);
    EXPECT_TRUE(std::isinf(float(half(1e10f))));
}

TEST(HalfTest, LargestBelowOverflowStaysFinite)
{
    EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);  // Rounds down to max.
}

TEST(HalfTest, InfinityAndNanPropagate)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(half(inf).bits(), 0x7c00u);
    EXPECT_EQ(half(-inf).bits(), 0xfc00u);
    EXPECT_TRUE(std::isnan(float(half(std::nanf("")))));
}

TEST(HalfTest, SubnormalsRoundTrip)
{
    // Every subnormal half is exactly representable as a float.
    for (std::uint16_t bits = 1; bits < 0x0400u; ++bits) {
        const half h = half::from_bits(bits);
        EXPECT_EQ(half(float(h)).bits(), bits) << "subnormal " << bits;
    }
}

TEST(HalfTest, TinyValuesFlushToZeroOrMinSubnormal)
{
    // Below half of the smallest subnormal: rounds to zero.
    EXPECT_EQ(half(1e-9f).bits(), 0x0000u);
    // Just above half of the smallest subnormal: rounds to it.
    EXPECT_EQ(half(3.1e-8f).bits(), 0x0001u);
}

TEST(HalfTest, AllFiniteHalvesRoundTripThroughFloat)
{
    int checked = 0;
    for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
        const auto bits = static_cast<std::uint16_t>(b);
        const std::uint16_t exp = (bits >> 10) & 0x1f;
        if (exp == 0x1f) {
            continue;  // Inf/NaN handled elsewhere.
        }
        EXPECT_EQ(half(float(half::from_bits(bits))).bits(), bits);
        ++checked;
    }
    EXPECT_EQ(checked, 63488);
}

TEST(HalfTest, ComparisonsFollowFloatSemantics)
{
    EXPECT_LT(half(1.0f), half(2.0f));
    EXPECT_GT(half(1.0f), half(-2.0f));
    EXPECT_EQ(half(0.0f), half(-0.0f));  // Signed zeros compare equal.
    EXPECT_LE(half(1.0f), half(1.0f));
}

TEST(HalfTest, CompoundAssignmentRoundsEachStep)
{
    half h(1.0f);
    h += half(1.0f);
    EXPECT_EQ(float(h), 2.0f);
    h *= half(0.5f);
    EXPECT_EQ(float(h), 1.0f);
    h -= half(0.25f);
    EXPECT_EQ(float(h), 0.75f);
}

TEST(HalfTest, HelpersMatchConstants)
{
    EXPECT_EQ(float(half_max()), 65504.0f);
    EXPECT_EQ(float(half_lowest()), -65504.0f);
    EXPECT_TRUE(std::isinf(float(half_neg_inf())));
    EXPECT_LT(float(half_neg_inf()), 0.0f);
}

// ----------------------------------------------------------------- rng ----

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += a.next_u64() == b.next_u64();
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        seen.insert(rng.next_below(13));
    }
    EXPECT_EQ(seen.size(), 13u);
}

TEST(RngTest, NextRangeInclusiveBounds)
{
    Rng rng(3);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.next_range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        hit_lo |= v == -2;
        hit_hi |= v == 2;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(RngTest, FloatInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.next_float();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(RngTest, FloatMeanIsRoughlyHalf)
{
    Rng rng(9);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.next_float();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleDistinctProducesSortedUnique)
{
    Rng rng(17);
    for (const std::int64_t count : {0, 1, 10, 500, 999, 1000}) {
        const auto v = rng.sample_distinct(1000, count);
        ASSERT_EQ(static_cast<std::int64_t>(v.size()), count);
        for (std::size_t i = 1; i < v.size(); ++i) {
            EXPECT_LT(v[i - 1], v[i]);
        }
        for (const auto x : v) {
            EXPECT_GE(x, 0);
            EXPECT_LT(x, 1000);
        }
    }
}

TEST(RngTest, SampleDistinctRejectsOversizedCount)
{
    Rng rng(19);
    EXPECT_THROW(rng.sample_distinct(5, 6), Error);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    // The child stream should not replay the parent stream.
    Rng parent2(23);
    parent2.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += child.next_u64() == parent.next_u64();
    }
    EXPECT_LT(equal, 3);
}

// --------------------------------------------------------------- error ----

TEST(ErrorTest, PassingCheckDoesNotThrow)
{
    // Wrapped in a lambda: the check macro's braces confuse EXPECT_NO_THROW.
    EXPECT_NO_THROW(([] { MG_CHECK(1 + 1 == 2) << "never shown"; })());
}

TEST(ErrorTest, FailingCheckThrowsWithMessage)
{
    try {
        MG_CHECK(false) << "context " << 42;
        FAIL() << "should have thrown";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("context 42"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
    }
}

TEST(ErrorTest, CheckConditionEvaluatedOnce)
{
    int calls = 0;
    const auto bump = [&calls]() {
        ++calls;
        return true;
    };
    MG_CHECK(bump()) << "no";
    EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------- util ----

TEST(UtilTest, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 4), 0);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(4, 4), 1);
    EXPECT_EQ(ceil_div(5, 4), 2);
    EXPECT_EQ(ceil_div<index_t>(4096, 64), 64);
}

TEST(UtilTest, RoundUp)
{
    EXPECT_EQ(round_up(0, 8), 0);
    EXPECT_EQ(round_up(1, 8), 8);
    EXPECT_EQ(round_up(8, 8), 8);
    EXPECT_EQ(round_up(9, 8), 16);
}

}  // namespace
}  // namespace multigrain
