// Unit tests for src/common: the FP16 type, the deterministic RNG, the
// error-check macro, and the arithmetic helpers.

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/half.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/util.h"

namespace multigrain {
namespace {

// ---------------------------------------------------------------- half ----

TEST(HalfTest, ZeroRoundTrips)
{
    EXPECT_EQ(float(half(0.0f)), 0.0f);
    EXPECT_EQ(half(0.0f).bits(), 0u);
    EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
}

TEST(HalfTest, ExactSmallIntegersRoundTrip)
{
    for (int i = -2048; i <= 2048; ++i) {
        const float f = static_cast<float>(i);
        EXPECT_EQ(float(half(f)), f) << "integer " << i;
    }
}

TEST(HalfTest, PowersOfTwoRoundTrip)
{
    for (int e = -14; e <= 15; ++e) {
        const float f = std::ldexp(1.0f, e);
        EXPECT_EQ(float(half(f)), f) << "2^" << e;
    }
}

TEST(HalfTest, KnownBitPatterns)
{
    EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(half(-2.0f).bits(), 0xc000u);
    EXPECT_EQ(half(0.5f).bits(), 0x3800u);
    EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);  // Max finite.
    EXPECT_EQ(half(6.103515625e-5f).bits(), 0x0400u);  // Min normal.
    EXPECT_EQ(half(5.960464477539063e-8f).bits(), 0x0001u);  // Min subnorm.
}

TEST(HalfTest, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
    // keep 1.0; anything above the halfway point rounds up.
    EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), 0x3c00u);
    EXPECT_EQ(half(1.0f + 0x1.2p-11f).bits(), 0x3c01u);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
    // round *up* to the even mantissa 2.
    EXPECT_EQ(half(1.0f + 0x1.8p-10f).bits(), 0x3c02u);
}

TEST(HalfTest, OverflowBecomesInfinity)
{
    EXPECT_EQ(half(65520.0f).bits(), 0x7c00u);
    EXPECT_EQ(half(1e30f).bits(), 0x7c00u);
    EXPECT_EQ(half(-1e30f).bits(), 0xfc00u);
    EXPECT_TRUE(std::isinf(float(half(1e10f))));
}

TEST(HalfTest, LargestBelowOverflowStaysFinite)
{
    EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);  // Rounds down to max.
}

TEST(HalfTest, InfinityAndNanPropagate)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(half(inf).bits(), 0x7c00u);
    EXPECT_EQ(half(-inf).bits(), 0xfc00u);
    EXPECT_TRUE(std::isnan(float(half(std::nanf("")))));
}

TEST(HalfTest, SubnormalsRoundTrip)
{
    // Every subnormal half is exactly representable as a float.
    for (std::uint16_t bits = 1; bits < 0x0400u; ++bits) {
        const half h = half::from_bits(bits);
        EXPECT_EQ(half(float(h)).bits(), bits) << "subnormal " << bits;
    }
}

TEST(HalfTest, TinyValuesFlushToZeroOrMinSubnormal)
{
    // Below half of the smallest subnormal: rounds to zero.
    EXPECT_EQ(half(1e-9f).bits(), 0x0000u);
    // Just above half of the smallest subnormal: rounds to it.
    EXPECT_EQ(half(3.1e-8f).bits(), 0x0001u);
}

TEST(HalfTest, AllFiniteHalvesRoundTripThroughFloat)
{
    int checked = 0;
    for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
        const auto bits = static_cast<std::uint16_t>(b);
        const std::uint16_t exp = (bits >> 10) & 0x1f;
        if (exp == 0x1f) {
            continue;  // Inf/NaN handled elsewhere.
        }
        EXPECT_EQ(half(float(half::from_bits(bits))).bits(), bits);
        ++checked;
    }
    EXPECT_EQ(checked, 63488);
}

TEST(HalfTest, ComparisonsFollowFloatSemantics)
{
    EXPECT_LT(half(1.0f), half(2.0f));
    EXPECT_GT(half(1.0f), half(-2.0f));
    EXPECT_EQ(half(0.0f), half(-0.0f));  // Signed zeros compare equal.
    EXPECT_LE(half(1.0f), half(1.0f));
}

TEST(HalfTest, CompoundAssignmentRoundsEachStep)
{
    half h(1.0f);
    h += half(1.0f);
    EXPECT_EQ(float(h), 2.0f);
    h *= half(0.5f);
    EXPECT_EQ(float(h), 1.0f);
    h -= half(0.25f);
    EXPECT_EQ(float(h), 0.75f);
}

TEST(HalfTest, HelpersMatchConstants)
{
    EXPECT_EQ(float(half_max()), 65504.0f);
    EXPECT_EQ(float(half_lowest()), -65504.0f);
    EXPECT_TRUE(std::isinf(float(half_neg_inf())));
    EXPECT_LT(float(half_neg_inf()), 0.0f);
}

// ----------------------------------------------------------------- rng ----

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += a.next_u64() == b.next_u64();
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        seen.insert(rng.next_below(13));
    }
    EXPECT_EQ(seen.size(), 13u);
}

TEST(RngTest, NextRangeInclusiveBounds)
{
    Rng rng(3);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.next_range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        hit_lo |= v == -2;
        hit_hi |= v == 2;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(RngTest, FloatInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.next_float();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(RngTest, FloatMeanIsRoughlyHalf)
{
    Rng rng(9);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.next_float();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleDistinctProducesSortedUnique)
{
    Rng rng(17);
    for (const std::int64_t count : {0, 1, 10, 500, 999, 1000}) {
        const auto v = rng.sample_distinct(1000, count);
        ASSERT_EQ(static_cast<std::int64_t>(v.size()), count);
        for (std::size_t i = 1; i < v.size(); ++i) {
            EXPECT_LT(v[i - 1], v[i]);
        }
        for (const auto x : v) {
            EXPECT_GE(x, 0);
            EXPECT_LT(x, 1000);
        }
    }
}

TEST(RngTest, SampleDistinctRejectsOversizedCount)
{
    Rng rng(19);
    EXPECT_THROW(rng.sample_distinct(5, 6), Error);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    // The child stream should not replay the parent stream.
    Rng parent2(23);
    parent2.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += child.next_u64() == parent.next_u64();
    }
    EXPECT_LT(equal, 3);
}

// --------------------------------------------------------------- error ----

TEST(ErrorTest, PassingCheckDoesNotThrow)
{
    // Wrapped in a lambda: the check macro's braces confuse EXPECT_NO_THROW.
    EXPECT_NO_THROW(([] { MG_CHECK(1 + 1 == 2) << "never shown"; })());
}

TEST(ErrorTest, FailingCheckThrowsWithMessage)
{
    try {
        MG_CHECK(false) << "context " << 42;
        FAIL() << "should have thrown";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("context 42"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
    }
}

TEST(ErrorTest, CheckConditionEvaluatedOnce)
{
    int calls = 0;
    const auto bump = [&calls]() {
        ++calls;
        return true;
    };
    MG_CHECK(bump()) << "no";
    EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------- util ----

TEST(UtilTest, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 4), 0);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(4, 4), 1);
    EXPECT_EQ(ceil_div(5, 4), 2);
    EXPECT_EQ(ceil_div<index_t>(4096, 64), 64);
}

TEST(UtilTest, RoundUp)
{
    EXPECT_EQ(round_up(0, 8), 0);
    EXPECT_EQ(round_up(1, 8), 8);
    EXPECT_EQ(round_up(8, 8), 8);
    EXPECT_EQ(round_up(9, 8), 16);
}

// ------------------------------------------------------------- logging ----

TEST(LoggingTest, SinkCapturesAndRestores)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    const LogSink previous = set_log_sink(
        [&captured](LogLevel level, const std::string &message) {
            captured.emplace_back(level, message);
        });
    EXPECT_FALSE(previous);  // Default stderr sink is the empty function.

    const LogLevel saved_level = log_level();
    set_log_level(LogLevel::kInfo);
    log_message(LogLevel::kWarn, "captured line");
    log_message(LogLevel::kDebug, "below threshold");

    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::kWarn);
    EXPECT_EQ(captured[0].second, "captured line");

    // Restoring must hand back our sink and detach it.
    const LogSink mine = set_log_sink(previous);
    EXPECT_TRUE(mine);
    log_message(LogLevel::kWarn, "after restore");
    EXPECT_EQ(captured.size(), 1u);
    set_log_level(saved_level);
}

// ---------------------------------------------------------------- json ----

TEST(JsonTest, WriterProducesParseableDocument)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("name", std::string("a \"quoted\" \\ name\n"));
        w.field("count", std::int64_t{42});
        w.field("ratio", 0.5);
        w.field("flag", true);
        w.key("missing");
        w.null();
        w.key("items");
        w.begin_array();
        w.value(1);
        w.value(2.5);
        w.value("three");
        w.end_array();
        w.end_object();
    }
    const JsonValue doc = json_parse(os.str());
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("name").as_string(), "a \"quoted\" \\ name\n");
    EXPECT_EQ(doc.at("count").as_number(), 42.0);
    EXPECT_EQ(doc.at("ratio").as_number(), 0.5);
    EXPECT_TRUE(doc.at("flag").as_bool());
    EXPECT_TRUE(doc.at("missing").is_null());
    ASSERT_EQ(doc.at("items").array.size(), 3u);
    EXPECT_EQ(doc.at("items").array[2].as_string(), "three");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("inf", std::numeric_limits<double>::infinity());
        w.field("nan", std::numeric_limits<double>::quiet_NaN());
        w.end_object();
    }
    const JsonValue doc = json_parse(os.str());
    EXPECT_TRUE(doc.at("inf").is_null());
    EXPECT_TRUE(doc.at("nan").is_null());
}

TEST(JsonTest, RoundTripsDoublesExactly)
{
    for (const double v : {0.0, -0.0, 1.0 / 3.0, 1e-300, 123456.789,
                           std::numeric_limits<double>::max()}) {
        std::ostringstream os;
        {
            JsonWriter w(os);
            w.value(v);
        }
        EXPECT_EQ(json_parse(os.str()).as_number(), v) << os.str();
    }
}

TEST(JsonTest, ParserRejectsMalformedInput)
{
    EXPECT_THROW(json_parse(""), Error);
    EXPECT_THROW(json_parse("{"), Error);
    EXPECT_THROW(json_parse("{\"a\": }"), Error);
    EXPECT_THROW(json_parse("[1, 2,]"), Error);
    EXPECT_THROW(json_parse("{} trailing"), Error);
    EXPECT_THROW(json_parse("\"unterminated"), Error);
}

TEST(JsonTest, ParserHandlesEscapesAndNesting)
{
    const JsonValue doc = json_parse(
        "{\"a\": [{\"b\": \"x\\u0041\\n\"}, -1.5e3], \"c\": null}");
    EXPECT_EQ(doc.at("a").array[0].at("b").as_string(), "xA\n");
    EXPECT_EQ(doc.at("a").array[1].as_number(), -1500.0);
    EXPECT_TRUE(doc.at("c").is_null());
    EXPECT_EQ(doc.find("absent"), nullptr);
}

// --------------------------------------------------------------- timer ----

TEST(TimerTest, ScopedTimerAccumulatesByName)
{
    reset_host_timers();
    {
        const ScopedTimer a("unit_test.alpha");
        const ScopedTimer b("unit_test.beta");
    }
    {
        const ScopedTimer a("unit_test.alpha");
    }
    add_host_timer_sample("unit_test.manual", 12.5);

    const std::vector<TimerStat> stats = host_timer_stats();
    ASSERT_EQ(stats.size(), 3u);  // Sorted by name.
    EXPECT_EQ(stats[0].name, "unit_test.alpha");
    EXPECT_EQ(stats[0].count, 2);
    EXPECT_GE(stats[0].total_us, 0.0);
    EXPECT_EQ(stats[1].name, "unit_test.beta");
    EXPECT_EQ(stats[1].count, 1);
    EXPECT_EQ(stats[2].name, "unit_test.manual");
    EXPECT_EQ(stats[2].total_us, 12.5);

    reset_host_timers();
    EXPECT_TRUE(host_timer_stats().empty());
}

}  // namespace
}  // namespace multigrain
