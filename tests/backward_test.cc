// Tests for the backward pass: the FP64 analytic reference is pinned
// against finite differences, the FP16 kernels against the reference, the
// split (coarse+fine) softmax backward against the whole-pattern one, and
// the backward plans against structural expectations.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/attention.h"
#include "formats/convert.h"
#include "gpusim/device.h"
#include "kernels/backward.h"
#include "kernels/fine.h"
#include "kernels/reference.h"
#include "patterns/slice.h"

namespace multigrain {
namespace {

CompoundPattern
test_pattern(index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(3));
    p.atoms.push_back(AtomicPattern::selected({1, seq / 2}));
    p.atoms.push_back(AtomicPattern::global({1}));
    p.atoms.push_back(AtomicPattern::random(2, 19));
    return p;
}

// --------------------------------------------------- layout transposes ----

TEST(TransposeTest, CsrDoubleTransposeIsIdentity)
{
    const CsrLayout layout = build_full_layout(test_pattern(24));
    const CsrLayout t = transpose_layout(layout);
    t.validate();
    const CsrLayout tt = transpose_layout(t);
    EXPECT_EQ(tt.row_offsets, layout.row_offsets);
    EXPECT_EQ(tt.col_indices, layout.col_indices);
    EXPECT_EQ(t.nnz(), layout.nnz());
}

TEST(TransposeTest, CsrTransposeSwapsCoordinates)
{
    CsrLayout layout;
    layout.rows = 3;
    layout.cols = 4;
    layout.row_offsets = {0, 2, 2, 3};
    layout.col_indices = {1, 3, 0};
    const CsrLayout t = transpose_layout(layout);
    t.validate();
    EXPECT_EQ(t.rows, 4);
    EXPECT_EQ(t.cols, 3);
    // (0,1) -> (1,0); (0,3) -> (3,0); (2,0) -> (0,2).
    EXPECT_EQ(t.row_nnz(0), 1);
    EXPECT_EQ(t.col_indices[static_cast<std::size_t>(t.row_offsets[0])], 2);
    EXPECT_EQ(t.row_nnz(1), 1);
    EXPECT_EQ(t.row_nnz(3), 1);
}

TEST(TransposeTest, BsrTransposePreservesValidityPerElement)
{
    Rng rng(3);
    MaskMatrix mask(32, 32, 0);
    for (index_t r = 0; r < 32; ++r) {
        for (index_t c = 0; c < 32; ++c) {
            mask.at(r, c) = rng.next_float() < 0.15f ? 1 : 0;
        }
    }
    const BsrLayout bsr = bsr_from_csr(csr_from_mask(mask), 8);
    const BsrLayout t = transpose_layout(bsr);
    t.validate();
    EXPECT_EQ(t.nnz_blocks(), bsr.nnz_blocks());
    EXPECT_EQ(t.total_valid(), bsr.total_valid());
    // Element-level check through the CSR views.
    const CsrLayout expect = transpose_layout(csr_from_bsr(bsr));
    const CsrLayout actual = csr_from_bsr(t);
    EXPECT_EQ(actual.row_offsets, expect.row_offsets);
    EXPECT_EQ(actual.col_indices, expect.col_indices);
}

// --------------------------------------------- reference vs finite diff ----

TEST(ReferenceBackwardTest, MatchesFiniteDifferences)
{
    const index_t seq = 12, dh = 4;
    Rng rng(7);
    HalfMatrix q = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    HalfMatrix k = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    HalfMatrix v = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(2));
    p.atoms.push_back(AtomicPattern::selected({0, 7}));
    const CsrLayout layout = build_full_layout(p);
    const double scale = 0.5;

    DoubleMatrix d_out(seq, dh);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t d = 0; d < dh; ++d) {
            d_out.at(r, d) = rng.next_float(-1.0f, 1.0f);
        }
    }
    const auto loss = [&](const HalfMatrix &qq, const HalfMatrix &kk,
                          const HalfMatrix &vv) {
        const DoubleMatrix c = kernels::ref_attention(qq, kk, vv, layout,
                                                      scale);
        double total = 0;
        for (index_t r = 0; r < seq; ++r) {
            for (index_t d = 0; d < dh; ++d) {
                total += c.at(r, d) * d_out.at(r, d);
            }
        }
        return total;
    };

    const kernels::RefAttentionGrads grads =
        kernels::ref_attention_backward(q, k, v, layout, scale, d_out);

    // Exactly representable perturbation around |x| < 1.
    const float eps = 0x1.0p-6f;
    Rng pick(9);
    for (int trial = 0; trial < 8; ++trial) {
        const index_t r = pick.next_range(0, seq - 1);
        const index_t d = pick.next_range(0, dh - 1);
        for (int which = 0; which < 3; ++which) {
            HalfMatrix *m = which == 0 ? &q : which == 1 ? &k : &v;
            const DoubleMatrix &g = which == 0   ? grads.dq
                                    : which == 1 ? grads.dk
                                                 : grads.dv;
            const half original = m->at(r, d);
            m->at(r, d) = half(float(original) + eps);
            const double up = loss(q, k, v);
            m->at(r, d) = half(float(original) - eps);
            const double down = loss(q, k, v);
            m->at(r, d) = original;
            const double fd = (up - down) / (2.0 * eps);
            EXPECT_NEAR(fd, g.at(r, d), 5e-3 + 5e-2 * std::abs(g.at(r, d)))
                << "which=" << which << " (" << r << "," << d << ")";
        }
    }
}

// ----------------------------------------------------- kernels vs ref ----

TEST(BackwardKernelTest, FineSpmmTransposedMatchesRefOnTranspose)
{
    Rng rng(11);
    const index_t seq = 32, dh = 8;
    auto layout = std::make_shared<const CsrLayout>(
        build_full_layout(test_pattern(seq)));
    CsrMatrix p(layout);
    std::vector<double> pvals(p.values.size());
    for (std::size_t i = 0; i < p.values.size(); ++i) {
        p.values[i] = half(rng.next_float(0.0f, 0.2f));
        pvals[i] = float(p.values[i]);
    }
    const HalfMatrix d = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    FloatMatrix out(seq, dh, 0.0f);
    kernels::fine_spmm_transposed(p, d, out);

    // Reference: SpMM of the transposed matrix.
    const CsrLayout t = transpose_layout(*layout);
    std::vector<double> tvals(pvals.size());
    // Re-gather values in transposed order via a dense detour.
    DoubleMatrix dense(seq, seq, 0.0);
    std::size_t idx = 0;
    for (index_t r = 0; r < seq; ++r) {
        for (index_t i = layout->row_offsets[static_cast<std::size_t>(r)];
             i < layout->row_offsets[static_cast<std::size_t>(r + 1)];
             ++i) {
            dense.at(r,
                     layout->col_indices[static_cast<std::size_t>(i)]) =
                pvals[idx++];
        }
    }
    idx = 0;
    for (index_t r = 0; r < seq; ++r) {
        for (index_t i = t.row_offsets[static_cast<std::size_t>(r)];
             i < t.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            tvals[idx++] =
                dense.at(t.col_indices[static_cast<std::size_t>(i)], r);
        }
    }
    const DoubleMatrix ref = kernels::ref_spmm(t, tvals, d);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t c = 0; c < dh; ++c) {
            EXPECT_NEAR(out.at(r, c), ref.at(r, c), 0.02);
        }
    }
}

TEST(BackwardKernelTest, SplitSoftmaxBackwardMatchesWhole)
{
    Rng rng(13);
    const index_t seq = 64;
    CompoundPattern pat;
    pat.seq_len = seq;
    pat.atoms.push_back(AtomicPattern::local(4));
    pat.atoms.push_back(AtomicPattern::random(5, 3));
    const SlicePlan plan = slice_and_dice(pat, {.block = 16});
    ASSERT_TRUE(plan.has_coarse() && plan.has_fine());

    // Shared P and dP values over the full pattern.
    HalfMatrix p_dense(seq, seq, half(0.0f));
    HalfMatrix dp_dense(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = plan.full->row_offsets[static_cast<std::size_t>(r)];
             j < plan.full->row_offsets[static_cast<std::size_t>(r + 1)];
             ++j) {
            const index_t c =
                plan.full->col_indices[static_cast<std::size_t>(j)];
            p_dense.at(r, c) = half(rng.next_float(0.0f, 0.2f));
            dp_dense.at(r, c) = half(rng.next_float(-1.0f, 1.0f));
        }
    }
    BsrMatrix pc = gather_bsr(p_dense, plan.coarse);
    BsrMatrix dpc = gather_bsr(dp_dense, plan.coarse);
    CsrMatrix pf = gather_csr(p_dense, plan.fine);
    CsrMatrix dpf = gather_csr(dp_dense, plan.fine);
    // Zero the invalid coarse positions of P (as the forward softmax
    // leaves them), so they contribute nothing.
    const BsrLayout &bl = *plan.coarse;
    for (index_t b = 0; b < bl.nnz_blocks(); ++b) {
        for (index_t r = 0; r < bl.block; ++r) {
            for (index_t c = 0; c < bl.block; ++c) {
                if (!bl.element_valid(b, r, c)) {
                    pc.block(b)[r * bl.block + c] = half(0.0f);
                }
            }
        }
    }
    kernels::compound_softmax_backward(&pc, &dpc, &pf, &dpf, 0.5);

    CsrMatrix p_whole = gather_csr(p_dense, plan.full);
    CsrMatrix dp_whole = gather_csr(dp_dense, plan.full);
    kernels::compound_softmax_backward(nullptr, nullptr, &p_whole,
                                       &dp_whole, 0.5);
    const HalfMatrix whole_dense = dense_from_csr(dp_whole);
    const HalfMatrix cd = dense_from_bsr(dpc);
    const HalfMatrix fd = dense_from_csr(dpf);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t c = 0; c < seq; ++c) {
            EXPECT_NEAR(float(cd.at(r, c)) + float(fd.at(r, c)),
                        float(whole_dense.at(r, c)), 0.02)
                << "(" << r << "," << c << ")";
        }
    }
}

// ----------------------------------------------------- engine backward ----

class EngineBackwardTest : public ::testing::TestWithParam<SliceMode> {};

TEST_P(EngineBackwardTest, MatchesAnalyticReference)
{
    const SliceMode mode = GetParam();
    Rng rng(17);
    const index_t seq = 64, dh = 16;
    const HalfMatrix q = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix d_out = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);

    AttentionConfig config;
    config.head_dim = dh;
    config.block = 16;
    const AttentionEngine engine(test_pattern(seq), config, mode);
    const AttentionEngine::Grads grads =
        engine.run_backward(q, k, v, d_out);

    const kernels::RefAttentionGrads ref = kernels::ref_attention_backward(
        q, k, v, *engine.plan().full, config.effective_scale(),
        widen(d_out));
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dq), ref.dq), 0.06)
        << "dq " << to_string(mode);
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dk), ref.dk), 0.06)
        << "dk " << to_string(mode);
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dv), ref.dv), 0.06)
        << "dv " << to_string(mode);
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineBackwardTest,
                         ::testing::Values(SliceMode::kMultigrain,
                                           SliceMode::kCoarseOnly,
                                           SliceMode::kFineOnly),
                         [](const auto &info) {
                             std::string n = to_string(info.param);
                             for (char &c : n) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return n;
                         });

TEST(EngineBackwardTest, PlanHasThreeOrderedPhases)
{
    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 2;
    const AttentionEngine engine(test_pattern(256), config,
                                 SliceMode::kMultigrain);
    sim::GpuSim sim(sim::DeviceSpec::a100());
    engine.plan_backward_into(sim);
    const sim::SimResult r = sim.run();

    double sddmm_end = 0, softmax_start = 1e30, softmax_end = 0,
           spmm_start = 1e30;
    bool saw_dv = false, saw_dk = false, saw_dq = false;
    for (const auto &k : r.kernels) {
        saw_dv |= k.name.find("spmm_t.dv") != std::string::npos;
        saw_dk |= k.name.find("spmm_t.dk") != std::string::npos;
        saw_dq |= k.name.find("spmm.dq") != std::string::npos;
        if (k.name.rfind("bwd.sddmm", 0) == 0 ||
            k.name.find("spmm_t.dv") != std::string::npos) {
            sddmm_end = std::max(sddmm_end, k.end_us);
        } else if (k.name.rfind("bwd.softmax", 0) == 0) {
            softmax_start = std::min(softmax_start, k.start_us);
            softmax_end = std::max(softmax_end, k.end_us);
        } else {
            spmm_start = std::min(spmm_start, k.start_us);
        }
    }
    EXPECT_TRUE(saw_dv && saw_dk && saw_dq);
    EXPECT_GE(softmax_start, sddmm_end);
    EXPECT_GE(spmm_start, softmax_end);
}

TEST(EngineBackwardTest, BackwardCostsMoreThanForward)
{
    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 4;
    const AttentionEngine engine(test_pattern(1024), config,
                                 SliceMode::kMultigrain);
    const double fwd = engine.simulate(sim::DeviceSpec::a100()).total_us;
    sim::GpuSim sim(sim::DeviceSpec::a100());
    engine.plan_backward_into(sim);
    const double bwd = sim.run().total_us;
    // Backward does roughly 2-3x the forward's sparse work.
    EXPECT_GT(bwd, fwd);
    EXPECT_LT(bwd, 4 * fwd);
}

}  // namespace
}  // namespace multigrain
