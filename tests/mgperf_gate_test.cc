// End-to-end self-test of the mgperf regression gate: the perturbation
// hook (gpusim/device.h) must move simulated times, and a perturbed run
// diffed against an unperturbed baseline must fail the gate — the same
// loop CI's scheduled self-test step runs through the mgperf binary.

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_util.h"
#include "common/error.h"
#include "gpusim/device.h"
#include "profiler/history.h"
#include "profiler/regress.h"

namespace multigrain {
namespace {

/// Scoped MULTIGRAIN_PERTURB setting; restores the previous value.
class ScopedPerturb {
  public:
    explicit ScopedPerturb(const char *spec)
    {
        if (const char *old = std::getenv("MULTIGRAIN_PERTURB")) {
            saved_ = old;
            had_ = true;
        }
        ::setenv("MULTIGRAIN_PERTURB", spec, 1);
    }
    ~ScopedPerturb()
    {
        if (had_) {
            ::setenv("MULTIGRAIN_PERTURB", saved_.c_str(), 1);
        } else {
            ::unsetenv("MULTIGRAIN_PERTURB");
        }
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST(PerturbTest, ParseAndIdentity)
{
    EXPECT_TRUE(sim::DevicePerturbation{}.identity());

    const sim::DevicePerturbation p =
        sim::DevicePerturbation::parse("dram=0.9,tensor=1.1,launch=2");
    EXPECT_FALSE(p.identity());
    EXPECT_DOUBLE_EQ(p.dram, 0.9);
    EXPECT_DOUBLE_EQ(p.tensor, 1.1);
    EXPECT_DOUBLE_EQ(p.cuda, 1.0);
    EXPECT_DOUBLE_EQ(p.launch, 2.0);

    EXPECT_TRUE(sim::DevicePerturbation::parse("").identity());
    EXPECT_THROW(sim::DevicePerturbation::parse("warp=2"), Error);
    EXPECT_THROW(sim::DevicePerturbation::parse("dram"), Error);
    EXPECT_THROW(sim::DevicePerturbation::parse("dram=0"), Error);
    EXPECT_THROW(sim::DevicePerturbation::parse("dram=x"), Error);
}

TEST(PerturbTest, EnvHookScalesDeviceFactories)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const sim::DeviceSpec base = sim::DeviceSpec::a100();
    {
        ScopedPerturb perturb("dram=0.5,launch=2");
        const sim::DeviceSpec scaled = sim::DeviceSpec::a100();
        EXPECT_DOUBLE_EQ(scaled.dram_gbps, base.dram_gbps * 0.5);
        EXPECT_DOUBLE_EQ(scaled.kernel_launch_us,
                         base.kernel_launch_us * 2);
        EXPECT_DOUBLE_EQ(scaled.tb_overhead_us, base.tb_overhead_us * 2);
        // Structure-affecting fields stay put: plans must not change.
        EXPECT_EQ(scaled.num_sms, base.num_sms);
        EXPECT_EQ(scaled.max_tb_per_sm, base.max_tb_per_sm);
    }
    // Restored after scope exit.
    EXPECT_DOUBLE_EQ(sim::DeviceSpec::a100().dram_gbps, base.dram_gbps);
}

TEST(PerturbTest, DeviceLookupByCliName)
{
    EXPECT_EQ(sim::device_spec_by_name("a100").name, "A100");
    EXPECT_EQ(sim::device_spec_by_name("rtx3090").name, "RTX3090");
    EXPECT_THROW(sim::device_spec_by_name("h100"), Error);
}

TEST(GateTest, PresetRegistryListsTheGatedFigures)
{
    EXPECT_NE(bench::find_bench_preset("fig7"), nullptr);
    EXPECT_NE(bench::find_bench_preset("fig9"), nullptr);
    EXPECT_NE(bench::find_bench_preset("fig11"), nullptr);
    EXPECT_NE(bench::find_bench_preset("tiny"), nullptr);
    EXPECT_EQ(bench::find_bench_preset("fig99"), nullptr);
}

TEST(GateTest, PresetRunsAreDeterministicAndStamped)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const bench::BenchPreset *tiny = bench::find_bench_preset("tiny");
    ASSERT_NE(tiny, nullptr);
    const prof::BenchRun a = bench::run_bench_preset(*tiny, "a100");
    const prof::BenchRun b = bench::run_bench_preset(*tiny, "a100");

    EXPECT_EQ(a.name, "tiny@a100");
    EXPECT_EQ(a.manifest.device, "a100");
    EXPECT_EQ(a.manifest.schema_version, prof::kBenchSchemaVersion);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        ASSERT_EQ(a.rows[i].key(), b.rows[i].key());
        ASSERT_EQ(a.rows[i].metrics.size(), b.rows[i].metrics.size());
        for (std::size_t j = 0; j < a.rows[i].metrics.size(); ++j) {
            EXPECT_EQ(a.rows[i].metrics[j].second,
                      b.rows[i].metrics[j].second)
                << a.rows[i].key() << "." << a.rows[i].metrics[j].first;
        }
    }

    // The plan-cache row rides along (satellite: cache regressions gate
    // with latency) and is a per-preset delta — identical across the two
    // runs because run_bench_preset clears the process-wide cache.
    const prof::BenchRow *cache_row = nullptr;
    for (const prof::BenchRow &row : a.rows) {
        if (row.series == "plan_cache") {
            cache_row = &row;
        }
    }
    ASSERT_NE(cache_row, nullptr);
    ASSERT_NE(cache_row->find_metric("plan_cache.misses"), nullptr);
    EXPECT_GT(*cache_row->find_metric("plan_cache.misses"), 0);
}

TEST(GateTest, MemoryMetricsGateExactly)
{
    // Footprints are arithmetic, not measurements: the generic "_bytes"
    // 2 % tolerance must NOT apply to the planner's outputs.
    const prof::MetricPolicy peak =
        prof::default_metric_policy("peak_hbm_bytes");
    EXPECT_EQ(peak.direction, prof::Direction::kLowerIsBetter);
    EXPECT_DOUBLE_EQ(peak.rel_tol, 0.0);
    EXPECT_DOUBLE_EQ(peak.abs_tol, 0.0);

    const prof::MetricPolicy round =
        prof::default_metric_policy("peak_round_hbm_bytes");
    EXPECT_DOUBLE_EQ(round.rel_tol, 0.0);

    const prof::MetricPolicy savings =
        prof::default_metric_policy("pooling_savings");
    EXPECT_EQ(savings.direction, prof::Direction::kHigherIsBetter);
    EXPECT_DOUBLE_EQ(savings.rel_tol, 0.0);

    EXPECT_EQ(prof::default_metric_policy("max_queued_hbm_bytes")
                  .direction,
              prof::Direction::kInformational);
}

TEST(GateTest, GrownFootprintFailsTheGate)
{
    // The in-process half of CI's memory self-test (--perturb-mem runs
    // the env hook end-to-end in a fresh process; MULTIGRAIN_MEM_PERTURB
    // is read once per process, so it cannot be toggled here): a single
    // byte of footprint growth must regress under the exact policy.
    ::unsetenv("MULTIGRAIN_PERTURB");
    const bench::BenchPreset *tiny = bench::find_bench_preset("tiny");
    ASSERT_NE(tiny, nullptr);
    const prof::BenchRun baseline =
        bench::run_bench_preset(*tiny, "a100");

    prof::BenchRun grown = baseline;
    int touched = 0;
    for (prof::BenchRow &row : grown.rows) {
        for (auto &[key, value] : row.metrics) {
            if (key == "peak_hbm_bytes") {
                value += 1.0;
                ++touched;
            }
        }
    }
    ASSERT_GT(touched, 0) << "tiny rows carry no footprint metrics";

    const prof::RegressionReport report =
        prof::compare_runs(baseline, grown);
    EXPECT_TRUE(report.gate_failed());
    EXPECT_GE(report.regressed, touched);

    // A shrunk footprint is an improvement, never a regression.
    prof::BenchRun shrunk = baseline;
    for (prof::BenchRow &row : shrunk.rows) {
        for (auto &[key, value] : row.metrics) {
            if (key == "peak_hbm_bytes") {
                value -= 1.0;
            }
        }
    }
    const prof::RegressionReport better =
        prof::compare_runs(baseline, shrunk);
    EXPECT_FALSE(better.gate_failed());
    EXPECT_GT(better.improved, 0);
}

TEST(GateTest, PerturbedRunFailsAgainstCleanBaseline)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const bench::BenchPreset *tiny = bench::find_bench_preset("tiny");
    ASSERT_NE(tiny, nullptr);
    const prof::BenchRun baseline =
        bench::run_bench_preset(*tiny, "a100");

    prof::BenchRun perturbed;
    {
        // A 40 % DRAM-bandwidth cut is far outside every tolerance.
        ScopedPerturb perturb("dram=0.6");
        perturbed = bench::run_bench_preset(*tiny, "a100");
    }

    const prof::RegressionReport report =
        prof::compare_runs(baseline, perturbed);
    EXPECT_TRUE(report.gate_failed());
    EXPECT_GT(report.regressed, 0);
    EXPECT_EQ(report.missing_rows, 0);

    // And the clean re-run still passes — the hook leaves no residue.
    const prof::BenchRun clean = bench::run_bench_preset(*tiny, "a100");
    const prof::RegressionReport clean_report =
        prof::compare_runs(baseline, clean);
    EXPECT_FALSE(clean_report.gate_failed());
    EXPECT_EQ(clean_report.regressed, 0);
}

}  // namespace
}  // namespace multigrain
