// Tests for the mgserve serving layer (ISSUE 4): latency percentiles,
// deterministic traffic generation, sequence-length bucketing, admission
// control (shedding, aging, EDF-with-fairness dequeue), compatible-only
// batching, end-to-end scheduler determinism (same seed, same bytes),
// and the serving regression gate (a perturbed run must fail).

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "gpusim/device.h"
#include "profiler/percentile.h"
#include "profiler/regress.h"
#include "serve/admission.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Scoped MULTIGRAIN_PERTURB setting; restores the previous value.
class ScopedPerturb {
  public:
    explicit ScopedPerturb(const char *spec)
    {
        if (const char *old = std::getenv("MULTIGRAIN_PERTURB")) {
            saved_ = old;
            had_ = true;
        }
        ::setenv("MULTIGRAIN_PERTURB", spec, 1);
    }
    ~ScopedPerturb()
    {
        if (had_) {
            ::setenv("MULTIGRAIN_PERTURB", saved_.c_str(), 1);
        } else {
            ::unsetenv("MULTIGRAIN_PERTURB");
        }
    }

  private:
    std::string saved_;
    bool had_ = false;
};

// ---- Percentiles --------------------------------------------------------

TEST(PercentileTest, LinearInterpolation)
{
    EXPECT_DOUBLE_EQ(prof::percentile({}, 50), 0);
    EXPECT_DOUBLE_EQ(prof::percentile({7}, 0), 7);
    EXPECT_DOUBLE_EQ(prof::percentile({7}, 99), 7);

    // Order must not matter.
    const std::vector<double> v = {40, 10, 30, 20};
    EXPECT_DOUBLE_EQ(prof::percentile(v, 0), 10);
    EXPECT_DOUBLE_EQ(prof::percentile(v, 50), 25);
    EXPECT_DOUBLE_EQ(prof::percentile(v, 100), 40);
    EXPECT_DOUBLE_EQ(prof::percentile(v, 25), 17.5);

    EXPECT_THROW(prof::percentile({1.0}, -1), Error);
    EXPECT_THROW(prof::percentile({1.0}, 101), Error);
}

TEST(PercentileTest, SummaryReducesTheTail)
{
    std::vector<double> latencies;
    for (int i = 1; i <= 100; ++i) {
        latencies.push_back(i);
    }
    const prof::LatencySummary s =
        prof::summarize_latencies(std::move(latencies));
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_DOUBLE_EQ(s.p50, 50.5);
    EXPECT_DOUBLE_EQ(s.max, 100);
    EXPECT_GT(s.p99, s.p95);
    EXPECT_GT(s.p95, s.p50);

    const prof::LatencySummary empty = prof::summarize_latencies({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.p99, 0);
}

TEST(PercentileTest, EdgeCases)
{
    // A single sample is every percentile, including the p=0/p=100
    // boundaries.
    EXPECT_DOUBLE_EQ(prof::percentile({42.0}, 0), 42.0);
    EXPECT_DOUBLE_EQ(prof::percentile({42.0}, 50), 42.0);
    EXPECT_DOUBLE_EQ(prof::percentile({42.0}, 100), 42.0);

    // p=0 is the min and p=100 the max, never an out-of-range rank.
    const std::vector<double> v = {5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(prof::percentile(v, 0), 1);
    EXPECT_DOUBLE_EQ(prof::percentile(v, 100), 9);

    // Non-finite samples would silently poison every rank after the
    // sort; they must throw instead of propagating NaN.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(prof::percentile({1.0, nan}, 50), Error);
    EXPECT_THROW(prof::percentile({kInf}, 50), Error);
    EXPECT_THROW(prof::summarize_latencies({1.0, nan}), Error);

    // Negative samples are legal (deltas, clock skews): the summary max
    // must be the largest sample, not a phantom 0.
    const prof::LatencySummary neg =
        prof::summarize_latencies({-3.0, -1.0, -2.0});
    EXPECT_EQ(neg.count, 3u);
    EXPECT_DOUBLE_EQ(neg.max, -1.0);
    EXPECT_DOUBLE_EQ(neg.mean, -2.0);
    EXPECT_DOUBLE_EQ(neg.p50, -2.0);

    const prof::LatencySummary one = prof::summarize_latencies({7.5});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.p50, 7.5);
    EXPECT_DOUBLE_EQ(one.p99, 7.5);
    EXPECT_DOUBLE_EQ(one.max, 7.5);
}

// ---- Traffic ------------------------------------------------------------

serve::TrafficConfig
small_poisson()
{
    serve::TrafficConfig config;
    config.arrivals = serve::ArrivalProcess::kPoisson;
    config.rate_rps = 5000;
    config.num_requests = 24;
    config.seed = 7;
    config.models = {"tiny"};
    config.min_len = 8;
    config.tenants = {{"a", 3.0, serve::SloClass::kInteractive},
                      {"b", 1.0, serve::SloClass::kBatch}};
    config.slo_budget_us[0] = 500;
    return config;
}

TEST(TrafficTest, PoissonStreamIsDeterministicAndOrdered)
{
    serve::TrafficSource first(small_poisson());
    serve::TrafficSource second(small_poisson());

    double prev = -1;
    int n = 0;
    while (first.peek_us() < kInf) {
        ASSERT_EQ(first.peek_us(), second.peek_us());
        const serve::Request a = first.pop();
        const serve::Request b = second.pop();
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.tenant, b.tenant);
        EXPECT_EQ(a.model, b.model);
        EXPECT_EQ(a.valid_len, b.valid_len);
        EXPECT_EQ(a.arrival_us, b.arrival_us);
        EXPECT_EQ(a.deadline_us, b.deadline_us);
        EXPECT_GE(a.arrival_us, prev);
        prev = a.arrival_us;
        // Budgeted classes get arrival + budget; batch has no deadline.
        if (a.slo == serve::SloClass::kInteractive) {
            EXPECT_DOUBLE_EQ(a.deadline_us, a.arrival_us + 500);
        } else {
            EXPECT_EQ(a.deadline_us, kInf);
        }
        ++n;
    }
    EXPECT_EQ(n, 24);
    EXPECT_TRUE(first.exhausted());
    EXPECT_TRUE(second.exhausted());
}

TEST(TrafficTest, ClosedLoopIssuesOnCompletion)
{
    serve::TrafficConfig config;
    config.arrivals = serve::ArrivalProcess::kClosedLoop;
    config.concurrency = 2;
    config.think_time_us = 50;
    config.num_requests = 5;
    config.models = {"tiny"};
    config.min_len = 8;
    serve::TrafficSource source(config);

    // The loop seeds one request per client at t = 0 ...
    const serve::Request r0 = source.pop();
    const serve::Request r1 = source.pop();
    EXPECT_DOUBLE_EQ(r0.arrival_us, 0);
    EXPECT_DOUBLE_EQ(r1.arrival_us, 0);
    EXPECT_EQ(source.peek_us(), kInf);

    // ... and each completion schedules that client's next request.
    source.on_completion(r0, 100);
    ASSERT_LT(source.peek_us(), kInf);
    const serve::Request r2 = source.pop();
    EXPECT_DOUBLE_EQ(r2.arrival_us, 150);  // finish + think time

    source.on_completion(r1, 120);
    source.on_completion(r2, 400);
    const serve::Request r3 = source.pop();
    const serve::Request r4 = source.pop();
    EXPECT_DOUBLE_EQ(r3.arrival_us, 170);
    EXPECT_DOUBLE_EQ(r4.arrival_us, 450);
    // num_requests reached: further completions issue nothing.
    source.on_completion(r3, 500);
    EXPECT_EQ(source.peek_us(), kInf);
    EXPECT_TRUE(source.exhausted());
}

// ---- Bucketing ----------------------------------------------------------

TEST(BucketTest, BucketLenRoundsUpAndClamps)
{
    EXPECT_EQ(bucket_len(1, 64, 512), 64);
    EXPECT_EQ(bucket_len(64, 64, 512), 64);
    EXPECT_EQ(bucket_len(65, 64, 512), 128);
    EXPECT_EQ(bucket_len(512, 64, 512), 512);
    EXPECT_EQ(bucket_len(600, 64, 512), 512);  // Clamped to the cap.
}

TEST(BucketTest, CanonicalSamplesAreReproducible)
{
    const ModelConfig tiny = model_config_by_name("tiny");
    const ModelConfig bucketed = bucketed_model(tiny, 64);
    EXPECT_EQ(bucketed.max_seq_len, 64);

    const WorkloadSample a = canonical_bucket_sample(bucketed, 64);
    const WorkloadSample b = canonical_bucket_sample(bucketed, 64);
    EXPECT_EQ(a.valid_len, b.valid_len);
    EXPECT_EQ(a.special_tokens, b.special_tokens);

    // Misaligned or oversized buckets are planning bugs, not inputs.
    EXPECT_THROW(bucketed_model(tiny, 63), Error);
    EXPECT_THROW(bucketed_model(tiny, tiny.max_seq_len + tiny.block),
                 Error);
}

// ---- Admission ----------------------------------------------------------

serve::Request
make_request(std::uint64_t id, const std::string &tenant, double arrival,
             double deadline)
{
    serve::Request r;
    r.id = id;
    r.tenant = tenant;
    r.model = "tiny";
    r.valid_len = 16;
    r.arrival_us = arrival;
    r.deadline_us = deadline;
    return r;
}

TEST(AdmissionTest, ShedsAtCapacity)
{
    serve::AdmissionConfig config;
    config.queue_capacity = 2;
    serve::AdmissionQueue queue(config, {{"a"}});
    EXPECT_TRUE(queue.offer(make_request(0, "a", 0, kInf), 0));
    EXPECT_TRUE(queue.offer(make_request(1, "a", 0, kInf), 0));
    EXPECT_FALSE(queue.offer(make_request(2, "a", 0, kInf), 0));
    EXPECT_EQ(queue.stats().offered, 3u);
    EXPECT_EQ(queue.stats().admitted, 2u);
    EXPECT_EQ(queue.stats().rejected, 1u);
    EXPECT_EQ(queue.stats().max_depth, 2u);
}

TEST(AdmissionTest, AgesOutStaleRequests)
{
    serve::AdmissionConfig config;
    config.queue_capacity = 8;
    config.max_queue_wait_us = 100;
    serve::AdmissionQueue queue(config, {{"a"}});
    EXPECT_TRUE(queue.offer(make_request(0, "a", 0, kInf), 0));
    EXPECT_TRUE(queue.offer(make_request(1, "a", 90, kInf), 90));

    EXPECT_TRUE(queue.expire(50).empty());
    const std::vector<serve::Request> expired = queue.expire(150);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 0u);
    EXPECT_EQ(queue.stats().timed_out, 1u);
    EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionTest, PopsEarliestDeadlineWithTenantRotation)
{
    serve::AdmissionConfig config;
    serve::AdmissionQueue queue(config, {{"a"}, {"b"}});
    // b's head has the earlier deadline: EDF picks it over a.
    ASSERT_TRUE(queue.offer(make_request(0, "a", 0, 400), 0));
    ASSERT_TRUE(queue.offer(make_request(1, "b", 0, 200), 0));
    ASSERT_TRUE(queue.offer(make_request(2, "b", 0, 400), 0));
    auto first = queue.pop_seed();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->id, 1u);

    // The heads now tie at deadline 400. The cursor rotated past b, so
    // fairness gives a the tie — b cannot monopolize the device.
    auto second = queue.pop_seed();
    auto third = queue.pop_seed();
    ASSERT_TRUE(second.has_value() && third.has_value());
    EXPECT_EQ(second->id, 0u);
    EXPECT_EQ(third->id, 2u);
    EXPECT_FALSE(queue.pop_seed().has_value());
    EXPECT_EQ(queue.stats().dispatched, 3u);
}

TEST(AdmissionTest, CountersStayExactUnderSimultaneousShedAndAgeOut)
{
    // Sheds and age-outs in the same tick must not double-count or lose
    // requests: every offer lands in exactly one of admitted/rejected,
    // and every admitted request in exactly one of
    // dispatched/timed_out/still-queued.
    serve::AdmissionConfig config;
    config.queue_capacity = 4;
    config.max_queue_wait_us = 100;
    serve::AdmissionQueue queue(config, {{"a"}, {"b"}});

    // Fill to capacity at t=0, then shed two more at t=0.
    for (std::uint64_t id = 0; id < 4; ++id) {
        ASSERT_TRUE(queue.offer(
            make_request(id, id % 2 ? "b" : "a", 0, kInf), 0));
    }
    EXPECT_FALSE(queue.offer(make_request(4, "a", 0, kInf), 0));
    EXPECT_FALSE(queue.offer(make_request(5, "b", 0, kInf), 0));

    // t=150: everything queued is stale. In the same tick, age out the
    // backlog, then offer two fresh requests — one admitted into the
    // freed space, one... also admitted (capacity is free again), then
    // dispatch one and age out the other at t=300.
    const std::vector<serve::Request> aged = queue.expire(150);
    EXPECT_EQ(aged.size(), 4u);
    ASSERT_TRUE(queue.offer(make_request(6, "a", 150, kInf), 150));
    ASSERT_TRUE(queue.offer(make_request(7, "b", 150, kInf), 150));
    auto popped = queue.pop_seed();
    ASSERT_TRUE(popped.has_value());
    const std::vector<serve::Request> aged2 = queue.expire(300);
    EXPECT_EQ(aged2.size(), 1u);

    const serve::AdmissionStats &s = queue.stats();
    EXPECT_EQ(s.offered, 8u);
    EXPECT_EQ(s.admitted, 6u);
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.timed_out, 5u);
    EXPECT_EQ(s.dispatched, 1u);
    // The conservation laws the SLO-attribution report relies on.
    EXPECT_EQ(s.offered, s.admitted + s.rejected);
    EXPECT_EQ(s.admitted, s.dispatched + s.timed_out + queue.depth());
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionTest, EndToEndCountersSumToArrivals)
{
    // Under the overload preset every arrival must be accounted for:
    // completed + rejected + timed_out + still-in-flight == offered, and
    // offered == the number of synthetic arrivals. A leak here would
    // corrupt the mgtrace span census silently.
    serve::ServeConfig config = serve::serve_preset_by_name("overload");
    const sim::DeviceSpec device = sim::device_spec_by_name("a100");
    serve::Server server(config, device);
    const serve::ServeReport report = server.run();

    EXPECT_EQ(report.admission.offered,
              static_cast<std::uint64_t>(config.traffic.num_requests));
    EXPECT_EQ(report.admission.offered,
              report.admission.admitted + report.admission.rejected);
    EXPECT_EQ(report.admission.admitted,
              report.completed + report.admission.timed_out);
    EXPECT_GT(report.admission.rejected, 0u);
}

// ---- Scheduler ----------------------------------------------------------

TEST(SchedulerTest, BatchesOnlyCompatibleRequests)
{
    serve::SchedulerConfig config;
    config.max_batch = 8;
    config.bucket_granularity = 64;
    config.max_concurrent_batches = 4;
    const serve::Scheduler scheduler(config, {"tiny"});

    serve::AdmissionQueue queue(serve::AdmissionConfig{}, {{"a"}});
    // Two bucket-64 requests and one bucket-128 request: the round must
    // not mix them into one plan.
    serve::Request r0 = make_request(0, "a", 0, kInf);
    serve::Request r1 = make_request(1, "a", 0, kInf);
    serve::Request r2 = make_request(2, "a", 0, kInf);
    r0.valid_len = 16;
    r1.valid_len = 60;
    r2.valid_len = 100;
    ASSERT_TRUE(queue.offer(std::move(r0), 0));
    ASSERT_TRUE(queue.offer(std::move(r1), 0));
    ASSERT_TRUE(queue.offer(std::move(r2), 0));

    const std::vector<serve::Batch> round = scheduler.next_round(queue);
    ASSERT_EQ(round.size(), 2u);
    EXPECT_EQ(round[0].bucket, 64);
    EXPECT_EQ(round[0].size(), 2);
    EXPECT_EQ(round[0].planned_batch, 2);
    EXPECT_EQ(round[1].bucket, 128);
    EXPECT_EQ(round[1].size(), 1);
    EXPECT_TRUE(queue.empty());

    // Power-of-two padding quantizes plan keys.
    EXPECT_EQ(scheduler.planned_batch(3), 4);
    EXPECT_EQ(scheduler.planned_batch(5), 8);

    // Granularity below the model's block size is a config error.
    serve::SchedulerConfig bad = config;
    bad.bucket_granularity = 63;
    EXPECT_THROW(serve::Scheduler(bad, {"tiny"}), Error);
}

// ---- End to end ---------------------------------------------------------

double
metric(const serve::ServeReport &report, const std::string &key)
{
    for (const serve::ServeMetricDef &def : serve::serve_metric_registry()) {
        if (key == def.key) {
            return def.get(report);
        }
    }
    ADD_FAILURE() << "no serve metric " << key;
    return 0;
}

TEST(ServerTest, OverloadPresetShedsAndRespectsQueueBound)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const serve::ServeConfig config =
        serve::serve_preset_by_name("overload");
    serve::Server server(config, sim::device_spec_by_name("a100"));
    const serve::ServeReport report = server.run();

    // Load shedding engaged, surfaced through the metric registry.
    EXPECT_GT(metric(report, "rejected"), 0);
    EXPECT_LE(metric(report, "max_queue_depth"),
              static_cast<double>(config.admission.queue_capacity));
    // Conservation: every offered request is accounted for exactly once.
    EXPECT_EQ(metric(report, "requests"),
              metric(report, "completed") + metric(report, "rejected") +
                  metric(report, "timed_out"));
    EXPECT_EQ(report.records.size(),
              static_cast<std::size_t>(config.traffic.num_requests));
}

TEST(ServerTest, TinyPresetReusesPlansAndMeetsDeadlines)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    serve::Server server(serve::serve_preset_by_name("tiny"),
                         sim::device_spec_by_name("a100"));
    const serve::ServeReport report = server.run();

    EXPECT_EQ(metric(report, "rejected"), 0);
    EXPECT_EQ(metric(report, "completed"), 64);
    // Bucketing + pow2 padding make plan keys repeat across requests.
    EXPECT_GT(report.plan_cache.hits, 0u);
    // Continuous batching actually batches.
    EXPECT_GT(metric(report, "avg_batch"), 1.0);
    EXPECT_GT(metric(report, "p99_us"), metric(report, "p50_us"));
}

TEST(ServerTest, MemtightPresetShedsOnMemoryAndPacksRoundsToBytes)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const serve::ServeConfig config =
        serve::serve_preset_by_name("memtight");
    ASSERT_GT(config.admission.hbm_budget_bytes, 0u);
    ASSERT_GT(config.scheduler.round_hbm_budget_bytes, 0u);
    serve::Server server(config, sim::device_spec_by_name("a100"));
    const serve::ServeReport report = server.run();

    // The memory valve engaged, with exact counters: every shed is a
    // rejection, and conservation still holds.
    EXPECT_GT(metric(report, "shed_memory"), 0);
    EXPECT_LE(metric(report, "shed_memory"), metric(report, "rejected"));
    EXPECT_EQ(metric(report, "requests"),
              metric(report, "completed") + metric(report, "rejected") +
                  metric(report, "timed_out"));
    // The queue's projected bytes never passed the admission budget ...
    EXPECT_LE(report.admission.max_queued_bytes,
              config.admission.hbm_budget_bytes);
    // ... and every round packed under the round byte budget (the
    // first-batch exemption never fires here: a single tiny batch is
    // far below the budget).
    ASSERT_EQ(report.round_hbm_bytes.size(),
              static_cast<std::size_t>(report.rounds));
    for (const std::uint64_t bytes : report.round_hbm_bytes) {
        EXPECT_GT(bytes, 0u);
        EXPECT_LE(bytes, config.scheduler.round_hbm_budget_bytes);
    }
    EXPECT_GT(report.peak_round_hbm_bytes, 0u);
    EXPECT_LE(report.peak_round_hbm_bytes,
              config.scheduler.round_hbm_budget_bytes);
}

TEST(ServerTest, RoundWatermarksAreReportedWithoutAnyBudget)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    serve::Server server(serve::serve_preset_by_name("tiny"),
                         sim::device_spec_by_name("a100"));
    const serve::ServeReport report = server.run();

    // Byte watermarks are observability, not policy: the unbudgeted
    // preset still carries one per round.
    EXPECT_EQ(metric(report, "shed_memory"), 0);
    ASSERT_EQ(report.round_hbm_bytes.size(),
              static_cast<std::size_t>(report.rounds));
    EXPECT_GT(report.peak_round_hbm_bytes, 0u);
}

TEST(ServerTest, MemtightSameSeedSameBytes)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const sim::DeviceSpec device = sim::device_spec_by_name("a100");
    PlanCache::instance().clear();
    serve::Server first(serve::serve_preset_by_name("memtight"), device);
    prof::BenchRun a = serve::serve_bench_run(first.run(), "a100");
    PlanCache::instance().clear();
    serve::Server second(serve::serve_preset_by_name("memtight"), device);
    prof::BenchRun b = serve::serve_bench_run(second.run(), "a100");

    EXPECT_EQ(a.name, "serve_memtight@a100");
    a.manifest.timestamp.clear();
    b.manifest.timestamp.clear();
    EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(AdmissionTest, MemoryBudgetShedsAndPushFrontRestores)
{
    serve::AdmissionConfig config;
    config.queue_capacity = 8;
    config.hbm_budget_bytes = 1000;
    serve::AdmissionQueue queue(config, {{"t"}});

    serve::Request a;
    a.id = 1;
    a.tenant = "t";
    a.footprint_bytes = 600;
    serve::Request b = a;
    b.id = 2;
    b.footprint_bytes = 500;

    EXPECT_TRUE(queue.offer(a, 0));
    EXPECT_EQ(queue.queued_bytes(), 600u);
    // 600 + 500 > 1000: shed on memory, not on depth.
    EXPECT_FALSE(queue.offer(b, 0));
    EXPECT_EQ(queue.stats().shed_memory, 1u);
    EXPECT_EQ(queue.stats().rejected, 1u);

    // Draining releases the bytes; push_front restores them and the
    // request's place at its tenant head.
    std::optional<serve::Request> seed = queue.pop_seed();
    ASSERT_TRUE(seed.has_value());
    EXPECT_EQ(queue.queued_bytes(), 0u);
    queue.push_front(std::move(*seed));
    EXPECT_EQ(queue.queued_bytes(), 600u);
    EXPECT_EQ(queue.stats().dispatched, 0u);
    std::optional<serve::Request> again = queue.pop_seed();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->id, 1u);
    // Now b fits.
    EXPECT_TRUE(queue.offer(b, 0));
    EXPECT_EQ(queue.stats().max_queued_bytes, 600u);
}

TEST(ServerTest, SameSeedSamePresetSameBytes)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const sim::DeviceSpec device = sim::device_spec_by_name("a100");
    // Two full in-process runs from the same cache start state (the
    // report's plan_cache delta is part of the gated bytes, so the
    // cache is cleared first exactly as run_bench_preset does).
    PlanCache::instance().clear();
    serve::Server first(serve::serve_preset_by_name("tiny"), device);
    prof::BenchRun a = serve::serve_bench_run(first.run(), "a100");
    PlanCache::instance().clear();
    serve::Server second(serve::serve_preset_by_name("tiny"), device);
    prof::BenchRun b = serve::serve_bench_run(second.run(), "a100");

    EXPECT_EQ(a.name, "serve_tiny@a100");
    // The manifest timestamp is wall clock — the one legitimate
    // difference between the two documents.
    a.manifest.timestamp.clear();
    b.manifest.timestamp.clear();
    EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ServeGateTest, RegisteredPresetFailsUnderPerturbation)
{
    ::unsetenv("MULTIGRAIN_PERTURB");
    const bench::BenchPreset *preset =
        bench::find_bench_preset("serve_tiny");
    ASSERT_NE(preset, nullptr);
    const prof::BenchRun baseline =
        bench::run_bench_preset(*preset, "a100");

    prof::BenchRun perturbed;
    {
        // A 40 % DRAM-bandwidth cut is far outside every tolerance.
        ScopedPerturb perturb("dram=0.6");
        perturbed = bench::run_bench_preset(*preset, "a100");
    }
    const prof::RegressionReport report =
        prof::compare_runs(baseline, perturbed);
    EXPECT_TRUE(report.gate_failed());
    EXPECT_GT(report.regressed, 0);

    // And a clean re-run still matches the baseline bit for bit on the
    // gated metrics — the serving loop leaves no residue.
    const prof::BenchRun clean = bench::run_bench_preset(*preset, "a100");
    const prof::RegressionReport clean_report =
        prof::compare_runs(baseline, clean);
    EXPECT_FALSE(clean_report.gate_failed());
    EXPECT_EQ(clean_report.regressed, 0);
}

}  // namespace
}  // namespace multigrain
