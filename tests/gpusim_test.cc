// Tests for the GPU execution engine: occupancy rules, analytic timing of
// simple launches on a toy device, resource sharing, load imbalance,
// stream semantics, and conservation/monotonicity properties.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "gpusim/device.h"
#include "gpusim/engine.h"
#include "gpusim/launch.h"
#include "gpusim/trace.h"

namespace multigrain::sim {
namespace {

/// A deliberately simple device so expected times are hand-computable:
/// per-SM CUDA rate 0.5e6 flops/us, per-SM tensor rate 1e6 flops/us,
/// DRAM 1e5 B/us, L2 4e5 B/us, per-SM memory cap 1e5 B/us.
DeviceSpec
toy_device()
{
    DeviceSpec d;
    d.name = "toy";
    d.num_sms = 2;
    d.tensor_tflops = 2.0;
    d.cuda_tflops = 1.0;
    d.dram_gbps = 100.0;
    d.l2_gbps = 400.0;
    d.l2_mb = 4.0;
    d.l1_kb_per_sm = 128;
    d.max_tb_per_sm = 4;
    d.max_threads_per_sm = 1024;
    d.regs_per_sm = 65536;
    d.smem_per_sm_bytes = 64 * 1024;
    d.tensor_efficiency = 1.0;
    d.cuda_efficiency = 1.0;
    d.dram_efficiency = 1.0;
    d.kernel_launch_us = 1.0;
    d.tb_overhead_us = 0.5;
    d.sm_mem_burst = 2.0;
    return d;
}

TbShape
small_shape()
{
    TbShape s;
    s.threads = 128;
    s.smem_bytes = 0;
    s.regs_per_thread = 32;
    return s;
}

KernelLaunch
one_kernel(const char *name, const TbWork &work, index_t count)
{
    KernelLaunch k;
    k.name = name;
    k.shape = small_shape();
    k.add_tb(work, count);
    return k;
}

// ----------------------------------------------------------- occupancy ----

TEST(OccupancyTest, SlotLimit)
{
    const DeviceSpec d = toy_device();
    EXPECT_EQ(occupancy_per_sm(d, small_shape()), 4);  // max_tb_per_sm.
}

TEST(OccupancyTest, ThreadLimit)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.threads = 512;
    EXPECT_EQ(occupancy_per_sm(d, s), 2);  // 1024 / 512.
}

TEST(OccupancyTest, SmemLimit)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.smem_bytes = 20 * 1024;
    EXPECT_EQ(occupancy_per_sm(d, s), 3);  // 64K / 20K.
}

TEST(OccupancyTest, RegisterLimit)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.regs_per_thread = 256;  // 128 * 256 = 32768 regs per block.
    EXPECT_EQ(occupancy_per_sm(d, s), 2);
}

TEST(OccupancyTest, NeverBelowOne)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.smem_bytes = 1024 * 1024;  // Larger than the SM.
    EXPECT_EQ(occupancy_per_sm(d, s), 1);
}

TEST(OccupancyTest, ThreadsBeyondSmStillClampToOne)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.threads = d.max_threads_per_sm * 2;  // Divides to 0 before the clamp.
    EXPECT_EQ(occupancy_per_sm(d, s), 1);
}

TEST(OccupancyTest, ZeroSmemSkipsTheSmemLimit)
{
    // smem 0 must mean "no shared memory", not a division by zero or a
    // zero-occupancy limit.
    DeviceSpec d = toy_device();
    d.max_tb_per_sm = 64;
    d.max_threads_per_sm = 64 * 128;
    d.regs_per_sm = 64 * 128 * 32;
    TbShape s = small_shape();
    s.smem_bytes = 0;
    EXPECT_EQ(occupancy_per_sm(d, s), 64);
}

TEST(OccupancyTest, ZeroRegsSkipsTheRegisterLimit)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.regs_per_thread = 0;  // Unknown register count: slot limit governs.
    EXPECT_EQ(occupancy_per_sm(d, s), 4);
}

TEST(OccupancyTest, ExactFitBoundaries)
{
    const DeviceSpec d = toy_device();
    // Exactly filling a resource is allowed; one byte/thread over halves
    // the count (integer division, no rounding up).
    TbShape s = small_shape();
    s.smem_bytes = d.smem_per_sm_bytes / 4;  // 4 blocks fit exactly.
    EXPECT_EQ(occupancy_per_sm(d, s), 4);
    s.smem_bytes += 1;
    EXPECT_EQ(occupancy_per_sm(d, s), 3);

    TbShape t = small_shape();
    t.threads = d.max_threads_per_sm;  // One block owns the whole SM.
    t.regs_per_thread = d.regs_per_sm / d.max_threads_per_sm;
    EXPECT_EQ(occupancy_per_sm(d, t), 1);
}

TEST(OccupancyTest, TightestResourceGoverns)
{
    const DeviceSpec d = toy_device();
    TbShape s = small_shape();
    s.threads = 256;          // Thread limit: 4.
    s.smem_bytes = 32 * 1024; // Smem limit: 2  <- the binding one.
    s.regs_per_thread = 64;   // Register limit: 65536/16384 = 4.
    EXPECT_EQ(occupancy_per_sm(d, s), 2);
}

TEST(OccupancyTest, RealDevicesAlwaysFitTheDefaultShape)
{
    // The shipped kernels all launch default-ish shapes; neither Table-1
    // device may ever clamp them to zero (or below the slot count a real
    // occupancy calculator would report).
    for (const DeviceSpec &d : {DeviceSpec::a100(), DeviceSpec::rtx3090()}) {
        const int occ = occupancy_per_sm(d, TbShape{});
        EXPECT_GE(occ, 1) << d.name;
        EXPECT_LE(occ, d.max_tb_per_sm) << d.name;
    }
}

// ------------------------------------------------------------- devices ----

TEST(DeviceTest, Table1ValuesPreserved)
{
    const DeviceSpec a = DeviceSpec::a100();
    EXPECT_EQ(a.num_sms, 108);
    EXPECT_DOUBLE_EQ(a.tensor_tflops, 169.0);
    EXPECT_DOUBLE_EQ(a.cuda_tflops, 42.3);
    EXPECT_DOUBLE_EQ(a.dram_gbps, 1555.0);
    EXPECT_DOUBLE_EQ(a.l2_mb, 40.0);

    const DeviceSpec r = DeviceSpec::rtx3090();
    EXPECT_DOUBLE_EQ(r.tensor_tflops, 58.0);
    EXPECT_DOUBLE_EQ(r.cuda_tflops, 29.3);
    EXPECT_DOUBLE_EQ(r.dram_gbps, 936.2);
    // The paper's RTX3090 discussion hinges on this asymmetry: tensor peak
    // drops much more than CUDA peak (§5.1).
    EXPECT_GT((a.tensor_tflops / r.tensor_tflops) /
                  (a.cuda_tflops / r.cuda_tflops),
              1.5);
}

TEST(DeviceTest, HbmCapacity)
{
    // Largest shipping variants: A100 SXM 80 GB, RTX 3090 24 GB. The
    // accessor is the byte-budget serving scheduler's default ceiling.
    const DeviceSpec a = DeviceSpec::a100();
    EXPECT_DOUBLE_EQ(a.hbm_gbytes, 80.0);
    EXPECT_EQ(a.hbm_capacity_bytes(), 80'000'000'000ull);

    const DeviceSpec r = DeviceSpec::rtx3090();
    EXPECT_DOUBLE_EQ(r.hbm_gbytes, 24.0);
    EXPECT_EQ(r.hbm_capacity_bytes(), 24'000'000'000ull);

    // Capacity is not a timing input: perturbations must leave it alone.
    DeviceSpec p = DeviceSpec::a100();
    DevicePerturbation perturb;
    perturb.dram = 0.5;
    apply_perturbation(p, perturb);
    EXPECT_DOUBLE_EQ(p.hbm_gbytes, 80.0);
}

// ---------------------------------------------------------- basic time ----

TEST(EngineTest, SingleCudaBoundBlock)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("k", w, 1));
    const SimResult r = sim.run();
    // launch 1.0 + prologue 0.5 + 1e6 / 0.5e6 = 3.5 us.
    EXPECT_NEAR(r.total_us, 3.5, 1e-6);
}

TEST(EngineTest, SingleTensorBoundBlock)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.tensor_flops = 2e6;
    sim.launch(0, one_kernel("k", w, 1));
    EXPECT_NEAR(sim.run().total_us, 1.0 + 0.5 + 2.0, 1e-6);
}

TEST(EngineTest, SingleMemoryBoundBlock)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.dram_read_bytes = 1e5;
    sim.launch(0, one_kernel("k", w, 1));
    // The per-SM cap (1e5 B/us) and DRAM rate coincide: 1 us of transfer.
    EXPECT_NEAR(sim.run().total_us, 2.5, 1e-6);
}

TEST(EngineTest, ComputeAndMemoryOverlap)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;        // 2 us alone.
    w.dram_read_bytes = 5e4;   // 0.5 us alone.
    sim.launch(0, one_kernel("k", w, 1));
    // Double buffering overlaps the two: max, not sum.
    EXPECT_NEAR(sim.run().total_us, 3.5, 1e-6);
}

TEST(EngineTest, TwoBlocksRunOnSeparateSms)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("k", w, 2));
    EXPECT_NEAR(sim.run().total_us, 3.5, 1e-6);
}

TEST(EngineTest, FourBlocksShareTwoSms)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("k", w, 4));
    // Two blocks per SM share the pipe: 4 us of compute.
    EXPECT_NEAR(sim.run().total_us, 1.0 + 0.5 + 4.0, 1e-6);
}

TEST(EngineTest, EmptyKernelFinishesAtReadyTime)
{
    GpuSim sim(toy_device());
    KernelLaunch k;
    k.name = "empty";
    k.shape = small_shape();
    sim.launch(0, k);
    const SimResult r = sim.run();
    EXPECT_NEAR(r.total_us, 1.0, 1e-9);
    EXPECT_EQ(r.kernels.at(0).num_tbs, 0);
}

TEST(EngineTest, ZeroWorkBlocksStillPayPrologue)
{
    GpuSim sim(toy_device());
    sim.launch(0, one_kernel("k", TbWork{}, 2));
    EXPECT_NEAR(sim.run().total_us, 1.5, 1e-6);
}

// -------------------------------------------------------- conservation ----

TEST(EngineTest, WorkCountersMatchSubmission)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 123;
    w.tensor_flops = 456;
    w.dram_read_bytes = 789;
    w.dram_write_bytes = 10;
    w.l2_bytes = 11;
    sim.launch(0, one_kernel("k", w, 7));
    const SimResult r = sim.run();
    EXPECT_DOUBLE_EQ(r.work.cuda_flops, 123 * 7);
    EXPECT_DOUBLE_EQ(r.work.tensor_flops, 456 * 7);
    EXPECT_DOUBLE_EQ(r.work.dram_read_bytes, 789 * 7);
    EXPECT_DOUBLE_EQ(r.work.dram_write_bytes, 10 * 7);
    EXPECT_DOUBLE_EQ(r.work.l2_bytes, 11 * 7);
    EXPECT_DOUBLE_EQ(r.dram_bytes(), (789.0 + 10.0) * 7);
}

TEST(EngineTest, ManyBlocksApproachRooflineThroughput)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;  // Large enough to amortize the 0.5 us prologue.
    const index_t n = 200;
    sim.launch(0, one_kernel("k", w, n));
    const SimResult r = sim.run();
    // Total compute 2e8 flops at 1e6 flops/us device-wide = 200 us.
    const double compute_us = 2e8 / 1e6;
    EXPECT_GT(r.total_us, compute_us);
    EXPECT_LT(r.total_us, compute_us * 1.25);
}

TEST(EngineTest, LoadImbalanceDominatesMakespan)
{
    GpuSim sim(toy_device());
    KernelLaunch k;
    k.name = "imbalanced";
    k.shape = small_shape();
    TbWork heavy;
    heavy.cuda_flops = 50e6;  // 100 us alone on a full SM pipe.
    TbWork light;
    light.cuda_flops = 1e5;
    k.add_tb(heavy, 1);
    k.add_tb(light, 100);
    sim.launch(0, std::move(k));
    const SimResult r = sim.run();
    // Balanced-work lower bound would be ~60 us; the straggler forces 100+.
    EXPECT_GT(r.total_us, 100.0);
    EXPECT_LT(r.total_us, 140.0);
}

// ------------------------------------------------------------- streams ----

TEST(EngineTest, SameStreamSerializes)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("a", w, 2));
    sim.launch(0, one_kernel("b", w, 2));
    const SimResult r = sim.run();
    EXPECT_GE(r.find("b")->start_us, r.find("a")->end_us);
}

TEST(EngineTest, DifferentStreamsOverlap)
{
    GpuSim sim(toy_device());
    const int s1 = sim.create_stream();
    TbWork w;
    w.cuda_flops = 4e6;
    sim.launch(0, one_kernel("a", w, 2));
    sim.launch(s1, one_kernel("b", w, 2));
    const SimResult r = sim.run();
    EXPECT_LT(r.find("b")->start_us, r.find("a")->end_us);
    // Sharing the pipes makes both slower than alone but the makespan
    // shorter than serial execution.
    const double serial = 2 * (4e6 / 0.5e6);
    EXPECT_LT(r.total_us, serial + 2.0);
}

TEST(EngineTest, MultiStreamFillsIdleSms)
{
    // One block per kernel: alone, each kernel leaves an SM idle. On two
    // streams the blocks land on different SMs and fully overlap.
    GpuSim serial(toy_device());
    TbWork w;
    w.cuda_flops = 2e6;
    serial.launch(0, one_kernel("a", w, 1));
    serial.launch(0, one_kernel("b", w, 1));
    const double t_serial = serial.run().total_us;

    GpuSim overlap(toy_device());
    const int s1 = overlap.create_stream();
    overlap.launch(0, one_kernel("a", w, 1));
    overlap.launch(s1, one_kernel("b", w, 1));
    const double t_overlap = overlap.run().total_us;

    // 4 us compute each + two launch latencies + two prologues.
    EXPECT_NEAR(t_serial, 2 * (1.0 + 0.5 + 4.0), 1e-6);
    EXPECT_NEAR(t_overlap, 4.0 + 1.5, 1e-6);
    EXPECT_LT(t_overlap, t_serial * 0.6);
}

TEST(EngineTest, JoinStreamsOrdersAcrossStreams)
{
    GpuSim sim(toy_device());
    const int s1 = sim.create_stream();
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("a", w, 1));
    sim.launch(s1, one_kernel("b", w, 1));
    sim.join_streams();
    sim.launch(s1, one_kernel("c", w, 1));
    const SimResult r = sim.run();
    EXPECT_GE(r.find("c")->start_us,
              std::max(r.find("a")->end_us, r.find("b")->end_us));
}

TEST(EngineTest, RunTwiceThrows)
{
    GpuSim sim(toy_device());
    sim.launch(0, one_kernel("k", TbWork{}, 1));
    sim.run();
    EXPECT_THROW(sim.run(), Error);
}

// ---------------------------------------------------------- properties ----

TEST(EngineTest, Deterministic)
{
    const auto build = [] {
        GpuSim sim(toy_device());
        const int s1 = sim.create_stream();
        TbWork w;
        w.cuda_flops = 3e5;
        w.dram_read_bytes = 2e4;
        sim.launch(0, one_kernel("a", w, 37));
        sim.launch(s1, one_kernel("b", w, 19));
        sim.join_streams();
        sim.launch(0, one_kernel("c", w, 11));
        return sim.run();
    };
    const SimResult r1 = build();
    const SimResult r2 = build();
    EXPECT_DOUBLE_EQ(r1.total_us, r2.total_us);
    for (std::size_t i = 0; i < r1.kernels.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.kernels[i].end_us, r2.kernels[i].end_us);
    }
}

TEST(EngineTest, MoreComputeNeverFaster)
{
    double prev = 0;
    for (const double flops : {1e5, 2e5, 4e5, 8e5}) {
        GpuSim sim(toy_device());
        TbWork w;
        w.cuda_flops = flops;
        sim.launch(0, one_kernel("k", w, 16));
        const double t = sim.run().total_us;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(EngineTest, FasterDeviceNeverSlower)
{
    TbWork w;
    w.cuda_flops = 5e5;
    w.dram_read_bytes = 4e4;

    GpuSim slow(toy_device());
    slow.launch(0, one_kernel("k", w, 64));
    const double t_slow = slow.run().total_us;

    DeviceSpec fast_spec = toy_device();
    fast_spec.cuda_tflops *= 2;
    fast_spec.dram_gbps *= 2;
    fast_spec.l2_gbps *= 2;
    GpuSim fast(fast_spec);
    fast.launch(0, one_kernel("k", w, 64));
    const double t_fast = fast.run().total_us;

    EXPECT_LT(t_fast, t_slow);
}

TEST(EngineTest, ConcurrencyBoundedByOccupancy)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    sim.launch(0, one_kernel("k", w, 64));
    const SimResult r = sim.run();
    const KernelStats &k = r.kernels.at(0);
    EXPECT_LE(k.avg_concurrency,
              static_cast<double>(k.occupancy_per_sm) * 2 + 1e-9);
    EXPECT_GT(k.avg_concurrency, 1.0);
}

TEST(EngineTest, SpanAndPrefixHelpers)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1e6;
    w.dram_write_bytes = 100;
    sim.launch(0, one_kernel("phase.a", w, 1));
    sim.launch(0, one_kernel("phase.b", w, 1));
    sim.launch(0, one_kernel("other", w, 1));
    const SimResult r = sim.run();
    EXPECT_NEAR(r.span("phase."),
                r.find("phase.b")->end_us - r.find("phase.a")->start_us,
                1e-9);
    EXPECT_DOUBLE_EQ(r.dram_bytes_for("phase."), 200.0);
    EXPECT_GT(r.sum_kernel_time("phase."), 0.0);
    EXPECT_EQ(r.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(r.span("missing"), 0.0);
}

TEST(EngineTest, GroupedAndUngroupedSubmissionsAgree)
{
    TbWork w;
    w.cuda_flops = 2e5;
    w.dram_read_bytes = 1e4;

    GpuSim grouped(toy_device());
    grouped.launch(0, one_kernel("k", w, 12));
    const double t_grouped = grouped.run().total_us;

    GpuSim ungrouped(toy_device());
    KernelLaunch k;
    k.name = "k";
    k.shape = small_shape();
    for (int i = 0; i < 12; ++i) {
        k.tbs.push_back({w, 1});  // Bypass add_tb merging deliberately.
    }
    ungrouped.launch(0, std::move(k));
    const double t_ungrouped = ungrouped.run().total_us;

    EXPECT_NEAR(t_grouped, t_ungrouped, 1e-9);
}

TEST(EngineTest, L2TrafficUsesItsOwnClock)
{
    // Pure-L2 work drains at the L2 rate (4e5 B/us), not the DRAM rate;
    // raise the per-SM burst cap so it does not bind here.
    DeviceSpec d = toy_device();
    d.sm_mem_burst = 20.0;
    GpuSim sim(d);
    TbWork w;
    w.l2_bytes = 4e5;
    sim.launch(0, one_kernel("k", w, 1));
    EXPECT_NEAR(sim.run().total_us, 1.0 + 0.5 + 1.0, 1e-6);
}

TEST(EngineTest, DramPlusL2TakesTheSlowerConstraint)
{
    // dram 1e5 B at 1e5 B/us = 1 us; (dram+l2) = 1.4e5 B at L2 4e5 = 0.35;
    // per-SM cap: 1.4e5 at 1e5 = 1.4 us -> the SM burst bounds it.
    GpuSim sim(toy_device());
    TbWork w;
    w.dram_read_bytes = 1e5;
    w.l2_bytes = 4e4;
    sim.launch(0, one_kernel("k", w, 1));
    EXPECT_NEAR(sim.run().total_us, 1.0 + 0.5 + 1.4, 1e-6);
}

TEST(EngineTest, UnitSaturationCapsLoneBlocks)
{
    // With unit_saturation = 1 a 128-thread block alone sustains at most
    // 128/1024 = 1/8 of the SM pipe; the same work then takes 8x longer.
    DeviceSpec capped = toy_device();
    capped.unit_saturation = 1.0;
    GpuSim sim(capped);
    TbWork w;
    w.cuda_flops = 1e6;  // 2 us at full pipe.
    sim.launch(0, one_kernel("k", w, 1));
    EXPECT_NEAR(sim.run().total_us, 1.0 + 0.5 + 16.0, 1e-6);
}

TEST(EngineTest, UnitSaturationIrrelevantWhenSmIsFull)
{
    // Eight resident blocks split the pipe to 1/8 each - already below the
    // saturation cap, so capped and uncapped devices agree.
    DeviceSpec capped = toy_device();
    capped.unit_saturation = 1.0;
    capped.max_tb_per_sm = 8;
    DeviceSpec uncapped = capped;
    uncapped.unit_saturation = 0.0;

    TbWork w;
    w.cuda_flops = 1e6;
    GpuSim a(capped), b(uncapped);
    a.launch(0, one_kernel("k", w, 16));
    b.launch(0, one_kernel("k", w, 16));
    EXPECT_NEAR(a.run().total_us, b.run().total_us, 1e-6);
}

TEST(EngineTest, LaunchOnUnknownStreamThrows)
{
    GpuSim sim(toy_device());
    EXPECT_THROW(sim.launch(3, one_kernel("k", TbWork{}, 1)), Error);
}

TEST(EngineTest, ManySmallKernelsSerializeByLaunchLatency)
{
    GpuSim sim(toy_device());
    for (int i = 0; i < 5; ++i) {
        TbWork w;
        w.cuda_flops = 1;  // Negligible work.
        sim.launch(0, one_kernel("k", w, 1));
    }
    const double t = sim.run().total_us;
    // Each kernel pays launch latency + prologue serially.
    EXPECT_GT(t, 5 * (1.0 + 0.5));
}

TEST(TraceTest, ChromeTraceContainsKernelsAndStreams)
{
    GpuSim sim(toy_device());
    const int s1 = sim.create_stream();
    TbWork w;
    w.cuda_flops = 1e6;
    w.dram_write_bytes = 100;
    sim.launch(0, one_kernel("kernel_a", w, 2));
    sim.launch(s1, one_kernel("kernel_b", w, 1));
    const SimResult r = sim.run();
    const std::string json = chrome_trace_json(r);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("kernel_a"), std::string::npos);
    EXPECT_NE(json.find("kernel_b"), std::string::npos);
    EXPECT_NE(json.find("stream 0"), std::string::npos);
    EXPECT_NE(json.find("stream 1"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Braces and brackets balance (cheap JSON well-formedness check).
    index_t braces = 0, brackets = 0;
    for (const char c : json) {
        braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
        brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
        ASSERT_GE(braces, 0);
        ASSERT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, EscapesSpecialCharactersInNames)
{
    GpuSim sim(toy_device());
    TbWork w;
    w.cuda_flops = 1;
    sim.launch(0, one_kernel("weird\"name\\with\nstuff", w, 1));
    const std::string json = chrome_trace_json(sim.run());
    EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"),
              std::string::npos);
}

TEST(LaunchTest, AddTbMergesIdenticalTailGroups)
{
    KernelLaunch k;
    TbWork w;
    w.cuda_flops = 5;
    k.add_tb(w, 3);
    k.add_tb(w, 2);
    EXPECT_EQ(k.tbs.size(), 1u);
    EXPECT_EQ(k.num_tbs(), 5);
    w.cuda_flops = 6;
    k.add_tb(w, 1);
    EXPECT_EQ(k.tbs.size(), 2u);
    EXPECT_DOUBLE_EQ(k.total_work().cuda_flops, 5 * 5 + 6);
}

}  // namespace
}  // namespace multigrain::sim
