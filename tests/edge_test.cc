// Edge cases across the stack: degenerate sequences, odd shapes, empty
// parts, contract violations — the inputs a downstream user will
// eventually feed the library.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/attention.h"
#include "core/planner.h"
#include "gpusim/device.h"
#include "kernels/reference.h"
#include "patterns/slice.h"

namespace multigrain {
namespace {

TEST(EdgeTest, SingleBlockSequence)
{
    CompoundPattern p;
    p.seq_len = 16;  // Exactly one block.
    p.atoms.push_back(AtomicPattern::local(16));  // Fully dense.
    AttentionConfig config;
    config.head_dim = 8;
    config.block = 16;
    Rng rng(1);
    const HalfMatrix q = random_half_matrix(rng, 16, 8, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, 16, 8, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, 16, 8, -0.5f, 0.5f);
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly, SliceMode::kDense}) {
        const AttentionEngine engine(p, config, mode);
        const DoubleMatrix ref = kernels::ref_attention(
            q, k, v, *engine.plan().full, config.effective_scale());
        EXPECT_LT(kernels::max_abs_diff(widen(engine.run(q, k, v)), ref),
                  0.03)
            << to_string(mode);
        EXPECT_GT(engine.simulate(sim::DeviceSpec::a100()).total_us, 0);
    }
}

TEST(EdgeTest, MostlyPaddedSequence)
{
    CompoundPattern p;
    p.seq_len = 128;
    p.valid_len = 5;  // Almost everything is padding.
    p.atoms.push_back(AtomicPattern::local(8));
    AttentionConfig config;
    config.head_dim = 8;
    config.block = 16;
    Rng rng(2);
    const HalfMatrix q = random_half_matrix(rng, 128, 8);
    const HalfMatrix k = random_half_matrix(rng, 128, 8);
    const HalfMatrix v = random_half_matrix(rng, 128, 8);
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const HalfMatrix out = engine.run(q, k, v);
    for (index_t r = 5; r < 128; ++r) {
        for (index_t d = 0; d < 8; ++d) {
            EXPECT_EQ(float(out.at(r, d)), 0.0f);
        }
    }
    // Rows 0..4 still normalize properly.
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *engine.plan().full, config.effective_scale());
    EXPECT_LT(kernels::max_abs_diff(widen(out), ref), 0.03);
}

TEST(EdgeTest, HeadDimSmallerThanBlock)
{
    CompoundPattern p;
    p.seq_len = 128;
    p.atoms.push_back(AtomicPattern::local(10));
    AttentionConfig config;
    config.head_dim = 24;  // Not a divisor or multiple of 64.
    config.block = 64;
    Rng rng(3);
    const HalfMatrix q = random_half_matrix(rng, 128, 24, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, 128, 24, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, 128, 24, -0.5f, 0.5f);
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *engine.plan().full, config.effective_scale());
    EXPECT_LT(kernels::max_abs_diff(widen(engine.run(q, k, v)), ref), 0.03);
    EXPECT_GT(engine.simulate(sim::DeviceSpec::a100()).total_us, 0);
}

TEST(EdgeTest, HeadDimLargerThanBlock)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::local(6));
    AttentionConfig config;
    config.head_dim = 40;
    config.block = 16;  // head_dim spans 2.5 blocks.
    Rng rng(4);
    const HalfMatrix q = random_half_matrix(rng, 64, 40, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, 64, 40, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, 64, 40, -0.5f, 0.5f);
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *engine.plan().full, config.effective_scale());
    EXPECT_LT(kernels::max_abs_diff(widen(engine.run(q, k, v)), ref), 0.03);
}

TEST(EdgeTest, ContractViolationsThrow)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::local(4));
    AttentionConfig config;
    config.head_dim = 16;
    config.block = 16;

    AttentionConfig bad = config;
    bad.batch = 0;
    EXPECT_THROW(AttentionEngine(p, bad, SliceMode::kMultigrain), Error);

    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    Rng rng(5);
    const HalfMatrix ok = random_half_matrix(rng, 64, 16);
    const HalfMatrix wrong_rows = random_half_matrix(rng, 32, 16);
    const HalfMatrix wrong_cols = random_half_matrix(rng, 64, 8);
    EXPECT_THROW(engine.run(wrong_rows, ok, ok), Error);
    EXPECT_THROW(engine.run(ok, ok, wrong_cols), Error);
    EXPECT_THROW(engine.run_backward(ok, ok, ok, wrong_cols), Error);
}

TEST(EdgeTest, ScaleOverrideIsHonored)
{
    CompoundPattern p;
    p.seq_len = 32;
    p.atoms.push_back(AtomicPattern::local(4));
    AttentionConfig config;
    config.head_dim = 8;
    config.block = 16;
    config.scale = 0.01;  // Custom scaling factor instead of 1/sqrt(d).
    Rng rng(6);
    const HalfMatrix q = random_half_matrix(rng, 32, 8);
    const HalfMatrix k = random_half_matrix(rng, 32, 8);
    const HalfMatrix v = random_half_matrix(rng, 32, 8);
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const DoubleMatrix ref =
        kernels::ref_attention(q, k, v, *engine.plan().full, 0.01);
    EXPECT_LT(kernels::max_abs_diff(widen(engine.run(q, k, v)), ref), 0.03);
}

TEST(EdgeTest, PlannerCanEvaluateDenseMode)
{
    CompoundPattern p;
    p.seq_len = 512;
    p.atoms.push_back(AtomicPattern::local(16));
    AttentionConfig config;
    config.head_dim = 64;
    PlannerOptions options;
    options.modes = {SliceMode::kMultigrain, SliceMode::kDense};
    const PlanDecision d = plan_attention(p, config,
                                          sim::DeviceSpec::a100(), options);
    // A very sparse pattern: dense must lose.
    EXPECT_EQ(d.best.mode, SliceMode::kMultigrain);
    bool saw_dense = false;
    for (const PlanCandidate &c : d.candidates) {
        saw_dense |= c.mode == SliceMode::kDense;
    }
    EXPECT_TRUE(saw_dense);
}

TEST(EdgeTest, SelfAttentionDiagonalOnly)
{
    // window 0: every token attends only itself -> softmax gives 1 and
    // the context equals V exactly.
    CompoundPattern p;
    p.seq_len = 32;
    p.atoms.push_back(AtomicPattern::local(0));
    AttentionConfig config;
    config.head_dim = 8;
    config.block = 16;
    Rng rng(7);
    const HalfMatrix q = random_half_matrix(rng, 32, 8);
    const HalfMatrix k = random_half_matrix(rng, 32, 8);
    const HalfMatrix v = random_half_matrix(rng, 32, 8);
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const HalfMatrix out = engine.run(q, k, v);
    EXPECT_LT(kernels::max_abs_diff(widen(out), widen(v)), 0.01);
}

}  // namespace
}  // namespace multigrain
