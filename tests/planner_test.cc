// Tests for the cost-model-driven auto-planner: candidate enumeration,
// ranking consistency, and sensible choices on characteristic patterns.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/planner.h"
#include "gpusim/device.h"
#include "patterns/presets.h"

namespace multigrain {
namespace {

AttentionConfig
config()
{
    AttentionConfig c;
    c.head_dim = 64;
    c.num_heads = 4;
    return c;
}

TEST(PlannerTest, BestCandidateHasMinimumPredictedTime)
{
    const CompoundPattern p = preset_local_selected(2048, 0.05, 3);
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    ASSERT_FALSE(d.candidates.empty());
    for (const PlanCandidate &c : d.candidates) {
        EXPECT_GE(c.predicted_us, d.best.predicted_us) << c.describe();
    }
}

TEST(PlannerTest, PrefersMultigrainOnCompoundPatterns)
{
    const CompoundPattern p =
        preset_local_selected_global(4096, 0.05, 2022);
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    EXPECT_EQ(d.best.mode, SliceMode::kMultigrain) << d.best.describe();
}

TEST(PlannerTest, PredictionMatchesDirectSimulation)
{
    const CompoundPattern p = preset_blockedlocal_random(2048, 0.05, 5);
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    AttentionConfig chosen = config();
    chosen.block = d.best.block;
    const AttentionEngine engine(p, chosen, d.best.mode);
    EXPECT_NEAR(engine.simulate(sim::DeviceSpec::a100()).total_us,
                d.best.predicted_us, 1e-9);
}

TEST(PlannerTest, SkipsNonDividingBlocks)
{
    CompoundPattern p;
    p.seq_len = 96;  // Divisible by 32, not by 64 or 128.
    p.atoms.push_back(AtomicPattern::local(8));
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    for (const PlanCandidate &c : d.candidates) {
        EXPECT_EQ(c.block, 32) << c.describe();
    }
}

TEST(PlannerTest, ThrowsWhenNoBlockFits)
{
    CompoundPattern p;
    p.seq_len = 96;
    p.atoms.push_back(AtomicPattern::local(8));
    PlannerOptions options;
    options.blocks = {64, 128};
    EXPECT_THROW(
        plan_attention(p, config(), sim::DeviceSpec::a100(), options),
        Error);
}

TEST(PlannerTest, FineOnlyEvaluatedOncePerBlockSet)
{
    const CompoundPattern p = preset_local_selected(2048, 0.05, 9);
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    int fine = 0;
    for (const PlanCandidate &c : d.candidates) {
        fine += c.mode == SliceMode::kFineOnly ? 1 : 0;
    }
    EXPECT_EQ(fine, 1);  // Block size is irrelevant to the fine plan.
}

TEST(PlannerTest, MakePlannedEngineUsesTheDecision)
{
    const CompoundPattern p = preset_local_selected(2048, 0.05, 13);
    const PlanDecision d =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    const AttentionEngine engine =
        make_planned_engine(p, config(), sim::DeviceSpec::a100());
    EXPECT_EQ(engine.mode(), d.best.mode);
    EXPECT_EQ(engine.config().block, d.best.block);
}

TEST(PlannerTest, DeviceChangesCanChangeTheRanking)
{
    // The planner is device-aware: rankings on the two GPUs need not
    // agree (RTX 3090's weaker tensor cores demote coarse-heavy plans);
    // at minimum the predictions must differ.
    const CompoundPattern p = preset_local_selected(2048, 0.05, 7);
    const PlanDecision a =
        plan_attention(p, config(), sim::DeviceSpec::a100());
    const PlanDecision r =
        plan_attention(p, config(), sim::DeviceSpec::rtx3090());
    EXPECT_NE(a.best.predicted_us, r.best.predicted_us);
    EXPECT_GT(r.best.predicted_us, a.best.predicted_us);  // Slower GPU.
}

}  // namespace
}  // namespace multigrain
