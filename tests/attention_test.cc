// Integration tests for the Multigrain core: all three processing methods
// must produce the same attention output as the FP64 dense-masked
// reference, and their performance plans must have the structure the
// paper describes (multi-stream overlap, phase ordering, traffic ordering).

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/attention.h"
#include "core/multihead.h"
#include "formats/convert.h"
#include "gpusim/device.h"
#include "kernels/reference.h"
#include "patterns/presets.h"

namespace multigrain {
namespace {

constexpr double kTol = 0.03;  // FP16 through three chained ops.

AttentionConfig
small_config()
{
    AttentionConfig c;
    c.head_dim = 16;
    c.block = 16;
    return c;
}

CompoundPattern
compound(index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(4));
    p.atoms.push_back(AtomicPattern::selected({1, seq / 3}));
    p.atoms.push_back(AtomicPattern::global({1, seq / 3}));
    p.atoms.push_back(AtomicPattern::random(3, 21));
    return p;
}

class MethodEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SliceMode, index_t>> {};

TEST_P(MethodEquivalenceTest, MatchesDenseReference)
{
    const auto [mode, seq] = GetParam();
    Rng rng(31);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);

    const AttentionEngine engine(compound(seq), small_config(), mode);
    const HalfMatrix out = engine.run(q, k, v);

    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *engine.plan().full, engine.config().effective_scale());
    EXPECT_LT(kernels::max_abs_diff(widen(out), ref), kTol)
        << to_string(mode) << " L=" << seq;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, MethodEquivalenceTest,
    ::testing::Combine(::testing::Values(SliceMode::kMultigrain,
                                         SliceMode::kCoarseOnly,
                                         SliceMode::kFineOnly),
                       ::testing::Values<index_t>(32, 64, 128)),
    [](const auto &info) {
        std::string name = to_string(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name + "_L" + std::to_string(std::get<1>(info.param));
    });

TEST(AttentionEngineTest, MethodsAgreeWithEachOther)
{
    Rng rng(32);
    const index_t seq = 96;
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const CompoundPattern p = compound(seq);
    const HalfMatrix mg =
        AttentionEngine(p, small_config(), SliceMode::kMultigrain)
            .run(q, k, v);
    const HalfMatrix tr =
        AttentionEngine(p, small_config(), SliceMode::kCoarseOnly)
            .run(q, k, v);
    const HalfMatrix sp =
        AttentionEngine(p, small_config(), SliceMode::kFineOnly)
            .run(q, k, v);
    EXPECT_LT(kernels::max_abs_diff(widen(mg), widen(tr)), kTol);
    EXPECT_LT(kernels::max_abs_diff(widen(mg), widen(sp)), kTol);
}

TEST(AttentionEngineTest, ZeroPaddedRowsComeOutZero)
{
    Rng rng(33);
    const index_t seq = 64;
    CompoundPattern p = compound(seq);
    p.valid_len = 40;
    const HalfMatrix q = random_half_matrix(rng, seq, 16);
    const HalfMatrix k = random_half_matrix(rng, seq, 16);
    const HalfMatrix v = random_half_matrix(rng, seq, 16);
    const AttentionEngine engine(p, small_config(), SliceMode::kMultigrain);
    const HalfMatrix out = engine.run(q, k, v);
    for (index_t r = 40; r < seq; ++r) {
        for (index_t d = 0; d < 16; ++d) {
            EXPECT_EQ(float(out.at(r, d)), 0.0f) << r << "," << d;
        }
    }
}

TEST(AttentionEngineTest, GlobalRowsAttendEverything)
{
    // A global row's context must reflect every position, including ones
    // no local/selected element covers.
    Rng rng(34);
    const index_t seq = 64;
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.2f, 0.2f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.2f, 0.2f);
    HalfMatrix v(seq, 16, half(0.0f));
    // Value signal only at position 50, far from row 1's local band.
    for (index_t d = 0; d < 16; ++d) {
        v.at(50, d) = half(8.0f);
    }
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(2));
    p.atoms.push_back(AtomicPattern::global({1}));
    const AttentionEngine engine(p, small_config(), SliceMode::kMultigrain);
    const HalfMatrix out = engine.run(q, k, v);
    double global_mag = 0, local_mag = 0;
    for (index_t d = 0; d < 16; ++d) {
        global_mag += std::abs(float(out.at(1, d)));
        local_mag += std::abs(float(out.at(20, d)));
    }
    EXPECT_GT(global_mag, 0.1);   // Sees position 50.
    EXPECT_EQ(local_mag, 0.0);    // Local row 20 cannot.
}

TEST(AttentionEngineTest, DenseModeMatchesReference)
{
    Rng rng(45);
    const index_t seq = 96;
    const CompoundPattern p = compound(seq);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const AttentionEngine dense(p, small_config(), SliceMode::kDense);
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *dense.plan().full, dense.config().effective_scale());
    EXPECT_LT(kernels::max_abs_diff(widen(dense.run(q, k, v)), ref), kTol);
    // Backward too (routed through the element-wise path internally).
    const HalfMatrix d_out = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const AttentionEngine::Grads grads =
        dense.run_backward(q, k, v, d_out);
    const kernels::RefAttentionGrads ref_grads =
        kernels::ref_attention_backward(q, k, v, *dense.plan().full,
                                        dense.config().effective_scale(),
                                        widen(d_out));
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dq), ref_grads.dq), 0.06);
}

TEST(AttentionEngineTest, DenseModeCostsQuadratically)
{
    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 4;
    CompoundPattern small, big;
    small.seq_len = 1024;
    big.seq_len = 4096;
    small.atoms.push_back(AtomicPattern::local(64));
    big.atoms.push_back(AtomicPattern::local(64));
    const double t_small =
        AttentionEngine(small, config, SliceMode::kDense)
            .simulate(sim::DeviceSpec::a100())
            .total_us;
    const double t_big = AttentionEngine(big, config, SliceMode::kDense)
                             .simulate(sim::DeviceSpec::a100())
                             .total_us;
    // 4x the length: >= ~10x the time (O(L^2) with fixed overheads).
    EXPECT_GT(t_big, 8 * t_small);
    // And the sparse method beats dense handily at L=4096.
    const double t_mg = AttentionEngine(big, config, SliceMode::kMultigrain)
                            .simulate(sim::DeviceSpec::a100())
                            .total_us;
    EXPECT_LT(t_mg, t_big / 3);
}

TEST(AttentionEngineTest, MemoryFootprintOrdering)
{
    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 4;
    const auto patterns = fig9_patterns(4096, 0.05, 7);
    const CompoundPattern &p = patterns[0].pattern;  // L+S.
    const double dense =
        AttentionEngine(p, config, SliceMode::kDense)
            .attention_memory_bytes();
    const double triton =
        AttentionEngine(p, config, SliceMode::kCoarseOnly)
            .attention_memory_bytes();
    const double sputnik =
        AttentionEngine(p, config, SliceMode::kFineOnly)
            .attention_memory_bytes();
    const double mg = AttentionEngine(p, config, SliceMode::kMultigrain)
                          .attention_memory_bytes();
    // Dense stores L^2; every sparse plan stores far less; blockified
    // storage exceeds element-wise storage (the stored/valid inflation);
    // Multigrain sits at or below the coarse-only baseline.
    EXPECT_GT(dense, 4 * triton);
    EXPECT_GT(triton, sputnik * 0.9);
    EXPECT_LE(mg, triton);
    // ~5% density: dense/sputnik ratio near 1/density (plus indices).
    EXPECT_GT(dense / sputnik, 6.0);
}

TEST(AttentionEngineTest, CausalPatternsMatchReferenceAcrossMethods)
{
    Rng rng(44);
    const index_t seq = 64;
    const CompoundPattern p = preset_sparse_transformer_strided(seq, 8);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const AttentionEngine mg(p, small_config(), SliceMode::kMultigrain);
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *mg.plan().full, mg.config().effective_scale());
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        const AttentionEngine engine(p, small_config(), mode);
        EXPECT_LT(kernels::max_abs_diff(widen(engine.run(q, k, v)), ref),
                  kTol)
            << to_string(mode);
    }
}

TEST(AttentionEngineTest, MultiheadMergeSplitRoundTrip)
{
    Rng rng(35);
    const HalfMatrix hidden = random_half_matrix(rng, 32, 64);
    const auto heads = split_heads(hidden, 4);
    ASSERT_EQ(heads.size(), 4u);
    EXPECT_EQ(heads[0].cols(), 16);
    const HalfMatrix merged = merge_heads(heads);
    EXPECT_LT(kernels::max_abs_diff(widen(hidden), widen(merged)), 1e-9);
}

TEST(AttentionEngineTest, MultiheadRunsEveryHead)
{
    Rng rng(36);
    const index_t seq = 48;
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(4));
    AttentionConfig config = small_config();
    config.num_heads = 3;
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    const HalfMatrix q = random_half_matrix(rng, seq, 48, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 48, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 48, -0.5f, 0.5f);
    const HalfMatrix out = run_multihead(engine, q, k, v);
    ASSERT_EQ(out.cols(), 48);
    // Each head independently matches the per-head reference.
    const auto qs = split_heads(q, 3), ks = split_heads(k, 3),
               vs = split_heads(v, 3), os = split_heads(out, 3);
    for (int h = 0; h < 3; ++h) {
        const DoubleMatrix ref = kernels::ref_attention(
            qs[h], ks[h], vs[h], *engine.plan().full,
            engine.config().effective_scale());
        EXPECT_LT(kernels::max_abs_diff(widen(os[h]), ref), kTol)
            << "head " << h;
    }
}

// ----------------------------------------------------------- the plans ----

TEST(AttentionPlanTest, MultigrainUsesMultipleStreams)
{
    const AttentionEngine engine(compound(128), small_config(),
                                 SliceMode::kMultigrain);
    const sim::SimResult r = engine.simulate(sim::DeviceSpec::a100());
    bool coarse_seen = false, fine_seen = false, global_seen = false;
    int max_stream = 0;
    for (const auto &k : r.kernels) {
        coarse_seen |= k.name == "sddmm.coarse";
        fine_seen |= k.name == "sddmm.fine";
        global_seen |= k.name == "sddmm.global";
        max_stream = std::max(max_stream, k.stream);
    }
    EXPECT_TRUE(coarse_seen);
    EXPECT_TRUE(fine_seen);
    EXPECT_TRUE(global_seen);
    EXPECT_GE(max_stream, 1);  // Genuinely multi-stream.
}

TEST(AttentionPlanTest, SddmmPartsOverlapInTime)
{
    AttentionConfig config = small_config();
    config.head_dim = 64;
    config.block = 64;
    config.num_heads = 4;
    const auto patterns = fig9_patterns(1024, 0.05, 7);
    const AttentionEngine engine(patterns[0].pattern, config,
                                 SliceMode::kMultigrain);
    const sim::SimResult r = engine.simulate(sim::DeviceSpec::a100());
    const auto *coarse = r.find("sddmm.coarse");
    const auto *fine = r.find("sddmm.fine");
    ASSERT_NE(coarse, nullptr);
    ASSERT_NE(fine, nullptr);
    // Multi-stream: the two SDDMMs co-run rather than serialize.
    EXPECT_LT(fine->start_us, coarse->end_us);
    EXPECT_LT(coarse->start_us, fine->end_us);
}

TEST(AttentionPlanTest, PhasesAreOrdered)
{
    const AttentionEngine engine(compound(128), small_config(),
                                 SliceMode::kMultigrain);
    const sim::SimResult r = engine.simulate(sim::DeviceSpec::a100());
    // Every softmax kernel starts after every SDDMM kernel ends, and every
    // SpMM after every softmax (join_streams between phases).
    double sddmm_end = 0, softmax_start = 1e30, softmax_end = 0,
           spmm_start = 1e30;
    for (const auto &k : r.kernels) {
        if (k.name.rfind(phase::kSddmm, 0) == 0) {
            sddmm_end = std::max(sddmm_end, k.end_us);
        } else if (k.name.rfind(phase::kSoftmax, 0) == 0) {
            softmax_start = std::min(softmax_start, k.start_us);
            softmax_end = std::max(softmax_end, k.end_us);
        } else if (k.name.rfind(phase::kSpmm, 0) == 0) {
            spmm_start = std::min(spmm_start, k.start_us);
        }
    }
    EXPECT_GE(softmax_start, sddmm_end);
    EXPECT_GE(spmm_start, softmax_end);
}

TEST(AttentionPlanTest, SingleStreamAblationSerializesParts)
{
    AttentionConfig config = small_config();
    config.multi_stream = false;
    const AttentionEngine engine(compound(128), config,
                                 SliceMode::kMultigrain);
    const sim::SimResult r = engine.simulate(sim::DeviceSpec::a100());
    ASSERT_FALSE(r.kernels.empty());
    const int stream = r.kernels.front().stream;
    for (const auto &k : r.kernels) {
        EXPECT_EQ(k.stream, stream) << k.name;  // All on one stream.
    }
    const auto *coarse = r.find("sddmm.coarse");
    const auto *fine = r.find("sddmm.fine");
    ASSERT_NE(coarse, nullptr);
    ASSERT_NE(fine, nullptr);
    EXPECT_GE(fine->start_us, coarse->end_us);
}

TEST(AttentionPlanTest, TritonTrafficExceedsMultigrainOnFinePatterns)
{
    // A scattered pattern blockified stores ~64x more elements than it has;
    // the Triton-style plan must show that as DRAM traffic (Fig. 7's
    // memory-traffic reduction).
    CompoundPattern p;
    p.seq_len = 1024;
    p.atoms.push_back(AtomicPattern::local(48));
    p.atoms.push_back(AtomicPattern::random(12, 9));
    AttentionConfig config;
    config.head_dim = 64;
    config.block = 64;
    const double mg = AttentionEngine(p, config, SliceMode::kMultigrain)
                          .simulate(sim::DeviceSpec::a100())
                          .work.dram_bytes();
    const double tr = AttentionEngine(p, config, SliceMode::kCoarseOnly)
                          .simulate(sim::DeviceSpec::a100())
                          .work.dram_bytes();
    EXPECT_GT(tr, 2.0 * mg);
}

TEST(AttentionPlanTest, ReplicasScaleWork)
{
    AttentionConfig one = small_config();
    AttentionConfig four = small_config();
    four.num_heads = 2;
    four.batch = 2;
    const CompoundPattern p = compound(128);
    const auto r1 = AttentionEngine(p, one, SliceMode::kMultigrain)
                        .simulate(sim::DeviceSpec::a100());
    const auto r4 = AttentionEngine(p, four, SliceMode::kMultigrain)
                        .simulate(sim::DeviceSpec::a100());
    EXPECT_NEAR(r4.work.tensor_flops, 4 * r1.work.tensor_flops, 1.0);
    EXPECT_NEAR(r4.work.cuda_flops, 4 * r1.work.cuda_flops, 1e-3);
    // Batching improves utilization: 4x work costs < 4x time.
    EXPECT_LT(r4.total_us, 4 * r1.total_us);
}

}  // namespace
}  // namespace multigrain
