// Unit tests for src/formats: layout validation, conversions, round trips,
// set operations, and value gather/scatter.

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "formats/bcoo.h"
#include "formats/bsr.h"
#include "formats/convert.h"
#include "formats/coo.h"
#include "formats/csr.h"
#include "formats/serialize.h"
#include "formats/matrix.h"

namespace multigrain {
namespace {

MaskMatrix
random_mask(Rng &rng, index_t rows, index_t cols, double density)
{
    MaskMatrix mask(rows, cols, 0);
    for (index_t r = 0; r < rows; ++r) {
        for (index_t c = 0; c < cols; ++c) {
            mask.at(r, c) = rng.next_float() < density ? 1 : 0;
        }
    }
    return mask;
}

bool
masks_equal(const MaskMatrix &a, const MaskMatrix &b)
{
    if (!a.same_shape(b)) {
        return false;
    }
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t c = 0; c < a.cols(); ++c) {
            if ((a.at(r, c) != 0) != (b.at(r, c) != 0)) {
                return false;
            }
        }
    }
    return true;
}

// ----------------------------------------------------------------- CSR ----

TEST(CsrTest, EmptyLayoutValidates)
{
    CsrLayout l;
    l.rows = 4;
    l.cols = 4;
    l.row_offsets = {0, 0, 0, 0, 0};
    EXPECT_NO_THROW(l.validate());
    EXPECT_EQ(l.nnz(), 0);
    EXPECT_EQ(l.max_row_nnz(), 0);
}

TEST(CsrTest, RowNnzAndMax)
{
    CsrLayout l;
    l.rows = 3;
    l.cols = 8;
    l.row_offsets = {0, 2, 2, 5};
    l.col_indices = {0, 7, 1, 3, 5};
    l.validate();
    EXPECT_EQ(l.row_nnz(0), 2);
    EXPECT_EQ(l.row_nnz(1), 0);
    EXPECT_EQ(l.row_nnz(2), 3);
    EXPECT_EQ(l.max_row_nnz(), 3);
    EXPECT_EQ(l.nnz(), 5);
}

TEST(CsrTest, ValidateRejectsDescendingColumns)
{
    CsrLayout l;
    l.rows = 1;
    l.cols = 4;
    l.row_offsets = {0, 2};
    l.col_indices = {2, 1};
    EXPECT_THROW(l.validate(), Error);
}

TEST(CsrTest, ValidateRejectsOutOfRangeColumn)
{
    CsrLayout l;
    l.rows = 1;
    l.cols = 4;
    l.row_offsets = {0, 1};
    l.col_indices = {4};
    EXPECT_THROW(l.validate(), Error);
}

TEST(CsrTest, ValidateRejectsBadOffsets)
{
    CsrLayout l;
    l.rows = 2;
    l.cols = 4;
    l.row_offsets = {0, 2, 1};
    l.col_indices = {0, 1};
    EXPECT_THROW(l.validate(), Error);
}

TEST(CsrTest, MaskRoundTrip)
{
    Rng rng(1);
    const MaskMatrix mask = random_mask(rng, 13, 29, 0.2);
    const CsrLayout csr = csr_from_mask(mask);
    csr.validate();
    EXPECT_TRUE(masks_equal(mask, mask_from_csr(csr)));
}

// ----------------------------------------------------------------- COO ----

TEST(CooTest, NormalizeSortsAndDedupes)
{
    CooLayout coo;
    coo.rows = 4;
    coo.cols = 4;
    coo.entries = {{2, 1}, {0, 3}, {2, 1}, {0, 0}};
    coo.normalize();
    coo.validate();
    ASSERT_EQ(coo.nnz(), 3);
    EXPECT_EQ(coo.entries[0].row, 0);
    EXPECT_EQ(coo.entries[0].col, 0);
    EXPECT_EQ(coo.entries[2].row, 2);
}

TEST(CooTest, CsrRoundTrip)
{
    Rng rng(2);
    const MaskMatrix mask = random_mask(rng, 17, 11, 0.3);
    const CsrLayout csr = csr_from_mask(mask);
    const CooLayout coo = coo_from_csr(csr);
    coo.validate();
    const CsrLayout back = csr_from_coo(coo);
    EXPECT_EQ(back.row_offsets, csr.row_offsets);
    EXPECT_EQ(back.col_indices, csr.col_indices);
}

TEST(CooTest, ValidateRejectsUnsorted)
{
    CooLayout coo;
    coo.rows = 2;
    coo.cols = 2;
    coo.entries = {{1, 0}, {0, 0}};
    EXPECT_THROW(coo.validate(), Error);
}

// ----------------------------------------------------------------- BSR ----

TEST(BsrTest, BlockifyRecordsValidityBitmaps)
{
    // An 8x8 matrix, block 4, with elements only in the top-left tile.
    MaskMatrix mask(8, 8, 0);
    mask.at(0, 0) = 1;
    mask.at(3, 3) = 1;
    const BsrLayout bsr = bsr_from_csr(csr_from_mask(mask), 4);
    bsr.validate();
    EXPECT_EQ(bsr.nnz_blocks(), 1);
    EXPECT_EQ(bsr.block_valid_count(0), 2);
    EXPECT_EQ(bsr.total_valid(), 2);
    EXPECT_EQ(bsr.total_stored(), 16);
    EXPECT_TRUE(bsr.element_valid(0, 0, 0));
    EXPECT_TRUE(bsr.element_valid(0, 3, 3));
    EXPECT_FALSE(bsr.element_valid(0, 1, 2));
}

TEST(BsrTest, BlockifyRoundTripsThroughCsr)
{
    Rng rng(3);
    const MaskMatrix mask = random_mask(rng, 64, 64, 0.1);
    const CsrLayout csr = csr_from_mask(mask);
    for (const index_t block : {4, 8, 16, 32, 64}) {
        const BsrLayout bsr = bsr_from_csr(csr, block);
        bsr.validate();
        const CsrLayout back = csr_from_bsr(bsr);
        EXPECT_EQ(back.row_offsets, csr.row_offsets) << "block " << block;
        EXPECT_EQ(back.col_indices, csr.col_indices) << "block " << block;
        EXPECT_EQ(bsr.total_valid(), csr.nnz()) << "block " << block;
    }
}

TEST(BsrTest, DenseMatrixBlockifiesToAllBlocks)
{
    MaskMatrix mask(16, 16, 1);
    const BsrLayout bsr = bsr_from_csr(csr_from_mask(mask), 8);
    EXPECT_EQ(bsr.nnz_blocks(), 4);
    EXPECT_EQ(bsr.total_valid(), 256);
    // Fully-valid blocks still carry bitmaps of all-ones.
    EXPECT_EQ(bsr.block_valid_count(0), 64);
}

TEST(BsrTest, RejectsNonMultipleDims)
{
    CsrLayout csr;
    csr.rows = 10;
    csr.cols = 8;
    csr.row_offsets.assign(11, 0);
    EXPECT_THROW(bsr_from_csr(csr, 4), Error);
}

TEST(BsrTest, ValidateRejectsEmptyStoredBlock)
{
    BsrLayout bsr;
    bsr.rows = 4;
    bsr.cols = 4;
    bsr.block = 4;
    bsr.row_offsets = {0, 1};
    bsr.col_indices = {0};
    bsr.valid_bits.assign(1, 0);  // Stored block with no valid elements.
    EXPECT_THROW(bsr.validate(), Error);
}

// ---------------------------------------------------------------- BCOO ----

TEST(BcooTest, FromBsrKeepsBlockOrder)
{
    Rng rng(4);
    const MaskMatrix mask = random_mask(rng, 32, 32, 0.15);
    const BsrLayout bsr = bsr_from_csr(csr_from_mask(mask), 8);
    const BcooLayout bcoo = bcoo_from_bsr(bsr);
    bcoo.validate();
    EXPECT_EQ(bcoo.nnz_blocks(), bsr.nnz_blocks());
    EXPECT_EQ(bcoo.metadata_bytes(), bsr.nnz_blocks() * 8);
}

TEST(BcooTest, ValidateRejectsDuplicates)
{
    BcooLayout bcoo;
    bcoo.rows = 8;
    bcoo.cols = 8;
    bcoo.block = 4;
    bcoo.blocks = {{0, 1}, {0, 1}};
    EXPECT_THROW(bcoo.validate(), Error);
}

// ------------------------------------------------------ set operations ----

TEST(SetOpsTest, UnionAndDifferencePartition)
{
    Rng rng(5);
    const MaskMatrix ma = random_mask(rng, 20, 20, 0.2);
    const MaskMatrix mb = random_mask(rng, 20, 20, 0.2);
    const CsrLayout a = csr_from_mask(ma);
    const CsrLayout b = csr_from_mask(mb);
    const CsrLayout u = csr_union(a, b);
    const CsrLayout a_only = csr_difference(a, b);
    const CsrLayout b_only = csr_difference(b, a);
    u.validate();
    a_only.validate();
    b_only.validate();
    // |A ∪ B| = |A\B| + |B\A| + |A ∩ B| and inclusion-exclusion holds.
    const index_t inter = a.nnz() - a_only.nnz();
    EXPECT_EQ(b.nnz() - b_only.nnz(), inter);
    EXPECT_EQ(u.nnz(), a_only.nnz() + b_only.nnz() + inter);
    // Union differenced by b gives exactly a \ b.
    const CsrLayout u_minus_b = csr_difference(u, b);
    EXPECT_EQ(u_minus_b.col_indices, a_only.col_indices);
}

TEST(SetOpsTest, DifferenceWithSelfIsEmpty)
{
    Rng rng(6);
    const CsrLayout a = csr_from_mask(random_mask(rng, 10, 10, 0.5));
    EXPECT_EQ(csr_difference(a, a).nnz(), 0);
    EXPECT_EQ(csr_union(a, a).nnz(), a.nnz());
}

TEST(SetOpsTest, ShapeMismatchThrows)
{
    CsrLayout a, b;
    a.rows = b.rows = 2;
    a.cols = 3;
    b.cols = 4;
    a.row_offsets = {0, 0, 0};
    b.row_offsets = {0, 0, 0};
    EXPECT_THROW(csr_union(a, b), Error);
}

// ----------------------------------------------------- value transport ----

TEST(ValuesTest, GatherCsrThenDenseRecoversMaskedMatrix)
{
    Rng rng(7);
    const HalfMatrix dense = random_half_matrix(rng, 12, 12);
    const MaskMatrix mask = random_mask(rng, 12, 12, 0.4);
    auto layout = std::make_shared<const CsrLayout>(csr_from_mask(mask));
    const CsrMatrix gathered = gather_csr(dense, layout);
    const HalfMatrix back = dense_from_csr(gathered);
    for (index_t r = 0; r < 12; ++r) {
        for (index_t c = 0; c < 12; ++c) {
            const float expected =
                mask.at(r, c) ? float(dense.at(r, c)) : 0.0f;
            EXPECT_EQ(float(back.at(r, c)), expected) << r << "," << c;
        }
    }
}

TEST(ValuesTest, GatherBsrThenDenseZeroesInvalidPositions)
{
    Rng rng(8);
    const HalfMatrix dense = random_half_matrix(rng, 16, 16);
    const MaskMatrix mask = random_mask(rng, 16, 16, 0.2);
    auto layout = std::make_shared<const BsrLayout>(
        bsr_from_csr(csr_from_mask(mask), 8));
    const BsrMatrix gathered = gather_bsr(dense, layout);
    const HalfMatrix back = dense_from_bsr(gathered);
    for (index_t r = 0; r < 16; ++r) {
        for (index_t c = 0; c < 16; ++c) {
            const float expected =
                mask.at(r, c) ? float(dense.at(r, c)) : 0.0f;
            EXPECT_EQ(float(back.at(r, c)), expected) << r << "," << c;
        }
    }
}

TEST(ValuesTest, GatherShapeMismatchThrows)
{
    Rng rng(9);
    const HalfMatrix dense = random_half_matrix(rng, 4, 4);
    auto layout = std::make_shared<const CsrLayout>(
        csr_from_mask(MaskMatrix(8, 8, 1)));
    EXPECT_THROW(gather_csr(dense, layout), Error);
}

// ------------------------------------------------------------- matrix ----

TEST(MatrixTest, FillAndAccessors)
{
    HalfMatrix m(3, 5, half(2.0f));
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 5);
    EXPECT_EQ(m.size(), 15);
    EXPECT_EQ(float(m.at(2, 4)), 2.0f);
    m.fill(half(-1.0f));
    EXPECT_EQ(float(m.at(0, 0)), -1.0f);
    m.at(1, 2) = half(3.0f);
    EXPECT_EQ(float(m.row(1)[2]), 3.0f);
}

// ------------------------------------------------------- serialization ----

TEST(SerializeTest, CsrRoundTrips)
{
    Rng rng(11);
    const CsrLayout layout = csr_from_mask(random_mask(rng, 37, 53, 0.2));
    std::stringstream ss;
    write_layout(layout, ss);
    const CsrLayout back = read_csr_layout(ss);
    EXPECT_EQ(back.rows, layout.rows);
    EXPECT_EQ(back.cols, layout.cols);
    EXPECT_EQ(back.row_offsets, layout.row_offsets);
    EXPECT_EQ(back.col_indices, layout.col_indices);
}

TEST(SerializeTest, BsrRoundTripsWithBitmaps)
{
    Rng rng(12);
    const BsrLayout layout =
        bsr_from_csr(csr_from_mask(random_mask(rng, 64, 64, 0.1)), 16);
    std::stringstream ss;
    write_layout(layout, ss);
    const BsrLayout back = read_bsr_layout(ss);
    EXPECT_EQ(back.block, layout.block);
    EXPECT_EQ(back.row_offsets, layout.row_offsets);
    EXPECT_EQ(back.col_indices, layout.col_indices);
    EXPECT_EQ(back.valid_bits, layout.valid_bits);
    EXPECT_EQ(back.total_valid(), layout.total_valid());
}

TEST(SerializeTest, RejectsWrongKind)
{
    Rng rng(13);
    const CsrLayout layout = csr_from_mask(random_mask(rng, 8, 8, 0.5));
    std::stringstream ss;
    write_layout(layout, ss);
    EXPECT_THROW(read_bsr_layout(ss), Error);
}

TEST(SerializeTest, RejectsGarbageAndTruncation)
{
    {
        std::stringstream ss;
        ss << "this is not a layout";
        EXPECT_THROW(read_csr_layout(ss), Error);
    }
    {
        Rng rng(14);
        const CsrLayout layout =
            csr_from_mask(random_mask(rng, 16, 16, 0.3));
        std::stringstream ss;
        write_layout(layout, ss);
        const std::string full = ss.str();
        std::stringstream truncated(
            full.substr(0, full.size() / 2));
        EXPECT_THROW(read_csr_layout(truncated), Error);
    }
}

TEST(SerializeTest, RejectsCorruptedIndices)
{
    Rng rng(15);
    const CsrLayout layout = csr_from_mask(random_mask(rng, 16, 16, 0.5));
    std::stringstream ss;
    write_layout(layout, ss);
    std::string bytes = ss.str();
    // Flip a byte in the payload (past the 3-word header + dims).
    bytes[bytes.size() - 3] = static_cast<char>(0xff);
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_csr_layout(corrupted), Error);
}

TEST(MatrixTest, WidenPreservesValues)
{
    Rng rng(10);
    const HalfMatrix m = random_half_matrix(rng, 6, 6);
    const DoubleMatrix d = widen(m);
    for (index_t r = 0; r < 6; ++r) {
        for (index_t c = 0; c < 6; ++c) {
            EXPECT_EQ(d.at(r, c), static_cast<double>(float(m.at(r, c))));
        }
    }
}

}  // namespace
}  // namespace multigrain
