// mgcheck abstract-interpreter tests. The load-bearing pair of
// properties, mirroring lint_test.cc:
//
//  * Sensitivity: seeding a definedness defect into an otherwise-correct
//    plan — erasing an init write via the test hook, shrinking a
//    SizedBuffer annotation, shifting an arena offset onto a live
//    slot-mate — is detected, naming the corrupted buffer with a witness
//    chain.
//  * Specificity: the plans the engines and the runner actually ship
//    check clean (errors AND warnings) together with their memory plans.
//
// Plus unit coverage of the definedness lattice over hand-built graphs
// (one test per finding kind and per suppression flag) and the
// capture-time enforcement that keeps an ill-defined plan out of the
// PlanCache.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/attention.h"
#include "core/check.h"
#include "core/launch_graph.h"
#include "core/lint.h"
#include "core/memplan.h"
#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "patterns/slice.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

sim::KernelLaunch
toy_launch(const std::string &name)
{
    sim::KernelLaunch launch;
    launch.name = name;
    sim::TbWork work;
    work.cuda_flops = 1024;
    work.dram_read_bytes = 1024;
    launch.add_tb(work, 4);
    return launch;
}

/// Pins MULTIGRAIN_CHECK for one scope so the tests behave identically
/// in release (default off) and debug (default on) builds.
struct ScopedCheckEnv {
    explicit ScopedCheckEnv(const char *value)
    {
        if (value == nullptr) {
            unsetenv("MULTIGRAIN_CHECK");
        } else {
            setenv("MULTIGRAIN_CHECK", value, 1);
        }
    }
    ~ScopedCheckEnv() { unsetenv("MULTIGRAIN_CHECK"); }
};

/// The single finding of `report` (copied out, so temporaries are fine
/// to pass), failing the test when the count is not exactly one.
CheckFinding
only_finding(const CheckReport &report)
{
    EXPECT_EQ(report.findings.size(), 1u) << report.summary();
    return report.findings.empty() ? CheckFinding{}
                                   : report.findings.front();
}

LaunchGraph
tiny_forward_graph(const sim::DeviceSpec &device)
{
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(2022);
    const WorkloadSample sample = sample_for_model(rng, model);
    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);
    // Copy out of the cache: the tests below mutate the graph.
    return runner.attention().forward_graphs(device)->forward;
}

// ---------------------------------------------------------------------------
// use-before-def: the read edge of the lattice.

TEST(CheckDefinedness, UndefinedPlanLocalReadIsUseBeforeDef)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.r"), {"%t"}, {}));
    const CheckReport report = check_graph(graph);
    const CheckFinding f = only_finding(report);
    EXPECT_EQ(f.kind, CheckKind::kUseBeforeDef);
    EXPECT_EQ(f.severity, CheckSeverity::kError);
    EXPECT_EQ(f.buffer, "%t");
    EXPECT_EQ(f.node_a, 0);
    ASSERT_FALSE(f.witness_a.empty());
    EXPECT_EQ(f.witness_a.back(), 0);
}

TEST(CheckDefinedness, DeclaredInputIsDefined)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.r"),
                                  {{"%t", 64, sim::kBufInput}}, {}));
    EXPECT_TRUE(check_graph(graph).clean());
}

TEST(CheckDefinedness, OrderedWriteDefines)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"%t"}));
    graph.launch(0, sim::annotate(toy_launch("gemm.r"), {"%t"}, {}));
    // Stream order carries the def to the read; the read (last use)
    // then drains the store, so the whole graph is clean.
    EXPECT_TRUE(check_graph(graph).clean());
}

TEST(CheckDefinedness, UnorderedWriteDoesNotDefine)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.r"), {"%t"}, {}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.w"), {},
                                   {{"%t", 64, sim::kBufOutput}}));
    // A write that merely exists somewhere is not a definition: it must
    // happen-before the read under every legal schedule.
    const CheckReport report = check_graph(graph);
    EXPECT_EQ(only_finding(report).kind, CheckKind::kUseBeforeDef);
}

TEST(CheckDefinedness, SameNodeWriteDoesNotDefineOwnRead)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("softmax.inplace"), {"%t"},
                                  {{"%t", 64, sim::kBufOutput}}));
    // An in-place kernel reads the *old* contents — its own write is
    // not a definition for its own read.
    const CheckReport report = check_graph(graph);
    EXPECT_EQ(only_finding(report).kind, CheckKind::kUseBeforeDef);
}

TEST(CheckDefinedness, SharedReadsAreExemptPlanLocalAreNot)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.r"), {"q", "%t"}, {}));
    // "q" (unprefixed) is defined by the embedding interface convention;
    // only the plan-local "%t" is flagged.
    const CheckReport report = check_graph(graph);
    EXPECT_EQ(only_finding(report).buffer, "%t");
}

// ---------------------------------------------------------------------------
// uninit-accum: the RMW edge of the lattice.

TEST(CheckAccum, AccumWithoutInitIsError)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("spmm.acc"), {}, {},
                                  {{"o", 64, sim::kBufOutput}}));
    const CheckFinding f = only_finding(check_graph(graph));
    EXPECT_EQ(f.kind, CheckKind::kUninitAccum);
    EXPECT_EQ(f.severity, CheckSeverity::kError);
    EXPECT_EQ(f.buffer, "o");
}

TEST(CheckAccum, ZeroInitDeclarationSuppresses)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(
                        toy_launch("spmm.acc"), {}, {},
                        {{"o", 64, sim::kBufZeroInit | sim::kBufOutput}}));
    EXPECT_TRUE(check_graph(graph).clean());
}

TEST(CheckAccum, OrderedWriteInitializesAndIsConsumed)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("memset.o"), {}, {"o"}));
    graph.launch(0, sim::annotate(toy_launch("spmm.acc"), {}, {},
                                  {{"o", 64, sim::kBufOutput}}));
    // The write initializes the accumulator AND the accumulator drains
    // the write (a RMW reads it) — neither side is flagged.
    EXPECT_TRUE(check_graph(graph).clean());
}

TEST(CheckAccum, AccumDoesNotConsumeAccum)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("spmm.a"), {}, {},
                                  {{"%o", 64, sim::kBufZeroInit}}));
    graph.launch(s1, sim::annotate(toy_launch("spmm.b"), {}, {},
                                   {{"%o", 64, sim::kBufZeroInit}}));
    // Two commuting partial accumulations whose sum nothing reads and
    // that is not declared an output: a leak, reported once.
    const CheckFinding f = only_finding(check_graph(graph));
    EXPECT_EQ(f.kind, CheckKind::kLeakedTemp);
    EXPECT_EQ(f.severity, CheckSeverity::kWarning);
}

// ---------------------------------------------------------------------------
// dead-store / leaked-temp: the consume edge of the lattice.

TEST(CheckLiveness, UnreadSharedStoreIsDeadStore)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"t"}));
    const CheckFinding f = only_finding(check_graph(graph));
    EXPECT_EQ(f.kind, CheckKind::kDeadStore);
    EXPECT_EQ(f.severity, CheckSeverity::kWarning);
    EXPECT_EQ(f.buffer, "t");
}

TEST(CheckLiveness, UnreadPlanLocalStoreIsLeakedTemp)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"%t"}));
    EXPECT_EQ(only_finding(check_graph(graph)).kind,
              CheckKind::kLeakedTemp);
}

TEST(CheckLiveness, OutputDeclarationSuppresses)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {},
                                  {{"t", 64, sim::kBufOutput}}));
    EXPECT_TRUE(check_graph(graph).clean());
}

TEST(CheckLiveness, OneFindingPerBuffer)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w1"), {}, {"t"}));
    graph.launch(0, sim::annotate(toy_launch("gemm.w2"), {}, {"t"}));
    // Both stores are dead, but the report stays one-finding-per-buffer
    // (the earliest offender) so a single forgotten output declaration
    // does not bury the rest of the report.
    EXPECT_EQ(check_graph(graph).findings.size(), 1u);
}

TEST(CheckLiveness, OptionDisablesLivenessLints)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"t"}));
    CheckOptions options;
    options.liveness_lints = false;
    EXPECT_TRUE(check_graph(graph, options).clean());
}

// ---------------------------------------------------------------------------
// size-consistency: annotated SizedBuffer bytes vs modeled traffic.

TEST(CheckSize, InBandAnnotationIsCleanAndTracked)
{
    LaunchGraph graph;
    sim::KernelLaunch launch = toy_launch("gemm.w");
    const std::uint64_t modeled =
        static_cast<std::uint64_t>(launch.total_work().mem_bytes());
    ASSERT_GT(modeled, 0u);
    graph.launch(0, sim::annotate(std::move(launch), {},
                                  {{"t", modeled, sim::kBufOutput}}));
    const CheckReport report = check_graph(graph);
    EXPECT_TRUE(report.clean());
    EXPECT_DOUBLE_EQ(report.min_size_ratio, 1.0);
    EXPECT_DOUBLE_EQ(report.max_size_ratio, 1.0);
}

TEST(CheckSize, ShrunkAnnotationIsErrorNamingLargestBuffer)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"),
                                  {{"small", 1, sim::kBufInput}},
                                  {{"big", 2, sim::kBufOutput}}));
    // 3 annotated bytes against 4 KiB modeled: far below the band.
    const CheckFinding f = only_finding(check_graph(graph));
    EXPECT_EQ(f.kind, CheckKind::kSizeMismatch);
    EXPECT_EQ(f.severity, CheckSeverity::kError);
    EXPECT_EQ(f.buffer, "big");
    EXPECT_EQ(f.node_a, 0);
}

TEST(CheckSize, OverAnnotationIsError)
{
    LaunchGraph graph;
    sim::KernelLaunch launch = toy_launch("gemm.w");
    const std::uint64_t modeled =
        static_cast<std::uint64_t>(launch.total_work().mem_bytes());
    graph.launch(0, sim::annotate(std::move(launch), {},
                                  {{"t", modeled * 32, sim::kBufOutput}}));
    EXPECT_EQ(only_finding(check_graph(graph)).kind,
              CheckKind::kSizeMismatch);
}

TEST(CheckSize, OptionDisablesSizeCheck)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"),
                                  {{"small", 1, sim::kBufInput}},
                                  {{"big", 2, sim::kBufOutput}}));
    CheckOptions options;
    options.size_check = false;
    EXPECT_TRUE(check_graph(graph, options).clean());
}

TEST(CheckSize, UnannotatedKernelIsSkipped)
{
    LaunchGraph graph;
    graph.launch(0, toy_launch("gemm.bare"));
    const CheckReport report = check_graph(graph);
    EXPECT_TRUE(report.clean());
    EXPECT_DOUBLE_EQ(report.max_size_ratio, 0.0);
}

// ---------------------------------------------------------------------------
// Arena-aliasing soundness proof against a MemPlan.

/// Two sequential temps on one stream: %a's slot is legally reused by
/// %b after %a's last read.
LaunchGraph
sequential_temps_graph()
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.wa"), {}, {{"%a", 64}}));
    graph.launch(0, sim::annotate(toy_launch("gemm.ra"), {{"%a", 64}}, {}));
    graph.launch(0, sim::annotate(toy_launch("gemm.wb"), {}, {{"%b", 64}}));
    graph.launch(0, sim::annotate(toy_launch("gemm.rb"), {{"%b", 64}}, {}));
    return graph;
}

/// Two temps on parallel streams: they interfere, so the planner must
/// give them disjoint arena intervals.
LaunchGraph
parallel_temps_graph()
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("gemm.wa"), {}, {{"%a", 64}}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.wb"), {},
                                   {{"%b", 64}}));
    graph.launch(0, sim::annotate(toy_launch("gemm.ra"), {{"%a", 64}}, {}));
    graph.launch(s1, sim::annotate(toy_launch("gemm.rb"), {{"%b", 64}},
                                   {}));
    return graph;
}

TEST(CheckArena, LegitimateSlotReuseProvesSound)
{
    const LaunchGraph graph = sequential_temps_graph();
    const MemPlan plan = plan_memory(graph);
    CheckOptions options;
    options.memplan = &plan;
    EXPECT_TRUE(check_graph(graph, options).clean());
}

TEST(CheckArena, ShiftedOffsetOntoLiveSlotMateIsError)
{
    const LaunchGraph graph = parallel_temps_graph();
    MemPlan plan = plan_memory(graph);
    // Find the two pooled temps and force them onto the same bytes —
    // the planner bug the proof exists to catch.
    MemPlanBuffer *a = nullptr;
    MemPlanBuffer *b = nullptr;
    for (MemPlanBuffer &buf : plan.buffers) {
        if (buf.cls != BufferClass::kPooled) {
            continue;
        }
        (a == nullptr ? a : b) = &buf;
    }
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(a->offset + a->bytes <= b->offset ||
                b->offset + b->bytes <= a->offset)
        << "planner gave interfering temps overlapping slots";
    b->offset = a->offset;

    CheckOptions options;
    options.memplan = &plan;
    const CheckFinding f = only_finding(check_graph(graph, options));
    EXPECT_EQ(f.kind, CheckKind::kArenaAlias);
    EXPECT_EQ(f.severity, CheckSeverity::kError);
    EXPECT_EQ(f.buffer, b->name);
    // The witness pair exhibits the unordered accesses sharing bytes.
    EXPECT_GE(f.node_a, 0);
    EXPECT_GE(f.node_b, 0);
    ASSERT_FALSE(f.witness_a.empty());
    ASSERT_FALSE(f.witness_b.empty());
    EXPECT_EQ(f.witness_a.back(), f.node_a);
    EXPECT_EQ(f.witness_b.back(), f.node_b);
}

TEST(CheckArena, ForeignMemPlanIsRejected)
{
    const LaunchGraph graph = sequential_temps_graph();
    MemPlan plan = plan_memory(graph);
    plan.num_nodes += 1;
    CheckOptions options;
    options.memplan = &plan;
    EXPECT_EQ(only_finding(check_graph(graph, options)).kind,
              CheckKind::kArenaAlias);
}

// ---------------------------------------------------------------------------
// Sensitivity on a real plan: the drop-init corruption mgcheck seeds.

TEST(CheckSensitivity, ErasedInitWriteOnRealPlanIsCaught)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    LaunchGraph graph = tiny_forward_graph(device);
    {
        const MemPlan plan = plan_memory(graph);
        CheckOptions options;
        options.memplan = &plan;
        ASSERT_TRUE(check_graph(graph, options).clean());
    }

    // Erase one init: find a plan-local buffer with a writer ordered
    // before a reader and no inbound declaration, and strip that write
    // from the writer's annotation via the test hook.
    const HappensBefore hb(graph.nodes());
    std::string corrupted;
    for (std::size_t w = 0; w < graph.nodes().size() && corrupted.empty();
         ++w) {
        const sim::KernelLaunch &wl = graph.nodes()[w].launch;
        for (std::size_t i = 0; i < wl.writes.size(); ++i) {
            const sim::BufferId id = wl.writes[i];
            const unsigned flags =
                i < wl.write_flags.size() ? wl.write_flags[i] : 0;
            if (!sim::buffer_is_plan_local(id) ||
                (flags & (sim::kBufInput | sim::kBufZeroInit)) != 0) {
                continue;
            }
            bool read_later = false;
            for (std::size_t r = w + 1; r < graph.nodes().size(); ++r) {
                const sim::KernelLaunch &rl = graph.nodes()[r].launch;
                for (const sim::BufferId rid : rl.reads) {
                    if (rid == id && hb.ordered(static_cast<int>(w),
                                                static_cast<int>(r))) {
                        read_later = true;
                    }
                }
            }
            if (!read_later) {
                continue;
            }
            sim::KernelLaunch &mutated =
                graph.launch_for_test(static_cast<int>(w));
            mutated.writes.erase(mutated.writes.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            if (i < mutated.write_bytes.size()) {
                mutated.write_bytes.erase(
                    mutated.write_bytes.begin() +
                    static_cast<std::ptrdiff_t>(i));
            }
            if (i < mutated.write_flags.size()) {
                mutated.write_flags.erase(
                    mutated.write_flags.begin() +
                    static_cast<std::ptrdiff_t>(i));
            }
            corrupted = sim::buffer_name(id);
            break;
        }
    }
    ASSERT_FALSE(corrupted.empty())
        << "no candidate init write in the tiny forward plan";

    const CheckReport report = check_graph(graph);
    bool caught = false;
    for (const CheckFinding &f : report.findings) {
        if (f.severity == CheckSeverity::kError && f.buffer == corrupted) {
            caught = true;
        }
    }
    EXPECT_TRUE(caught) << "erasing the init of " << corrupted
                        << " went undetected: " << report.summary();
}

// ---------------------------------------------------------------------------
// Specificity: shipped plans check clean with their memory plans.

TEST(CheckSpecificity, ShippedPlansAreClean)
{
    const ModelConfig model = ModelConfig::tiny_test();
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kDense}) {
        Rng rng(2022);
        const WorkloadSample sample = sample_for_model(rng, model);
        const TransformerRunner runner(model, mode, sample, /*batch=*/1);
        const auto check_clean = [&](const std::string &what,
                                     const LaunchGraph &graph) {
            const MemPlan plan = plan_memory(graph);
            CheckOptions options;
            options.memplan = &plan;
            const CheckReport report = check_graph(graph, options);
            EXPECT_TRUE(report.clean())
                << what << ": " << report.summary() << " — "
                << (report.findings.empty()
                        ? ""
                        : report.findings.front().message);
        };
        check_clean("forward",
                    runner.attention().forward_graphs(device)->forward);
        check_clean("backward",
                    *runner.attention().backward_graph(device));
        check_clean(
            "layer.infer",
            *runner.layer_graph(device,
                                TransformerRunner::LayerKind::kInference));
        check_clean("layer.train_fwd",
                    *runner.layer_graph(
                        device, TransformerRunner::LayerKind::kTrainForward));
        check_clean(
            "layer.train_bwd",
            *runner.layer_graph(device,
                                TransformerRunner::LayerKind::kTrainBackward));
        PlanCache::instance().clear();
    }
}

// ---------------------------------------------------------------------------
// Capture-time enforcement: an ill-defined plan never enters the cache.

TEST(CheckEnforcement, EnvironmentControlsEnforcement)
{
    {
        const ScopedCheckEnv env("0");
        EXPECT_FALSE(capture_check_enabled());
    }
    {
        const ScopedCheckEnv env("1");
        EXPECT_TRUE(capture_check_enabled());
    }
}

TEST(CheckEnforcement, CleanPlanPassesWithEnforcementOn)
{
    const ScopedCheckEnv env("1");
    const LaunchGraph graph = sequential_temps_graph();
    const MemPlan plan = plan_memory(graph);
    EXPECT_NO_THROW(enforce_capture_check(graph, &plan, "seq temps"));
}

TEST(CheckEnforcement, WarningsDoNotBlockCapture)
{
    const ScopedCheckEnv env("1");
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.w"), {}, {"t"}));
    // A dead store is a warning; enforcement gates on errors only.
    EXPECT_NO_THROW(enforce_capture_check(graph, nullptr, "dead store"));
}

TEST(CheckEnforcement, IllDefinedPlanNeverEntersTheCache)
{
    const ScopedCheckEnv env("1");
    const std::string key = "check_test|ill-defined|v1";
    int builds = 0;
    const auto build = [&]() {
        ++builds;
        auto graph = std::make_shared<LaunchGraph>();
        graph->launch(0,
                      sim::annotate(toy_launch("gemm.r"), {"%t"}, {}));
        // The builders call this right before returning into the cache.
        enforce_capture_check(*graph, nullptr, key);
        return graph;
    };
    EXPECT_THROW(PlanCache::instance().get_or_build<LaunchGraph>(key, build),
                 PlanCheckError);
    EXPECT_THROW(PlanCache::instance().get_or_build<LaunchGraph>(key, build),
                 PlanCheckError);
    // The second call re-ran the builder: the throw kept the undefined
    // plan out of the cache entirely.
    EXPECT_EQ(builds, 2);

    // With enforcement off the same plan caches fine (mgcheck reports
    // it instead).
    const ScopedCheckEnv off("0");
    EXPECT_NO_THROW(
        PlanCache::instance().get_or_build<LaunchGraph>(key, build));
    EXPECT_EQ(builds, 3);
}

TEST(CheckReportApi, SummaryAndCounts)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("gemm.r"), {"%t"}, {"u"}));
    const CheckReport report = check_graph(graph);
    EXPECT_EQ(report.num_nodes, 1u);
    EXPECT_EQ(report.num_buffers, 2u);
    EXPECT_EQ(report.errors(), 1u);
    EXPECT_EQ(report.count(CheckSeverity::kWarning), 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.summary(), "1 error(s), 1 warning(s)");
    // Errors sort first regardless of discovery order.
    EXPECT_EQ(report.findings.front().severity, CheckSeverity::kError);
}

}  // namespace
}  // namespace multigrain
