// Tests for the §2.4 special methods: sliding-chunk (Longformer) and
// blockify (BigBird) must compute exactly the banded sparse attention the
// reference defines, and their plans must carry the pre-processing copy
// overheads the paper charges them with.

#include <memory>

#include <gtest/gtest.h>

#include "common/error.h"
#include "gpusim/device.h"
#include "kernels/chunked_baseline.h"
#include "kernels/reference.h"
#include "patterns/pattern.h"

namespace multigrain {
namespace {

constexpr double kTol = 0.02;

class ChunkedWindowTest : public ::testing::TestWithParam<index_t> {};

TEST_P(ChunkedWindowTest, SlidingChunkMatchesLocalReference)
{
    const index_t window = GetParam();
    const index_t seq = window * 8;
    Rng rng(21);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);

    const HalfMatrix out =
        kernels::sliding_chunk_attention(q, k, v, window, 0.25);

    CompoundPattern pattern;
    pattern.seq_len = seq;
    pattern.atoms.push_back(AtomicPattern::local(window));
    const CsrLayout layout = build_full_layout(pattern);
    const DoubleMatrix ref = kernels::ref_attention(q, k, v, layout, 0.25);
    EXPECT_LT(kernels::max_abs_diff(widen(out), ref), kTol);
}

TEST_P(ChunkedWindowTest, BlockifyMatchesBlockedLocalReference)
{
    const index_t block = GetParam();
    const index_t seq = block * 8;
    Rng rng(22);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);

    const HalfMatrix out =
        kernels::blockify_attention(q, k, v, block, 0.25);

    CompoundPattern pattern;
    pattern.seq_len = seq;
    pattern.atoms.push_back(AtomicPattern::blocked_local(block, 1));
    const CsrLayout layout = build_full_layout(pattern);
    const DoubleMatrix ref = kernels::ref_attention(q, k, v, layout, 0.25);
    EXPECT_LT(kernels::max_abs_diff(widen(out), ref), kTol);
}

INSTANTIATE_TEST_SUITE_P(Windows, ChunkedWindowTest,
                         ::testing::Values<index_t>(4, 8, 16));

TEST(ChunkedTest, SlidingChunkRejectsBadShapes)
{
    Rng rng(1);
    const HalfMatrix m = random_half_matrix(rng, 30, 8);
    EXPECT_THROW(kernels::sliding_chunk_attention(m, m, m, 0, 1.0), Error);
    EXPECT_THROW(kernels::sliding_chunk_attention(m, m, m, 7, 1.0), Error);
}

TEST(ChunkedTest, PlansCarryCopyOverheads)
{
    const index_t seq = 4096, dh = 64, replicas = 4;

    sim::GpuSim chunk_sim(sim::DeviceSpec::a100());
    kernels::plan_sliding_chunk(chunk_sim, seq, 256, dh, replicas);
    const sim::SimResult chunk = chunk_sim.run();
    // The copy-in kernel moves 2x K + 2x V (read + write each).
    const auto *copy = chunk.find("chunk.copy_in");
    ASSERT_NE(copy, nullptr);
    const double kv_bytes = 2.0 * seq * dh * 2.0 * replicas;  // K and V.
    EXPECT_NEAR(copy->work.dram_bytes(), 2.0 * kv_bytes * 2.0,
                0.02 * kv_bytes);

    sim::GpuSim blockify_sim(sim::DeviceSpec::a100());
    kernels::plan_blockify(blockify_sim, seq, 64, dh, replicas);
    const sim::SimResult blockify = blockify_sim.run();
    const auto *bcopy = blockify.find("blockify.copy_in");
    ASSERT_NE(bcopy, nullptr);
    // 3x duplication: strictly more copy traffic than sliding chunk at the
    // same model size.
    EXPECT_GT(bcopy->work.dram_bytes(), copy->work.dram_bytes() * 1.4);
}

TEST(ChunkedTest, PlanPhasesAreOrdered)
{
    sim::GpuSim sim(sim::DeviceSpec::a100());
    kernels::plan_sliding_chunk(sim, 1024, 128, 64, 1);
    const sim::SimResult r = sim.run();
    const auto *copy = r.find("chunk.copy_in");
    const auto *qk = r.find("chunk.qk");
    const auto *softmax = r.find("chunk.softmax");
    const auto *pv = r.find("chunk.pv");
    ASSERT_TRUE(copy && qk && softmax && pv);
    EXPECT_GE(qk->start_us, copy->end_us);
    EXPECT_GE(softmax->start_us, qk->end_us);
    EXPECT_GE(pv->start_us, softmax->end_us);
}

}  // namespace
}  // namespace multigrain
