// Tests for src/kernels: every functional kernel against the FP64 dense
// reference (within FP16 tolerances), softmax invariants, and cost-model
// sanity (work conservation, traffic lower bounds, scheme differences).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "formats/convert.h"
#include "gpusim/device.h"
#include "kernels/blocked_baseline.h"
#include "kernels/coarse.h"
#include "kernels/compound_softmax.h"
#include "kernels/cost_model.h"
#include "kernels/dense.h"
#include "kernels/fine.h"
#include "kernels/reference.h"
#include "patterns/pattern.h"
#include "patterns/slice.h"

namespace multigrain {
namespace {

using kernels::FineSddmmScheme;

constexpr double kTol = 6e-3;  // FP16 ULP at O(1) values, with slack.

CompoundPattern
test_pattern(index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(5));
    p.atoms.push_back(AtomicPattern::selected({1, seq / 2, seq - 2}));
    p.atoms.push_back(AtomicPattern::random(4, 11));
    return p;
}

// ----------------------------------------------------------- reference ----

TEST(ReferenceTest, GemmNtMatchesGemmNnOnTransposedInput)
{
    Rng rng(1);
    const HalfMatrix a = random_half_matrix(rng, 6, 4);
    const HalfMatrix b = random_half_matrix(rng, 5, 4);
    DoubleMatrix bt(4, 5);
    for (index_t r = 0; r < 5; ++r) {
        for (index_t c = 0; c < 4; ++c) {
            bt.at(c, r) = float(b.at(r, c));
        }
    }
    const DoubleMatrix via_nt = kernels::ref_gemm_nt(widen(a), widen(b));
    const DoubleMatrix via_nn = kernels::ref_gemm_nn(widen(a), bt);
    EXPECT_LT(kernels::max_abs_diff(via_nt, via_nn), 1e-12);
}

TEST(ReferenceTest, SoftmaxRowsSumToOne)
{
    Rng rng(2);
    const CsrLayout layout = build_full_layout(test_pattern(32));
    std::vector<double> values(static_cast<std::size_t>(layout.nnz()));
    for (auto &v : values) {
        v = rng.next_float(-3.0f, 3.0f);
    }
    const auto probs = kernels::ref_softmax(layout, values, 0.5);
    for (index_t r = 0; r < layout.rows; ++r) {
        double sum = 0;
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            sum += probs[static_cast<std::size_t>(i)];
        }
        if (layout.row_nnz(r) > 0) {
            EXPECT_NEAR(sum, 1.0, 1e-12) << "row " << r;
        }
    }
}

TEST(ReferenceTest, SoftmaxInvariantToShift)
{
    const CsrLayout layout = build_full_layout(test_pattern(16));
    std::vector<double> values(static_cast<std::size_t>(layout.nnz()), 0.0);
    Rng rng(3);
    for (auto &v : values) {
        v = rng.next_float(-2, 2);
    }
    std::vector<double> shifted = values;
    for (auto &v : shifted) {
        v += 100.0;
    }
    const auto p1 = kernels::ref_softmax(layout, values, 1.0);
    const auto p2 = kernels::ref_softmax(layout, shifted, 1.0);
    for (std::size_t i = 0; i < p1.size(); ++i) {
        EXPECT_NEAR(p1[i], p2[i], 1e-9);
    }
}

// --------------------------------------------------------------- dense ----

TEST(DenseKernelTest, GemmNtMatchesReference)
{
    Rng rng(4);
    const HalfMatrix a = random_half_matrix(rng, 24, 16);
    const HalfMatrix b = random_half_matrix(rng, 20, 16);
    HalfMatrix c(24, 20);
    kernels::dense_gemm_nt(a, b, c);
    const DoubleMatrix ref = kernels::ref_gemm_nt(widen(a), widen(b));
    EXPECT_LT(kernels::max_abs_diff(widen(c), ref), kTol * 16);
}

TEST(DenseKernelTest, GemmNnMatchesReference)
{
    Rng rng(5);
    const HalfMatrix a = random_half_matrix(rng, 12, 18);
    const HalfMatrix b = random_half_matrix(rng, 18, 10);
    HalfMatrix c(12, 10);
    kernels::dense_gemm_nn(a, b, c);
    const DoubleMatrix ref = kernels::ref_gemm_nn(widen(a), widen(b));
    EXPECT_LT(kernels::max_abs_diff(widen(c), ref), kTol * 18);
}

TEST(DenseKernelTest, SoftmaxRowsNormalizesAndMasksPadding)
{
    Rng rng(6);
    HalfMatrix m = random_half_matrix(rng, 8, 12, -2.0f, 2.0f);
    kernels::dense_softmax_rows(m, 0.7, 9);
    for (index_t r = 0; r < 8; ++r) {
        float sum = 0;
        for (index_t c = 0; c < 12; ++c) {
            sum += float(m.at(r, c));
        }
        EXPECT_NEAR(sum, 1.0f, 0.01f);
        for (index_t c = 9; c < 12; ++c) {
            EXPECT_EQ(float(m.at(r, c)), 0.0f);
        }
    }
}

// -------------------------------------------------------------- coarse ----

class SparseGemmTest : public ::testing::TestWithParam<index_t> {};

TEST_P(SparseGemmTest, CoarseSddmmMatchesReferenceOnValidElements)
{
    const index_t seq = GetParam();
    Rng rng(7);
    const index_t dh = 16;
    const HalfMatrix q = random_half_matrix(rng, seq, dh);
    const HalfMatrix k = random_half_matrix(rng, seq, dh);
    const CsrLayout full = build_full_layout(test_pattern(seq));
    auto bsr = std::make_shared<const BsrLayout>(bsr_from_csr(full, 8));
    BsrMatrix s(bsr);
    kernels::coarse_sddmm(q, k, s);
    // Compare the valid positions against the reference SDDMM.
    const std::vector<double> ref = kernels::ref_sddmm(q, k, full);
    const HalfMatrix dense = dense_from_bsr(s);
    std::size_t i = 0;
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = full.row_offsets[static_cast<std::size_t>(r)];
             j < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++j) {
            const index_t c = full.col_indices[static_cast<std::size_t>(j)];
            EXPECT_NEAR(float(dense.at(r, c)), ref[i], kTol * dh)
                << "(" << r << "," << c << ")";
            ++i;
        }
    }
}

TEST_P(SparseGemmTest, FineSddmmMatchesReference)
{
    const index_t seq = GetParam();
    Rng rng(8);
    const index_t dh = 16;
    const HalfMatrix q = random_half_matrix(rng, seq, dh);
    const HalfMatrix k = random_half_matrix(rng, seq, dh);
    auto layout = std::make_shared<const CsrLayout>(
        build_full_layout(test_pattern(seq)));
    CsrMatrix s(layout);
    kernels::fine_sddmm(q, k, s);
    const std::vector<double> ref = kernels::ref_sddmm(q, k, *layout);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(float(s.values[i]), ref[i], kTol * dh);
    }
}

TEST_P(SparseGemmTest, CoarseSpmmMatchesReference)
{
    const index_t seq = GetParam();
    Rng rng(9);
    const index_t dh = 16;
    const HalfMatrix v = random_half_matrix(rng, seq, dh);
    const CsrLayout full = build_full_layout(test_pattern(seq));
    auto bsr = std::make_shared<const BsrLayout>(bsr_from_csr(full, 8));

    // Probability-like values at the valid positions, zero elsewhere.
    Rng vals(10);
    HalfMatrix p_dense(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = full.row_offsets[static_cast<std::size_t>(r)];
             j < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++j) {
            p_dense.at(r, full.col_indices[static_cast<std::size_t>(j)]) =
                half(vals.next_float(0.0f, 0.1f));
        }
    }
    const BsrMatrix p = gather_bsr(p_dense, bsr);
    // gather_bsr copies stored-but-invalid positions too; they are zero in
    // p_dense, so full-block SpMM math stays exact.
    FloatMatrix acc(seq, dh, 0.0f);
    kernels::coarse_spmm(p, v, acc);

    std::vector<double> pvals(static_cast<std::size_t>(full.nnz()));
    std::size_t i = 0;
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = full.row_offsets[static_cast<std::size_t>(r)];
             j < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++j) {
            pvals[i++] = float(
                p_dense.at(r,
                           full.col_indices[static_cast<std::size_t>(j)]));
        }
    }
    const DoubleMatrix ref = kernels::ref_spmm(full, pvals, v);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t d = 0; d < dh; ++d) {
            EXPECT_NEAR(acc.at(r, d), ref.at(r, d), kTol * 4);
        }
    }
}

TEST_P(SparseGemmTest, FineSpmmMatchesReference)
{
    const index_t seq = GetParam();
    Rng rng(11);
    const index_t dh = 16;
    const HalfMatrix v = random_half_matrix(rng, seq, dh);
    auto layout = std::make_shared<const CsrLayout>(
        build_full_layout(test_pattern(seq)));
    CsrMatrix p(layout);
    std::vector<double> pvals(p.values.size());
    for (std::size_t i = 0; i < p.values.size(); ++i) {
        const float x = rng.next_float(0.0f, 0.1f);
        p.values[i] = half(x);
        pvals[i] = float(p.values[i]);
    }
    FloatMatrix acc(seq, dh, 0.0f);
    kernels::fine_spmm(p, v, acc);
    const DoubleMatrix ref = kernels::ref_spmm(*layout, pvals, v);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t d = 0; d < dh; ++d) {
            EXPECT_NEAR(acc.at(r, d), ref.at(r, d), kTol * 4);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseGemmTest,
                         ::testing::Values<index_t>(16, 32, 64, 96));

// ------------------------------------------------------------- softmax ----

TEST(SoftmaxKernelTest, FineSoftmaxMatchesReference)
{
    Rng rng(12);
    auto layout = std::make_shared<const CsrLayout>(
        build_full_layout(test_pattern(48)));
    CsrMatrix s(layout);
    std::vector<double> svals(s.values.size());
    for (std::size_t i = 0; i < s.values.size(); ++i) {
        const float x = rng.next_float(-4.0f, 4.0f);
        s.values[i] = half(x);
        svals[i] = float(s.values[i]);
    }
    kernels::fine_softmax(s, 0.25);
    const auto ref = kernels::ref_softmax(*layout, svals, 0.25);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(float(s.values[i]), ref[i], kTol);
    }
}

TEST(SoftmaxKernelTest, CompoundSoftmaxMatchesFineOnWholePattern)
{
    // Splitting the same values between a coarse BSR part and a fine CSR
    // part must give the same probabilities as one fine softmax.
    Rng rng(13);
    const index_t seq = 64;
    CompoundPattern pat;
    pat.seq_len = seq;
    pat.atoms.push_back(AtomicPattern::local(4));
    pat.atoms.push_back(AtomicPattern::random(5, 3));
    const SlicePlan plan = slice_and_dice(pat, {.block = 16});
    ASSERT_TRUE(plan.has_coarse());
    ASSERT_TRUE(plan.has_fine());

    HalfMatrix s_dense(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j =
                 plan.full->row_offsets[static_cast<std::size_t>(r)];
             j < plan.full->row_offsets[static_cast<std::size_t>(r + 1)];
             ++j) {
            s_dense.at(
                r, plan.full->col_indices[static_cast<std::size_t>(j)]) =
                half(rng.next_float(-3.0f, 3.0f));
        }
    }
    BsrMatrix coarse = gather_bsr(s_dense, plan.coarse);
    CsrMatrix fine = gather_csr(s_dense, plan.fine);
    kernels::compound_softmax(&coarse, &fine, 0.5);

    CsrMatrix whole = gather_csr(s_dense, plan.full);
    kernels::fine_softmax(whole, 0.5);
    const HalfMatrix whole_dense = dense_from_csr(whole);

    const HalfMatrix coarse_dense = dense_from_bsr(coarse);
    const HalfMatrix fine_dense = dense_from_csr(fine);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t c = 0; c < seq; ++c) {
            const float combined =
                float(coarse_dense.at(r, c)) + float(fine_dense.at(r, c));
            EXPECT_NEAR(combined, float(whole_dense.at(r, c)), kTol)
                << "(" << r << "," << c << ")";
        }
    }
}

TEST(SoftmaxKernelTest, CompoundSoftmaxZeroesInvalidBlockPositions)
{
    CompoundPattern pat;
    pat.seq_len = 32;
    pat.atoms.push_back(AtomicPattern::local(2));  // Partial edge blocks.
    const SlicePlan plan = slice_and_dice(pat, {.block = 8});
    BsrMatrix s(plan.coarse);
    for (auto &v : s.values) {
        v = half(1.0f);  // Garbage in the padding positions too.
    }
    kernels::compound_softmax(&s, nullptr, 1.0);
    const BsrLayout &l = *plan.coarse;
    for (index_t b = 0; b < l.nnz_blocks(); ++b) {
        for (index_t r = 0; r < l.block; ++r) {
            for (index_t c = 0; c < l.block; ++c) {
                if (!l.element_valid(b, r, c)) {
                    EXPECT_EQ(float(s.block(b)[r * l.block + c]), 0.0f);
                }
            }
        }
    }
}

TEST(SoftmaxKernelTest, EmptyRowsProduceZeros)
{
    CsrLayout l;
    l.rows = 4;
    l.cols = 4;
    l.row_offsets = {0, 2, 2, 2, 4};
    l.col_indices = {0, 1, 2, 3};
    auto layout = std::make_shared<const CsrLayout>(std::move(l));
    CsrMatrix s(layout);
    s.values = {half(1.0f), half(2.0f), half(3.0f), half(4.0f)};
    kernels::compound_softmax(nullptr, &s, 1.0);
    EXPECT_NEAR(float(s.values[0]) + float(s.values[1]), 1.0f, 0.01f);
    EXPECT_NEAR(float(s.values[2]) + float(s.values[3]), 1.0f, 0.01f);
}

TEST(SoftmaxKernelTest, LargeLogitsDoNotOverflow)
{
    // Safe softmax: logits near the FP16 max must not produce inf/NaN.
    CsrLayout l;
    l.rows = 1;
    l.cols = 3;
    l.row_offsets = {0, 3};
    l.col_indices = {0, 1, 2};
    auto layout = std::make_shared<const CsrLayout>(std::move(l));
    CsrMatrix s(layout);
    s.values = {half(60000.0f), half(59000.0f), half(-60000.0f)};
    kernels::fine_softmax(s, 1.0);
    for (const half v : s.values) {
        EXPECT_TRUE(std::isfinite(float(v)));
    }
    EXPECT_GT(float(s.values[0]), 0.9f);
}

// ---------------------------------------------------------- cost model ----

TEST(CostModelTest, SplitReuseConservesTraffic)
{
    const kernels::MemSplit s =
        kernels::split_reuse(1000.0, 300.0, 1e9, 0.5);
    EXPECT_LE(s.dram_bytes + s.l2_bytes, 1000.0 + 1e-9);
    EXPECT_GE(s.dram_bytes, 300.0);  // First touches always hit DRAM.
}

TEST(CostModelTest, SplitReuseAllDramWhenNoReuse)
{
    const kernels::MemSplit s = kernels::split_reuse(500.0, 500.0, 1e9, 0.5);
    EXPECT_DOUBLE_EQ(s.dram_bytes, 500.0);
    EXPECT_DOUBLE_EQ(s.l2_bytes, 0.0);
}

TEST(CostModelTest, SmallL2SpillsToDram)
{
    const kernels::MemSplit big_l2 =
        kernels::split_reuse(1000.0, 100.0, 1e9, 0.0);
    const kernels::MemSplit small_l2 =
        kernels::split_reuse(1000.0, 100.0, 50.0, 0.0);
    EXPECT_LT(big_l2.dram_bytes, small_l2.dram_bytes);
}

TEST(CostModelTest, CoarseSddmmPlanConservesFlops)
{
    const CsrLayout full = build_full_layout(test_pattern(64));
    const BsrLayout bsr = bsr_from_csr(full, 16);
    const auto launch = kernels::plan_coarse_sddmm(
        sim::DeviceSpec::a100(), bsr, 32, 3);
    // Tensor flops = blocks * 2 * B^2 * dh * replicas, by construction.
    const double expected =
        static_cast<double>(bsr.nnz_blocks()) * 2.0 * 16 * 16 * 32 * 3;
    EXPECT_NEAR(launch.total_work().tensor_flops, expected, 1.0);
    EXPECT_EQ(launch.num_tbs(),
              [&] {
                  index_t nonempty = 0;
                  for (index_t br = 0; br < bsr.block_rows(); ++br) {
                      nonempty += bsr.row_nnz_blocks(br) > 0 ? 1 : 0;
                  }
                  return nonempty * 3;
              }());
}

TEST(CostModelTest, FineSddmmPlanConservesFlops)
{
    const CsrLayout full = build_full_layout(test_pattern(64));
    const auto launch = kernels::plan_fine_sddmm(
        sim::DeviceSpec::a100(), full, 32, 2, FineSddmmScheme::kRowSplit);
    const double expected = static_cast<double>(full.nnz()) *
                            (2.0 * 32 * kernels::kFineGatherOverhead + 2.0) *
                            2;
    EXPECT_NEAR(launch.total_work().cuda_flops, expected, 1.0);
    EXPECT_EQ(launch.num_tbs(), full.rows * 2);
}

TEST(CostModelTest, OneDTilingLaunchesMoreBlocksThanRowSplit)
{
    // A layout with one dense row (global) and many short rows: the
    // official 1D tiling pays ceil(max_nnz/64) blocks for *every* row.
    CompoundPattern pat;
    pat.seq_len = 128;
    pat.atoms.push_back(AtomicPattern::local(2));
    pat.atoms.push_back(AtomicPattern::global({0}));
    const CsrLayout full = build_full_layout(pat);
    const auto rowsplit = kernels::plan_fine_sddmm(
        sim::DeviceSpec::a100(), full, 64, 1, FineSddmmScheme::kRowSplit);
    const auto tiling = kernels::plan_fine_sddmm(
        sim::DeviceSpec::a100(), full, 64, 1, FineSddmmScheme::k1dTiling);
    EXPECT_EQ(rowsplit.num_tbs(), 128);
    EXPECT_EQ(tiling.num_tbs(), 128 * 2);  // max_nnz 128 -> 2 tiles/row.
    // Same useful flops either way.
    EXPECT_NEAR(rowsplit.total_work().cuda_flops,
                tiling.total_work().cuda_flops, 1.0);
}

TEST(CostModelTest, TritonSoftmaxSweepsStoredNotValid)
{
    // Blockifying a scattered pattern forces the blocked softmax to touch
    // every stored element; the compound softmax touches valid + fine.
    CompoundPattern pat;
    pat.seq_len = 256;
    pat.atoms.push_back(AtomicPattern::random(6, 5));
    SliceOptions coarse_only;
    coarse_only.block = 64;
    coarse_only.mode = SliceMode::kCoarseOnly;
    const SlicePlan triton = slice_and_dice(pat, coarse_only);
    const SlicePlan mg = slice_and_dice(pat, {.block = 64});

    const auto t = kernels::plan_triton_softmax(sim::DeviceSpec::a100(),
                                                *triton.coarse, 1);
    const auto m = kernels::plan_compound_softmax(
        sim::DeviceSpec::a100(), nullptr, mg.fine.get(), 1);
    EXPECT_GT(t.total_work().cuda_flops, 10 * m.total_work().cuda_flops);
    EXPECT_GT(t.total_work().dram_bytes(),
              4 * m.total_work().dram_bytes());
}

TEST(CostModelTest, DenseGemmPlanFlopsExact)
{
    const sim::DeviceSpec dev = sim::DeviceSpec::a100();
    const auto launch = kernels::plan_dense_gemm(dev, 256, 512, 128, 2, "g");
    // Tile-quantized flops are at least the exact amount, expressed in
    // sparse-efficiency units (dense GEMM achieves a higher fraction of
    // peak, so its flops are scaled down by the efficiency ratio).
    const double eff = dev.tensor_efficiency / dev.dense_tensor_efficiency;
    EXPECT_GE(launch.total_work().tensor_flops,
              2.0 * 256 * 512 * 128 * 2 * eff - 1.0);
    EXPECT_GT(launch.num_tbs(), 0);
}

TEST(CostModelTest, ElementwisePlanBandwidthBound)
{
    const auto launch = kernels::plan_elementwise(sim::DeviceSpec::a100(),
                                                  1 << 20, 2, 8.0, "ew");
    const auto w = launch.total_work();
    EXPECT_NEAR(w.dram_read_bytes, 2.0 * 2 * (1 << 20), 1e3);
    EXPECT_NEAR(w.dram_write_bytes, 2.0 * (1 << 20), 1e3);
}

}  // namespace
}  // namespace multigrain
