// LaunchGraph capture/replay tests. The load-bearing property: replaying
// a captured graph into a GpuSim must produce a SimResult byte-identical
// to the pre-IR imperative path (the engine's *_direct methods) — same
// kernel names, same stream assignments, same dependency edges, same
// per-kernel times — for every SliceMode, forward and backward, with
// multi-stream on and off, and through TransformerRunner's per-layer
// graph composition.

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/attention.h"
#include "core/launch_graph.h"
#include "gpusim/device.h"
#include "gpusim/engine.h"
#include "kernels/dense.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

sim::KernelLaunch
toy_launch(const std::string &name, double flops)
{
    sim::KernelLaunch launch;
    launch.name = name;
    sim::TbWork work;
    work.tensor_flops = flops;
    work.dram_read_bytes = 1024;
    launch.add_tb(work, 4);
    return launch;
}

void
expect_identical(const sim::SimResult &direct, const sim::SimResult &replay)
{
    EXPECT_EQ(direct.total_us, replay.total_us);
    ASSERT_EQ(direct.kernels.size(), replay.kernels.size());
    for (std::size_t i = 0; i < direct.kernels.size(); ++i) {
        const sim::KernelStats &a = direct.kernels[i];
        const sim::KernelStats &b = replay.kernels[i];
        EXPECT_EQ(a.name, b.name) << "kernel " << i;
        EXPECT_EQ(a.stream, b.stream) << a.name;
        EXPECT_EQ(a.deps, b.deps) << a.name;
        EXPECT_EQ(a.num_tbs, b.num_tbs) << a.name;
        EXPECT_EQ(a.occupancy_per_sm, b.occupancy_per_sm) << a.name;
        EXPECT_EQ(a.ready_us, b.ready_us) << a.name;
        EXPECT_EQ(a.start_us, b.start_us) << a.name;
        EXPECT_EQ(a.end_us, b.end_us) << a.name;
        EXPECT_EQ(a.avg_concurrency, b.avg_concurrency) << a.name;
        EXPECT_EQ(a.work.tensor_flops, b.work.tensor_flops) << a.name;
        EXPECT_EQ(a.work.cuda_flops, b.work.cuda_flops) << a.name;
        EXPECT_EQ(a.work.dram_read_bytes, b.work.dram_read_bytes) << a.name;
        EXPECT_EQ(a.work.dram_write_bytes, b.work.dram_write_bytes)
            << a.name;
        EXPECT_EQ(a.work.l2_bytes, b.work.l2_bytes) << a.name;
    }
}

// ---------------------------------------------------------------------------
// Capture semantics.

TEST(LaunchGraphTest, CapturesStreamOrderAndJoinEdges)
{
    LaunchGraph graph;
    graph.launch(0, toy_launch("a", 1e6));
    const int s1 = graph.create_stream();
    EXPECT_EQ(s1, 1);
    graph.launch(s1, toy_launch("b", 1e6));
    graph.join_streams();
    graph.launch(0, toy_launch("c", 1e6));
    graph.launch(0, toy_launch("d", 1e6));

    ASSERT_EQ(graph.size(), 4u);
    EXPECT_EQ(graph.num_streams(), 2);
    EXPECT_TRUE(graph.nodes()[0].deps.empty());
    EXPECT_TRUE(graph.nodes()[1].deps.empty());
    // c waits on the join set {a, b}; d only on c (stream order).
    EXPECT_EQ(graph.nodes()[2].deps, (std::vector<int>{0, 1}));
    EXPECT_EQ(graph.nodes()[3].deps, (std::vector<int>{2}));
    // Op stream: a, b, JOIN, c, d.
    EXPECT_EQ(graph.ops(),
              (std::vector<int>{0, 1, LaunchGraph::kJoin, 2, 3}));
    graph.validate();
    EXPECT_EQ(graph.total_work().tensor_flops, 4 * 4e6);
}

TEST(LaunchGraphTest, AppendPrefixesNamesAndMapsStreams)
{
    LaunchGraph inner;
    const int s1 = inner.create_stream();
    inner.launch(0, toy_launch("x", 1e6));
    inner.launch(s1, toy_launch("y", 1e6));
    inner.join_streams();

    LaunchGraph outer;
    outer.launch(0, toy_launch("pre", 1e6));
    outer.append(inner, "g1.");
    outer.append(inner, "g2.");
    outer.validate();

    ASSERT_EQ(outer.size(), 5u);
    EXPECT_EQ(outer.nodes()[1].launch.name, "g1.x");
    EXPECT_EQ(outer.nodes()[2].launch.name, "g1.y");
    EXPECT_EQ(outer.nodes()[3].launch.name, "g2.x");
    // Null stream map: inner stream 0 -> outer stream 0, inner stream 1
    // gets a fresh outer stream per append.
    EXPECT_EQ(outer.nodes()[1].stream, 0);
    EXPECT_EQ(outer.nodes()[2].stream, 1);
    EXPECT_EQ(outer.nodes()[4].stream, 2);
    // g1.x serializes after "pre" on stream 0 (context edge recomputed).
    EXPECT_EQ(outer.nodes()[1].deps, (std::vector<int>{0}));
    // g2.x waits on g1's join set.
    EXPECT_EQ(outer.nodes()[3].deps, (std::vector<int>{1, 2}));
}

TEST(LaunchGraphTest, AppendWithExplicitStreamMap)
{
    LaunchGraph inner;
    const int s1 = inner.create_stream();
    inner.launch(s1, toy_launch("k", 1e6));

    LaunchGraph outer;
    const int a = outer.create_stream();
    const int b = outer.create_stream();
    const std::vector<int> map = {0, b};
    outer.append(inner, "", &map);
    EXPECT_EQ(outer.nodes()[0].stream, b);
    EXPECT_NE(outer.nodes()[0].stream, a);

    const std::vector<int> short_map = {0};
    EXPECT_THROW(outer.append(inner, "", &short_map), Error);
}

TEST(LaunchGraphTest, ReplayAfterExistingWorkSerializesOnStreamZero)
{
    LaunchGraph graph;
    graph.launch(0, toy_launch("g", 1e6));

    sim::GpuSim sim(sim::DeviceSpec::a100());
    sim.launch(0, toy_launch("before", 1e6));
    graph.replay_into(sim, "step.");
    const sim::SimResult result = sim.run();
    ASSERT_EQ(result.kernels.size(), 2u);
    EXPECT_EQ(result.kernels[1].name, "step.g");
    // The replayed kernel lands on real stream 0 behind the existing one.
    EXPECT_EQ(result.kernels[1].stream, 0);
    EXPECT_EQ(result.kernels[1].deps, (std::vector<int>{0}));
}

TEST(LaunchGraphTest, BindingReuseKeepsStreamsStableAcrossReplays)
{
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(s1, toy_launch("k", 1e6));
    graph.join_streams();

    sim::GpuSim sim(sim::DeviceSpec::a100());
    std::vector<int> binding;
    graph.replay_into(sim, binding, "r0.");
    const std::vector<int> first = binding;
    graph.replay_into(sim, binding, "r1.");
    EXPECT_EQ(binding, first);

    const sim::SimResult result = sim.run();
    ASSERT_EQ(result.kernels.size(), 2u);
    EXPECT_EQ(result.kernels[0].stream, result.kernels[1].stream);
}

// ---------------------------------------------------------------------------
// Replay equivalence against the pre-IR imperative path.

AttentionConfig
small_config(bool multi_stream)
{
    AttentionConfig c;
    c.head_dim = 16;
    c.block = 16;
    c.num_heads = 2;
    c.multi_stream = multi_stream;
    return c;
}

CompoundPattern
compound(index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(4));
    p.atoms.push_back(AtomicPattern::selected({1, seq / 3}));
    p.atoms.push_back(AtomicPattern::global({1, seq / 3}));
    p.atoms.push_back(AtomicPattern::random(3, 21));
    return p;
}

class ReplayEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<SliceMode, bool /*multi_stream*/, bool /*backward*/>> {
};

TEST_P(ReplayEquivalenceTest, ReplayMatchesDirectPath)
{
    const auto [mode, multi_stream, backward] = GetParam();
    const AttentionEngine engine(compound(64), small_config(multi_stream),
                                 mode);
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    sim::GpuSim direct(device);
    sim::GpuSim replay(device);
    if (backward) {
        engine.plan_backward_into_direct(direct, "T00.attn.");
        engine.plan_backward_into(replay, "T00.attn.");
    } else {
        engine.plan_into_direct(direct, "T00.attn.");
        engine.plan_into(replay, "T00.attn.");
    }
    expect_identical(direct.run(), replay.run());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ReplayEquivalenceTest,
    ::testing::Combine(::testing::Values(SliceMode::kMultigrain,
                                         SliceMode::kCoarseOnly,
                                         SliceMode::kFineOnly,
                                         SliceMode::kDense),
                       ::testing::Bool(), ::testing::Bool()));

TEST(ReplayPhaseTest, CoScheduledPhasesMatchDirectPath)
{
    // Two engines with different metadata, phases interleaved the way the
    // heterogeneous-batch runner does it.
    const AttentionEngine e1(compound(64), small_config(true),
                             SliceMode::kMultigrain);
    CompoundPattern other = compound(64);
    other.atoms.push_back(AtomicPattern::local(8));
    const AttentionEngine e2(other, small_config(true),
                             SliceMode::kMultigrain);
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    sim::GpuSim direct(device);
    sim::GpuSim replay(device);
    for (int phase = 0; phase < 3; ++phase) {
        for (const AttentionEngine *e : {&e1, &e2}) {
            switch (phase) {
              case 0:
                e->plan_sddmm_phase_direct(direct, "attn.");
                break;
              case 1:
                e->plan_softmax_phase_direct(direct, "attn.");
                break;
              default:
                e->plan_spmm_phase_direct(direct, "attn.");
            }
        }
        direct.join_streams();
        for (const AttentionEngine *e : {&e1, &e2}) {
            switch (phase) {
              case 0:
                e->plan_sddmm_phase(replay, "attn.");
                break;
              case 1:
                e->plan_softmax_phase(replay, "attn.");
                break;
              default:
                e->plan_spmm_phase(replay, "attn.");
            }
        }
        replay.join_streams();
    }
    expect_identical(direct.run(), replay.run());
}

TEST(ReplayPhaseTest, OneEngineCanPlanIntoTwoSimsConcurrently)
{
    // Stream bindings live with the simulator, not the engine, so
    // interleaving one engine's phases across two simulators must give
    // each simulator exactly what a dedicated engine would have planned.
    const AttentionEngine engine(compound(64), small_config(true),
                                 SliceMode::kMultigrain);
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    sim::GpuSim a(device);
    sim::GpuSim b(device);
    engine.plan_sddmm_phase(a);
    engine.plan_sddmm_phase(b);
    a.join_streams();
    b.join_streams();
    engine.plan_softmax_phase(a);
    engine.plan_softmax_phase(b);
    a.join_streams();
    b.join_streams();
    engine.plan_spmm_phase(a);
    engine.plan_spmm_phase(b);
    a.join_streams();
    b.join_streams();

    sim::GpuSim reference(device);
    engine.plan_into_direct(reference);
    const sim::SimResult ref = reference.run();
    expect_identical(ref, a.run());
    expect_identical(ref, b.run());
}

// ---------------------------------------------------------------------------
// Runner composition: per-layer graphs replayed per layer must equal the
// seed's imperative per-layer loop (reconstructed here over the _direct
// reference path).

TEST(RunnerComposedReplayTest, InferencePassMatchesImperativeLoop)
{
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(2022);
    const WorkloadSample sample = sample_for_model(rng, model);
    const index_t batch = 2;
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   batch);
    const EndToEndResult composed = runner.simulate(device);

    AttentionConfig config;
    config.head_dim = model.head_dim();
    config.num_heads = model.num_heads;
    config.batch = batch;
    config.block = model.block;
    const AttentionEngine engine(build_model_pattern(model, sample), config,
                                 SliceMode::kMultigrain);

    sim::GpuSim sim(device);
    const index_t seq = model.max_seq_len;
    const index_t d = model.d_model;
    const index_t ffn = model.ffn_dim;
    const index_t elems = seq * d * batch;
    for (index_t layer = 0; layer < model.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "L%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        sim.launch(0, kernels::plan_dense_gemm(device, seq, 3 * d, d,
                                               batch, p + "gemm.qkv"));
        sim.join_streams();
        engine.plan_sddmm_phase_direct(sim, p + "attn.");
        sim.join_streams();
        engine.plan_softmax_phase_direct(sim, p + "attn.");
        sim.join_streams();
        engine.plan_spmm_phase_direct(sim, p + "attn.");
        sim.join_streams();
        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, d, batch,
                                               p + "gemm.attn_out"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln1"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, ffn, d, batch,
                                               p + "gemm.ffn1"));
        sim.launch(0, kernels::plan_elementwise(device, seq * ffn * batch,
                                                1, 12.0, p + "ew.gelu"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, ffn, batch,
                                               p + "gemm.ffn2"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln2"));
        sim.join_streams();
    }
    expect_identical(sim.run(), composed.sim);
}

TEST(RunnerComposedReplayTest, TrainingPassMatchesImperativeLoop)
{
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(7);
    const WorkloadSample sample = sample_for_model(rng, model);
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);
    const EndToEndResult composed = runner.simulate_training(device);

    AttentionConfig config;
    config.head_dim = model.head_dim();
    config.num_heads = model.num_heads;
    config.batch = 1;
    config.block = model.block;
    const AttentionEngine engine(build_model_pattern(model, sample), config,
                                 SliceMode::kMultigrain);

    sim::GpuSim sim(device);
    const index_t seq = model.max_seq_len;
    const index_t d = model.d_model;
    const index_t ffn = model.ffn_dim;
    const index_t elems = seq * d;
    const auto dense_layer = [&](const std::string &p, double flop_scale) {
        for (double rep = 0; rep < flop_scale; ++rep) {
            const std::string suffix =
                flop_scale > 1 ? (rep == 0 ? ".dx" : ".dw") : "";
            sim.launch(0, kernels::plan_dense_gemm(device, seq, 3 * d, d, 1,
                                                   p + "gemm.qkv" + suffix));
            sim.launch(0,
                       kernels::plan_dense_gemm(
                           device, seq, d, d, 1, p + "gemm.attn_out" + suffix));
            sim.launch(0, kernels::plan_dense_gemm(device, seq, ffn, d, 1,
                                                   p + "gemm.ffn1" + suffix));
            sim.launch(0, kernels::plan_dense_gemm(device, seq, d, ffn, 1,
                                                   p + "gemm.ffn2" + suffix));
        }
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln"));
        sim.launch(0, kernels::plan_elementwise(device, seq * ffn, 1, 12.0,
                                                p + "ew.gelu"));
    };
    for (index_t layer = 0; layer < model.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "F%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        dense_layer(p, 1.0);
        sim.join_streams();
        engine.plan_sddmm_phase_direct(sim, p + "attn.");
        sim.join_streams();
        engine.plan_softmax_phase_direct(sim, p + "attn.");
        sim.join_streams();
        engine.plan_spmm_phase_direct(sim, p + "attn.");
        sim.join_streams();
    }
    for (index_t layer = model.num_layers; layer-- > 0;) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "B%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        engine.plan_backward_into_direct(sim, p + "attn.");
        dense_layer(p, 2.0);
        sim.join_streams();
    }
    expect_identical(sim.run(), composed.sim);
}

TEST(RunnerComposedReplayTest, HeterogeneousBatchMatchesImperativeLoop)
{
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(5);
    std::vector<WorkloadSample> samples;
    samples.push_back(sample_for_model(rng, model));
    samples.push_back(sample_for_model(rng, model));
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    const TransformerRunner runner(model, SliceMode::kMultigrain, samples);
    const EndToEndResult composed = runner.simulate(device);

    AttentionConfig config;
    config.head_dim = model.head_dim();
    config.num_heads = model.num_heads;
    config.batch = 1;
    config.block = model.block;
    std::vector<std::unique_ptr<AttentionEngine>> engines;
    for (const WorkloadSample &sample : samples) {
        engines.push_back(std::make_unique<AttentionEngine>(
            build_model_pattern(model, sample), config,
            SliceMode::kMultigrain));
    }

    sim::GpuSim sim(device);
    const index_t batch = static_cast<index_t>(samples.size());
    const index_t seq = model.max_seq_len;
    const index_t d = model.d_model;
    const index_t ffn = model.ffn_dim;
    const index_t elems = seq * d * batch;
    for (index_t layer = 0; layer < model.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "L%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        sim.launch(0, kernels::plan_dense_gemm(device, seq, 3 * d, d,
                                               batch, p + "gemm.qkv"));
        sim.join_streams();
        for (const auto &engine : engines) {
            engine->plan_sddmm_phase_direct(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines) {
            engine->plan_softmax_phase_direct(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines) {
            engine->plan_spmm_phase_direct(sim, p + "attn.");
        }
        sim.join_streams();
        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, d, batch,
                                               p + "gemm.attn_out"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln1"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, ffn, d, batch,
                                               p + "gemm.ffn1"));
        sim.launch(0, kernels::plan_elementwise(device, seq * ffn * batch,
                                                1, 12.0, p + "ew.gelu"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, ffn, batch,
                                               p + "gemm.ffn2"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln2"));
        sim.join_streams();
    }
    expect_identical(sim.run(), composed.sim);
}

}  // namespace
}  // namespace multigrain
