// Tests for the blocked-ELL format and the cuSPARSE-style SpMM baseline:
// conversion from BSR, padding rules, functional equivalence with the
// reference, and the cost model's uniform-padding behaviour.

#include <memory>

#include <gtest/gtest.h>

#include "common/error.h"
#include "formats/blocked_ell.h"
#include "formats/convert.h"
#include "gpusim/device.h"
#include "kernels/cusparse_baseline.h"
#include "kernels/reference.h"
#include "patterns/pattern.h"

namespace multigrain {
namespace {

BsrLayout
band_plus_heavy_row(index_t seq, index_t block)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.atoms.push_back(AtomicPattern::local(block / 2));
    p.atoms.push_back(AtomicPattern::global({1}));  // One wide block row.
    return bsr_from_csr(build_full_layout(p), block);
}

TEST(BlockedEllTest, ConversionPreservesBlocks)
{
    const BsrLayout bsr = band_plus_heavy_row(64, 8);
    const BlockedEllLayout ell = blocked_ell_from_bsr(bsr);
    ell.validate();
    EXPECT_EQ(ell.nnz_blocks(), bsr.nnz_blocks());
    // The widest block row (the global one) sets the width for all.
    EXPECT_EQ(ell.ell_width, 8);
    EXPECT_GT(ell.padding_blocks(), 0);
    EXPECT_EQ(ell.total_slots(),
              ell.nnz_blocks() + ell.padding_blocks());
}

TEST(BlockedEllTest, UniformPatternHasNoPadding)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::blocked_local(8, 0));  // Diagonal.
    const BlockedEllLayout ell =
        blocked_ell_from_bsr(bsr_from_csr(build_full_layout(p), 8));
    ell.validate();
    EXPECT_EQ(ell.ell_width, 1);
    EXPECT_EQ(ell.padding_blocks(), 0);
}

TEST(BlockedEllTest, ValidateRejectsNonTrailingPadding)
{
    BlockedEllLayout ell;
    ell.rows = 16;
    ell.cols = 16;
    ell.block = 8;
    ell.ell_width = 2;
    ell.col_indices = {BlockedEllLayout::kPadding, 0,  // Padding first: bad.
                       0, 1};
    EXPECT_THROW(ell.validate(), Error);
}

TEST(BlockedEllTest, ValidateRejectsDescendingColumns)
{
    BlockedEllLayout ell;
    ell.rows = 16;
    ell.cols = 16;
    ell.block = 8;
    ell.ell_width = 2;
    ell.col_indices = {1, 0, 0, 1};
    EXPECT_THROW(ell.validate(), Error);
}

TEST(CusparseSpmmTest, MatchesReference)
{
    const index_t seq = 64, dh = 16, block = 8;
    Rng rng(5);
    CompoundPattern pat;
    pat.seq_len = seq;
    pat.atoms.push_back(AtomicPattern::local(6));
    pat.atoms.push_back(AtomicPattern::random(3, 2));
    const CsrLayout full = build_full_layout(pat);
    auto bsr_layout =
        std::make_shared<const BsrLayout>(bsr_from_csr(full, block));

    // P values only at true pattern positions (like a softmax output).
    HalfMatrix p_dense(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        for (index_t i = full.row_offsets[static_cast<std::size_t>(r)];
             i < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            p_dense.at(r, full.col_indices[static_cast<std::size_t>(i)]) =
                half(rng.next_float(0.0f, 0.1f));
        }
    }
    const BsrMatrix p_bsr = gather_bsr(p_dense, bsr_layout);
    const BlockedEllMatrix p_ell = blocked_ell_matrix_from_bsr(p_bsr);
    const HalfMatrix v = random_half_matrix(rng, seq, dh);

    FloatMatrix acc(seq, dh, 0.0f);
    kernels::cusparse_spmm(p_ell, v, acc);

    std::vector<double> pvals(static_cast<std::size_t>(full.nnz()));
    std::size_t i = 0;
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = full.row_offsets[static_cast<std::size_t>(r)];
             j < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++j) {
            pvals[i++] = float(p_dense.at(
                r, full.col_indices[static_cast<std::size_t>(j)]));
        }
    }
    const DoubleMatrix ref = kernels::ref_spmm(full, pvals, v);
    EXPECT_LT(kernels::max_abs_diff(widen([&] {
                  HalfMatrix h(seq, dh);
                  for (index_t r = 0; r < seq; ++r) {
                      for (index_t d = 0; d < dh; ++d) {
                          h.at(r, d) = half(acc.at(r, d));
                      }
                  }
                  return h;
              }()),
                                    ref),
              0.03);
}

TEST(CusparseSpmmTest, PlanChargesPaddingUniformly)
{
    // A pattern with one wide row: the ELL plan pays the widest row's
    // block count in *every* block row; the BSR-based plans do not.
    const BsrLayout bsr = band_plus_heavy_row(512, 64);
    const BlockedEllLayout ell = blocked_ell_from_bsr(bsr);
    const auto launch = kernels::plan_cusparse_spmm(
        sim::DeviceSpec::a100(), ell, 64, 1);
    const double expected_flops =
        static_cast<double>(ell.total_slots()) * 2.0 * 64 * 64 * 64;
    EXPECT_NEAR(launch.total_work().tensor_flops, expected_flops, 1.0);
    EXPECT_GT(static_cast<double>(ell.total_slots()),
              1.5 * static_cast<double>(bsr.nnz_blocks()));
}

TEST(CusparseSpmmTest, UniformWorkMeansNoImbalance)
{
    const BsrLayout bsr = band_plus_heavy_row(512, 64);
    const BlockedEllLayout ell = blocked_ell_from_bsr(bsr);
    const auto launch = kernels::plan_cusparse_spmm(
        sim::DeviceSpec::a100(), ell, 64, 1);
    // All thread blocks identical -> a single merged group.
    EXPECT_EQ(launch.tbs.size(), 1u);
}

}  // namespace
}  // namespace multigrain
