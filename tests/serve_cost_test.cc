// Tests for mgcost (ISSUE 8): per-tenant cost attribution and its
// conservation gate (the ledger must telescope back to busy_us on every
// preset x device, and a seeded corruption must fail reconciliation),
// token-bucket rate limiting (refill units, burst cap, the disjoint
// shed_ratelimit valve, the noisy-neighbor guarantee), the fixed-grid
// telemetry sampler, and byte-identical same-seed report/CSV artifacts.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "gpusim/device.h"
#include "serve/admission.h"
#include "serve/cost.h"
#include "serve/server.h"
#include "serve/traffic.h"

namespace multigrain::serve {
namespace {

ServeReport
run_preset(const std::string &preset, const std::string &device,
           TelemetryRecorder *telemetry = nullptr)
{
    Server server(serve_preset_by_name(preset),
                  sim::device_spec_by_name(device));
    if (telemetry != nullptr) {
        server.set_telemetry(telemetry);
    }
    return server.run();
}

std::vector<std::string>
tenant_names(const ServeConfig &config)
{
    std::vector<std::string> names;
    for (const TenantSpec &t : config.traffic.tenants) {
        names.push_back(t.name);
    }
    return names;
}

// ---- Conservation across the preset matrix ------------------------------

TEST(CostLedgerTest, ConservesBusyTimeOnEveryPresetAndDevice)
{
    for (const char *preset : {"tiny", "steady", "overload", "closed",
                               "memtight", "noisy"}) {
        for (const char *device : {"a100", "rtx3090"}) {
            SCOPED_TRACE(std::string(preset) + "@" + device);
            const ServeReport report = run_preset(preset, device);
            const CostReport &cost = report.cost;
            for (const std::string &err :
                 reconcile_cost(cost, report)) {
                ADD_FAILURE() << err;
            }
            // The headline invariant, asserted directly too: per-tenant
            // device charges telescope to the run's device-busy time.
            double charged = 0;
            for (const TenantCost &t : cost.tenants) {
                charged += t.total.device_us();
            }
            EXPECT_NEAR(charged, report.busy_us,
                        kCostReconcileRelTol *
                            std::max(1.0, report.busy_us));
            EXPECT_DOUBLE_EQ(cost.busy_us, report.busy_us);
            EXPECT_EQ(cost.rounds, report.rounds);
        }
    }
}

TEST(CostLedgerTest, SeededMismatchFailsReconciliation)
{
    ServeReport report = run_preset("tiny", "a100");
    ASSERT_TRUE(reconcile_cost(report.cost, report).empty());
    ASSERT_FALSE(report.cost.tenants.empty());
    // The same corruption mgcost --perturb-ledger seeds: the gate must
    // fail closed, not absorb it.
    scale_tenant_charges(report.cost, 0, 1.5);
    EXPECT_FALSE(reconcile_cost(report.cost, report).empty());
}

TEST(CostLedgerTest, UnknownTenantGetsARowAppended)
{
    TenantLedger ledger({{"known"}});
    Request r;
    r.tenant = "stranger";
    r.slo = SloClass::kStandard;
    ledger.note_shed(r, AdmitDecision::Shed::kCapacity);
    const CostReport cost = ledger.finish(0);
    ASSERT_EQ(cost.tenants.size(), 2u);
    EXPECT_EQ(cost.tenants[0].tenant, "known");
    EXPECT_EQ(cost.tenants[1].tenant, "stranger");
    EXPECT_EQ(cost.tenants[1].total.shed_capacity, 1u);
}

// ---- Token bucket -------------------------------------------------------

TEST(TokenBucketTest, StartsFullAndRefillsAtTheConfiguredRate)
{
    // 1000 req/s = one token per 1000 us, burst 4: four back-to-back
    // takes drain the full bucket, the fifth is refused.
    TokenBucket bucket(1000, 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(bucket.try_take(0)) << "take " << i;
    }
    EXPECT_FALSE(bucket.try_take(0));
    EXPECT_FALSE(bucket.try_take(500));  // Half a token refilled.
    EXPECT_TRUE(bucket.try_take(1600));  // > one token since t=0.
    EXPECT_FALSE(bucket.try_take(1700));
}

TEST(TokenBucketTest, RefillCapsAtBurst)
{
    TokenBucket bucket(1000, 2);
    EXPECT_TRUE(bucket.try_take(0));
    EXPECT_TRUE(bucket.try_take(0));
    // A long idle gap refills to burst, not to rate * elapsed.
    for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(bucket.try_take(1e6));
    }
    EXPECT_FALSE(bucket.try_take(1e6));
}

TEST(TokenBucketTest, DefaultBucketIsUnlimited)
{
    TokenBucket bucket;
    EXPECT_FALSE(bucket.limited());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(bucket.try_take(0));
    }
    EXPECT_EQ(bucket.fill(), 1);  // Reports its (default) burst.
}

TEST(AdmissionRateLimitTest, ShedRateLimitIsDisjointFromTheOtherValves)
{
    AdmissionConfig config;
    config.queue_capacity = 1;
    // "free" has no rate limit; "lim" admits one request per ms with no
    // burst allowance beyond the first.
    AdmissionQueue queue(config, {{"free"}, {"lim", 1.0,
                                             SloClass::kStandard,
                                             /*rate_rps=*/1000,
                                             /*burst=*/1}});
    Request r;
    r.tenant = "lim";
    r.arrival_us = 0;
    EXPECT_TRUE(queue.offer(r, 0));
    // Second arrival at t=0: the bucket is empty — shed by rate, not by
    // the (now full) queue.
    const AdmitDecision rate = queue.offer(r, 0);
    EXPECT_FALSE(rate);
    EXPECT_EQ(rate.reason, AdmitDecision::Shed::kRateLimit);
    // The unlimited tenant passes its bucket but finds the queue full.
    r.tenant = "free";
    const AdmitDecision depth = queue.offer(r, 0);
    EXPECT_FALSE(depth);
    EXPECT_EQ(depth.reason, AdmitDecision::Shed::kCapacity);

    EXPECT_EQ(queue.stats().shed_ratelimit, 1u);
    EXPECT_EQ(queue.stats().rejected, 2u);
    EXPECT_EQ(queue.stats().admitted, 1u);
}

// ---- The noisy-neighbor guarantee ---------------------------------------

TEST(NoisyNeighborTest, HogIsThrottledAndVictimsKeepTheirTail)
{
    const ServeReport throttled = run_preset("noisy", "a100");

    // The hog is the only rate-limited tenant, and the preset drives it
    // hard past its allowance: its bucket must shed, nobody else's.
    const TenantCost *hog = nullptr;
    std::uint64_t other_ratelimit = 0;
    for (const TenantCost &t : throttled.cost.tenants) {
        if (t.tenant == "hog") {
            hog = &t;
        } else {
            other_ratelimit += t.total.shed_ratelimit;
        }
    }
    ASSERT_NE(hog, nullptr);
    EXPECT_GT(hog->total.shed_ratelimit, 0u);
    EXPECT_EQ(other_ratelimit, 0u);
    EXPECT_EQ(hog->total.shed_ratelimit,
              throttled.admission.shed_ratelimit);

    // Same traffic with the hog's bucket disabled: the victims' p99
    // under throttling must stay within tolerance of (in practice,
    // below) their tail when the hog runs unpoliced — the property that
    // makes rate limiting a protection, not just a penalty.
    ServeConfig unpoliced = serve_preset_by_name("noisy");
    for (TenantSpec &t : unpoliced.traffic.tenants) {
        t.rate_rps = 0;
    }
    Server server(unpoliced, sim::device_spec_by_name("a100"));
    const ServeReport open = server.run();
    EXPECT_EQ(open.admission.shed_ratelimit, 0u);
    for (const TenantCost &t : throttled.cost.tenants) {
        if (t.tenant == "hog" || t.latency.count == 0) {
            continue;
        }
        for (const TenantCost &u : open.cost.tenants) {
            if (u.tenant == t.tenant && u.latency.count > 0) {
                EXPECT_LE(t.latency.p99, u.latency.p99 * 1.5)
                    << t.tenant;
            }
        }
    }
}

// ---- Report document ----------------------------------------------------

TEST(CostReportJsonTest, SameSeedRunsAreByteIdentical)
{
    const CostRunInfo info{"noisy", "a100",
                           serve_preset_by_name("noisy").traffic.seed};
    // Pin the manifest: the document becomes a pure function of the run
    // (RunManifest::collect stamps wall-clock time).
    const prof::RunManifest manifest;
    std::string json[2];
    for (int i = 0; i < 2; ++i) {
        const ServeReport report = run_preset("noisy", "a100");
        json[i] = cost_report_json(
            report.cost, info, reconcile_cost(report.cost, report),
            manifest);
    }
    EXPECT_EQ(json[0], json[1]);

    const JsonValue doc = json_parse(json[0]);
    EXPECT_EQ(doc.at("schema").as_string(), "mgcost.report");
    EXPECT_TRUE(doc.at("conserved").as_bool());
    EXPECT_EQ(doc.at("tenants").array.size(), 4u);
}

// ---- Telemetry ----------------------------------------------------------

TEST(TelemetryRecorderTest, EmitsAStepFunctionOnTheGrid)
{
    TelemetryRecorder recorder({/*interval_us=*/10}, {"a"});
    TelemetrySample s1;
    s1.in_flight = 3;
    s1.queue_depth = {2};
    s1.bucket_fill = {0.5};
    // Grid points 0, 10, 20 elapse before the first transition and carry
    // the initial (empty) state.
    recorder.observe(25, s1);
    TelemetrySample s2 = s1;
    s2.in_flight = 1;
    recorder.observe(35, s2);  // t=30 carries s1.
    recorder.finish(50);       // t=40, 50 carry s2.

    const std::vector<TelemetrySample> &samples = recorder.samples();
    ASSERT_EQ(samples.size(), 6u);
    const double expected_t[] = {0, 10, 20, 30, 40, 50};
    const int expected_in_flight[] = {0, 0, 0, 3, 1, 1};
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(samples[i].t_us, expected_t[i]) << i;
        EXPECT_EQ(samples[i].in_flight, expected_in_flight[i]) << i;
    }
    EXPECT_EQ(samples[3].queue_depth[0], 2u);
    EXPECT_DOUBLE_EQ(samples[3].bucket_fill[0], 0.5);
}

TEST(TelemetryRecorderTest, CsvIsByteIdenticalAcrossSameSeedRuns)
{
    const ServeConfig config = serve_preset_by_name("noisy");
    std::string csv[2];
    for (int i = 0; i < 2; ++i) {
        TelemetryRecorder recorder({/*interval_us=*/50},
                                   tenant_names(config));
        run_preset("noisy", "a100", &recorder);
        EXPECT_FALSE(recorder.samples().empty());
        csv[i] = telemetry_csv(recorder);
    }
    EXPECT_EQ(csv[0], csv[1]);
    // Wide format: one queue-depth and one bucket-fill column per tenant.
    const std::string header = csv[0].substr(0, csv[0].find('\n'));
    EXPECT_EQ(header,
              "t_us,in_flight,round_hbm_bytes,"
              "queue_depth.alice,queue_depth.bob,queue_depth.carol,"
              "queue_depth.hog,"
              "bucket_fill.alice,bucket_fill.bob,bucket_fill.carol,"
              "bucket_fill.hog");
}

TEST(TelemetryRecorderTest, ObserverDoesNotPerturbTheRun)
{
    const ServeConfig config = serve_preset_by_name("noisy");
    TelemetryRecorder recorder({/*interval_us=*/25},
                               tenant_names(config));
    const ServeReport watched = run_preset("noisy", "a100", &recorder);
    const ServeReport bare = run_preset("noisy", "a100");
    EXPECT_DOUBLE_EQ(watched.busy_us, bare.busy_us);
    EXPECT_DOUBLE_EQ(watched.makespan_us, bare.makespan_us);
    EXPECT_EQ(watched.completed, bare.completed);
    EXPECT_EQ(watched.admission.shed_ratelimit,
              bare.admission.shed_ratelimit);
}

}  // namespace
}  // namespace multigrain::serve
