// Validates the Chrome/Perfetto trace exporter on a real simulated
// multi-stream program: the emitted document must be valid JSON, carry one
// named lane per stream, keep per-lane slice timestamps monotonic, and
// draw exactly the cross-stream flow arrows the join_streams() barriers
// imply.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "gpusim/device.h"
#include "gpusim/engine.h"
#include "gpusim/trace.h"

namespace multigrain::sim {
namespace {

KernelLaunch
make_kernel(const std::string &name, double cuda_flops, index_t tbs)
{
    KernelLaunch launch;
    launch.name = name;
    TbWork w;
    w.cuda_flops = cuda_flops;
    w.dram_read_bytes = 1 << 20;
    launch.add_tb(w, tbs);
    return launch;
}

/// Two-stream program with a barrier: a∥b, join, then c (waits for both).
SimResult
simulate_joined_program()
{
    GpuSim sim(DeviceSpec::a100());
    const int s1 = sim.create_stream();
    sim.launch(0, make_kernel("sddmm.coarse", 1e9, 256));
    sim.launch(s1, make_kernel("sddmm.fine", 2e9, 512));
    sim.join_streams();
    sim.launch(0, make_kernel("softmax.compound", 1e9, 256));
    return sim.run();
}

/// All events of a given "ph" type in document order.
std::vector<const JsonValue *>
events_of_type(const JsonValue &doc, const std::string &ph)
{
    std::vector<const JsonValue *> out;
    for (const JsonValue &e : doc.at("traceEvents").array) {
        if (e.at("ph").as_string() == ph) {
            out.push_back(&e);
        }
    }
    return out;
}

TEST(TraceTest, EmitsValidJson)
{
    const SimResult result = simulate_joined_program();
    const JsonValue doc = json_parse(chrome_trace_json(result));
    ASSERT_TRUE(doc.is_object());
    ASSERT_TRUE(doc.at("traceEvents").is_array());
    EXPECT_FALSE(doc.at("traceEvents").array.empty());
}

TEST(TraceTest, OneNamedLanePerStream)
{
    const SimResult result = simulate_joined_program();
    std::set<int> streams;
    for (const auto &k : result.kernels) {
        streams.insert(k.stream);
    }
    ASSERT_EQ(streams.size(), 2u);

    const JsonValue doc = json_parse(chrome_trace_json(result));
    std::map<int, std::string> lane_names;
    for (const JsonValue *e : events_of_type(doc, "M")) {
        ASSERT_EQ(e->at("name").as_string(), "thread_name");
        const int tid = static_cast<int>(e->at("tid").as_number());
        EXPECT_EQ(lane_names.count(tid), 0u) << "duplicate lane " << tid;
        lane_names[tid] = e->at("args").at("name").as_string();
    }
    for (const int s : streams) {
        ASSERT_EQ(lane_names.count(s), 1u);
        EXPECT_EQ(lane_names[s], "stream " + std::to_string(s));
    }
}

TEST(TraceTest, SliceTimestampsMonotonicPerLane)
{
    const SimResult result = simulate_joined_program();
    const JsonValue doc = json_parse(chrome_trace_json(result));
    std::map<int, double> last_ts;
    int slices = 0;
    for (const JsonValue *e : events_of_type(doc, "X")) {
        const int tid = static_cast<int>(e->at("tid").as_number());
        const double ts = e->at("ts").as_number();
        const double dur = e->at("dur").as_number();
        EXPECT_GE(ts, 0.0);
        EXPECT_GE(dur, 0.0);
        if (last_ts.count(tid)) {
            EXPECT_GE(ts, last_ts[tid])
                << "slices on lane " << tid << " not in time order";
        }
        last_ts[tid] = ts;
        ++slices;
    }
    EXPECT_EQ(slices, static_cast<int>(result.kernels.size()));
}

TEST(TraceTest, FlowEventsMatchCrossStreamJoins)
{
    const SimResult result = simulate_joined_program();

    // Ground truth from the engine: one edge per cross-stream dependency.
    int expected_edges = 0;
    for (const auto &k : result.kernels) {
        for (const int dep : k.deps) {
            if (result.kernels[static_cast<std::size_t>(dep)].stream !=
                k.stream) {
                ++expected_edges;
            }
        }
    }
    ASSERT_GT(expected_edges, 0) << "program must exercise a join";

    const JsonValue doc = json_parse(chrome_trace_json(result));
    const auto starts = events_of_type(doc, "s");
    const auto finishes = events_of_type(doc, "f");
    EXPECT_EQ(static_cast<int>(starts.size()), expected_edges);
    EXPECT_EQ(static_cast<int>(finishes.size()), expected_edges);

    // Every start pairs with exactly one finish by id, arrow pointing
    // forward in time and across lanes.
    std::map<int, const JsonValue *> finish_by_id;
    for (const JsonValue *f : finishes) {
        const int id = static_cast<int>(f->at("id").as_number());
        EXPECT_EQ(finish_by_id.count(id), 0u);
        finish_by_id[id] = f;
    }
    for (const JsonValue *s : starts) {
        EXPECT_EQ(s->at("cat").as_string(), "dep");
        const int id = static_cast<int>(s->at("id").as_number());
        ASSERT_EQ(finish_by_id.count(id), 1u);
        const JsonValue *f = finish_by_id[id];
        EXPECT_NE(s->at("tid").as_number(), f->at("tid").as_number());
        EXPECT_LE(s->at("ts").as_number(), f->at("ts").as_number());
    }
}

TEST(TraceTest, FlowsCanBeDisabled)
{
    const SimResult result = simulate_joined_program();
    TraceOptions options;
    options.flows = false;
    const JsonValue doc = json_parse(chrome_trace_json(result, options));
    EXPECT_TRUE(events_of_type(doc, "s").empty());
    EXPECT_TRUE(events_of_type(doc, "f").empty());
}

TEST(TraceTest, CounterTracksNeedDeviceAndStayInRange)
{
    const SimResult result = simulate_joined_program();

    // No device -> no counters.
    const JsonValue bare = json_parse(chrome_trace_json(result));
    EXPECT_TRUE(events_of_type(bare, "C").empty());

    const DeviceSpec device = DeviceSpec::a100();
    TraceOptions options;
    options.device = &device;
    const JsonValue doc = json_parse(chrome_trace_json(result, options));
    const auto counters = events_of_type(doc, "C");
    ASSERT_FALSE(counters.empty());
    double last_ts = 0;
    for (const JsonValue *c : counters) {
        const std::string &name = c->at("name").as_string();
        ASSERT_TRUE(name == "dram_util" || name == "resident_tbs") << name;
        EXPECT_GE(c->at("ts").as_number(), 0.0);
        last_ts = std::max(last_ts, c->at("ts").as_number());
        if (name == "dram_util") {
            const double util = c->at("args").at("util").as_number();
            EXPECT_GE(util, 0.0);
        }
    }
    // The tracks close with zero samples at the last boundary.
    EXPECT_GE(last_ts, result.total_us - 1e-9);
}

TEST(TraceTest, PhaseMarksLandOnTheirOwnLane)
{
    const SimResult result = simulate_joined_program();
    TraceOptions options;
    options.phases.push_back({"sddmm", 0.0, 10.0});
    options.phases.push_back({"softmax", 10.0, 25.0});
    const JsonValue doc = json_parse(chrome_trace_json(result, options));

    std::set<int> kernel_lanes;
    for (const auto &k : result.kernels) {
        kernel_lanes.insert(k.stream);
    }
    int marks = 0;
    int mark_lane = -1;
    for (const JsonValue *e : events_of_type(doc, "X")) {
        const int tid = static_cast<int>(e->at("tid").as_number());
        if (kernel_lanes.count(tid)) {
            continue;
        }
        mark_lane = tid;
        ++marks;
    }
    EXPECT_EQ(marks, 2);
    // The phases lane is announced like the stream lanes.
    bool lane_named = false;
    for (const JsonValue *e : events_of_type(doc, "M")) {
        if (static_cast<int>(e->at("tid").as_number()) == mark_lane) {
            lane_named = e->at("args").at("name").as_string() == "phases";
        }
    }
    EXPECT_TRUE(lane_named);
}

TEST(TraceTest, EmptyResultStillParses)
{
    const SimResult empty;
    const JsonValue doc = json_parse(chrome_trace_json(empty));
    EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

}  // namespace
}  // namespace multigrain::sim
