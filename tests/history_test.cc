// Tests for the mgperf history layer (profiler/history.h): manifest
// collection and round-trip, BenchRun (de)serialization, the JSONL
// corpus's append/load/corrupt-line tolerance, and the baseline
// directory I/O.

#include "profiler/history.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/gitinfo.h"
#include "profiler/export.h"

namespace multigrain::prof {
namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    TempDir()
    {
        dir_ = fs::temp_directory_path() /
               ("mg_history_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }
    std::string str() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

BenchRun
sample_run(const std::string &name)
{
    BenchRun run;
    run.name = name;
    run.manifest = RunManifest::collect("a100");
    BenchRow row;
    row.series = "fig7";
    row.labels.emplace_back("model", "Longformer-large");
    row.labels.emplace_back("mode", "multigrain");
    row.metrics.emplace_back("total_us", 1234.5);
    row.metrics.emplace_back("dram_bytes", 2.5e9);
    run.rows.push_back(row);
    return run;
}

TEST(GitInfoTest, EnvOverrideWins)
{
    ::setenv("MULTIGRAIN_GIT_SHA", "deadbeefcafe", 1);
    ::setenv("MULTIGRAIN_GIT_DIRTY", "1", 1);
    const GitInfo info = resolve_git_info();
    EXPECT_EQ(info.sha, "deadbeefcafe");
    EXPECT_TRUE(info.dirty);
    EXPECT_TRUE(info.known);
    ::setenv("MULTIGRAIN_GIT_DIRTY", "0", 1);
    EXPECT_FALSE(resolve_git_info().dirty);
    ::unsetenv("MULTIGRAIN_GIT_SHA");
    ::unsetenv("MULTIGRAIN_GIT_DIRTY");
}

TEST(GitInfoTest, NeverThrows)
{
    const GitInfo info = resolve_git_info();
    EXPECT_FALSE(info.sha.empty());  // Real sha or "unknown".
}

TEST(ManifestTest, CollectStampsSchemaVersionAndTimestamp)
{
    const RunManifest m = RunManifest::collect("rtx3090");
    EXPECT_EQ(m.device, "rtx3090");
    EXPECT_EQ(m.schema_version, kBenchSchemaVersion);
    // ISO-8601 Zulu: "YYYY-MM-DDTHH:MM:SSZ".
    ASSERT_EQ(m.timestamp.size(), 20u);
    EXPECT_EQ(m.timestamp[10], 'T');
    EXPECT_EQ(m.timestamp.back(), 'Z');
}

TEST(ManifestTest, JsonRoundTrip)
{
    RunManifest m;
    m.git_sha = "abc123";
    m.git_dirty = true;
    m.device = "a100";
    m.schema_version = 2;
    m.timestamp = "2026-08-06T00:00:00Z";
    std::ostringstream os;
    {
        JsonWriter w(os);
        write_manifest(w, m);
    }
    const RunManifest back = manifest_from_json(json_parse(os.str()));
    EXPECT_EQ(back.git_sha, "abc123");
    EXPECT_TRUE(back.git_dirty);
    EXPECT_EQ(back.device, "a100");
    EXPECT_EQ(back.schema_version, 2);
    EXPECT_EQ(back.timestamp, "2026-08-06T00:00:00Z");
}

TEST(BenchRowTest, KeyIsLabelOrderIndependent)
{
    BenchRow a;
    a.series = "fig7";
    a.labels.emplace_back("model", "qds");
    a.labels.emplace_back("mode", "dense");
    BenchRow b;
    b.series = "fig7";
    b.labels.emplace_back("mode", "dense");
    b.labels.emplace_back("model", "qds");
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.key(), "fig7|mode=dense|model=qds");

    BenchRow c = a;
    c.series = "fig8";
    EXPECT_NE(a.key(), c.key());
}

TEST(BenchRunTest, JsonRoundTrip)
{
    const BenchRun run = sample_run("fig7@a100");
    const BenchRun back = bench_run_from_json(run.to_json());
    EXPECT_EQ(back.name, "fig7@a100");
    EXPECT_EQ(back.manifest.git_sha, run.manifest.git_sha);
    EXPECT_EQ(back.manifest.device, "a100");
    ASSERT_EQ(back.rows.size(), 1u);
    EXPECT_EQ(back.rows[0].key(), run.rows[0].key());
    ASSERT_NE(back.rows[0].find_metric("total_us"), nullptr);
    EXPECT_DOUBLE_EQ(*back.rows[0].find_metric("total_us"), 1234.5);
    EXPECT_EQ(back.rows[0].find_metric("absent"), nullptr);
}

TEST(BenchRunTest, ReadsV1DocumentWithoutManifest)
{
    const std::string v1 =
        R"({"schema":"mgprof.bench","schema_version":1,"name":"old",)"
        R"("rows":[{"series":"s","device":"A100","total_us":7.5}]})";
    const BenchRun run = bench_run_from_json(v1);
    EXPECT_EQ(run.name, "old");
    EXPECT_EQ(run.manifest.git_sha, "unknown");
    EXPECT_EQ(run.manifest.schema_version, 1);
    ASSERT_EQ(run.rows.size(), 1u);
    // Strings classify as labels, numbers as metrics.
    EXPECT_EQ(run.rows[0].key(), "s|device=A100");
    ASSERT_NE(run.rows[0].find_metric("total_us"), nullptr);
}

TEST(BenchRunTest, RejectsWrongSchema)
{
    EXPECT_THROW(
        bench_run_from_json(
            R"({"schema":"mgprof.profile","name":"x","rows":[]})"),
        Error);
    EXPECT_THROW(bench_run_from_json("[1,2,3]"), Error);
}

TEST(HistoryTest, AppendLoadRoundTrip)
{
    TempDir dir;
    const std::string path = dir.path("bench_history.jsonl");
    append_history(path, sample_run("fig7@a100"));
    append_history(path, sample_run("fig9@a100"));

    const HistoryLoad load = load_history(path);
    EXPECT_EQ(load.corrupt_lines, 0);
    ASSERT_EQ(load.runs.size(), 2u);
    EXPECT_EQ(load.runs[0].name, "fig7@a100");
    EXPECT_EQ(load.runs[1].name, "fig9@a100");
}

TEST(HistoryTest, MissingFileIsEmptyHistory)
{
    const HistoryLoad load = load_history("/nonexistent/history.jsonl");
    EXPECT_TRUE(load.runs.empty());
    EXPECT_EQ(load.corrupt_lines, 0);
}

TEST(HistoryTest, ToleratesCorruptLines)
{
    TempDir dir;
    const std::string path = dir.path("bench_history.jsonl");
    append_history(path, sample_run("a"));
    {
        std::ofstream file(path, std::ios::app);
        file << "{\"schema\":\"mgprof.bench\",\"name\":\"trunc\n";
        file << "\n";  // Blank lines are skipped silently.
        file << "not json at all\n";
    }
    append_history(path, sample_run("b"));

    const HistoryLoad load = load_history(path);
    EXPECT_EQ(load.corrupt_lines, 2);
    ASSERT_EQ(load.runs.size(), 2u);
    EXPECT_EQ(load.runs[0].name, "a");
    EXPECT_EQ(load.runs[1].name, "b");
}

TEST(BaselineTest, WriteAndLoadDirectory)
{
    TempDir dir;
    const std::string baselines = dir.path("baselines");
    write_baseline(baselines, sample_run("fig9@rtx3090"));
    write_baseline(baselines, sample_run("fig7@a100"));

    const std::vector<BenchRun> loaded = load_baseline_dir(baselines);
    ASSERT_EQ(loaded.size(), 2u);
    // Sorted by file name.
    EXPECT_EQ(loaded[0].name, "fig7@a100");
    EXPECT_EQ(loaded[1].name, "fig9@rtx3090");
}

TEST(BaselineTest, MissingDirectoryIsEmpty)
{
    EXPECT_TRUE(load_baseline_dir("/nonexistent/baselines").empty());
}

TEST(BaselineTest, CorruptBaselineThrows)
{
    TempDir dir;
    const std::string baselines = dir.path("baselines");
    fs::create_directories(baselines);
    {
        std::ofstream file(baselines + "/bad.json");
        file << "{broken";
    }
    EXPECT_THROW(load_baseline_dir(baselines), Error);
}

}  // namespace
}  // namespace multigrain::prof
