// Property-based tests: randomized compound patterns drive the invariants
// that must hold for *every* input — partition exactness, method
// equivalence, softmax normalization, simulator conservation — swept over
// seeds with parameterized gtest.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/attention.h"
#include "formats/convert.h"
#include "gpusim/device.h"
#include "kernels/compound_softmax.h"
#include "kernels/cost_model.h"
#include "kernels/reference.h"
#include "patterns/slice.h"

namespace multigrain {
namespace {

/// Draws a random compound pattern: 1-4 atoms of random kinds/parameters.
CompoundPattern
random_pattern(Rng &rng, index_t seq)
{
    CompoundPattern p;
    p.seq_len = seq;
    const int atoms = static_cast<int>(rng.next_range(1, 4));
    for (int i = 0; i < atoms; ++i) {
        switch (rng.next_range(0, 7)) {
          case 0:
            p.atoms.push_back(
                AtomicPattern::local(rng.next_range(0, seq / 8)));
            break;
          case 1:
            p.atoms.push_back(AtomicPattern::dilated(
                rng.next_range(1, 4), rng.next_range(2, 5)));
            break;
          case 2: {
            std::vector<index_t> tokens;
            const index_t count = rng.next_range(1, 6);
            for (index_t t = 0; t < count; ++t) {
                tokens.push_back(rng.next_range(0, seq - 1));
            }
            p.atoms.push_back(AtomicPattern::global(tokens));
            break;
          }
          case 3: {
            std::vector<index_t> tokens;
            const index_t count = rng.next_range(1, 8);
            for (index_t t = 0; t < count; ++t) {
                tokens.push_back(rng.next_range(0, seq - 1));
            }
            p.atoms.push_back(AtomicPattern::selected(tokens));
            break;
          }
          case 4:
            p.atoms.push_back(AtomicPattern::random(
                rng.next_range(1, 8), rng.next_u64()));
            break;
          case 5:
            p.atoms.push_back(AtomicPattern::blocked_local(
                16, rng.next_range(0, 2)));
            break;
          case 6:
            p.atoms.push_back(AtomicPattern::blocked_random(
                16, rng.next_range(1, 3), rng.next_u64()));
            break;
          default:
            p.atoms.push_back(AtomicPattern::clustered_random(
                16, rng.next_range(1, 3), rng.next_range(2, 10),
                rng.next_u64()));
            break;
        }
    }
    // Sometimes add zero padding.
    if (rng.next_float() < 0.3f) {
        p.valid_len = rng.next_range(seq / 2, seq);
    }
    return p;
}

class PatternPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PatternPropertyTest, PartitionIsExactForAllModes)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const CompoundPattern p = random_pattern(rng, 96);
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        SliceOptions options;
        options.block = 16;
        options.mode = mode;
        const SlicePlan plan = slice_and_dice(p, options);
        ASSERT_NO_THROW(plan.validate_partition())
            << p.describe() << " mode " << to_string(mode);
    }
}

TEST_P(PatternPropertyTest, MethodsMatchDenseReference)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    const index_t seq = 64;
    const CompoundPattern p = random_pattern(rng, seq);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    AttentionConfig config;
    config.head_dim = 16;
    config.block = 16;

    const AttentionEngine mg(p, config, SliceMode::kMultigrain);
    if (mg.plan().full->nnz() == 0) {
        return;  // Degenerate (all padding) pattern: nothing to compare.
    }
    const DoubleMatrix ref = kernels::ref_attention(
        q, k, v, *mg.plan().full, config.effective_scale());
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        const AttentionEngine engine(p, config, mode);
        const HalfMatrix out = engine.run(q, k, v);
        EXPECT_LT(kernels::max_abs_diff(widen(out), ref), 0.03)
            << p.describe() << " mode " << to_string(mode);
    }
}

TEST_P(PatternPropertyTest, SoftmaxRowsNormalizedInAllParts)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 29);
    const index_t seq = 80;
    const CompoundPattern p = random_pattern(rng, seq);
    const SlicePlan plan = slice_and_dice(p, {.block = 16});
    if (plan.full->nnz() == 0) {
        return;
    }

    HalfMatrix s_dense(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        for (index_t j = plan.full->row_offsets[static_cast<std::size_t>(r)];
             j < plan.full->row_offsets[static_cast<std::size_t>(r + 1)];
             ++j) {
            s_dense.at(
                r, plan.full->col_indices[static_cast<std::size_t>(j)]) =
                half(rng.next_float(-3.0f, 3.0f));
        }
    }
    BsrMatrix coarse;
    CsrMatrix fine;
    if (plan.has_coarse()) {
        coarse = gather_bsr(s_dense, plan.coarse);
    }
    if (plan.has_fine()) {
        fine = gather_csr(s_dense, plan.fine);
    }
    if (!plan.has_coarse() && !plan.has_fine()) {
        return;  // Pure-global pattern.
    }
    kernels::compound_softmax(plan.has_coarse() ? &coarse : nullptr,
                              plan.has_fine() ? &fine : nullptr, 0.7);

    const HalfMatrix cd = plan.has_coarse()
                              ? dense_from_bsr(coarse)
                              : HalfMatrix(seq, seq, half(0.0f));
    const HalfMatrix fd = plan.has_fine()
                              ? dense_from_csr(fine)
                              : HalfMatrix(seq, seq, half(0.0f));
    for (index_t r = 0; r < seq; ++r) {
        const bool is_global = std::binary_search(
            plan.global_rows.begin(), plan.global_rows.end(), r);
        if (is_global) {
            continue;  // Handled by the dense softmax elsewhere.
        }
        double sum = 0;
        index_t elems = 0;
        for (index_t c = 0; c < seq; ++c) {
            sum += float(cd.at(r, c)) + float(fd.at(r, c));
        }
        elems = plan.full->row_nnz(r);
        if (elems > 0) {
            EXPECT_NEAR(sum, 1.0, 0.02) << "row " << r << " of "
                                        << p.describe();
        } else {
            EXPECT_NEAR(sum, 0.0, 1e-6) << "row " << r;
        }
    }
}

TEST_P(PatternPropertyTest, SimulatedWorkMatchesLayoutFootprint)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 41);
    const CompoundPattern p = random_pattern(rng, 128);
    AttentionConfig config;
    config.head_dim = 16;
    config.block = 16;
    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    if (engine.plan().full->nnz() == 0) {
        return;
    }
    const sim::SimResult r = engine.simulate(sim::DeviceSpec::a100());
    // Work conservation at the plan level: SDDMM tensor flops cover the
    // coarse stored blocks exactly.
    if (engine.plan().has_coarse()) {
        const double expected =
            static_cast<double>(engine.plan().coarse->nnz_blocks()) * 2.0 *
            16 * 16 * 16;
        const auto *k = r.find("sddmm.coarse");
        ASSERT_NE(k, nullptr);
        EXPECT_NEAR(k->work.tensor_flops, expected, 1.0);
    }
    if (engine.plan().has_fine()) {
        const auto *k = r.find("sddmm.fine");
        ASSERT_NE(k, nullptr);
        const double expected =
            static_cast<double>(engine.plan().fine->nnz()) *
            (2.0 * 16 * kernels::kFineGatherOverhead + 2.0);
        EXPECT_NEAR(k->work.cuda_flops, expected, 1.0);
    }
    EXPECT_GT(r.total_us, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest,
                         ::testing::Range(0, 25));

TEST_P(PatternPropertyTest, BackwardMatchesAnalyticReference)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 5);
    const index_t seq = 48;
    CompoundPattern p = random_pattern(rng, seq);
    const HalfMatrix q = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    const HalfMatrix d_out = random_half_matrix(rng, seq, 16, -0.5f, 0.5f);
    AttentionConfig config;
    config.head_dim = 16;
    config.block = 16;

    const AttentionEngine engine(p, config, SliceMode::kMultigrain);
    if (engine.plan().full->nnz() == 0) {
        return;
    }
    const AttentionEngine::Grads grads =
        engine.run_backward(q, k, v, d_out);
    const kernels::RefAttentionGrads ref = kernels::ref_attention_backward(
        q, k, v, *engine.plan().full, config.effective_scale(),
        widen(d_out));
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dq), ref.dq), 0.08)
        << "dq " << p.describe();
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dk), ref.dk), 0.08)
        << "dk " << p.describe();
    EXPECT_LT(kernels::max_abs_diff(widen(grads.dv), ref.dv), 0.08)
        << "dv " << p.describe();
}

// ------------------------------------------------- engine stress sweeps ----

class EngineStressTest : public ::testing::TestWithParam<int> {};

/// Random mixes of kernels across random streams with occasional joins:
/// the engine must stay deterministic, conserve work, and respect
/// stream/join ordering for every program shape.
TEST_P(EngineStressTest, RandomProgramsAreDeterministicAndOrdered)
{
    const auto build = [&](sim::SimResult *out) {
        Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 7);
        sim::GpuSim sim(sim::DeviceSpec::a100());
        std::vector<int> streams = {0};
        for (int s = 0; s < 3; ++s) {
            streams.push_back(sim.create_stream());
        }
        const int kernels = static_cast<int>(rng.next_range(3, 12));
        double expected_flops = 0;
        for (int k = 0; k < kernels; ++k) {
            sim::KernelLaunch launch;
            launch.name = "k" + std::to_string(k);
            launch.shape.threads =
                static_cast<int>(rng.next_range(1, 8)) * 64;
            launch.shape.smem_bytes =
                static_cast<int>(rng.next_range(0, 48)) * 1024;
            launch.shape.regs_per_thread =
                static_cast<int>(rng.next_range(16, 128));
            const index_t groups = rng.next_range(1, 4);
            for (index_t g = 0; g < groups; ++g) {
                sim::TbWork w;
                w.tensor_flops = rng.next_float() < 0.5f
                                     ? rng.next_float(0, 4e6)
                                     : 0.0;
                w.cuda_flops = rng.next_float(0, 2e6);
                w.dram_read_bytes = rng.next_float(0, 1e5);
                w.dram_write_bytes = rng.next_float(0, 5e4);
                w.l2_bytes = rng.next_float(0, 2e5);
                const index_t count = rng.next_range(1, 200);
                launch.add_tb(w, count);
                expected_flops +=
                    (w.tensor_flops + w.cuda_flops) *
                    static_cast<double>(count);
            }
            sim.launch(
                streams[static_cast<std::size_t>(rng.next_range(0, 3))],
                std::move(launch));
            if (rng.next_float() < 0.25f) {
                sim.join_streams();
            }
        }
        *out = sim.run();
        return expected_flops;
    };

    sim::SimResult r1, r2;
    const double flops = build(&r1);
    build(&r2);

    // Deterministic.
    ASSERT_EQ(r1.kernels.size(), r2.kernels.size());
    EXPECT_DOUBLE_EQ(r1.total_us, r2.total_us);
    for (std::size_t i = 0; i < r1.kernels.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.kernels[i].start_us, r2.kernels[i].start_us);
        EXPECT_DOUBLE_EQ(r1.kernels[i].end_us, r2.kernels[i].end_us);
    }
    // Work conserved.
    EXPECT_NEAR(r1.work.tensor_flops + r1.work.cuda_flops, flops,
                1e-6 * flops + 1e-9);
    // Same-stream kernels never overlap.
    for (std::size_t i = 0; i < r1.kernels.size(); ++i) {
        for (std::size_t j = i + 1; j < r1.kernels.size(); ++j) {
            if (r1.kernels[i].stream == r1.kernels[j].stream) {
                EXPECT_GE(r1.kernels[j].start_us + 1e-9,
                          r1.kernels[i].end_us)
                    << r1.kernels[i].name << " vs " << r1.kernels[j].name;
            }
        }
    }
    // Every kernel has a sane span.
    for (const auto &k : r1.kernels) {
        EXPECT_GE(k.end_us, k.start_us);
        EXPECT_GE(k.start_us, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, EngineStressTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace multigrain
