// PlanCache unit tests (LRU behavior, statistics) plus the cache-key
// ingredients: CompoundPattern::fingerprint() stability and
// device_plan_key() sensitivity. The end-to-end test pins the headline
// behavior: running the same workload twice serves the second run's plans
// entirely from the cache.

#include <memory>
#include <string>
#include <typeindex>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/attention.h"
#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "patterns/pattern.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

std::shared_ptr<const std::string>
value(const std::string &text)
{
    return std::make_shared<const std::string>(text);
}

TEST(PlanCacheTest, HitOnIdenticalKeyMissOnUnknown)
{
    PlanCache cache(4);
    EXPECT_EQ(cache.lookup("a", typeid(std::string)), nullptr);
    cache.insert("a", value("va"), typeid(std::string));
    const auto hit = cache.lookup("a", typeid(std::string));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*std::static_pointer_cast<const std::string>(hit), "va");

    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.capacity, 4u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PlanCacheTest, GetOrBuildBuildsOnceThenServesCached)
{
    PlanCache cache(4);
    int builds = 0;
    const auto build = [&] {
        ++builds;
        return std::make_shared<const std::string>("built");
    };
    const auto first = cache.get_or_build<std::string>("k", build);
    const auto second = cache.get_or_build<std::string>("k", build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCacheTest, BoundedCapacityEvictsLeastRecentlyUsed)
{
    PlanCache cache(2);
    cache.insert("a", value("va"), typeid(std::string));
    cache.insert("b", value("vb"), typeid(std::string));
    // Touch "a" so "b" becomes the LRU entry.
    EXPECT_NE(cache.lookup("a", typeid(std::string)), nullptr);
    cache.insert("c", value("vc"), typeid(std::string));

    EXPECT_EQ(cache.lookup("b", typeid(std::string)), nullptr);
    EXPECT_NE(cache.lookup("a", typeid(std::string)), nullptr);
    EXPECT_NE(cache.lookup("c", typeid(std::string)), nullptr);
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheTest, EvictedEntryStaysAliveThroughSharedPtr)
{
    PlanCache cache(1);
    const auto held = value("keep");
    cache.insert("a", held, typeid(std::string));
    cache.insert("b", value("vb"), typeid(std::string));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(*held, "keep");  // Eviction never invalidates live users.
}

TEST(PlanCacheTest, ShrinkingCapacityEvicts)
{
    PlanCache cache(4);
    cache.insert("a", value("va"), typeid(std::string));
    cache.insert("b", value("vb"), typeid(std::string));
    cache.insert("c", value("vc"), typeid(std::string));
    cache.set_capacity(1);
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 2u);
    // The most recently used entry survives.
    EXPECT_NE(cache.lookup("c", typeid(std::string)), nullptr);
}

TEST(PlanCacheTest, ClearResetsEntriesAndCounters)
{
    PlanCache cache(4);
    cache.insert("a", value("va"), typeid(std::string));
    cache.lookup("a", typeid(std::string));
    cache.clear();
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(PlanCacheTest, TypeMismatchOnSharedKeyIsAnError)
{
    PlanCache cache(4);
    cache.insert("a", value("va"), typeid(std::string));
    EXPECT_THROW(cache.lookup("a", typeid(int)), Error);
}

TEST(PlanCacheMetricsTest, RegistryCoversTheStats)
{
    PlanCacheStats stats;
    stats.hits = 3;
    stats.misses = 1;
    stats.evictions = 2;
    stats.entries = 5;
    stats.capacity = 8;
    std::vector<std::string> keys;
    for (const PlanCacheMetricDef &metric : plan_cache_metric_registry()) {
        keys.push_back(metric.key);
        if (std::string(metric.key) == "plan_cache.hits") {
            EXPECT_DOUBLE_EQ(metric.get(stats), 3.0);
        }
        if (std::string(metric.key) == "plan_cache.hit_rate") {
            EXPECT_DOUBLE_EQ(metric.get(stats), 0.75);
        }
    }
    EXPECT_NE(std::find(keys.begin(), keys.end(), "plan_cache.misses"),
              keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "plan_cache.evictions"),
              keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "plan_cache.capacity"),
              keys.end());
}

// ---------------------------------------------------------------------------
// Cache-key ingredients.

CompoundPattern
sample_pattern()
{
    CompoundPattern p;
    p.seq_len = 128;
    p.atoms.push_back(AtomicPattern::local(4));
    p.atoms.push_back(AtomicPattern::global({1, 40}));
    p.atoms.push_back(AtomicPattern::random(3, 21));
    return p;
}

TEST(FingerprintTest, StableAcrossIdenticalPatterns)
{
    EXPECT_EQ(sample_pattern().fingerprint(),
              sample_pattern().fingerprint());
}

TEST(FingerprintTest, SensitiveToEveryDeterminingField)
{
    const std::uint64_t base = sample_pattern().fingerprint();

    CompoundPattern p = sample_pattern();
    p.seq_len = 256;
    EXPECT_NE(p.fingerprint(), base);

    p = sample_pattern();
    p.valid_len = 100;
    EXPECT_NE(p.fingerprint(), base);

    p = sample_pattern();
    p.atoms[0] = AtomicPattern::local(5);
    EXPECT_NE(p.fingerprint(), base);

    p = sample_pattern();
    p.atoms[2] = AtomicPattern::random(3, 22);  // Same shape, other seed.
    EXPECT_NE(p.fingerprint(), base);

    p = sample_pattern();
    p.atoms.pop_back();
    EXPECT_NE(p.fingerprint(), base);
}

TEST(DevicePlanKeyTest, DistinguishesDevicesAndConstants)
{
    const sim::DeviceSpec a100 = sim::DeviceSpec::a100();
    EXPECT_EQ(device_plan_key(a100), device_plan_key(sim::DeviceSpec::a100()));
    EXPECT_NE(device_plan_key(a100),
              device_plan_key(sim::DeviceSpec::rtx3090()));

    sim::DeviceSpec tweaked = a100;
    tweaked.dram_gbps *= 2;
    EXPECT_NE(device_plan_key(a100), device_plan_key(tweaked));
}

// ---------------------------------------------------------------------------
// Engine + runner integration.

AttentionConfig
engine_config()
{
    AttentionConfig c;
    c.head_dim = 16;
    c.block = 16;
    return c;
}

TEST(PlanCacheIntegrationTest, IdenticalEnginesShareMetadataAndGraphs)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();

    const AttentionEngine first(sample_pattern(), engine_config(),
                                SliceMode::kMultigrain);
    const PlanCacheStats after_first = cache.stats();
    EXPECT_EQ(after_first.hits, 0u);
    EXPECT_GT(after_first.misses, 0u);

    const AttentionEngine second(sample_pattern(), engine_config(),
                                 SliceMode::kMultigrain);
    const PlanCacheStats after_second = cache.stats();
    EXPECT_EQ(after_second.hits, after_first.hits + 1);
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(first.plan_key(), second.plan_key());

    // Same plan key + device -> the same captured graph object.
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    const auto g1 = first.forward_graphs(device);
    const auto g2 = second.forward_graphs(device);
    EXPECT_EQ(g1.get(), g2.get());
}

TEST(PlanCacheIntegrationTest, MissOnChangedBlockSizeOrDevice)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();

    const AttentionEngine base(sample_pattern(), engine_config(),
                               SliceMode::kMultigrain);
    AttentionConfig bigger = engine_config();
    bigger.block = 32;
    const AttentionEngine other(sample_pattern(), bigger,
                                SliceMode::kMultigrain);
    EXPECT_NE(base.plan_key(), other.plan_key());
    // Both constructions were misses: different block -> different key.
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);

    // Same engine, different device -> separate graph entries.
    const auto on_a100 = base.forward_graphs(sim::DeviceSpec::a100());
    const auto on_3090 = base.forward_graphs(sim::DeviceSpec::rtx3090());
    EXPECT_NE(on_a100.get(), on_3090.get());
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCacheIntegrationTest, SecondRunOfSameWorkloadServedFromCache)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();

    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(2022);
    const WorkloadSample sample = sample_for_model(rng, model);
    const sim::DeviceSpec device = sim::DeviceSpec::a100();

    const TransformerRunner first(model, SliceMode::kMultigrain, sample, 1);
    const EndToEndResult r1 = first.simulate(device);
    const PlanCacheStats cold = cache.stats();
    EXPECT_GT(cold.misses, 0u);

    const TransformerRunner second(model, SliceMode::kMultigrain, sample,
                                   1);
    const EndToEndResult r2 = second.simulate(device);
    const PlanCacheStats warm = cache.stats();

    // The second step re-derived nothing: every lookup hit.
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_GT(warm.hits, cold.hits);
    EXPECT_GT(warm.hit_rate(), 0.0);

    // And replay is deterministic: both runs simulate identically.
    EXPECT_EQ(r1.sim.total_us, r2.sim.total_us);
    ASSERT_EQ(r1.sim.kernels.size(), r2.sim.kernels.size());
    for (std::size_t i = 0; i < r1.sim.kernels.size(); ++i) {
        EXPECT_EQ(r1.sim.kernels[i].name, r2.sim.kernels[i].name);
        EXPECT_EQ(r1.sim.kernels[i].stream, r2.sim.kernels[i].stream);
        EXPECT_EQ(r1.sim.kernels[i].end_us, r2.sim.kernels[i].end_us);
    }
}

}  // namespace
}  // namespace multigrain
