// Static memory planner tests. The load-bearing pair of properties:
//
//  * Safety: two pooled buffers share arena bytes only when every use of
//    one happens-before every use of the other — validated independently
//    of the allocator, and a seeded aliasing perturbation is caught.
//  * Usefulness: the composed plans the runner actually ships (inference
//    and backward layer graphs) genuinely pool — peak_hbm_bytes comes out
//    strictly below the naive sum — because the %s.* score fragments die
//    into the SpMMs before the FFN intermediates are born.
//
// Plus unit coverage for buffer classification (shared / input / pooled),
// accumulation chains, liveness across join_streams(), zero-sized
// buffers, namespace behavior under append, determinism, and the
// PlanCache integration.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/attention.h"
#include "core/launch_graph.h"
#include "core/memplan.h"
#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "patterns/slice.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

namespace multigrain {
namespace {

sim::KernelLaunch
toy_launch(const std::string &name)
{
    sim::KernelLaunch launch;
    launch.name = name;
    sim::TbWork work;
    work.cuda_flops = 1024;
    work.dram_read_bytes = 1024;
    launch.add_tb(work, 4);
    return launch;
}

const MemPlanBuffer &
find_buffer(const MemPlan &plan, const std::string &name)
{
    for (const MemPlanBuffer &buf : plan.buffers) {
        if (buf.name == name) {
            return buf;
        }
    }
    throw Error("no buffer named " + name + " in plan");
}

bool
overlaps(const MemPlanBuffer &a, const MemPlanBuffer &b)
{
    return a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
}

// ---------------------------------------------------------------------------
// Classification.

TEST(MemPlanClassify, SharedInputAndPooled)
{
    LaunchGraph graph;
    // shared "mp.x" read; "%mp.in" read-first (inbound state);
    // "%mp.tmp" write-first (born here).
    graph.launch(0, sim::annotate(toy_launch("k1"),
                                  {{"mp.x", 1024}, {"%mp.in", 2048}},
                                  {{"%mp.tmp", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k2"), {{"%mp.tmp", 4096}},
                                  {{"mp.x", 1024}}));
    const MemPlan plan = plan_memory(graph);

    EXPECT_EQ(find_buffer(plan, "mp.x").cls, BufferClass::kShared);
    EXPECT_EQ(find_buffer(plan, "%mp.in").cls, BufferClass::kInput);
    EXPECT_EQ(find_buffer(plan, "%mp.tmp").cls, BufferClass::kPooled);

    EXPECT_EQ(plan.external_bytes, 1024u + 2048u);
    EXPECT_EQ(plan.pooled_request_bytes, 4096u);
    EXPECT_EQ(plan.arena_bytes, 4096u);
    EXPECT_EQ(plan.naive_hbm_bytes(), 1024u + 2048u + 4096u);
    EXPECT_EQ(plan.peak_hbm_bytes(), plan.naive_hbm_bytes());
    validate_memplan(graph, plan);
}

TEST(MemPlanClassify, AccumFirstUseIsInput)
{
    // Accumulating into a buffer observes its prior contents (zero-fill
    // or an inbound partial), so accum-first classifies like read-first.
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {}, {},
                                  {{"%mp.acc", 512}}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_EQ(find_buffer(plan, "%mp.acc").cls, BufferClass::kInput);
}

TEST(MemPlanClassify, InPlaceFirstUseIsInput)
{
    // A kernel that reads and writes the buffer in place (softmax style)
    // as its first use observes inbound contents.
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {{"%mp.io", 512}},
                                  {{"%mp.io", 512}}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_EQ(find_buffer(plan, "%mp.io").cls, BufferClass::kInput);
}

TEST(MemPlanClassify, BytesAreMaxAcrossUses)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {},
                                  {{"%mp.grow", 100}}));
    graph.launch(0, sim::annotate(toy_launch("k2"), {{"%mp.grow", 300}},
                                  {}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_EQ(find_buffer(plan, "%mp.grow").bytes, 300u);
}

// ---------------------------------------------------------------------------
// Live ranges and pooling.

TEST(MemPlanLiveness, SequentialBuffersShareOneSlot)
{
    // %mp.a dies into k2 strictly before %mp.b is born at k3: same
    // stream orders them, so both land at offset 0. (Note k2 writing
    // %mp.b directly would keep both live at k2 — draining and birthing
    // in one kernel overlaps the ranges.)
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {}, {{"%mp.a", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k2"), {{"%mp.a", 4096}},
                                  {{"mp.mid", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k3"), {{"mp.mid", 4096}},
                                  {{"%mp.b", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k4"), {{"%mp.b", 4096}},
                                  {{"mp.out", 4096}}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_EQ(find_buffer(plan, "%mp.a").offset, 0u);
    EXPECT_EQ(find_buffer(plan, "%mp.b").offset, 0u);
    EXPECT_EQ(plan.arena_bytes, 4096u);
    EXPECT_EQ(plan.pooled_request_bytes, 8192u);
    EXPECT_LT(plan.peak_hbm_bytes(), plan.naive_hbm_bytes());
    validate_memplan(graph, plan);
}

TEST(MemPlanLiveness, AccumChainSharesOneSlotAndReusesAfterDrain)
{
    // The SpMM shape: an init write, three parallel streams accumulating
    // into the same plan-local target, a join, then a consumer — one
    // buffer, one slot. A later intermediate born after the drain reuses
    // that slot.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    const int s2 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("init"), {},
                                  {{"%mp.o", 8192}}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("spmm.coarse"), {}, {},
                                  {{"%mp.o", 8192}}));
    graph.launch(s1, sim::annotate(toy_launch("spmm.fine"), {}, {},
                                   {{"%mp.o", 8192}}));
    graph.launch(s2, sim::annotate(toy_launch("spmm.special"), {}, {},
                                   {{"%mp.o", 8192}}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("drain"), {{"%mp.o", 8192}},
                                  {{"%mp.late", 8192}}));
    graph.launch(0, sim::annotate(toy_launch("sink"), {{"%mp.late", 8192}},
                                  {{"mp.out", 8192}}));
    const MemPlan plan = plan_memory(graph);

    const MemPlanBuffer &o = find_buffer(plan, "%mp.o");
    EXPECT_EQ(o.cls, BufferClass::kPooled);
    EXPECT_EQ(o.uses.size(), 5u);  // init + 3 accums + drain: one buffer.
    // %mp.late is born by the very node that last reads %mp.o, so their
    // live ranges overlap at the drain: distinct arena spans.
    EXPECT_FALSE(overlaps(o, find_buffer(plan, "%mp.late")));
    EXPECT_NE(o.offset, find_buffer(plan, "%mp.late").offset);
    EXPECT_EQ(plan.arena_bytes, 2u * 8192u);
    validate_memplan(graph, plan);
}

TEST(MemPlanLiveness, BufferLiveAcrossJoinBlocksReuse)
{
    // %mp.a's uses straddle a join_streams() barrier: %mp.b, born between
    // them, must not reuse its bytes — but %mp.c, born after %mp.a's last
    // read, must.
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {}, {{"%mp.a", 4096}}));
    graph.join_streams();
    graph.launch(0, sim::annotate(toy_launch("k2"), {}, {{"%mp.b", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k3"),
                                  {{"%mp.a", 4096}, {"%mp.b", 4096}},
                                  {{"%mp.c", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k4"), {{"%mp.c", 4096}},
                                  {{"mp.out", 4096}}));
    const MemPlan plan = plan_memory(graph);

    const MemPlanBuffer &a = find_buffer(plan, "%mp.a");
    const MemPlanBuffer &b = find_buffer(plan, "%mp.b");
    const MemPlanBuffer &c = find_buffer(plan, "%mp.c");
    EXPECT_FALSE(overlaps(a, b));
    EXPECT_FALSE(overlaps(b, c));  // k3 uses both: live simultaneously
    EXPECT_FALSE(overlaps(a, c));  // k3 reads a and writes c
    EXPECT_EQ(plan.arena_bytes, 3u * 4096u);
    validate_memplan(graph, plan);
}

TEST(MemPlanLiveness, UnorderedStreamsNeverPool)
{
    // Two streams with no join: their intermediates can be in flight
    // simultaneously under some legal schedule, so no reuse.
    LaunchGraph graph;
    const int s1 = graph.create_stream();
    graph.launch(0, sim::annotate(toy_launch("k1"), {}, {{"%mp.a", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k2"), {{"%mp.a", 4096}},
                                  {{"mp.out", 4096}}));
    graph.launch(s1, sim::annotate(toy_launch("k3"), {},
                                   {{"%mp.z", 4096}}));
    graph.launch(s1, sim::annotate(toy_launch("k4"), {{"%mp.z", 4096}},
                                   {{"mp.out2", 4096}}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_FALSE(overlaps(find_buffer(plan, "%mp.a"),
                          find_buffer(plan, "%mp.z")));
    EXPECT_EQ(plan.arena_bytes, 2u * 4096u);
    validate_memplan(graph, plan);
}

TEST(MemPlanLiveness, ZeroSizedBuffersTrackLivenessWithoutSpace)
{
    // Unsized (legacy) annotations still get live ranges but occupy no
    // arena bytes and never trip aliasing validation.
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {},
                                  {{"%mp.u1"}, {"%mp.u2"}}));
    graph.launch(0, sim::annotate(toy_launch("k2"),
                                  {{"%mp.u1"}, {"%mp.u2"}},
                                  {{"mp.out"}}));
    const MemPlan plan = plan_memory(graph);
    EXPECT_EQ(plan.arena_bytes, 0u);
    EXPECT_EQ(plan.naive_hbm_bytes(), 0u);
    EXPECT_EQ(plan.pooling_savings(), 0.0);
    EXPECT_EQ(find_buffer(plan, "%mp.u1").cls, BufferClass::kPooled);
    validate_memplan(graph, plan);
}

TEST(MemPlanLiveness, ArenaOffsetsAreAligned)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {},
                                  {{"%mp.odd", 100}, {"%mp.odd2", 100}}));
    graph.launch(0, sim::annotate(toy_launch("k2"),
                                  {{"%mp.odd", 100}, {"%mp.odd2", 100}},
                                  {{"mp.out", 100}}));
    const MemPlan plan = plan_memory(graph);
    for (const MemPlanBuffer &buf : plan.buffers) {
        EXPECT_EQ(buf.offset % kArenaAlign, 0u) << buf.name;
    }
    // Two live-overlapping 100-byte buffers: second starts at the next
    // aligned offset, not at 100.
    EXPECT_EQ(plan.arena_bytes, kArenaAlign + 100u);
    validate_memplan(graph, plan);
}

// ---------------------------------------------------------------------------
// Namespacing under append.

TEST(MemPlanAppend, FreshNamespacesPoolOnlyWhenOrdered)
{
    LaunchGraph unit;
    unit.launch(0, sim::annotate(toy_launch("w"), {}, {{"%mp.t", 4096}}));
    unit.launch(0, sim::annotate(toy_launch("r"), {{"%mp.t", 4096}},
                                 {{"mp.out", 4096}}));

    // Appended back-to-back on one stream (ordered): the two copies'
    // distinct re-namespaced buffers share one slot.
    LaunchGraph seq;
    seq.append(unit, "a.");
    seq.append(unit, "b.");
    const MemPlan seq_plan = plan_memory(seq);
    EXPECT_EQ(seq_plan.buffers.size(), 3u);  // two locals + shared out
    EXPECT_EQ(seq_plan.arena_bytes, 4096u);
    EXPECT_EQ(seq_plan.pooled_request_bytes, 8192u);
    validate_memplan(seq, seq_plan);

    // Appended onto parallel streams (unordered): no pooling.
    LaunchGraph par;
    const int s1 = par.create_stream();
    std::vector<int> map0 = {0};
    std::vector<int> map1 = {s1};
    par.append(unit, "a.", &map0);
    par.append(unit, "b.", &map1);
    const MemPlan par_plan = plan_memory(par);
    EXPECT_EQ(par_plan.arena_bytes, 8192u);
    validate_memplan(par, par_plan);
}

TEST(MemPlanAppend, SharedNamespaceMergesIntoOneBuffer)
{
    // Two appends under the same namespace denote the same intermediate
    // (an engine's forward and backward sharing %p.*): one buffer, its
    // size the max across both graphs' annotations.
    LaunchGraph writer;
    writer.launch(0, sim::annotate(toy_launch("w"), {}, {{"%mp.t", 4096}}));
    LaunchGraph reader;
    reader.launch(0, sim::annotate(toy_launch("r"), {{"%mp.t", 4096}},
                                   {{"mp.out", 4096}}));

    LaunchGraph step;
    const std::string ns = "e0";
    step.append(writer, "f.", nullptr, &ns);
    step.append(reader, "b.", nullptr, &ns);
    const MemPlan plan = plan_memory(step);
    EXPECT_EQ(plan.buffers.size(), 2u);
    const MemPlanBuffer &t = find_buffer(plan, "%e0.mp.t");
    EXPECT_EQ(t.cls, BufferClass::kPooled);
    EXPECT_EQ(t.uses.size(), 2u);
    validate_memplan(step, plan);
}

// ---------------------------------------------------------------------------
// Validation.

TEST(MemPlanValidate, SeededAliasingIsCaught)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {},
                                  {{"%mp.a", 4096}, {"%mp.b", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k2"),
                                  {{"%mp.a", 4096}, {"%mp.b", 4096}},
                                  {{"mp.out", 4096}}));
    MemPlan plan = plan_memory(graph);
    validate_memplan(graph, plan);  // clean as planned

    for (MemPlanBuffer &buf : plan.buffers) {
        buf.offset = 0;  // force the two live-overlapping locals together
    }
    EXPECT_THROW(validate_memplan(graph, plan), MemPlanError);
}

TEST(MemPlanValidate, MisalignedAndOverrunningOffsetsAreCaught)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {},
                                  {{"%mp.a", 4096}}));
    graph.launch(0, sim::annotate(toy_launch("k2"), {{"%mp.a", 4096}},
                                  {{"mp.out", 4096}}));
    MemPlan plan = plan_memory(graph);

    MemPlan misaligned = plan;
    find_buffer(misaligned, "%mp.a");
    for (MemPlanBuffer &buf : misaligned.buffers) {
        if (buf.name == "%mp.a") {
            buf.offset = 8;
        }
    }
    EXPECT_THROW(validate_memplan(graph, misaligned), MemPlanError);

    MemPlan overrun = plan;
    overrun.arena_bytes = 1024;
    EXPECT_THROW(validate_memplan(graph, overrun), MemPlanError);
}

TEST(MemPlanValidate, NodeCountMismatchIsCaught)
{
    LaunchGraph graph;
    graph.launch(0, sim::annotate(toy_launch("k1"), {}, {{"%mp.a", 64}}));
    const MemPlan plan = plan_memory(graph);
    LaunchGraph bigger = graph;
    bigger.launch(0, toy_launch("k2"));
    EXPECT_THROW(validate_memplan(bigger, plan), MemPlanError);
}

// ---------------------------------------------------------------------------
// The plans the engines and runner actually ship.

TEST(MemPlanShipped, LayerGraphsPoolAndValidate)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(2022);
    const WorkloadSample sample = sample_for_model(rng, model);
    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);

    for (const auto kind : {TransformerRunner::LayerKind::kInference,
                            TransformerRunner::LayerKind::kTrainForward,
                            TransformerRunner::LayerKind::kTrainBackward}) {
        const std::shared_ptr<const MemPlan> plan =
            runner.layer_memplan(device, kind);
        ASSERT_NE(plan, nullptr);
        validate_memplan(*runner.layer_graph(device, kind), *plan);
        EXPECT_GT(plan->arena_bytes, 0u);
        // The composed layer genuinely pools: score fragments die into
        // the SpMMs before the FFN intermediates are born.
        EXPECT_LT(plan->peak_hbm_bytes(), plan->naive_hbm_bytes())
            << "layer kind " << static_cast<int>(kind);
        EXPECT_GT(plan->pooling_savings(), 0.0);
        // Every kernel family is byte-annotated: all buffers sized.
        for (const MemPlanBuffer &buf : plan->buffers) {
            EXPECT_GT(buf.bytes, 0u) << buf.name;
        }
    }
}

TEST(MemPlanShipped, EngineMemplansValidateAndAccountEveryBuffer)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(7);
    const WorkloadSample sample = sample_for_model(rng, model);
    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);
    const AttentionEngine &engine = runner.attention();

    const std::shared_ptr<const MemPlan> fwd =
        engine.forward_memplan(device);
    validate_memplan(engine.forward_graphs(device)->forward, *fwd);
    EXPECT_GT(fwd->naive_hbm_bytes(), 0u);
    for (const MemPlanBuffer &buf : fwd->buffers) {
        EXPECT_GT(buf.bytes, 0u) << buf.name;
    }

    const std::shared_ptr<const MemPlan> bwd =
        engine.backward_memplan(device);
    validate_memplan(*engine.backward_graph(device), *bwd);
    EXPECT_GT(bwd->naive_hbm_bytes(), 0u);
}

TEST(MemPlanShipped, DeterministicAndCached)
{
    const sim::DeviceSpec device = sim::DeviceSpec::a100();
    const ModelConfig model = ModelConfig::tiny_test();
    Rng rng(11);
    const WorkloadSample sample = sample_for_model(rng, model);
    const TransformerRunner runner(model, SliceMode::kMultigrain, sample,
                                   /*batch=*/1);

    const std::shared_ptr<const LaunchGraph> graph = runner.layer_graph(
        device, TransformerRunner::LayerKind::kInference);
    const MemPlan a = plan_memory(*graph);
    const MemPlan b = plan_memory(*graph);
    ASSERT_EQ(a.buffers.size(), b.buffers.size());
    for (std::size_t i = 0; i < a.buffers.size(); ++i) {
        EXPECT_EQ(a.buffers[i].name, b.buffers[i].name);
        EXPECT_EQ(a.buffers[i].offset, b.buffers[i].offset);
        EXPECT_EQ(a.buffers[i].bytes, b.buffers[i].bytes);
    }
    EXPECT_EQ(a.arena_bytes, b.arena_bytes);

    // Same graph key -> same cached object.
    const auto p1 = runner.layer_memplan(
        device, TransformerRunner::LayerKind::kInference);
    const auto p2 = runner.layer_memplan(
        device, TransformerRunner::LayerKind::kInference);
    EXPECT_EQ(p1.get(), p2.get());
}

}  // namespace
}  // namespace multigrain
