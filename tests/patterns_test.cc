// Unit tests for src/patterns: atomic pattern semantics, compound unions,
// zero-padding clipping, determinism, and the evaluation presets.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "formats/convert.h"
#include "patterns/pattern.h"
#include "patterns/presets.h"
#include "patterns/slice.h"
#include "patterns/stats.h"

namespace multigrain {
namespace {

std::vector<index_t>
row_columns(const AtomicPattern &atom, index_t seq, index_t valid,
            index_t row)
{
    std::vector<index_t> cols;
    atom.append_row_columns(seq, valid, row, cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    return cols;
}

// --------------------------------------------------------------- local ----

TEST(LocalPatternTest, InteriorRowGetsFullWindow)
{
    const AtomicPattern p = AtomicPattern::local(3);
    const auto cols = row_columns(p, 32, 32, 10);
    ASSERT_EQ(cols.size(), 7u);
    EXPECT_EQ(cols.front(), 7);
    EXPECT_EQ(cols.back(), 13);
}

TEST(LocalPatternTest, EdgeRowsAreClipped)
{
    const AtomicPattern p = AtomicPattern::local(3);
    EXPECT_EQ(row_columns(p, 32, 32, 0).size(), 4u);   // 0..3.
    EXPECT_EQ(row_columns(p, 32, 32, 31).size(), 4u);  // 28..31.
}

TEST(LocalPatternTest, WindowZeroIsDiagonal)
{
    const AtomicPattern p = AtomicPattern::local(0);
    const auto cols = row_columns(p, 8, 8, 5);
    ASSERT_EQ(cols.size(), 1u);
    EXPECT_EQ(cols[0], 5);
}

TEST(LocalPatternTest, PaddedRowsAndColumnsExcluded)
{
    const AtomicPattern p = AtomicPattern::local(4);
    EXPECT_TRUE(row_columns(p, 32, 16, 20).empty());  // Padded row.
    const auto cols = row_columns(p, 32, 16, 14);     // Near padding.
    EXPECT_EQ(cols.back(), 15);                       // Clipped at valid.
}

// ------------------------------------------------------------- dilated ----

TEST(DilatedPatternTest, StridePlacesColumns)
{
    const AtomicPattern p = AtomicPattern::dilated(2, 3);
    const auto cols = row_columns(p, 32, 32, 10);
    const std::vector<index_t> expected = {4, 7, 10, 13, 16};
    EXPECT_EQ(cols, expected);
}

TEST(DilatedPatternTest, IncludesSelfEvenAtEdges)
{
    const AtomicPattern p = AtomicPattern::dilated(2, 5);
    const auto cols = row_columns(p, 16, 16, 0);
    ASSERT_FALSE(cols.empty());
    EXPECT_EQ(cols.front(), 0);
    EXPECT_EQ(cols.back(), 10);
}

// ----------------------------------------------------- global/selected ----

TEST(GlobalPatternTest, TokenRowsAreDense)
{
    const AtomicPattern p = AtomicPattern::global({3, 5});
    EXPECT_EQ(row_columns(p, 16, 16, 3).size(), 16u);
    EXPECT_EQ(row_columns(p, 16, 16, 5).size(), 16u);
    EXPECT_TRUE(row_columns(p, 16, 16, 4).empty());
}

TEST(GlobalPatternTest, DenseRowsClippedToValidLen)
{
    const AtomicPattern p = AtomicPattern::global({3});
    EXPECT_EQ(row_columns(p, 16, 10, 3).size(), 10u);
}

TEST(SelectedPatternTest, EveryRowGetsTokenColumns)
{
    const AtomicPattern p = AtomicPattern::selected({2, 9, 7});
    const auto cols = row_columns(p, 16, 16, 0);
    const std::vector<index_t> expected = {2, 7, 9};
    EXPECT_EQ(cols, expected);
    EXPECT_EQ(row_columns(p, 16, 16, 15), expected);
}

TEST(SelectedPatternTest, TokensBeyondValidLenDropped)
{
    const AtomicPattern p = AtomicPattern::selected({2, 12});
    const auto cols = row_columns(p, 16, 8, 0);
    ASSERT_EQ(cols.size(), 1u);
    EXPECT_EQ(cols[0], 2);
}

TEST(SelectedPatternTest, ConstructorSortsAndDedupes)
{
    const AtomicPattern p = AtomicPattern::selected({9, 2, 9});
    ASSERT_EQ(p.tokens.size(), 2u);
    EXPECT_EQ(p.tokens[0], 2);
}

// -------------------------------------------------------------- random ----

TEST(RandomPatternTest, DeterministicPerRow)
{
    const AtomicPattern p = AtomicPattern::random(10, 77);
    EXPECT_EQ(row_columns(p, 128, 128, 5), row_columns(p, 128, 128, 5));
    // Row order does not matter: computing row 100 first changes nothing.
    const auto a = row_columns(p, 128, 128, 100);
    row_columns(p, 128, 128, 3);
    EXPECT_EQ(row_columns(p, 128, 128, 100), a);
}

TEST(RandomPatternTest, MeanCountIsRespected)
{
    const AtomicPattern p = AtomicPattern::random(20, 123);
    index_t total = 0;
    const index_t rows = 256;
    for (index_t r = 0; r < rows; ++r) {
        total += static_cast<index_t>(row_columns(p, 512, 512, r).size());
    }
    const double mean = static_cast<double>(total) / rows;
    EXPECT_NEAR(mean, 20.0, 2.0);
}

TEST(RandomPatternTest, RowCountsVary)
{
    // The Bernoulli draws must produce per-row variation (the imbalance
    // stressor); identical counts on every row would be a regression.
    const AtomicPattern p = AtomicPattern::random(16, 9);
    std::set<std::size_t> sizes;
    for (index_t r = 0; r < 64; ++r) {
        sizes.insert(row_columns(p, 512, 512, r).size());
    }
    EXPECT_GT(sizes.size(), 3u);
}

TEST(RandomPatternTest, DifferentSeedsDiffer)
{
    const AtomicPattern a = AtomicPattern::random(10, 1);
    const AtomicPattern b = AtomicPattern::random(10, 2);
    EXPECT_NE(row_columns(a, 256, 256, 0), row_columns(b, 256, 256, 0));
}

// ------------------------------------------------------------- blocked ----

TEST(BlockedLocalTest, BlocksAreFullyDense)
{
    const AtomicPattern p = AtomicPattern::blocked_local(8, 1);
    const auto cols = row_columns(p, 64, 64, 20);  // Block row 2.
    ASSERT_EQ(cols.size(), 24u);                   // Blocks 1, 2, 3.
    EXPECT_EQ(cols.front(), 8);
    EXPECT_EQ(cols.back(), 31);
}

TEST(BlockedLocalTest, RowsInSameBlockRowMatch)
{
    const AtomicPattern p = AtomicPattern::blocked_local(8, 1);
    EXPECT_EQ(row_columns(p, 64, 64, 16), row_columns(p, 64, 64, 23));
}

TEST(BlockedLocalTest, WindowZeroIsBlockDiagonal)
{
    const AtomicPattern p = AtomicPattern::blocked_local(8, 0);
    const auto cols = row_columns(p, 64, 64, 9);
    ASSERT_EQ(cols.size(), 8u);
    EXPECT_EQ(cols.front(), 8);
}

TEST(BlockedRandomTest, ConsistentWithinBlockRowAndSeeded)
{
    const AtomicPattern p = AtomicPattern::blocked_random(8, 3, 55);
    EXPECT_EQ(row_columns(p, 128, 128, 8), row_columns(p, 128, 128, 15));
    // Columns come in whole blocks.
    const auto cols = row_columns(p, 128, 128, 8);
    EXPECT_EQ(cols.size() % 8, 0u);
}

TEST(BlockedRandomTest, MeanBlockCountRespected)
{
    const AtomicPattern p = AtomicPattern::blocked_random(8, 4, 99);
    index_t blocks_total = 0;
    for (index_t br = 0; br < 64; ++br) {
        blocks_total += static_cast<index_t>(
            row_columns(p, 512, 512, br * 8).size() / 8);
    }
    EXPECT_NEAR(static_cast<double>(blocks_total) / 64.0, 4.0, 1.0);
}

// ------------------------------------------------------------ compound ----

TEST(CompoundTest, FullLayoutIsUnionOfAtoms)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::local(2));
    p.atoms.push_back(AtomicPattern::selected({10, 40}));
    const CsrLayout full = build_full_layout(p);
    full.validate();
    const MaskMatrix mask = mask_from_csr(full);
    // Selected columns present everywhere, local band around diagonal.
    for (index_t r = 0; r < 64; ++r) {
        EXPECT_TRUE(mask.at(r, 10));
        EXPECT_TRUE(mask.at(r, 40));
        EXPECT_TRUE(mask.at(r, r));
    }
    EXPECT_TRUE(mask.at(20, 22));
    EXPECT_FALSE(mask.at(20, 25));
}

TEST(CompoundTest, GlobalRowsDenseInFullLayout)
{
    CompoundPattern p;
    p.seq_len = 32;
    p.atoms.push_back(AtomicPattern::local(1));
    p.atoms.push_back(AtomicPattern::global({5}));
    const CsrLayout full = build_full_layout(p);
    EXPECT_EQ(full.row_nnz(5), 32);
    EXPECT_EQ(full.row_nnz(6), 3);
}

TEST(CompoundTest, ValidLenClipsEverything)
{
    CompoundPattern p;
    p.seq_len = 32;
    p.valid_len = 20;
    p.atoms.push_back(AtomicPattern::local(4));
    p.atoms.push_back(AtomicPattern::global({5}));
    const CsrLayout full = build_full_layout(p);
    EXPECT_EQ(full.row_nnz(5), 20);
    for (index_t r = 20; r < 32; ++r) {
        EXPECT_EQ(full.row_nnz(r), 0) << "padded row " << r;
    }
    for (const index_t c : full.col_indices) {
        EXPECT_LT(c, 20);
    }
}

TEST(CompoundTest, ExcludeRowsLeavesThemEmpty)
{
    CompoundPattern p;
    p.seq_len = 16;
    p.atoms.push_back(AtomicPattern::local(2));
    std::vector<const AtomicPattern *> atoms = {&p.atoms[0]};
    const CsrLayout l = build_union_layout(p, atoms, {3, 7});
    EXPECT_EQ(l.row_nnz(3), 0);
    EXPECT_EQ(l.row_nnz(7), 0);
    EXPECT_GT(l.row_nnz(4), 0);
}

TEST(CompoundTest, DescribeMentionsEveryAtom)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.atoms.push_back(AtomicPattern::local(3));
    p.atoms.push_back(AtomicPattern::random(5, 1));
    const std::string desc = p.describe();
    EXPECT_NE(desc.find("local"), std::string::npos);
    EXPECT_NE(desc.find("random"), std::string::npos);
}

TEST(CompoundTest, ClassifierFlagsMatchPaperTable)
{
    EXPECT_TRUE(AtomicPattern::local(1).is_coarse());
    EXPECT_TRUE(AtomicPattern::blocked_local(8, 1).is_coarse());
    EXPECT_TRUE(AtomicPattern::blocked_random(8, 1, 1).is_coarse());
    EXPECT_FALSE(AtomicPattern::random(1, 1).is_coarse());
    EXPECT_FALSE(AtomicPattern::selected({0}).is_coarse());
    EXPECT_FALSE(AtomicPattern::dilated(1, 2).is_coarse());
    EXPECT_FALSE(AtomicPattern::global({0}).is_coarse());
    EXPECT_TRUE(AtomicPattern::global({0}).is_special());
    EXPECT_FALSE(AtomicPattern::local(1).is_special());
}

// ------------------------------------------------------------- presets ----

TEST(PresetsTest, Fig9PatternsHitTargetDensity)
{
    const index_t seq = 1024;
    const double density = 0.05;
    for (const auto &[label, pattern] : fig9_patterns(seq, density, 42)) {
        const CsrLayout full = build_full_layout(pattern);
        const double actual =
            static_cast<double>(full.nnz()) /
            (static_cast<double>(seq) * static_cast<double>(seq));
        // Global rows push density a little above the row budget.
        EXPECT_GT(actual, density * 0.6) << label;
        EXPECT_LT(actual, density * 2.0) << label;
    }
}

TEST(PresetsTest, Fig9OrderMatchesPaper)
{
    const auto patterns = fig9_patterns(512, 0.05, 1);
    ASSERT_EQ(patterns.size(), 5u);
    EXPECT_EQ(patterns[0].label, "L+S");
    EXPECT_EQ(patterns[3].label, "L+S+G");
    EXPECT_EQ(patterns[4].label, "LB+R+G");
}

TEST(PresetsTest, Fig11PatternsAreCoarseOnly)
{
    for (const auto &[label, pattern] : fig11_patterns(512, 3)) {
        for (const auto &atom : pattern.atoms) {
            EXPECT_TRUE(atom.is_coarse()) << label;
        }
    }
}

TEST(PresetsTest, SpreadTokensSortedUniqueInRange)
{
    const auto tokens = spread_tokens(1000, 50, 7);
    EXPECT_GE(tokens.size(), 45u);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        EXPECT_GE(tokens[i], 0);
        EXPECT_LT(tokens[i], 1000);
        if (i > 0) {
            EXPECT_LT(tokens[i - 1], tokens[i]);
        }
    }
}

TEST(PresetsTest, FactoriesRejectBadArguments)
{
    EXPECT_THROW(AtomicPattern::local(-1), Error);
    EXPECT_THROW(AtomicPattern::dilated(1, 0), Error);
    EXPECT_THROW(AtomicPattern::blocked_local(0, 1), Error);
    EXPECT_THROW(AtomicPattern::clustered_random(0, 1, 1, 1), Error);
    EXPECT_THROW(preset_local_selected(512, 0.0, 1), Error);
}

// ----------------------------------------------------- clustered random ----

TEST(ClusteredRandomTest, ElementsConfinedToPerBlockRowClusters)
{
    const AtomicPattern p = AtomicPattern::clustered_random(16, 2, 8, 5);
    // All rows of a block row draw inside the same <= 2 block columns.
    for (index_t br = 0; br < 8; ++br) {
        std::set<index_t> blocks;
        for (index_t r = br * 16; r < (br + 1) * 16; ++r) {
            for (const index_t c : row_columns(p, 256, 256, r)) {
                blocks.insert(c / 16);
            }
        }
        EXPECT_LE(blocks.size(), 2u) << "block row " << br;
    }
}

TEST(ClusteredRandomTest, MeanCountRespected)
{
    const AtomicPattern p = AtomicPattern::clustered_random(32, 3, 12, 17);
    index_t total = 0;
    const index_t rows = 512;
    for (index_t r = 0; r < rows; ++r) {
        total += static_cast<index_t>(row_columns(p, 1024, 1024, r).size());
    }
    EXPECT_NEAR(static_cast<double>(total) / rows, 12.0, 2.0);
}

TEST(ClusteredRandomTest, DeterministicAndRowOrderIndependent)
{
    const AtomicPattern p = AtomicPattern::clustered_random(16, 2, 6, 3);
    const auto a = row_columns(p, 256, 256, 200);
    row_columns(p, 256, 256, 7);  // Unrelated draw in between.
    EXPECT_EQ(row_columns(p, 256, 256, 200), a);
}

TEST(ClusteredRandomTest, ClassifiedFineGrained)
{
    EXPECT_FALSE(AtomicPattern::clustered_random(16, 2, 6, 3).is_coarse());
    EXPECT_FALSE(AtomicPattern::clustered_random(16, 2, 6, 3).is_special());
}

TEST(ClusteredRandomTest, RespectsValidLen)
{
    const AtomicPattern p = AtomicPattern::clustered_random(16, 8, 32, 9);
    for (const index_t c : row_columns(p, 256, 100, 10)) {
        EXPECT_LT(c, 100);
    }
    EXPECT_TRUE(row_columns(p, 256, 100, 150).empty());  // Padded row.
}

TEST(ClusteredRandomTest, BoundsBlockificationUnlikePureRandom)
{
    // The motivating property: blockifying a clustered-random pattern
    // stores a bounded number of blocks per block row, while pure random
    // of the same density covers nearly every block.
    CompoundPattern clustered, pure;
    clustered.seq_len = pure.seq_len = 512;
    clustered.atoms.push_back(
        AtomicPattern::clustered_random(64, 2, 16, 7));
    pure.atoms.push_back(AtomicPattern::random(16, 7));
    const BsrLayout bc = bsr_from_csr(build_full_layout(clustered), 64);
    const BsrLayout bp = bsr_from_csr(build_full_layout(pure), 64);
    EXPECT_LE(bc.nnz_blocks(), 2 * bc.block_rows());
    EXPECT_GT(bp.nnz_blocks(), 3 * bc.nnz_blocks());
}

// --------------------------------------------------------------- causal ----

TEST(CausalTest, LayoutNeverLooksAhead)
{
    CompoundPattern p;
    p.seq_len = 64;
    p.causal = true;
    p.atoms.push_back(AtomicPattern::local(8));
    p.atoms.push_back(AtomicPattern::random(6, 4));
    const CsrLayout full = build_full_layout(p);
    full.validate();
    for (index_t r = 0; r < 64; ++r) {
        for (index_t i = full.row_offsets[static_cast<std::size_t>(r)];
             i < full.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            EXPECT_LE(full.col_indices[static_cast<std::size_t>(i)], r);
        }
    }
    // Every row still attends at least itself.
    for (index_t r = 0; r < 64; ++r) {
        EXPECT_GE(full.row_nnz(r), 1) << "row " << r;
    }
}

TEST(CausalTest, GlobalAtomsRejected)
{
    CompoundPattern p;
    p.seq_len = 32;
    p.causal = true;
    p.atoms.push_back(AtomicPattern::global({3}));
    EXPECT_THROW(build_full_layout(p), Error);
}

TEST(CausalTest, DescribeMentionsCausality)
{
    CompoundPattern p;
    p.seq_len = 32;
    p.causal = true;
    p.atoms.push_back(AtomicPattern::local(2));
    EXPECT_NE(p.describe().find("causal"), std::string::npos);
}

TEST(CausalTest, SparseTransformerStridedShape)
{
    const CompoundPattern p = preset_sparse_transformer_strided(64, 8);
    const CsrLayout full = build_full_layout(p);
    // Row 40 attends its window [32, 40] and the strided history
    // positions 0, 8, 16, 24, 32, 40.
    const MaskMatrix mask = mask_from_csr(full);
    EXPECT_TRUE(mask.at(40, 40));
    EXPECT_TRUE(mask.at(40, 33));
    EXPECT_TRUE(mask.at(40, 16));
    EXPECT_TRUE(mask.at(40, 0));
    EXPECT_FALSE(mask.at(40, 20));  // Neither window nor stride.
    EXPECT_FALSE(mask.at(40, 48));  // Future.
}

TEST(CausalTest, SparseTransformerFixedShape)
{
    const CompoundPattern p = preset_sparse_transformer_fixed(64, 16, 2);
    const CsrLayout full = build_full_layout(p);
    const MaskMatrix mask = mask_from_csr(full);
    // Row 40 (block 2) attends inside its block up to itself...
    EXPECT_TRUE(mask.at(40, 32));
    EXPECT_TRUE(mask.at(40, 40));
    EXPECT_FALSE(mask.at(40, 41));  // Future inside block.
    // ...and the summary columns 14, 15 and 30, 31 of earlier blocks.
    EXPECT_TRUE(mask.at(40, 15));
    EXPECT_TRUE(mask.at(40, 14));
    EXPECT_TRUE(mask.at(40, 31));
    EXPECT_FALSE(mask.at(40, 13));
}

TEST(CausalTest, SlicesAndValidates)
{
    const CompoundPattern p = preset_sparse_transformer_strided(128, 16);
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        SliceOptions options;
        options.block = 16;
        options.mode = mode;
        const SlicePlan plan = slice_and_dice(p, options);
        ASSERT_NO_THROW(plan.validate_partition()) << to_string(mode);
    }
}

// --------------------------------------------------------- burst tokens ----

TEST(BurstTokensTest, ProducesRequestedCountInBursts)
{
    const auto tokens = burst_tokens(1024, 40, 4, 11);
    EXPECT_GE(tokens.size(), 35u);
    EXPECT_LE(tokens.size(), 40u);
    // Tokens should concentrate into few 64-blocks relative to spread.
    std::set<index_t> burst_blocks, spread_blocks;
    for (const index_t t : tokens) {
        burst_blocks.insert(t / 64);
    }
    for (const index_t t : spread_tokens(1024, 40, 11)) {
        spread_blocks.insert(t / 64);
    }
    EXPECT_LT(burst_blocks.size(), spread_blocks.size());
}

TEST(BurstTokensTest, SortedUniqueWithinRange)
{
    const auto tokens = burst_tokens(512, 30, 5, 3);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        EXPECT_GE(tokens[i], 0);
        EXPECT_LT(tokens[i], 512);
        if (i > 0) {
            EXPECT_LT(tokens[i - 1], tokens[i]);
        }
    }
}

TEST(BurstTokensTest, BurstOfOneMatchesSpreadCardinality)
{
    EXPECT_EQ(burst_tokens(256, 16, 1, 5).size(),
              spread_tokens(256, 16, 5).size());
}

// ---------------------------------------------------------------- stats ----

TEST(StatsTest, BandedPatternHasLowVariationAndInflation)
{
    CompoundPattern p;
    p.seq_len = 512;
    p.atoms.push_back(AtomicPattern::blocked_local(64, 1));
    const PatternStats s = analyze_pattern(p, 64);
    EXPECT_NEAR(s.block_inflation, 1.0, 1e-9);  // Block-aligned band.
    EXPECT_LT(s.row_cv, 0.25);  // Only edge rows differ.
    EXPECT_NEAR(s.coarse_fraction, 1.0, 1e-9);
    EXPECT_NEAR(s.fine_fraction, 0.0, 1e-9);
}

TEST(StatsTest, GlobalRowsRaiseVariation)
{
    CompoundPattern base;
    base.seq_len = 512;
    base.atoms.push_back(AtomicPattern::local(16));
    CompoundPattern with_global = base;
    with_global.atoms.push_back(AtomicPattern::global({5, 100}));
    EXPECT_GT(analyze_pattern(with_global, 64).row_cv,
              2 * analyze_pattern(base, 64).row_cv);
    EXPECT_GT(analyze_pattern(with_global, 64).special_fraction, 0.0);
}

TEST(StatsTest, ScatteredPatternInflatesBlockification)
{
    CompoundPattern p;
    p.seq_len = 512;
    p.atoms.push_back(AtomicPattern::random(6, 3));
    const PatternStats s = analyze_pattern(p, 64);
    EXPECT_GT(s.block_inflation, 20.0);  // ~1 valid per 4096-slot block.
    EXPECT_NEAR(s.fine_fraction, 1.0, 1e-9);
}

TEST(StatsTest, FractionsSumToOne)
{
    const auto patterns = fig9_patterns(512, 0.08, 5);
    for (const auto &[label, pattern] : patterns) {
        const PatternStats s = analyze_pattern(pattern, 64);
        EXPECT_NEAR(s.coarse_fraction + s.fine_fraction +
                        s.special_fraction,
                    1.0, 1e-9)
            << label;
        EXPECT_FALSE(s.summarize().empty());
    }
}

}  // namespace
}  // namespace multigrain
