// Tests for mgcluster, the scale-out serving layer (ISSUE 9): seeded
// router policies (round-robin rotation, least-bytes placement,
// sticky tenant-affinity pins), burst-aware WFQ dequeue in admission,
// fleet-wide request conservation across scripted failover, same-seed
// byte-identical fleet reports, the tenant-affinity plan-cache
// advantage on a heterogeneous fleet, and the conservation gate's
// fail-closed self-tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "serve/admission.h"
#include "serve/cluster.h"
#include "serve/cost.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/traffic.h"

namespace multigrain {
namespace {

using serve::ReplicaView;
using serve::Request;
using serve::Router;
using serve::RoutePolicy;

Request
make_request(std::int64_t id, const std::string &tenant,
             double deadline_us = 0)
{
    Request r;
    r.id = id;
    r.tenant = tenant;
    r.deadline_us = deadline_us;
    return r;
}

std::vector<ReplicaView>
alive_views(std::size_t n)
{
    return std::vector<ReplicaView>(n, ReplicaView{true, 0});
}

// ---- Router policies ----------------------------------------------------

TEST(RouterTest, RoundRobinRotatesFromSeededStart)
{
    Router router(RoutePolicy::kRoundRobin, 3, /*seed=*/7);  // 7 % 3 = 1.
    const auto views = alive_views(3);
    EXPECT_EQ(router.route(make_request(0, "a"), views), 1);
    EXPECT_EQ(router.route(make_request(1, "a"), views), 2);
    EXPECT_EQ(router.route(make_request(2, "a"), views), 0);
    EXPECT_EQ(router.route(make_request(3, "a"), views), 1);
    EXPECT_EQ(router.stats().routed, 4u);
    EXPECT_EQ(router.stats().per_replica[1], 2u);
}

TEST(RouterTest, RoundRobinSkipsDeadReplicas)
{
    Router router(RoutePolicy::kRoundRobin, 3, /*seed=*/0);
    auto views = alive_views(3);
    views[0].alive = false;
    EXPECT_EQ(router.route(make_request(0, "a"), views), 1);
    EXPECT_EQ(router.route(make_request(1, "a"), views), 2);
    EXPECT_EQ(router.route(make_request(2, "a"), views), 1);

    // No replica alive: the arrival is shed at the router with its own
    // counter — no replica ledger ever sees it.
    for (ReplicaView &v : views) {
        v.alive = false;
    }
    EXPECT_EQ(router.route(make_request(3, "a"), views), -1);
    EXPECT_EQ(router.reroute(make_request(4, "a"), views), -1);
    EXPECT_EQ(router.stats().shed_arrivals, 1u);
    EXPECT_EQ(router.stats().shed_reroutes, 1u);
    EXPECT_EQ(router.stats().failover_sheds(), 2u);
}

TEST(RouterTest, LeastBytesPicksSmallestBacklogTiesToLowestIndex)
{
    Router router(RoutePolicy::kLeastBytes, 3, /*seed=*/0);
    std::vector<ReplicaView> views = {
        {true, 500}, {true, 300}, {true, 300}};
    EXPECT_EQ(router.route(make_request(0, "a"), views), 1);
    views[1].outstanding_bytes = 900;
    EXPECT_EQ(router.route(make_request(1, "a"), views), 2);
    views = {{true, 0}, {true, 0}, {true, 0}};
    EXPECT_EQ(router.route(make_request(2, "a"), views), 0);
    views[0].alive = false;  // The minimum must be among the alive.
    EXPECT_EQ(router.route(make_request(3, "a"), views), 1);
}

TEST(RouterTest, TenantAffinityPinsAreSeededAndSticky)
{
    Router router(RoutePolicy::kTenantAffinity, 4, /*seed=*/2022);
    Router twin(RoutePolicy::kTenantAffinity, 4, /*seed=*/2022);
    auto views = alive_views(4);

    // Same seed, same pins; a tenant always lands on its pin.
    const int alice = router.route(make_request(0, "alice"), views);
    const int bob = router.route(make_request(1, "bob"), views);
    EXPECT_EQ(router.route(make_request(2, "alice"), views), alice);
    EXPECT_EQ(twin.route(make_request(0, "alice"), views), alice);
    EXPECT_EQ(twin.route(make_request(1, "bob"), views), bob);

    // A dead pin moves to the next alive replica — and stays there
    // after the old replica revives (stickiness preserves the
    // plan-cache working set built at the new home).
    views[static_cast<std::size_t>(alice)].alive = false;
    const int moved = router.route(make_request(3, "alice"), views);
    EXPECT_NE(moved, alice);
    EXPECT_EQ(router.stats().affinity_repins, 1u);
    views[static_cast<std::size_t>(alice)].alive = true;
    EXPECT_EQ(router.route(make_request(4, "alice"), views), moved);
    EXPECT_EQ(router.stats().affinity_repins, 1u);
}

// ---- Burst-aware WFQ in admission ---------------------------------------

serve::AdmissionConfig
wfq_config(bool wfq)
{
    serve::AdmissionConfig config;
    config.queue_capacity = 16;
    config.wfq = wfq;
    return config;
}

const std::vector<serve::TenantSpec> kTwoTenants = {
    {"alice", 2.0, serve::SloClass::kInteractive},
    {"bob", 1.0, serve::SloClass::kStandard}};

TEST(WfqTest, DisabledTogglePreservesEdfOrder)
{
    // With the toggle off — and with it on but all charges equal — the
    // dequeue order is exactly the old EDF-with-rotation policy.
    for (const bool wfq : {false, true}) {
        serve::AdmissionQueue queue(wfq_config(wfq), kTwoTenants);
        ASSERT_TRUE(queue.offer(make_request(0, "alice", 900), 0));
        ASSERT_TRUE(queue.offer(make_request(1, "bob", 500), 0));
        ASSERT_TRUE(queue.offer(make_request(2, "alice", 700), 0));
        if (wfq) {
            queue.set_charged("alice", 0);
            queue.set_charged("bob", 0);
        }
        // EDF across tenant heads, FIFO within a tenant: bob's 500
        // first, then alice's queue in arrival order.
        EXPECT_EQ(queue.pop_seed()->id, 1u) << "wfq=" << wfq;
        EXPECT_EQ(queue.pop_seed()->id, 0u) << "wfq=" << wfq;
        EXPECT_EQ(queue.pop_seed()->id, 2u) << "wfq=" << wfq;
    }
}

TEST(WfqTest, ChargedTenantWaitsBehindUnchargedOne)
{
    serve::AdmissionQueue queue(wfq_config(true), kTwoTenants);
    ASSERT_TRUE(queue.offer(make_request(0, "alice", 500), 0));
    ASSERT_TRUE(queue.offer(make_request(1, "bob", 900), 0));
    // Alice burned device time; EDF would pick her tighter deadline,
    // WFQ makes her wait behind the tenant that has not spent yet.
    queue.set_charged("alice", 1000);
    EXPECT_EQ(queue.pop_seed()->id, 1);
    EXPECT_EQ(queue.pop_seed()->id, 0);
}

TEST(WfqTest, DebtIsChargePerWeight)
{
    // alice (weight 2) charged 1000 → debt 500; bob (weight 1) charged
    // 600 → debt 600. The *weighted* debt decides, not the raw charge.
    serve::AdmissionQueue queue(wfq_config(true), kTwoTenants);
    ASSERT_TRUE(queue.offer(make_request(0, "alice", 900), 0));
    ASSERT_TRUE(queue.offer(make_request(1, "bob", 500), 0));
    queue.set_charged("alice", 1000);
    queue.set_charged("bob", 600);
    EXPECT_EQ(queue.pop_seed()->id, 0);
    EXPECT_EQ(queue.pop_seed()->id, 1);
}

TEST(WfqTest, TinyPresetRunReconcilesWithWfqEnabled)
{
    serve::ServeConfig config = serve::serve_preset_by_name("tiny");
    config.admission.wfq = true;
    serve::Server server(config, sim::DeviceSpec::a100());
    const serve::ServeReport report = server.run();
    EXPECT_GT(report.completed, 0u);
    // The ledger feedback loop (charges → debt → dequeue order) must
    // not break conservation.
    EXPECT_TRUE(serve::reconcile_cost(report.cost, report).empty());
}

// ---- Fleet conservation -------------------------------------------------

serve::ClusterReport
run_preset(const std::string &preset, const std::string &device)
{
    serve::Cluster cluster(serve::cluster_preset_by_name(preset, device));
    return cluster.run();
}

TEST(ClusterTest, EveryPresetConservesOnBothDevices)
{
    for (const std::string device : {"a100", "rtx3090"}) {
        for (const serve::ClusterPresetInfo &preset :
             serve::cluster_presets()) {
            if (std::string(preset.name) == "hetero" &&
                device != "a100") {
                continue;  // hetero pins its own pair.
            }
            const serve::ClusterReport report =
                run_preset(preset.name, device);
            const std::vector<std::string> errors =
                serve::reconcile_cluster(report);
            EXPECT_TRUE(errors.empty())
                << preset.name << "@" << device << ": " << errors.size()
                << " errors, first: "
                << (errors.empty() ? "" : errors.front());
            EXPECT_EQ(report.arrivals,
                      static_cast<std::uint64_t>(
                          serve::cluster_preset_by_name(preset.name,
                                                        device)
                              .serve.traffic.num_requests));
            PlanCache::instance().clear();
        }
    }
}

TEST(ClusterTest, FailoverReroutesBacklogAndRecordsLostWork)
{
    const serve::ClusterReport report = run_preset("failover", "a100");
    EXPECT_TRUE(serve::reconcile_cluster(report).empty());

    // The fault must actually bite: work died on the device, and the
    // dead replica's backlog moved through the router.
    EXPECT_GT(report.router.rerouted, 0u);
    EXPECT_GT(report.lost_in_flight, 0u);
    EXPECT_GT(report.replicas[0].lost_in_flight, 0u);
    EXPECT_EQ(report.replicas[0].admission.drained,
              report.router.rerouted + report.router.shed_reroutes);

    // Exact conservation telescope, restated from the raw counters.
    std::uint64_t terminal = report.completed + report.rejected +
                             report.timed_out + report.lost_in_flight;
    EXPECT_EQ(report.arrivals,
              terminal + report.router.failover_sheds());
}

TEST(ClusterTest, SingleReplicaFleetMatchesStandaloneServer)
{
    // One replica behind the router sees the exact event stream a
    // standalone Server sees — the cluster loop is the server loop
    // lifted, so every timing figure must agree.
    serve::ClusterConfig config;
    config.preset = "tiny";
    config.serve = serve::serve_preset_by_name("tiny");
    config.devices = {sim::DeviceSpec::a100()};
    config.device_names = {"a100"};
    serve::Cluster cluster(std::move(config));
    const serve::ClusterReport fleet = cluster.run();
    PlanCache::instance().clear();

    serve::Server server(serve::serve_preset_by_name("tiny"),
                         sim::DeviceSpec::a100());
    const serve::ServeReport solo = server.run();

    ASSERT_EQ(fleet.replicas.size(), 1u);
    const serve::ServeReport &rep = fleet.replicas[0];
    EXPECT_EQ(rep.completed, solo.completed);
    EXPECT_EQ(rep.rounds, solo.rounds);
    EXPECT_DOUBLE_EQ(rep.busy_us, solo.busy_us);
    EXPECT_DOUBLE_EQ(rep.latency.p99, solo.latency.p99);
    EXPECT_DOUBLE_EQ(rep.makespan_us, solo.makespan_us);
    EXPECT_EQ(rep.admission.offered, solo.admission.offered);
    EXPECT_EQ(rep.batch_histogram, solo.batch_histogram);
}

// ---- Determinism --------------------------------------------------------

TEST(ClusterTest, SameSeedProducesByteIdenticalReports)
{
    // The whole fleet run is a pure function of (preset, seed, devices,
    // policy); with the manifest pinned, so is the report document.
    const serve::ClusterRunInfo info{"failover", "a100", 2022};
    const prof::RunManifest manifest;  // Fixed: no wall-clock stamp.
    std::vector<std::string> docs;
    for (int i = 0; i < 2; ++i) {
        PlanCache::instance().clear();  // Same cold start both times.
        const serve::ClusterReport report =
            run_preset("failover", "a100");
        docs.push_back(serve::cluster_report_json(
            report, info, serve::reconcile_cluster(report), manifest));
    }
    EXPECT_EQ(docs[0], docs[1]);
}

TEST(ClusterTest, AffinityBeatsRoundRobinOnHeteroPlanCache)
{
    // On a heterogeneous fleet the plan cache keys on the device, so a
    // tenant bouncing between devices (round-robin) compiles its shapes
    // twice; affinity keeps each tenant's working set on one device.
    PlanCache::instance().clear();
    const serve::ClusterReport affinity = run_preset("hetero", "a100");
    PlanCache::instance().clear();
    serve::ClusterConfig config =
        serve::cluster_preset_by_name("hetero", "a100");
    config.policy = RoutePolicy::kRoundRobin;
    serve::Cluster cluster(std::move(config));
    const serve::ClusterReport round_robin = cluster.run();
    PlanCache::instance().clear();

    EXPECT_LT(affinity.plan_cache.misses, round_robin.plan_cache.misses);
    EXPECT_GE(affinity.plan_cache.hit_rate(),
              round_robin.plan_cache.hit_rate());
}

// ---- The gate fails closed ----------------------------------------------

TEST(ClusterTest, PerturbedRouterCounterFailsReconciliation)
{
    serve::ClusterReport report = run_preset("fleet2", "a100");
    ASSERT_TRUE(serve::reconcile_cluster(report).empty());
    serve::perturb_router_counter(report, 1);
    EXPECT_FALSE(serve::reconcile_cluster(report).empty());
    PlanCache::instance().clear();
}

TEST(ClusterTest, PerturbedMergedLedgerFailsReconciliation)
{
    serve::ClusterReport report = run_preset("fleet2", "a100");
    ASSERT_TRUE(serve::reconcile_cluster(report).empty());
    ASSERT_FALSE(report.cost.tenants.empty());
    serve::scale_tenant_charges(report.cost, 0, 1.5);
    EXPECT_FALSE(serve::reconcile_cluster(report).empty());
    PlanCache::instance().clear();
}

// ---- The mgperf gate preset ---------------------------------------------

TEST(ClusterTest, ClusterTinyBenchPresetEmitsFleetRows)
{
    const bench::BenchPreset *preset =
        bench::find_bench_preset("cluster_tiny");
    ASSERT_NE(preset, nullptr);
    const prof::BenchRun run = bench::run_bench_preset(*preset, "a100");
    EXPECT_EQ(run.name, "cluster_tiny@a100");
    int cluster_rows = 0, replica_rows = 0;
    for (const prof::BenchRow &row : run.rows) {
        cluster_rows += row.series == "cluster";
        replica_rows += row.series == "cluster_replica";
    }
    EXPECT_EQ(cluster_rows, 1);
    EXPECT_EQ(replica_rows, 2);
    PlanCache::instance().clear();
}

}  // namespace
}  // namespace multigrain
