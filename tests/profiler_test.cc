// The profiler subsystem: phase carving by the kernel naming convention,
// the metric registry, the schema-versioned JSON/CSV exporters, and the
// SimResult round-trip.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "common/timer.h"
#include "gpusim/device.h"
#include "gpusim/engine.h"
#include "profiler/export.h"
#include "profiler/metrics.h"

namespace multigrain::prof {
namespace {

sim::KernelStats
make_kernel(const std::string &name, int stream, double start_us,
            double end_us, double dram_mb = 1.0)
{
    sim::KernelStats k;
    k.name = name;
    k.stream = stream;
    k.num_tbs = 64;
    k.occupancy_per_sm = 2;
    k.ready_us = start_us;
    k.start_us = start_us;
    k.end_us = end_us;
    k.work.cuda_flops = 1e9;
    k.work.dram_read_bytes = dram_mb * 1e6;
    k.avg_concurrency = 32;
    return k;
}

/// Hand-built timeline following the repo's naming convention: one layer
/// tag, three attention ops, coarse ∥ fine overlap on separate streams.
sim::SimResult
layered_result()
{
    sim::SimResult r;
    r.kernels.push_back(make_kernel("L00.attn.sddmm.coarse", 0, 0, 10));
    r.kernels.push_back(make_kernel("L00.attn.sddmm.fine", 1, 0, 8));
    r.kernels.push_back(make_kernel("L00.attn.softmax.compound", 0, 10, 14));
    r.kernels.push_back(make_kernel("L00.attn.spmm.coarse", 0, 14, 22));
    r.kernels.push_back(make_kernel("L00.attn.spmm.fine", 1, 14, 20));
    r.kernels.push_back(make_kernel("L01.gemm.ffn1", 0, 22, 30));
    for (const auto &k : r.kernels) {
        r.work += k.work;
    }
    r.total_us = 30;
    return r;
}

// ---------------------------------------------------------- carving ------

TEST(ProfilerTest, CarvesOpsSubphasesAndLayers)
{
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());

    ASSERT_NE(run.find_op("sddmm"), nullptr);
    ASSERT_NE(run.find_op("softmax"), nullptr);
    ASSERT_NE(run.find_op("spmm"), nullptr);
    ASSERT_NE(run.find_op("gemm"), nullptr);
    EXPECT_EQ(run.find_op("bwd"), nullptr);

    const PhaseStats &sddmm = *run.find_op("sddmm");
    EXPECT_EQ(sddmm.kernel_count, 2);
    EXPECT_DOUBLE_EQ(sddmm.span_us, 10.0);   // max end 10 - min start 0.
    EXPECT_DOUBLE_EQ(sddmm.busy_us, 18.0);   // 10 + 8.
    EXPECT_DOUBLE_EQ(sddmm.overlap, 1.8);    // Two streams overlapping.
    EXPECT_DOUBLE_EQ(sddmm.start_us, 0.0);
    EXPECT_DOUBLE_EQ(sddmm.end_us, 10.0);

    ASSERT_NE(run.find_subphase("sddmm.coarse"), nullptr);
    ASSERT_NE(run.find_subphase("sddmm.fine"), nullptr);
    EXPECT_EQ(run.find_subphase("sddmm.coarse")->kernel_count, 1);

    ASSERT_NE(run.find_layer("L00"), nullptr);
    ASSERT_NE(run.find_layer("L01"), nullptr);
    EXPECT_EQ(run.find_layer("L00")->kernel_count, 5);
    EXPECT_EQ(run.find_layer("L01")->kernel_count, 1);

    // Groups come out ordered by first start.
    ASSERT_GE(run.ops.size(), 2u);
    for (std::size_t i = 1; i < run.ops.size(); ++i) {
        EXPECT_LE(run.ops[i - 1].start_us, run.ops[i].start_us);
    }
}

TEST(ProfilerTest, CarvePrefixMatchingNothingIsAllZero)
{
    const PhaseStats none = carve_prefix(
        layered_result(), sim::DeviceSpec::a100(), "does-not-exist");
    EXPECT_EQ(none.kernel_count, 0);
    EXPECT_EQ(none.span_us, 0.0);
    EXPECT_EQ(none.busy_us, 0.0);
    EXPECT_EQ(none.overlap, 0.0);
    EXPECT_EQ(none.achieved_occupancy, 0.0);
    EXPECT_EQ(none.dram_bytes(), 0.0);
}

TEST(ProfilerTest, CarveZeroDurationKernel)
{
    sim::SimResult r;
    r.kernels.push_back(make_kernel("ew.noop", 0, 5, 5, 0.0));
    r.total_us = 5;
    const PhaseStats p =
        carve_prefix(r, sim::DeviceSpec::a100(), "ew.noop");
    EXPECT_EQ(p.kernel_count, 1);
    EXPECT_EQ(p.span_us, 0.0);
    EXPECT_EQ(p.busy_us, 0.0);
    // Utilizations over a zero span must not blow up to inf/nan.
    EXPECT_TRUE(std::isfinite(p.overlap));
    EXPECT_TRUE(std::isfinite(p.tensor_util));
    EXPECT_TRUE(std::isfinite(p.dram_util));
    EXPECT_TRUE(std::isfinite(p.achieved_occupancy));
}

TEST(ProfilerTest, AchievedOccupancyStaysInUnitRange)
{
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());
    for (const auto *groups : {&run.ops, &run.subphases, &run.layers}) {
        for (const PhaseStats &p : *groups) {
            EXPECT_GE(p.achieved_occupancy, 0.0) << p.name;
            EXPECT_LE(p.achieved_occupancy, 1.0) << p.name;
        }
    }
}

TEST(ProfilerTest, MetricRegistryCoversPhaseStats)
{
    const std::vector<MetricDef> &registry = phase_metric_registry();
    ASSERT_FALSE(registry.empty());
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());
    ASSERT_NE(run.find_op("sddmm"), nullptr);
    const PhaseStats &sddmm = *run.find_op("sddmm");
    bool saw_span = false;
    for (const MetricDef &m : registry) {
        ASSERT_NE(m.key, nullptr);
        ASSERT_NE(m.get, nullptr);
        const double v = m.get(sddmm);
        EXPECT_TRUE(std::isfinite(v)) << m.key;
        if (std::string(m.key) == "span_us") {
            saw_span = true;
            EXPECT_DOUBLE_EQ(v, 10.0);
        }
    }
    EXPECT_TRUE(saw_span);
}

// ------------------------------------------------------------- export ----

TEST(ProfilerTest, SchemaVersionIsPinned)
{
    // Bumping the version is a deliberate act: update this test and the
    // docs/profiling.md schema section together.
    EXPECT_EQ(kSchemaVersion, 1);
    EXPECT_STREQ(kSimResultSchema, "mgprof.simresult");
    EXPECT_STREQ(kReportSchema, "mgprof.report");
    EXPECT_STREQ(kProfileSchema, "mgprof.profile");
    EXPECT_STREQ(kBenchSchema, "mgprof.bench");
    // Bench v2 added the RunManifest header (docs/benchmarking.md).
    EXPECT_EQ(kBenchSchemaVersion, 2);
    EXPECT_STREQ(kRegressionSchema, "mgperf.report");
    EXPECT_EQ(kRegressionSchemaVersion, 1);
}

TEST(ProfilerTest, SimResultJsonRoundTrip)
{
    sim::SimResult original = layered_result();
    original.kernels[2].deps = {0, 1};

    const std::string text = to_json(original);
    const JsonValue doc = json_parse(text);
    EXPECT_EQ(doc.at("schema").as_string(), kSimResultSchema);
    EXPECT_EQ(doc.at("schema_version").as_number(), kSchemaVersion);

    const sim::SimResult back = sim_result_from_json(text);
    EXPECT_DOUBLE_EQ(back.total_us, original.total_us);
    ASSERT_EQ(back.kernels.size(), original.kernels.size());
    for (std::size_t i = 0; i < back.kernels.size(); ++i) {
        const sim::KernelStats &a = original.kernels[i];
        const sim::KernelStats &b = back.kernels[i];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.stream, a.stream);
        EXPECT_EQ(b.num_tbs, a.num_tbs);
        EXPECT_EQ(b.occupancy_per_sm, a.occupancy_per_sm);
        EXPECT_DOUBLE_EQ(b.start_us, a.start_us);
        EXPECT_DOUBLE_EQ(b.end_us, a.end_us);
        EXPECT_DOUBLE_EQ(b.work.cuda_flops, a.work.cuda_flops);
        EXPECT_DOUBLE_EQ(b.work.dram_read_bytes, a.work.dram_read_bytes);
        EXPECT_DOUBLE_EQ(b.avg_concurrency, a.avg_concurrency);
        EXPECT_EQ(b.deps, a.deps);
    }
    EXPECT_DOUBLE_EQ(back.work.dram_bytes(), original.work.dram_bytes());
}

TEST(ProfilerTest, EmptySimResultRoundTrips)
{
    const sim::SimResult empty;
    const sim::SimResult back = sim_result_from_json(to_json(empty));
    EXPECT_EQ(back.kernels.size(), 0u);
    EXPECT_DOUBLE_EQ(back.total_us, 0.0);
}

TEST(ProfilerTest, SimResultFromJsonRejectsWrongSchema)
{
    EXPECT_THROW(sim_result_from_json(std::string("{}")), Error);
    EXPECT_THROW(
        sim_result_from_json(std::string(
            "{\"schema\": \"mgprof.profile\", \"schema_version\": 1}")),
        Error);
    EXPECT_THROW(
        sim_result_from_json(std::string(
            "{\"schema\": \"mgprof.simresult\", \"schema_version\": 999}")),
        Error);
}

TEST(ProfilerTest, ProfileJsonIsValidAndCarriesPhases)
{
    reset_host_timers();
    add_host_timer_sample("offline.slice_and_dice", 42.0);
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());

    const JsonValue doc = json_parse(to_json(run));
    EXPECT_EQ(doc.at("schema").as_string(), kProfileSchema);
    EXPECT_EQ(doc.at("device").as_string(), "A100");
    ASSERT_TRUE(doc.at("ops").is_array());
    ASSERT_FALSE(doc.at("ops").array.empty());

    bool found_sddmm = false;
    for (const JsonValue &phase : doc.at("ops").array) {
        if (phase.at("name").as_string() == "sddmm") {
            found_sddmm = true;
            EXPECT_DOUBLE_EQ(phase.at("span_us").as_number(), 10.0);
            EXPECT_DOUBLE_EQ(phase.at("overlap").as_number(), 1.8);
            EXPECT_FALSE(phase.at("bound").as_string().empty());
        }
    }
    EXPECT_TRUE(found_sddmm);

    // The host timers captured at profile() time ride along.
    ASSERT_TRUE(doc.at("host_timers").is_array());
    ASSERT_EQ(doc.at("host_timers").array.size(), 1u);
    EXPECT_EQ(doc.at("host_timers").array[0].at("name").as_string(),
              "offline.slice_and_dice");
    reset_host_timers();
}

TEST(ProfilerTest, ReportJsonParses)
{
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());
    const JsonValue doc = json_parse(to_json(run.report));
    EXPECT_EQ(doc.at("schema").as_string(), kReportSchema);
    ASSERT_TRUE(doc.at("kernels").is_array());
    EXPECT_EQ(doc.at("kernels").array.size(), 6u);
}

TEST(ProfilerTest, PhaseCsvHasRegistryColumnsAndAllGroups)
{
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());
    std::ostringstream os;
    write_phase_csv(run, os);
    std::istringstream lines(os.str());
    std::string header;
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, header)));
    EXPECT_EQ(header.rfind("group,name,", 0), 0u) << header;
    for (const MetricDef &m : phase_metric_registry()) {
        EXPECT_NE(header.find(m.key), std::string::npos) << m.key;
    }
    std::size_t rows = 0;
    std::string line;
    bool saw_layer_group = false;
    while (std::getline(lines, line)) {
        if (!line.empty()) {
            ++rows;
            saw_layer_group |= line.rfind("layer,", 0) == 0;
        }
    }
    EXPECT_EQ(rows,
              run.ops.size() + run.subphases.size() + run.layers.size());
    EXPECT_TRUE(saw_layer_group);
}

TEST(ProfilerTest, KernelCsvHasOneRowPerKernel)
{
    const ProfiledRun run =
        profile(layered_result(), sim::DeviceSpec::a100());
    std::ostringstream os;
    write_kernel_csv(run.report, os);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        if (!line.empty()) {
            ++rows;
        }
    }
    EXPECT_EQ(rows, 1u + 6u);  // Header + one per kernel.
}

TEST(ProfilerTest, ProfileOfEmptyResultIsEmptyButValid)
{
    const ProfiledRun run = profile(sim::SimResult{},
                                    sim::DeviceSpec::rtx3090(),
                                    {0.6, /*include_host_timers=*/false});
    EXPECT_TRUE(run.ops.empty());
    EXPECT_TRUE(run.subphases.empty());
    EXPECT_TRUE(run.layers.empty());
    EXPECT_TRUE(run.host_timers.empty());
    const JsonValue doc = json_parse(to_json(run));
    EXPECT_EQ(doc.at("schema").as_string(), kProfileSchema);
    EXPECT_TRUE(doc.at("ops").array.empty());
}

// Kernels named outside the convention still carve cleanly: the leading
// segment becomes their op group and no layer group is invented.
TEST(ProfilerTest, UnconventionalNamesFormTheirOwnGroups)
{
    sim::SimResult r;
    r.kernels.push_back(make_kernel("warmup", 0, 0, 1));
    r.kernels.push_back(make_kernel("chunk.copy", 0, 1, 2));
    r.total_us = 2;
    const ProfiledRun run = profile(r, sim::DeviceSpec::a100());
    EXPECT_EQ(run.find_op("sddmm"), nullptr);
    ASSERT_NE(run.find_op("warmup"), nullptr);
    ASSERT_NE(run.find_op("chunk"), nullptr);
    EXPECT_NE(run.find_subphase("chunk.copy"), nullptr);
    EXPECT_TRUE(run.layers.empty());
}

}  // namespace
}  // namespace multigrain::prof
