// Longformer-large inference on a HotpotQA-style input: the paper's §5.1
// headline scenario. Draws a synthetic multi-hop-QA sample (question tokens
// get global attention, paragraph separators are selected), builds the
// model's compound pattern, and simulates one full forward pass under all
// three processing methods on both evaluation GPUs, with a per-phase
// breakdown for Multigrain.
//
//   $ ./longformer_inference [seed] [trace.json]
//
// With a second argument, the A100 Multigrain timeline is written as a
// Chrome trace (open in chrome://tracing or ui.perfetto.dev) — the
// coarse ∥ fine ∥ global multi-stream overlap is directly visible there.

#include <cstdio>
#include <cstdlib>

#include "gpusim/device.h"
#include "gpusim/trace.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

using namespace multigrain;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;

    const ModelConfig model = ModelConfig::longformer_large();
    Rng rng(seed);
    const WorkloadSample sample = sample_hotpotqa(rng, model);
    std::printf("model: %s (%lld layers, d=%lld, %lld heads, L=%lld)\n",
                model.name.c_str(),
                static_cast<long long>(model.num_layers),
                static_cast<long long>(model.d_model),
                static_cast<long long>(model.num_heads),
                static_cast<long long>(model.max_seq_len));
    std::printf("input: %lld real tokens, %zu special (global) tokens\n\n",
                static_cast<long long>(sample.valid_len),
                sample.special_tokens.size());

    for (const sim::DeviceSpec &device :
         {sim::DeviceSpec::a100(), sim::DeviceSpec::rtx3090()}) {
        std::printf("== %s ==\n", device.name.c_str());
        double mg_total = 0;
        for (const SliceMode mode :
             {SliceMode::kCoarseOnly, SliceMode::kFineOnly,
              SliceMode::kMultigrain}) {
            const TransformerRunner runner(model, mode, sample, /*batch=*/1);
            const EndToEndResult r = runner.simulate(device);
            if (mode == SliceMode::kMultigrain) {
                mg_total = r.total_us;
            }
            std::printf("  %-12s total %8.2f ms   attention %7.2f ms   "
                        "DRAM %6.2f GB%s\n",
                        to_string(mode), r.total_us / 1000.0,
                        r.attention_us / 1000.0, r.dram_bytes / 1e9,
                        mg_total > 0 && mode != SliceMode::kMultigrain
                            ? ""
                            : "");
        }

        // Per-phase view of Multigrain's first layer: the coarse, fine and
        // global parts of SDDMM/SpMM run concurrently on separate streams.
        const TransformerRunner runner(model, SliceMode::kMultigrain,
                                       sample, 1);
        const EndToEndResult r = runner.simulate(device);
        if (argc > 2 && device.name == "A100") {
            sim::write_chrome_trace_file(r.sim, argv[2]);
            std::printf("  wrote Chrome trace to %s\n", argv[2]);
        }
        std::printf("  layer 0 Multigrain attention kernels:\n");
        for (const auto &k : r.sim.kernels) {
            if (k.name.rfind("L00.attn.", 0) == 0) {
                std::printf("    %-28s stream %d  [%9.1f, %9.1f] us  "
                            "(%lld TBs)\n",
                            k.name.c_str(), k.stream, k.start_us, k.end_us,
                            static_cast<long long>(k.num_tbs));
            }
        }
    }
    return 0;
}
