// Layout inspector: build, persist, reload, and analyze sparse attention
// metadata — the §3.1 offline metadata workflow as a utility.
//
//   $ ./layout_inspector save <file> <seq_len> [valid_len [n_special]]
//       Builds a Longformer-style compound pattern, slices it, and writes
//       the full CSR layout and the coarse BSR layout to <file> and
//       <file>.bsr.
//   $ ./layout_inspector load <file>
//       Reloads a CSR layout, validates it, and prints its analytics.
//
// Default (no arguments): a self-contained round-trip demo in /tmp.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "formats/serialize.h"
#include "patterns/presets.h"
#include "patterns/slice.h"
#include "patterns/stats.h"

using namespace multigrain;

namespace {

CompoundPattern
demo_pattern(index_t seq, index_t valid, index_t n_special)
{
    CompoundPattern p;
    p.seq_len = seq;
    p.valid_len = valid;
    p.atoms.push_back(AtomicPattern::local(seq / 16));
    const auto tokens = burst_tokens(valid > 0 ? valid : seq, n_special, 4,
                                     /*seed=*/7);
    p.atoms.push_back(AtomicPattern::selected(tokens));
    p.atoms.push_back(AtomicPattern::global(tokens));
    return p;
}

int
save(const std::string &path, index_t seq, index_t valid, index_t n_special)
{
    const CompoundPattern pattern = demo_pattern(seq, valid, n_special);
    const SlicePlan plan = slice_and_dice(pattern, {.block = 64});
    {
        std::ofstream os(path, std::ios::binary);
        write_layout(*plan.full, os);
    }
    {
        std::ofstream os(path + ".bsr", std::ios::binary);
        write_layout(*plan.coarse, os);
    }
    std::printf("wrote %s (CSR, %lld nnz) and %s.bsr (BSR, %lld blocks)\n",
                path.c_str(), static_cast<long long>(plan.full->nnz()),
                path.c_str(),
                static_cast<long long>(plan.coarse->nnz_blocks()));
    return 0;
}

int
load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    const CsrLayout layout = read_csr_layout(is);
    std::printf("loaded %s: %lld x %lld, %lld nnz, max row %lld\n",
                path.c_str(), static_cast<long long>(layout.rows),
                static_cast<long long>(layout.cols),
                static_cast<long long>(layout.nnz()),
                static_cast<long long>(layout.max_row_nnz()));
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc >= 3 && std::string(argv[1]) == "save") {
        const index_t seq =
            argc > 3 ? std::strtoll(argv[3], nullptr, 10) : 2048;
        const index_t valid =
            argc > 4 ? std::strtoll(argv[4], nullptr, 10) : seq;
        const index_t n_special =
            argc > 5 ? std::strtoll(argv[5], nullptr, 10) : 32;
        return save(argv[2], seq, valid, n_special);
    }
    if (argc >= 3 && std::string(argv[1]) == "load") {
        return load(argv[2]);
    }

    // Demo: save, reload, verify, analyze.
    const std::string path = "/tmp/multigrain_demo_layout.bin";
    const CompoundPattern pattern = demo_pattern(2048, 1800, 40);
    if (save(path, 2048, 1800, 40) != 0 || load(path) != 0) {
        return 1;
    }
    const PatternStats stats = analyze_pattern(pattern, 64);
    std::printf("analytics: %s\n", stats.summarize().c_str());
    std::printf("round trip OK — metadata can be generated offline and\n"
                "memory-mapped at inference time (paper §3.1 step 2).\n");
    return 0;
}
