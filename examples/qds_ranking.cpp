// QDS-Transformer document ranking, the paper's second end-to-end scenario
// (MS MARCO, §4). Two parts:
//
//  1. A *functional* mini-ranker: a small QDS-style sparse transformer
//    scores a query against a handful of synthetic documents (CLS-vector
//    dot products) with Multigrain attention, and we verify the fine-only
//    baseline produces the same ranking — the methods are numerically
//    interchangeable.
//  2. A *performance* view: the full QDS-Transformer-base reranking cost
//    per document on the A100 model under the three processing methods
//    (the paper's Fig. 7 QDS columns: Multigrain ~1.55x over Triton and
//    ~1.08x over Sputnik).
//
//   $ ./qds_ranking

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/attention.h"
#include "gpusim/device.h"
#include "transformer/config.h"
#include "transformer/layer.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

using namespace multigrain;

namespace {

/// CLS-vector score of one (query, document) pair under a tiny QDS-style
/// model with the given attention method.
float
score_document(const ModelConfig &config,
               const std::vector<LayerWeights> &weights,
               const HalfMatrix &embedded, const WorkloadSample &sample,
               SliceMode mode)
{
    AttentionConfig ac;
    ac.head_dim = config.head_dim();
    ac.num_heads = config.num_heads;
    ac.block = config.block;
    const AttentionEngine engine(build_model_pattern(config, sample), ac,
                                 mode);
    const HalfMatrix out = model_forward(config, engine, weights, embedded);
    // Relevance = fixed random readout of the CLS row (row 0), a stand-in
    // for the usual scoring head. (A plain mean would be ~0: the last op
    // is a LayerNorm.)
    Rng readout(99);
    float score = 0;
    for (index_t d = 0; d < out.cols(); ++d) {
        score += float(out.at(0, d)) * readout.next_float(-1.0f, 1.0f);
    }
    return score / static_cast<float>(out.cols());
}

}  // namespace

int
main()
{
    // ---- Part 1: functional mini-ranker. --------------------------------
    ModelConfig tiny = ModelConfig::tiny_test();
    tiny.has_global_rows = false;  // QDS style: local + selected only.
    Rng rng(11);
    std::vector<LayerWeights> weights;
    for (index_t i = 0; i < tiny.num_layers; ++i) {
        weights.push_back(LayerWeights::random(rng, tiny));
    }

    const int kDocs = 5;
    std::printf("scoring %d synthetic documents with a tiny QDS-style "
                "ranker:\n", kDocs);
    std::vector<std::pair<float, int>> ranking_mg, ranking_fine;
    for (int doc = 0; doc < kDocs; ++doc) {
        WorkloadSample sample = sample_msmarco(rng, tiny);
        const HalfMatrix embedded = random_half_matrix(
            rng, tiny.max_seq_len, tiny.d_model, -0.5f, 0.5f);
        const float s_mg = score_document(tiny, weights, embedded, sample,
                                          SliceMode::kMultigrain);
        const float s_fine = score_document(tiny, weights, embedded, sample,
                                            SliceMode::kFineOnly);
        ranking_mg.push_back({s_mg, doc});
        ranking_fine.push_back({s_fine, doc});
        std::printf("  doc %d (len %4lld): multigrain %+0.4f   "
                    "fine-only %+0.4f\n",
                    doc, static_cast<long long>(sample.valid_len), s_mg,
                    s_fine);
    }
    std::sort(ranking_mg.rbegin(), ranking_mg.rend());
    std::sort(ranking_fine.rbegin(), ranking_fine.rend());
    bool same_order = true;
    std::printf("ranking (multigrain): ");
    for (const auto &[score, doc] : ranking_mg) {
        std::printf("doc%d ", doc);
    }
    for (std::size_t i = 0; i < ranking_mg.size(); ++i) {
        same_order &= ranking_mg[i].second == ranking_fine[i].second;
    }
    std::printf("\nranking matches fine-only baseline: %s\n\n",
                same_order ? "yes" : "NO (fp16 tie?)");

    // ---- Part 2: full-size reranking cost. ------------------------------
    const ModelConfig qds = ModelConfig::qds_base();
    Rng wl(3);
    const WorkloadSample sample = sample_msmarco(wl, qds);
    std::printf("%s per-document inference on A100 (L=%lld, doc %lld "
                "tokens, %zu selected):\n",
                qds.name.c_str(), static_cast<long long>(qds.max_seq_len),
                static_cast<long long>(sample.valid_len),
                sample.special_tokens.size());
    double mg = 0;
    for (const SliceMode mode :
         {SliceMode::kCoarseOnly, SliceMode::kFineOnly,
          SliceMode::kMultigrain}) {
        const TransformerRunner runner(qds, mode, sample, 1);
        const EndToEndResult r = runner.simulate(sim::DeviceSpec::a100());
        if (mode == SliceMode::kMultigrain) {
            mg = r.total_us;
            std::printf("  %-12s %8.2f ms\n", to_string(mode),
                        r.total_us / 1000.0);
        } else {
            std::printf("  %-12s %8.2f ms\n", to_string(mode),
                        r.total_us / 1000.0);
        }
    }
    std::printf("reranking 1000 candidates with Multigrain: %.1f s of "
                "A100 time\n", mg * 1000 / 1e6);
    return 0;
}
