// Pattern explorer: a small CLI for studying how the slice-and-dice
// classifier decomposes a compound pattern and what each processing method
// would pay for it on the simulated GPUs.
//
//   $ ./pattern_explorer [seq_len] [atoms...]
//
// Atom syntax (repeatable):
//   local:W            local band, one-sided reach W
//   dilated:W:S        dilated, W strides of S each side
//   global:N           N evenly spread global tokens
//   selected:N         N evenly spread selected tokens
//   random:C           ~C random columns per row
//   blockedlocal:W     dense 64-blocks, band radius W
//   blockedrandom:C    ~C random dense 64-blocks per block row
//
// Example:
//   $ ./pattern_explorer 4096 local:256 selected:40 global:40

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/attention.h"
#include "core/planner.h"
#include "gpusim/device.h"
#include "patterns/presets.h"
#include "patterns/stats.h"

using namespace multigrain;

namespace {

bool
parse_atom(const std::string &spec, index_t seq_len,
           std::vector<AtomicPattern> &atoms)
{
    const auto num = [&spec](std::size_t pos) {
        return static_cast<index_t>(
            std::strtoll(spec.c_str() + pos, nullptr, 10));
    };
    if (spec.rfind("local:", 0) == 0) {
        atoms.push_back(AtomicPattern::local(num(6)));
    } else if (spec.rfind("dilated:", 0) == 0) {
        const std::size_t colon = spec.find(':', 8);
        if (colon == std::string::npos) {
            return false;
        }
        atoms.push_back(AtomicPattern::dilated(num(8), num(colon + 1)));
    } else if (spec.rfind("global:", 0) == 0) {
        atoms.push_back(
            AtomicPattern::global(spread_tokens(seq_len, num(7), 1)));
    } else if (spec.rfind("selected:", 0) == 0) {
        atoms.push_back(
            AtomicPattern::selected(spread_tokens(seq_len, num(9), 2)));
    } else if (spec.rfind("random:", 0) == 0) {
        atoms.push_back(AtomicPattern::random(num(7), 3));
    } else if (spec.rfind("blockedlocal:", 0) == 0) {
        atoms.push_back(AtomicPattern::blocked_local(64, num(13)));
    } else if (spec.rfind("blockedrandom:", 0) == 0) {
        atoms.push_back(AtomicPattern::blocked_random(64, num(14), 4));
    } else {
        return false;
    }
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    CompoundPattern pattern;
    pattern.seq_len = argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 2048;
    for (int i = 2; i < argc; ++i) {
        if (!parse_atom(argv[i], pattern.seq_len, pattern.atoms)) {
            std::fprintf(stderr, "cannot parse atom '%s'\n", argv[i]);
            return 1;
        }
    }
    if (pattern.atoms.empty()) {
        // Default: a Longformer-flavored compound pattern.
        pattern.atoms.push_back(AtomicPattern::local(128));
        pattern.atoms.push_back(
            AtomicPattern::selected(spread_tokens(pattern.seq_len, 32, 2)));
        pattern.atoms.push_back(
            AtomicPattern::global(spread_tokens(pattern.seq_len, 32, 2)));
    }
    std::printf("pattern: %s\n\n", pattern.describe().c_str());

    AttentionConfig config;
    config.head_dim = 64;
    config.num_heads = 4;
    config.block = 64;

    std::printf("%-14s %12s %12s %12s %12s | %10s %10s\n", "method",
                "coarse nnz", "stored", "fine nnz", "global elems",
                "A100 us", "3090 us");
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        const AttentionEngine engine(pattern, config, mode);
        const SlicePlan &plan = engine.plan();
        const double a100 =
            engine.simulate(sim::DeviceSpec::a100()).total_us;
        const double rtx =
            engine.simulate(sim::DeviceSpec::rtx3090()).total_us;
        std::printf("%-14s %12lld %12lld %12lld %12lld | %10.1f %10.1f\n",
                    to_string(mode),
                    static_cast<long long>(plan.coarse_valid_elements()),
                    static_cast<long long>(plan.coarse_stored_elements()),
                    static_cast<long long>(plan.fine_elements()),
                    static_cast<long long>(plan.special_elements()), a100,
                    rtx);
    }

    const AttentionEngine mg(pattern, config, SliceMode::kMultigrain);
    const SlicePlan &plan = mg.plan();
    std::printf("\nslice & dice (multigrain):\n");
    if (plan.has_coarse()) {
        std::printf("  coarse: %lld stored blocks of %lldx%lld "
                    "(%.1f%% of stored positions are valid)\n",
                    static_cast<long long>(plan.coarse->nnz_blocks()),
                    static_cast<long long>(plan.block),
                    static_cast<long long>(plan.block),
                    100.0 * static_cast<double>(plan.coarse->total_valid()) /
                        static_cast<double>(plan.coarse->total_stored()));
    }
    if (plan.has_fine()) {
        std::printf("  fine:   %lld elements, max %lld per row\n",
                    static_cast<long long>(plan.fine->nnz()),
                    static_cast<long long>(plan.fine->max_row_nnz()));
    }
    if (plan.has_special()) {
        std::printf("  global: %zu dense rows -> CUTLASS/TensorRT path\n",
                    plan.global_rows.size());
    }
    plan.validate_partition();
    std::printf("  partition check: coarse ⊎ fine ⊎ global == full "
                "pattern ✓\n");

    const PatternStats stats = analyze_pattern(pattern, config.block);
    std::printf("\nanalytics: %s\n", stats.summarize().c_str());

    const PlanDecision decision =
        plan_attention(pattern, config, sim::DeviceSpec::a100());
    std::printf("\nauto-planner (A100) recommends: %s\n",
                decision.best.describe().c_str());
    for (const PlanCandidate &c : decision.candidates) {
        std::printf("  candidate %s\n", c.describe().c_str());
    }
    return 0;
}
