// Training-step demo: the backward pass extension. Two parts:
//
//  1. Functional gradient check: a Multigrain attention backward on a
//     compound pattern against the FP64 analytic reference.
//  2. Performance: one full forward+backward training step of
//     QDS-Transformer-base on the A100 model under the three processing
//     methods — showing the slice-and-dice advantage carries to training,
//     where every sparse op appears again (transposed) in the backward.
//
//   $ ./training_step

#include <cstdio>

#include "core/attention.h"
#include "gpusim/device.h"
#include "kernels/reference.h"
#include "patterns/presets.h"
#include "transformer/config.h"
#include "transformer/runner.h"
#include "transformer/workload.h"

using namespace multigrain;

int
main()
{
    // ---- Part 1: gradient check. ----------------------------------------
    const index_t seq = 128, dh = 32;
    CompoundPattern pattern;
    pattern.seq_len = seq;
    pattern.atoms.push_back(AtomicPattern::local(8));
    pattern.atoms.push_back(AtomicPattern::selected({0, 64}));
    pattern.atoms.push_back(AtomicPattern::global({0}));

    AttentionConfig config;
    config.head_dim = dh;
    config.block = 32;
    const AttentionEngine engine(pattern, config, SliceMode::kMultigrain);

    Rng rng(5);
    const HalfMatrix q = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix k = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix v = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);
    const HalfMatrix d_out = random_half_matrix(rng, seq, dh, -0.5f, 0.5f);

    const AttentionEngine::Grads grads = engine.run_backward(q, k, v, d_out);
    const kernels::RefAttentionGrads ref = kernels::ref_attention_backward(
        q, k, v, *engine.plan().full, config.effective_scale(),
        widen(d_out));
    std::printf("gradient check vs FP64 reference (max abs err):\n");
    std::printf("  dQ %.5f   dK %.5f   dV %.5f\n",
                kernels::max_abs_diff(widen(grads.dq), ref.dq),
                kernels::max_abs_diff(widen(grads.dk), ref.dk),
                kernels::max_abs_diff(widen(grads.dv), ref.dv));

    // ---- Part 2: training-step timing. ----------------------------------
    const ModelConfig model = ModelConfig::qds_base();
    Rng wl(3);
    const WorkloadSample sample = sample_for_model(wl, model);
    std::printf("\n%s training step on A100 (batch 4):\n",
                model.name.c_str());
    for (const SliceMode mode :
         {SliceMode::kCoarseOnly, SliceMode::kFineOnly,
          SliceMode::kMultigrain}) {
        const TransformerRunner runner(model, mode, sample, 4);
        const EndToEndResult fwd = runner.simulate(sim::DeviceSpec::a100());
        const EndToEndResult step =
            runner.simulate_training(sim::DeviceSpec::a100());
        std::printf("  %-12s forward %8.2f ms   fwd+bwd %8.2f ms "
                    "(attention %6.2f ms)\n",
                    to_string(mode), fwd.total_us / 1000.0,
                    step.total_us / 1000.0, step.attention_us / 1000.0);
    }
    return 0;
}
