// Quickstart: build a compound sparse attention pattern, slice and dice it,
// run the functional attention on all three processing methods, check the
// outputs against the FP64 dense reference, and compare simulated GPU time.
//
//   $ ./quickstart
//
// This is the five-minute tour of the library; see longformer_inference and
// qds_ranking for full-model scenarios.

#include <cstdio>

#include "core/attention.h"
#include "gpusim/device.h"
#include "kernels/reference.h"
#include "patterns/pattern.h"

using namespace multigrain;

int
main()
{
    // 1. A compound sparse pattern: a +-32 local band, two "selected"
    //    columns every row attends to, one global token that attends to
    //    everything, and ~8 random columns per row.
    CompoundPattern pattern;
    pattern.seq_len = 512;
    pattern.atoms.push_back(AtomicPattern::local(32));
    pattern.atoms.push_back(AtomicPattern::selected({0, 256}));
    pattern.atoms.push_back(AtomicPattern::global({0}));
    pattern.atoms.push_back(AtomicPattern::random(8, /*seed=*/42));
    std::printf("pattern: %s\n", pattern.describe().c_str());

    // 2. Random FP16 Q/K/V for a single 64-dim head.
    AttentionConfig config;
    config.head_dim = 64;
    config.block = 64;
    Rng rng(7);
    const HalfMatrix q =
        random_half_matrix(rng, pattern.seq_len, config.head_dim);
    const HalfMatrix k =
        random_half_matrix(rng, pattern.seq_len, config.head_dim);
    const HalfMatrix v =
        random_half_matrix(rng, pattern.seq_len, config.head_dim);

    // 3. One engine per processing method. kMultigrain slices the pattern
    //    into a coarse BSR part, a fine CSR part, and dense global rows;
    //    the baselines force everything through one granularity.
    std::printf("\n%-14s %10s %10s %12s %14s\n", "method", "coarse",
                "fine", "global rows", "sim time (us)");
    for (const SliceMode mode :
         {SliceMode::kMultigrain, SliceMode::kCoarseOnly,
          SliceMode::kFineOnly}) {
        const AttentionEngine engine(pattern, config, mode);

        // Functional result, validated against the FP64 dense reference.
        const HalfMatrix out = engine.run(q, k, v);
        const DoubleMatrix ref = kernels::ref_attention(
            q, k, v, *engine.plan().full, config.effective_scale());
        const double err = kernels::max_abs_diff(widen(out), ref);
        if (err > 0.05) {
            std::printf("method %s diverged from the reference: %g\n",
                        to_string(mode), err);
            return 1;
        }

        // Simulated execution on the paper's A100 model.
        const sim::SimResult sim = engine.simulate(sim::DeviceSpec::a100());
        std::printf("%-14s %10lld %10lld %12zu %14.1f   (max err %.4f)\n",
                    to_string(mode),
                    static_cast<long long>(
                        engine.plan().coarse_valid_elements()),
                    static_cast<long long>(engine.plan().fine_elements()),
                    engine.plan().global_rows.size(), sim.total_us, err);
    }

    const AttentionEngine reference_engine(pattern, config,
                                           SliceMode::kMultigrain);
    std::printf("\nAll three methods attend the same %lld positions and "
                "agree with the dense reference.\n",
                static_cast<long long>(reference_engine.plan().full->nnz()));
    return 0;
}
