#include "formats/csr.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain {

index_t
CsrLayout::max_row_nnz() const
{
    index_t best = 0;
    for (index_t r = 0; r < rows; ++r) {
        best = std::max(best, row_nnz(r));
    }
    return best;
}

void
CsrLayout::validate() const
{
    MG_CHECK(rows >= 0 && cols >= 0)
        << "CSR dims must be non-negative: " << rows << "x" << cols;
    MG_CHECK(static_cast<index_t>(row_offsets.size()) == rows + 1)
        << "CSR row_offsets must have rows+1 entries, got "
        << row_offsets.size() << " for " << rows << " rows";
    MG_CHECK(row_offsets.front() == 0) << "CSR row_offsets must start at 0";
    for (index_t r = 0; r < rows; ++r) {
        const index_t begin = row_offsets[static_cast<std::size_t>(r)];
        const index_t end = row_offsets[static_cast<std::size_t>(r + 1)];
        MG_CHECK(begin <= end)
            << "CSR row_offsets must be non-decreasing at row " << r;
        for (index_t i = begin; i < end; ++i) {
            const index_t c = col_indices[static_cast<std::size_t>(i)];
            MG_CHECK(c >= 0 && c < cols)
                << "CSR column index " << c << " out of range [0, " << cols
                << ") at row " << r;
            if (i > begin) {
                MG_CHECK(col_indices[static_cast<std::size_t>(i - 1)] < c)
                    << "CSR column indices must be strictly ascending in row "
                    << r;
            }
        }
    }
    MG_CHECK(static_cast<index_t>(col_indices.size()) == nnz())
        << "CSR col_indices size " << col_indices.size()
        << " does not match nnz " << nnz();
}

}  // namespace multigrain
