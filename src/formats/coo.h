#ifndef MULTIGRAIN_FORMATS_COO_H_
#define MULTIGRAIN_FORMATS_COO_H_

#include <vector>

#include "common/util.h"

/// Coordinate format: an explicit (row, col) pair per nonzero, sorted
/// row-major. COO is the interchange format between pattern builders and
/// the compressed formats, and the paper lists it among the element-wise
/// fine-grained formats (§2.4).
namespace multigrain {

struct CooLayout {
    index_t rows = 0;
    index_t cols = 0;
    struct Entry {
        index_t row;
        index_t col;
        friend bool operator==(const Entry &, const Entry &) = default;
    };
    /// Sorted by (row, col), no duplicates.
    std::vector<Entry> entries;

    index_t nnz() const { return static_cast<index_t>(entries.size()); }

    /// Sorts entries row-major and removes duplicates. Builders call this
    /// after unioning atomic patterns, which may overlap freely.
    void normalize();

    /// Throws Error on out-of-range coordinates, unsorted order, or dups.
    void validate() const;
};

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_COO_H_
