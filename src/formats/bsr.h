#ifndef MULTIGRAIN_FORMATS_BSR_H_
#define MULTIGRAIN_FORMATS_BSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/half.h"
#include "common/util.h"

/// Block compressed sparse row — the blocked ("coarse-grained") format used
/// by Multigrain's coarse kernels (paper §3.2). The matrix is divided into
/// uniform block x block tiles; a tile with at least one valid element is
/// stored densely.
///
/// Because coarse patterns such as the local band only partially cover
/// their edge blocks (and overlap invalidation can carve out elements that
/// the fine part owns), each stored block carries a validity bitmap. The
/// bitmap *is* the paper's mask matrix for the coarse part: valid elements
/// read as 0 in the additive mask, invalid ones as -inf (§3.3).
namespace multigrain {

struct BsrLayout {
    index_t rows = 0;
    index_t cols = 0;
    index_t block = 0;
    /// block_rows+1 entries; block-row br owns blocks
    /// [row_offsets[br], row_offsets[br+1]).
    std::vector<index_t> row_offsets;
    /// Block-column index per stored block, ascending within a block row.
    std::vector<index_t> col_indices;
    /// Validity bitmaps, words_per_block() words per stored block. Bit
    /// (r * block + c) marks element (r, c) inside the block valid. Empty
    /// means "every element of every block is valid".
    std::vector<std::uint64_t> valid_bits;

    index_t block_rows() const { return ceil_div(rows, block); }
    index_t block_cols() const { return ceil_div(cols, block); }
    index_t nnz_blocks() const
    {
        return row_offsets.empty() ? 0 : row_offsets.back();
    }
    index_t row_nnz_blocks(index_t br) const
    {
        return row_offsets[static_cast<std::size_t>(br + 1)] -
               row_offsets[static_cast<std::size_t>(br)];
    }
    index_t elements_per_block() const { return block * block; }
    index_t words_per_block() const
    {
        return ceil_div<index_t>(block * block, 64);
    }
    bool has_valid_bits() const { return !valid_bits.empty(); }

    /// True if element (r, c) of stored block `b` is valid.
    bool element_valid(index_t b, index_t r, index_t c) const
    {
        if (valid_bits.empty()) {
            return true;
        }
        const index_t bit = r * block + c;
        const std::size_t word =
            static_cast<std::size_t>(b * words_per_block() + bit / 64);
        return (valid_bits[word] >> (bit % 64)) & 1u;
    }

    /// Number of valid elements in stored block `b`.
    index_t block_valid_count(index_t b) const;
    /// Total valid elements across all stored blocks.
    index_t total_valid() const;
    /// Total stored elements (valid + padding): nnz_blocks * block^2.
    index_t total_stored() const { return nnz_blocks() * block * block; }

    /// Throws Error on malformed offsets/indices or bitmap size mismatch.
    void validate() const;
};

/// A BSR matrix with FP16 values. Blocks are stored contiguously in the
/// order of col_indices; each block is row-major block x block.
struct BsrMatrix {
    std::shared_ptr<const BsrLayout> layout;
    std::vector<half> values;

    BsrMatrix() = default;
    explicit BsrMatrix(std::shared_ptr<const BsrLayout> l)
        : layout(std::move(l)),
          values(static_cast<std::size_t>(layout->total_stored()))
    {
    }

    half *block(index_t b)
    {
        return values.data() + b * layout->elements_per_block();
    }
    const half *block(index_t b) const
    {
        return values.data() + b * layout->elements_per_block();
    }
};

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_BSR_H_
