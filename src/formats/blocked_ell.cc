#include "formats/blocked_ell.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace multigrain {

index_t
BlockedEllLayout::padding_blocks() const
{
    index_t padding = 0;
    for (const index_t c : col_indices) {
        padding += c == kPadding ? 1 : 0;
    }
    return padding;
}

void
BlockedEllLayout::validate() const
{
    MG_CHECK(block > 0) << "blocked-ELL block size must be positive";
    MG_CHECK(rows % block == 0 && cols % block == 0)
        << "blocked-ELL dims must be multiples of the block size";
    MG_CHECK(ell_width >= 0 && ell_width <= block_cols())
        << "blocked-ELL width " << ell_width << " out of range";
    MG_CHECK(static_cast<index_t>(col_indices.size()) == total_slots())
        << "blocked-ELL col_indices size mismatch";
    for (index_t br = 0; br < block_rows(); ++br) {
        bool seen_padding = false;
        index_t prev = -1;
        for (index_t s = 0; s < ell_width; ++s) {
            const index_t c = slot_col(br, s);
            if (c == kPadding) {
                seen_padding = true;
                continue;
            }
            MG_CHECK(!seen_padding)
                << "blocked-ELL padding must be trailing in block row "
                << br;
            MG_CHECK(c >= 0 && c < block_cols())
                << "blocked-ELL column " << c << " out of range";
            MG_CHECK(c > prev)
                << "blocked-ELL columns must be ascending in block row "
                << br;
            prev = c;
        }
    }
}

BlockedEllLayout
blocked_ell_from_bsr(const BsrLayout &bsr)
{
    BlockedEllLayout out;
    out.rows = bsr.rows;
    out.cols = bsr.cols;
    out.block = bsr.block;
    out.ell_width = 0;
    for (index_t br = 0; br < bsr.block_rows(); ++br) {
        out.ell_width = std::max(out.ell_width, bsr.row_nnz_blocks(br));
    }
    out.col_indices.assign(
        static_cast<std::size_t>(bsr.block_rows() * out.ell_width),
        BlockedEllLayout::kPadding);
    for (index_t br = 0; br < bsr.block_rows(); ++br) {
        index_t slot = 0;
        for (index_t b = bsr.row_offsets[static_cast<std::size_t>(br)];
             b < bsr.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            out.col_indices[static_cast<std::size_t>(
                br * out.ell_width + slot)] =
                bsr.col_indices[static_cast<std::size_t>(b)];
            ++slot;
        }
    }
    return out;
}

BlockedEllMatrix
blocked_ell_matrix_from_bsr(const BsrMatrix &bsr)
{
    const BsrLayout &bl = *bsr.layout;
    auto layout =
        std::make_shared<const BlockedEllLayout>(blocked_ell_from_bsr(bl));
    BlockedEllMatrix out(layout);
    std::fill(out.values.begin(), out.values.end(), half(0.0f));
    const index_t elems = bl.block * bl.block;
    for (index_t br = 0; br < bl.block_rows(); ++br) {
        index_t slot = 0;
        for (index_t b = bl.row_offsets[static_cast<std::size_t>(br)];
             b < bl.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            std::memcpy(out.slot(br, slot), bsr.block(b),
                        static_cast<std::size_t>(elems) * sizeof(half));
            ++slot;
        }
    }
    return out;
}

}  // namespace multigrain
