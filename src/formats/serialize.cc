#include "formats/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"

namespace multigrain {

namespace {

constexpr std::uint64_t kMagic = 0x4d47524e4c594f55ull;  // "MGRNLYOU".
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kKindCsr = 1;
constexpr std::uint64_t kKindBsr = 2;

void
put_u64(std::ostream &os, std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    os.write(reinterpret_cast<const char *>(bytes), 8);
}

std::uint64_t
get_u64(std::istream &is)
{
    unsigned char bytes[8];
    is.read(reinterpret_cast<char *>(bytes), 8);
    MG_CHECK(is.good()) << "truncated layout stream";
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    return value;
}

void
put_index_vector(std::ostream &os, const std::vector<index_t> &v)
{
    put_u64(os, v.size());
    for (const index_t x : v) {
        put_u64(os, static_cast<std::uint64_t>(x));
    }
}

std::vector<index_t>
get_index_vector(std::istream &is, std::uint64_t max_size)
{
    const std::uint64_t size = get_u64(is);
    MG_CHECK(size <= max_size)
        << "layout stream declares an implausible vector size " << size;
    std::vector<index_t> v(size);
    for (auto &x : v) {
        x = static_cast<index_t>(get_u64(is));
    }
    return v;
}

void
put_header(std::ostream &os, std::uint64_t kind)
{
    put_u64(os, kMagic);
    put_u64(os, kVersion);
    put_u64(os, kind);
}

void
check_header(std::istream &is, std::uint64_t expected_kind)
{
    MG_CHECK(get_u64(is) == kMagic) << "not a multigrain layout stream";
    MG_CHECK(get_u64(is) == kVersion) << "unsupported layout version";
    MG_CHECK(get_u64(is) == expected_kind)
        << "layout stream holds a different format kind";
}

/// A generous sanity cap on serialized vector sizes (1 G entries).
constexpr std::uint64_t kMaxEntries = 1ull << 30;

}  // namespace

void
write_layout(const CsrLayout &layout, std::ostream &os)
{
    put_header(os, kKindCsr);
    put_u64(os, static_cast<std::uint64_t>(layout.rows));
    put_u64(os, static_cast<std::uint64_t>(layout.cols));
    put_index_vector(os, layout.row_offsets);
    put_index_vector(os, layout.col_indices);
    MG_CHECK(os.good()) << "failed writing CSR layout";
}

void
write_layout(const BsrLayout &layout, std::ostream &os)
{
    put_header(os, kKindBsr);
    put_u64(os, static_cast<std::uint64_t>(layout.rows));
    put_u64(os, static_cast<std::uint64_t>(layout.cols));
    put_u64(os, static_cast<std::uint64_t>(layout.block));
    put_index_vector(os, layout.row_offsets);
    put_index_vector(os, layout.col_indices);
    put_u64(os, layout.valid_bits.size());
    for (const std::uint64_t word : layout.valid_bits) {
        put_u64(os, word);
    }
    MG_CHECK(os.good()) << "failed writing BSR layout";
}

CsrLayout
read_csr_layout(std::istream &is)
{
    check_header(is, kKindCsr);
    CsrLayout layout;
    layout.rows = static_cast<index_t>(get_u64(is));
    layout.cols = static_cast<index_t>(get_u64(is));
    layout.row_offsets = get_index_vector(is, kMaxEntries);
    layout.col_indices = get_index_vector(is, kMaxEntries);
    layout.validate();
    return layout;
}

BsrLayout
read_bsr_layout(std::istream &is)
{
    check_header(is, kKindBsr);
    BsrLayout layout;
    layout.rows = static_cast<index_t>(get_u64(is));
    layout.cols = static_cast<index_t>(get_u64(is));
    layout.block = static_cast<index_t>(get_u64(is));
    layout.row_offsets = get_index_vector(is, kMaxEntries);
    layout.col_indices = get_index_vector(is, kMaxEntries);
    const std::uint64_t words = get_u64(is);
    MG_CHECK(words <= kMaxEntries) << "implausible bitmap size";
    layout.valid_bits.resize(words);
    for (auto &word : layout.valid_bits) {
        word = get_u64(is);
    }
    layout.validate();
    return layout;
}

}  // namespace multigrain
