#include "formats/coo.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain {

void
CooLayout::normalize()
{
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
}

void
CooLayout::validate() const
{
    MG_CHECK(rows >= 0 && cols >= 0)
        << "COO dims must be non-negative: " << rows << "x" << cols;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        MG_CHECK(e.row >= 0 && e.row < rows)
            << "COO row " << e.row << " out of range [0, " << rows << ")";
        MG_CHECK(e.col >= 0 && e.col < cols)
            << "COO col " << e.col << " out of range [0, " << cols << ")";
        if (i > 0) {
            const Entry &p = entries[i - 1];
            const bool ordered =
                p.row < e.row || (p.row == e.row && p.col < e.col);
            MG_CHECK(ordered)
                << "COO entries must be sorted row-major without duplicates "
                << "(violated at index " << i << ")";
        }
    }
}

}  // namespace multigrain
