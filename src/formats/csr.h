#ifndef MULTIGRAIN_FORMATS_CSR_H_
#define MULTIGRAIN_FORMATS_CSR_H_

#include <memory>
#include <vector>

#include "common/half.h"
#include "common/util.h"

/// Compressed sparse row format — the element-wise ("fine-grained") format
/// used by Sputnik-style kernels (paper §2.4). The structure (layout) and
/// the values are split: attention reuses one layout for the attention
/// score S and the attention probability P across every head and batch,
/// because the sparsity pattern is fixed per input while values change.
namespace multigrain {

struct CsrLayout {
    index_t rows = 0;
    index_t cols = 0;
    /// rows+1 entries; row r occupies [row_offsets[r], row_offsets[r+1]).
    std::vector<index_t> row_offsets;
    /// Column index per nonzero, ascending within each row.
    std::vector<index_t> col_indices;

    index_t nnz() const
    {
        return row_offsets.empty() ? 0 : row_offsets.back();
    }
    index_t row_nnz(index_t r) const
    {
        return row_offsets[static_cast<std::size_t>(r + 1)] -
               row_offsets[static_cast<std::size_t>(r)];
    }
    /// Largest nnz over all rows; 0 for an empty layout.
    index_t max_row_nnz() const;

    /// Throws Error if offsets are non-monotonic, indices are out of range,
    /// or column indices are not strictly ascending within a row.
    void validate() const;
};

/// A CSR matrix with FP16 values; values[i] pairs with col_indices[i].
struct CsrMatrix {
    std::shared_ptr<const CsrLayout> layout;
    std::vector<half> values;

    CsrMatrix() = default;
    explicit CsrMatrix(std::shared_ptr<const CsrLayout> l)
        : layout(std::move(l)),
          values(static_cast<std::size_t>(layout->nnz()))
    {
    }
};

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_CSR_H_
