#ifndef MULTIGRAIN_FORMATS_SERIALIZE_H_
#define MULTIGRAIN_FORMATS_SERIALIZE_H_

#include <iosfwd>

#include "formats/bsr.h"
#include "formats/csr.h"

/// Binary (de)serialization for sparse layouts.
///
/// The paper generates the compressed-matrix metadata *before* inference
/// (§3.1, step 2) — for repeated inputs (fixed sequence lengths, cached
/// special-token layouts) that metadata is naturally precomputed and
/// persisted. The format is a small tagged header (magic, version, kind)
/// followed by little-endian 64-bit fields; readers validate the result
/// with the layouts' own validate() so a corrupted stream cannot produce
/// an inconsistent layout.
namespace multigrain {

void write_layout(const CsrLayout &layout, std::ostream &os);
void write_layout(const BsrLayout &layout, std::ostream &os);

/// Throws Error on malformed streams (bad magic/version/kind, truncated
/// data, or layouts that fail validation).
CsrLayout read_csr_layout(std::istream &is);
BsrLayout read_bsr_layout(std::istream &is);

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_SERIALIZE_H_
