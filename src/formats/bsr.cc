#include "formats/bsr.h"

#include <bit>

#include "common/error.h"

namespace multigrain {

index_t
BsrLayout::block_valid_count(index_t b) const
{
    if (valid_bits.empty()) {
        return block * block;
    }
    index_t count = 0;
    const index_t words = words_per_block();
    for (index_t w = 0; w < words; ++w) {
        count += std::popcount(
            valid_bits[static_cast<std::size_t>(b * words + w)]);
    }
    return count;
}

index_t
BsrLayout::total_valid() const
{
    if (valid_bits.empty()) {
        return total_stored();
    }
    index_t count = 0;
    for (const std::uint64_t word : valid_bits) {
        count += std::popcount(word);
    }
    return count;
}

void
BsrLayout::validate() const
{
    MG_CHECK(block > 0) << "BSR block size must be positive";
    MG_CHECK(rows >= 0 && cols >= 0)
        << "BSR dims must be non-negative: " << rows << "x" << cols;
    MG_CHECK(rows % block == 0 && cols % block == 0)
        << "BSR dims " << rows << "x" << cols
        << " must be multiples of block size " << block
        << " (attention pads the sequence to the block size)";
    MG_CHECK(static_cast<index_t>(row_offsets.size()) == block_rows() + 1)
        << "BSR row_offsets must have block_rows+1 entries";
    MG_CHECK(row_offsets.front() == 0) << "BSR row_offsets must start at 0";
    for (index_t br = 0; br < block_rows(); ++br) {
        const index_t begin = row_offsets[static_cast<std::size_t>(br)];
        const index_t end = row_offsets[static_cast<std::size_t>(br + 1)];
        MG_CHECK(begin <= end)
            << "BSR row_offsets must be non-decreasing at block row " << br;
        for (index_t i = begin; i < end; ++i) {
            const index_t bc = col_indices[static_cast<std::size_t>(i)];
            MG_CHECK(bc >= 0 && bc < block_cols())
                << "BSR block column " << bc << " out of range [0, "
                << block_cols() << ") at block row " << br;
            if (i > begin) {
                MG_CHECK(col_indices[static_cast<std::size_t>(i - 1)] < bc)
                    << "BSR block columns must be strictly ascending in "
                    << "block row " << br;
            }
        }
    }
    MG_CHECK(static_cast<index_t>(col_indices.size()) == nnz_blocks())
        << "BSR col_indices size mismatch";
    if (!valid_bits.empty()) {
        MG_CHECK(static_cast<index_t>(valid_bits.size()) ==
                 nnz_blocks() * words_per_block())
            << "BSR valid_bits size " << valid_bits.size()
            << " does not match nnz_blocks " << nnz_blocks() << " x "
            << words_per_block() << " words";
        for (index_t b = 0; b < nnz_blocks(); ++b) {
            MG_CHECK(block_valid_count(b) > 0)
                << "BSR stored block " << b
                << " has no valid elements; it should not be stored";
        }
    }
}

}  // namespace multigrain
