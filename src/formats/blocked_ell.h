#ifndef MULTIGRAIN_FORMATS_BLOCKED_ELL_H_
#define MULTIGRAIN_FORMATS_BLOCKED_ELL_H_

#include <memory>
#include <vector>

#include "common/half.h"
#include "common/util.h"
#include "formats/bsr.h"

/// Blocked-ELL: the format NVIDIA's cuSPARSE exposes for blocked SpMM
/// (paper §2.4/§6). Every block row stores the same number of blocks
/// (`ell_width` = the widest row); shorter rows carry explicit padding
/// blocks (column index kPadding) that the library still streams and
/// multiplies as zeros. That uniformity is what makes the kernel simple —
/// and what makes the format wasteful on irregular compound patterns,
/// which is why the paper's coarse kernels use BSR instead.
namespace multigrain {

struct BlockedEllLayout {
    static constexpr index_t kPadding = -1;

    index_t rows = 0;
    index_t cols = 0;
    index_t block = 0;
    index_t ell_width = 0;
    /// block_rows() x ell_width block-column indices, row-major;
    /// kPadding marks padding slots (always trailing within a row).
    std::vector<index_t> col_indices;

    index_t block_rows() const { return ceil_div(rows, block); }
    index_t block_cols() const { return ceil_div(cols, block); }
    /// Stored block slots, padding included.
    index_t total_slots() const { return block_rows() * ell_width; }
    index_t padding_blocks() const;
    /// Real (non-padding) blocks.
    index_t nnz_blocks() const { return total_slots() - padding_blocks(); }

    index_t slot_col(index_t block_row, index_t slot) const
    {
        return col_indices[static_cast<std::size_t>(
            block_row * ell_width + slot)];
    }

    /// Throws Error on malformed indices or non-trailing padding.
    void validate() const;
};

/// A blocked-ELL matrix with FP16 values; padding blocks hold zeros.
struct BlockedEllMatrix {
    std::shared_ptr<const BlockedEllLayout> layout;
    std::vector<half> values;

    BlockedEllMatrix() = default;
    explicit BlockedEllMatrix(std::shared_ptr<const BlockedEllLayout> l)
        : layout(std::move(l)),
          values(static_cast<std::size_t>(layout->total_slots() *
                                          layout->block * layout->block))
    {
    }

    half *slot(index_t block_row, index_t s)
    {
        return values.data() + (block_row * layout->ell_width + s) *
                                   layout->block * layout->block;
    }
    const half *slot(index_t block_row, index_t s) const
    {
        return values.data() + (block_row * layout->ell_width + s) *
                                   layout->block * layout->block;
    }
};

/// Re-expresses a BSR layout as blocked-ELL: ell_width becomes the widest
/// block row; shorter rows are padded. Validity bitmaps are dropped
/// (cuSPARSE treats stored blocks as dense).
BlockedEllLayout blocked_ell_from_bsr(const BsrLayout &bsr);

/// Copies a BSR matrix's blocks into blocked-ELL storage (padding zeroed).
BlockedEllMatrix blocked_ell_matrix_from_bsr(const BsrMatrix &bsr);

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_BLOCKED_ELL_H_
