#include "formats/convert.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <utility>

#include "common/error.h"

namespace multigrain {

CsrLayout
csr_from_mask(const MaskMatrix &mask)
{
    CsrLayout out;
    out.rows = mask.rows();
    out.cols = mask.cols();
    out.row_offsets.reserve(static_cast<std::size_t>(out.rows + 1));
    out.row_offsets.push_back(0);
    for (index_t r = 0; r < out.rows; ++r) {
        for (index_t c = 0; c < out.cols; ++c) {
            if (mask.at(r, c) != 0) {
                out.col_indices.push_back(c);
            }
        }
        out.row_offsets.push_back(
            static_cast<index_t>(out.col_indices.size()));
    }
    return out;
}

MaskMatrix
mask_from_csr(const CsrLayout &layout)
{
    MaskMatrix mask(layout.rows, layout.cols, 0);
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            mask.at(r, layout.col_indices[static_cast<std::size_t>(i)]) = 1;
        }
    }
    return mask;
}

CsrLayout
csr_from_coo(const CooLayout &coo)
{
    CsrLayout out;
    out.rows = coo.rows;
    out.cols = coo.cols;
    out.row_offsets.assign(static_cast<std::size_t>(coo.rows + 1), 0);
    out.col_indices.reserve(coo.entries.size());
    index_t current_row = 0;
    for (const auto &e : coo.entries) {
        MG_CHECK(e.row >= current_row)
            << "COO must be normalized before CSR conversion";
        while (current_row < e.row) {
            ++current_row;
            out.row_offsets[static_cast<std::size_t>(current_row)] =
                static_cast<index_t>(out.col_indices.size());
        }
        out.col_indices.push_back(e.col);
    }
    while (current_row < coo.rows) {
        ++current_row;
        out.row_offsets[static_cast<std::size_t>(current_row)] =
            static_cast<index_t>(out.col_indices.size());
    }
    return out;
}

CooLayout
coo_from_csr(const CsrLayout &csr)
{
    CooLayout out;
    out.rows = csr.rows;
    out.cols = csr.cols;
    out.entries.reserve(static_cast<std::size_t>(csr.nnz()));
    for (index_t r = 0; r < csr.rows; ++r) {
        for (index_t i = csr.row_offsets[static_cast<std::size_t>(r)];
             i < csr.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            out.entries.push_back(
                {r, csr.col_indices[static_cast<std::size_t>(i)]});
        }
    }
    return out;
}

BsrLayout
bsr_from_csr(const CsrLayout &csr, index_t block)
{
    MG_CHECK(block > 0) << "block size must be positive";
    MG_CHECK(csr.rows % block == 0 && csr.cols % block == 0)
        << "matrix " << csr.rows << "x" << csr.cols
        << " is not a multiple of block size " << block;

    BsrLayout out;
    out.rows = csr.rows;
    out.cols = csr.cols;
    out.block = block;
    const index_t block_rows = out.block_rows();
    const index_t words = out.words_per_block();

    out.row_offsets.assign(static_cast<std::size_t>(block_rows + 1), 0);

    // One block-row strip at a time keeps memory proportional to a strip.
    for (index_t br = 0; br < block_rows; ++br) {
        // Map block-col -> bitmap for this strip, ordered by block-col.
        std::map<index_t, std::vector<std::uint64_t>> strip;
        for (index_t r = br * block; r < (br + 1) * block; ++r) {
            const index_t in_block_row = r - br * block;
            for (index_t i = csr.row_offsets[static_cast<std::size_t>(r)];
                 i < csr.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
                const index_t c =
                    csr.col_indices[static_cast<std::size_t>(i)];
                const index_t bc = c / block;
                auto [it, inserted] = strip.try_emplace(
                    bc, static_cast<std::size_t>(words), 0ull);
                const index_t bit = in_block_row * block + (c - bc * block);
                it->second[static_cast<std::size_t>(bit / 64)] |=
                    1ull << (bit % 64);
            }
        }
        for (auto &[bc, bits] : strip) {
            out.col_indices.push_back(bc);
            out.valid_bits.insert(out.valid_bits.end(), bits.begin(),
                                  bits.end());
        }
        out.row_offsets[static_cast<std::size_t>(br + 1)] =
            static_cast<index_t>(out.col_indices.size());
    }
    return out;
}

CsrLayout
csr_from_bsr(const BsrLayout &bsr)
{
    CsrLayout out;
    out.rows = bsr.rows;
    out.cols = bsr.cols;
    out.row_offsets.assign(static_cast<std::size_t>(bsr.rows + 1), 0);
    for (index_t br = 0; br < bsr.block_rows(); ++br) {
        for (index_t r = br * bsr.block; r < (br + 1) * bsr.block; ++r) {
            const index_t in_block_row = r - br * bsr.block;
            for (index_t b = bsr.row_offsets[static_cast<std::size_t>(br)];
                 b < bsr.row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                const index_t bc =
                    bsr.col_indices[static_cast<std::size_t>(b)];
                for (index_t c = 0; c < bsr.block; ++c) {
                    if (bsr.element_valid(b, in_block_row, c)) {
                        out.col_indices.push_back(bc * bsr.block + c);
                    }
                }
            }
            out.row_offsets[static_cast<std::size_t>(r + 1)] =
                static_cast<index_t>(out.col_indices.size());
        }
    }
    return out;
}

BcooLayout
bcoo_from_bsr(const BsrLayout &bsr)
{
    BcooLayout out;
    out.rows = bsr.rows;
    out.cols = bsr.cols;
    out.block = bsr.block;
    out.blocks.reserve(static_cast<std::size_t>(bsr.nnz_blocks()));
    for (index_t br = 0; br < bsr.block_rows(); ++br) {
        for (index_t b = bsr.row_offsets[static_cast<std::size_t>(br)];
             b < bsr.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            out.blocks.push_back(
                {br, bsr.col_indices[static_cast<std::size_t>(b)]});
        }
    }
    return out;
}

CsrLayout
transpose_layout(const CsrLayout &layout)
{
    CsrLayout out;
    out.rows = layout.cols;
    out.cols = layout.rows;
    out.row_offsets.assign(static_cast<std::size_t>(out.rows + 1), 0);
    // Counting pass: nonzeros per output row (= input column).
    for (const index_t c : layout.col_indices) {
        ++out.row_offsets[static_cast<std::size_t>(c + 1)];
    }
    for (index_t r = 0; r < out.rows; ++r) {
        out.row_offsets[static_cast<std::size_t>(r + 1)] +=
            out.row_offsets[static_cast<std::size_t>(r)];
    }
    // Fill pass: input rows ascend, so each output row's columns (= input
    // rows) come out ascending.
    out.col_indices.resize(layout.col_indices.size());
    std::vector<index_t> cursor(out.row_offsets.begin(),
                                out.row_offsets.end() - 1);
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            out.col_indices[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(c)]++)] = r;
        }
    }
    return out;
}

BsrLayout
transpose_layout(const BsrLayout &layout)
{
    const index_t block = layout.block;
    const index_t words = layout.words_per_block();
    BsrLayout out;
    out.rows = layout.cols;
    out.cols = layout.rows;
    out.block = block;
    out.row_offsets.assign(static_cast<std::size_t>(out.block_rows() + 1),
                           0);
    for (const index_t bc : layout.col_indices) {
        ++out.row_offsets[static_cast<std::size_t>(bc + 1)];
    }
    for (index_t r = 0; r < out.block_rows(); ++r) {
        out.row_offsets[static_cast<std::size_t>(r + 1)] +=
            out.row_offsets[static_cast<std::size_t>(r)];
    }
    out.col_indices.resize(layout.col_indices.size());
    if (!layout.valid_bits.empty()) {
        out.valid_bits.assign(layout.valid_bits.size(), 0);
    }
    std::vector<index_t> cursor(out.row_offsets.begin(),
                                out.row_offsets.end() - 1);
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t b = layout.row_offsets[static_cast<std::size_t>(br)];
             b < layout.row_offsets[static_cast<std::size_t>(br + 1)];
             ++b) {
            const index_t bc =
                layout.col_indices[static_cast<std::size_t>(b)];
            const index_t slot = cursor[static_cast<std::size_t>(bc)]++;
            out.col_indices[static_cast<std::size_t>(slot)] = br;
            if (!layout.valid_bits.empty()) {
                // Transpose the bitmap within the block.
                for (index_t r = 0; r < block; ++r) {
                    for (index_t c = 0; c < block; ++c) {
                        if (layout.element_valid(b, r, c)) {
                            const index_t bit = c * block + r;
                            out.valid_bits[static_cast<std::size_t>(
                                slot * words + bit / 64)] |=
                                1ull << (bit % 64);
                        }
                    }
                }
            }
        }
    }
    return out;
}

namespace {

template <typename MergeFn>
CsrLayout
csr_rowwise_merge(const CsrLayout &a, const CsrLayout &b, MergeFn merge)
{
    MG_CHECK(a.rows == b.rows && a.cols == b.cols)
        << "layout set operations need identical shapes, got " << a.rows
        << "x" << a.cols << " vs " << b.rows << "x" << b.cols;
    CsrLayout out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.row_offsets.reserve(static_cast<std::size_t>(a.rows + 1));
    out.row_offsets.push_back(0);
    for (index_t r = 0; r < a.rows; ++r) {
        const auto *abegin =
            a.col_indices.data() + a.row_offsets[static_cast<std::size_t>(r)];
        const auto *aend = a.col_indices.data() +
                           a.row_offsets[static_cast<std::size_t>(r + 1)];
        const auto *bbegin =
            b.col_indices.data() + b.row_offsets[static_cast<std::size_t>(r)];
        const auto *bend = b.col_indices.data() +
                           b.row_offsets[static_cast<std::size_t>(r + 1)];
        merge(abegin, aend, bbegin, bend, out.col_indices);
        out.row_offsets.push_back(
            static_cast<index_t>(out.col_indices.size()));
    }
    return out;
}

}  // namespace

CsrLayout
csr_union(const CsrLayout &a, const CsrLayout &b)
{
    return csr_rowwise_merge(
        a, b,
        [](const index_t *ab, const index_t *ae, const index_t *bb,
           const index_t *be, std::vector<index_t> &out) {
            std::set_union(ab, ae, bb, be, std::back_inserter(out));
        });
}

CsrLayout
csr_difference(const CsrLayout &a, const CsrLayout &b)
{
    return csr_rowwise_merge(
        a, b,
        [](const index_t *ab, const index_t *ae, const index_t *bb,
           const index_t *be, std::vector<index_t> &out) {
            std::set_difference(ab, ae, bb, be, std::back_inserter(out));
        });
}

HalfMatrix
dense_from_csr(const CsrMatrix &m)
{
    const CsrLayout &layout = *m.layout;
    HalfMatrix out(layout.rows, layout.cols, half(0.0f));
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            out.at(r, layout.col_indices[static_cast<std::size_t>(i)]) =
                m.values[static_cast<std::size_t>(i)];
        }
    }
    return out;
}

HalfMatrix
dense_from_bsr(const BsrMatrix &m)
{
    const BsrLayout &layout = *m.layout;
    HalfMatrix out(layout.rows, layout.cols, half(0.0f));
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t b = layout.row_offsets[static_cast<std::size_t>(br)];
             b < layout.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            const index_t bc = layout.col_indices[static_cast<std::size_t>(b)];
            const half *blk = m.block(b);
            for (index_t r = 0; r < layout.block; ++r) {
                for (index_t c = 0; c < layout.block; ++c) {
                    if (layout.element_valid(b, r, c)) {
                        out.at(br * layout.block + r, bc * layout.block + c) =
                            blk[r * layout.block + c];
                    }
                }
            }
        }
    }
    return out;
}

CsrMatrix
gather_csr(const HalfMatrix &dense, std::shared_ptr<const CsrLayout> layout)
{
    MG_CHECK(dense.rows() == layout->rows && dense.cols() == layout->cols)
        << "gather_csr shape mismatch";
    CsrMatrix out(std::move(layout));
    const CsrLayout &l = *out.layout;
    for (index_t r = 0; r < l.rows; ++r) {
        for (index_t i = l.row_offsets[static_cast<std::size_t>(r)];
             i < l.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            out.values[static_cast<std::size_t>(i)] =
                dense.at(r, l.col_indices[static_cast<std::size_t>(i)]);
        }
    }
    return out;
}

BsrMatrix
gather_bsr(const HalfMatrix &dense, std::shared_ptr<const BsrLayout> layout)
{
    MG_CHECK(dense.rows() == layout->rows && dense.cols() == layout->cols)
        << "gather_bsr shape mismatch";
    BsrMatrix out(std::move(layout));
    const BsrLayout &l = *out.layout;
    for (index_t br = 0; br < l.block_rows(); ++br) {
        for (index_t b = l.row_offsets[static_cast<std::size_t>(br)];
             b < l.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            const index_t bc = l.col_indices[static_cast<std::size_t>(b)];
            half *blk = out.block(b);
            for (index_t r = 0; r < l.block; ++r) {
                for (index_t c = 0; c < l.block; ++c) {
                    blk[r * l.block + c] =
                        dense.at(br * l.block + r, bc * l.block + c);
                }
            }
        }
    }
    return out;
}

}  // namespace multigrain
