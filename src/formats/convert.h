#ifndef MULTIGRAIN_FORMATS_CONVERT_H_
#define MULTIGRAIN_FORMATS_CONVERT_H_

#include <memory>

#include "formats/bcoo.h"
#include "formats/bsr.h"
#include "formats/coo.h"
#include "formats/csr.h"
#include "formats/matrix.h"

/// Conversions between the sparse formats and dense matrices. Layout
/// conversions are lossless in the set of *valid* elements: blockifying a
/// CSR layout into BSR records which elements of each stored block are
/// real via the validity bitmap, and converting back recovers exactly the
/// original element set (tested as a round-trip property).
namespace multigrain {

/// Builds a CSR layout from a 0/1 mask; nonzero mask entries are valid.
CsrLayout csr_from_mask(const MaskMatrix &mask);

/// Expands a CSR layout to a 0/1 mask.
MaskMatrix mask_from_csr(const CsrLayout &layout);

/// COO <-> CSR layout conversions. The COO must be normalized.
CsrLayout csr_from_coo(const CooLayout &coo);
CooLayout coo_from_csr(const CsrLayout &csr);

/// Blockifies a CSR layout: every block x block tile containing at least
/// one element becomes a stored block; the bitmap marks the real elements.
/// Requires rows and cols to be multiples of `block`.
BsrLayout bsr_from_csr(const CsrLayout &csr, index_t block);

/// Recovers the element-wise layout of the *valid* elements of a BSR.
CsrLayout csr_from_bsr(const BsrLayout &bsr);

/// Re-expresses BSR block coordinates as BCOO (drops validity bitmaps;
/// BCOO consumers treat stored blocks as fully dense, as Triton does).
BcooLayout bcoo_from_bsr(const BsrLayout &bsr);

/// Transpose of a CSR layout (a CSC view of the same element set,
/// re-expressed as CSR of the transposed matrix). Backward passes run
/// their dV/dK SpMMs over transposed metadata, which — like all metadata
/// (§3.1) — is built offline.
CsrLayout transpose_layout(const CsrLayout &layout);

/// Transpose of a BSR layout: block coordinates swap and each validity
/// bitmap is transposed within its block.
BsrLayout transpose_layout(const BsrLayout &layout);

/// Per-row set union of two layouts with identical shapes.
CsrLayout csr_union(const CsrLayout &a, const CsrLayout &b);

/// Per-row set difference a \ b of two layouts with identical shapes.
CsrLayout csr_difference(const CsrLayout &a, const CsrLayout &b);

/// Expands sparse values to a dense matrix; absent positions become 0.
/// For BSR, stored-but-invalid elements also become 0.
HalfMatrix dense_from_csr(const CsrMatrix &m);
HalfMatrix dense_from_bsr(const BsrMatrix &m);

/// Gathers values for every layout position from a dense matrix.
CsrMatrix gather_csr(const HalfMatrix &dense,
                     std::shared_ptr<const CsrLayout> layout);
BsrMatrix gather_bsr(const HalfMatrix &dense,
                     std::shared_ptr<const BsrLayout> layout);

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_CONVERT_H_
