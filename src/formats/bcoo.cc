#include "formats/bcoo.h"

#include "common/error.h"

namespace multigrain {

void
BcooLayout::validate() const
{
    MG_CHECK(block > 0) << "BCOO block size must be positive";
    MG_CHECK(rows % block == 0 && cols % block == 0)
        << "BCOO dims " << rows << "x" << cols
        << " must be multiples of block size " << block;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BlockEntry &e = blocks[i];
        MG_CHECK(e.block_row >= 0 && e.block_row < block_rows())
            << "BCOO block row " << e.block_row << " out of range";
        MG_CHECK(e.block_col >= 0 && e.block_col < block_cols())
            << "BCOO block col " << e.block_col << " out of range";
        if (i > 0) {
            const BlockEntry &p = blocks[i - 1];
            const bool ordered =
                p.block_row < e.block_row ||
                (p.block_row == e.block_row && p.block_col < e.block_col);
            MG_CHECK(ordered) << "BCOO blocks must be sorted row-major "
                              << "without duplicates (index " << i << ")";
        }
    }
}

}  // namespace multigrain
