#ifndef MULTIGRAIN_FORMATS_BCOO_H_
#define MULTIGRAIN_FORMATS_BCOO_H_

#include <vector>

#include "common/util.h"

/// Blocked coordinate format: an explicit (block-row, block-col) pair per
/// stored block. Triton's SDDMM uses BCOO while its SpMM uses BSR
/// (paper §2.4); keeping both formats is exactly the metadata-duplication
/// cost the paper charges Triton with, so the Triton-style baseline here
/// builds a BCOO copy of its layout and the simulator accounts its bytes.
namespace multigrain {

struct BcooLayout {
    index_t rows = 0;
    index_t cols = 0;
    index_t block = 0;
    struct BlockEntry {
        index_t block_row;
        index_t block_col;
        friend bool operator==(const BlockEntry &, const BlockEntry &) =
            default;
    };
    /// Sorted by (block_row, block_col), no duplicates.
    std::vector<BlockEntry> blocks;

    index_t block_rows() const { return ceil_div(rows, block); }
    index_t block_cols() const { return ceil_div(cols, block); }
    index_t nnz_blocks() const { return static_cast<index_t>(blocks.size()); }

    /// Metadata footprint in bytes: two 32-bit coordinates per block, as a
    /// CUDA implementation would store.
    index_t metadata_bytes() const { return nnz_blocks() * 8; }

    /// Throws Error on out-of-range or unsorted blocks.
    void validate() const;
};

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_BCOO_H_
