#ifndef MULTIGRAIN_FORMATS_MATRIX_H_
#define MULTIGRAIN_FORMATS_MATRIX_H_

#include <vector>

#include "common/error.h"
#include "common/half.h"
#include "common/rng.h"
#include "common/util.h"

/// Dense row-major matrix used for Q/K/V operands, contexts, and test
/// references. Element type is a template parameter: kernels store half
/// (the paper's FP16 operand precision), references use float or double.
namespace multigrain {

template <typename T>
class Matrix {
  public:
    Matrix() = default;
    Matrix(index_t rows, index_t cols, T init = T())
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows * cols), init)
    {
        MG_CHECK(rows >= 0 && cols >= 0)
            << "matrix dims must be non-negative: " << rows << "x" << cols;
    }

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    index_t size() const { return rows_ * cols_; }

    T &at(index_t r, index_t c)
    {
        return data_[static_cast<std::size_t>(r * cols_ + c)];
    }
    const T &at(index_t r, index_t c) const
    {
        return data_[static_cast<std::size_t>(r * cols_ + c)];
    }

    T *row(index_t r) { return data_.data() + r * cols_; }
    const T *row(index_t r) const { return data_.data() + r * cols_; }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    bool same_shape(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<T> data_;
};

using HalfMatrix = Matrix<half>;
using FloatMatrix = Matrix<float>;
using DoubleMatrix = Matrix<double>;
/// 0/1 validity mask; nonzero means the position participates in attention.
using MaskMatrix = Matrix<std::uint8_t>;

/// Fills a half matrix with uniform values in [lo, hi); deterministic in rng.
inline HalfMatrix
random_half_matrix(Rng &rng, index_t rows, index_t cols, float lo = -1.0f,
                   float hi = 1.0f)
{
    HalfMatrix m(rows, cols);
    for (index_t r = 0; r < rows; ++r) {
        for (index_t c = 0; c < cols; ++c) {
            m.at(r, c) = half(rng.next_float(lo, hi));
        }
    }
    return m;
}

/// Widens a half matrix to double for comparison against references.
inline DoubleMatrix
widen(const HalfMatrix &m)
{
    DoubleMatrix out(m.rows(), m.cols());
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t c = 0; c < m.cols(); ++c) {
            out.at(r, c) = static_cast<double>(float(m.at(r, c)));
        }
    }
    return out;
}

}  // namespace multigrain

#endif  // MULTIGRAIN_FORMATS_MATRIX_H_
