#ifndef MULTIGRAIN_TRANSFORMER_RUNNER_H_
#define MULTIGRAIN_TRANSFORMER_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/attention.h"
#include "core/launch_graph.h"
#include "gpusim/engine.h"
#include "patterns/slice.h"
#include "transformer/config.h"
#include "transformer/workload.h"

/// End-to-end inference timing (paper §5.1, Figs. 7-8): plans a full
/// forward pass — embedding-to-output per-layer op stream — into the GPU
/// simulator. The dense ops (QKV projection, output projection, FFN,
/// residual/LayerNorm element-wise passes) are identical across methods;
/// only the attention kernels differ, exactly as in the paper's setup.
namespace multigrain {

struct EndToEndResult {
    double total_us = 0;
    /// Wall-clock spent inside the sparse-attention phases (all layers).
    double attention_us = 0;
    /// DRAM traffic of the whole pass / of the attention phases, bytes.
    double dram_bytes = 0;
    double attention_dram_bytes = 0;
    sim::SimResult sim;
};

class TransformerRunner {
  public:
    /// Homogeneous batch: every sample shares `sample`'s metadata, fused
    /// into batch-replicated kernel launches (the fast common path).
    TransformerRunner(const ModelConfig &model, SliceMode mode,
                      const WorkloadSample &sample, index_t batch,
                      const AttentionConfig *attention_overrides = nullptr);

    /// Heterogeneous batch: each sample carries its own valid length and
    /// special-token positions — its own attention metadata (§3.1: "the
    /// number and position of nonzeros are changed by the input data").
    /// Each sample's kernels are planned into the same phase and
    /// co-scheduled, modeling a batched launch over per-sample metadata.
    TransformerRunner(const ModelConfig &model, SliceMode mode,
                      const std::vector<WorkloadSample> &samples,
                      const AttentionConfig *attention_overrides = nullptr);

    /// The (first) attention engine; handy for inspecting the slice plan.
    const AttentionEngine &attention() const { return *engines_.front(); }
    const ModelConfig &model() const { return model_; }
    index_t batch() const { return batch_; }

    /// Simulates one full forward pass on `device`.
    EndToEndResult simulate(const sim::DeviceSpec &device) const;

    /// Replays one full inference pass into `sim` without running it:
    /// every layer's cached graph under "<name_prefix>L%02d.", reusing
    /// `binding` for stream placement (pass a fresh binding to land the
    /// pass on its own streams). This is how the serving layer
    /// co-schedules several batches into one simulator — each batch's
    /// runner replays under its own prefix and binding, and the batches
    /// overlap across gpusim streams exactly like the coarse ∥ fine split
    /// does within one attention. simulate() is this plus sim.run().
    void plan_inference_into(sim::GpuSim &sim, std::vector<int> &binding,
                             const std::string &name_prefix = "") const;

    /// Simulates one training step (forward + backward): each layer's
    /// dense GEMMs reappear with ~2x the flops in the backward (dX and
    /// dW products), and the attention backward runs the dP SDDMM, fused
    /// softmax backward, and dQ/dK/dV SpMMs over (transposed) metadata.
    EndToEndResult simulate_training(const sim::DeviceSpec &device) const;

    /// The three per-layer op streams a pass is assembled from. A layer's
    /// kernel sequence is identical across layers up to its name prefix,
    /// so each kind is captured once per device — dense ops on logical
    /// stream 0, every engine's phase graphs appended with its own
    /// logical-stream block — PlanCache'd, and replayed once per layer
    /// with the "L%02d."/"F%02d."/"B%02d." prefix. Public so mglint can
    /// analyze the exact composed plans the runner replays.
    enum class LayerKind { kInference, kTrainForward, kTrainBackward };
    std::shared_ptr<const LaunchGraph>
    layer_graph(const sim::DeviceSpec &device, LayerKind kind) const;

    /// The static memory plan (core/memplan.h) for the composed layer
    /// graph: its arena layout plus peak/naive HBM footprints. Built and
    /// validated beside the graph at capture and PlanCache'd, so replay
    /// consumers (bench rows, the byte-budget serving scheduler) get it
    /// as a cache hit. The footprint scales per replayed layer; weights
    /// (w.*/dw.*) appear once per layer replay too, so a whole-model
    /// estimate is num_layers x this plan's peak.
    std::shared_ptr<const MemPlan>
    layer_memplan(const sim::DeviceSpec &device, LayerKind kind) const;

  private:
    LaunchGraph build_layer_graph(const sim::DeviceSpec &device,
                                  LayerKind kind) const;
    std::string layer_graph_key(const sim::DeviceSpec &device,
                                LayerKind kind) const;

    ModelConfig model_;
    index_t batch_ = 1;
    std::vector<std::unique_ptr<AttentionEngine>> engines_;
};

}  // namespace multigrain

#endif  // MULTIGRAIN_TRANSFORMER_RUNNER_H_
