#include "transformer/runner.h"

#include <cstdio>

#include "common/error.h"
#include "kernels/dense.h"

namespace multigrain {

namespace {

AttentionConfig
make_attention_config(const ModelConfig &model, index_t batch,
                      const AttentionConfig *overrides)
{
    AttentionConfig config;
    if (overrides != nullptr) {
        config = *overrides;
    }
    config.head_dim = model.head_dim();
    config.num_heads = model.num_heads;
    config.batch = batch;
    config.block = model.block;
    return config;
}

}  // namespace

TransformerRunner::TransformerRunner(const ModelConfig &model,
                                     SliceMode mode,
                                     const WorkloadSample &sample,
                                     index_t batch,
                                     const AttentionConfig *overrides)
    : model_(model), batch_(batch)
{
    MG_CHECK(batch > 0) << "batch must be positive";
    engines_.push_back(std::make_unique<AttentionEngine>(
        build_model_pattern(model_, sample),
        make_attention_config(model_, batch, overrides), mode));
}

TransformerRunner::TransformerRunner(
    const ModelConfig &model, SliceMode mode,
    const std::vector<WorkloadSample> &samples,
    const AttentionConfig *overrides)
    : model_(model), batch_(static_cast<index_t>(samples.size()))
{
    MG_CHECK(!samples.empty()) << "heterogeneous batch needs samples";
    for (const WorkloadSample &sample : samples) {
        engines_.push_back(std::make_unique<AttentionEngine>(
            build_model_pattern(model_, sample),
            make_attention_config(model_, 1, overrides), mode));
    }
}

EndToEndResult
TransformerRunner::simulate(const sim::DeviceSpec &device) const
{
    sim::GpuSim sim(device);
    const index_t seq = model_.max_seq_len;
    const index_t d = model_.d_model;
    const index_t ffn = model_.ffn_dim;
    const index_t elems = seq * d * batch_;

    for (index_t layer = 0; layer < model_.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "L%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);

        // Fused QKV projection: one L x 3D x D GEMM per batch element.
        sim.launch(0, kernels::plan_dense_gemm(device, seq, 3 * d, d,
                                               batch_, p + "gemm.qkv"));
        sim.join_streams();

        // Attention: every engine's phase co-schedules before each join,
        // so a heterogeneous batch behaves like one batched launch over
        // per-sample metadata.
        for (const auto &engine : engines_) {
            engine->plan_sddmm_phase(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines_) {
            engine->plan_softmax_phase(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines_) {
            engine->plan_spmm_phase(sim, p + "attn.");
        }
        sim.join_streams();

        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, d, batch_,
                                               p + "gemm.attn_out"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln1"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, ffn, d, batch_,
                                               p + "gemm.ffn1"));
        sim.launch(0, kernels::plan_elementwise(device, seq * ffn * batch_,
                                                1, 12.0, p + "ew.gelu"));
        sim.launch(0, kernels::plan_dense_gemm(device, seq, d, ffn, batch_,
                                               p + "gemm.ffn2"));
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln2"));
        sim.join_streams();
    }

    EndToEndResult result;
    result.sim = sim.run();
    result.total_us = result.sim.total_us;
    result.dram_bytes = result.sim.work.dram_bytes();
    for (index_t layer = 0; layer < model_.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "L%02d.attn.",
                      static_cast<int>(layer));
        result.attention_us += result.sim.span(prefix);
        result.attention_dram_bytes += result.sim.dram_bytes_for(prefix);
    }
    return result;
}


EndToEndResult
TransformerRunner::simulate_training(const sim::DeviceSpec &device) const
{
    sim::GpuSim sim(device);
    const index_t seq = model_.max_seq_len;
    const index_t d = model_.d_model;
    const index_t ffn = model_.ffn_dim;
    const index_t elems = seq * d * batch_;

    const auto dense_layer = [&](const std::string &p, double flop_scale) {
        // flop_scale 1 = forward; 2 = backward (dX and dW GEMMs).
        for (double rep = 0; rep < flop_scale; ++rep) {
            const std::string suffix =
                flop_scale > 1 ? (rep == 0 ? ".dx" : ".dw") : "";
            sim.launch(0, kernels::plan_dense_gemm(
                              device, seq, 3 * d, d, batch_,
                              p + "gemm.qkv" + suffix));
            sim.launch(0, kernels::plan_dense_gemm(
                              device, seq, d, d, batch_,
                              p + "gemm.attn_out" + suffix));
            sim.launch(0, kernels::plan_dense_gemm(
                              device, seq, ffn, d, batch_,
                              p + "gemm.ffn1" + suffix));
            sim.launch(0, kernels::plan_dense_gemm(
                              device, seq, d, ffn, batch_,
                              p + "gemm.ffn2" + suffix));
        }
        sim.launch(0, kernels::plan_elementwise(device, elems, 2, 8.0,
                                                p + "ew.ln"));
        sim.launch(0, kernels::plan_elementwise(device, seq * ffn * batch_,
                                                1, 12.0, p + "ew.gelu"));
    };

    // Forward sweep.
    for (index_t layer = 0; layer < model_.num_layers; ++layer) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "F%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        dense_layer(p, 1.0);
        sim.join_streams();
        for (const auto &engine : engines_) {
            engine->plan_sddmm_phase(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines_) {
            engine->plan_softmax_phase(sim, p + "attn.");
        }
        sim.join_streams();
        for (const auto &engine : engines_) {
            engine->plan_spmm_phase(sim, p + "attn.");
        }
        sim.join_streams();
    }
    // Backward sweep (reverse layer order).
    for (index_t layer = model_.num_layers; layer-- > 0;) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "B%02d.",
                      static_cast<int>(layer));
        const std::string p(prefix);
        for (const auto &engine : engines_) {
            engine->plan_backward_into(sim, p + "attn.");
        }
        dense_layer(p, 2.0);
        sim.join_streams();
    }

    EndToEndResult result;
    result.sim = sim.run();
    result.total_us = result.sim.total_us;
    result.dram_bytes = result.sim.work.dram_bytes();
    for (index_t layer = 0; layer < model_.num_layers; ++layer) {
        char f[16], b[16];
        std::snprintf(f, sizeof f, "F%02d.attn.", static_cast<int>(layer));
        std::snprintf(b, sizeof b, "B%02d.attn.", static_cast<int>(layer));
        result.attention_us += result.sim.span(f) + result.sim.span(b);
        result.attention_dram_bytes += result.sim.dram_bytes_for(f) +
                                       result.sim.dram_bytes_for(b);
    }
    return result;
}

}  // namespace multigrain
