#include "transformer/runner.h"

#include <cstdint>
#include <cstdio>

#include "common/error.h"
#include "common/timer.h"
#include "core/check.h"
#include "core/lint.h"
#include "core/plan_cache.h"
#include "kernels/dense.h"

namespace multigrain {

namespace {

AttentionConfig
make_attention_config(const ModelConfig &model, index_t batch,
                      const AttentionConfig *overrides)
{
    AttentionConfig config;
    if (overrides != nullptr) {
        config = *overrides;
    }
    config.head_dim = model.head_dim();
    config.num_heads = model.num_heads;
    config.batch = batch;
    config.block = model.block;
    return config;
}

const char *
layer_kind_tag(int kind)
{
    switch (kind) {
      case 0: return "infer";
      case 1: return "train_fwd";
      default: return "train_bwd";
    }
}

}  // namespace

TransformerRunner::TransformerRunner(const ModelConfig &model,
                                     SliceMode mode,
                                     const WorkloadSample &sample,
                                     index_t batch,
                                     const AttentionConfig *overrides)
    : model_(model), batch_(batch)
{
    MG_CHECK(batch > 0) << "batch must be positive";
    engines_.push_back(std::make_unique<AttentionEngine>(
        build_model_pattern(model_, sample),
        make_attention_config(model_, batch, overrides), mode));
}

TransformerRunner::TransformerRunner(
    const ModelConfig &model, SliceMode mode,
    const std::vector<WorkloadSample> &samples,
    const AttentionConfig *overrides)
    : model_(model), batch_(static_cast<index_t>(samples.size()))
{
    MG_CHECK(!samples.empty()) << "heterogeneous batch needs samples";
    for (const WorkloadSample &sample : samples) {
        engines_.push_back(std::make_unique<AttentionEngine>(
            build_model_pattern(model_, sample),
            make_attention_config(model_, 1, overrides), mode));
    }
}

LaunchGraph
TransformerRunner::build_layer_graph(const sim::DeviceSpec &device,
                                     LayerKind kind) const
{
    const ScopedTimer timer("plan.capture.layer");
    const index_t seq = model_.max_seq_len;
    const index_t d = model_.d_model;
    const index_t ffn = model_.ffn_dim;
    const index_t elems = seq * d * batch_;

    // Byte widths for the sized dataflow annotations (core/memplan.h):
    // FP16 activations replicated over the batch; weights shared across
    // batch elements. q/k/v/o and their gradients are seq × d_model per
    // batch element (head_dim × num_heads = d_model), matching the sizes
    // the attention engines annotate on the same shared buffers.
    constexpr std::uint64_t kValueBytes = 2;  // FP16.
    const std::uint64_t act_d = static_cast<std::uint64_t>(seq) *
                                static_cast<std::uint64_t>(d) *
                                static_cast<std::uint64_t>(batch_) *
                                kValueBytes;
    const std::uint64_t act_ffn = static_cast<std::uint64_t>(seq) *
                                  static_cast<std::uint64_t>(ffn) *
                                  static_cast<std::uint64_t>(batch_) *
                                  kValueBytes;
    const std::uint64_t w_qkv = 3 * static_cast<std::uint64_t>(d) *
                                static_cast<std::uint64_t>(d) * kValueBytes;
    const std::uint64_t w_out = static_cast<std::uint64_t>(d) *
                                static_cast<std::uint64_t>(d) * kValueBytes;
    const std::uint64_t w_ffn = static_cast<std::uint64_t>(d) *
                                static_cast<std::uint64_t>(ffn) *
                                kValueBytes;

    LaunchGraph graph;

    // Every engine gets its own logical-stream block, allocated upfront in
    // engine order — the same order the imperative path created real
    // streams in — so replayed stream numbering is byte-identical to it.
    // One map serves all of an engine's phase graphs (and its backward
    // graph): capture_streams gives them identical logical numbering.
    std::vector<std::shared_ptr<const AttentionEngine::AttentionGraphs>>
        attn;
    std::vector<std::shared_ptr<const LaunchGraph>> bwd;
    std::vector<std::vector<int>> maps;
    for (const auto &engine : engines_) {
        attn.push_back(engine->forward_graphs(device));
        if (kind == LayerKind::kTrainBackward) {
            bwd.push_back(engine->backward_graph(device));
        }
        const int streams = kind == LayerKind::kTrainBackward
                                ? bwd.back()->num_streams()
                                : attn.back()->sddmm.num_streams();
        std::vector<int> map = {0};
        while (static_cast<int>(map.size()) < streams) {
            map.push_back(graph.create_stream());
        }
        maps.push_back(std::move(map));
    }

    // One buffer namespace per engine, shared by all of that engine's
    // phase appends: its softmax must see the very %s.* scores its sddmm
    // wrote, while two co-scheduled engines must never alias theirs.
    const auto engine_ns = [](std::size_t i) {
        return "e" + std::to_string(i);
    };

    const auto append_phase =
        [&](const LaunchGraph AttentionEngine::AttentionGraphs::*phase) {
            for (std::size_t i = 0; i < engines_.size(); ++i) {
                const std::string ns = engine_ns(i);
                graph.append((*attn[i]).*phase, "attn.", &maps[i], &ns);
            }
            graph.join_streams();
        };

    // The training dense block: flop_scale 1 = forward; 2 = backward
    // (dX and dW GEMMs).
    const auto dense_layer = [&](double flop_scale) {
        for (double rep = 0; rep < flop_scale; ++rep) {
            const std::string suffix =
                flop_scale > 1 ? (rep == 0 ? ".dx" : ".dw") : "";
            sim::KernelLaunch qkv = kernels::plan_dense_gemm(
                device, seq, 3 * d, d, batch_, "gemm.qkv" + suffix);
            sim::KernelLaunch attn_out = kernels::plan_dense_gemm(
                device, seq, d, d, batch_, "gemm.attn_out" + suffix);
            sim::KernelLaunch ffn1 = kernels::plan_dense_gemm(
                device, seq, ffn, d, batch_, "gemm.ffn1" + suffix);
            sim::KernelLaunch ffn2 = kernels::plan_dense_gemm(
                device, seq, d, ffn, batch_, "gemm.ffn2" + suffix);
            // Definedness declarations (core/check.h): the training
            // layer is one slice of a surrounding step, so activations
            // and gradients cross the graph boundary both ways. Reads
            // of stashes the graph itself never writes (%x1/%h1 in the
            // dW pass, the inbound %d.h2 gradient, %d.h1 read by the
            // dX FFN1 before the dX FFN2 re-derives it) are declared
            // kBufInput; stores nothing in-graph drains (the weight
            // gradients, the re-stashed activations, the %d.* pieces
            // the next layer down consumes) are declared kBufOutput.
            if (suffix.empty()) {
                qkv = sim::annotate(std::move(qkv),
                                    {{"x", act_d}, {"w.qkv", w_qkv}},
                                    {{"q", act_d}, {"k", act_d},
                                     {"v", act_d}});
                attn_out = sim::annotate(std::move(attn_out),
                                         {{"o", act_d}, {"w.out", w_out}},
                                         {{"%proj", act_d}});
                ffn1 = sim::annotate(std::move(ffn1),
                                     {{"%x1", act_d, sim::kBufInput},
                                      {"w.ffn1", w_ffn}},
                                     {{"%h1", act_ffn}});
                ffn2 = sim::annotate(std::move(ffn2),
                                     {{"%h1", act_ffn}, {"w.ffn2", w_ffn}},
                                     {{"%h2", act_d, sim::kBufOutput}});
            } else if (suffix == ".dx") {
                qkv = sim::annotate(std::move(qkv),
                                    {{"dq", act_d}, {"dk", act_d},
                                     {"dv", act_d}, {"w.qkv", w_qkv}},
                                    {{"d.x", act_d}});
                attn_out = sim::annotate(std::move(attn_out),
                                         {{"d.ln1", act_d},
                                          {"w.out", w_out}},
                                         {{"%d.o", act_d,
                                           sim::kBufOutput}});
                ffn1 = sim::annotate(std::move(ffn1),
                                     {{"%d.h1", act_ffn, sim::kBufInput},
                                      {"w.ffn1", w_ffn}},
                                     {{"%d.x1", act_d,
                                       sim::kBufOutput}});
                ffn2 = sim::annotate(std::move(ffn2),
                                     {{"%d.h2", act_d, sim::kBufInput},
                                      {"w.ffn2", w_ffn}},
                                     {{"%d.h1", act_ffn}});
            } else {
                qkv = sim::annotate(std::move(qkv),
                                    {{"dq", act_d}, {"dk", act_d},
                                     {"dv", act_d}, {"x", act_d}},
                                    {{"dw.qkv", w_qkv,
                                      sim::kBufOutput}});
                attn_out = sim::annotate(std::move(attn_out),
                                         {{"d.ln1", act_d}, {"o", act_d}},
                                         {{"dw.out", w_out,
                                           sim::kBufOutput}});
                ffn1 = sim::annotate(std::move(ffn1),
                                     {{"%d.h1", act_ffn},
                                      {"%x1", act_d, sim::kBufInput}},
                                     {{"dw.ffn1", w_ffn,
                                       sim::kBufOutput}});
                ffn2 = sim::annotate(std::move(ffn2),
                                     {{"%d.h2", act_d},
                                      {"%h1", act_ffn, sim::kBufInput}},
                                     {{"dw.ffn2", w_ffn,
                                       sim::kBufOutput}});
            }
            graph.launch(0, std::move(qkv));
            graph.launch(0, std::move(attn_out));
            graph.launch(0, std::move(ffn1));
            graph.launch(0, std::move(ffn2));
        }
        if (flop_scale > 1) {
            graph.launch(0, sim::annotate(
                                kernels::plan_elementwise(device, elems, 2,
                                                          8.0, "ew.ln"),
                                {{"d.x", act_d}},
                                {{"d.x", act_d, sim::kBufOutput}}));
            graph.launch(0, sim::annotate(
                                kernels::plan_elementwise(
                                    device, seq * ffn * batch_, 1, 12.0,
                                    "ew.gelu"),
                                {{"%d.h1", act_ffn}},
                                {{"%d.h1", act_ffn, sim::kBufOutput}}));
        } else {
            graph.launch(0, sim::annotate(
                                kernels::plan_elementwise(device, elems, 2,
                                                          8.0, "ew.ln"),
                                {{"x", act_d}, {"%proj", act_d}},
                                {{"%x1", act_d, sim::kBufOutput}}));
            graph.launch(0, sim::annotate(
                                kernels::plan_elementwise(
                                    device, seq * ffn * batch_, 1, 12.0,
                                    "ew.gelu"),
                                {{"%h1", act_ffn}},
                                {{"%h1", act_ffn, sim::kBufOutput}}));
        }
    };

    switch (kind) {
      case LayerKind::kInference:
        // Fused QKV projection: one L x 3D x D GEMM per batch element.
        graph.launch(0, sim::annotate(
                            kernels::plan_dense_gemm(device, seq, 3 * d, d,
                                                     batch_, "gemm.qkv"),
                            {{"x", act_d}, {"w.qkv", w_qkv}},
                            {{"q", act_d}, {"k", act_d}, {"v", act_d}}));
        graph.join_streams();
        // Attention: every engine's phase co-schedules before each join,
        // so a heterogeneous batch behaves like one batched launch over
        // per-sample metadata.
        append_phase(&AttentionEngine::AttentionGraphs::sddmm);
        append_phase(&AttentionEngine::AttentionGraphs::softmax);
        append_phase(&AttentionEngine::AttentionGraphs::spmm);
        graph.launch(0, sim::annotate(
                            kernels::plan_dense_gemm(device, seq, d, d,
                                                     batch_,
                                                     "gemm.attn_out"),
                            {{"o", act_d}, {"w.out", w_out}},
                            {{"%proj", act_d}}));
        graph.launch(0, sim::annotate(
                            kernels::plan_elementwise(device, elems, 2, 8.0,
                                                      "ew.ln1"),
                            {{"x", act_d}, {"%proj", act_d}},
                            {{"%x1", act_d}}));
        graph.launch(0, sim::annotate(
                            kernels::plan_dense_gemm(device, seq, ffn, d,
                                                     batch_, "gemm.ffn1"),
                            {{"%x1", act_d}, {"w.ffn1", w_ffn}},
                            {{"%h1", act_ffn}}));
        graph.launch(0, sim::annotate(
                            kernels::plan_elementwise(
                                device, seq * ffn * batch_, 1, 12.0,
                                "ew.gelu"),
                            {{"%h1", act_ffn}}, {{"%h1", act_ffn}}));
        graph.launch(0, sim::annotate(
                            kernels::plan_dense_gemm(device, seq, d, ffn,
                                                     batch_, "gemm.ffn2"),
                            {{"%h1", act_ffn}, {"w.ffn2", w_ffn}},
                            {{"%h2", act_d}}));
        graph.launch(0, sim::annotate(
                            kernels::plan_elementwise(device, elems, 2, 8.0,
                                                      "ew.ln2"),
                            {{"%x1", act_d}, {"%h2", act_d}},
                            {{"x.out", act_d, sim::kBufOutput}}));
        graph.join_streams();
        break;

      case LayerKind::kTrainForward:
        dense_layer(1.0);
        graph.join_streams();
        append_phase(&AttentionEngine::AttentionGraphs::sddmm);
        append_phase(&AttentionEngine::AttentionGraphs::softmax);
        append_phase(&AttentionEngine::AttentionGraphs::spmm);
        break;

      case LayerKind::kTrainBackward:
        // Backward graphs join internally after each of their phases.
        for (std::size_t i = 0; i < engines_.size(); ++i) {
            const std::string ns = engine_ns(i);
            graph.append(*bwd[i], "attn.", &maps[i], &ns);
        }
        dense_layer(2.0);
        graph.join_streams();
        break;
    }
    return graph;
}

std::string
TransformerRunner::layer_graph_key(const sim::DeviceSpec &device,
                                   LayerKind kind) const
{
    char dims[128];
    std::snprintf(dims, sizeof(dims), "|seq=%lld|d=%lld|ffn=%lld|b=%lld",
                  static_cast<long long>(model_.max_seq_len),
                  static_cast<long long>(model_.d_model),
                  static_cast<long long>(model_.ffn_dim),
                  static_cast<long long>(batch_));
    std::string key = "runner|";
    key += layer_kind_tag(static_cast<int>(kind));
    key += dims;
    for (const auto &engine : engines_) {
        key += '|';
        key += engine->plan_key();
    }
    key += '|';
    key += device_plan_key(device);
    return key;
}

std::shared_ptr<const LaunchGraph>
TransformerRunner::layer_graph(const sim::DeviceSpec &device,
                               LayerKind kind) const
{
    const std::string key = layer_graph_key(device, kind);
    return PlanCache::instance().get_or_build<LaunchGraph>(key, [&] {
        auto graph = std::make_shared<const LaunchGraph>(
            build_layer_graph(device, kind));
        // Throwing here keeps a racy composed plan out of the cache.
        enforce_capture_lint(*graph, device, key);
        // Plan (and alias-validate) the footprint beside the graph.
        const auto memplan = memplan_for(key, *graph);
        // Definedness + arena-aliasing proof (core/check.h).
        enforce_capture_check(*graph, memplan.get(), key);
        return graph;
    });
}

std::shared_ptr<const MemPlan>
TransformerRunner::layer_memplan(const sim::DeviceSpec &device,
                                 LayerKind kind) const
{
    return memplan_for(layer_graph_key(device, kind),
                       *layer_graph(device, kind));
}

void
TransformerRunner::plan_inference_into(sim::GpuSim &sim,
                                       std::vector<int> &binding,
                                       const std::string &name_prefix) const
{
    const std::shared_ptr<const LaunchGraph> layer =
        layer_graph(sim.device(), LayerKind::kInference);
    for (index_t l = 0; l < model_.num_layers; ++l) {
        char prefix[24];
        std::snprintf(prefix, sizeof prefix, "%sL%02d.",
                      name_prefix.c_str(), static_cast<int>(l));
        layer->replay_into(sim, binding, prefix);
    }
}

EndToEndResult
TransformerRunner::simulate(const sim::DeviceSpec &device) const
{
    sim::GpuSim sim(device);
    std::vector<int> binding;
    plan_inference_into(sim, binding);

    EndToEndResult result;
    result.sim = sim.run();
    result.total_us = result.sim.total_us;
    result.dram_bytes = result.sim.work.dram_bytes();
    for (index_t l = 0; l < model_.num_layers; ++l) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "L%02d.attn.",
                      static_cast<int>(l));
        result.attention_us += result.sim.span(prefix);
        result.attention_dram_bytes += result.sim.dram_bytes_for(prefix);
    }
    return result;
}


EndToEndResult
TransformerRunner::simulate_training(const sim::DeviceSpec &device) const
{
    sim::GpuSim sim(device);
    const std::shared_ptr<const LaunchGraph> fwd =
        layer_graph(device, LayerKind::kTrainForward);
    const std::shared_ptr<const LaunchGraph> bwd =
        layer_graph(device, LayerKind::kTrainBackward);
    // Both layer kinds share one logical-stream layout (stream 0 + the
    // per-engine blocks), so one binding keeps every layer and both
    // sweeps on the same real streams.
    std::vector<int> binding;

    // Forward sweep.
    for (index_t l = 0; l < model_.num_layers; ++l) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "F%02d.",
                      static_cast<int>(l));
        fwd->replay_into(sim, binding, prefix);
    }
    // Backward sweep (reverse layer order).
    for (index_t l = model_.num_layers; l-- > 0;) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "B%02d.",
                      static_cast<int>(l));
        bwd->replay_into(sim, binding, prefix);
    }

    EndToEndResult result;
    result.sim = sim.run();
    result.total_us = result.sim.total_us;
    result.dram_bytes = result.sim.work.dram_bytes();
    for (index_t l = 0; l < model_.num_layers; ++l) {
        char f[16], b[16];
        std::snprintf(f, sizeof f, "F%02d.attn.", static_cast<int>(l));
        std::snprintf(b, sizeof b, "B%02d.attn.", static_cast<int>(l));
        result.attention_us += result.sim.span(f) + result.sim.span(b);
        result.attention_dram_bytes += result.sim.dram_bytes_for(f) +
                                       result.sim.dram_bytes_for(b);
    }
    return result;
}

}  // namespace multigrain
