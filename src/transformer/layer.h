#ifndef MULTIGRAIN_TRANSFORMER_LAYER_H_
#define MULTIGRAIN_TRANSFORMER_LAYER_H_

#include <vector>

#include "common/rng.h"
#include "core/attention.h"
#include "formats/matrix.h"
#include "transformer/config.h"

/// Functional transformer encoder layer (pre-activation weights drawn at
/// random): the CPU-side ground truth behind the end-to-end simulation and
/// the integration tests. One layer is
///
///   q,k,v = x·Wq, x·Wk, x·Wv
///   a     = MultiHeadSparseAttention(q, k, v)       (the engine's run())
///   x     = LayerNorm(x + a·Wo)
///   x     = LayerNorm(x + GELU(x·W1)·W2)
///
/// with FP16 storage and FP32 math inside each op, like the kernels.
namespace multigrain {

struct LayerWeights {
    HalfMatrix wq, wk, wv, wo;  ///< d_model x d_model.
    HalfMatrix w1;              ///< d_model x ffn_dim.
    HalfMatrix w2;              ///< ffn_dim x d_model.
    std::vector<float> ln1_gamma, ln1_beta;  ///< d_model.
    std::vector<float> ln2_gamma, ln2_beta;  ///< d_model.

    /// Random initialization with GEMM-friendly magnitudes (so FP16 sums
    /// stay in range at any tested width).
    static LayerWeights random(Rng &rng, const ModelConfig &config);
};

/// In-place LayerNorm over each row of m (FP32 math).
void layer_norm_rows(HalfMatrix &m, const std::vector<float> &gamma,
                     const std::vector<float> &beta);

/// In-place GELU (tanh approximation) on every element.
void gelu_inplace(HalfMatrix &m);

/// Runs one encoder layer on hidden (seq_len x d_model) with the sparse
/// attention engine (which fixes the pattern and method).
HalfMatrix layer_forward(const ModelConfig &config,
                         const AttentionEngine &engine,
                         const LayerWeights &weights,
                         const HalfMatrix &hidden);

/// Runs `config.num_layers` layers with per-layer weights.
HalfMatrix model_forward(const ModelConfig &config,
                         const AttentionEngine &engine,
                         const std::vector<LayerWeights> &weights,
                         const HalfMatrix &hidden);

}  // namespace multigrain

#endif  // MULTIGRAIN_TRANSFORMER_LAYER_H_
