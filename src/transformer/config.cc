#include "transformer/config.h"

#include "common/error.h"

namespace multigrain {

const char *
to_string(PatternFamily family)
{
    switch (family) {
      case PatternFamily::kLongformer:
        return "longformer";
      case PatternFamily::kQds:
        return "qds";
      case PatternFamily::kBigBird:
        return "bigbird";
      case PatternFamily::kPoolingformer:
        return "poolingformer";
    }
    return "?";
}

ModelConfig
ModelConfig::longformer_large()
{
    ModelConfig c;
    c.name = "Longformer-large";
    c.num_layers = 24;
    c.d_model = 1024;
    c.num_heads = 16;
    c.ffn_dim = 4096;
    c.max_seq_len = 4096;
    c.local_window = 256;  // Two-sided window 512, as released.
    c.block = 64;
    c.has_global_rows = true;
    c.family = PatternFamily::kLongformer;
    return c;
}

ModelConfig
ModelConfig::qds_base()
{
    ModelConfig c;
    c.name = "QDS-Transformer-base";
    c.num_layers = 12;
    c.d_model = 768;
    c.num_heads = 12;
    c.ffn_dim = 3072;
    c.max_seq_len = 2048;
    c.local_window = 64;  // Two-sided window 128.
    c.block = 64;
    c.has_global_rows = false;  // Local + selected only (§4).
    c.family = PatternFamily::kQds;
    return c;
}

ModelConfig
ModelConfig::bigbird_etc_base()
{
    ModelConfig c;
    c.name = "BigBird-ETC-base";
    c.num_layers = 12;
    c.d_model = 768;
    c.num_heads = 12;
    c.ffn_dim = 3072;
    c.max_seq_len = 4096;
    c.local_window = 96;  // ~3 blocks of the blocked band.
    c.block = 64;
    c.has_global_rows = true;  // ETC global tokens.
    c.family = PatternFamily::kBigBird;
    c.random_blocks = 3;  // BigBird's num_random_blocks.
    return c;
}

ModelConfig
ModelConfig::poolingformer_base()
{
    ModelConfig c;
    c.name = "Poolingformer-base";
    c.num_layers = 12;
    c.d_model = 768;
    c.num_heads = 12;
    c.ffn_dim = 3072;
    c.max_seq_len = 4096;
    c.local_window = 128;  // First-level sliding window.
    c.block = 64;
    c.has_global_rows = false;
    c.family = PatternFamily::kPoolingformer;
    c.dilated_window = 64;  // Second-level pooled window: 64 strided taps.
    c.dilated_stride = 16;
    return c;
}

ModelConfig
ModelConfig::tiny_test()
{
    ModelConfig c;
    c.name = "tiny-test";
    c.num_layers = 2;
    c.d_model = 64;
    c.num_heads = 4;
    c.ffn_dim = 128;
    c.max_seq_len = 128;
    c.local_window = 8;
    c.block = 16;
    c.has_global_rows = true;
    c.family = PatternFamily::kLongformer;
    return c;
}

ModelConfig
model_config_by_name(const std::string &name)
{
    if (name == "longformer") {
        return ModelConfig::longformer_large();
    }
    if (name == "qds") {
        return ModelConfig::qds_base();
    }
    if (name == "bigbird") {
        return ModelConfig::bigbird_etc_base();
    }
    if (name == "poolingformer") {
        return ModelConfig::poolingformer_base();
    }
    if (name == "tiny") {
        return ModelConfig::tiny_test();
    }
    throw Error("unknown model \"" + name +
                "\" (longformer|qds|bigbird|poolingformer|tiny)");
}

}  // namespace multigrain
