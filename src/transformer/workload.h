#ifndef MULTIGRAIN_TRANSFORMER_WORKLOAD_H_
#define MULTIGRAIN_TRANSFORMER_WORKLOAD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/util.h"
#include "patterns/pattern.h"
#include "transformer/config.h"

/// Synthetic end-to-end workloads standing in for the paper's datasets
/// (§4: HotpotQA for Longformer, MS MARCO documents for QDS-Transformer).
///
/// The real datasets influence the measured kernels through exactly two
/// knobs: the effective sequence length (zero padding) and the positions
/// of the special tokens that receive global/selected attention (question
/// tokens and separators for HotpotQA; CLS + query + sentence separators
/// for MS MARCO document ranking). The generators below draw both from
/// distributions matching the datasets' published statistics, seeded and
/// deterministic (DESIGN.md §1, substitution table).
namespace multigrain {

struct WorkloadSample {
    /// Real tokens; the rest of max_seq_len is zero padding.
    index_t valid_len = 0;
    /// Positions of special tokens (sorted): global rows for Longformer,
    /// selected columns for both models.
    std::vector<index_t> special_tokens;
};

/// HotpotQA-style multi-hop QA inputs: a 15-45-token question (all its
/// tokens are special) plus paragraph separators roughly every 100-200
/// tokens; documents mostly fill the 4096 window.
WorkloadSample sample_hotpotqa(Rng &rng, const ModelConfig &config);

/// MS MARCO document-ranking inputs: CLS + a short query (3-12 tokens)
/// plus sentence separators roughly every 25-60 tokens; document lengths
/// spread widely below the 2048 cap.
WorkloadSample sample_msmarco(Rng &rng, const ModelConfig &config);

/// Dispatches on the model name (Longformer -> HotpotQA, QDS -> MARCO).
WorkloadSample sample_for_model(Rng &rng, const ModelConfig &config);

/// Text I/O for samples, so real tokenized inputs can be plugged in:
///   valid_len <N>
///   tokens <t0> <t1> ...
/// The reader validates ranges and sorts/dedupes tokens; throws Error on
/// malformed input.
void write_workload_sample(const WorkloadSample &sample, std::ostream &os);
WorkloadSample read_workload_sample(std::istream &is);

/// Builds the model's compound sparse pattern for one input sample:
/// local(window) + selected(special) [+ global(special) when the model has
/// one-to-all rows].
CompoundPattern build_model_pattern(const ModelConfig &config,
                                    const WorkloadSample &sample);

// ---- Sequence-length bucketing (the serving layer's plan-reuse knob) ----
//
// A serving system cannot afford one slice-and-dice pass per request: the
// §3.1 offline cost is amortizable only if many requests share a pattern
// fingerprint. mgserve therefore pads every request's sequence length up
// to a bucket boundary and replaces its per-request special-token
// metadata with a canonical per-bucket layout, so every request in the
// same (model, bucket) resolves to the same CompoundPattern fingerprint —
// and the whole batch replays one PlanCache'd layer graph.

/// `valid_len` rounded up to a multiple of `granularity` and clamped to
/// [granularity, cap]. `granularity` must be positive and a multiple of
/// the model block size for the resulting pattern to stay block-aligned.
index_t bucket_len(index_t valid_len, index_t granularity, index_t cap);

/// The canonical fully-packed sample for one bucket: valid_len ==
/// bucket, CLS + a fixed special-token layout derived from the model
/// family's separator statistics (HotpotQA ~150-token paragraphs for
/// global-row models, MARCO ~40-token sentences otherwise). Deterministic
/// — no RNG — so two requests bucketed together share a fingerprint.
WorkloadSample canonical_bucket_sample(const ModelConfig &config,
                                       index_t bucket);

/// `config` shrunk to serve one bucket: max_seq_len = bucket (dense GEMM
/// and attention dims follow). Throws when the bucket is not a positive
/// multiple of the model block or exceeds the model's trained cap.
ModelConfig bucketed_model(const ModelConfig &config, index_t bucket);

}  // namespace multigrain

#endif  // MULTIGRAIN_TRANSFORMER_WORKLOAD_H_
