#ifndef MULTIGRAIN_TRANSFORMER_CONFIG_H_
#define MULTIGRAIN_TRANSFORMER_CONFIG_H_

#include <string>

#include "common/util.h"

/// Sparse transformer model configurations (paper §4).
///
/// Longformer-large (HuggingFace release) and QDS-Transformer-base (the
/// official release) are the two compound-sparse-attention models the
/// paper evaluates end-to-end. The local windows are chosen so the
/// sparse:dense block ratios match the paper's §5.1 discussion (1:3 for
/// Longformer, 2:1 for QDS at block 64).
namespace multigrain {

/// Which compound pattern family the model's attention uses (§2.3).
enum class PatternFamily {
    kLongformer,     ///< local + selected + global.
    kQds,            ///< local + selected.
    kBigBird,        ///< blocked local + blocked random + selected + global.
    kPoolingformer,  ///< local + dilated (two-level window).
};

const char *to_string(PatternFamily family);

struct ModelConfig {
    std::string name;
    index_t num_layers = 0;
    index_t d_model = 0;
    index_t num_heads = 0;
    index_t ffn_dim = 0;
    index_t max_seq_len = 0;
    /// One-sided local attention reach (the paper's "window" is two-sided:
    /// window = 2 * local_window).
    index_t local_window = 0;
    index_t block = 64;
    /// Longformer adds one-to-all (global) rows for its special tokens;
    /// QDS-Transformer only uses the all-to-one (selected) columns.
    bool has_global_rows = false;
    PatternFamily family = PatternFamily::kLongformer;
    /// BigBird: expected random blocks per block row.
    index_t random_blocks = 0;
    /// Poolingformer: second-level (pooled) window reach and stride.
    index_t dilated_window = 0;
    index_t dilated_stride = 1;

    index_t head_dim() const { return d_model / num_heads; }

    /// Longformer-large: 24 layers, d=1024, 16 heads, L=4096, window 512.
    static ModelConfig longformer_large();
    /// QDS-Transformer-base: 12 layers, d=768, 12 heads, L=2048, window 128.
    static ModelConfig qds_base();
    /// BigBird-ETC-base (§2.3): blocked local + random blocks + global
    /// tokens; 12 layers, d=768, 12 heads, L=4096.
    static ModelConfig bigbird_etc_base();
    /// Poolingformer-base (§2.3): two-level window (sliding + pooled);
    /// 12 layers, d=768, 12 heads, L=4096.
    static ModelConfig poolingformer_base();
    /// A small configuration for functional tests and the quickstart
    /// example (fast to run on the CPU).
    static ModelConfig tiny_test();
};

/// Looks a model up by its CLI name ("longformer" | "qds" | "bigbird" |
/// "poolingformer" | "tiny"); throws Error on anything else. This is the
/// workload table mgprof, mgperf, and the bench presets share.
ModelConfig model_config_by_name(const std::string &name);

}  // namespace multigrain

#endif  // MULTIGRAIN_TRANSFORMER_CONFIG_H_
