#include "transformer/layer.h"

#include <cmath>

#include "common/error.h"
#include "core/multihead.h"
#include "kernels/dense.h"

namespace multigrain {

namespace {

HalfMatrix
random_weight(Rng &rng, index_t rows, index_t cols)
{
    // Scale ~ 1/sqrt(fan_in) keeps activations order-1 through any depth.
    const float bound =
        1.0f / std::sqrt(static_cast<float>(rows));
    return random_half_matrix(rng, rows, cols, -bound, bound);
}

}  // namespace

LayerWeights
LayerWeights::random(Rng &rng, const ModelConfig &config)
{
    LayerWeights w;
    w.wq = random_weight(rng, config.d_model, config.d_model);
    w.wk = random_weight(rng, config.d_model, config.d_model);
    w.wv = random_weight(rng, config.d_model, config.d_model);
    w.wo = random_weight(rng, config.d_model, config.d_model);
    w.w1 = random_weight(rng, config.d_model, config.ffn_dim);
    w.w2 = random_weight(rng, config.ffn_dim, config.d_model);
    w.ln1_gamma.assign(static_cast<std::size_t>(config.d_model), 1.0f);
    w.ln1_beta.assign(static_cast<std::size_t>(config.d_model), 0.0f);
    w.ln2_gamma.assign(static_cast<std::size_t>(config.d_model), 1.0f);
    w.ln2_beta.assign(static_cast<std::size_t>(config.d_model), 0.0f);
    return w;
}

void
layer_norm_rows(HalfMatrix &m, const std::vector<float> &gamma,
                const std::vector<float> &beta)
{
    MG_CHECK(static_cast<index_t>(gamma.size()) == m.cols() &&
             static_cast<index_t>(beta.size()) == m.cols())
        << "layer_norm parameter width mismatch";
    const float inv_n = 1.0f / static_cast<float>(m.cols());
    for (index_t r = 0; r < m.rows(); ++r) {
        float mean = 0.0f;
        for (index_t c = 0; c < m.cols(); ++c) {
            mean += float(m.at(r, c));
        }
        mean *= inv_n;
        float var = 0.0f;
        for (index_t c = 0; c < m.cols(); ++c) {
            const float d = float(m.at(r, c)) - mean;
            var += d * d;
        }
        var *= inv_n;
        const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
        for (index_t c = 0; c < m.cols(); ++c) {
            const std::size_t i = static_cast<std::size_t>(c);
            m.at(r, c) = half((float(m.at(r, c)) - mean) * inv_std *
                                  gamma[i] +
                              beta[i]);
        }
    }
}

void
gelu_inplace(HalfMatrix &m)
{
    constexpr float kSqrt2OverPi = 0.7978845608f;
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t c = 0; c < m.cols(); ++c) {
            const float x = float(m.at(r, c));
            const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
            m.at(r, c) = half(0.5f * x * (1.0f + std::tanh(inner)));
        }
    }
}

HalfMatrix
layer_forward(const ModelConfig &config, const AttentionEngine &engine,
              const LayerWeights &weights, const HalfMatrix &hidden)
{
    MG_CHECK(hidden.cols() == config.d_model)
        << "hidden width " << hidden.cols() << " != d_model "
        << config.d_model;
    const index_t seq = hidden.rows();
    const index_t d = config.d_model;

    HalfMatrix q(seq, d), k(seq, d), v(seq, d);
    kernels::dense_gemm_nn(hidden, weights.wq, q);
    kernels::dense_gemm_nn(hidden, weights.wk, k);
    kernels::dense_gemm_nn(hidden, weights.wv, v);

    const HalfMatrix attn = run_multihead(engine, q, k, v);

    HalfMatrix proj(seq, d);
    kernels::dense_gemm_nn(attn, weights.wo, proj);
    HalfMatrix x(seq, d);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t c = 0; c < d; ++c) {
            x.at(r, c) = half(float(hidden.at(r, c)) + float(proj.at(r, c)));
        }
    }
    layer_norm_rows(x, weights.ln1_gamma, weights.ln1_beta);

    HalfMatrix h1(seq, config.ffn_dim);
    kernels::dense_gemm_nn(x, weights.w1, h1);
    gelu_inplace(h1);
    HalfMatrix h2(seq, d);
    kernels::dense_gemm_nn(h1, weights.w2, h2);
    for (index_t r = 0; r < seq; ++r) {
        for (index_t c = 0; c < d; ++c) {
            x.at(r, c) = half(float(x.at(r, c)) + float(h2.at(r, c)));
        }
    }
    layer_norm_rows(x, weights.ln2_gamma, weights.ln2_beta);
    return x;
}

HalfMatrix
model_forward(const ModelConfig &config, const AttentionEngine &engine,
              const std::vector<LayerWeights> &weights,
              const HalfMatrix &hidden)
{
    MG_CHECK(static_cast<index_t>(weights.size()) == config.num_layers)
        << "expected " << config.num_layers << " layer weights, got "
        << weights.size();
    HalfMatrix x = hidden;
    for (const LayerWeights &w : weights) {
        x = layer_forward(config, engine, w, x);
    }
    return x;
}

}  // namespace multigrain
