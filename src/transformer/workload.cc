#include "transformer/workload.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/timer.h"

namespace multigrain {

namespace {

/// Clamps and sorts special tokens into [0, valid_len) without duplicates.
std::vector<index_t>
finalize_tokens(std::vector<index_t> tokens, index_t valid_len)
{
    std::vector<index_t> out;
    out.reserve(tokens.size());
    for (const index_t t : tokens) {
        if (t >= 0 && t < valid_len) {
            out.push_back(t);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

}  // namespace

WorkloadSample
sample_hotpotqa(Rng &rng, const ModelConfig &config)
{
    WorkloadSample s;
    const index_t cap = config.max_seq_len;
    // HotpotQA contexts (10 paragraphs) mostly exceed the window; lengths
    // concentrate near the cap with a tail of shorter inputs.
    const index_t lo = std::max<index_t>(cap / 2, 16);
    s.valid_len = std::min(cap, rng.next_range(lo, cap + cap / 4));

    std::vector<index_t> tokens;
    tokens.push_back(0);  // CLS.
    const index_t question = rng.next_range(15, 45);
    for (index_t t = 1; t <= question && t < s.valid_len; ++t) {
        tokens.push_back(t);  // Question tokens get global attention.
    }
    // Paragraph separators through the context.
    index_t pos = question + 1;
    while (pos < s.valid_len) {
        pos += rng.next_range(100, 200);
        tokens.push_back(pos);
    }
    s.special_tokens = finalize_tokens(std::move(tokens), s.valid_len);
    return s;
}

WorkloadSample
sample_msmarco(Rng &rng, const ModelConfig &config)
{
    WorkloadSample s;
    const index_t cap = config.max_seq_len;
    // MARCO document lengths are broadly distributed under the cap.
    s.valid_len = std::min(cap, rng.next_range(cap / 3, cap + cap / 8));

    std::vector<index_t> tokens;
    tokens.push_back(0);  // CLS.
    const index_t query = rng.next_range(3, 12);
    for (index_t t = 1; t <= query && t < s.valid_len; ++t) {
        tokens.push_back(t);
    }
    // Sentence separators: QDS-Transformer attends every sentence head.
    index_t pos = query + 1;
    while (pos < s.valid_len) {
        pos += rng.next_range(25, 60);
        tokens.push_back(pos);
    }
    s.special_tokens = finalize_tokens(std::move(tokens), s.valid_len);
    return s;
}

WorkloadSample
sample_for_model(Rng &rng, const ModelConfig &config)
{
    if (config.has_global_rows) {
        return sample_hotpotqa(rng, config);
    }
    return sample_msmarco(rng, config);
}

void
write_workload_sample(const WorkloadSample &sample, std::ostream &os)
{
    os << "valid_len " << sample.valid_len << "\n";
    os << "tokens";
    for (const index_t t : sample.special_tokens) {
        os << " " << t;
    }
    os << "\n";
}

WorkloadSample
read_workload_sample(std::istream &is)
{
    WorkloadSample sample;
    std::string keyword;
    MG_CHECK(static_cast<bool>(is >> keyword) && keyword == "valid_len")
        << "workload sample must start with 'valid_len <N>'";
    MG_CHECK(static_cast<bool>(is >> sample.valid_len) &&
             sample.valid_len > 0)
        << "workload sample needs a positive valid_len";
    MG_CHECK(static_cast<bool>(is >> keyword) && keyword == "tokens")
        << "workload sample must continue with 'tokens ...'";
    std::string rest;
    std::getline(is, rest);
    std::istringstream tokens(rest);
    index_t t;
    while (tokens >> t) {
        MG_CHECK(t >= 0 && t < sample.valid_len)
            << "special token " << t << " outside [0, " << sample.valid_len
            << ")";
        sample.special_tokens.push_back(t);
    }
    sample.special_tokens =
        finalize_tokens(std::move(sample.special_tokens), sample.valid_len);
    return sample;
}

index_t
bucket_len(index_t valid_len, index_t granularity, index_t cap)
{
    MG_CHECK(granularity > 0) << "bucket granularity must be positive";
    MG_CHECK(cap >= granularity)
        << "cap " << cap << " below bucket granularity " << granularity;
    if (valid_len < 1) {
        valid_len = 1;
    }
    const index_t rounded =
        (valid_len + granularity - 1) / granularity * granularity;
    return std::min(rounded, cap);
}

WorkloadSample
canonical_bucket_sample(const ModelConfig &config, index_t bucket)
{
    WorkloadSample s;
    s.valid_len = bucket;
    std::vector<index_t> tokens;
    tokens.push_back(0);  // CLS.
    // A fixed prefix of special tokens stands in for the question/query
    // span, and fixed-stride separators for the paragraph/sentence heads;
    // midpoints of the generators' ranges, so bucketed metadata carries
    // the same density the per-request samples would on average.
    const index_t prefix = config.has_global_rows ? 30 : 8;
    const index_t stride = config.has_global_rows ? 150 : 40;
    for (index_t t = 1; t <= prefix && t < bucket; ++t) {
        tokens.push_back(t);
    }
    for (index_t pos = prefix + stride; pos < bucket; pos += stride) {
        tokens.push_back(pos);
    }
    s.special_tokens = finalize_tokens(std::move(tokens), bucket);
    return s;
}

ModelConfig
bucketed_model(const ModelConfig &config, index_t bucket)
{
    MG_CHECK(bucket > 0 && bucket % config.block == 0)
        << "bucket " << bucket << " is not a positive multiple of block "
        << config.block;
    MG_CHECK(bucket <= config.max_seq_len)
        << "bucket " << bucket << " exceeds model cap "
        << config.max_seq_len;
    ModelConfig bucketed = config;
    bucketed.max_seq_len = bucket;
    return bucketed;
}

CompoundPattern
build_model_pattern(const ModelConfig &config, const WorkloadSample &sample)
{
    const ScopedTimer timer("offline.build_model_pattern");
    MG_CHECK(sample.valid_len > 0 && sample.valid_len <= config.max_seq_len)
        << "sample valid_len " << sample.valid_len
        << " out of range for model cap " << config.max_seq_len;
    CompoundPattern pattern;
    pattern.seq_len = config.max_seq_len;
    pattern.valid_len = sample.valid_len;

    switch (config.family) {
      case PatternFamily::kLongformer:
      case PatternFamily::kQds:
        pattern.atoms.push_back(AtomicPattern::local(config.local_window));
        pattern.atoms.push_back(
            AtomicPattern::selected(sample.special_tokens));
        break;
      case PatternFamily::kBigBird: {
        // Blocked band of ~local_window reach plus random blocks; random
        // draws are input dependent (seeded from the sample).
        const index_t radius =
            std::max<index_t>(1, config.local_window / config.block);
        pattern.atoms.push_back(
            AtomicPattern::blocked_local(config.block, radius));
        pattern.atoms.push_back(AtomicPattern::blocked_random(
            config.block, config.random_blocks,
            0x9e3779b97f4a7c15ull ^
                static_cast<std::uint64_t>(sample.valid_len)));
        pattern.atoms.push_back(
            AtomicPattern::selected(sample.special_tokens));
        break;
      }
      case PatternFamily::kPoolingformer:
        pattern.atoms.push_back(AtomicPattern::local(config.local_window));
        pattern.atoms.push_back(AtomicPattern::dilated(
            config.dilated_window, config.dilated_stride));
        break;
    }
    if (config.has_global_rows) {
        pattern.atoms.push_back(AtomicPattern::global(sample.special_tokens));
    }
    return pattern;
}

}  // namespace multigrain
