#include "profiler/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace multigrain::prof {

double
percentile(std::vector<double> values, double p)
{
    MG_CHECK(p >= 0.0 && p <= 100.0) << "percentile " << p
                                     << " outside [0, 100]";
    if (values.empty()) {
        return 0.0;
    }
    // NaN breaks std::sort's strict weak ordering and would poison the
    // interpolation silently; +/-inf would make every interpolated rank
    // infinite. Reject rather than guess.
    for (const double v : values) {
        MG_CHECK(std::isfinite(v))
            << "percentile over a non-finite sample " << v;
    }
    std::sort(values.begin(), values.end());
    if (values.size() == 1) {
        return values.front();
    }
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

LatencySummary
summarize_latencies(std::vector<double> values)
{
    LatencySummary s;
    s.count = values.size();
    if (values.empty()) {
        return s;
    }
    // max must come from the sample, not from the zero default — an
    // all-negative sample (e.g. clock-skewed latencies a caller wants
    // summarized anyway) would otherwise report max = 0.
    s.max = values.front();
    double sum = 0;
    for (const double v : values) {
        MG_CHECK(std::isfinite(v))
            << "latency summary over a non-finite sample " << v;
        sum += v;
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(values.size());
    s.p50 = percentile(values, 50.0);
    s.p95 = percentile(values, 95.0);
    s.p99 = percentile(values, 99.0);
    return s;
}

}  // namespace multigrain::prof
