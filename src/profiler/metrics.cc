#include "profiler/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>

#include "common/error.h"

namespace multigrain::prof {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Decomposed kernel name: [<tag>.][attn.]<op>[.<part>...].
struct NameParts {
    std::string layer;     ///< "L07" style tag, empty when absent.
    std::string op;        ///< "sddmm", "softmax", "gemm", ...
    std::string subphase;  ///< op plus one more segment when present.
};

bool
is_layer_tag(const std::string &seg)
{
    if (seg.size() < 2 || !std::isupper(static_cast<unsigned char>(seg[0]))) {
        return false;
    }
    for (std::size_t i = 1; i < seg.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(seg[i]))) {
            return false;
        }
    }
    return true;
}

NameParts
split_name(const std::string &name)
{
    std::vector<std::string> segs;
    std::size_t pos = 0;
    while (pos <= name.size()) {
        const std::size_t dot = name.find('.', pos);
        if (dot == std::string::npos) {
            segs.push_back(name.substr(pos));
            break;
        }
        segs.push_back(name.substr(pos, dot - pos));
        pos = dot + 1;
    }

    NameParts parts;
    std::size_t i = 0;
    if (i < segs.size() && is_layer_tag(segs[i])) {
        parts.layer = segs[i];
        ++i;
    }
    if (i < segs.size() && segs[i] == "attn") {
        ++i;
    }
    if (i < segs.size() && !segs[i].empty()) {
        parts.op = segs[i];
        parts.subphase = parts.op;
        if (i + 1 < segs.size() && !segs[i + 1].empty()) {
            parts.subphase += "." + segs[i + 1];
        }
    } else {
        parts.op = name;  // No dots at all: the name is its own phase.
        parts.subphase = name;
    }
    return parts;
}

/// Incremental accumulator behind PhaseStats.
struct Accum {
    PhaseStats stats;
    double min_start = kInf;
    double max_end = -kInf;
    double weighted_occupancy = 0;  // sum(duration * occupancy fraction)

    void add(const sim::KernelStats &k, const sim::DeviceSpec &device)
    {
        stats.kernel_count += 1;
        stats.busy_us += k.duration_us();
        stats.work += k.work;
        min_start = std::min(min_start, k.start_us);
        max_end = std::max(max_end, k.end_us);
        const double capacity = static_cast<double>(device.num_sms) *
                                std::max(1, k.occupancy_per_sm);
        const double frac =
            capacity > 0
                ? std::min(1.0, k.avg_concurrency / capacity)
                : 0;
        weighted_occupancy += frac * k.duration_us();
    }

    PhaseStats finish(const sim::DeviceSpec &device,
                      double bound_threshold) const
    {
        PhaseStats out = stats;
        if (out.kernel_count == 0) {
            return out;
        }
        out.start_us = min_start;
        out.end_us = max_end;
        out.span_us = std::max(0.0, max_end - min_start);
        out.overlap = out.span_us > 0 ? out.busy_us / out.span_us : 0;
        out.achieved_occupancy =
            out.busy_us > 0 ? weighted_occupancy / out.busy_us : 0;

        if (out.span_us > 0) {
            const double tensor_peak =
                device.sm_tensor_flops_per_us() * device.num_sms;
            const double cuda_peak =
                device.sm_cuda_flops_per_us() * device.num_sms;
            const double dram_peak = device.dram_bytes_per_us();
            const double l2_peak = device.l2_bytes_per_us();
            out.tensor_util =
                out.work.tensor_flops / (tensor_peak * out.span_us);
            out.cuda_util = out.work.cuda_flops / (cuda_peak * out.span_us);
            out.dram_util =
                out.work.dram_bytes() / (dram_peak * out.span_us);
            out.l2_util = out.work.mem_bytes() / (l2_peak * out.span_us);
        }
        const double utils[4] = {out.tensor_util, out.cuda_util,
                                 out.dram_util, out.l2_util};
        const sim::Bound bounds[4] = {sim::Bound::kTensor,
                                      sim::Bound::kCuda, sim::Bound::kDram,
                                      sim::Bound::kL2};
        int best = 0;
        for (int i = 1; i < 4; ++i) {
            if (utils[i] > utils[best]) {
                best = i;
            }
        }
        out.bound = utils[best] >= bound_threshold ? bounds[best]
                                                   : sim::Bound::kLatency;
        return out;
    }
};

std::vector<PhaseStats>
finish_groups(const std::map<std::string, Accum> &groups,
              const sim::DeviceSpec &device, double bound_threshold)
{
    std::vector<PhaseStats> out;
    out.reserve(groups.size());
    for (const auto &[name, accum] : groups) {
        PhaseStats stats = accum.finish(device, bound_threshold);
        stats.name = name;
        out.push_back(std::move(stats));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PhaseStats &a, const PhaseStats &b) {
                         return a.start_us < b.start_us;
                     });
    return out;
}

const PhaseStats *
find_in(const std::vector<PhaseStats> &phases, const std::string &name)
{
    for (const PhaseStats &p : phases) {
        if (p.name == name) {
            return &p;
        }
    }
    return nullptr;
}

}  // namespace

const PhaseStats *
ProfiledRun::find_op(const std::string &name) const
{
    return find_in(ops, name);
}

const PhaseStats *
ProfiledRun::find_subphase(const std::string &name) const
{
    return find_in(subphases, name);
}

const PhaseStats *
ProfiledRun::find_layer(const std::string &name) const
{
    return find_in(layers, name);
}

PhaseStats
carve_prefix(const sim::SimResult &result, const sim::DeviceSpec &device,
             const std::string &prefix, double bound_threshold)
{
    Accum accum;
    for (const auto &k : result.kernels) {
        if (k.name.rfind(prefix, 0) == 0) {
            accum.add(k, device);
        }
    }
    PhaseStats stats = accum.finish(device, bound_threshold);
    stats.name = prefix;
    return stats;
}

ProfiledRun
profile(const sim::SimResult &result, const sim::DeviceSpec &device,
        const ProfileOptions &options)
{
    ProfiledRun run;
    run.device = device.name;
    run.total_us = result.total_us;
    run.work = result.work;
    run.report = sim::characterize(result, device, options.bound_threshold);

    std::map<std::string, Accum> by_op;
    std::map<std::string, Accum> by_subphase;
    std::map<std::string, Accum> by_layer;
    for (const auto &k : result.kernels) {
        const NameParts parts = split_name(k.name);
        by_op[parts.op].add(k, device);
        by_subphase[parts.subphase].add(k, device);
        if (!parts.layer.empty()) {
            by_layer[parts.layer].add(k, device);
        }
    }
    run.ops = finish_groups(by_op, device, options.bound_threshold);
    run.subphases =
        finish_groups(by_subphase, device, options.bound_threshold);
    run.layers = finish_groups(by_layer, device, options.bound_threshold);

    if (options.include_host_timers) {
        run.host_timers = host_timer_stats();
    }
    return run;
}

const std::vector<MetricDef> &
phase_metric_registry()
{
    static const std::vector<MetricDef> *registry =
        new std::vector<MetricDef>{
            {"kernels", "count", "number of kernels carved into the phase",
             [](const PhaseStats &p) {
                 return static_cast<double>(p.kernel_count);
             }},
            {"span_us", "us",
             "wall-clock extent (max end - min start) of the phase",
             [](const PhaseStats &p) { return p.span_us; }},
            {"busy_us", "us", "sum of member kernel durations",
             [](const PhaseStats &p) { return p.busy_us; }},
            {"overlap", "ratio",
             "busy/span; >1 means multi-stream overlap",
             [](const PhaseStats &p) { return p.overlap; }},
            {"start_us", "us", "earliest kernel start in the phase",
             [](const PhaseStats &p) { return p.start_us; }},
            {"end_us", "us", "latest kernel end in the phase",
             [](const PhaseStats &p) { return p.end_us; }},
            {"tensor_flops", "flop", "tensor-pipe work in the phase",
             [](const PhaseStats &p) { return p.work.tensor_flops; }},
            {"cuda_flops", "flop", "CUDA-pipe work in the phase",
             [](const PhaseStats &p) { return p.work.cuda_flops; }},
            {"dram_bytes", "byte", "DRAM traffic of the phase",
             [](const PhaseStats &p) { return p.work.dram_bytes(); }},
            {"l2_bytes", "byte", "additional L2-served traffic",
             [](const PhaseStats &p) { return p.work.l2_bytes; }},
            {"tensor_util", "ratio",
             "tensor-pipe utilization over the span",
             [](const PhaseStats &p) { return p.tensor_util; }},
            {"cuda_util", "ratio", "CUDA-pipe utilization over the span",
             [](const PhaseStats &p) { return p.cuda_util; }},
            {"dram_util", "ratio", "DRAM utilization over the span",
             [](const PhaseStats &p) { return p.dram_util; }},
            {"l2_util", "ratio", "L2 utilization over the span",
             [](const PhaseStats &p) { return p.l2_util; }},
            {"achieved_occupancy", "ratio",
             "duration-weighted resident-TB fraction of capacity",
             [](const PhaseStats &p) { return p.achieved_occupancy; }},
        };
    return *registry;
}

namespace {

void
print_phase_rows(const std::vector<PhaseStats> &phases, const char *title,
                 std::ostream &os)
{
    if (phases.empty()) {
        return;
    }
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-24s %4s %10s %10s %7s %8s %6s %7s %9s\n", title, "#k",
                  "span us", "busy us", "ovlp", "dram MB", "occ%",
                  "dram%", "bound");
    os << line;
    for (const PhaseStats &p : phases) {
        std::snprintf(line, sizeof line,
                      "%-24s %4d %10.1f %10.1f %6.2fx %8.1f %5.0f%% "
                      "%6.0f%% %9s\n",
                      p.name.substr(0, 24).c_str(), p.kernel_count,
                      p.span_us, p.busy_us, p.overlap,
                      p.work.dram_bytes() / 1e6,
                      100 * p.achieved_occupancy, 100 * p.dram_util,
                      sim::to_string(p.bound));
        os << line;
    }
}

}  // namespace

void
print_phases(const ProfiledRun &run, std::ostream &os)
{
    print_phase_rows(run.ops, "phase", os);
    os << "\n";
    print_phase_rows(run.subphases, "subphase", os);
    if (!run.layers.empty()) {
        os << "\n";
        // Layers are numerous (24 for Longformer-large); print the
        // slowest few plus an aggregate line.
        std::vector<PhaseStats> by_span = run.layers;
        std::stable_sort(by_span.begin(), by_span.end(),
                         [](const PhaseStats &a, const PhaseStats &b) {
                             return a.span_us > b.span_us;
                         });
        if (by_span.size() > 8) {
            by_span.resize(8);
        }
        print_phase_rows(by_span, "layer (top by span)", os);
    }
    char line[256];
    std::snprintf(line, sizeof line,
                  "total %.1f us | dram %.3f GB | tensor %.3f GF | cuda "
                  "%.3f GF\n",
                  run.total_us, run.work.dram_bytes() / 1e9,
                  run.work.tensor_flops / 1e9, run.work.cuda_flops / 1e9);
    os << line;
}

}  // namespace multigrain::prof
