#include "profiler/history.h"

#include <algorithm>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/gitinfo.h"
#include "common/logging.h"
#include "profiler/export.h"

namespace multigrain::prof {

namespace {

std::string
utc_timestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    if (gmtime_s(&tm, &now) != 0) {
        return "";
    }
#else
    if (gmtime_r(&now, &tm) == nullptr) {
        return "";
    }
#endif
    char buf[32];
    if (std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm) == 0) {
        return "";
    }
    return buf;
}

}  // namespace

RunManifest
RunManifest::collect(const std::string &device)
{
    RunManifest m;
    const GitInfo &git = git_info();
    m.git_sha = git.sha;
    m.git_dirty = git.dirty;
    m.device = device;
    m.schema_version = kBenchSchemaVersion;
    m.timestamp = utc_timestamp();
    return m;
}

void
write_manifest(JsonWriter &w, const RunManifest &manifest)
{
    w.begin_object();
    w.field("git_sha", manifest.git_sha);
    w.field("git_dirty", manifest.git_dirty);
    w.field("device", manifest.device);
    w.field("schema_version", manifest.schema_version);
    w.field("timestamp", manifest.timestamp);
    w.end_object();
}

RunManifest
manifest_from_json(const JsonValue &doc)
{
    RunManifest m;
    if (!doc.is_object()) {
        return m;
    }
    if (const JsonValue *v = doc.find("git_sha")) {
        m.git_sha = v->as_string();
    }
    if (const JsonValue *v = doc.find("git_dirty")) {
        m.git_dirty = v->as_bool();
    }
    if (const JsonValue *v = doc.find("device")) {
        m.device = v->as_string();
    }
    if (const JsonValue *v = doc.find("schema_version")) {
        m.schema_version = static_cast<int>(v->as_number());
    }
    if (const JsonValue *v = doc.find("timestamp")) {
        m.timestamp = v->as_string();
    }
    return m;
}

std::string
BenchRow::key() const
{
    std::vector<std::pair<std::string, std::string>> sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key = series;
    for (const auto &[k, v] : sorted) {
        key += "|" + k + "=" + v;
    }
    return key;
}

const double *
BenchRow::find_metric(const std::string &name) const
{
    for (const auto &[k, v] : metrics) {
        if (k == name) {
            return &v;
        }
    }
    return nullptr;
}

void
BenchRun::write_json(JsonWriter &w) const
{
    w.begin_object();
    w.field("schema", kBenchSchema);
    w.field("schema_version", kBenchSchemaVersion);
    w.field("name", name);
    w.key("manifest");
    write_manifest(w, manifest);
    w.key("rows");
    w.begin_array();
    for (const BenchRow &row : rows) {
        w.begin_object();
        w.field("series", row.series);
        for (const auto &[k, v] : row.labels) {
            w.field(k, v);
        }
        for (const auto &[k, v] : row.metrics) {
            w.field(k, v);
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

std::string
BenchRun::to_json() const
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        write_json(w);
    }
    return os.str();
}

const BenchRow *
BenchRun::find_row(const std::string &key) const
{
    for (const BenchRow &row : rows) {
        if (row.key() == key) {
            return &row;
        }
    }
    return nullptr;
}

BenchRun
bench_run_from_json(const JsonValue &doc)
{
    MG_CHECK(doc.is_object()) << "bench document must be an object";
    MG_CHECK(doc.at("schema").as_string() == kBenchSchema)
        << "unexpected schema \"" << doc.at("schema").as_string() << "\"";

    BenchRun run;
    run.name = doc.at("name").as_string();
    if (const JsonValue *m = doc.find("manifest")) {
        run.manifest = manifest_from_json(*m);
    } else {
        // A v1 artifact: rows are compatible, provenance is unknown.
        run.manifest.schema_version =
            static_cast<int>(doc.at("schema_version").as_number());
    }

    const JsonValue &rows = doc.at("rows");
    MG_CHECK(rows.is_array()) << "\"rows\" must be an array";
    for (const JsonValue &rv : rows.array) {
        MG_CHECK(rv.is_object()) << "bench row must be an object";
        BenchRow row;
        row.series = rv.at("series").as_string();
        for (const auto &[k, v] : rv.object) {
            if (k == "series") {
                continue;
            }
            switch (v.type) {
              case JsonValue::Type::kString:
                row.labels.emplace_back(k, v.string);
                break;
              case JsonValue::Type::kNumber:
                row.metrics.emplace_back(k, v.number);
                break;
              case JsonValue::Type::kNull:
                // A non-finite metric (emitted as null); skip — the
                // comparator treats it as absent.
                break;
              default:
                throw Error("bench row field \"" + k +
                            "\" is neither label nor metric");
            }
        }
        run.rows.push_back(std::move(row));
    }
    return run;
}

BenchRun
bench_run_from_json(const std::string &text)
{
    return bench_run_from_json(json_parse(text));
}

void
append_history(const std::string &path, const BenchRun &run)
{
    std::ofstream file(path, std::ios::app);
    MG_CHECK(file.good()) << "cannot open history corpus " << path;
    file << run.to_json() << "\n";
    file.flush();
    MG_CHECK(file.good()) << "failed appending to " << path;
}

HistoryLoad
load_history(const std::string &path)
{
    HistoryLoad load;
    std::ifstream file(path);
    if (!file.good()) {
        return load;  // No corpus yet.
    }
    std::string line;
    int lineno = 0;
    while (std::getline(file, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        try {
            load.runs.push_back(bench_run_from_json(line));
        } catch (const Error &e) {
            ++load.corrupt_lines;
            log_message(LogLevel::kWarn,
                        path + ":" + std::to_string(lineno) +
                            ": skipping corrupt history line (" +
                            e.what() + ")");
        }
    }
    return load;
}

std::vector<BenchRun>
load_baseline_dir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<BenchRun> baselines;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        return baselines;
    }
    std::vector<fs::path> files;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".json") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &path : files) {
        std::ifstream file(path);
        MG_CHECK(file.good()) << "cannot read baseline " << path.string();
        std::ostringstream buffer;
        buffer << file.rdbuf();
        try {
            baselines.push_back(bench_run_from_json(buffer.str()));
        } catch (const Error &e) {
            throw Error("baseline " + path.string() + ": " + e.what());
        }
    }
    return baselines;
}

void
write_baseline(const std::string &dir, const BenchRun &run)
{
    namespace fs = std::filesystem;
    MG_CHECK(!run.name.empty()) << "baseline run needs a name";
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string path = dir + "/" + run.name + ".json";
    std::ofstream file(path);
    MG_CHECK(file.good()) << "cannot write baseline " << path;
    file << run.to_json() << "\n";
    file.flush();
    MG_CHECK(file.good()) << "failed writing " << path;
}

}  // namespace multigrain::prof
