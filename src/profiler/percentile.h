#ifndef MULTIGRAIN_PROFILER_PERCENTILE_H_
#define MULTIGRAIN_PROFILER_PERCENTILE_H_

#include <vector>

/// Latency-percentile statistics for the serving layer (ISSUE 4).
///
/// Serving systems are judged by their tail, not their mean: an SLO is a
/// bound on p95/p99 request latency under load. mgserve collects one
/// latency sample per completed request and reduces them here; the same
/// summary feeds the mgserve console table, the "mgserve.bench" rows the
/// mgperf gate diffs, and the per-SLO-class breakdown.
namespace multigrain::prof {

/// The p-th percentile (p in [0, 100]) of `values` by linear
/// interpolation between closest ranks (the "exclusive" variant NumPy
/// calls "linear"): deterministic, exact for the small sample counts a
/// simulated traffic preset produces. p = 0 is the sample minimum and
/// p = 100 the maximum. Returns 0 for an empty sample; throws Error for
/// p outside [0, 100] or any non-finite sample value (NaN would break
/// the sort's ordering silently).
double percentile(std::vector<double> values, double p);

/// One latency distribution, reduced to the numbers a serving dashboard
/// shows. All values are 0 when count == 0. Negative samples are legal
/// (max is the true sample maximum, not clamped at 0); non-finite
/// samples throw Error.
struct LatencySummary {
    std::size_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
};

LatencySummary summarize_latencies(std::vector<double> values);

}  // namespace multigrain::prof

#endif  // MULTIGRAIN_PROFILER_PERCENTILE_H_
