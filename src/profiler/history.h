#ifndef MULTIGRAIN_PROFILER_HISTORY_H_
#define MULTIGRAIN_PROFILER_HISTORY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

/// The benchmark-corpus layer behind mgperf (ISSUE 3): a provenance
/// manifest stamped onto every bench artifact, an append-only
/// `bench_history.jsonl` corpus of manifest-stamped runs, and the
/// committed per-preset baselines under `bench/baselines/` that the
/// regression gate diffs against.
///
/// A "run" is what one bench binary or one mgperf preset produces: a
/// name, a RunManifest, and the flat label/metric rows the "mgprof.bench"
/// schema has carried since PR 1. Rows are keyed by series plus every
/// label (workload / device / slice mode / pattern), so the comparator in
/// profiler/regress.h can match baseline and current rows positionally
/// independent of emission order.
namespace multigrain::prof {

/// Provenance header attached to every bench artifact and history line:
/// enough to answer "which code, which device, when" for any recorded
/// number. collect() never throws — unresolvable fields degrade to
/// "unknown"/empty.
struct RunManifest {
    std::string git_sha = "unknown";
    bool git_dirty = false;
    /// CLI device name ("a100"/"rtx3090"); empty for multi-device runs.
    std::string device;
    int schema_version = 0;
    /// ISO-8601 UTC, e.g. "2026-08-06T12:34:56Z"; empty when unknown.
    std::string timestamp;

    /// Stamps the current process: git info (common/gitinfo), wall-clock
    /// UTC time, kBenchSchemaVersion.
    static RunManifest collect(const std::string &device = "");
};

void write_manifest(JsonWriter &w, const RunManifest &manifest);
/// Parses a manifest object; missing fields keep their defaults.
RunManifest manifest_from_json(const JsonValue &doc);

/// One flat bench row: a series tag plus ordered label (string) and
/// metric (number) cells — the in-memory form of the objects inside a
/// "mgprof.bench" document's "rows" array.
struct BenchRow {
    std::string series;
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> metrics;

    /// Canonical row identity: "series|k=v|k=v" with labels sorted by
    /// key, so two rows match regardless of label emission order.
    std::string key() const;
    /// nullptr when the metric is absent.
    const double *find_metric(const std::string &name) const;
};

/// One recorded run: the unit history lines, baseline files, and the
/// regression comparator all operate on.
struct BenchRun {
    std::string name;
    RunManifest manifest;
    std::vector<BenchRow> rows;

    std::string to_json() const;
    void write_json(JsonWriter &w) const;

    const BenchRow *find_row(const std::string &key) const;
};

/// Parses a "mgprof.bench" document (v1 without manifest, or v2 with).
/// Fields other than "series" inside a row are classified by JSON type:
/// strings are labels, numbers are metrics. Throws Error on schema
/// mismatch or malformed structure.
BenchRun bench_run_from_json(const JsonValue &doc);
BenchRun bench_run_from_json(const std::string &text);

// ---- History corpus (JSONL) ---------------------------------------------

/// Appends `run` as one JSON line to the corpus at `path` (created when
/// missing). Throws Error on I/O failure.
void append_history(const std::string &path, const BenchRun &run);

struct HistoryLoad {
    std::vector<BenchRun> runs;
    /// Lines that failed to parse (truncated writes, merge debris). They
    /// are skipped with a warning — one bad line must not take out the
    /// corpus.
    int corrupt_lines = 0;
};

/// Loads the corpus; a missing file is an empty history, not an error.
HistoryLoad load_history(const std::string &path);

// ---- Committed baselines ------------------------------------------------

/// Loads every `*.json` under `dir` as a BenchRun (sorted by file name).
/// A missing directory is an empty baseline set; an unparsable file
/// throws — committed baselines are not allowed to rot silently.
std::vector<BenchRun> load_baseline_dir(const std::string &dir);

/// Writes `run` to `<dir>/<run.name>.json` (creating `dir` if needed) —
/// the `mgperf --update-baselines` path. Throws Error on I/O failure.
void write_baseline(const std::string &dir, const BenchRun &run);

}  // namespace multigrain::prof

#endif  // MULTIGRAIN_PROFILER_HISTORY_H_
