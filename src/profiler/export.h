#ifndef MULTIGRAIN_PROFILER_EXPORT_H_
#define MULTIGRAIN_PROFILER_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/json.h"
#include "gpusim/engine.h"
#include "gpusim/report.h"
#include "profiler/metrics.h"

/// Machine-readable export of simulator results and profiles.
///
/// Every JSON document carries a `schema` tag ("mgprof.simresult",
/// "mgprof.report", "mgprof.profile") and a `schema_version` integer.
/// The version is bumped when a field changes meaning or disappears;
/// adding fields is backward-compatible and does not bump it. Tests pin
/// the current version so schema drift is a deliberate act.
///
/// Non-finite metric values (e.g. the arithmetic intensity of a kernel
/// with zero DRAM traffic) are emitted as JSON null.
namespace multigrain::prof {

inline constexpr int kSchemaVersion = 1;
inline constexpr const char *kSimResultSchema = "mgprof.simresult";
inline constexpr const char *kReportSchema = "mgprof.report";
inline constexpr const char *kProfileSchema = "mgprof.profile";
inline constexpr const char *kBenchSchema = "mgprof.bench";

/// The bench schema has its own version: v2 added the RunManifest header
/// ("manifest" object: git sha/dirty, device, timestamp) to every
/// artifact. The row schema is unchanged from v1, and v1 documents (no
/// manifest) are still readable — prof::bench_run_from_json substitutes
/// an "unknown" manifest.
inline constexpr int kBenchSchemaVersion = 2;

/// mgperf's regression-report document ("mgperf.report").
inline constexpr const char *kRegressionSchema = "mgperf.report";
inline constexpr int kRegressionSchemaVersion = 1;

/// mgtrace's serving-trace documents (src/serve/trace.h): the
/// SLO-attribution report, the event-log lines, and the flight-recorder
/// incident dumps all tag themselves so artifacts remain
/// self-describing when they leave the build tree.
inline constexpr const char *kServeTraceReportSchema = "mgtrace.report";
inline constexpr int kServeTraceReportVersion = 1;
inline constexpr const char *kServeIncidentSchema = "mgtrace.incident";
inline constexpr int kServeIncidentVersion = 1;

/// mgcost's per-tenant cost-attribution report (src/serve/cost.h).
inline constexpr const char *kServeCostReportSchema = "mgcost.report";
inline constexpr int kServeCostReportVersion = 1;

/// mgcluster's fleet report (src/serve/cluster.h): per-replica serving
/// summaries, router counters, the merged tenant ledger, and the
/// fleet-wide conservation verdict.
inline constexpr const char *kClusterReportSchema = "mgcluster.report";
inline constexpr int kClusterReportVersion = 1;

// ---- JSON ---------------------------------------------------------------

void write_json(const sim::SimResult &result, std::ostream &os);
void write_json(const sim::WorkloadReport &report, std::ostream &os);
void write_json(const ProfiledRun &run, std::ostream &os);

std::string to_json(const sim::SimResult &result);
std::string to_json(const sim::WorkloadReport &report);
std::string to_json(const ProfiledRun &run);

/// Reads back a SimResult emitted by write_json (round-trip). Validates
/// the schema tag and version; throws Error on mismatch or malformed
/// input.
sim::SimResult sim_result_from_json(const JsonValue &doc);
sim::SimResult sim_result_from_json(const std::string &text);

// ---- CSV ----------------------------------------------------------------

/// Carved phases, one row per phase (ops then subphases then layers,
/// tagged by a `group` column); columns come from phase_metric_registry().
void write_phase_csv(const ProfiledRun &run, std::ostream &os);

/// Per-kernel characterization rows.
void write_kernel_csv(const sim::WorkloadReport &report, std::ostream &os);

// ---- Files --------------------------------------------------------------

/// Writes `content` to `path`; throws Error on I/O failure.
void write_text_file(const std::string &path, const std::string &content);

}  // namespace multigrain::prof

#endif  // MULTIGRAIN_PROFILER_EXPORT_H_
