#include "profiler/regress.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "common/error.h"

namespace multigrain::prof {

namespace {

bool
ends_with(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

std::string
fmt_value(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
fmt_percent(double fraction)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%+.2f%%", fraction * 100.0);
    return buf;
}

std::string
describe_manifest(const RunManifest &m)
{
    std::string s = m.git_sha.substr(0, 12);
    s += m.git_dirty ? " (dirty)" : " (clean)";
    if (!m.timestamp.empty()) {
        s += " @ " + m.timestamp;
    }
    return s;
}

}  // namespace

const char *
to_string(Direction direction)
{
    switch (direction) {
      case Direction::kLowerIsBetter:
        return "lower-is-better";
      case Direction::kHigherIsBetter:
        return "higher-is-better";
      case Direction::kInformational:
        return "informational";
    }
    return "?";
}

const char *
to_string(DeltaStatus status)
{
    switch (status) {
      case DeltaStatus::kOk:
        return "ok";
      case DeltaStatus::kImproved:
        return "improved";
      case DeltaStatus::kRegressed:
        return "regressed";
      case DeltaStatus::kMissingMetric:
        return "missing-metric";
      case DeltaStatus::kNewMetric:
        return "new-metric";
    }
    return "?";
}

MetricPolicy
default_metric_policy(const std::string &key)
{
    // Plan-cache counters: deterministic runs make them exact, so a
    // single stray miss (a fingerprint or device-key change breaking
    // reuse) trips the gate rather than hiding inside a percentage.
    if (key == "plan_cache.entries" || key == "plan_cache.capacity") {
        return {Direction::kInformational, 0.0, 0.0};
    }
    if (key == "plan_cache.hits" || key == "plan_cache.hit_rate") {
        return {Direction::kHigherIsBetter, 0.0,
                key == "plan_cache.hits" ? 0.25 : 1e-9};
    }
    if (key == "plan_cache.misses" || key == "plan_cache.evictions") {
        return {Direction::kLowerIsBetter, 0.0, 0.25};
    }
    // Serving counters (mgserve rows): gpusim-backed serving runs are
    // deterministic, so shed/timeout/deadline counts are exact — one
    // extra shed request is a real admission or scheduling change.
    // Volume/shape counters (requests issued, rounds dispatched, queue
    // high-water mark, mean batch size) describe the workload rather
    // than a cost and never gate.
    if (key == "rejected" || key == "timed_out" || key == "deadline_miss") {
        return {Direction::kLowerIsBetter, 0.0, 0.25};
    }
    if (key == "requests" || key == "completed" || key == "admitted" ||
        key == "rounds" || key == "max_queue_depth" ||
        key == "avg_batch" || key == "max_batch" || key == "count") {
        return {Direction::kInformational, 0.0, 0.0};
    }
    if (ends_with(key, "_rps") || ends_with(key, "_qps")) {
        return {Direction::kHigherIsBetter, 0.02, 1e-6};
    }
    if (contains(key, "speedup") || ends_with(key, "_x")) {
        return {Direction::kHigherIsBetter, 0.02, 0.01};
    }
    if (ends_with(key, "gflops") || ends_with(key, "_gbps") ||
        ends_with(key, "_rate") || contains(key, "util") ||
        contains(key, "overlap")) {
        return {Direction::kHigherIsBetter, 0.02, 1e-6};
    }
    // Static memory-plan metrics (core/memplan.h): the planner is
    // deterministic, so footprints are exact — one grown byte is a real
    // plan or annotation change, not noise. Savings gate the other way:
    // losing pooling is the regression. These must outrank the generic
    // "_bytes" rule below, which tolerates 2 %.
    if (key == "max_queued_hbm_bytes") {
        return {Direction::kInformational, 0.0, 0.0};
    }
    if (ends_with(key, "hbm_bytes")) {
        return {Direction::kLowerIsBetter, 0.0, 0.0};
    }
    if (ends_with(key, "pooling_savings")) {
        return {Direction::kHigherIsBetter, 0.0, 0.0};
    }
    if (key == "shed_memory" || key == "shed_ratelimit") {
        return {Direction::kLowerIsBetter, 0.0, 0.25};
    }
    if (ends_with(key, "_us") || ends_with(key, "_ms")) {
        return {Direction::kLowerIsBetter, 0.02, 0.05};
    }
    if (ends_with(key, "_bytes")) {
        return {Direction::kLowerIsBetter, 0.02, 1024.0};
    }
    if (ends_with(key, "_j") || ends_with(key, "_watts")) {
        return {Direction::kLowerIsBetter, 0.02, 1e-6};
    }
    // Unknown metrics gate conservatively as costs.
    return {Direction::kLowerIsBetter, 0.02, 0.0};
}

namespace {

MetricDelta
judge_metric(const std::string &key, double baseline, double current,
             const CompareOptions &options)
{
    MetricDelta d;
    d.metric = key;
    d.baseline = baseline;
    d.current = current;
    d.policy = default_metric_policy(key);
    d.rel_change =
        baseline != 0 ? (current - baseline) / std::fabs(baseline) : 0.0;

    if (d.policy.direction == Direction::kInformational) {
        d.status = DeltaStatus::kOk;
        return d;
    }
    const double worse = d.policy.direction == Direction::kLowerIsBetter
                             ? current - baseline
                             : baseline - current;
    const double allowed =
        std::max(d.policy.abs_tol * options.tol_scale,
                 d.policy.rel_tol * options.tol_scale *
                     std::fabs(baseline));
    if (worse > allowed) {
        d.status = DeltaStatus::kRegressed;
    } else if (worse < -allowed) {
        d.status = DeltaStatus::kImproved;
    } else {
        d.status = DeltaStatus::kOk;
    }
    return d;
}

}  // namespace

RegressionReport
compare_runs(const BenchRun &baseline, const BenchRun &current,
             const CompareOptions &options)
{
    MG_CHECK(options.tol_scale >= 0) << "tol_scale must be non-negative";
    RegressionReport report;
    report.name = current.name.empty() ? baseline.name : current.name;
    report.baseline_manifest = baseline.manifest;
    report.current_manifest = current.manifest;

    std::set<std::string> baseline_keys;
    for (const BenchRow &brow : baseline.rows) {
        const std::string key = brow.key();
        baseline_keys.insert(key);
        RowDelta rd;
        rd.row_key = key;
        const BenchRow *crow = current.find_row(key);
        if (crow == nullptr) {
            rd.status = RowStatus::kMissingInCurrent;
            ++report.missing_rows;
            report.rows.push_back(std::move(rd));
            continue;
        }
        rd.status = RowStatus::kMatched;
        for (const auto &[metric, bvalue] : brow.metrics) {
            const double *cvalue = crow->find_metric(metric);
            if (cvalue == nullptr) {
                MetricDelta d;
                d.metric = metric;
                d.baseline = bvalue;
                d.policy = default_metric_policy(metric);
                d.status = DeltaStatus::kMissingMetric;
                ++report.missing_metrics;
                rd.metrics.push_back(std::move(d));
                continue;
            }
            MetricDelta d = judge_metric(metric, bvalue, *cvalue, options);
            switch (d.status) {
              case DeltaStatus::kRegressed:
                ++report.regressed;
                break;
              case DeltaStatus::kImproved:
                ++report.improved;
                break;
              default:
                ++report.ok;
                break;
            }
            rd.metrics.push_back(std::move(d));
        }
        for (const auto &[metric, cvalue] : crow->metrics) {
            if (brow.find_metric(metric) == nullptr) {
                MetricDelta d;
                d.metric = metric;
                d.current = cvalue;
                d.policy = default_metric_policy(metric);
                d.status = DeltaStatus::kNewMetric;
                rd.metrics.push_back(std::move(d));
            }
        }
        report.rows.push_back(std::move(rd));
    }

    for (const BenchRow &crow : current.rows) {
        if (baseline_keys.count(crow.key()) == 0) {
            RowDelta rd;
            rd.row_key = crow.key();
            rd.status = RowStatus::kNewInCurrent;
            ++report.new_rows;
            report.rows.push_back(std::move(rd));
        }
    }
    return report;
}

void
print_report(const RegressionReport &report, std::ostream &os,
             bool verbose)
{
    os << "### " << report.name << " — "
       << (report.gate_failed() ? "FAIL" : "ok") << " ("
       << report.regressed << " regressed, " << report.improved
       << " improved, " << report.ok << " ok";
    if (report.new_rows > 0) {
        os << ", " << report.new_rows << " new rows";
    }
    if (report.missing_rows > 0) {
        os << ", " << report.missing_rows << " missing rows";
    }
    if (report.missing_metrics > 0) {
        os << ", " << report.missing_metrics << " missing metrics";
    }
    os << ")\n";
    os << "baseline " << describe_manifest(report.baseline_manifest)
       << " | current " << describe_manifest(report.current_manifest)
       << "\n";

    bool header = false;
    const auto emit_header = [&] {
        if (!header) {
            os << "\n| row | metric | baseline | current | change |"
                  " status |\n";
            os << "|---|---|---|---|---|---|\n";
            header = true;
        }
    };
    for (const RowDelta &rd : report.rows) {
        if (rd.status == RowStatus::kMissingInCurrent) {
            emit_header();
            os << "| " << rd.row_key
               << " | — | — | — | — | missing-row |\n";
            continue;
        }
        if (rd.status == RowStatus::kNewInCurrent) {
            if (verbose) {
                emit_header();
                os << "| " << rd.row_key
                   << " | — | — | — | — | new-row |\n";
            }
            continue;
        }
        for (const MetricDelta &d : rd.metrics) {
            const bool interesting = d.status == DeltaStatus::kRegressed ||
                                     d.status == DeltaStatus::kImproved ||
                                     d.status ==
                                         DeltaStatus::kMissingMetric;
            if (!interesting && !verbose) {
                continue;
            }
            emit_header();
            os << "| " << rd.row_key << " | " << d.metric << " | "
               << fmt_value(d.baseline) << " | " << fmt_value(d.current)
               << " | " << fmt_percent(d.rel_change) << " | "
               << to_string(d.status) << " |\n";
        }
    }
    if (!header) {
        os << "no deltas outside tolerance\n";
    }
    os << "\n";
}

void
write_report_json(JsonWriter &w, const RegressionReport &report)
{
    w.begin_object();
    w.field("name", report.name);
    w.field("gate_failed", report.gate_failed());
    w.field("regressed", report.regressed);
    w.field("improved", report.improved);
    w.field("ok", report.ok);
    w.field("new_rows", report.new_rows);
    w.field("missing_rows", report.missing_rows);
    w.field("missing_metrics", report.missing_metrics);
    w.key("baseline_manifest");
    write_manifest(w, report.baseline_manifest);
    w.key("current_manifest");
    write_manifest(w, report.current_manifest);
    w.key("rows");
    w.begin_array();
    for (const RowDelta &rd : report.rows) {
        w.begin_object();
        w.field("key", rd.row_key);
        const char *status =
            rd.status == RowStatus::kMatched
                ? "matched"
                : (rd.status == RowStatus::kMissingInCurrent
                       ? "missing-in-current"
                       : "new-in-current");
        w.field("status", status);
        w.key("metrics");
        w.begin_array();
        for (const MetricDelta &d : rd.metrics) {
            w.begin_object();
            w.field("metric", d.metric);
            w.field("baseline", d.baseline);
            w.field("current", d.current);
            w.field("rel_change", d.rel_change);
            w.field("direction", to_string(d.policy.direction));
            w.field("rel_tol", d.policy.rel_tol);
            w.field("abs_tol", d.policy.abs_tol);
            w.field("status", to_string(d.status));
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

}  // namespace multigrain::prof
