#ifndef MULTIGRAIN_PROFILER_METRICS_H_
#define MULTIGRAIN_PROFILER_METRICS_H_

#include <string>
#include <vector>

#include "common/timer.h"
#include "gpusim/device.h"
#include "gpusim/engine.h"
#include "gpusim/report.h"

/// The in-repo analogue of Nsight Compute (ISSUE 1): turns a raw
/// simulated timeline into the named, carved metrics the paper's
/// methodology reads off its profiles — per-phase span, multi-stream
/// overlap, DRAM traffic, roofline bound, achieved occupancy.
///
/// Carving follows the kernel-name convention established by
/// core/attention.h and transformer/runner.cc:
///
///     [<tag>.][attn.]<op>[.<part>...]
///
/// where <tag> is a per-layer prefix like "L07" / "F00" / "B23" (one
/// uppercase letter + digits), <op> is the phase family ("sddmm",
/// "softmax", "spmm", "gemm", "ew", "bwd"), and <part> names the slice
/// ("coarse", "fine", "global", "triton", ...). profile() aggregates the
/// same timeline three ways: by op, by op.part, and by layer tag.
namespace multigrain::prof {

/// Aggregate statistics of one carved phase (a named group of kernels).
struct PhaseStats {
    std::string name;
    int kernel_count = 0;
    /// Wall-clock extent of the group (max end - min start): the right
    /// duration for a multi-stream phase.
    double span_us = 0;
    /// Sum of member kernel durations (per-kernel time).
    double busy_us = 0;
    /// Overlap efficiency busy/span: 1 = serial, >1 = streams overlap,
    /// the §3.1 coarse ∥ fine ∥ special win in one number.
    double overlap = 0;
    double start_us = 0;
    double end_us = 0;
    sim::TbWork work;
    /// Achieved fraction of each achievable peak over the phase span.
    double tensor_util = 0;
    double cuda_util = 0;
    double dram_util = 0;
    double l2_util = 0;
    /// Roofline classification of the whole phase (vs span).
    sim::Bound bound = sim::Bound::kLatency;
    /// Duration-weighted mean of per-kernel resident-TB fraction
    /// (avg_concurrency over the device's occupancy-limited capacity),
    /// clamped to [0, 1] — Nsight's "achieved occupancy".
    double achieved_occupancy = 0;

    double dram_bytes() const { return work.dram_bytes(); }
};

/// A fully profiled run: the timeline carved three ways, per-kernel
/// roofline/energy characterization, and the host-side preprocessing
/// timers active when profile() was called.
struct ProfiledRun {
    std::string device;
    double total_us = 0;
    sim::TbWork work;
    /// Carved by op family ("sddmm", "softmax", "spmm", "gemm", ...),
    /// ordered by first start time.
    std::vector<PhaseStats> ops;
    /// Carved one level deeper ("sddmm.coarse", "softmax.compound", ...).
    std::vector<PhaseStats> subphases;
    /// Carved by layer tag ("L00" ... / "F.." / "B.."); empty for plans
    /// launched without layer prefixes.
    std::vector<PhaseStats> layers;
    /// Per-kernel characterization (roofline bound + energy).
    sim::WorkloadReport report;
    /// Snapshot of the §3.1 offline-preprocessing timers.
    std::vector<TimerStat> host_timers;
    /// Named scalar counters attached by the caller — e.g. mgprof's
    /// plan-cache hit/miss/eviction statistics. profile() leaves this
    /// empty; the profiler stays independent of where counters come from.
    struct Counter {
        std::string name;
        std::string unit;
        double value = 0;
    };
    std::vector<Counter> counters;

    const PhaseStats *find_op(const std::string &name) const;
    const PhaseStats *find_subphase(const std::string &name) const;
    const PhaseStats *find_layer(const std::string &name) const;
};

struct ProfileOptions {
    /// A phase is bound by its highest-utilization resource when that
    /// utilization exceeds this, else latency-bound (matches
    /// sim::characterize).
    double bound_threshold = 0.6;
    /// Capture host_timer_stats() into the run.
    bool include_host_timers = true;
};

/// Profiles `result` against `device`.
ProfiledRun profile(const sim::SimResult &result,
                    const sim::DeviceSpec &device,
                    const ProfileOptions &options = {});

/// Aggregates the kernels of `result` whose name starts with `prefix`
/// (empty prefix = whole timeline) with the same math profile() uses for
/// its groups; exposed for tests and ad-hoc carving. kernel_count == 0
/// when nothing matches — every other field stays zero then.
PhaseStats carve_prefix(const sim::SimResult &result,
                        const sim::DeviceSpec &device,
                        const std::string &prefix,
                        double bound_threshold = 0.6);

/// One registered phase metric: how exporters and tables enumerate the
/// columns of a PhaseStats without hand-maintaining parallel lists.
struct MetricDef {
    const char *key;
    const char *unit;
    const char *description;
    double (*get)(const PhaseStats &);
};

/// The phase metric registry, in canonical column order.
const std::vector<MetricDef> &phase_metric_registry();

/// Prints the carved-phase table (ops + subphases + layer rollup) in the
/// style of print_report().
void print_phases(const ProfiledRun &run, std::ostream &os);

}  // namespace multigrain::prof

#endif  // MULTIGRAIN_PROFILER_METRICS_H_
