#ifndef MULTIGRAIN_PROFILER_REGRESS_H_
#define MULTIGRAIN_PROFILER_REGRESS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "profiler/history.h"

/// The direction-aware benchmark comparator behind the mgperf gate:
/// diffs a current BenchRun against its committed baseline, row by row
/// (keyed by series + labels) and metric by metric, and classifies each
/// delta as ok / improved / regressed under a per-metric policy.
///
/// gpusim is deterministic, so the default tolerances are tight — 2 %
/// relative on times, exact on plan-cache counters — far tighter than
/// real-GPU CI could gate on. "Worse" depends on the metric: latency and
/// DRAM traffic regress upward, speedups and hit rates regress downward,
/// and bookkeeping values (cache capacity) never gate at all.
namespace multigrain::prof {

enum class Direction {
    kLowerIsBetter,   ///< Times, bytes, energy, misses.
    kHigherIsBetter,  ///< Speedups, throughput, hit rates.
    kInformational,   ///< Recorded but never gates (capacity, counts of
                      ///< configuration rather than performance).
};

const char *to_string(Direction direction);

/// How one metric is judged: its better-direction plus the allowed
/// worse-direction slack, max(abs_tol, rel_tol * |baseline|).
struct MetricPolicy {
    Direction direction = Direction::kLowerIsBetter;
    double rel_tol = 0.02;
    double abs_tol = 0.0;
};

/// The default policy for a metric key, by naming convention: "_us" /
/// "_bytes" / "_j" suffixes are lower-is-better, "speedup" / "gflops" /
/// "hit_rate" / "overlap" are higher-is-better, plan-cache counters are
/// exact (the simulator is deterministic, so a single extra miss is a
/// real fingerprint/keying change), and plan_cache.entries/capacity are
/// informational. Unknown keys default to lower-is-better at 2 %.
MetricPolicy default_metric_policy(const std::string &key);

enum class DeltaStatus {
    kOk,
    kImproved,
    kRegressed,
    kMissingMetric,  ///< In the baseline row, absent from the current row.
    kNewMetric,      ///< In the current row, absent from the baseline row.
};

const char *to_string(DeltaStatus status);

struct MetricDelta {
    std::string metric;
    double baseline = 0;
    double current = 0;
    /// Signed (current - baseline) / |baseline|; 0 when baseline is 0.
    double rel_change = 0;
    MetricPolicy policy;
    DeltaStatus status = DeltaStatus::kOk;
};

enum class RowStatus {
    kMatched,          ///< Present on both sides; see metric deltas.
    kMissingInCurrent, ///< Baseline row the current run no longer emits —
                       ///< lost coverage fails the gate.
    kNewInCurrent,     ///< Current row with no baseline — reported, does
                       ///< not fail (refresh baselines to start gating).
};

struct RowDelta {
    std::string row_key;
    RowStatus status = RowStatus::kMatched;
    std::vector<MetricDelta> metrics;
};

struct CompareOptions {
    /// Multiplies every policy's rel_tol/abs_tol (CLI --tol-scale).
    double tol_scale = 1.0;
};

/// The diff of one preset against its baseline, plus rollup counters.
struct RegressionReport {
    std::string name;
    RunManifest baseline_manifest;
    RunManifest current_manifest;
    std::vector<RowDelta> rows;

    int regressed = 0;
    int improved = 0;
    int ok = 0;
    int new_rows = 0;
    int missing_rows = 0;
    int missing_metrics = 0;

    /// The gate verdict: any regressed metric, vanished row, or vanished
    /// metric fails.
    bool gate_failed() const
    {
        return regressed > 0 || missing_rows > 0 || missing_metrics > 0;
    }
};

RegressionReport compare_runs(const BenchRun &baseline,
                              const BenchRun &current,
                              const CompareOptions &options = {});

/// Markdown-table report: a summary line per preset and a table of every
/// non-ok delta (all deltas when `verbose`).
void print_report(const RegressionReport &report, std::ostream &os,
                  bool verbose = false);

/// One report object inside the "mgperf.report" document.
void write_report_json(JsonWriter &w, const RegressionReport &report);

}  // namespace multigrain::prof

#endif  // MULTIGRAIN_PROFILER_REGRESS_H_
