#include "profiler/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace multigrain::prof {

namespace {

void
emit_work(JsonWriter &w, const sim::TbWork &work)
{
    w.begin_object();
    w.field("tensor_flops", work.tensor_flops);
    w.field("cuda_flops", work.cuda_flops);
    w.field("dram_read_bytes", work.dram_read_bytes);
    w.field("dram_write_bytes", work.dram_write_bytes);
    w.field("l2_bytes", work.l2_bytes);
    w.end_object();
}

void
emit_header(JsonWriter &w, const char *schema)
{
    w.field("schema", schema);
    w.field("schema_version", kSchemaVersion);
}

void
emit_kernel_stats(JsonWriter &w, const sim::KernelStats &k)
{
    w.begin_object();
    w.field("name", k.name);
    w.field("stream", k.stream);
    w.field("num_tbs", static_cast<std::int64_t>(k.num_tbs));
    w.field("occupancy_per_sm", k.occupancy_per_sm);
    w.field("ready_us", k.ready_us);
    w.field("start_us", k.start_us);
    w.field("end_us", k.end_us);
    w.field("avg_concurrency", k.avg_concurrency);
    w.key("deps");
    w.begin_array();
    for (const int dep : k.deps) {
        w.value(dep);
    }
    w.end_array();
    w.key("work");
    emit_work(w, k.work);
    w.end_object();
}

void
emit_characterization(JsonWriter &w, const sim::KernelCharacterization &k)
{
    w.begin_object();
    w.field("name", k.name);
    w.field("duration_us", k.duration_us);
    // +inf (no DRAM traffic) becomes null via the writer's guard.
    w.field("arithmetic_intensity", k.arithmetic_intensity);
    w.field("tensor_util", k.tensor_util);
    w.field("cuda_util", k.cuda_util);
    w.field("dram_util", k.dram_util);
    w.field("l2_util", k.l2_util);
    w.field("bound", sim::to_string(k.bound));
    w.field("dynamic_j", k.dynamic_j);
    w.end_object();
}

void
emit_phase(JsonWriter &w, const PhaseStats &p)
{
    w.begin_object();
    w.field("name", p.name);
    for (const MetricDef &metric : phase_metric_registry()) {
        w.field(metric.key, metric.get(p));
    }
    w.field("bound", sim::to_string(p.bound));
    w.end_object();
}

void
emit_phase_array(JsonWriter &w, const char *key,
                 const std::vector<PhaseStats> &phases)
{
    w.key(key);
    w.begin_array();
    for (const PhaseStats &p : phases) {
        emit_phase(w, p);
    }
    w.end_array();
}

}  // namespace

void
write_json(const sim::SimResult &result, std::ostream &os)
{
    JsonWriter w(os);
    w.begin_object();
    emit_header(w, kSimResultSchema);
    w.field("total_us", result.total_us);
    w.key("work");
    emit_work(w, result.work);
    w.key("kernels");
    w.begin_array();
    for (const auto &k : result.kernels) {
        emit_kernel_stats(w, k);
    }
    w.end_array();
    w.end_object();
}

void
write_json(const sim::WorkloadReport &report, std::ostream &os)
{
    JsonWriter w(os);
    w.begin_object();
    emit_header(w, kReportSchema);
    w.field("total_us", report.total_us);
    w.field("dynamic_j", report.dynamic_j);
    w.field("static_j", report.static_j);
    w.field("total_j", report.total_j());
    w.field("average_watts", report.average_watts());
    w.key("kernels");
    w.begin_array();
    for (const auto &k : report.kernels) {
        emit_characterization(w, k);
    }
    w.end_array();
    w.end_object();
}

void
write_json(const ProfiledRun &run, std::ostream &os)
{
    JsonWriter w(os);
    w.begin_object();
    emit_header(w, kProfileSchema);
    w.field("device", run.device);
    w.field("total_us", run.total_us);
    w.key("work");
    emit_work(w, run.work);

    // Metric dictionary: lets consumers interpret the phase columns
    // without hardcoding this library's definitions.
    w.key("metrics");
    w.begin_array();
    for (const MetricDef &metric : phase_metric_registry()) {
        w.begin_object();
        w.field("key", metric.key);
        w.field("unit", metric.unit);
        w.field("description", metric.description);
        w.end_object();
    }
    w.end_array();

    emit_phase_array(w, "ops", run.ops);
    emit_phase_array(w, "subphases", run.subphases);
    emit_phase_array(w, "layers", run.layers);

    w.key("kernels");
    w.begin_array();
    for (const auto &k : run.report.kernels) {
        emit_characterization(w, k);
    }
    w.end_array();

    w.key("energy");
    w.begin_object();
    w.field("dynamic_j", run.report.dynamic_j);
    w.field("static_j", run.report.static_j);
    w.field("total_j", run.report.total_j());
    w.field("average_watts", run.report.average_watts());
    w.end_object();

    w.key("host_timers");
    w.begin_array();
    for (const TimerStat &t : run.host_timers) {
        w.begin_object();
        w.field("name", t.name);
        w.field("total_us", t.total_us);
        w.field("count", t.count);
        w.end_object();
    }
    w.end_array();

    w.key("counters");
    w.begin_array();
    for (const ProfiledRun::Counter &c : run.counters) {
        w.begin_object();
        w.field("name", c.name);
        w.field("unit", c.unit);
        w.field("value", c.value);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

std::string
to_json(const sim::SimResult &result)
{
    std::ostringstream os;
    write_json(result, os);
    return os.str();
}

std::string
to_json(const sim::WorkloadReport &report)
{
    std::ostringstream os;
    write_json(report, os);
    return os.str();
}

std::string
to_json(const ProfiledRun &run)
{
    std::ostringstream os;
    write_json(run, os);
    return os.str();
}

namespace {

sim::TbWork
work_from_json(const JsonValue &v)
{
    sim::TbWork work;
    work.tensor_flops = v.at("tensor_flops").as_number();
    work.cuda_flops = v.at("cuda_flops").as_number();
    work.dram_read_bytes = v.at("dram_read_bytes").as_number();
    work.dram_write_bytes = v.at("dram_write_bytes").as_number();
    work.l2_bytes = v.at("l2_bytes").as_number();
    return work;
}

}  // namespace

sim::SimResult
sim_result_from_json(const JsonValue &doc)
{
    MG_CHECK(doc.is_object()) << "SimResult JSON must be an object";
    MG_CHECK(doc.at("schema").as_string() == kSimResultSchema)
        << "unexpected schema \"" << doc.at("schema").as_string() << "\"";
    MG_CHECK(static_cast<int>(doc.at("schema_version").as_number()) ==
             kSchemaVersion)
        << "unsupported schema_version";

    sim::SimResult result;
    result.total_us = doc.at("total_us").as_number();
    result.work = work_from_json(doc.at("work"));
    const JsonValue &kernels = doc.at("kernels");
    MG_CHECK(kernels.is_array()) << "\"kernels\" must be an array";
    for (const JsonValue &kv : kernels.array) {
        sim::KernelStats k;
        k.name = kv.at("name").as_string();
        k.stream = static_cast<int>(kv.at("stream").as_number());
        k.num_tbs = static_cast<index_t>(kv.at("num_tbs").as_number());
        k.occupancy_per_sm =
            static_cast<int>(kv.at("occupancy_per_sm").as_number());
        k.ready_us = kv.at("ready_us").as_number();
        k.start_us = kv.at("start_us").as_number();
        k.end_us = kv.at("end_us").as_number();
        k.avg_concurrency = kv.at("avg_concurrency").as_number();
        const JsonValue &deps = kv.at("deps");
        MG_CHECK(deps.is_array()) << "\"deps\" must be an array";
        for (const JsonValue &d : deps.array) {
            k.deps.push_back(static_cast<int>(d.as_number()));
        }
        k.work = work_from_json(kv.at("work"));
        result.kernels.push_back(std::move(k));
    }
    return result;
}

sim::SimResult
sim_result_from_json(const std::string &text)
{
    return sim_result_from_json(json_parse(text));
}

namespace {

void
csv_number(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os << buf;
}

void
csv_phase_rows(std::ostream &os, const char *group,
               const std::vector<PhaseStats> &phases)
{
    for (const PhaseStats &p : phases) {
        os << group << "," << p.name;
        for (const MetricDef &metric : phase_metric_registry()) {
            os << ",";
            csv_number(os, metric.get(p));
        }
        os << "," << sim::to_string(p.bound) << "\n";
    }
}

}  // namespace

void
write_phase_csv(const ProfiledRun &run, std::ostream &os)
{
    os << "group,name";
    for (const MetricDef &metric : phase_metric_registry()) {
        os << "," << metric.key;
    }
    os << ",bound\n";
    csv_phase_rows(os, "op", run.ops);
    csv_phase_rows(os, "subphase", run.subphases);
    csv_phase_rows(os, "layer", run.layers);
}

void
write_kernel_csv(const sim::WorkloadReport &report, std::ostream &os)
{
    os << "name,duration_us,arithmetic_intensity,tensor_util,cuda_util,"
          "dram_util,l2_util,bound,dynamic_j\n";
    for (const auto &k : report.kernels) {
        os << k.name << ",";
        csv_number(os, k.duration_us);
        os << ",";
        csv_number(os, k.arithmetic_intensity);
        os << ",";
        csv_number(os, k.tensor_util);
        os << ",";
        csv_number(os, k.cuda_util);
        os << ",";
        csv_number(os, k.dram_util);
        os << ",";
        csv_number(os, k.l2_util);
        os << "," << sim::to_string(k.bound) << ",";
        csv_number(os, k.dynamic_j);
        os << "\n";
    }
}

void
write_text_file(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    MG_CHECK(file.good()) << "cannot open " << path << " for writing";
    file << content;
    file.flush();
    MG_CHECK(file.good()) << "failed writing " << path;
}

}  // namespace multigrain::prof
