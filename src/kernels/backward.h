#ifndef MULTIGRAIN_KERNELS_BACKWARD_H_
#define MULTIGRAIN_KERNELS_BACKWARD_H_

#include <string>

#include "formats/bsr.h"
#include "formats/csr.h"
#include "formats/matrix.h"
#include "gpusim/engine.h"

/// Backward-pass kernels for compound sparse attention (training — the
/// natural extension of the paper's inference-only scope; §1 motivates it
/// with the memory cost of training long sequences).
///
/// Given the forward pass  S = scale·QKᵀ|pattern,  P = softmax(S),
/// C = P·V  and an upstream gradient dC, the chain rule decomposes into
/// the *same* sparse primitives the forward uses:
///
///   dP = (dC · Vᵀ)|pattern          — an SDDMM (reuse forward kernels)
///   dS = P ⊙ (dP − rowsum(P ⊙ dP)) · scale   — softmax backward (new)
///   dQ = dS · K                     — an SpMM (reuse forward kernels)
///   dK = dSᵀ · Q,  dV = Pᵀ · dC     — SpMMs over *transposed* metadata
///                                     (new functional kernels; the plans
///                                     reuse the forward SpMM cost models
///                                     on transpose_layout(...) metadata).
namespace multigrain::kernels {

/// dV-style accumulation out[col] += p(row, col) * d[row, :] over every
/// nonzero of the fine part.
void fine_spmm_transposed(const CsrMatrix &p, const HalfMatrix &d,
                          FloatMatrix &out);

/// Same over the stored blocks of the coarse part (full-block math;
/// invalid positions hold zeros after the softmax).
void coarse_spmm_transposed(const BsrMatrix &p, const HalfMatrix &d,
                            FloatMatrix &out);

/// Softmax backward across the coarse + fine parts of the same rows (the
/// row sum couples them exactly like the forward denominator, §3.3):
/// dp_* is overwritten with dS = p ⊙ (dp − Σ_row p ⊙ dp) · scale.
/// Either part may be null; shapes must match the forward pair.
void compound_softmax_backward(const BsrMatrix *p_coarse,
                               BsrMatrix *dp_coarse,
                               const CsrMatrix *p_fine, CsrMatrix *dp_fine,
                               double scale);

/// Plan for the fused softmax backward: one thread block per block row,
/// reading P and dP and writing dS (1.5x the forward softmax's traffic).
sim::KernelLaunch plan_compound_softmax_backward(
    const sim::DeviceSpec &device, const BsrLayout *coarse,
    const CsrLayout *fine, index_t replicas,
    const std::string &name = "softmax_bwd.compound");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_BACKWARD_H_
