#ifndef MULTIGRAIN_KERNELS_COMPOUND_SOFTMAX_H_
#define MULTIGRAIN_KERNELS_COMPOUND_SOFTMAX_H_

#include <string>

#include "formats/bsr.h"
#include "formats/csr.h"
#include "gpusim/engine.h"

/// Multigrain's compound sparse softmax (paper §3.3): a single kernel that
/// performs the fused scale + mask + safe row-wise softmax across the
/// coarse part (BSR blocks with validity bitmaps) *and* the fine part
/// (CSR) of the same rows. Softmax sweeps entire rows, so unlike SDDMM and
/// SpMM the two granularities cannot run in separate kernels — the
/// denominator couples them.
///
/// Either part may be null; with only a coarse part this is exactly the
/// blocked softmax the Triton-style baseline runs, so the baseline reuses
/// this functional implementation with its own cost model.
namespace multigrain::kernels {

/// In place: S blocks/values become attention probabilities. Invalid
/// positions inside stored coarse blocks (block padding, zero padding, and
/// coarse/fine overlap carved out by the classifier) read as -inf through
/// the mask and are written back as exact zeros, which is what makes
/// full-block SpMM on P correct afterwards.
void compound_softmax(BsrMatrix *coarse, CsrMatrix *fine, double scale);

/// Plan: one thread block per output block row, sweeping its BSR blocks
/// and its CSR rows (three warp-shuffle phases: max, exp-sum, normalize;
/// values stay resident, so one read and one write of each part).
sim::KernelLaunch plan_compound_softmax(
    const sim::DeviceSpec &device, const BsrLayout *coarse,
    const CsrLayout *fine, index_t replicas,
    const std::string &name = "compound_softmax");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_COMPOUND_SOFTMAX_H_
