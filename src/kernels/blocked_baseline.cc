#include "kernels/blocked_baseline.h"

#include <algorithm>

#include "common/error.h"
#include "common/util.h"
#include "kernels/coarse.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

sim::KernelLaunch
plan_triton_sddmm(const sim::DeviceSpec &device, const BcooLayout &layout,
                  index_t head_dim, index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_triton_sddmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = triton_gemm_shape();

    const double block = static_cast<double>(layout.block);
    const double dh = static_cast<double>(head_dim);

    // Both operands are re-touched across blocks (no SMEM row reuse): the
    // LHS block row by every stored block in the row, the RHS by every
    // stored block in the column. L2 keeps what fits.
    const double touched = 2.0 * static_cast<double>(layout.nnz_blocks()) *
                           block * dh * kHalfBytes *
                           static_cast<double>(replicas);
    const double distinct = (static_cast<double>(layout.rows) +
                             static_cast<double>(layout.cols)) *
                            dh * kHalfBytes * static_cast<double>(replicas);
    const MemSplit split = split_reuse(touched, distinct,
                                       device.l2_capacity_bytes(), 0.2);
    const double dram_scale = touched > 0 ? split.dram_bytes / touched : 0;
    const double l2_scale = touched > 0 ? split.l2_bytes / touched : 0;

    sim::TbWork w;
    w.tensor_flops = 2.0 * block * block * dh;
    w.cuda_flops = block * block;
    const double operand_touch = 2.0 * block * dh * kHalfBytes;
    // BCOO metadata: two coordinates per block.
    w.dram_read_bytes = operand_touch * dram_scale + 2 * kIdxBytes;
    w.l2_bytes = operand_touch * l2_scale;
    w.dram_write_bytes = block * block * kHalfBytes;
    launch.add_tb(w, layout.nnz_blocks() * replicas);
    return launch;
}

sim::KernelLaunch
plan_triton_spmm(const sim::DeviceSpec &device, const BsrLayout &layout,
                 index_t head_dim, index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_triton_spmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = triton_gemm_shape();

    const double block = static_cast<double>(layout.block);
    const double dh = static_cast<double>(head_dim);

    const double rhs_touched = static_cast<double>(layout.nnz_blocks()) *
                               block * dh * kHalfBytes *
                               static_cast<double>(replicas);
    const double rhs_distinct =
        static_cast<double>(distinct_block_columns(layout)) * block * dh *
        kHalfBytes * static_cast<double>(replicas);
    const MemSplit rhs = split_reuse(rhs_touched, rhs_distinct,
                                     device.l2_capacity_bytes(), 0.3);
    const double rhs_dram_scale =
        rhs_touched > 0 ? rhs.dram_bytes / rhs_touched : 0;
    const double rhs_l2_scale =
        rhs_touched > 0 ? rhs.l2_bytes / rhs_touched : 0;

    for (index_t br = 0; br < layout.block_rows(); ++br) {
        const double nb = static_cast<double>(layout.row_nnz_blocks(br));
        if (nb == 0) {
            continue;
        }
        // One thread block per output block row covering the full head
        // dim: a larger tile than ours, which helps imbalance but lowers
        // the resident-block count (§5.2.1).
        sim::TbWork w;
        w.tensor_flops = nb * 2.0 * block * block * dh;
        w.cuda_flops = block * dh;
        const double lhs = nb * block * block * kHalfBytes;
        const double rhs_touch = nb * block * dh * kHalfBytes;
        w.dram_read_bytes =
            lhs + rhs_touch * rhs_dram_scale + nb * kIdxBytes + 2 * kIdxBytes;
        w.l2_bytes = rhs_touch * rhs_l2_scale;
        w.dram_write_bytes = block * dh * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

sim::KernelLaunch
plan_triton_softmax(const sim::DeviceSpec &device, const BsrLayout &layout,
                    index_t replicas, const std::string &name)
{
    MG_CHECK(replicas > 0) << "plan_triton_softmax bad args";
    (void)device;
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = softmax_shape();

    const double block = static_cast<double>(layout.block);
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        const double nb = static_cast<double>(layout.row_nnz_blocks(br));
        if (nb == 0) {
            continue;
        }
        const double stored = nb * block * block;
        sim::TbWork w;
        // Every stored element is swept, valid or not — and unlike the
        // fused compound kernel (§3.3), the baseline (a) runs scaling and
        // masking as a separate pass over S with an FP16 mask matrix read,
        // and (b) sweeps rows too large for registers, re-reading them
        // from L2 in the exp-sum and normalize phases.
        w.cuda_flops = stored * (kSoftmaxFlopsPerElem + 4.0);
        w.dram_read_bytes = stored * kHalfBytes          // S, first sweep.
                            + stored * kHalfBytes / 2    // Mask matrix
                                                         // (shared across
                                                         // heads via L2).
                            + nb * kIdxBytes + 2 * kIdxBytes;
        w.l2_bytes = 3.0 * stored * kHalfBytes;          // Re-read sweeps.
        w.dram_write_bytes = stored * kHalfBytes;        // P.
        launch.add_tb(w, replicas);
    }
    return launch;
}

}  // namespace multigrain::kernels
