#ifndef MULTIGRAIN_KERNELS_FINE_H_
#define MULTIGRAIN_KERNELS_FINE_H_

#include <string>

#include "formats/csr.h"
#include "formats/matrix.h"
#include "gpusim/engine.h"

/// Fine-grained (element-wise, CSR) kernels in the style of the Sputnik
/// library, with the paper's §4 extensions: FP16 operands, batched
/// operation, and an SDDMM rewritten from the official 1D-tiling scheme to
/// the row-splitting scheme (3.3x-6.2x faster per the paper; both schemes
/// are kept so the ablation bench can reproduce that gap).
///
/// These kernels double as the "Sputnik" baseline (fine-only processing of
/// the whole compound pattern) and as the fine part of Multigrain.
namespace multigrain::kernels {

/// SDDMM grid mapping (paper §4).
enum class FineSddmmScheme {
    kRowSplit,  ///< One thread block per output row (the paper's optimized
                ///< variant; whole dense rows land on one block — the load
                ///< imbalance source for global patterns, §5.2.1).
    k1dTiling,  ///< Official Sputnik: the output space is tiled as
                ///< rows x ceil(max_row_nnz / tile); short rows leave
                ///< whole thread blocks without work.
};

/// S values = Q . K^T gathered at the layout nonzeros.
void fine_sddmm(const HalfMatrix &q, const HalfMatrix &k, CsrMatrix &s);

/// In-place fused scale + masked row-wise safe softmax over the nonzeros.
void fine_softmax(CsrMatrix &s, double scale);

/// C += P x V (FP32 accumulator shared with the coarse/special parts).
void fine_spmm(const CsrMatrix &p, const HalfMatrix &v, FloatMatrix &c);

sim::KernelLaunch plan_fine_sddmm(const sim::DeviceSpec &device,
                                  const CsrLayout &layout, index_t head_dim,
                                  index_t replicas, FineSddmmScheme scheme,
                                  const std::string &name = "fine_sddmm");

sim::KernelLaunch plan_fine_softmax(const sim::DeviceSpec &device,
                                    const CsrLayout &layout,
                                    index_t replicas,
                                    const std::string &name = "fine_softmax");

sim::KernelLaunch plan_fine_spmm(const sim::DeviceSpec &device,
                                 const CsrLayout &layout, index_t head_dim,
                                 index_t replicas,
                                 const std::string &name = "fine_spmm");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_FINE_H_
