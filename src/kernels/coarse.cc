#include "kernels/coarse.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
coarse_sddmm(const HalfMatrix &q, const HalfMatrix &k, BsrMatrix &s)
{
    const BsrLayout &layout = *s.layout;
    MG_CHECK(q.rows() == layout.rows && k.rows() == layout.cols &&
             q.cols() == k.cols())
        << "coarse_sddmm shape mismatch";
    const index_t block = layout.block;
    const index_t head_dim = q.cols();
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t b = layout.row_offsets[static_cast<std::size_t>(br)];
             b < layout.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            const index_t bc = layout.col_indices[static_cast<std::size_t>(b)];
            half *out = s.block(b);
            for (index_t r = 0; r < block; ++r) {
                const index_t row = br * block + r;
                for (index_t c = 0; c < block; ++c) {
                    const index_t col = bc * block + c;
                    float acc = 0.0f;
                    for (index_t d = 0; d < head_dim; ++d) {
                        acc += float(q.at(row, d)) * float(k.at(col, d));
                    }
                    out[r * block + c] = half(acc);
                }
            }
        }
    }
}

void
coarse_spmm(const BsrMatrix &p, const HalfMatrix &v, FloatMatrix &c)
{
    const BsrLayout &layout = *p.layout;
    MG_CHECK(v.rows() == layout.cols)
        << "coarse_spmm V rows mismatch: " << v.rows() << " vs "
        << layout.cols;
    MG_CHECK(c.rows() == layout.rows && c.cols() == v.cols())
        << "coarse_spmm output shape mismatch";
    const index_t block = layout.block;
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t b = layout.row_offsets[static_cast<std::size_t>(br)];
             b < layout.row_offsets[static_cast<std::size_t>(br + 1)]; ++b) {
            const index_t bc = layout.col_indices[static_cast<std::size_t>(b)];
            const half *blk = p.block(b);
            for (index_t r = 0; r < block; ++r) {
                const index_t row = br * block + r;
                for (index_t kk = 0; kk < block; ++kk) {
                    const float pv = float(blk[r * block + kk]);
                    if (pv == 0.0f) {
                        continue;
                    }
                    const index_t col = bc * block + kk;
                    for (index_t d = 0; d < v.cols(); ++d) {
                        c.at(row, d) += pv * float(v.at(col, d));
                    }
                }
            }
        }
    }
}

index_t
distinct_block_columns(const BsrLayout &layout)
{
    std::vector<bool> seen(static_cast<std::size_t>(layout.block_cols()),
                           false);
    index_t count = 0;
    for (const index_t bc : layout.col_indices) {
        if (!seen[static_cast<std::size_t>(bc)]) {
            seen[static_cast<std::size_t>(bc)] = true;
            ++count;
        }
    }
    return count;
}

sim::KernelLaunch
plan_coarse_sddmm(const sim::DeviceSpec &device, const BsrLayout &layout,
                  index_t head_dim, index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_coarse_sddmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = coarse_gemm_shape();

    const double block = static_cast<double>(layout.block);
    // RHS (K) blocks are re-touched by neighbouring block rows; L2 keeps
    // what fits, SMEM only helps within one thread block (l1_capture low).
    const double rhs_touched = static_cast<double>(layout.nnz_blocks()) *
                               block * static_cast<double>(head_dim) *
                               kHalfBytes * static_cast<double>(replicas);
    const double rhs_distinct =
        static_cast<double>(distinct_block_columns(layout)) * block *
        static_cast<double>(head_dim) * kHalfBytes *
        static_cast<double>(replicas);
    const MemSplit rhs = split_reuse(rhs_touched, rhs_distinct,
                                     device.l2_capacity_bytes(), 0.3);
    const double rhs_dram_scale =
        rhs_touched > 0 ? rhs.dram_bytes / rhs_touched : 0;
    const double rhs_l2_scale =
        rhs_touched > 0 ? rhs.l2_bytes / rhs_touched : 0;

    for (index_t br = 0; br < layout.block_rows(); ++br) {
        const double nb = static_cast<double>(layout.row_nnz_blocks(br));
        if (nb == 0) {
            continue;
        }
        sim::TbWork w;
        w.tensor_flops = nb * 2.0 * block * block *
                         static_cast<double>(head_dim);
        // Epilogue: FP32 -> FP16 convert + store per output element.
        w.cuda_flops = nb * block * block;
        const double lhs = block * static_cast<double>(head_dim) *
                           kHalfBytes;  // Q block row, loaded once.
        const double rhs_touch =
            nb * block * static_cast<double>(head_dim) * kHalfBytes;
        const double meta = nb * kIdxBytes + 2 * kIdxBytes;
        w.dram_read_bytes = lhs + rhs_touch * rhs_dram_scale + meta;
        w.l2_bytes = rhs_touch * rhs_l2_scale;
        w.dram_write_bytes = nb * block * block * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

sim::KernelLaunch
plan_coarse_spmm(const sim::DeviceSpec &device, const BsrLayout &layout,
                 index_t head_dim, index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_coarse_spmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = coarse_gemm_shape();

    const double block = static_cast<double>(layout.block);
    // The output tile matches the non-zero block size (§3.2): tiles of
    // block x block over the L x head_dim output.
    const index_t dh_tiles = ceil_div<index_t>(head_dim, layout.block);
    const double tile =
        static_cast<double>(std::min<index_t>(head_dim, layout.block));

    // RHS (V) blocks: re-touched across block rows; L2-eligible.
    const double rhs_touched = static_cast<double>(layout.nnz_blocks()) *
                               block * tile * kHalfBytes *
                               static_cast<double>(dh_tiles) *
                               static_cast<double>(replicas);
    const double rhs_distinct =
        static_cast<double>(distinct_block_columns(layout)) * block *
        static_cast<double>(head_dim) * kHalfBytes *
        static_cast<double>(replicas);
    const MemSplit rhs = split_reuse(rhs_touched, rhs_distinct,
                                     device.l2_capacity_bytes(), 0.3);
    const double rhs_dram_scale =
        rhs_touched > 0 ? rhs.dram_bytes / rhs_touched : 0;
    const double rhs_l2_scale =
        rhs_touched > 0 ? rhs.l2_bytes / rhs_touched : 0;

    for (index_t br = 0; br < layout.block_rows(); ++br) {
        const double nb = static_cast<double>(layout.row_nnz_blocks(br));
        if (nb == 0) {
            continue;
        }
        sim::TbWork w;
        w.tensor_flops = nb * 2.0 * block * block * tile;
        w.cuda_flops = block * tile;  // Epilogue convert + store.
        const double lhs = nb * block * block * kHalfBytes;  // P blocks.
        const double rhs_touch = nb * block * tile * kHalfBytes;
        const double meta = nb * kIdxBytes + 2 * kIdxBytes;
        w.dram_read_bytes = lhs + rhs_touch * rhs_dram_scale + meta;
        w.l2_bytes = rhs_touch * rhs_l2_scale;
        w.dram_write_bytes = block * tile * kHalfBytes;
        launch.add_tb(w, replicas * dh_tiles);
    }
    return launch;
}

}  // namespace multigrain::kernels
