#ifndef MULTIGRAIN_KERNELS_CHUNKED_BASELINE_H_
#define MULTIGRAIN_KERNELS_CHUNKED_BASELINE_H_

#include <string>

#include "formats/matrix.h"
#include "gpusim/engine.h"

/// The §2.4 special methods for banded patterns: Longformer's *sliding
/// chunk* (for local patterns) and BigBird's *blockify* (for blocked local
/// patterns). Both reshape the banded attention into small dense GEMMs the
/// existing dense hardware runs at full tilt — but pay for it with
/// pre/post-processing memory copies: the overlapped chunks duplicate the
/// key/value rows ~2x (sliding chunk) and the rolled block stack ~3x
/// (blockify), which is exactly the overhead the paper charges them with.
///
/// These serve as a fourth processing family next to Multigrain's coarse
/// kernel for the pure-banded parts; bench_section24_chunked compares them.
namespace multigrain::kernels {

/// Functional sliding-chunk attention: exactly local(window) sparse
/// attention — softmax(scale * QKᵀ masked to |i-j| <= window) * V —
/// computed the Longformer way: per w-row query chunk, a dense GEMM
/// against the surrounding key slab, dense masked softmax, dense PV.
/// Requires window > 0 and seq_len % window == 0.
HalfMatrix sliding_chunk_attention(const HalfMatrix &q, const HalfMatrix &k,
                                   const HalfMatrix &v, index_t window,
                                   double scale);

/// Functional blockify attention: exactly blocked_local(block, 1) sparse
/// attention computed the BigBird way: keys/values stacked as
/// [roll(+block); identity; roll(-block)] (the 3x copy), then one dense
/// block x 3 block GEMM per block row. Requires seq_len % block == 0.
HalfMatrix blockify_attention(const HalfMatrix &q, const HalfMatrix &k,
                              const HalfMatrix &v, index_t block,
                              double scale);

/// Performance plan for sliding-chunk attention: chunk-copy kernels
/// (the 2x duplication of K and V), batched chunk GEMMs, masked dense
/// softmax over the chunk scores, batched PV GEMMs. Launches onto
/// stream 0 of `sim` with `name_prefix` on every kernel.
void plan_sliding_chunk(sim::GpuSim &sim, index_t seq_len, index_t window,
                        index_t head_dim, index_t replicas,
                        const std::string &name_prefix = "chunk.");

/// Performance plan for blockify attention: the 3x stack copies plus
/// batched block GEMMs and softmax.
void plan_blockify(sim::GpuSim &sim, index_t seq_len, index_t block,
                   index_t head_dim, index_t replicas,
                   const std::string &name_prefix = "blockify.");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_CHUNKED_BASELINE_H_
