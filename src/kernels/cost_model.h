#ifndef MULTIGRAIN_KERNELS_COST_MODEL_H_
#define MULTIGRAIN_KERNELS_COST_MODEL_H_

#include "gpusim/device.h"
#include "gpusim/launch.h"

/// Shared constants and helpers of the kernel cost models.
///
/// Every kernel's plan() derives its thread-block work from the same sparse
/// metadata the functional implementation walks. The helpers here encode
/// the two cross-cutting pieces: (a) how repeated touches of shared
/// operands split between L1 capture, L2 hits, and DRAM fills, and (b) the
/// resource shapes (threads/SMEM/registers) of each kernel family, which
/// drive the occupancy model.
namespace multigrain::kernels {

/// FP16 operand size.
inline constexpr double kHalfBytes = 2.0;
/// Column index / offset metadata entry size (CUDA kernels use int32).
inline constexpr double kIdxBytes = 4.0;
/// DRAM sector granularity: scattered sub-sector accesses still move 32 B.
inline constexpr double kSectorBytes = 32.0;
/// CUDA-core flops charged per element for a fused scale+mask+softmax
/// (max, subtract, exp on the SFU, accumulate, divide).
inline constexpr double kSoftmaxFlopsPerElem = 8.0;
/// Gathered (CSR-indexed) inner loops spend instruction issue on address
/// arithmetic and predication alongside the MACs; measured Sputnik-class
/// kernels sustain roughly half of a dense CUDA-core loop's per-element
/// rate (~30 % of peak with the global efficiency factor applied).
inline constexpr double kFineGatherOverhead = 2.0;

/// How `touched` bytes of reads against `distinct` bytes of underlying data
/// split between DRAM and L2. First touches always come from DRAM;
/// re-touches are first filtered by L1/SMEM locality (`l1_capture`
/// fraction, free in the model) and the rest hit L2 with a probability set
/// by how much of the working set fits.
struct MemSplit {
    double dram_bytes = 0;
    double l2_bytes = 0;
};

MemSplit split_reuse(double touched_bytes, double distinct_bytes,
                     double l2_capacity_bytes, double l1_capture);

/// Our coarse (tensor-core, double-buffered SMEM) GEMM blocks (§3.2).
sim::TbShape coarse_gemm_shape();
/// Triton-style blocked GEMM blocks: same tiling idea but with the higher
/// register pressure the paper observed (register-spill-prone SDDMM).
sim::TbShape triton_gemm_shape();
/// CUTLASS-style dense GEMM blocks (128x128 tile, double buffered).
sim::TbShape dense_gemm_shape();
/// Fine (Sputnik-style) element-wise blocks: small, SMEM-free.
sim::TbShape fine_shape();
/// Row-wise softmax blocks.
sim::TbShape softmax_shape();

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_COST_MODEL_H_
