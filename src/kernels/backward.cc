#include "kernels/backward.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/util.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
fine_spmm_transposed(const CsrMatrix &p, const HalfMatrix &d,
                     FloatMatrix &out)
{
    const CsrLayout &layout = *p.layout;
    MG_CHECK(d.rows() == layout.rows)
        << "fine_spmm_transposed d rows mismatch";
    MG_CHECK(out.rows() == layout.cols && out.cols() == d.cols())
        << "fine_spmm_transposed output shape mismatch";
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t col =
                layout.col_indices[static_cast<std::size_t>(i)];
            const float pv = float(p.values[static_cast<std::size_t>(i)]);
            if (pv == 0.0f) {
                continue;
            }
            for (index_t j = 0; j < d.cols(); ++j) {
                out.at(col, j) += pv * float(d.at(r, j));
            }
        }
    }
}

void
coarse_spmm_transposed(const BsrMatrix &p, const HalfMatrix &d,
                       FloatMatrix &out)
{
    const BsrLayout &layout = *p.layout;
    MG_CHECK(d.rows() == layout.rows)
        << "coarse_spmm_transposed d rows mismatch";
    MG_CHECK(out.rows() == layout.cols && out.cols() == d.cols())
        << "coarse_spmm_transposed output shape mismatch";
    const index_t block = layout.block;
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t b = layout.row_offsets[static_cast<std::size_t>(br)];
             b < layout.row_offsets[static_cast<std::size_t>(br + 1)];
             ++b) {
            const index_t bc =
                layout.col_indices[static_cast<std::size_t>(b)];
            const half *blk = p.block(b);
            for (index_t r = 0; r < block; ++r) {
                const index_t row = br * block + r;
                for (index_t c = 0; c < block; ++c) {
                    const float pv = float(blk[r * block + c]);
                    if (pv == 0.0f) {
                        continue;
                    }
                    const index_t col = bc * block + c;
                    for (index_t j = 0; j < d.cols(); ++j) {
                        out.at(col, j) += pv * float(d.at(row, j));
                    }
                }
            }
        }
    }
}

void
compound_softmax_backward(const BsrMatrix *p_coarse, BsrMatrix *dp_coarse,
                          const CsrMatrix *p_fine, CsrMatrix *dp_fine,
                          double scale)
{
    MG_CHECK((p_coarse == nullptr) == (dp_coarse == nullptr) &&
             (p_fine == nullptr) == (dp_fine == nullptr))
        << "P and dP parts must come in pairs";
    MG_CHECK(p_coarse != nullptr || p_fine != nullptr)
        << "softmax backward needs at least one part";
    const BsrLayout *bl = p_coarse ? p_coarse->layout.get() : nullptr;
    const CsrLayout *fl = p_fine ? p_fine->layout.get() : nullptr;
    if (bl) {
        MG_CHECK(dp_coarse->layout.get() == bl)
            << "coarse P and dP must share a layout";
    }
    if (fl) {
        MG_CHECK(dp_fine->layout.get() == fl)
            << "fine P and dP must share a layout";
    }
    const index_t rows = bl ? bl->rows : fl->rows;
    const float fscale = static_cast<float>(scale);

    for (index_t r = 0; r < rows; ++r) {
        const index_t br = bl ? r / bl->block : 0;
        const index_t in_row = bl ? r - br * bl->block : 0;

        // Phase 1: t = sum over the row of p * dp (both parts).
        float t = 0.0f;
        if (bl) {
            for (index_t b = bl->row_offsets[static_cast<std::size_t>(br)];
                 b < bl->row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                const half *pb = p_coarse->block(b);
                const half *db = dp_coarse->block(b);
                for (index_t c = 0; c < bl->block; ++c) {
                    t += float(pb[in_row * bl->block + c]) *
                         float(db[in_row * bl->block + c]);
                }
            }
        }
        if (fl) {
            for (index_t i = fl->row_offsets[static_cast<std::size_t>(r)];
                 i < fl->row_offsets[static_cast<std::size_t>(r + 1)];
                 ++i) {
                t += float(p_fine->values[static_cast<std::size_t>(i)]) *
                     float(dp_fine->values[static_cast<std::size_t>(i)]);
            }
        }

        // Phase 2: dS = p * (dp - t) * scale, written over dp. Invalid
        // coarse positions hold p == 0, so they come out zero without
        // consulting the bitmap.
        if (bl) {
            for (index_t b = bl->row_offsets[static_cast<std::size_t>(br)];
                 b < bl->row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                const half *pb = p_coarse->block(b);
                half *db = dp_coarse->block(b);
                for (index_t c = 0; c < bl->block; ++c) {
                    const float pv = float(pb[in_row * bl->block + c]);
                    const float dv = float(db[in_row * bl->block + c]);
                    db[in_row * bl->block + c] =
                        half(pv * (dv - t) * fscale);
                }
            }
        }
        if (fl) {
            for (index_t i = fl->row_offsets[static_cast<std::size_t>(r)];
                 i < fl->row_offsets[static_cast<std::size_t>(r + 1)];
                 ++i) {
                const float pv =
                    float(p_fine->values[static_cast<std::size_t>(i)]);
                const float dv =
                    float(dp_fine->values[static_cast<std::size_t>(i)]);
                dp_fine->values[static_cast<std::size_t>(i)] =
                    half(pv * (dv - t) * fscale);
            }
        }
    }
}

sim::KernelLaunch
plan_compound_softmax_backward(const sim::DeviceSpec &device,
                               const BsrLayout *coarse,
                               const CsrLayout *fine, index_t replicas,
                               const std::string &name)
{
    MG_CHECK(coarse != nullptr || fine != nullptr)
        << "plan_compound_softmax_backward needs at least one part";
    MG_CHECK(replicas > 0) << "bad replicas";
    (void)device;
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = softmax_shape();

    const index_t block = coarse ? coarse->block : 64;
    const index_t rows = coarse ? coarse->rows : fine->rows;
    const index_t block_rows = ceil_div(rows, block);

    for (index_t br = 0; br < block_rows; ++br) {
        double stored = 0;
        double meta = 2 * kIdxBytes;
        if (coarse) {
            const double nb =
                static_cast<double>(coarse->row_nnz_blocks(br));
            stored = nb * static_cast<double>(block) * block;
            meta += nb * kIdxBytes;
        }
        double fine_nnz = 0;
        if (fine) {
            const index_t lo = br * block;
            const index_t hi = std::min(rows, (br + 1) * block);
            fine_nnz = static_cast<double>(
                fine->row_offsets[static_cast<std::size_t>(hi)] -
                fine->row_offsets[static_cast<std::size_t>(lo)]);
            meta += static_cast<double>(block) * kIdxBytes;
        }
        if (stored == 0 && fine_nnz == 0) {
            continue;
        }
        const double elems = stored + fine_nnz;
        sim::TbWork w;
        // Two reads (P and dP), one write (dS over dP), ~6 flops/element.
        w.cuda_flops = elems * 6.0;
        w.dram_read_bytes = 2.0 * elems * kHalfBytes + meta;
        w.dram_write_bytes = elems * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

}  // namespace multigrain::kernels
