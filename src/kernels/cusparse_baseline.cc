#include "kernels/cusparse_baseline.h"

#include "common/error.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
cusparse_spmm(const BlockedEllMatrix &p, const HalfMatrix &v,
              FloatMatrix &c)
{
    const BlockedEllLayout &layout = *p.layout;
    MG_CHECK(v.rows() == layout.cols) << "cusparse_spmm V rows mismatch";
    MG_CHECK(c.rows() == layout.rows && c.cols() == v.cols())
        << "cusparse_spmm output shape mismatch";
    const index_t block = layout.block;
    for (index_t br = 0; br < layout.block_rows(); ++br) {
        for (index_t s = 0; s < layout.ell_width; ++s) {
            const index_t bc = layout.slot_col(br, s);
            if (bc == BlockedEllLayout::kPadding) {
                continue;  // Zero block: skipped functionally; the cost
                           // model still charges it, like the library.
            }
            const half *blk = p.slot(br, s);
            for (index_t r = 0; r < block; ++r) {
                const index_t row = br * block + r;
                for (index_t kk = 0; kk < block; ++kk) {
                    const float pv = float(blk[r * block + kk]);
                    if (pv == 0.0f) {
                        continue;
                    }
                    const index_t col = bc * block + kk;
                    for (index_t d = 0; d < v.cols(); ++d) {
                        c.at(row, d) += pv * float(v.at(col, d));
                    }
                }
            }
        }
    }
}

sim::KernelLaunch
plan_cusparse_spmm(const sim::DeviceSpec &device,
                   const BlockedEllLayout &layout, index_t head_dim,
                   index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_cusparse_spmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = coarse_gemm_shape();

    const double block = static_cast<double>(layout.block);
    const double dh = static_cast<double>(head_dim);
    const double width = static_cast<double>(layout.ell_width);
    if (layout.ell_width == 0) {
        return launch;
    }

    // Perfectly uniform: every block row is ell_width slots of work,
    // padding included. The RHS gather reuse matches the BSR kernels'.
    const double rhs_touched = static_cast<double>(layout.total_slots()) *
                               block * dh * kHalfBytes *
                               static_cast<double>(replicas);
    const double rhs_distinct = static_cast<double>(layout.block_cols()) *
                                block * dh * kHalfBytes *
                                static_cast<double>(replicas);
    const MemSplit rhs = split_reuse(rhs_touched, rhs_distinct,
                                     device.l2_capacity_bytes(), 0.3);

    sim::TbWork w;
    w.tensor_flops = width * 2.0 * block * block * dh;
    w.cuda_flops = block * dh;
    const double lhs = width * block * block * kHalfBytes;
    w.dram_read_bytes = lhs +
                        rhs.dram_bytes /
                            static_cast<double>(layout.block_rows() *
                                                replicas) +
                        width * kIdxBytes + 2 * kIdxBytes;
    w.l2_bytes = rhs.l2_bytes / static_cast<double>(layout.block_rows() *
                                                    replicas);
    w.dram_write_bytes = block * dh * kHalfBytes;
    launch.add_tb(w, layout.block_rows() * replicas);
    return launch;
}

}  // namespace multigrain::kernels
