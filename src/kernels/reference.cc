#include "kernels/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace multigrain::kernels {

std::vector<double>
ref_sddmm(const HalfMatrix &q, const HalfMatrix &k, const CsrLayout &layout)
{
    MG_CHECK(q.rows() == layout.rows && k.rows() == layout.cols &&
             q.cols() == k.cols())
        << "ref_sddmm shape mismatch";
    std::vector<double> values(static_cast<std::size_t>(layout.nnz()));
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            double acc = 0;
            for (index_t d = 0; d < q.cols(); ++d) {
                acc += static_cast<double>(float(q.at(r, d))) *
                       static_cast<double>(float(k.at(c, d)));
            }
            values[static_cast<std::size_t>(i)] = acc;
        }
    }
    return values;
}

std::vector<double>
ref_softmax(const CsrLayout &layout, const std::vector<double> &values,
            double scale)
{
    MG_CHECK(static_cast<index_t>(values.size()) == layout.nnz())
        << "ref_softmax values/layout mismatch";
    std::vector<double> out(values.size());
    for (index_t r = 0; r < layout.rows; ++r) {
        const index_t begin = layout.row_offsets[static_cast<std::size_t>(r)];
        const index_t end =
            layout.row_offsets[static_cast<std::size_t>(r + 1)];
        if (begin == end) {
            continue;
        }
        double max_v = -std::numeric_limits<double>::infinity();
        for (index_t i = begin; i < end; ++i) {
            max_v = std::max(max_v,
                             scale * values[static_cast<std::size_t>(i)]);
        }
        double sum = 0;
        for (index_t i = begin; i < end; ++i) {
            const double e =
                std::exp(scale * values[static_cast<std::size_t>(i)] - max_v);
            out[static_cast<std::size_t>(i)] = e;
            sum += e;
        }
        for (index_t i = begin; i < end; ++i) {
            out[static_cast<std::size_t>(i)] /= sum;
        }
    }
    return out;
}

DoubleMatrix
ref_spmm(const CsrLayout &layout, const std::vector<double> &values,
         const HalfMatrix &v)
{
    MG_CHECK(v.rows() == layout.cols) << "ref_spmm shape mismatch";
    MG_CHECK(static_cast<index_t>(values.size()) == layout.nnz())
        << "ref_spmm values/layout mismatch";
    DoubleMatrix out(layout.rows, v.cols(), 0.0);
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            const double p = values[static_cast<std::size_t>(i)];
            for (index_t d = 0; d < v.cols(); ++d) {
                out.at(r, d) += p * static_cast<double>(float(v.at(c, d)));
            }
        }
    }
    return out;
}

DoubleMatrix
ref_attention(const HalfMatrix &q, const HalfMatrix &k, const HalfMatrix &v,
              const CsrLayout &layout, double scale)
{
    const std::vector<double> s = ref_sddmm(q, k, layout);
    const std::vector<double> p = ref_softmax(layout, s, scale);
    return ref_spmm(layout, p, v);
}

RefAttentionGrads
ref_attention_backward(const HalfMatrix &q, const HalfMatrix &k,
                       const HalfMatrix &v, const CsrLayout &layout,
                       double scale, const DoubleMatrix &d_out)
{
    MG_CHECK(d_out.rows() == layout.rows && d_out.cols() == q.cols())
        << "ref_attention_backward d_out shape mismatch";
    const index_t dh = q.cols();
    const std::vector<double> s = ref_sddmm(q, k, layout);
    const std::vector<double> p = ref_softmax(layout, s, scale);

    RefAttentionGrads grads;
    grads.dq = DoubleMatrix(layout.rows, dh, 0.0);
    grads.dk = DoubleMatrix(layout.cols, dh, 0.0);
    grads.dv = DoubleMatrix(layout.cols, dh, 0.0);

    for (index_t r = 0; r < layout.rows; ++r) {
        const index_t begin = layout.row_offsets[static_cast<std::size_t>(r)];
        const index_t end =
            layout.row_offsets[static_cast<std::size_t>(r + 1)];
        // dP and the softmax-backward row coupling term.
        std::vector<double> dp(static_cast<std::size_t>(end - begin));
        double t = 0;
        for (index_t i = begin; i < end; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            double acc = 0;
            for (index_t d = 0; d < dh; ++d) {
                acc += d_out.at(r, d) * static_cast<double>(float(v.at(c, d)));
            }
            dp[static_cast<std::size_t>(i - begin)] = acc;
            t += p[static_cast<std::size_t>(i)] * acc;
        }
        for (index_t i = begin; i < end; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            const double pv = p[static_cast<std::size_t>(i)];
            const double ds =
                pv * (dp[static_cast<std::size_t>(i - begin)] - t) * scale;
            for (index_t d = 0; d < dh; ++d) {
                grads.dq.at(r, d) +=
                    ds * static_cast<double>(float(k.at(c, d)));
                grads.dk.at(c, d) +=
                    ds * static_cast<double>(float(q.at(r, d)));
                grads.dv.at(c, d) += pv * d_out.at(r, d);
            }
        }
    }
    return grads;
}

DoubleMatrix
ref_gemm_nt(const DoubleMatrix &a, const DoubleMatrix &b)
{
    MG_CHECK(a.cols() == b.cols()) << "ref_gemm_nt inner-dim mismatch";
    DoubleMatrix c(a.rows(), b.rows(), 0.0);
    for (index_t i = 0; i < a.rows(); ++i) {
        for (index_t j = 0; j < b.rows(); ++j) {
            double acc = 0;
            for (index_t d = 0; d < a.cols(); ++d) {
                acc += a.at(i, d) * b.at(j, d);
            }
            c.at(i, j) = acc;
        }
    }
    return c;
}

DoubleMatrix
ref_gemm_nn(const DoubleMatrix &a, const DoubleMatrix &b)
{
    MG_CHECK(a.cols() == b.rows()) << "ref_gemm_nn inner-dim mismatch";
    DoubleMatrix c(a.rows(), b.cols(), 0.0);
    for (index_t i = 0; i < a.rows(); ++i) {
        for (index_t d = 0; d < a.cols(); ++d) {
            const double av = a.at(i, d);
            if (av == 0) {
                continue;
            }
            for (index_t j = 0; j < b.cols(); ++j) {
                c.at(i, j) += av * b.at(d, j);
            }
        }
    }
    return c;
}

double
max_abs_diff(const DoubleMatrix &a, const DoubleMatrix &b)
{
    MG_CHECK(a.same_shape(b)) << "max_abs_diff shape mismatch";
    double best = 0;
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t c = 0; c < a.cols(); ++c) {
            best = std::max(best, std::abs(a.at(r, c) - b.at(r, c)));
        }
    }
    return best;
}

}  // namespace multigrain::kernels
