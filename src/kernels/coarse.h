#ifndef MULTIGRAIN_KERNELS_COARSE_H_
#define MULTIGRAIN_KERNELS_COARSE_H_

#include <string>

#include "formats/bsr.h"
#include "formats/matrix.h"
#include "gpusim/engine.h"

/// Multigrain's coarse-grained GPU kernels (paper §3.2): the blocked
/// row-splitting SDDMM and the blocked 1D-tiling SpMM, both BSR-based and
/// tensor-core driven with double-buffered SMEM tiles.
///
/// Functional semantics mirror the CUDA kernels: SDDMM computes *entire*
/// stored blocks (including positions the validity bitmap marks invalid —
/// those are masked later by the softmax), with FP16 operands and FP32
/// accumulation. SpMM multiplies stored P blocks, whose invalid positions
/// the softmax has zeroed, so full-block math is exact.
namespace multigrain::kernels {

/// S = Q x K^T restricted to the stored blocks of S.layout.
void coarse_sddmm(const HalfMatrix &q, const HalfMatrix &k, BsrMatrix &s);

/// C += P x V (FP32 accumulator shared with the fine/special parts).
void coarse_spmm(const BsrMatrix &p, const HalfMatrix &v, FloatMatrix &c);

/// Plan for the blocked row-splitting SDDMM: one thread block per output
/// block row (per replica); the LHS block row is loaded to SMEM once and
/// reused across every stored block in the row.
sim::KernelLaunch plan_coarse_sddmm(const sim::DeviceSpec &device,
                                    const BsrLayout &layout,
                                    index_t head_dim, index_t replicas,
                                    const std::string &name = "coarse_sddmm");

/// Plan for the blocked 1D-tiling SpMM: one thread block per (block row,
/// head-dim tile) of the dense output.
sim::KernelLaunch plan_coarse_spmm(const sim::DeviceSpec &device,
                                   const BsrLayout &layout,
                                   index_t head_dim, index_t replicas,
                                   const std::string &name = "coarse_spmm");

/// Distinct block columns referenced by the layout (shared by the cost
/// models to size the reused right-hand-side working set).
index_t distinct_block_columns(const BsrLayout &layout);

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_COARSE_H_
