#include "kernels/dense.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/util.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
dense_gemm_nt(const HalfMatrix &a, const HalfMatrix &b, HalfMatrix &c)
{
    MG_CHECK(a.cols() == b.cols())
        << "dense_gemm_nt inner-dim mismatch: " << a.cols() << " vs "
        << b.cols();
    MG_CHECK(c.rows() == a.rows() && c.cols() == b.rows())
        << "dense_gemm_nt output shape mismatch";
    for (index_t i = 0; i < a.rows(); ++i) {
        for (index_t j = 0; j < b.rows(); ++j) {
            float acc = 0.0f;
            for (index_t d = 0; d < a.cols(); ++d) {
                acc += float(a.at(i, d)) * float(b.at(j, d));
            }
            c.at(i, j) = half(acc);
        }
    }
}

void
dense_gemm_nn(const HalfMatrix &a, const HalfMatrix &b, HalfMatrix &c)
{
    MG_CHECK(a.cols() == b.rows())
        << "dense_gemm_nn inner-dim mismatch: " << a.cols() << " vs "
        << b.rows();
    MG_CHECK(c.rows() == a.rows() && c.cols() == b.cols())
        << "dense_gemm_nn output shape mismatch";
    std::vector<float> acc(static_cast<std::size_t>(b.cols()));
    for (index_t i = 0; i < a.rows(); ++i) {
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (index_t d = 0; d < a.cols(); ++d) {
            const float av = float(a.at(i, d));
            if (av == 0.0f) {
                continue;
            }
            for (index_t j = 0; j < b.cols(); ++j) {
                acc[static_cast<std::size_t>(j)] += av * float(b.at(d, j));
            }
        }
        for (index_t j = 0; j < b.cols(); ++j) {
            c.at(i, j) = half(acc[static_cast<std::size_t>(j)]);
        }
    }
}

void
dense_softmax_rows(HalfMatrix &m, double scale, index_t valid_cols)
{
    MG_CHECK(valid_cols >= 0 && valid_cols <= m.cols())
        << "dense_softmax_rows valid_cols out of range";
    for (index_t r = 0; r < m.rows(); ++r) {
        float max_v = -std::numeric_limits<float>::infinity();
        for (index_t c = 0; c < valid_cols; ++c) {
            max_v = std::max(max_v, static_cast<float>(scale) *
                                        float(m.at(r, c)));
        }
        float sum = 0.0f;
        std::vector<float> e(static_cast<std::size_t>(valid_cols));
        for (index_t c = 0; c < valid_cols; ++c) {
            const float v = std::exp(static_cast<float>(scale) *
                                         float(m.at(r, c)) -
                                     max_v);
            e[static_cast<std::size_t>(c)] = v;
            sum += v;
        }
        for (index_t c = 0; c < m.cols(); ++c) {
            if (c < valid_cols && sum > 0.0f) {
                m.at(r, c) = half(e[static_cast<std::size_t>(c)] / sum);
            } else {
                m.at(r, c) = half(0.0f);
            }
        }
    }
}

sim::KernelLaunch
plan_dense_gemm(const sim::DeviceSpec &device, index_t m, index_t n,
                index_t k, index_t replicas, const std::string &name)
{
    MG_CHECK(m > 0 && n > 0 && k > 0 && replicas > 0)
        << "plan_dense_gemm needs positive dims";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = dense_gemm_shape();

    // 128x128 output tiles, shrunk for small problems so a thin GEMM does
    // not pay for a huge tile it cannot fill.
    const index_t tile_m = std::min<index_t>(128, round_up<index_t>(m, 16));
    const index_t tile_n = std::min<index_t>(128, round_up<index_t>(n, 16));
    const index_t tiles_m = ceil_div(m, tile_m);
    const index_t tiles_n = ceil_div(n, tile_n);

    // Split-K (as CUTLASS does for thin problems): when the output grid
    // cannot fill the device, parallelize over the reduction dimension and
    // add a small fix-up pass per output tile.
    index_t splits = 1;
    const index_t grid = tiles_m * tiles_n * replicas;
    const index_t want_tbs = static_cast<index_t>(device.num_sms) * 2;
    if (grid < want_tbs && k >= 256) {
        splits = std::min<index_t>(ceil_div(want_tbs, grid),
                                   std::max<index_t>(1, k / 128));
    }

    // Operand traffic: each A panel is touched by tiles_n blocks and each
    // B panel by tiles_m blocks; L2 captures re-touches that fit.
    const double a_bytes = static_cast<double>(m) * k * kHalfBytes;
    const double b_bytes = static_cast<double>(n) * k * kHalfBytes;
    const double touched =
        (a_bytes * static_cast<double>(tiles_n) +
         b_bytes * static_cast<double>(tiles_m)) *
        static_cast<double>(replicas);
    const double distinct =
        (a_bytes + b_bytes) * static_cast<double>(replicas);
    const MemSplit split = split_reuse(touched, distinct,
                                       device.l2_capacity_bytes(), 0.25);

    const double total_tbs =
        static_cast<double>(tiles_m * tiles_n * replicas * splits);
    // The engine's tensor clocks are scaled by the blocked-sparse
    // tensor_efficiency; dense large-tile GEMMs achieve
    // dense_tensor_efficiency instead, so express the flops in
    // sparse-efficiency units.
    const double eff_scale =
        device.dense_tensor_efficiency > 0
            ? device.tensor_efficiency / device.dense_tensor_efficiency
            : 1.0;
    sim::TbWork w;
    w.tensor_flops = 2.0 * static_cast<double>(tile_m) * tile_n * k *
                     eff_scale / static_cast<double>(splits);
    // Epilogue; with split-K each slice also writes and re-reduces its
    // partial tile in FP32.
    w.cuda_flops = 2.0 * static_cast<double>(tile_m) * tile_n *
                   (splits > 1 ? 2.0 : 1.0);
    w.dram_read_bytes = split.dram_bytes / total_tbs;
    w.l2_bytes = split.l2_bytes / total_tbs;
    w.dram_write_bytes = static_cast<double>(tile_m) * tile_n * kHalfBytes *
                         (splits > 1 ? 2.0 : 1.0);
    launch.add_tb(w, tiles_m * tiles_n * replicas * splits);
    return launch;
}

sim::KernelLaunch
plan_dense_softmax(const sim::DeviceSpec &device, index_t rows, index_t cols,
                   index_t replicas, const std::string &name)
{
    MG_CHECK(rows >= 0 && cols > 0 && replicas > 0)
        << "plan_dense_softmax needs valid dims";
    (void)device;
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = softmax_shape();
    if (rows == 0) {
        return launch;
    }
    sim::TbWork w;
    w.cuda_flops = static_cast<double>(cols) * kSoftmaxFlopsPerElem;
    w.dram_read_bytes = static_cast<double>(cols) * kHalfBytes;
    w.dram_write_bytes = static_cast<double>(cols) * kHalfBytes;
    launch.add_tb(w, rows * replicas);
    return launch;
}

sim::KernelLaunch
plan_elementwise(const sim::DeviceSpec &device, index_t elements, int reads,
                 double flops_per_element, const std::string &name)
{
    MG_CHECK(elements >= 0 && reads >= 0) << "plan_elementwise bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    sim::TbShape shape;
    shape.threads = 256;
    shape.smem_bytes = 0;
    shape.regs_per_thread = 32;
    launch.shape = shape;
    if (elements == 0) {
        return launch;
    }
    // Enough blocks for full occupancy; each handles an equal slice.
    const index_t tbs = std::min<index_t>(
        std::max<index_t>(1, elements / 4096),
        static_cast<index_t>(device.num_sms) * 16);
    const double per_tb =
        static_cast<double>(elements) / static_cast<double>(tbs);
    sim::TbWork w;
    w.cuda_flops = per_tb * flops_per_element;
    w.dram_read_bytes = per_tb * kHalfBytes * reads;
    w.dram_write_bytes = per_tb * kHalfBytes;
    launch.add_tb(w, tbs);
    return launch;
}

}  // namespace multigrain::kernels
