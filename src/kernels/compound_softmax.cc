#include "kernels/compound_softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/util.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
compound_softmax(BsrMatrix *coarse, CsrMatrix *fine, double scale)
{
    MG_CHECK(coarse != nullptr || fine != nullptr)
        << "compound_softmax needs at least one part";
    const BsrLayout *bl = coarse ? coarse->layout.get() : nullptr;
    const CsrLayout *fl = fine ? fine->layout.get() : nullptr;
    if (bl && fl) {
        MG_CHECK(bl->rows == fl->rows)
            << "coarse and fine parts disagree on row count";
    }
    const index_t rows = bl ? bl->rows : fl->rows;
    const float fscale = static_cast<float>(scale);

    // Per-row index of coarse blocks: for each block row, the stored block
    // range; rows inside share it.
    for (index_t r = 0; r < rows; ++r) {
        const index_t br = bl ? r / bl->block : 0;
        const index_t in_row = bl ? r - br * bl->block : 0;

        // ---- Phase 1: max over valid coarse elements and fine elements.
        float max_v = -std::numeric_limits<float>::infinity();
        if (bl) {
            for (index_t b = bl->row_offsets[static_cast<std::size_t>(br)];
                 b < bl->row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                const half *blk = coarse->block(b);
                for (index_t c = 0; c < bl->block; ++c) {
                    if (bl->element_valid(b, in_row, c)) {
                        max_v = std::max(
                            max_v,
                            fscale * float(blk[in_row * bl->block + c]));
                    }
                }
            }
        }
        if (fl) {
            for (index_t i = fl->row_offsets[static_cast<std::size_t>(r)];
                 i < fl->row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
                max_v = std::max(
                    max_v,
                    fscale * float(fine->values[static_cast<std::size_t>(i)]));
            }
        }
        if (max_v == -std::numeric_limits<float>::infinity()) {
            // Empty row (e.g. zero padding): nothing to normalize, but the
            // stored coarse positions must still become zeros.
            max_v = 0.0f;
        }

        // ---- Phase 2: exponential sum.
        float sum = 0.0f;
        if (bl) {
            for (index_t b = bl->row_offsets[static_cast<std::size_t>(br)];
                 b < bl->row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                const half *blk = coarse->block(b);
                for (index_t c = 0; c < bl->block; ++c) {
                    if (bl->element_valid(b, in_row, c)) {
                        sum += std::exp(
                            fscale * float(blk[in_row * bl->block + c]) -
                            max_v);
                    }
                }
            }
        }
        if (fl) {
            for (index_t i = fl->row_offsets[static_cast<std::size_t>(r)];
                 i < fl->row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
                sum += std::exp(
                    fscale * float(fine->values[static_cast<std::size_t>(i)]) -
                    max_v);
            }
        }

        // ---- Phase 3: normalize; invalid coarse positions become zeros.
        if (bl) {
            for (index_t b = bl->row_offsets[static_cast<std::size_t>(br)];
                 b < bl->row_offsets[static_cast<std::size_t>(br + 1)];
                 ++b) {
                half *blk = coarse->block(b);
                for (index_t c = 0; c < bl->block; ++c) {
                    if (bl->element_valid(b, in_row, c) && sum > 0.0f) {
                        blk[in_row * bl->block + c] = half(
                            std::exp(fscale *
                                         float(blk[in_row * bl->block + c]) -
                                     max_v) /
                            sum);
                    } else {
                        blk[in_row * bl->block + c] = half(0.0f);
                    }
                }
            }
        }
        if (fl && sum > 0.0f) {
            for (index_t i = fl->row_offsets[static_cast<std::size_t>(r)];
                 i < fl->row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
                half &v = fine->values[static_cast<std::size_t>(i)];
                v = half(std::exp(fscale * float(v) - max_v) / sum);
            }
        }
    }
}

sim::KernelLaunch
plan_compound_softmax(const sim::DeviceSpec &device, const BsrLayout *coarse,
                      const CsrLayout *fine, index_t replicas,
                      const std::string &name)
{
    MG_CHECK(coarse != nullptr || fine != nullptr)
        << "plan_compound_softmax needs at least one part";
    MG_CHECK(replicas > 0) << "plan_compound_softmax bad replicas";
    (void)device;
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = softmax_shape();

    const index_t block = coarse ? coarse->block : 64;
    const index_t rows = coarse ? coarse->rows : fine->rows;
    const index_t block_rows = ceil_div(rows, block);

    for (index_t br = 0; br < block_rows; ++br) {
        double stored = 0;
        double bitmap = 0;
        double meta = 2 * kIdxBytes;
        if (coarse) {
            const double nb =
                static_cast<double>(coarse->row_nnz_blocks(br));
            stored = nb * static_cast<double>(block) * block;
            bitmap = nb * static_cast<double>(coarse->words_per_block()) * 8;
            meta += nb * kIdxBytes;
        }
        double fine_nnz = 0;
        if (fine) {
            const index_t lo = br * block;
            const index_t hi = std::min(rows, (br + 1) * block);
            fine_nnz = static_cast<double>(
                fine->row_offsets[static_cast<std::size_t>(hi)] -
                fine->row_offsets[static_cast<std::size_t>(lo)]);
            meta += static_cast<double>(block) * kIdxBytes;
        }
        if (stored == 0 && fine_nnz == 0) {
            continue;
        }
        sim::TbWork w;
        // Every stored element is swept (invalid ones read the bitmap mask
        // and write a zero), plus every fine element. The fine part needs
        // only the contiguous values: overlap and padding were already
        // invalidated at metadata-build time (§3.1), so no column-index or
        // mask-matrix reads here — the kernel's key traffic advantage.
        w.cuda_flops = (stored + fine_nnz) * kSoftmaxFlopsPerElem;
        w.dram_read_bytes =
            stored * kHalfBytes + bitmap + fine_nnz * kHalfBytes + meta;
        w.dram_write_bytes = (stored + fine_nnz) * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

}  // namespace multigrain::kernels
