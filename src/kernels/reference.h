#ifndef MULTIGRAIN_KERNELS_REFERENCE_H_
#define MULTIGRAIN_KERNELS_REFERENCE_H_

#include <vector>

#include "formats/csr.h"
#include "formats/matrix.h"

/// FP64 reference implementations used only by tests and examples to
/// validate the FP16 kernels. The reference computes dense masked attention
/// restricted to a CSR layout: exactly the math every method (Multigrain,
/// coarse-only, fine-only) must reproduce.
namespace multigrain::kernels {

/// S values aligned with `layout` nonzeros: S[i] = Q[row_i] . K[col_i].
std::vector<double> ref_sddmm(const HalfMatrix &q, const HalfMatrix &k,
                              const CsrLayout &layout);

/// Row-wise safe softmax over the layout nonzeros of `scale * values`.
/// Rows with no nonzeros stay empty.
std::vector<double> ref_softmax(const CsrLayout &layout,
                                const std::vector<double> &values,
                                double scale);

/// C = P_layout x V with P given as layout-aligned values.
DoubleMatrix ref_spmm(const CsrLayout &layout,
                      const std::vector<double> &values,
                      const HalfMatrix &v);

/// Full single-head attention: softmax(scale * Q K^T restricted to layout)
/// x V. The composition of the three references above.
DoubleMatrix ref_attention(const HalfMatrix &q, const HalfMatrix &k,
                           const HalfMatrix &v, const CsrLayout &layout,
                           double scale);

/// Analytic FP64 gradients of ref_attention with respect to Q, K, V for
/// an upstream gradient d_out (validated against finite differences in
/// the tests; used to pin the FP16 backward kernels).
struct RefAttentionGrads {
    DoubleMatrix dq, dk, dv;
};
RefAttentionGrads ref_attention_backward(const HalfMatrix &q,
                                         const HalfMatrix &k,
                                         const HalfMatrix &v,
                                         const CsrLayout &layout,
                                         double scale,
                                         const DoubleMatrix &d_out);

/// Dense helpers for testing the dense kernels. C = A * B^T and C = A * B.
DoubleMatrix ref_gemm_nt(const DoubleMatrix &a, const DoubleMatrix &b);
DoubleMatrix ref_gemm_nn(const DoubleMatrix &a, const DoubleMatrix &b);

/// Max |a - b| over all positions; matrices must share shapes.
double max_abs_diff(const DoubleMatrix &a, const DoubleMatrix &b);

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_REFERENCE_H_
