#include "kernels/chunked_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/util.h"
#include "kernels/cost_model.h"
#include "kernels/dense.h"

namespace multigrain::kernels {

namespace {

/// Dense masked-chunk attention shared by both functional paths: for each
/// `rows_per_chunk`-row query chunk, attend the key/value slab
/// [slab_lo(chunk), slab_hi(chunk)) with the element mask `in_band`.
template <typename SlabLo, typename SlabHi, typename InBand>
HalfMatrix
chunked_attention(const HalfMatrix &q, const HalfMatrix &k,
                  const HalfMatrix &v, index_t rows_per_chunk, double scale,
                  SlabLo slab_lo, SlabHi slab_hi, InBand in_band)
{
    const index_t seq = q.rows();
    const index_t dh = q.cols();
    HalfMatrix out(seq, dh, half(0.0f));
    const float fscale = static_cast<float>(scale);

    const index_t chunks = seq / rows_per_chunk;
    for (index_t c = 0; c < chunks; ++c) {
        const index_t lo = slab_lo(c);
        const index_t hi = slab_hi(c);
        const index_t slab = hi - lo;
        // Dense chunk scores with FP32 accumulation, then masked softmax.
        std::vector<float> scores(static_cast<std::size_t>(slab));
        for (index_t r = c * rows_per_chunk; r < (c + 1) * rows_per_chunk;
             ++r) {
            float max_v = -std::numeric_limits<float>::infinity();
            for (index_t j = 0; j < slab; ++j) {
                const index_t col = lo + j;
                float acc = 0.0f;
                for (index_t d = 0; d < dh; ++d) {
                    acc += float(q.at(r, d)) * float(k.at(col, d));
                }
                // Round through FP16 like the real chunk GEMM's output.
                const float s16 = float(half(acc));
                scores[static_cast<std::size_t>(j)] =
                    in_band(r, col) ? fscale * s16
                                    : -std::numeric_limits<float>::infinity();
                max_v = std::max(max_v, scores[static_cast<std::size_t>(j)]);
            }
            float sum = 0.0f;
            for (index_t j = 0; j < slab; ++j) {
                float &s = scores[static_cast<std::size_t>(j)];
                s = s == -std::numeric_limits<float>::infinity()
                        ? 0.0f
                        : std::exp(s - max_v);
                sum += s;
            }
            for (index_t d = 0; d < dh; ++d) {
                float acc = 0.0f;
                for (index_t j = 0; j < slab; ++j) {
                    const float p =
                        sum > 0.0f
                            ? float(half(scores[static_cast<std::size_t>(j)] /
                                         sum))
                            : 0.0f;
                    acc += p * float(v.at(lo + j, d));
                }
                out.at(r, d) = half(acc);
            }
        }
    }
    return out;
}

}  // namespace

HalfMatrix
sliding_chunk_attention(const HalfMatrix &q, const HalfMatrix &k,
                        const HalfMatrix &v, index_t window, double scale)
{
    MG_CHECK(window > 0) << "sliding chunk needs a positive window";
    MG_CHECK(q.rows() % window == 0)
        << "sliding chunk needs seq_len (" << q.rows()
        << ") divisible by the window (" << window << ")";
    MG_CHECK(q.same_shape(k) && q.same_shape(v))
        << "q/k/v must share shapes";
    const index_t seq = q.rows();
    return chunked_attention(
        q, k, v, window, scale,
        [&](index_t c) { return std::max<index_t>(0, (c - 1) * window); },
        [&](index_t c) { return std::min(seq, (c + 2) * window); },
        [&](index_t r, index_t col) {
            return col >= r - window && col <= r + window;
        });
}

HalfMatrix
blockify_attention(const HalfMatrix &q, const HalfMatrix &k,
                   const HalfMatrix &v, index_t block, double scale)
{
    MG_CHECK(block > 0) << "blockify needs a positive block";
    MG_CHECK(q.rows() % block == 0)
        << "blockify needs seq_len divisible by the block";
    MG_CHECK(q.same_shape(k) && q.same_shape(v))
        << "q/k/v must share shapes";
    const index_t seq = q.rows();
    return chunked_attention(
        q, k, v, block, scale,
        [&](index_t c) { return std::max<index_t>(0, (c - 1) * block); },
        [&](index_t c) { return std::min(seq, (c + 2) * block); },
        [&](index_t r, index_t col) {
            // Whole-block membership: |block(r) - block(col)| <= 1.
            const index_t br = r / block;
            const index_t bc = col / block;
            return bc + 1 >= br && bc <= br + 1;
        });
}

namespace {

/// Launches the shared kernel sequence of both chunked methods:
/// copy K/V into the duplicated chunk layout, batched chunk GEMM, masked
/// dense softmax over the chunk scores, batched PV GEMM, copy back.
void
plan_chunked(sim::GpuSim &sim, index_t seq_len, index_t rows_per_chunk,
             index_t head_dim, index_t replicas, double copy_factor,
             const std::string &prefix)
{
    MG_CHECK(rows_per_chunk > 0 && seq_len % rows_per_chunk == 0)
        << "chunked plan needs seq_len divisible by the chunk";
    const sim::DeviceSpec &dev = sim.device();
    const index_t chunks = seq_len / rows_per_chunk;
    const index_t slab = 3 * rows_per_chunk;

    // Pre-processing: materialize the duplicated K and V chunk tensors
    // (the §2.4 memory-copy overhead: copy_factor x the original size).
    const index_t copied =
        static_cast<index_t>(copy_factor *
                             static_cast<double>(seq_len * head_dim)) *
        replicas * 2;  // K and V.
    sim.launch(0, plan_elementwise(dev, copied, 1, 0.0, prefix + "copy_in"));

    // Batched chunk GEMMs: scores = Q_chunk x K_slabᵀ.
    sim.launch(0, plan_dense_gemm(dev, rows_per_chunk, slab, head_dim,
                                  chunks * replicas, prefix + "qk"));
    // Masked softmax over every chunk score, including the ~1/3 of the
    // slab outside the band (computed then masked, as the real kernels do).
    sim.launch(0, plan_dense_softmax(dev, rows_per_chunk * chunks, slab,
                                     replicas, prefix + "softmax"));
    // Batched PV GEMMs.
    sim.launch(0, plan_dense_gemm(dev, rows_per_chunk, head_dim, slab,
                                  chunks * replicas, prefix + "pv"));
    sim.join_streams();
}

}  // namespace

void
plan_sliding_chunk(sim::GpuSim &sim, index_t seq_len, index_t window,
                   index_t head_dim, index_t replicas,
                   const std::string &name_prefix)
{
    // Longformer's chunking of overlapped 2w chunks stepping w duplicates
    // each K/V row twice.
    plan_chunked(sim, seq_len, window, head_dim, replicas, 2.0,
                 name_prefix);
}

void
plan_blockify(sim::GpuSim &sim, index_t seq_len, index_t block,
              index_t head_dim, index_t replicas,
              const std::string &name_prefix)
{
    // BigBird stacks three rolled copies of K/V.
    plan_chunked(sim, seq_len, block, head_dim, replicas, 3.0, name_prefix);
}

}  // namespace multigrain::kernels
