#include "kernels/fine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/util.h"
#include "kernels/cost_model.h"

namespace multigrain::kernels {

void
fine_sddmm(const HalfMatrix &q, const HalfMatrix &k, CsrMatrix &s)
{
    const CsrLayout &layout = *s.layout;
    MG_CHECK(q.rows() == layout.rows && k.rows() == layout.cols &&
             q.cols() == k.cols())
        << "fine_sddmm shape mismatch";
    const index_t head_dim = q.cols();
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t c = layout.col_indices[static_cast<std::size_t>(i)];
            float acc = 0.0f;
            for (index_t d = 0; d < head_dim; ++d) {
                acc += float(q.at(r, d)) * float(k.at(c, d));
            }
            s.values[static_cast<std::size_t>(i)] = half(acc);
        }
    }
}

void
fine_softmax(CsrMatrix &s, double scale)
{
    const CsrLayout &layout = *s.layout;
    const float fscale = static_cast<float>(scale);
    for (index_t r = 0; r < layout.rows; ++r) {
        const index_t begin = layout.row_offsets[static_cast<std::size_t>(r)];
        const index_t end =
            layout.row_offsets[static_cast<std::size_t>(r + 1)];
        if (begin == end) {
            continue;
        }
        float max_v = -std::numeric_limits<float>::infinity();
        for (index_t i = begin; i < end; ++i) {
            max_v = std::max(
                max_v, fscale * float(s.values[static_cast<std::size_t>(i)]));
        }
        float sum = 0.0f;
        for (index_t i = begin; i < end; ++i) {
            sum += std::exp(
                fscale * float(s.values[static_cast<std::size_t>(i)]) -
                max_v);
        }
        for (index_t i = begin; i < end; ++i) {
            const float e = std::exp(
                fscale * float(s.values[static_cast<std::size_t>(i)]) -
                max_v);
            s.values[static_cast<std::size_t>(i)] = half(e / sum);
        }
    }
}

void
fine_spmm(const CsrMatrix &p, const HalfMatrix &v, FloatMatrix &c)
{
    const CsrLayout &layout = *p.layout;
    MG_CHECK(v.rows() == layout.cols) << "fine_spmm V rows mismatch";
    MG_CHECK(c.rows() == layout.rows && c.cols() == v.cols())
        << "fine_spmm output shape mismatch";
    for (index_t r = 0; r < layout.rows; ++r) {
        for (index_t i = layout.row_offsets[static_cast<std::size_t>(r)];
             i < layout.row_offsets[static_cast<std::size_t>(r + 1)]; ++i) {
            const index_t col =
                layout.col_indices[static_cast<std::size_t>(i)];
            const float pv = float(p.values[static_cast<std::size_t>(i)]);
            for (index_t d = 0; d < v.cols(); ++d) {
                c.at(r, d) += pv * float(v.at(col, d));
            }
        }
    }
}

namespace {

/// DRAM/L2 split scales for gathering `head_dim`-wide rows of a dense
/// operand at every nonzero. Rows are 128 B-ish contiguous vectors, so
/// sector efficiency is fine; the question is only reuse.
struct GatherScales {
    double dram = 0;
    double l2 = 0;
};

GatherScales
gather_scales(const sim::DeviceSpec &device, const CsrLayout &layout,
              index_t head_dim, index_t replicas)
{
    const double touched = static_cast<double>(layout.nnz()) *
                           static_cast<double>(head_dim) * kHalfBytes *
                           static_cast<double>(replicas);
    const double distinct = static_cast<double>(layout.cols) *
                            static_cast<double>(head_dim) * kHalfBytes *
                            static_cast<double>(replicas);
    // Gathered rows are hot in L1 as well: a local-ish pattern touches the
    // same 128 B row from ~2w consecutive output rows, and with ~32
    // resident row-blocks per SM those touches are temporally adjacent.
    const MemSplit split = split_reuse(touched, distinct,
                                       device.l2_capacity_bytes(), 0.85);
    GatherScales scales;
    if (touched > 0) {
        scales.dram = split.dram_bytes / touched;
        scales.l2 = split.l2_bytes / touched;
    }
    return scales;
}

}  // namespace

sim::KernelLaunch
plan_fine_sddmm(const sim::DeviceSpec &device, const CsrLayout &layout,
                index_t head_dim, index_t replicas, FineSddmmScheme scheme,
                const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_fine_sddmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = fine_shape();

    const GatherScales scales =
        gather_scales(device, layout, head_dim, replicas);
    const double dh = static_cast<double>(head_dim);

    if (scheme == FineSddmmScheme::kRowSplit) {
        // One thread block per output row: the LHS row is loaded once and
        // every nonzero gathers one RHS row. The gather inner loop carries
        // address math and predication alongside the MACs
        // (kFineGatherOverhead).
        for (index_t r = 0; r < layout.rows; ++r) {
            const double nnz = static_cast<double>(layout.row_nnz(r));
            sim::TbWork w;
            w.cuda_flops = nnz * (2.0 * dh * kFineGatherOverhead + 2.0);
            const double gather = nnz * dh * kHalfBytes;
            w.dram_read_bytes = dh * kHalfBytes + gather * scales.dram +
                                nnz * kIdxBytes + 2 * kIdxBytes;
            w.l2_bytes = gather * scales.l2;
            w.dram_write_bytes = nnz * kHalfBytes;
            launch.add_tb(w, replicas);
        }
        return launch;
    }

    // Official 1D tiling: the grid is rows x ceil(max_row_nnz / tile).
    // Rows shorter than the widest row still launch the full set of
    // blocks; the workless ones burn slots and prologue (§4 footnote 5).
    const index_t tile = 64;
    const index_t tiles_per_row =
        std::max<index_t>(1, ceil_div(layout.max_row_nnz(), tile));
    for (index_t r = 0; r < layout.rows; ++r) {
        const index_t nnz = layout.row_nnz(r);
        for (index_t t = 0; t < tiles_per_row; ++t) {
            const index_t begin = t * tile;
            const index_t slice =
                std::max<index_t>(0, std::min(tile, nnz - begin));
            sim::TbWork w;
            if (slice > 0) {
                const double s = static_cast<double>(slice);
                w.cuda_flops =
                    s * (2.0 * dh * kFineGatherOverhead + 2.0);
                const double gather = s * dh * kHalfBytes;
                // Each tile re-reads the LHS row.
                w.dram_read_bytes = dh * kHalfBytes + gather * scales.dram +
                                    s * kIdxBytes + 2 * kIdxBytes;
                w.l2_bytes = gather * scales.l2;
                w.dram_write_bytes = s * kHalfBytes;
            }
            launch.add_tb(w, replicas);
        }
    }
    return launch;
}

sim::KernelLaunch
plan_fine_softmax(const sim::DeviceSpec &device, const CsrLayout &layout,
                  index_t replicas, const std::string &name)
{
    MG_CHECK(replicas > 0) << "plan_fine_softmax bad args";
    (void)device;
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = fine_shape();
    for (index_t r = 0; r < layout.rows; ++r) {
        const double nnz = static_cast<double>(layout.row_nnz(r));
        sim::TbWork w;
        w.cuda_flops = nnz * kSoftmaxFlopsPerElem;
        // The generic CSR kernel carries column indices with the values
        // (the per-element request overhead of §5.2.2); Multigrain's
        // compound kernel references the coarse part through block
        // metadata and reads only contiguous values for its fine part.
        w.dram_read_bytes = nnz * (kHalfBytes + kIdxBytes) + 2 * kIdxBytes;
        w.dram_write_bytes = nnz * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

sim::KernelLaunch
plan_fine_spmm(const sim::DeviceSpec &device, const CsrLayout &layout,
               index_t head_dim, index_t replicas, const std::string &name)
{
    MG_CHECK(head_dim > 0 && replicas > 0) << "plan_fine_spmm bad args";
    sim::KernelLaunch launch;
    launch.name = name;
    launch.shape = fine_shape();

    const GatherScales scales =
        gather_scales(device, layout, head_dim, replicas);
    const double dh = static_cast<double>(head_dim);

    // Sputnik SpMM: 1D tiles of the dense output; with head_dim <= 64 the
    // tile is one full output row.
    for (index_t r = 0; r < layout.rows; ++r) {
        const double nnz = static_cast<double>(layout.row_nnz(r));
        sim::TbWork w;
        w.cuda_flops = nnz * (2.0 * dh * kFineGatherOverhead + 2.0);
        const double gather = nnz * dh * kHalfBytes;
        w.dram_read_bytes = nnz * (kHalfBytes + kIdxBytes) +
                            gather * scales.dram + 2 * kIdxBytes;
        w.l2_bytes = gather * scales.l2;
        w.dram_write_bytes = dh * kHalfBytes;
        launch.add_tb(w, replicas);
    }
    return launch;
}

}  // namespace multigrain::kernels
