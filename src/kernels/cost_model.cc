#include "kernels/cost_model.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain::kernels {

MemSplit
split_reuse(double touched_bytes, double distinct_bytes,
            double l2_capacity_bytes, double l1_capture)
{
    MG_CHECK(touched_bytes >= 0 && distinct_bytes >= 0)
        << "negative traffic";
    MG_CHECK(l1_capture >= 0 && l1_capture <= 1) << "bad l1_capture";
    MemSplit split;
    if (touched_bytes <= 0) {
        return split;
    }
    // The data cannot be more distinct than it is touched.
    distinct_bytes = std::min(distinct_bytes, touched_bytes);
    const double retouch = touched_bytes - distinct_bytes;
    const double past_l1 = retouch * (1.0 - l1_capture);
    // Fraction of the working set resident in L2 (with a safety margin for
    // competing data); misses fall through to DRAM.
    double hit = 1.0;
    if (distinct_bytes > 0 && l2_capacity_bytes > 0) {
        hit = std::min(1.0, 0.8 * l2_capacity_bytes / distinct_bytes);
    }
    split.dram_bytes = distinct_bytes + past_l1 * (1.0 - hit);
    split.l2_bytes = past_l1 * hit;
    return split;
}

sim::TbShape
coarse_gemm_shape()
{
    sim::TbShape shape;
    shape.threads = 256;            // 8 warps per block row.
    shape.smem_bytes = 24 * 1024;   // Double-buffered LHS/RHS tiles.
    shape.regs_per_thread = 64;
    return shape;
}

sim::TbShape
triton_gemm_shape()
{
    sim::TbShape shape;
    shape.threads = 256;
    shape.smem_bytes = 24 * 1024;
    shape.regs_per_thread = 96;     // Higher register pressure (§4).
    return shape;
}

sim::TbShape
dense_gemm_shape()
{
    sim::TbShape shape;
    shape.threads = 256;            // 128x128 output tile.
    shape.smem_bytes = 32 * 1024;
    shape.regs_per_thread = 96;
    return shape;
}

sim::TbShape
fine_shape()
{
    sim::TbShape shape;
    shape.threads = 64;
    shape.smem_bytes = 0;
    shape.regs_per_thread = 48;
    return shape;
}

sim::TbShape
softmax_shape()
{
    sim::TbShape shape;
    shape.threads = 256;            // 8 warps sweep a block row.
    shape.smem_bytes = 2 * 1024;    // Reduction scratch.
    shape.regs_per_thread = 40;
    return shape;
}

}  // namespace multigrain::kernels
