#ifndef MULTIGRAIN_KERNELS_DENSE_H_
#define MULTIGRAIN_KERNELS_DENSE_H_

#include <string>

#include "formats/matrix.h"
#include "gpusim/engine.h"

/// Dense kernels used for the "special" global-pattern parts (paper §3.1,
/// §3.3) and for the projection/FFN GEMMs of the end-to-end transformer:
/// a CUTLASS-style tiled tensor-core GEMM and a TensorRT-style fused
/// row-wise softmax.
///
/// Each kernel is a pair: the functional implementation (FP16 operands,
/// FP32 accumulation) and a plan() that emits the simulator launch.
namespace multigrain::kernels {

/// C = A x B^T; FP32 accumulation, rounded to FP16 on store.
void dense_gemm_nt(const HalfMatrix &a, const HalfMatrix &b, HalfMatrix &c);

/// C = A x B; FP32 accumulation, rounded to FP16 on store.
void dense_gemm_nn(const HalfMatrix &a, const HalfMatrix &b, HalfMatrix &c);

/// In-place row-wise safe softmax over columns [0, valid_cols) of
/// scale * m; columns beyond valid_cols are treated as masked (-inf) and
/// set to zero — the zero-padding masking of §2.2, fused as in §3.3.
void dense_softmax_rows(HalfMatrix &m, double scale, index_t valid_cols);

/// Performance plan for an M x N x K FP16 tensor-core GEMM, repeated
/// `replicas` times (independent problem instances, e.g. batch x heads,
/// fused into one launch).
sim::KernelLaunch plan_dense_gemm(const sim::DeviceSpec &device, index_t m,
                                  index_t n, index_t k, index_t replicas,
                                  const std::string &name);

/// Performance plan for a row-wise fused softmax over a dense rows x cols
/// panel, repeated `replicas` times.
sim::KernelLaunch plan_dense_softmax(const sim::DeviceSpec &device,
                                     index_t rows, index_t cols,
                                     index_t replicas,
                                     const std::string &name);

/// Performance plan for an element-wise pass over `elements` values with
/// `reads` input streams and one output stream (residual adds, LayerNorm,
/// activations). Bandwidth-bound by construction.
sim::KernelLaunch plan_elementwise(const sim::DeviceSpec &device,
                                   index_t elements, int reads,
                                   double flops_per_element,
                                   const std::string &name);

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_DENSE_H_
