#ifndef MULTIGRAIN_KERNELS_BLOCKED_BASELINE_H_
#define MULTIGRAIN_KERNELS_BLOCKED_BASELINE_H_

#include <string>

#include "formats/bcoo.h"
#include "formats/bsr.h"
#include "formats/matrix.h"
#include "gpusim/engine.h"

/// The Triton/DeepSpeed-style coarse-only baseline (paper §2.4, §4).
///
/// It processes the *entire* compound pattern — including the fine,
/// low-locality atoms and the dense global rows — through blocked kernels:
/// SDDMM over BCOO (one thread block per stored block), SpMM over BSR, and
/// a blocked softmax. Because blockifying a fine pattern stores mostly
/// near-empty blocks, the baseline's unnecessary computation and memory
/// traffic emerge directly from its own layout, not from any penalty knob.
///
/// Functionally the math inside stored blocks is identical to the coarse
/// kernels', so the functional implementations are shared (coarse.h /
/// compound_softmax.h with a null fine part); this header provides the
/// baseline's own cost models, which differ in grid mapping, metadata
/// (duplicated BCOO+BSR formats), and register pressure.
namespace multigrain::kernels {

/// Triton SDDMM plan: one thread block per stored BCOO block. No load
/// imbalance (every block is the same job), but the LHS block row is
/// re-fetched per block instead of being reused from SMEM.
sim::KernelLaunch plan_triton_sddmm(const sim::DeviceSpec &device,
                                    const BcooLayout &layout,
                                    index_t head_dim, index_t replicas,
                                    const std::string &name = "triton_sddmm");

/// Triton SpMM plan: BSR row splitting with tensor cores, like ours, but
/// with the baseline's register pressure (lower occupancy).
sim::KernelLaunch plan_triton_spmm(const sim::DeviceSpec &device,
                                   const BsrLayout &layout, index_t head_dim,
                                   index_t replicas,
                                   const std::string &name = "triton_spmm");

/// Triton blocked softmax plan: sweeps every stored element of every block
/// (valid or not) — the §5.2.2 slowdown source on blockified fine parts.
sim::KernelLaunch plan_triton_softmax(
    const sim::DeviceSpec &device, const BsrLayout &layout, index_t replicas,
    const std::string &name = "triton_softmax");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_BLOCKED_BASELINE_H_
