#ifndef MULTIGRAIN_KERNELS_CUSPARSE_BASELINE_H_
#define MULTIGRAIN_KERNELS_CUSPARSE_BASELINE_H_

#include <string>

#include "formats/blocked_ell.h"
#include "formats/matrix.h"
#include "gpusim/engine.h"

/// cuSPARSE-style blocked-ELL SpMM (paper §2.4/§6): NVIDIA's library API
/// for blocked sparse x dense products. Uniform ELL rows make the kernel
/// regular (no load imbalance at all — every block row is the same job),
/// but padding blocks are streamed and multiplied like real ones, so
/// irregular compound patterns pay for their widest row everywhere.
namespace multigrain::kernels {

/// C += P x V with P in blocked-ELL form (padding slots are zero blocks,
/// so multiplying them is a no-op numerically — just wasted work).
void cusparse_spmm(const BlockedEllMatrix &p, const HalfMatrix &v,
                   FloatMatrix &c);

/// Plan: one thread block per block row covering head_dim, sweeping all
/// ell_width slots — padding included.
sim::KernelLaunch plan_cusparse_spmm(
    const sim::DeviceSpec &device, const BlockedEllLayout &layout,
    index_t head_dim, index_t replicas,
    const std::string &name = "cusparse_spmm");

}  // namespace multigrain::kernels

#endif  // MULTIGRAIN_KERNELS_CUSPARSE_BASELINE_H_
