#include "serve/scheduler.h"

#include <algorithm>

#include "common/error.h"
#include "transformer/workload.h"

namespace multigrain::serve {

Scheduler::Scheduler(const SchedulerConfig &config,
                     const std::vector<std::string> &models)
    : config_(config)
{
    MG_CHECK(config_.max_batch > 0) << "max_batch must be positive";
    MG_CHECK(config_.max_concurrent_batches > 0)
        << "max_concurrent_batches must be positive";
    MG_CHECK(config_.bucket_granularity > 0)
        << "bucket_granularity must be positive";
    for (const std::string &name : models) {
        const ModelConfig model = model_config_by_name(name);
        MG_CHECK(config_.bucket_granularity % model.block == 0)
            << "bucket granularity " << config_.bucket_granularity
            << " is not a multiple of model \"" << name << "\" block "
            << model.block;
        MG_CHECK(config_.bucket_granularity <= model.max_seq_len)
            << "bucket granularity " << config_.bucket_granularity
            << " exceeds model \"" << name << "\" cap "
            << model.max_seq_len;
        models_.emplace(name, model);
    }
}

const ModelConfig &
Scheduler::model_for(const std::string &name) const
{
    const auto it = models_.find(name);
    MG_CHECK(it != models_.end())
        << "request names model \"" << name
        << "\" outside the scheduler's traffic mix";
    return it->second;
}

index_t
Scheduler::bucket_of(const Request &r) const
{
    const ModelConfig &model = model_for(r.model);
    return bucket_len(r.valid_len, config_.bucket_granularity,
                      model.max_seq_len);
}

int
Scheduler::planned_batch(int actual) const
{
    MG_CHECK(actual > 0) << "batch must hold at least one request";
    if (!config_.pad_batch_pow2) {
        return actual;
    }
    int padded = 1;
    while (padded < actual) {
        padded *= 2;
    }
    return std::min(padded, config_.max_batch);
}

std::vector<Batch>
Scheduler::next_round(AdmissionQueue &queue) const
{
    const bool budgeted =
        config_.round_hbm_budget_bytes > 0 && footprint_ != nullptr;
    std::uint64_t round_bytes = 0;
    std::vector<Batch> round;
    while (static_cast<int>(round.size()) <
           config_.max_concurrent_batches) {
        std::optional<Request> seed = queue.pop_seed();
        if (!seed.has_value()) {
            break;
        }
        const index_t bucket = bucket_of(*seed);
        int limit = config_.max_batch;
        if (budgeted) {
            const std::uint64_t remaining =
                config_.round_hbm_budget_bytes > round_bytes
                    ? config_.round_hbm_budget_bytes - round_bytes
                    : 0;
            if (!round.empty() &&
                footprint_(seed->model, seed->mode, bucket,
                           planned_batch(1)) > remaining) {
                // Not enough budget for this seed even alone: return it
                // to its queue head and close the round. (The first
                // batch of a round is exempt so an oversized plan still
                // makes progress.)
                queue.push_front(std::move(*seed));
                break;
            }
            // Cap the batch at the largest padded size whose plan fits
            // the remaining budget.
            while (limit > 1 &&
                   footprint_(seed->model, seed->mode, bucket,
                              planned_batch(limit)) > remaining) {
                --limit;
            }
        }
        Batch batch;
        batch.model = seed->model;
        batch.mode = seed->mode;
        batch.bucket = bucket;
        batch.requests.push_back(std::move(*seed));
        if (limit > 1) {
            const Batch &key = batch;
            std::vector<Request> fill = queue.take_matching(
                [this, &key](const Request &r) {
                    return r.model == key.model && r.mode == key.mode &&
                           bucket_of(r) == key.bucket;
                },
                static_cast<std::size_t>(limit) - 1);
            for (Request &r : fill) {
                batch.requests.push_back(std::move(r));
            }
        }
        batch.planned_batch = planned_batch(batch.size());
        if (budgeted) {
            round_bytes += footprint_(batch.model, batch.mode,
                                      batch.bucket, batch.planned_batch);
        }
        round.push_back(std::move(batch));
    }
    return round;
}

}  // namespace multigrain::serve
