#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"
#include "serve/trace.h"
#include "transformer/config.h"
#include "transformer/workload.h"

namespace multigrain::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Event shorthand for the guarded emissions below: every call site
/// already checked trace_ != nullptr, so the helpers only assemble the
/// record.
TraceEvent
request_event(TraceEventKind kind, double t_us, const Request &r)
{
    TraceEvent e;
    e.kind = kind;
    e.t_us = t_us;
    e.request = static_cast<std::int64_t>(r.id);
    return e;
}

/// tiny: the gate preset — Poisson traffic over the tiny test model with
/// three tenants across all SLO classes, sized so batches form (arrival
/// interval well below the round time) without overflowing the queue.
ServeConfig
preset_tiny()
{
    ServeConfig c;
    c.preset = "tiny";
    c.traffic.arrivals = ArrivalProcess::kPoisson;
    c.traffic.rate_rps = 20000;
    c.traffic.num_requests = 64;
    c.traffic.seed = 2022;
    c.traffic.models = {"tiny"};
    c.traffic.min_len = 16;
    c.traffic.tenants = {{"alice", 2.0, SloClass::kInteractive},
                         {"bob", 2.0, SloClass::kStandard},
                         {"carol", 1.0, SloClass::kBatch}};
    c.traffic.slo_budget_us[static_cast<int>(SloClass::kInteractive)] =
        600;
    c.traffic.slo_budget_us[static_cast<int>(SloClass::kStandard)] = 2000;
    c.admission.queue_capacity = 32;
    c.scheduler.max_batch = 4;
    c.scheduler.bucket_granularity = 64;
    c.scheduler.max_concurrent_batches = 2;
    return c;
}

/// steady: QDS-Transformer under moderate open-loop load with mixed
/// document lengths — the bucket-spread workload (512-token buckets).
ServeConfig
preset_steady()
{
    ServeConfig c;
    c.preset = "steady";
    c.traffic.arrivals = ArrivalProcess::kPoisson;
    c.traffic.rate_rps = 250;
    c.traffic.num_requests = 24;
    c.traffic.seed = 2022;
    c.traffic.models = {"qds"};
    c.traffic.min_len = 256;
    c.traffic.tenants = {{"search", 3.0, SloClass::kInteractive},
                         {"archive", 1.0, SloClass::kBatch}};
    c.traffic.slo_budget_us[static_cast<int>(SloClass::kInteractive)] =
        30000;
    c.admission.queue_capacity = 64;
    c.scheduler.max_batch = 2;
    c.scheduler.bucket_granularity = 512;
    c.scheduler.max_concurrent_batches = 2;
    return c;
}

/// overload: arrivals far beyond service capacity into a tight queue —
/// the admission-control preset. Must shed (tests assert a nonzero
/// rejected count and a max depth at the configured bound).
ServeConfig
preset_overload()
{
    ServeConfig c;
    c.preset = "overload";
    c.traffic.arrivals = ArrivalProcess::kPoisson;
    c.traffic.rate_rps = 100000;
    c.traffic.num_requests = 60;
    c.traffic.seed = 2022;
    c.traffic.models = {"tiny"};
    c.traffic.min_len = 16;
    c.traffic.tenants = {{"flood", 4.0, SloClass::kStandard},
                         {"victim", 1.0, SloClass::kInteractive}};
    c.traffic.slo_budget_us[static_cast<int>(SloClass::kInteractive)] =
        400;
    c.admission.queue_capacity = 8;
    c.admission.max_queue_wait_us = 1500;
    c.scheduler.max_batch = 2;
    c.scheduler.bucket_granularity = 64;
    c.scheduler.max_concurrent_batches = 1;
    return c;
}

/// closed: a closed loop of clients with think time — self-throttling
/// traffic whose arrival times depend on completions (the feedback path
/// of TrafficSource::on_completion).
ServeConfig
preset_closed()
{
    ServeConfig c;
    c.preset = "closed";
    c.traffic.arrivals = ArrivalProcess::kClosedLoop;
    c.traffic.concurrency = 6;
    c.traffic.think_time_us = 50;
    c.traffic.num_requests = 36;
    c.traffic.seed = 2022;
    c.traffic.models = {"tiny"};
    c.traffic.min_len = 16;
    c.traffic.tenants = {{"loop", 1.0, SloClass::kStandard}};
    c.admission.queue_capacity = 16;
    c.scheduler.max_batch = 4;
    c.scheduler.bucket_granularity = 64;
    c.scheduler.max_concurrent_batches = 2;
    return c;
}

/// memtight: the tiny traffic shape against an artificially small HBM
/// allowance — the byte-budget preset. Requests are priced by their
/// bucketed single-request MemPlan peak; admission sheds on projected
/// queue bytes (tests assert shed_memory > 0) and round formation packs
/// batches to a per-round byte budget, so both byte valves are
/// exercised by one deterministic run. The budgets are expressed as
/// multiples of the tiny model's bucket-64 single-request footprint
/// (~0.5 MB plan peak x layers) rather than a real device capacity —
/// tiny-model plans would never pressure 80 GB.
ServeConfig
preset_memtight()
{
    ServeConfig c = preset_tiny();
    c.preset = "memtight";
    // Queue holds ~3 priced requests' worth of projected bytes (a
    // bucket-64 single-request plan peaks at ~430 KB x layers); the
    // round budget fits one modest batch but not the full two-batch
    // round the tiny preset dispatches (~2.4 MiB).
    c.admission.hbm_budget_bytes = 1280ull << 10;      // 1.25 MiB.
    c.scheduler.round_hbm_budget_bytes = 768ull << 10;  // 0.75 MiB.
    return c;
}

/// noisy: the tiny traffic shape plus a misbehaving fourth tenant whose
/// weight claims most of the offered load but whose token bucket only
/// admits 2000 req/s with a 2-token burst — the rate-limiting preset.
/// The bucket throttles "hog" at the door (tests assert its
/// shed_ratelimit > 0) while the victims' tail latency stays bounded.
ServeConfig
preset_noisy()
{
    ServeConfig c = preset_tiny();
    c.preset = "noisy";
    c.traffic.num_requests = 96;
    c.traffic.tenants = {
        {"alice", 2.0, SloClass::kInteractive},
        {"bob", 2.0, SloClass::kStandard},
        {"carol", 1.0, SloClass::kBatch},
        {"hog", 8.0, SloClass::kBatch, /*rate_rps=*/2000, /*burst=*/2},
    };
    return c;
}

}  // namespace

const std::vector<ServePresetInfo> &
serve_presets()
{
    static const std::vector<ServePresetInfo> presets = {
        {"tiny", "Poisson traffic, tiny model, 3 tenants / 3 SLO classes "
                 "(the gated preset)"},
        {"steady", "QDS-Transformer, moderate Poisson load, 512-token "
                   "buckets"},
        {"overload", "arrivals beyond capacity into a tight queue — "
                     "sheds and times out"},
        {"closed", "closed loop of 6 clients with think time"},
        {"memtight", "tiny traffic under a small HBM budget — sheds on "
                     "memory and packs rounds to bytes"},
        {"noisy", "tiny traffic plus a rate-limited hog tenant — the "
                  "token-bucket / noisy-neighbor preset"},
    };
    return presets;
}

ServeConfig
serve_preset_by_name(const std::string &name)
{
    if (name == "tiny") {
        return preset_tiny();
    }
    if (name == "steady") {
        return preset_steady();
    }
    if (name == "overload") {
        return preset_overload();
    }
    if (name == "closed") {
        return preset_closed();
    }
    if (name == "memtight") {
        return preset_memtight();
    }
    if (name == "noisy") {
        return preset_noisy();
    }
    throw Error("unknown serve preset \"" + name +
                "\" (tiny|steady|overload|closed|memtight|noisy)");
}

Server::Server(ServeConfig config, sim::DeviceSpec device)
    : config_(std::move(config)), device_(std::move(device))
{
}

TransformerRunner &
Server::runner_for(const std::string &model, SliceMode mode,
                   index_t bucket, int planned_batch)
{
    const std::string key = model + "|" + to_string(mode) +
                            "|bucket=" + std::to_string(bucket) +
                            "|batch=" + std::to_string(planned_batch);
    std::unique_ptr<TransformerRunner> &slot = runners_[key];
    if (slot == nullptr) {
        const ModelConfig bucketed =
            bucketed_model(model_config_by_name(model), bucket);
        slot = std::make_unique<TransformerRunner>(
            bucketed, mode, canonical_bucket_sample(bucketed, bucket),
            planned_batch);
    }
    return *slot;
}

TransformerRunner &
Server::runner_for(const Batch &batch)
{
    return runner_for(batch.model, batch.mode, batch.bucket,
                      batch.planned_batch);
}

std::uint64_t
Server::batch_footprint(const std::string &model, SliceMode mode,
                        index_t bucket, int planned_batch)
{
    const std::string key = model + "|" + to_string(mode) +
                            "|bucket=" + std::to_string(bucket) +
                            "|batch=" + std::to_string(planned_batch);
    const auto it = footprints_.find(key);
    if (it != footprints_.end()) {
        return it->second;
    }
    const TransformerRunner &runner =
        runner_for(model, mode, bucket, planned_batch);
    const std::uint64_t bytes =
        runner
            .layer_memplan(device_, TransformerRunner::LayerKind::kInference)
            ->peak_hbm_bytes() *
        static_cast<std::uint64_t>(runner.model().num_layers);
    footprints_.emplace(key, bytes);
    return bytes;
}

void
Server::dispatch_round(double now_us, std::int64_t round_id,
                       const Scheduler &scheduler, AdmissionQueue &queue)
{
    std::vector<Batch> round = scheduler.next_round(queue);
    MG_CHECK(!round.empty()) << "dispatch_round on an empty queue";
    current_round_ = round_id;

    // The round's projected HBM watermark: the sum of its batches' plan
    // footprints. Computed for every round (budgeted or not) so the
    // report always carries the byte timeline.
    std::uint64_t hbm_bytes = 0;
    for (const Batch &b : round) {
        hbm_bytes += batch_footprint(b.model, b.mode, b.bucket,
                                     b.planned_batch);
    }
    round_bytes_.push_back(hbm_bytes);

    // One simulator per round: every batch replays its cached layer
    // graphs under its own prefix and a fresh stream binding, so the
    // round's batches co-schedule across simulated streams.
    sim::GpuSim sim(device_);
    std::vector<std::string> prefixes;
    prefixes.reserve(round.size());
    for (std::size_t j = 0; j < round.size(); ++j) {
        prefixes.push_back("B" + std::to_string(j) + ".");
        std::vector<int> binding;
        runner_for(round[j]).plan_inference_into(sim, binding,
                                                 prefixes[j]);
    }
    const sim::SimResult result = sim.run();

    for (std::size_t j = 0; j < round.size(); ++j) {
        InFlightBatch f;
        f.batch = std::move(round[j]);
        f.id = next_batch_id_++;
        f.round = round_id;
        f.dispatch_us = now_us;
        f.finish_us = now_us + result.finish_us(prefixes[j]);
        f.footprint_bytes =
            batch_footprint(f.batch.model, f.batch.mode, f.batch.bucket,
                            f.batch.planned_batch);
        if (trace_ != nullptr) {
            for (const Request &r : f.batch.requests) {
                TraceEvent e =
                    request_event(TraceEventKind::kBatchForm, now_us, r);
                e.batch = f.id;
                e.round = round_id;
                e.model = f.batch.model;
                e.bucket = f.batch.bucket;
                e.planned_batch = f.batch.planned_batch;
                e.actual_batch = f.batch.size();
                trace_->record(std::move(e));
            }
        }
        in_flight_.push_back(std::move(f));
    }
    gpu_busy_ = true;
    gpu_free_us_ = now_us + result.total_us;
    if (trace_ != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRoundDispatch;
        e.t_us = now_us;
        e.round = round_id;
        e.actual_batch = static_cast<int>(in_flight_.size());
        e.hbm_bytes = hbm_bytes;
        trace_->record(std::move(e));
        trace_->record_round_sim(round_id, now_us, result);
    }
}

void
Server::complete_round(ServeReport &report, TrafficSource &source,
                       TenantLedger &ledger)
{
    // Charge the round's device span — the exact quantity the serving
    // loop added to busy (gpu_free_us_ - dispatch time, evaluated on the
    // same doubles) — down to the batches that occupied it.
    MG_CHECK(!in_flight_.empty()) << "complete_round with no batches";
    std::vector<TenantLedger::BatchCharge> charges;
    charges.reserve(in_flight_.size());
    for (const InFlightBatch &f : in_flight_) {
        TenantLedger::BatchCharge charge;
        charge.device_us = f.finish_us - f.dispatch_us;
        charge.footprint_bytes = f.footprint_bytes;
        charge.bucket = f.batch.bucket;
        charge.planned_batch = f.batch.planned_batch;
        charge.requests = &f.batch.requests;
        charges.push_back(charge);
    }
    ledger.charge_round(gpu_free_us_ - in_flight_.front().dispatch_us,
                        charges);

    for (InFlightBatch &f : in_flight_) {
        report.batch_histogram[f.batch.size()] += 1;
        for (const Request &r : f.batch.requests) {
            RequestRecord rec;
            rec.request = r;
            rec.outcome = RequestRecord::Outcome::kCompleted;
            rec.dispatch_us = f.dispatch_us;
            rec.finish_us = f.finish_us;
            rec.bucket = f.batch.bucket;
            rec.batch_size = f.batch.size();
            rec.deadline_met = f.finish_us <= r.deadline_us;
            ledger.note_completed(r, rec.queue_us(), rec.latency_us(),
                                  rec.deadline_met);
            if (trace_ != nullptr) {
                TraceEvent e = request_event(TraceEventKind::kComplete,
                                             f.finish_us, r);
                e.batch = f.id;
                e.round = f.round;
                e.flag = rec.deadline_met;
                trace_->record(std::move(e));
            }
            report.records.push_back(std::move(rec));
            source.on_completion(r, f.finish_us);
        }
        if (trace_ != nullptr) {
            TraceEvent e;
            e.kind = TraceEventKind::kBatchDone;
            e.t_us = f.finish_us;
            e.batch = f.id;
            e.round = f.round;
            trace_->record(std::move(e));
        }
    }
    if (trace_ != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRoundDone;
        e.t_us = gpu_free_us_;
        e.round = current_round_;
        trace_->record(std::move(e));
    }
    in_flight_.clear();
    gpu_busy_ = false;
}

// ---- Step-wise driving (ISSUE 9) ----------------------------------------

void
Server::begin()
{
    MG_CHECK(!begun_) << "Server::begin may be called once";
    begun_ = true;
    cache_before_ = PlanCache::instance().stats();
    // The specs carry each tenant's token-bucket rate limit; the queue
    // builds one bucket per tenant from them.
    queue_.emplace(config_.admission, config_.traffic.tenants);
    ledger_.emplace(config_.traffic.tenants);
    scheduler_.emplace(config_.scheduler, config_.traffic.models);
    // Byte packing (scheduler) and memory shedding (admission) both
    // price work with the cached MemPlans' peak footprints.
    scheduler_->set_footprint(
        [this](const std::string &model, SliceMode m, index_t bucket,
               int planned) {
            return batch_footprint(model, m, bucket, planned);
        });
    report_.preset = config_.preset;
    report_.device = device_.name;
}

void
Server::record_shed(Request copy, AdmitDecision::Shed reason,
                    double now_us, double finish_us)
{
    ledger_->note_shed(copy, reason);
    if (trace_ != nullptr) {
        // A token-bucket shed gets its own event kind; the capacity and
        // memory valves keep the original kShed.
        const TraceEventKind kind =
            reason == AdmitDecision::Shed::kRateLimit
                ? TraceEventKind::kShedRateLimit
                : TraceEventKind::kShed;
        trace_->record(request_event(kind, now_us, copy));
    }
    RequestRecord rec;
    rec.request = std::move(copy);
    rec.outcome = RequestRecord::Outcome::kRejected;
    rec.finish_us = finish_us;
    report_.records.push_back(std::move(rec));
}

void
Server::ingest(Request r, double now_us)
{
    // Requests carry the preset's processing method.
    r.mode = config_.mode;
    if (config_.admission.hbm_budget_bytes > 0) {
        // Price the request for memory shedding: what it would cost to
        // serve alone in its bucket.
        r.footprint_bytes = batch_footprint(
            r.model, r.mode, scheduler_->bucket_of(r),
            scheduler_->planned_batch(1));
    }
    Request copy = r;
    if (trace_ != nullptr) {
        TraceEvent e =
            request_event(TraceEventKind::kArrive, r.arrival_us, r);
        e.tenant = r.tenant;
        e.model = r.model;
        e.slo = static_cast<int>(r.slo);
        e.valid_len = r.valid_len;
        e.deadline_us = r.deadline_us;
        trace_->record(std::move(e));
    }
    const AdmitDecision decision = queue_->offer(std::move(r), now_us);
    if (!decision) {
        const double arrival_us = copy.arrival_us;
        record_shed(std::move(copy), decision.reason, now_us, arrival_us);
    } else if (trace_ != nullptr) {
        trace_->record(request_event(TraceEventKind::kAdmit, now_us, copy));
    }
}

bool
Server::reingest(Request r, double now_us)
{
    // The request keeps its original arrival time (latency is measured
    // from when the user issued it) but is re-priced for this replica's
    // device, and re-arrives on this replica's trace log at the reroute
    // time so each replica's log is self-contained.
    r.mode = config_.mode;
    if (config_.admission.hbm_budget_bytes > 0) {
        r.footprint_bytes = batch_footprint(
            r.model, r.mode, scheduler_->bucket_of(r),
            scheduler_->planned_batch(1));
    }
    Request copy = r;
    if (trace_ != nullptr) {
        TraceEvent e = request_event(TraceEventKind::kArrive, now_us, r);
        e.tenant = r.tenant;
        e.model = r.model;
        e.slo = static_cast<int>(r.slo);
        e.valid_len = r.valid_len;
        e.deadline_us = r.deadline_us;
        trace_->record(std::move(e));
    }
    const AdmitDecision decision = queue_->reoffer(std::move(r), now_us);
    if (!decision) {
        record_shed(std::move(copy), decision.reason, now_us, now_us);
        return false;
    }
    if (trace_ != nullptr) {
        trace_->record(request_event(TraceEventKind::kAdmit, now_us, copy));
    }
    return true;
}

void
Server::expire(double now_us)
{
    // Age out requests that waited past the admission bound.
    for (Request &r : queue_->expire(now_us)) {
        ledger_->note_aged_out(r, now_us - r.arrival_us);
        if (trace_ != nullptr) {
            trace_->record(
                request_event(TraceEventKind::kAgeOut, now_us, r));
        }
        RequestRecord rec;
        rec.request = std::move(r);
        rec.outcome = RequestRecord::Outcome::kTimedOut;
        rec.finish_us = now_us;
        rec.deadline_met = false;
        report_.records.push_back(std::move(rec));
    }
}

bool
Server::can_dispatch() const
{
    return begun_ && !down_ && !gpu_busy_ && !queue_->empty();
}

void
Server::dispatch(double now_us)
{
    MG_CHECK(can_dispatch()) << "dispatch without can_dispatch";
    dispatch_round(now_us, rounds_, *scheduler_, *queue_);
    ++rounds_;
    busy_accum_us_ += gpu_free_us_ - now_us;
}

double
Server::busy_until() const
{
    return gpu_busy_ ? gpu_free_us_ : kInf;
}

void
Server::complete(TrafficSource &source)
{
    complete_round(report_, source, *ledger_);
    push_wfq_charges();
}

void
Server::push_wfq_charges()
{
    if (!config_.admission.wfq) {
        return;
    }
    for (const auto &[tenant, device_us] :
         ledger_->charged_device_by_tenant()) {
        queue_->set_charged(tenant, device_us);
    }
}

void
Server::observe(double now_us)
{
    // Telemetry snapshot at a virtual-clock event; guarded like trace
    // emissions so an uninstrumented run skips all of it.
    if (telemetry_ == nullptr) {
        return;
    }
    TelemetrySample s;
    for (const InFlightBatch &f : in_flight_) {
        s.in_flight += f.batch.size();
    }
    if (gpu_busy_ && !round_bytes_.empty()) {
        s.round_hbm_bytes = round_bytes_.back();
    }
    s.queue_depth = queue_->tenant_depths();
    s.bucket_fill = queue_->bucket_fills();
    telemetry_->observe(now_us, std::move(s));
}

std::uint64_t
Server::outstanding_bytes() const
{
    std::uint64_t bytes = queue_ ? queue_->queued_bytes() : 0;
    for (const InFlightBatch &f : in_flight_) {
        bytes += f.footprint_bytes;
    }
    return bytes;
}

std::vector<Request>
Server::kill(double now_us)
{
    MG_CHECK(begun_ && !down_) << "kill on a replica that is not up";
    down_ = true;
    if (gpu_busy_) {
        // The device only ran until the fault: shrink the busy
        // accumulator back to the truncated span and charge exactly that
        // span to the batches that occupied it, so charged device time
        // still telescopes to busy_us on this replica. A batch whose own
        // finish predates the fault is charged its full span (it held
        // the device that long), but its requests are still lost — the
        // round never completed, so its results were never released.
        busy_accum_us_ -= gpu_free_us_ - now_us;
        std::vector<TenantLedger::BatchCharge> charges;
        charges.reserve(in_flight_.size());
        for (const InFlightBatch &f : in_flight_) {
            TenantLedger::BatchCharge charge;
            charge.device_us =
                std::min(f.finish_us, now_us) - f.dispatch_us;
            charge.footprint_bytes = f.footprint_bytes;
            charge.bucket = f.batch.bucket;
            charge.planned_batch = f.batch.planned_batch;
            charge.requests = &f.batch.requests;
            charges.push_back(charge);
        }
        ledger_->charge_round(now_us - in_flight_.front().dispatch_us,
                              charges);
        for (InFlightBatch &f : in_flight_) {
            report_.batch_histogram[f.batch.size()] += 1;
            for (const Request &r : f.batch.requests) {
                RequestRecord rec;
                rec.request = r;
                rec.outcome = RequestRecord::Outcome::kLostReplica;
                rec.dispatch_us = f.dispatch_us;
                rec.finish_us = now_us;
                rec.bucket = f.batch.bucket;
                rec.batch_size = f.batch.size();
                rec.deadline_met = false;
                ledger_->note_lost(r, rec.queue_us());
                report_.records.push_back(std::move(rec));
            }
            if (trace_ != nullptr) {
                TraceEvent e;
                e.kind = TraceEventKind::kBatchDone;
                e.t_us = now_us;
                e.batch = f.id;
                e.round = f.round;
                trace_->record(std::move(e));
            }
        }
        if (trace_ != nullptr) {
            TraceEvent e;
            e.kind = TraceEventKind::kRoundDone;
            e.t_us = now_us;
            e.round = current_round_;
            trace_->record(std::move(e));
        }
        in_flight_.clear();
        gpu_busy_ = false;
        push_wfq_charges();
    }
    return queue_->drain();
}

void
Server::revive()
{
    MG_CHECK(down_) << "revive on a replica that is up";
    down_ = false;
}

ServeReport
Server::finish(double now_us)
{
    MG_CHECK(begun_) << "Server::finish before begin";
    if (telemetry_ != nullptr) {
        telemetry_->finish(now_us);
    }

    // ---- Reduce the records into the report ----------------------------
    ServeReport report = std::move(report_);
    report.rounds = rounds_;
    report.busy_us = busy_accum_us_;
    report.admission = queue_->stats();
    report.round_hbm_bytes = std::move(round_bytes_);
    for (const std::uint64_t b : report.round_hbm_bytes) {
        report.peak_round_hbm_bytes =
            std::max(report.peak_round_hbm_bytes, b);
    }
    report.plan_cache =
        stats_delta(cache_before_, PlanCache::instance().stats());
    report.cost = ledger_->finish(busy_accum_us_);

    std::vector<double> latencies;
    latencies.reserve(report.records.size());
    std::vector<double> by_class[kNumSloClasses];
    double first_arrival = kInf;
    double last_finish = 0;
    for (const RequestRecord &rec : report.records) {
        if (rec.outcome == RequestRecord::Outcome::kLostReplica) {
            ++report.lost_in_flight;
        }
        if (rec.outcome != RequestRecord::Outcome::kCompleted) {
            continue;
        }
        ++report.completed;
        if (!rec.deadline_met) {
            ++report.deadline_miss;
        }
        latencies.push_back(rec.latency_us());
        by_class[static_cast<int>(rec.request.slo)].push_back(
            rec.latency_us());
        first_arrival = std::min(first_arrival, rec.request.arrival_us);
        last_finish = std::max(last_finish, rec.finish_us);
    }
    report.latency = prof::summarize_latencies(std::move(latencies));
    for (int c = 0; c < kNumSloClasses; ++c) {
        report.latency_by_class[c] =
            prof::summarize_latencies(std::move(by_class[c]));
    }
    if (report.completed > 0) {
        report.makespan_us = last_finish - first_arrival;
    }
    if (report.makespan_us > 0) {
        report.throughput_rps = static_cast<double>(report.completed) /
                                (report.makespan_us / 1e6);
        report.gpu_util =
            std::min(1.0, report.busy_us / report.makespan_us);
    }
    int batch_sum = 0;
    int batch_count = 0;
    for (const auto &[size, count] : report.batch_histogram) {
        batch_sum += size * count;
        batch_count += count;
        report.max_batch = std::max(report.max_batch, size);
    }
    if (batch_count > 0) {
        report.avg_batch =
            static_cast<double>(batch_sum) / batch_count;
    }
    return report;
}

ServeReport
Server::run()
{
    MG_CHECK(!ran_) << "Server::run may be called once";
    ran_ = true;
    begin();
    TrafficSource source(config_.traffic);

    double now = 0;
    for (;;) {
        // Ingest every arrival due by now; shed what the queue refuses.
        while (source.peek_us() <= now) {
            ingest(source.pop(), now);
        }
        expire(now);

        if (can_dispatch()) {
            dispatch(now);
            observe(now);
            continue;
        }
        observe(now);

        double next = source.peek_us();
        if (gpu_busy_) {
            next = std::min(next, gpu_free_us_);
        }
        if (next == kInf) {
            break;
        }
        now = next;
        if (gpu_busy_ && now >= gpu_free_us_) {
            complete(source);
        }
    }
    MG_CHECK(source.exhausted() && queue_->empty() && !gpu_busy_)
        << "serving loop ended with work in the system";
    return finish(now);
}

// ---- Metric registry + bench rows ---------------------------------------

const std::vector<ServeMetricDef> &
serve_metric_registry()
{
    static const std::vector<ServeMetricDef> registry = {
        {"requests", "count", "Requests issued by the traffic source",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.offered);
         }},
        {"completed", "count", "Requests served to completion",
         [](const ServeReport &r) {
             return static_cast<double>(r.completed);
         }},
        {"rejected", "count", "Requests shed at admission (queue full)",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.rejected);
         }},
        {"shed_memory", "count",
         "Requests shed on projected HBM pressure (subset of rejected)",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.shed_memory);
         }},
        {"shed_ratelimit", "count",
         "Requests shed by per-tenant token buckets (subset of rejected)",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.shed_ratelimit);
         }},
        {"timed_out", "count", "Requests aged out of the queue",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.timed_out);
         }},
        {"deadline_miss", "count",
         "Completed requests that finished past their SLO deadline",
         [](const ServeReport &r) {
             return static_cast<double>(r.deadline_miss);
         }},
        {"max_queue_depth", "count",
         "High-water mark of the admission queue",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.max_depth);
         }},
        {"p50_us", "us", "Median request latency (arrival to completion)",
         [](const ServeReport &r) { return r.latency.p50; }},
        {"p95_us", "us", "95th-percentile request latency",
         [](const ServeReport &r) { return r.latency.p95; }},
        {"p99_us", "us", "99th-percentile request latency",
         [](const ServeReport &r) { return r.latency.p99; }},
        {"mean_us", "us", "Mean request latency",
         [](const ServeReport &r) { return r.latency.mean; }},
        {"max_us", "us", "Worst request latency",
         [](const ServeReport &r) { return r.latency.max; }},
        {"throughput_rps", "req/s",
         "Completed requests over the serving window",
         [](const ServeReport &r) { return r.throughput_rps; }},
        {"makespan_us", "us",
         "First arrival to last completion",
         [](const ServeReport &r) { return r.makespan_us; }},
        {"busy_us", "us", "Device-occupied time across rounds",
         [](const ServeReport &r) { return r.busy_us; }},
        {"gpu_util", "ratio", "busy / makespan",
         [](const ServeReport &r) { return r.gpu_util; }},
        {"rounds", "count", "Scheduling rounds dispatched",
         [](const ServeReport &r) {
             return static_cast<double>(r.rounds);
         }},
        {"avg_batch", "requests", "Mean actual batch size",
         [](const ServeReport &r) { return r.avg_batch; }},
        {"max_batch", "requests", "Largest actual batch size",
         [](const ServeReport &r) {
             return static_cast<double>(r.max_batch);
         }},
        {"peak_round_hbm_bytes", "bytes",
         "Largest projected HBM footprint of any dispatched round",
         [](const ServeReport &r) {
             return static_cast<double>(r.peak_round_hbm_bytes);
         }},
        {"max_queued_hbm_bytes", "bytes",
         "High-water mark of the admission queue's projected HBM bytes",
         [](const ServeReport &r) {
             return static_cast<double>(r.admission.max_queued_bytes);
         }},
        {"plan_cache.hits", "count",
         "Plan-cache hits attributable to this run",
         [](const ServeReport &r) {
             return static_cast<double>(r.plan_cache.hits);
         }},
        {"plan_cache.misses", "count",
         "Plan-cache misses attributable to this run",
         [](const ServeReport &r) {
             return static_cast<double>(r.plan_cache.misses);
         }},
    };
    return registry;
}

void
append_serve_rows(prof::BenchRun &run, const ServeReport &report)
{
    prof::BenchRow serve;
    serve.series = "serve";
    serve.labels.emplace_back("preset", report.preset);
    for (const ServeMetricDef &metric : serve_metric_registry()) {
        serve.metrics.emplace_back(metric.key, metric.get(report));
    }
    run.rows.push_back(std::move(serve));

    for (int c = 0; c < kNumSloClasses; ++c) {
        const prof::LatencySummary &s = report.latency_by_class[c];
        prof::BenchRow row;
        row.series = "slo";
        row.labels.emplace_back("class",
                                to_string(static_cast<SloClass>(c)));
        row.metrics.emplace_back("completed",
                                 static_cast<double>(s.count));
        row.metrics.emplace_back("p50_us", s.p50);
        row.metrics.emplace_back("p95_us", s.p95);
        row.metrics.emplace_back("p99_us", s.p99);
        row.metrics.emplace_back("max_us", s.max);
        run.rows.push_back(std::move(row));
    }

    for (const auto &[size, count] : report.batch_histogram) {
        prof::BenchRow row;
        row.series = "batch_hist";
        row.labels.emplace_back("size", std::to_string(size));
        row.metrics.emplace_back("count", static_cast<double>(count));
        run.rows.push_back(std::move(row));
    }

    // Per-tenant ledger rows: the gate watches each tenant's charged
    // device time (lower is better) and its rate-limit shed count.
    for (const TenantCost &t : report.cost.tenants) {
        prof::BenchRow row;
        row.series = "tenant";
        row.labels.emplace_back("tenant", t.tenant);
        row.metrics.emplace_back("completed",
                                 static_cast<double>(t.total.completed));
        row.metrics.emplace_back(
            "shed_ratelimit",
            static_cast<double>(t.total.shed_ratelimit));
        row.metrics.emplace_back("charged_us", t.total.device_us());
        row.metrics.emplace_back("pad_us", t.total.pad_us);
        row.metrics.emplace_back("queue_us", t.total.queue_us);
        row.metrics.emplace_back("p99_us", t.latency.p99);
        run.rows.push_back(std::move(row));
    }
}

prof::BenchRun
serve_bench_run(const ServeReport &report,
                const std::string &device_name)
{
    prof::BenchRun run;
    run.name = "serve_" + report.preset + "@" + device_name;
    run.manifest = prof::RunManifest::collect(device_name);
    append_serve_rows(run, report);
    return run;
}

}  // namespace multigrain::serve
