#ifndef MULTIGRAIN_SERVE_COST_H_
#define MULTIGRAIN_SERVE_COST_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "profiler/history.h"
#include "profiler/percentile.h"
#include "serve/admission.h"
#include "serve/traffic.h"

/// mgcost: per-tenant cost attribution + time-series telemetry for the
/// serving layer (ISSUE 8).
///
/// mgtrace answers *where one request's time went*; this layer answers
/// *who spent the device*. The TenantLedger splits every dispatched
/// round's device-busy span down to its batches (pro-rata by each
/// batch's own span, so concurrent batches share the round they
/// co-occupy) and within each batch down to its member requests:
/// compute time is charged by useful-token share, pad waste (bucket
/// slack + pow2 batch slack) pro-rata across the members that caused
/// the padded plan to run, HBM byte-time as the batch's projected
/// footprint held for its device span, and queue-occupancy time from
/// the admission timestamps. Charges land in per-tenant × SLO-class
/// cells next to exact outcome counters (completed, the three disjoint
/// shed valves, age-outs, deadline misses).
///
/// The load-bearing property is *conservation*: per-tenant charged
/// device time telescopes back to ServeReport::busy_us by construction,
/// and reconcile_cost() re-derives every figure it can from the
/// ServeReport and collects any disagreement — mgcost turns a non-empty
/// error list into a ValidationError (exit 2), exactly like mgtrace.
///
/// The TelemetryRecorder is the time-series half: a fixed-interval
/// sampler on the virtual serving clock (per-tenant queue depth,
/// in-flight requests, the running round's HBM watermark, token-bucket
/// fill) that exports as CSV here and as Perfetto counter tracks
/// through ServeTraceOptions::telemetry. Like tracing, both are
/// observers: an instrumented run replays the exact same virtual clock
/// as a bare one.
namespace multigrain::serve {

// ---- Charge cells -------------------------------------------------------

/// One tenant × SLO-class accounting bucket: device/queue/byte charges
/// plus exact outcome counters.
struct CostCell {
    double compute_us = 0;  ///< Useful-token share of device time.
    double pad_us = 0;      ///< Padding waste charged pro-rata.
    double queue_us = 0;    ///< Queue occupancy (completed + aged out).
    /// HBM residency: batch footprint bytes × its device span, split
    /// equally across the batch members (padding included — the padded
    /// plan is what reserved the bytes).
    double hbm_byte_us = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_capacity = 0;
    std::uint64_t shed_memory = 0;
    std::uint64_t shed_ratelimit = 0;
    std::uint64_t aged_out = 0;
    std::uint64_t deadline_miss = 0;
    /// Requests that were on the device (or dispatched) when their
    /// replica went down (ISSUE 9) — terminal, fleet-unrecoverable work.
    /// Always 0 in single-server runs.
    std::uint64_t lost_in_flight = 0;

    /// Total device time charged to this cell.
    double device_us() const { return compute_us + pad_us; }
    std::uint64_t offered() const
    {
        return completed + shed_capacity + shed_memory + shed_ratelimit +
               aged_out + lost_in_flight;
    }
};

/// Accumulates `cell` into `into`, field by field — how tenant totals
/// telescope from class cells, and how mgcluster merges per-replica
/// ledgers into the fleet ledger.
void add_cell(CostCell &into, const CostCell &cell);

struct TenantCost {
    std::string tenant;
    CostCell total;  ///< Sum of by_class, computed cell by cell.
    CostCell by_class[kNumSloClasses];
    /// Completed-request latency summary (the per-tenant tail the
    /// noisy-neighbor guarantee is stated over).
    prof::LatencySummary latency;
};

struct CostReport {
    std::vector<TenantCost> tenants;  ///< Spec order, extras appended.
    std::int64_t rounds = 0;          ///< Rounds charged.
    /// The conservation target, copied verbatim from
    /// ServeReport::busy_us at finish().
    double busy_us = 0;
    /// The ledger's own running totals, accumulated independently of
    /// the per-cell charges — reconcile_cost checks both against each
    /// other and against the ServeReport.
    double charged_device_us = 0;
    double charged_queue_us = 0;
    double charged_hbm_byte_us = 0;
};

// ---- The ledger ---------------------------------------------------------

class TenantLedger {
  public:
    /// `tenants` fixes the row order of the report; requests from
    /// unlisted tenants get a row appended on first sight.
    explicit TenantLedger(const std::vector<TenantSpec> &tenants);

    /// One batch of a dispatched round, as the Server saw it.
    struct BatchCharge {
        double device_us = 0;  ///< Batch span (finish - dispatch).
        std::uint64_t footprint_bytes = 0;
        index_t bucket = 0;
        int planned_batch = 0;
        const std::vector<Request> *requests = nullptr;
    };

    /// Charges one round's device-busy span `round_us` (the same
    /// quantity ServeReport::busy_us accumulates) to the requests of its
    /// batches: batches split the round pro-rata by their own spans, a
    /// batch splits into compute (by valid-token share) and pad (equal
    /// pro-rata), so the per-request charges telescope back to round_us
    /// up to float rounding.
    void charge_round(double round_us,
                      const std::vector<BatchCharge> &batches);

    /// A request completed: charges its queue occupancy and records the
    /// outcome counters plus a latency sample.
    void note_completed(const Request &r, double queue_us,
                        double latency_us, bool deadline_met);
    /// A request was shed at the door for `reason` (must not be kNone).
    void note_shed(const Request &r, AdmitDecision::Shed reason);
    /// A request aged out after `waited_us` in the queue (charged as
    /// queue occupancy — it held a slot the whole time).
    void note_aged_out(const Request &r, double waited_us);
    /// A dispatched request died with its replica (ISSUE 9): charges the
    /// queue occupancy it consumed before dispatch and counts it in the
    /// lost_in_flight cell. The truncated round's device time is charged
    /// separately through charge_round.
    void note_lost(const Request &r, double queue_us);

    /// Cumulative charged device time per tenant (spec order, extras
    /// appended) — the WFQ feedback the Server pushes into
    /// AdmissionQueue::set_charged after every completed round.
    std::vector<std::pair<std::string, double>>
    charged_device_by_tenant() const;

    /// Reduces the cells into the report; `busy_us` is the run's
    /// ServeReport::busy_us (the conservation target).
    CostReport finish(double busy_us) const;

  private:
    struct TenantState {
        std::string name;
        CostCell by_class[kNumSloClasses];
        std::vector<double> latencies;
    };
    TenantState &state_for(const std::string &tenant);
    CostCell &cell_for(const Request &r);

    std::vector<TenantState> tenants_;
    std::int64_t rounds_ = 0;
    double charged_device_us_ = 0;
    double charged_queue_us_ = 0;
    double charged_hbm_byte_us_ = 0;
};

// ---- Reconciliation -----------------------------------------------------

struct ServeReport;  // serve/server.h

/// Relative tolerance for the conservation gate: per-tenant charges are
/// the same doubles busy_us was summed from, in a different order, so
/// the slack only absorbs summation rounding (mirrors kReconcileRelTol).
inline constexpr double kCostReconcileRelTol = 1e-9;

/// Cross-checks the ledger against the ServeReport of the same run:
/// charged device time sums to busy_us, every counter matches its
/// AdmissionStats / ServeReport twin exactly, per-tenant totals equal
/// their class cells, and queue charges match the request records.
/// Returns the collected failures (empty = conserved); never throws.
std::vector<std::string> reconcile_cost(const CostReport &cost,
                                        const ServeReport &report);

/// Multiplies one tenant's device-time charges by `scale` — the seeded
/// corruption the CLI's --perturb-ledger flag and the tests use to
/// prove the conservation gate actually fails closed.
void scale_tenant_charges(CostReport &cost, std::size_t tenant_index,
                          double scale);

// ---- Report document ----------------------------------------------------

/// Identity of the accounted run, stamped into the report document.
struct CostRunInfo {
    std::string preset;
    std::string device;
    std::uint64_t seed = 0;
};

/// Writes one cost cell's fields into an open JSON object — shared by
/// the mgcost document below and mgcluster's merged fleet ledger.
void write_cost_cell(JsonWriter &w, const CostCell &cell, double busy_us);

/// The validated "mgcost.report" v1 JSON document. The two-argument
/// form stamps a freshly collected manifest; pass an explicit manifest
/// to make the document a pure function of (report, info) — what the
/// byte-identical tests pin (the manifest timestamp is wall clock).
std::string cost_report_json(const CostReport &cost,
                             const CostRunInfo &info,
                             const std::vector<std::string> &errors,
                             const prof::RunManifest &manifest);
std::string cost_report_json(const CostReport &cost,
                             const CostRunInfo &info,
                             const std::vector<std::string> &errors);

// ---- Time-series telemetry ----------------------------------------------

struct TelemetryConfig {
    /// Sampling grid spacing on the virtual serving clock, microseconds.
    double interval_us = 50;
};

/// One grid sample. The per-tenant vectors are parallel to
/// TelemetryRecorder::tenants().
struct TelemetrySample {
    double t_us = 0;
    int in_flight = 0;  ///< Requests on the device.
    /// The running round's projected HBM watermark; 0 while idle.
    std::uint64_t round_hbm_bytes = 0;
    std::vector<std::size_t> queue_depth;
    std::vector<double> bucket_fill;
};

/// Step-function sampler: the Server reports its state at every virtual
/// clock event via observe(), and the recorder emits one sample per
/// elapsed grid point carrying the state that was current when that
/// grid time passed. Pure function of the observe() calls — same seed,
/// byte-identical CSV.
class TelemetryRecorder {
  public:
    TelemetryRecorder(TelemetryConfig config,
                      std::vector<std::string> tenants);

    const std::vector<std::string> &tenants() const { return tenants_; }
    double interval_us() const { return config_.interval_us; }

    /// State transition at `now_us` (non-decreasing): emits every grid
    /// point strictly before now_us with the previous state, then
    /// adopts `state` as current.
    void observe(double now_us, TelemetrySample state);
    /// Flushes the remaining grid points up to and including `end_us`.
    void finish(double end_us);

    const std::vector<TelemetrySample> &samples() const
    {
        return samples_;
    }

  private:
    void emit_through(double limit_us, bool inclusive);

    TelemetryConfig config_;
    std::vector<std::string> tenants_;
    TelemetrySample current_;
    double next_grid_us_ = 0;
    std::vector<TelemetrySample> samples_;
};

/// Wide-format CSV: t_us, in_flight, round_hbm_bytes, then one
/// queue_depth.<tenant> and one bucket_fill.<tenant> column per tenant.
void write_telemetry_csv(const TelemetryRecorder &recorder,
                         std::ostream &os);
std::string telemetry_csv(const TelemetryRecorder &recorder);

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_COST_H_
