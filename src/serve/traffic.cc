#include "serve/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "transformer/config.h"

namespace multigrain::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Heap order: earliest arrival first, lowest id breaking ties (ids are
/// issue order, so the tie-break is deterministic).
bool
arrives_later(const Request &a, const Request &b)
{
    if (a.arrival_us != b.arrival_us) {
        return a.arrival_us > b.arrival_us;
    }
    return a.id > b.id;
}

}  // namespace

const char *
to_string(SloClass slo)
{
    switch (slo) {
      case SloClass::kInteractive:
        return "interactive";
      case SloClass::kStandard:
        return "standard";
      case SloClass::kBatch:
        return "batch";
    }
    return "?";
}

const char *
to_string(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::kPoisson:
        return "poisson";
      case ArrivalProcess::kClosedLoop:
        return "closed-loop";
    }
    return "?";
}

TrafficSource::TrafficSource(const TrafficConfig &config)
    : config_(config), rng_(config.seed)
{
    MG_CHECK(config_.num_requests > 0) << "traffic needs requests";
    MG_CHECK(!config_.models.empty()) << "traffic needs a model mix";
    MG_CHECK(!config_.tenants.empty()) << "traffic needs tenants";
    for (const std::string &model : config_.models) {
        model_caps_.push_back(model_config_by_name(model).max_seq_len);
    }
    for (const TenantSpec &tenant : config_.tenants) {
        MG_CHECK(tenant.weight > 0)
            << "tenant \"" << tenant.name << "\" needs a positive weight";
        tenant_weight_total_ += tenant.weight;
    }

    if (config_.arrivals == ArrivalProcess::kPoisson) {
        MG_CHECK(config_.rate_rps > 0) << "Poisson traffic needs a rate";
        double t = 0;
        for (int i = 0; i < config_.num_requests; ++i) {
            // Exponential interarrival via inverse transform; 1 - U
            // keeps the argument of log strictly positive.
            const double u = 1.0 - static_cast<double>(rng_.next_float());
            t += -std::log(u) / config_.rate_rps * 1e6;
            pending_.push_back(make_request(t));
            std::push_heap(pending_.begin(), pending_.end(),
                           arrives_later);
        }
    } else {
        MG_CHECK(config_.concurrency > 0)
            << "closed-loop traffic needs clients";
        const int initial =
            std::min(config_.concurrency, config_.num_requests);
        for (int i = 0; i < initial; ++i) {
            pending_.push_back(make_request(0.0));
            std::push_heap(pending_.begin(), pending_.end(),
                           arrives_later);
        }
    }
}

Request
TrafficSource::make_request(double arrival_us)
{
    Request r;
    r.id = static_cast<std::uint64_t>(issued_++);
    r.arrival_us = arrival_us;

    // Tenant by weight (cumulative inverse transform over the spec list).
    double pick = rng_.next_float() * tenant_weight_total_;
    const TenantSpec *tenant = &config_.tenants.back();
    for (const TenantSpec &t : config_.tenants) {
        pick -= t.weight;
        if (pick < 0) {
            tenant = &t;
            break;
        }
    }
    r.tenant = tenant->name;
    r.slo = tenant->slo;

    const std::size_t m = static_cast<std::size_t>(
        rng_.next_below(config_.models.size()));
    r.model = config_.models[m];

    const index_t cap =
        config_.max_len > 0 ? std::min(config_.max_len, model_caps_[m])
                            : model_caps_[m];
    const index_t lo = std::clamp<index_t>(config_.min_len, 1, cap);
    r.valid_len = rng_.next_range(lo, cap);

    const double budget =
        config_.slo_budget_us[static_cast<int>(r.slo)];
    r.deadline_us = budget > 0 ? arrival_us + budget : kInf;
    return r;
}

double
TrafficSource::peek_us() const
{
    return pending_.empty() ? kInf : pending_.front().arrival_us;
}

Request
TrafficSource::pop()
{
    MG_CHECK(!pending_.empty()) << "traffic source has nothing pending";
    std::pop_heap(pending_.begin(), pending_.end(), arrives_later);
    Request r = std::move(pending_.back());
    pending_.pop_back();
    ++popped_;
    return r;
}

void
TrafficSource::on_completion(const Request &, double finish_us)
{
    if (config_.arrivals != ArrivalProcess::kClosedLoop ||
        issued_ >= config_.num_requests) {
        return;
    }
    pending_.push_back(
        make_request(finish_us + config_.think_time_us));
    std::push_heap(pending_.begin(), pending_.end(), arrives_later);
}

bool
TrafficSource::exhausted() const
{
    return pending_.empty() && issued_ >= config_.num_requests;
}

}  // namespace multigrain::serve
