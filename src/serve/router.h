#ifndef MULTIGRAIN_SERVE_ROUTER_H_
#define MULTIGRAIN_SERVE_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/traffic.h"

/// Request routing for mgcluster (ISSUE 9): which replica gets each
/// arrival, and where a dead replica's drained backlog goes.
///
/// The router is a pure placement policy: it never holds requests and
/// never talks to a Server — the Cluster asks it to pick a replica from
/// a snapshot of per-replica views (alive? how many outstanding bytes?)
/// and does the offering itself. All three policies are deterministic
/// functions of (seed, the request stream, the view snapshots), so a
/// cluster run is as replayable as a single-server run.
///
/// Routing counters obey the same conservation discipline as the rest
/// of the serving stack: routed + shed_arrivals == arrivals,
/// rerouted + shed_reroutes == drained, and a request the router could
/// not place (no replica alive) is counted here precisely because no
/// replica's ledger ever saw it — the fleet identity in
/// reconcile_cluster leans on these counters being exact.
namespace multigrain::serve {

enum class RoutePolicy {
    /// Rotating cursor over the alive replicas; the seed picks the
    /// starting replica.
    kRoundRobin = 0,
    /// The alive replica with the fewest outstanding (queued +
    /// in-flight) projected HBM bytes; ties go to the lowest index.
    /// Balances heterogeneous fleets by actual backlog, not turn order.
    kLeastBytes,
    /// Each tenant is pinned to a seed-hashed replica so its repeated
    /// shapes stay hot in that replica's plan working set (plan-cache
    /// locality). A dead pin re-pins to the next alive replica —
    /// stickily, so the tenant's cache investment is not thrown away
    /// the moment the old replica revives.
    kTenantAffinity,
};

const char *to_string(RoutePolicy policy);
/// Inverse of to_string over the CLI names ("round-robin" |
/// "least-bytes" | "tenant-affinity"); throws Error on anything else.
RoutePolicy route_policy_by_name(const std::string &name);

/// What the router may look at when placing a request: one entry per
/// replica, index-aligned with the cluster's replica list.
struct ReplicaView {
    bool alive = true;
    /// Server::outstanding_bytes() — queued + in-flight projected HBM.
    std::uint64_t outstanding_bytes = 0;
};

struct RouterStats {
    /// Arrivals assigned to a replica.
    std::uint64_t routed = 0;
    /// Drained (failover) requests assigned to a replica — counted even
    /// when the target's own valves then shed the request terminally.
    std::uint64_t rerouted = 0;
    /// Arrivals dropped because no replica was alive to take them.
    std::uint64_t shed_arrivals = 0;
    /// Drained requests dropped because no replica was alive.
    std::uint64_t shed_reroutes = 0;
    /// Tenant-affinity pins moved off a dead replica.
    std::uint64_t affinity_repins = 0;
    /// routed + rerouted per replica, index-aligned.
    std::vector<std::uint64_t> per_replica;

    /// Requests the fleet dropped without any replica seeing them.
    std::uint64_t failover_sheds() const
    {
        return shed_arrivals + shed_reroutes;
    }
};

class Router {
  public:
    Router(RoutePolicy policy, std::size_t replicas, std::uint64_t seed);

    RoutePolicy policy() const { return policy_; }

    /// Picks a replica for an arriving request; -1 (and a
    /// shed_arrivals count) when no replica is alive. `views` must have
    /// one entry per replica.
    int route(const Request &r, const std::vector<ReplicaView> &views);
    /// Picks a replica for a request drained from a dead replica; -1
    /// (and a shed_reroutes count) when no replica is alive.
    int reroute(const Request &r, const std::vector<ReplicaView> &views);

    const RouterStats &stats() const { return stats_; }

  private:
    int pick(const Request &r, const std::vector<ReplicaView> &views);

    RoutePolicy policy_;
    std::size_t replicas_;
    std::uint64_t seed_;
    std::size_t cursor_;  ///< Round-robin state.
    /// Tenant-affinity pins, created on first sight from the seeded
    /// hash and moved (stickily) off dead replicas.
    std::map<std::string, std::size_t> pins_;
    RouterStats stats_;
};

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_ROUTER_H_
