#ifndef MULTIGRAIN_SERVE_SERVER_H_
#define MULTIGRAIN_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "profiler/history.h"
#include "profiler/percentile.h"
#include "serve/admission.h"
#include "serve/cost.h"
#include "serve/scheduler.h"
#include "serve/traffic.h"
#include "transformer/runner.h"

/// mgserve: the multi-tenant serving layer over gpusim (ISSUE 4).
///
/// A Server drives one traffic preset end to end, deterministically:
/// requests arrive (serve/traffic.h), pass admission control
/// (serve/admission.h), are packed into compatible batches
/// (serve/scheduler.h), and every round of batches is replayed into one
/// GpuSim — each batch's PlanCache'd layer graphs under its own name
/// prefix and stream binding, so concurrent batches overlap across
/// simulated streams. Virtual serving time advances on two kinds of
/// events only (request arrival, round completion), so the entire run —
/// queue depths, batch shapes, per-request latencies — is a pure
/// function of (preset, seed, device), which is what lets mgperf gate
/// serving behavior as tightly as it gates kernel time.
///
/// The simulation nests two clocks: gpusim's microsecond timeline inside
/// one round, and the serving clock across rounds. A round dispatched at
/// time T with round makespan M occupies the device until T + M; each of
/// its batches finishes at T + finish_us(batch prefix), which is earlier
/// than T + M when a short batch overlaps a long one on other streams.
namespace multigrain::serve {

struct ServeConfig {
    std::string preset = "custom";
    TrafficConfig traffic;
    AdmissionConfig admission;
    SchedulerConfig scheduler;
    /// Processing method applied to every request of the preset.
    SliceMode mode = SliceMode::kMultigrain;
};

/// Registered traffic presets ("tiny" | "steady" | "overload" |
/// "closed" | "memtight" | "noisy"); throws Error on unknown names.
ServeConfig serve_preset_by_name(const std::string &name);

struct ServePresetInfo {
    const char *name;
    const char *description;
};
const std::vector<ServePresetInfo> &serve_presets();

struct RequestRecord {
    enum class Outcome {
        kCompleted,
        kRejected,
        kTimedOut,
        /// Dispatched to a replica that went down before the round
        /// finished (ISSUE 9): the work is lost fleet-wide. finish_us is
        /// the fault time; deadline_met is always false.
        kLostReplica,
    };

    Request request;
    Outcome outcome = Outcome::kCompleted;
    double dispatch_us = 0;
    double finish_us = 0;
    index_t bucket = 0;
    int batch_size = 0;  ///< Actual co-batched requests (not padded).
    bool deadline_met = true;

    /// Arrival-to-completion latency (the SLO metric).
    double latency_us() const { return finish_us - request.arrival_us; }
    /// Time spent queued before dispatch.
    double queue_us() const { return dispatch_us - request.arrival_us; }
};

struct ServeReport {
    std::string preset;
    std::string device;
    std::vector<RequestRecord> records;
    AdmissionStats admission;
    /// Plan-cache counter movement attributable to this run.
    PlanCacheStats plan_cache;
    prof::LatencySummary latency;  ///< Completed requests only.
    prof::LatencySummary latency_by_class[kNumSloClasses];
    /// Actual batch size -> number of batches dispatched at that size.
    std::map<int, int> batch_histogram;
    int rounds = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_miss = 0;
    /// Requests lost in flight when this replica was killed (ISSUE 9);
    /// always 0 in single-server runs.
    std::uint64_t lost_in_flight = 0;
    double makespan_us = 0;  ///< First arrival to last completion.
    double busy_us = 0;      ///< Device-occupied time (sum of rounds).
    double throughput_rps = 0;
    double avg_batch = 0;
    int max_batch = 0;
    /// busy / makespan — how much of the serving window the device
    /// spent executing rounds.
    double gpu_util = 0;
    /// Projected HBM footprint of each dispatched round (sum of its
    /// batches' MemPlan peaks x layers), in dispatch order — the
    /// per-round byte watermarks, and their maximum.
    std::vector<std::uint64_t> round_hbm_bytes;
    std::uint64_t peak_round_hbm_bytes = 0;
    /// Per-tenant cost attribution (serve/cost.h): every run carries its
    /// ledger so bench rows and mgcost read the same numbers.
    CostReport cost;
};

class TraceLog;  // serve/trace.h

class Server {
  public:
    Server(ServeConfig config, sim::DeviceSpec device);

    /// Attaches a request-level event log (serve/trace.h). Off by
    /// default; every emission in the serving loop is guarded behind
    /// this pointer, so an untraced run takes the pre-trace fast path
    /// and a traced run observes — never perturbs — the virtual clock.
    /// The log must outlive run().
    void set_trace(TraceLog *trace) { trace_ = trace; }

    /// Attaches a fixed-interval time-series sampler (serve/cost.h).
    /// Same contract as set_trace: a pure observer of the virtual clock,
    /// off by default, must outlive run().
    void set_telemetry(TelemetryRecorder *telemetry)
    {
        telemetry_ = telemetry;
    }

    /// Runs the preset to completion. May be called once.
    ServeReport run();

    // ---- Step-wise driving (ISSUE 9) --------------------------------
    // run() is a thin driver over the methods below, calling them in a
    // fixed per-event order; mgcluster drives N replicas' servers on one
    // shared virtual clock in the same order, which is why a replica's
    // serving behavior inside a cluster matches a standalone run of the
    // same event stream operation for operation.

    /// Builds the queue/ledger/scheduler and snapshots the plan cache.
    /// Must be called once before any other stepping method (run() calls
    /// it itself).
    void begin();
    /// One arrival at `now_us`: stamps the preset's slice mode, prices
    /// the footprint when a byte budget is configured, offers it to
    /// admission, and records the shed outcome if refused.
    void ingest(Request r, double now_us);
    /// Failover re-admission of a request drained from a dead replica:
    /// same as ingest but through AdmissionQueue::reoffer (the tenant's
    /// token bucket is not billed twice for a fault-caused move).
    /// Returns false when this replica's depth/byte valves shed it —
    /// then the request is terminal here, recorded as rejected.
    bool reingest(Request r, double now_us);
    /// Ages out requests that waited past the admission bound.
    void expire(double now_us);
    /// True when a round can start: up, device idle, work queued.
    bool can_dispatch() const;
    /// Forms and dispatches the next round; requires can_dispatch().
    void dispatch(double now_us);
    bool busy() const { return gpu_busy_; }
    /// When the running round releases the device; +infinity while idle.
    double busy_until() const;
    /// Completes the round due at busy_until(): records, charges the
    /// ledger, feeds closed-loop traffic, pushes WFQ debt.
    void complete(TrafficSource &source);
    /// Telemetry snapshot at a virtual-clock event (no-op untelemetered).
    void observe(double now_us);
    /// Queued + in-flight projected HBM bytes — the load figure the
    /// cluster router's least-bytes policy balances on.
    std::uint64_t outstanding_bytes() const;

    /// Takes this replica down at `now_us` (ISSUE 9): the running round
    /// is truncated — its device time up to now_us is charged, its
    /// requests are recorded as lost in flight — and every
    /// admitted-but-undispatched request is drained and returned for the
    /// router to re-offer fleet-wide. The replica stays down (dispatch
    /// refuses) until revive().
    std::vector<Request> kill(double now_us);
    void revive();
    bool down() const { return down_; }

    /// Finishes instrumentation at `now_us` and reduces the records into
    /// the final report. Call exactly once, after the event stream ends.
    ServeReport finish(double now_us);

  private:
    struct InFlightBatch {
        Batch batch;
        std::int64_t id = -1;     ///< Stable batch id (trace events).
        std::int64_t round = -1;  ///< Round that dispatched it.
        double dispatch_us = 0;
        double finish_us = 0;
        /// The batch's projected HBM footprint (batch_footprint), kept
        /// for the ledger's byte-time charge.
        std::uint64_t footprint_bytes = 0;
    };

    TransformerRunner &runner_for(const Batch &batch);
    TransformerRunner &runner_for(const std::string &model, SliceMode mode,
                                  index_t bucket, int planned_batch);
    /// Pushes the ledger's per-tenant charged device time into the
    /// admission queue (the WFQ debt feedback); no-op unless the
    /// preset enables weighted fair queueing.
    void push_wfq_charges();
    /// Books a door shed: ledger counter, trace event, kRejected record
    /// terminal at `finish_us`.
    void record_shed(Request copy, AdmitDecision::Shed reason,
                     double now_us, double finish_us);
    /// Projected HBM bytes of one batch's execution: the bucketed layer
    /// plan's MemPlan peak x the model's layer count. Memoized per
    /// (model, mode, bucket, planned batch); the MemPlan itself is a
    /// PlanCache hit beside the batch's layer graph.
    std::uint64_t batch_footprint(const std::string &model, SliceMode mode,
                                  index_t bucket, int planned_batch);
    void dispatch_round(double now_us, std::int64_t round,
                        const Scheduler &scheduler, AdmissionQueue &queue);
    void complete_round(ServeReport &report, TrafficSource &source,
                        TenantLedger &ledger);

    ServeConfig config_;
    sim::DeviceSpec device_;
    /// Serving-loop state, built by begin(). Optional so a Server can be
    /// constructed cheaply before the run starts.
    std::optional<AdmissionQueue> queue_;
    std::optional<TenantLedger> ledger_;
    std::optional<Scheduler> scheduler_;
    ServeReport report_;
    PlanCacheStats cache_before_;
    int rounds_ = 0;
    double busy_accum_us_ = 0;
    bool begun_ = false;
    bool down_ = false;
    /// Plan holders per (model, mode, bucket, planned batch) — the
    /// steady-state working set of the serving loop. The underlying
    /// layer graphs live in the process-wide PlanCache.
    std::map<std::string, std::unique_ptr<TransformerRunner>> runners_;
    /// Memoized batch_footprint results, same key space as runners_.
    std::map<std::string, std::uint64_t> footprints_;
    /// Per-round projected byte watermarks, moved into the report.
    std::vector<std::uint64_t> round_bytes_;
    std::vector<InFlightBatch> in_flight_;
    TraceLog *trace_ = nullptr;
    TelemetryRecorder *telemetry_ = nullptr;
    std::int64_t next_batch_id_ = 0;
    std::int64_t current_round_ = -1;
    double gpu_free_us_ = 0;
    bool gpu_busy_ = false;
    bool ran_ = false;
};

/// One registered serving metric over a finished report — how the CLI
/// table, the bench rows, and the tests enumerate the summary without
/// hand-maintained column lists (same style as phase_metric_registry).
struct ServeMetricDef {
    const char *key;
    const char *unit;
    const char *description;
    double (*get)(const ServeReport &);
};

const std::vector<ServeMetricDef> &serve_metric_registry();

/// Appends the report's bench rows to `run` in the pinned "mgprof.bench"
/// schema: one "serve" summary row (every registry metric), one "slo"
/// row per service class, and one "batch_hist" row per observed batch
/// size. Shared by tools/mgserve and the mgperf "serve_tiny" preset so
/// the CLI artifact and the gated rows are the same bytes.
void append_serve_rows(prof::BenchRun &run, const ServeReport &report);

/// The complete manifest-stamped bench document for one run, named
/// "serve_<preset>@<device_name>" to match the committed baseline files
/// (`device_name` is the CLI name, e.g. "a100").
prof::BenchRun serve_bench_run(const ServeReport &report,
                               const std::string &device_name);

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_SERVER_H_
