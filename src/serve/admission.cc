#include "serve/admission.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain::serve {

AdmissionQueue::AdmissionQueue(const AdmissionConfig &config,
                               std::vector<std::string> tenants)
    : config_(config), tenant_names_(std::move(tenants))
{
    MG_CHECK(config_.queue_capacity > 0) << "queue capacity must be > 0";
    MG_CHECK(config_.max_queue_wait_us >= 0)
        << "max queue wait must be non-negative";
    queues_.resize(tenant_names_.size());
}

std::size_t
AdmissionQueue::tenant_index(const std::string &name)
{
    for (std::size_t i = 0; i < tenant_names_.size(); ++i) {
        if (tenant_names_[i] == name) {
            return i;
        }
    }
    tenant_names_.push_back(name);
    queues_.emplace_back();
    return tenant_names_.size() - 1;
}

void
AdmissionQueue::note_depth()
{
    stats_.max_depth = std::max(stats_.max_depth, depth());
    stats_.max_queued_bytes = std::max(stats_.max_queued_bytes,
                                       queued_bytes_);
}

std::size_t
AdmissionQueue::depth() const
{
    std::size_t total = 0;
    for (const auto &q : queues_) {
        total += q.size();
    }
    return total;
}

bool
AdmissionQueue::offer(Request r, double)
{
    ++stats_.offered;
    if (depth() >= config_.queue_capacity) {
        ++stats_.rejected;
        return false;
    }
    if (config_.hbm_budget_bytes > 0 &&
        queued_bytes_ + r.footprint_bytes > config_.hbm_budget_bytes) {
        ++stats_.rejected;
        ++stats_.shed_memory;
        return false;
    }
    queued_bytes_ += r.footprint_bytes;
    queues_[tenant_index(r.tenant)].push_back(std::move(r));
    ++stats_.admitted;
    note_depth();
    return true;
}

std::vector<Request>
AdmissionQueue::expire(double now_us)
{
    std::vector<Request> expired;
    if (config_.max_queue_wait_us <= 0) {
        return expired;
    }
    for (auto &q : queues_) {
        for (auto it = q.begin(); it != q.end();) {
            if (now_us - it->arrival_us > config_.max_queue_wait_us) {
                queued_bytes_ -= it->footprint_bytes;
                expired.push_back(std::move(*it));
                it = q.erase(it);
                ++stats_.timed_out;
            } else {
                ++it;
            }
        }
    }
    return expired;
}

std::optional<Request>
AdmissionQueue::pop_seed()
{
    std::size_t best = tenant_names_.size();
    double best_deadline = 0;
    // Visit tenants from the cursor so equal deadlines rotate fairly;
    // strict < keeps the first (cursor-closest) head on ties.
    for (std::size_t step = 0; step < queues_.size(); ++step) {
        const std::size_t i = (cursor_ + step) % queues_.size();
        if (queues_[i].empty()) {
            continue;
        }
        const double deadline = queues_[i].front().deadline_us;
        if (best == tenant_names_.size() || deadline < best_deadline) {
            best = i;
            best_deadline = deadline;
        }
    }
    if (best == tenant_names_.size()) {
        return std::nullopt;
    }
    Request r = std::move(queues_[best].front());
    queues_[best].pop_front();
    cursor_ = (best + 1) % queues_.size();
    queued_bytes_ -= r.footprint_bytes;
    ++stats_.dispatched;
    return r;
}

std::vector<Request>
AdmissionQueue::take_matching(
    const std::function<bool(const Request &)> &pred, std::size_t limit)
{
    std::vector<Request> taken;
    if (limit == 0 || queues_.empty()) {
        return taken;
    }
    for (std::size_t step = 0; step < queues_.size() && taken.size() < limit;
         ++step) {
        auto &q = queues_[(cursor_ + step) % queues_.size()];
        for (auto it = q.begin(); it != q.end() && taken.size() < limit;) {
            if (pred(*it)) {
                queued_bytes_ -= it->footprint_bytes;
                taken.push_back(std::move(*it));
                it = q.erase(it);
                ++stats_.dispatched;
            } else {
                ++it;
            }
        }
    }
    return taken;
}

void
AdmissionQueue::push_front(Request r)
{
    // Undo the pop_seed accounting: the request was never really
    // dispatched, it goes back to the head of its tenant FIFO and will
    // seed the next round.
    MG_CHECK(stats_.dispatched > 0)
        << "push_front without a matching pop";
    --stats_.dispatched;
    queued_bytes_ += r.footprint_bytes;
    queues_[tenant_index(r.tenant)].push_front(std::move(r));
}

}  // namespace multigrain::serve
