#include "serve/admission.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain::serve {

TokenBucket::TokenBucket(double rate_rps, double burst)
    : rate_rps_(rate_rps), burst_(burst), tokens_(burst)
{
    MG_CHECK(rate_rps >= 0) << "token-bucket rate must be non-negative";
    MG_CHECK(burst >= 1)
        << "token bucket must hold at least one token of burst";
}

bool
TokenBucket::try_take(double t_us)
{
    if (!limited()) {
        return true;
    }
    MG_CHECK(t_us >= last_us_)
        << "token bucket driven backwards in virtual time";
    tokens_ = std::min(burst_,
                       tokens_ + (t_us - last_us_) * rate_rps_ / 1e6);
    last_us_ = t_us;
    if (tokens_ < 1.0) {
        return false;
    }
    tokens_ -= 1.0;
    return true;
}

AdmissionQueue::AdmissionQueue(const AdmissionConfig &config,
                               const std::vector<TenantSpec> &tenants)
    : config_(config)
{
    MG_CHECK(config_.queue_capacity > 0) << "queue capacity must be > 0";
    MG_CHECK(config_.max_queue_wait_us >= 0)
        << "max queue wait must be non-negative";
    for (const TenantSpec &t : tenants) {
        MG_CHECK(t.weight > 0) << "tenant weight must be positive";
        tenant_names_.push_back(t.name);
        queues_.emplace_back();
        buckets_.push_back(t.rate_rps > 0
                               ? TokenBucket(t.rate_rps, t.burst)
                               : TokenBucket());
        weights_.push_back(t.weight);
        charged_us_.push_back(0.0);
    }
}

std::size_t
AdmissionQueue::tenant_index(const std::string &name)
{
    for (std::size_t i = 0; i < tenant_names_.size(); ++i) {
        if (tenant_names_[i] == name) {
            return i;
        }
    }
    tenant_names_.push_back(name);
    queues_.emplace_back();
    buckets_.emplace_back();  // Unknown tenants are never rate-limited.
    weights_.push_back(1.0);
    charged_us_.push_back(0.0);
    return tenant_names_.size() - 1;
}

void
AdmissionQueue::set_charged(const std::string &tenant, double device_us)
{
    charged_us_[tenant_index(tenant)] = device_us;
}

void
AdmissionQueue::note_depth()
{
    stats_.max_depth = std::max(stats_.max_depth, depth());
    stats_.max_queued_bytes = std::max(stats_.max_queued_bytes,
                                       queued_bytes_);
}

std::size_t
AdmissionQueue::depth() const
{
    std::size_t total = 0;
    for (const auto &q : queues_) {
        total += q.size();
    }
    return total;
}

std::vector<std::size_t>
AdmissionQueue::tenant_depths() const
{
    std::vector<std::size_t> depths;
    depths.reserve(queues_.size());
    for (const auto &q : queues_) {
        depths.push_back(q.size());
    }
    return depths;
}

std::vector<double>
AdmissionQueue::bucket_fills() const
{
    std::vector<double> fills;
    fills.reserve(buckets_.size());
    for (const TokenBucket &b : buckets_) {
        fills.push_back(b.fill());
    }
    return fills;
}

AdmitDecision
AdmissionQueue::admit(Request r, std::size_t tenant)
{
    if (depth() >= config_.queue_capacity) {
        ++stats_.rejected;
        return {false, AdmitDecision::Shed::kCapacity};
    }
    if (config_.hbm_budget_bytes > 0 &&
        queued_bytes_ + r.footprint_bytes > config_.hbm_budget_bytes) {
        ++stats_.rejected;
        ++stats_.shed_memory;
        return {false, AdmitDecision::Shed::kMemory};
    }
    queued_bytes_ += r.footprint_bytes;
    queues_[tenant].push_back(std::move(r));
    ++stats_.admitted;
    note_depth();
    return {true, AdmitDecision::Shed::kNone};
}

AdmitDecision
AdmissionQueue::offer(Request r, double)
{
    ++stats_.offered;
    // The bucket polices the tenant's own rate before the shared valves,
    // on the request's arrival time: arrivals are ingested in
    // non-decreasing arrival order, so the refill clock never rewinds.
    const std::size_t tenant = tenant_index(r.tenant);
    if (!buckets_[tenant].try_take(r.arrival_us)) {
        ++stats_.rejected;
        ++stats_.shed_ratelimit;
        return {false, AdmitDecision::Shed::kRateLimit};
    }
    return admit(std::move(r), tenant);
}

AdmitDecision
AdmissionQueue::reoffer(Request r, double)
{
    // No bucket: the arrival was already rate-policed where it first
    // landed, and its (old) arrival timestamp would rewind this queue's
    // bucket clock. Only the shared valves apply.
    ++stats_.offered;
    const std::size_t tenant = tenant_index(r.tenant);
    return admit(std::move(r), tenant);
}

std::vector<Request>
AdmissionQueue::expire(double now_us)
{
    std::vector<Request> expired;
    if (config_.max_queue_wait_us <= 0) {
        return expired;
    }
    for (auto &q : queues_) {
        for (auto it = q.begin(); it != q.end();) {
            if (now_us - it->arrival_us > config_.max_queue_wait_us) {
                queued_bytes_ -= it->footprint_bytes;
                expired.push_back(std::move(*it));
                it = q.erase(it);
                ++stats_.timed_out;
            } else {
                ++it;
            }
        }
    }
    return expired;
}

std::vector<Request>
AdmissionQueue::drain()
{
    std::vector<Request> drained;
    drained.reserve(depth());
    for (auto &q : queues_) {
        while (!q.empty()) {
            queued_bytes_ -= q.front().footprint_bytes;
            drained.push_back(std::move(q.front()));
            q.pop_front();
            ++stats_.drained;
        }
    }
    return drained;
}

std::optional<Request>
AdmissionQueue::pop_seed()
{
    std::size_t best = tenant_names_.size();
    double best_deadline = 0;
    double best_debt = 0;
    // Visit tenants from the cursor so equal keys rotate fairly; strict
    // < keeps the first (cursor-closest) head on ties. Under WFQ the
    // primary key is the tenant's charged device time per weight (its
    // ledger debt), with EDF breaking debt ties; otherwise pure EDF.
    for (std::size_t step = 0; step < queues_.size(); ++step) {
        const std::size_t i = (cursor_ + step) % queues_.size();
        if (queues_[i].empty()) {
            continue;
        }
        const double deadline = queues_[i].front().deadline_us;
        const double debt = config_.wfq ? charged_us_[i] / weights_[i] : 0;
        if (best == tenant_names_.size() || debt < best_debt ||
            (debt == best_debt && deadline < best_deadline)) {
            best = i;
            best_deadline = deadline;
            best_debt = debt;
        }
    }
    if (best == tenant_names_.size()) {
        return std::nullopt;
    }
    Request r = std::move(queues_[best].front());
    queues_[best].pop_front();
    cursor_ = (best + 1) % queues_.size();
    queued_bytes_ -= r.footprint_bytes;
    ++stats_.dispatched;
    return r;
}

std::vector<Request>
AdmissionQueue::take_matching(
    const std::function<bool(const Request &)> &pred, std::size_t limit)
{
    std::vector<Request> taken;
    if (limit == 0 || queues_.empty()) {
        return taken;
    }
    for (std::size_t step = 0; step < queues_.size() && taken.size() < limit;
         ++step) {
        auto &q = queues_[(cursor_ + step) % queues_.size()];
        for (auto it = q.begin(); it != q.end() && taken.size() < limit;) {
            if (pred(*it)) {
                queued_bytes_ -= it->footprint_bytes;
                taken.push_back(std::move(*it));
                it = q.erase(it);
                ++stats_.dispatched;
            } else {
                ++it;
            }
        }
    }
    return taken;
}

void
AdmissionQueue::push_front(Request r)
{
    // Undo the pop_seed accounting: the request was never really
    // dispatched, it goes back to the head of its tenant FIFO and will
    // seed the next round.
    MG_CHECK(stats_.dispatched > 0)
        << "push_front without a matching pop";
    --stats_.dispatched;
    queued_bytes_ += r.footprint_bytes;
    queues_[tenant_index(r.tenant)].push_front(std::move(r));
}

}  // namespace multigrain::serve
