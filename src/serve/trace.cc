#include "serve/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "gpusim/trace.h"
#include "profiler/export.h"
#include "profiler/history.h"
#include "serve/cost.h"

namespace multigrain::serve {

// ---- Event names --------------------------------------------------------

const char *
to_string(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::kArrive:
        return "arrive";
      case TraceEventKind::kAdmit:
        return "admit";
      case TraceEventKind::kShed:
        return "shed";
      case TraceEventKind::kShedRateLimit:
        return "shed_ratelimit";
      case TraceEventKind::kAgeOut:
        return "age_out";
      case TraceEventKind::kBatchForm:
        return "batch_form";
      case TraceEventKind::kRoundDispatch:
        return "round_dispatch";
      case TraceEventKind::kBatchDone:
        return "batch_done";
      case TraceEventKind::kComplete:
        return "complete";
      case TraceEventKind::kRoundDone:
        return "round_done";
    }
    return "?";
}

TraceEventKind
trace_event_kind_by_name(const std::string &name)
{
    static const TraceEventKind kinds[] = {
        TraceEventKind::kArrive,        TraceEventKind::kAdmit,
        TraceEventKind::kShed,          TraceEventKind::kShedRateLimit,
        TraceEventKind::kAgeOut,        TraceEventKind::kBatchForm,
        TraceEventKind::kRoundDispatch, TraceEventKind::kBatchDone,
        TraceEventKind::kComplete,      TraceEventKind::kRoundDone,
    };
    for (const TraceEventKind kind : kinds) {
        if (name == to_string(kind)) {
            return kind;
        }
    }
    throw Error("unknown trace event kind \"" + name + "\"");
}

// ---- Event serialization ------------------------------------------------

namespace {

/// Emits one event object. Field presence is a deterministic function
/// of the kind, so same-seed logs are byte-identical; +inf deadlines
/// (classes without a budget) are represented by omitting the field.
void
write_event(JsonWriter &w, const TraceEvent &e)
{
    w.begin_object();
    w.field("seq", static_cast<std::int64_t>(e.seq));
    w.field("kind", to_string(e.kind));
    w.field("t_us", e.t_us);
    switch (e.kind) {
      case TraceEventKind::kArrive:
        w.field("request", e.request);
        w.field("tenant", e.tenant);
        w.field("model", e.model);
        w.field("slo", e.slo);
        w.field("valid_len", static_cast<std::int64_t>(e.valid_len));
        if (std::isfinite(e.deadline_us)) {
            w.field("deadline_us", e.deadline_us);
        }
        break;
      case TraceEventKind::kAdmit:
      case TraceEventKind::kShed:
      case TraceEventKind::kShedRateLimit:
      case TraceEventKind::kAgeOut:
        w.field("request", e.request);
        break;
      case TraceEventKind::kBatchForm:
        w.field("request", e.request);
        w.field("batch", e.batch);
        w.field("round", e.round);
        w.field("model", e.model);
        w.field("bucket", static_cast<std::int64_t>(e.bucket));
        w.field("planned_batch", e.planned_batch);
        w.field("actual_batch", e.actual_batch);
        break;
      case TraceEventKind::kRoundDispatch:
        w.field("round", e.round);
        w.field("actual_batch", e.actual_batch);
        w.field("hbm_bytes", static_cast<std::int64_t>(e.hbm_bytes));
        break;
      case TraceEventKind::kBatchDone:
        w.field("batch", e.batch);
        w.field("round", e.round);
        break;
      case TraceEventKind::kComplete:
        w.field("request", e.request);
        w.field("batch", e.batch);
        w.field("round", e.round);
        w.field("flag", e.flag);
        break;
      case TraceEventKind::kRoundDone:
        w.field("round", e.round);
        break;
    }
    w.end_object();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string
event_to_json(const TraceEvent &event)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        write_event(w, event);
    }
    return os.str();
}

TraceEvent
event_from_json(const JsonValue &doc)
{
    MG_CHECK(doc.is_object()) << "trace event must be a JSON object";
    TraceEvent e;
    e.seq = static_cast<std::uint64_t>(doc.at("seq").as_number());
    e.kind = trace_event_kind_by_name(doc.at("kind").as_string());
    e.t_us = doc.at("t_us").as_number();
    const auto number = [&doc](const char *k, double fallback) {
        const JsonValue *v = doc.find(k);
        return v != nullptr ? v->as_number() : fallback;
    };
    e.request = static_cast<std::int64_t>(number("request", -1));
    e.batch = static_cast<std::int64_t>(number("batch", -1));
    e.round = static_cast<std::int64_t>(number("round", -1));
    if (const JsonValue *v = doc.find("tenant")) {
        e.tenant = v->as_string();
    }
    if (const JsonValue *v = doc.find("model")) {
        e.model = v->as_string();
    }
    e.slo = static_cast<int>(number("slo", -1));
    e.valid_len = static_cast<index_t>(number("valid_len", 0));
    e.deadline_us = e.kind == TraceEventKind::kArrive
                        ? number("deadline_us", kInf)
                        : number("deadline_us", 0);
    e.bucket = static_cast<index_t>(number("bucket", 0));
    e.planned_batch = static_cast<int>(number("planned_batch", 0));
    e.actual_batch = static_cast<int>(number("actual_batch", 0));
    e.hbm_bytes = static_cast<std::uint64_t>(number("hbm_bytes", 0));
    if (const JsonValue *v = doc.find("flag")) {
        e.flag = v->as_bool();
    }
    return e;
}

void
write_events_jsonl(const std::vector<TraceEvent> &events, std::ostream &os)
{
    for (const TraceEvent &e : events) {
        os << event_to_json(e) << "\n";
    }
}

std::vector<TraceEvent>
events_from_jsonl(const std::string &text)
{
    std::vector<TraceEvent> events;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) {
            continue;
        }
        events.push_back(event_from_json(json_parse(line)));
    }
    return events;
}

// ---- TraceLog + flight recorder -----------------------------------------

TraceLog::TraceLog(TraceConfig config) : config_(config)
{
    MG_CHECK(config_.ring_rounds > 0)
        << "flight recorder needs at least one round of window";
}

void
TraceLog::record(TraceEvent event)
{
    event.seq = next_seq_++;
    if (config_.retain_full) {
        events_.push_back(event);
    }
    ring_.push_back(event);
    if (event.kind == TraceEventKind::kRoundDispatch) {
        round_start_seqs_.push_back(event.seq);
        if (round_start_seqs_.size() > config_.ring_rounds) {
            // The ring keeps the last ring_rounds rounds: drop the
            // oldest retained round and every event before the new
            // oldest round's dispatch.
            round_start_seqs_.pop_front();
            while (!ring_.empty() &&
                   ring_.front().seq < round_start_seqs_.front()) {
                ring_.pop_front();
            }
        }
    }
    detect(ring_.back());
}

void
TraceLog::record_round_sim(std::int64_t round, double dispatch_us,
                           const sim::SimResult &result)
{
    if (!config_.capture_sim) {
        return;
    }
    RoundSim rs;
    rs.round = round;
    rs.dispatch_us = dispatch_us;
    rs.result = result;
    round_sims_.push_back(std::move(rs));
}

void
TraceLog::detect(const TraceEvent &event)
{
    switch (event.kind) {
      case TraceEventKind::kAdmit:
        ratelimit_run_ = 0;
        break;
      case TraceEventKind::kShedRateLimit: {
        ++ratelimit_run_;
        if (config_.ratelimit_streak > 0 &&
            ratelimit_run_ >= config_.ratelimit_streak) {
            std::ostringstream os;
            os << ratelimit_run_
               << " consecutive token-bucket sheds";
            fire("ratelimit_burst", event.t_us, os.str());
            ratelimit_run_ = 0;
        }
        break;
      }
      case TraceEventKind::kShed: {
        ratelimit_run_ = 0;
        recent_shed_us_.push_back(event.t_us);
        while (!recent_shed_us_.empty() &&
               recent_shed_us_.front() <
                   event.t_us - config_.shed_window_us) {
            recent_shed_us_.pop_front();
        }
        if (config_.shed_burst > 0 &&
            recent_shed_us_.size() >=
                static_cast<std::size_t>(config_.shed_burst)) {
            std::ostringstream os;
            os << recent_shed_us_.size() << " sheds within "
               << config_.shed_window_us << " us";
            fire("shed_burst", event.t_us, os.str());
            recent_shed_us_.clear();  // Re-arm from an empty window.
        }
        break;
      }
      case TraceEventKind::kComplete: {
        if (event.flag) {
            miss_run_ = 0;
            break;
        }
        ++miss_run_;
        if (config_.miss_streak > 0 && miss_run_ >= config_.miss_streak) {
            std::ostringstream os;
            os << miss_run_ << " consecutive deadline misses";
            fire("deadline_miss_streak", event.t_us, os.str());
            miss_run_ = 0;
        }
        break;
      }
      case TraceEventKind::kRoundDispatch: {
        if (config_.stall_us > 0 && last_round_done_us_ >= 0 &&
            event.t_us - last_round_done_us_ > config_.stall_us) {
            std::ostringstream os;
            os << "device idle " << event.t_us - last_round_done_us_
               << " us between rounds";
            fire("empty_round_stall", event.t_us, os.str());
        }
        break;
      }
      case TraceEventKind::kRoundDone:
        last_round_done_us_ = event.t_us;
        break;
      default:
        break;
    }
}

void
TraceLog::fire(const char *trigger, double t_us, std::string detail)
{
    Incident inc;
    inc.trigger = trigger;
    inc.t_us = t_us;
    inc.detail = std::move(detail);
    MG_CHECK(!ring_.empty()) << "anomaly fired on an empty ring";
    inc.first_seq = ring_.front().seq;
    inc.last_seq = ring_.back().seq;
    inc.events.assign(ring_.begin(), ring_.end());
    incidents_.push_back(std::move(inc));
}

// ---- Incident serialization ---------------------------------------------

std::string
incident_to_json(const Incident &incident, const TraceRunInfo &info,
                 const TraceConfig &config)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("schema", prof::kServeIncidentSchema);
        w.field("schema_version", prof::kServeIncidentVersion);
        w.field("preset", info.preset);
        w.field("device", info.device);
        w.field("seed", static_cast<std::int64_t>(info.seed));
        w.field("trigger", incident.trigger);
        w.field("t_us", incident.t_us);
        w.field("detail", incident.detail);
        w.field("first_seq", static_cast<std::int64_t>(incident.first_seq));
        w.field("last_seq", static_cast<std::int64_t>(incident.last_seq));
        w.key("thresholds");
        w.begin_object();
        w.field("ring_rounds", static_cast<std::int64_t>(config.ring_rounds));
        w.field("shed_burst", config.shed_burst);
        w.field("shed_window_us", config.shed_window_us);
        w.field("miss_streak", config.miss_streak);
        w.field("stall_us", config.stall_us);
        w.field("ratelimit_streak", config.ratelimit_streak);
        w.end_object();
        w.key("events");
        w.begin_array();
        for (const TraceEvent &e : incident.events) {
            write_event(w, e);
        }
        w.end_array();
        w.end_object();
    }
    return os.str();
}

Incident
incident_from_json(const JsonValue &doc)
{
    MG_CHECK(doc.is_object()) << "incident must be a JSON object";
    MG_CHECK(doc.at("schema").as_string() == prof::kServeIncidentSchema)
        << "not an mgtrace.incident document";
    MG_CHECK(static_cast<int>(doc.at("schema_version").as_number()) ==
             prof::kServeIncidentVersion)
        << "unsupported incident schema version";
    Incident inc;
    inc.trigger = doc.at("trigger").as_string();
    inc.t_us = doc.at("t_us").as_number();
    inc.detail = doc.at("detail").as_string();
    inc.first_seq =
        static_cast<std::uint64_t>(doc.at("first_seq").as_number());
    inc.last_seq =
        static_cast<std::uint64_t>(doc.at("last_seq").as_number());
    const JsonValue &events = doc.at("events");
    MG_CHECK(events.is_array()) << "incident events must be an array";
    inc.events.reserve(events.array.size());
    for (const JsonValue &e : events.array) {
        inc.events.push_back(event_from_json(e));
    }
    return inc;
}

Incident
incident_from_json(const std::string &text)
{
    return incident_from_json(json_parse(text));
}

// ---- Spans --------------------------------------------------------------

std::vector<RequestSpans>
spans_from_events(const std::vector<TraceEvent> &events)
{
    // Keyed by request id so the result is sorted and deterministic
    // regardless of completion interleaving.
    std::map<std::int64_t, RequestSpans> by_request;
    struct BatchInfo {
        double useful_tokens = 0;
        std::vector<std::int64_t> members;
    };
    std::map<std::int64_t, BatchInfo> batches;
    std::map<std::int64_t, std::vector<std::int64_t>> round_members;

    for (const TraceEvent &e : events) {
        switch (e.kind) {
          case TraceEventKind::kArrive: {
            RequestSpans s;
            s.request = e.request;
            s.tenant = e.tenant;
            s.model = e.model;
            s.slo = e.slo;
            s.valid_len = e.valid_len;
            s.arrive_us = s.admit_us = s.batched_us = s.dispatched_us =
                s.finish_us = e.t_us;
            by_request[e.request] = std::move(s);
            break;
          }
          case TraceEventKind::kAdmit: {
            const auto it = by_request.find(e.request);
            if (it == by_request.end()) {
                break;  // Arrival outside this window.
            }
            it->second.admit_us = it->second.batched_us =
                it->second.dispatched_us = it->second.finish_us = e.t_us;
            break;
          }
          case TraceEventKind::kShed:
          case TraceEventKind::kShedRateLimit: {
            const auto it = by_request.find(e.request);
            if (it == by_request.end()) {
                break;
            }
            RequestSpans &s = it->second;
            s.outcome = e.kind == TraceEventKind::kShed ? "shed"
                                                        : "rate_limited";
            s.deadline_met = false;
            s.admit_us = s.batched_us = s.dispatched_us = s.finish_us =
                e.t_us;
            break;
          }
          case TraceEventKind::kAgeOut: {
            const auto it = by_request.find(e.request);
            if (it == by_request.end()) {
                break;
            }
            RequestSpans &s = it->second;
            s.outcome = "aged_out";
            s.deadline_met = false;
            s.batched_us = s.dispatched_us = s.finish_us = e.t_us;
            break;
          }
          case TraceEventKind::kBatchForm: {
            const auto it = by_request.find(e.request);
            if (it == by_request.end()) {
                break;
            }
            RequestSpans &s = it->second;
            s.batch = e.batch;
            s.round = e.round;
            s.bucket = e.bucket;
            s.planned_batch = e.planned_batch;
            s.actual_batch = e.actual_batch;
            s.batched_us = s.dispatched_us = s.finish_us = e.t_us;
            BatchInfo &b = batches[e.batch];
            b.useful_tokens += static_cast<double>(s.valid_len);
            b.members.push_back(e.request);
            round_members[e.round].push_back(e.request);
            break;
          }
          case TraceEventKind::kRoundDispatch: {
            // Batch formation and dispatch coincide today; keep the
            // boundary honest anyway so a future scheduler that forms
            // batches ahead of dispatch reports batch-wait > 0.
            const auto it = round_members.find(e.round);
            if (it == round_members.end()) {
                break;
            }
            for (const std::int64_t request : it->second) {
                RequestSpans &s = by_request.at(request);
                s.dispatched_us = s.finish_us = e.t_us;
            }
            break;
          }
          case TraceEventKind::kComplete: {
            const auto it = by_request.find(e.request);
            if (it == by_request.end()) {
                break;
            }
            RequestSpans &s = it->second;
            MG_CHECK(s.batch >= 0)
                << "completion for request " << e.request
                << " that was never batched";
            s.outcome = "completed";
            s.deadline_met = e.flag;
            s.finish_us = e.t_us;
            break;
          }
          case TraceEventKind::kBatchDone:
          case TraceEventKind::kRoundDone:
            break;
        }
    }

    std::vector<RequestSpans> spans;
    spans.reserve(by_request.size());
    for (auto &[id, s] : by_request) {
        if (s.outcome.empty()) {
            continue;  // Still in flight at the end of the window.
        }
        if (s.outcome == "completed") {
            // Padding share of the batch's device time: the plan ran
            // planned_batch × bucket tokens, the members brought
            // useful_tokens of real work.
            const double planned_tokens =
                static_cast<double>(s.planned_batch) *
                static_cast<double>(s.bucket);
            if (planned_tokens > 0) {
                const BatchInfo &b = batches.at(s.batch);
                const double frac =
                    1.0 - b.useful_tokens / planned_tokens;
                s.pad_us = s.device_us() * std::max(0.0, frac);
            }
        }
        spans.push_back(std::move(s));
    }
    return spans;
}

std::vector<RequestSpans>
spans_from_events(const std::deque<TraceEvent> &events)
{
    return spans_from_events(
        std::vector<TraceEvent>(events.begin(), events.end()));
}

// ---- SLO attribution + reconciliation -----------------------------------

namespace {

/// Interpolated percentile breakdown over completed spans sorted by
/// (latency, request id) — the same closest-ranks formula as
/// prof::percentile, applied to every component between the same two
/// ranked requests, so the component interpolations sum to the latency
/// interpolation and the total reconciles with the ServeReport figure.
SpanBreakdown
breakdown_at(const std::vector<const RequestSpans *> &sorted, double p)
{
    SpanBreakdown b;
    if (sorted.empty()) {
        return b;
    }
    const std::size_t n = sorted.size();
    const double rank = p / 100.0 * static_cast<double>(n - 1);
    const std::size_t lo =
        std::min(static_cast<std::size_t>(std::floor(rank)), n - 1);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    const auto interp = [&](double lo_v, double hi_v) {
        return lo_v + (hi_v - lo_v) * frac;
    };
    const RequestSpans &a = *sorted[lo];
    const RequestSpans &z = *sorted[hi];
    b.total_us = interp(a.latency_us(), z.latency_us());
    b.admission_us = interp(a.admission_us(), z.admission_us());
    b.queue_us = interp(a.queue_us(), z.queue_us());
    b.batch_wait_us = interp(a.batch_wait_us(), z.batch_wait_us());
    b.pad_us = interp(a.pad_us, z.pad_us);
    b.device_us = interp(a.compute_us(), z.compute_us());
    return b;
}

SpanBreakdown
breakdown_mean(const std::vector<const RequestSpans *> &spans)
{
    SpanBreakdown b;
    if (spans.empty()) {
        return b;
    }
    for (const RequestSpans *s : spans) {
        b.total_us += s->latency_us();
        b.admission_us += s->admission_us();
        b.queue_us += s->queue_us();
        b.batch_wait_us += s->batch_wait_us();
        b.pad_us += s->pad_us;
        b.device_us += s->compute_us();
    }
    const double n = static_cast<double>(spans.size());
    b.total_us /= n;
    b.admission_us /= n;
    b.queue_us /= n;
    b.batch_wait_us /= n;
    b.pad_us /= n;
    b.device_us /= n;
    return b;
}

bool
close_rel(double a, double b)
{
    return std::abs(a - b) <=
           kReconcileRelTol * std::max({1.0, std::abs(a), std::abs(b)});
}

void
write_breakdown(JsonWriter &w, const char *key, const SpanBreakdown &b)
{
    w.key(key);
    w.begin_object();
    w.field("total_us", b.total_us);
    w.field("admission_us", b.admission_us);
    w.field("queue_us", b.queue_us);
    w.field("batch_wait_us", b.batch_wait_us);
    w.field("pad_us", b.pad_us);
    w.field("device_us", b.device_us);
    w.end_object();
}

}  // namespace

TraceReport
build_trace_report(const TraceLog &log, const ServeReport &report,
                   const TraceRunInfo &info)
{
    TraceReport tr;
    tr.info = info;
    tr.events = log.events().size();
    tr.incidents = log.incidents();
    std::vector<std::string> &errors = tr.reconcile_errors;
    const auto check = [&errors](bool ok, const std::string &msg) {
        if (!ok) {
            errors.push_back(msg);
        }
    };
    const auto mismatch = [](const std::string &what, double got,
                             double want) {
        std::ostringstream os;
        os << what << ": trace says " << got << ", ServeReport says "
           << want;
        return os.str();
    };

    const std::vector<RequestSpans> spans =
        spans_from_events(log.events());
    tr.requests = spans.size();

    std::vector<const RequestSpans *> completed[kNumSloClasses];
    std::vector<const RequestSpans *> all_completed;
    double first_arrival = kInf;
    double last_finish = -kInf;
    for (const RequestSpans &s : spans) {
        // Boundary chaining: consecutive timestamps, so the components
        // telescope to the latency exactly. A violation means the
        // instrumentation emitted out-of-order times.
        check(s.arrive_us <= s.admit_us && s.admit_us <= s.batched_us &&
                  s.batched_us <= s.dispatched_us &&
                  s.dispatched_us <= s.finish_us,
              "request " + std::to_string(s.request) +
                  ": span boundaries not monotone");
        check(s.pad_us >= 0 && s.pad_us <= s.device_us(),
              "request " + std::to_string(s.request) +
                  ": pad outside device span");
        const double sum = s.admission_us() + s.queue_us() +
                           s.batch_wait_us() + s.pad_us + s.compute_us();
        check(close_rel(sum, s.latency_us()),
              mismatch("request " + std::to_string(s.request) +
                           " component sum",
                       sum, s.latency_us()));
        if (s.outcome == "shed") {
            ++tr.shed;
        } else if (s.outcome == "rate_limited") {
            ++tr.rate_limited;
        } else if (s.outcome == "aged_out") {
            ++tr.aged_out;
        } else {
            ++tr.completed;
            if (!s.deadline_met) {
                ++tr.deadline_miss;
            }
            MG_CHECK(s.slo >= 0 && s.slo < kNumSloClasses)
                << "span with unknown SLO class " << s.slo;
            completed[s.slo].push_back(&s);
            all_completed.push_back(&s);
            first_arrival = std::min(first_arrival, s.arrive_us);
            last_finish = std::max(last_finish, s.finish_us);
        }
    }
    tr.rounds = report.rounds;

    // ---- Counters must reconcile exactly (they are integers) ----------
    check(tr.requests == report.admission.offered,
          mismatch("offered requests", static_cast<double>(tr.requests),
                   static_cast<double>(report.admission.offered)));
    check(tr.shed + tr.rate_limited == report.admission.rejected,
          mismatch("shed requests",
                   static_cast<double>(tr.shed + tr.rate_limited),
                   static_cast<double>(report.admission.rejected)));
    check(tr.rate_limited == report.admission.shed_ratelimit,
          mismatch("rate-limited requests",
                   static_cast<double>(tr.rate_limited),
                   static_cast<double>(report.admission.shed_ratelimit)));
    check(tr.aged_out == report.admission.timed_out,
          mismatch("aged-out requests", static_cast<double>(tr.aged_out),
                   static_cast<double>(report.admission.timed_out)));
    check(tr.completed == report.completed,
          mismatch("completed requests",
                   static_cast<double>(tr.completed),
                   static_cast<double>(report.completed)));
    check(tr.deadline_miss == report.deadline_miss,
          mismatch("deadline misses",
                   static_cast<double>(tr.deadline_miss),
                   static_cast<double>(report.deadline_miss)));

    // ---- Latency figures within tolerance -----------------------------
    const auto sort_by_latency =
        [](std::vector<const RequestSpans *> &v) {
            std::sort(v.begin(), v.end(),
                      [](const RequestSpans *a, const RequestSpans *b) {
                          if (a->latency_us() != b->latency_us()) {
                              return a->latency_us() < b->latency_us();
                          }
                          return a->request < b->request;
                      });
        };
    sort_by_latency(all_completed);
    const SpanBreakdown all_p50 = breakdown_at(all_completed, 50);
    const SpanBreakdown all_p95 = breakdown_at(all_completed, 95);
    const SpanBreakdown all_p99 = breakdown_at(all_completed, 99);
    check(close_rel(all_p50.total_us, report.latency.p50),
          mismatch("p50", all_p50.total_us, report.latency.p50));
    check(close_rel(all_p95.total_us, report.latency.p95),
          mismatch("p95", all_p95.total_us, report.latency.p95));
    check(close_rel(all_p99.total_us, report.latency.p99),
          mismatch("p99", all_p99.total_us, report.latency.p99));
    if (tr.completed > 0) {
        check(close_rel(last_finish - first_arrival, report.makespan_us),
              mismatch("makespan", last_finish - first_arrival,
                       report.makespan_us));
    }

    for (int c = 0; c < kNumSloClasses; ++c) {
        ClassAttribution &attr = tr.classes[c];
        attr.slo = c;
        attr.count = completed[c].size();
        sort_by_latency(completed[c]);
        attr.mean = breakdown_mean(completed[c]);
        attr.p50 = breakdown_at(completed[c], 50);
        attr.p95 = breakdown_at(completed[c], 95);
        attr.p99 = breakdown_at(completed[c], 99);

        const prof::LatencySummary &want = report.latency_by_class[c];
        const std::string cls =
            std::string(to_string(static_cast<SloClass>(c)));
        check(attr.count == want.count,
              mismatch(cls + " count", static_cast<double>(attr.count),
                       static_cast<double>(want.count)));
        check(close_rel(attr.mean.total_us, want.mean),
              mismatch(cls + " mean", attr.mean.total_us, want.mean));
        check(close_rel(attr.p50.total_us, want.p50),
              mismatch(cls + " p50", attr.p50.total_us, want.p50));
        check(close_rel(attr.p95.total_us, want.p95),
              mismatch(cls + " p95", attr.p95.total_us, want.p95));
        check(close_rel(attr.p99.total_us, want.p99),
              mismatch(cls + " p99", attr.p99.total_us, want.p99));
    }
    return tr;
}

std::string
trace_report_json(const TraceReport &report)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("schema", prof::kServeTraceReportSchema);
        w.field("schema_version", prof::kServeTraceReportVersion);
        w.key("manifest");
        prof::RunManifest manifest =
            prof::RunManifest::collect(report.info.device);
        prof::write_manifest(w, manifest);
        w.field("preset", report.info.preset);
        w.field("device", report.info.device);
        w.field("seed", static_cast<std::int64_t>(report.info.seed));
        w.field("events", static_cast<std::int64_t>(report.events));
        w.field("requests", static_cast<std::int64_t>(report.requests));
        w.field("completed", static_cast<std::int64_t>(report.completed));
        w.field("shed", static_cast<std::int64_t>(report.shed));
        w.field("rate_limited",
                static_cast<std::int64_t>(report.rate_limited));
        w.field("aged_out", static_cast<std::int64_t>(report.aged_out));
        w.field("deadline_miss",
                static_cast<std::int64_t>(report.deadline_miss));
        w.field("rounds", report.rounds);
        w.field("reconciled", report.reconciled());
        w.key("reconcile_errors");
        w.begin_array();
        for (const std::string &e : report.reconcile_errors) {
            w.value(e);
        }
        w.end_array();
        w.key("classes");
        w.begin_array();
        for (const ClassAttribution &attr : report.classes) {
            w.begin_object();
            w.field("class",
                    to_string(static_cast<SloClass>(attr.slo)));
            w.field("count", static_cast<std::int64_t>(attr.count));
            write_breakdown(w, "mean", attr.mean);
            write_breakdown(w, "p50", attr.p50);
            write_breakdown(w, "p95", attr.p95);
            write_breakdown(w, "p99", attr.p99);
            w.end_object();
        }
        w.end_array();
        w.key("incidents");
        w.begin_array();
        for (const Incident &inc : report.incidents) {
            w.begin_object();
            w.field("trigger", inc.trigger);
            w.field("t_us", inc.t_us);
            w.field("detail", inc.detail);
            w.field("first_seq", static_cast<std::int64_t>(inc.first_seq));
            w.field("last_seq", static_cast<std::int64_t>(inc.last_seq));
            w.field("events",
                    static_cast<std::int64_t>(inc.events.size()));
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    return os.str();
}

// ---- Perfetto export ----------------------------------------------------

namespace {

constexpr int kServePid = 0;
constexpr int kDevicePid = 1;
constexpr int kRoundLane = 5;
constexpr int kBatchLaneBase = 10;

/// Where one replica's tracks land in the shared timeline: its serving
/// lanes under `serve_pid`, its gpusim replays under `device_pid`, and
/// every track name / async category prefixed with `prefix` ("" for the
/// single-server export — which keeps it byte-identical to the
/// pre-fleet output).
struct TrackIds {
    int serve_pid = kServePid;
    int device_pid = kDevicePid;
    std::string prefix;
};

void
meta_name(JsonWriter &w, int pid, int tid, const char *what,
          const std::string &name)
{
    w.begin_object();
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.field("name", what);
    w.key("args");
    w.begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
}

void
async_event(JsonWriter &w, const TrackIds &ids, const char *ph,
            std::int64_t id, const std::string &name, double ts)
{
    w.begin_object();
    w.field("ph", ph);
    w.field("pid", ids.serve_pid);
    w.field("tid", 0);
    w.field("cat", ids.prefix + "request");
    w.field("id", id);
    w.field("name", name);
    w.field("ts", ts);
    w.end_object();
}

void
counter_event(JsonWriter &w, const TrackIds &ids, const std::string &name,
              double ts, double value)
{
    w.begin_object();
    w.field("ph", "C");
    w.field("pid", ids.serve_pid);
    w.field("tid", 0);
    w.field("name", ids.prefix + name);
    w.field("ts", ts);
    w.key("args");
    w.begin_object();
    w.field("value", value);
    w.end_object();
    w.end_object();
}

/// Emits one replica's complete track set into an open traceEvents
/// array — the whole single-server export body, parameterized by where
/// the tracks land.
void
append_serve_tracks(JsonWriter &w, const TraceLog &log,
                    const ServeTraceOptions &options, const TrackIds &ids)
{
    const std::vector<TraceEvent> &events = log.events();
    const std::vector<RequestSpans> spans = spans_from_events(events);

    meta_name(w, ids.serve_pid, 0, "process_name",
              ids.prefix + "serving");
    meta_name(w, ids.serve_pid, kRoundLane, "thread_name", "rounds");

    // ---- Async request spans: one track per request, nested phases ----
    for (const RequestSpans &s : spans) {
        std::ostringstream name;
        name << "req " << s.request << " (" << s.tenant << "/"
             << to_string(static_cast<SloClass>(
                    std::max(0, std::min(s.slo, kNumSloClasses - 1))))
             << ")";
        w.begin_object();
        w.field("ph", "b");
        w.field("pid", ids.serve_pid);
        w.field("tid", 0);
        w.field("cat", ids.prefix + "request");
        w.field("id", s.request);
        w.field("name", name.str());
        w.field("ts", s.arrive_us);
        w.key("args");
        w.begin_object();
        w.field("tenant", s.tenant);
        w.field("model", s.model);
        w.field("outcome", s.outcome);
        w.field("valid_len", static_cast<std::int64_t>(s.valid_len));
        w.field("bucket", static_cast<std::int64_t>(s.bucket));
        w.field("batch", s.batch);
        w.field("round", s.round);
        w.field("deadline_met", s.deadline_met);
        w.field("queue_us", s.queue_us());
        w.field("pad_us", s.pad_us);
        w.field("device_us", s.device_us());
        w.end_object();
        w.end_object();
        if (s.outcome == "completed") {
            async_event(w, ids, "b", s.request, "queue", s.admit_us);
            async_event(w, ids, "e", s.request, "queue", s.dispatched_us);
            async_event(w, ids, "b", s.request, "device", s.dispatched_us);
            async_event(w, ids, "e", s.request, "device", s.finish_us);
        }
        async_event(w, ids, "e", s.request, name.str(), s.finish_us);
    }

    // ---- Batch + round lanes ------------------------------------------
    struct BatchLane {
        int slot = 0;
        std::int64_t round = -1;
        double dispatch_us = 0;
        std::string model;
        index_t bucket = 0;
        int planned = 0;
        int actual = 0;
    };
    std::map<std::int64_t, BatchLane> batch_lanes;
    std::map<std::int64_t, int> round_batches;  ///< round -> slots used.
    std::map<std::int64_t, double> round_dispatch_us;
    int max_slot = -1;
    for (const TraceEvent &e : events) {
        if (e.kind == TraceEventKind::kBatchForm) {
            if (batch_lanes.count(e.batch) == 0) {
                BatchLane lane;
                lane.slot = round_batches[e.round]++;
                lane.round = e.round;
                lane.dispatch_us = e.t_us;
                lane.model = e.model;
                lane.bucket = e.bucket;
                lane.planned = e.planned_batch;
                lane.actual = e.actual_batch;
                max_slot = std::max(max_slot, lane.slot);
                batch_lanes.emplace(e.batch, std::move(lane));
            }
        } else if (e.kind == TraceEventKind::kRoundDispatch) {
            round_dispatch_us[e.round] = e.t_us;
        } else if (e.kind == TraceEventKind::kBatchDone) {
            const auto it = batch_lanes.find(e.batch);
            if (it == batch_lanes.end()) {
                continue;
            }
            const BatchLane &lane = it->second;
            w.begin_object();
            w.field("ph", "X");
            w.field("pid", ids.serve_pid);
            w.field("tid", kBatchLaneBase + lane.slot);
            std::ostringstream name;
            name << "B" << e.batch << " " << lane.model << " b"
                 << lane.bucket << " x" << lane.planned;
            w.field("name", name.str());
            w.field("ts", lane.dispatch_us);
            w.field("dur", e.t_us - lane.dispatch_us);
            w.key("args");
            w.begin_object();
            w.field("round", lane.round);
            w.field("actual_batch", lane.actual);
            w.field("planned_batch", lane.planned);
            w.end_object();
            w.end_object();
        } else if (e.kind == TraceEventKind::kRoundDone) {
            const auto it = round_dispatch_us.find(e.round);
            if (it == round_dispatch_us.end()) {
                continue;
            }
            w.begin_object();
            w.field("ph", "X");
            w.field("pid", ids.serve_pid);
            w.field("tid", kRoundLane);
            w.field("name", "round " + std::to_string(e.round));
            w.field("ts", it->second);
            w.field("dur", e.t_us - it->second);
            w.end_object();
        }
    }
    for (int slot = 0; slot <= max_slot; ++slot) {
        meta_name(w, ids.serve_pid, kBatchLaneBase + slot, "thread_name",
                  "batch slot " + std::to_string(slot));
    }

    // ---- Serving counter tracks ---------------------------------------
    if (options.counters) {
        double queue_depth = 0;
        double in_flight = 0;
        double sheds = 0;
        double ratelimit_sheds = 0;
        for (const TraceEvent &e : events) {
            switch (e.kind) {
              case TraceEventKind::kAdmit:
                counter_event(w, ids, "queue_depth", e.t_us,
                              ++queue_depth);
                break;
              case TraceEventKind::kAgeOut:
                counter_event(w, ids, "queue_depth", e.t_us,
                              --queue_depth);
                break;
              case TraceEventKind::kBatchForm:
                counter_event(w, ids, "queue_depth", e.t_us,
                              --queue_depth);
                counter_event(w, ids, "in_flight", e.t_us, ++in_flight);
                break;
              case TraceEventKind::kComplete:
                counter_event(w, ids, "in_flight", e.t_us, --in_flight);
                break;
              case TraceEventKind::kShed:
                counter_event(w, ids, "sheds", e.t_us, ++sheds);
                break;
              case TraceEventKind::kShedRateLimit:
                counter_event(w, ids, "sheds", e.t_us, ++sheds);
                counter_event(w, ids, "ratelimit_sheds", e.t_us,
                              ++ratelimit_sheds);
                break;
              default:
                break;
            }
        }
    }

    // ---- mgcost time-series counter tracks ----------------------------
    // Fixed-interval samples from the TelemetryRecorder, prefixed
    // "tele." so they sit beside — not inside — the event-edge counters
    // above (the events fire at state changes, the samples on a grid).
    if (options.telemetry != nullptr) {
        const TelemetryRecorder &tele = *options.telemetry;
        const std::vector<std::string> &tenants = tele.tenants();
        for (const TelemetrySample &s : tele.samples()) {
            counter_event(w, ids, "tele.in_flight", s.t_us,
                          static_cast<double>(s.in_flight));
            counter_event(w, ids, "tele.round_hbm_bytes", s.t_us,
                          static_cast<double>(s.round_hbm_bytes));
            for (std::size_t t = 0; t < tenants.size(); ++t) {
                counter_event(w, ids, "tele.queue_depth." + tenants[t],
                              s.t_us,
                              static_cast<double>(s.queue_depth[t]));
                counter_event(w, ids, "tele.bucket_fill." + tenants[t],
                              s.t_us, s.bucket_fill[t]);
            }
        }
    }

    // ---- Per-round gpusim replays on the shared clock -----------------
    if (options.device_lanes && !log.round_sims().empty()) {
        meta_name(w, ids.device_pid, 0, "process_name",
                  ids.prefix + "gpusim replays");
        std::set<int> streams;
        for (const TraceLog::RoundSim &rs : log.round_sims()) {
            for (const sim::KernelStats &k : rs.result.kernels) {
                streams.insert(k.stream);
            }
        }
        for (const int s : streams) {
            meta_name(w, ids.device_pid, s, "thread_name",
                      "stream " + std::to_string(s));
        }
        for (const TraceLog::RoundSim &rs : log.round_sims()) {
            sim::append_kernel_slices(w, rs.result, rs.dispatch_us,
                                      ids.device_pid);
        }
    }
}

}  // namespace

void
write_serve_trace(const TraceLog &log, std::ostream &os,
                  const ServeTraceOptions &options)
{
    JsonWriter w(os);
    w.begin_object();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_array();
    append_serve_tracks(w, log, options, TrackIds{});
    w.end_array();
    w.end_object();
}

std::string
serve_trace_json(const TraceLog &log, const ServeTraceOptions &options)
{
    std::ostringstream os;
    write_serve_trace(log, os, options);
    return os.str();
}

void
write_serve_trace_file(const TraceLog &log, const std::string &path,
                       const ServeTraceOptions &options)
{
    std::ofstream file(path);
    MG_CHECK(file.good()) << "cannot open trace file " << path;
    write_serve_trace(log, file, options);
    file.flush();
    MG_CHECK(file.good()) << "failed writing trace file " << path;
}

void
write_fleet_trace(const std::vector<FleetReplicaTrace> &replicas,
                  std::ostream &os, const ServeTraceOptions &options)
{
    JsonWriter w(os);
    w.begin_object();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_array();
    for (std::size_t k = 0; k < replicas.size(); ++k) {
        const FleetReplicaTrace &replica = replicas[k];
        MG_CHECK(replica.log != nullptr)
            << "fleet trace replica " << k << " has no log";
        ServeTraceOptions replica_options = options;
        replica_options.telemetry = replica.telemetry;
        TrackIds ids;
        ids.serve_pid = static_cast<int>(2 * k);
        ids.device_pid = static_cast<int>(2 * k + 1);
        ids.prefix =
            replica.label.empty() ? "" : replica.label + ".";
        append_serve_tracks(w, *replica.log, replica_options, ids);
    }
    w.end_array();
    w.end_object();
}

std::string
fleet_trace_json(const std::vector<FleetReplicaTrace> &replicas,
                 const ServeTraceOptions &options)
{
    std::ostringstream os;
    write_fleet_trace(replicas, os, options);
    return os.str();
}

void
write_fleet_trace_file(const std::vector<FleetReplicaTrace> &replicas,
                       const std::string &path,
                       const ServeTraceOptions &options)
{
    std::ofstream file(path);
    MG_CHECK(file.good()) << "cannot open trace file " << path;
    write_fleet_trace(replicas, file, options);
    file.flush();
    MG_CHECK(file.good()) << "failed writing trace file " << path;
}

}  // namespace multigrain::serve
