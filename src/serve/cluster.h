#ifndef MULTIGRAIN_SERVE_CLUSTER_H_
#define MULTIGRAIN_SERVE_CLUSTER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "gpusim/device.h"
#include "profiler/history.h"
#include "serve/cost.h"
#include "serve/router.h"
#include "serve/server.h"

/// mgcluster: scale-out serving across simulated devices (ISSUE 9).
///
/// A Cluster drives N data-parallel replicas — each an ordinary Server
/// over its own GpuSim/DeviceSpec, heterogeneous fleets allowed — on
/// one shared virtual clock, behind a Router that places every arrival
/// (serve/router.h). The cluster loop is the single-server event loop
/// lifted fleet-wide: at each timestamp it applies due fault
/// transitions, ingests due arrivals through the router, expires every
/// queue, dispatches every eligible idle replica in index order, then
/// advances the clock to the next arrival / round completion / fault.
/// The whole fleet run is a pure function of (preset, seed, devices,
/// policy), exactly like a single-server run.
///
/// Failover is scripted on the same clock: a ReplicaFault kills its
/// replica at down_us — the running round is truncated and its
/// requests recorded as lost in flight, the admitted-but-undispatched
/// backlog is drained and re-offered fleet-wide through the router —
/// and optionally revives it at up_us. Every request is conserved
/// through the move: per replica, offered == terminal outcomes +
/// drained; fleet-wide, arrivals == terminal outcomes + failover
/// sheds, with the router's exact counters closing the telescope.
/// reconcile_cluster() re-derives all of it and mgcluster turns any
/// disagreement into a ValidationError (exit 2).
namespace multigrain::serve {

/// One scripted replica outage on the virtual clock.
struct ReplicaFault {
    std::size_t replica = 0;
    double down_us = 0;
    /// Revival time; infinity (the default) keeps the replica down for
    /// the rest of the run. Must be > down_us.
    double up_us = std::numeric_limits<double>::infinity();
};

struct ClusterConfig {
    std::string preset = "custom";
    /// The per-replica serving configuration (admission, scheduler,
    /// mode) and the *fleet* arrival stream — one TrafficSource feeds
    /// the router, not N sources. Closed-loop traffic is not supported
    /// (a fleet-wide outage would deadlock the completion feedback).
    ServeConfig serve;
    /// One device per replica; heterogeneous fleets allowed.
    std::vector<sim::DeviceSpec> devices;
    /// CLI names parallel to `devices` ("a100" | "rtx3090"), stamped
    /// into reports.
    std::vector<std::string> device_names;
    RoutePolicy policy = RoutePolicy::kRoundRobin;
    /// Seeds the router (round-robin start, affinity hash). Defaults to
    /// the traffic seed in the presets.
    std::uint64_t router_seed = 0;
    std::vector<ReplicaFault> faults;
};

/// Registered fleet presets ("fleet2" | "fleet4" | "hetero" |
/// "failover"); homogeneous presets replicate the device named by
/// `device_cli_name`, "hetero" pins an a100 + rtx3090 pair and ignores
/// it. Throws Error on unknown names.
ClusterConfig cluster_preset_by_name(const std::string &name,
                                     const std::string &device_cli_name);

struct ClusterPresetInfo {
    const char *name;
    const char *description;
};
const std::vector<ClusterPresetInfo> &cluster_presets();

struct ClusterReport {
    std::string preset;
    RoutePolicy policy = RoutePolicy::kRoundRobin;
    /// One finished ServeReport per replica, index-aligned with
    /// device_names.
    std::vector<ServeReport> replicas;
    std::vector<std::string> device_names;
    RouterStats router;
    std::vector<ReplicaFault> faults;

    // ---- Fleet aggregates ------------------------------------------
    std::uint64_t arrivals = 0;  ///< Requests the traffic source issued.
    std::uint64_t completed = 0;
    std::uint64_t deadline_miss = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t lost_in_flight = 0;
    prof::LatencySummary latency;  ///< Completed requests, fleet-wide.
    prof::LatencySummary latency_by_class[kNumSloClasses];
    int rounds = 0;
    double makespan_us = 0;  ///< Fleet first arrival to last completion.
    double busy_us = 0;      ///< Sum of replica busy time.
    double throughput_rps = 0;
    /// Per-replica busy / fleet makespan, index-aligned; and the
    /// max - min spread — the load-balance figure of merit.
    std::vector<double> replica_util;
    double util_skew = 0;
    /// The merged fleet ledger: per-replica TenantLedgers summed cell
    /// by cell (add_cell), latencies re-summarized from the merged
    /// completed records.
    CostReport cost;
    /// Fleet-wide plan-cache movement (the cache is process-wide, so
    /// same-device replicas share entries and per-replica deltas
    /// overlap; only this fleet delta is gated).
    PlanCacheStats plan_cache;
};

class TraceLog;  // serve/trace.h

class Cluster {
  public:
    explicit Cluster(ClusterConfig config);

    std::size_t size() const { return servers_.size(); }

    /// Attaches a per-replica event log / telemetry recorder (same
    /// observer contract as the Server setters; must outlive run()).
    void set_trace(std::size_t replica, TraceLog *trace);
    void set_telemetry(std::size_t replica, TelemetryRecorder *telemetry);

    /// Runs the fleet to completion. May be called once.
    ClusterReport run();

  private:
    std::vector<ReplicaView> views() const;

    ClusterConfig config_;
    std::vector<Server> servers_;
    Router router_;
    bool ran_ = false;
};

/// Sums the replicas' cost reports into the fleet ledger: tenant cells
/// merged by name (spec order, extras appended in replica order),
/// per-tenant latencies re-summarized from the merged completed
/// records. Shared by Cluster::run and reconcile_cluster, so the
/// reconciliation recomputes the merge it checks.
CostReport merge_replica_costs(const std::vector<ServeReport> &replicas);

/// Cross-checks the fleet report: every replica's own ledger
/// reconciles, the router counters close the conservation telescope
/// (arrivals == terminal outcomes + failover sheds; drained ==
/// rerouted + shed_reroutes), the merged ledger equals the per-replica
/// sum, and every aggregate re-derives from the replica reports.
/// Returns the collected failures (empty = conserved); never throws.
std::vector<std::string> reconcile_cluster(const ClusterReport &report);

/// Adds `offset` to the report's rerouted counter — the seeded
/// corruption mgcluster's --perturb-counter flag and the tests use to
/// prove the fleet conservation gate fails closed. (Ledger corruption
/// goes through scale_tenant_charges on report.cost.)
void perturb_router_counter(ClusterReport &report, std::int64_t offset);

/// Identity of the fleet run, stamped into the report document.
struct ClusterRunInfo {
    std::string preset;
    /// CLI device label: the replicated device name, or "mixed" for the
    /// hetero preset.
    std::string device;
    std::uint64_t seed = 0;
};

/// The validated "mgcluster.report" v1 JSON document. The two-argument
/// form stamps a freshly collected manifest; pass an explicit manifest
/// to make the document a pure function of (report, info) — what the
/// byte-identical tests pin.
std::string cluster_report_json(const ClusterReport &report,
                                const ClusterRunInfo &info,
                                const std::vector<std::string> &errors,
                                const prof::RunManifest &manifest);
std::string cluster_report_json(const ClusterReport &report,
                                const ClusterRunInfo &info,
                                const std::vector<std::string> &errors);

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_CLUSTER_H_
