#ifndef MULTIGRAIN_SERVE_SCHEDULER_H_
#define MULTIGRAIN_SERVE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/admission.h"
#include "serve/traffic.h"
#include "transformer/config.h"

/// The continuous-batching scheduler of mgserve (ISSUE 4).
///
/// At every scheduling point (GPU idle, queue non-empty) the scheduler
/// forms up to max_concurrent_batches batches: it pops the most urgent
/// queued request (EDF across tenant heads — see AdmissionQueue), then
/// fills the batch with up to max_batch - 1 further requests that are
/// *compatible* with it — same model, same processing method, same
/// sequence-length bucket — because only those can share one batched
/// execution plan. Each batch replays one PlanCache'd layer graph
/// (transformer/runner.h) under its own name prefix and stream binding,
/// so the batches of a round overlap across gpusim streams the same way
/// Multigrain's coarse ∥ fine slices do within one attention.
///
/// Bucketing is the plan-reuse knob: request lengths are padded up to
/// bucket_granularity boundaries and batch sizes padded up to the next
/// power of two, so the (pattern fingerprint, config, mode, device) keys
/// of transformer/workload.h's canonical bucket samples repeat across
/// requests and the PlanCache serves the steady state from hits. The
/// padding work is wasted compute — the classic serving trade — and the
/// mgserve report makes it visible by tracking both padded and actual
/// batch sizes.
namespace multigrain::serve {

struct SchedulerConfig {
    /// Maximum requests co-batched into one plan.
    int max_batch = 8;
    /// Sequence-length bucket width; must be a positive multiple of
    /// every served model's block size.
    index_t bucket_granularity = 256;
    /// Batches co-scheduled (on separate stream groups) per round.
    int max_concurrent_batches = 2;
    /// Pad the planned batch size to the next power of two so plan-cache
    /// keys repeat across nearby batch sizes.
    bool pad_batch_pow2 = true;
    /// Per-round projected HBM budget, bytes; 0 disables byte packing.
    /// When set (and a footprint callback is installed), round formation
    /// packs batches to this byte budget instead of a pure request
    /// count: each batch is capped at the largest padded size whose
    /// plan footprint fits the round's remaining bytes, and a seed that
    /// does not fit even alone is returned to the queue, closing the
    /// round. The first batch of a round always dispatches so a single
    /// oversized plan cannot livelock the server.
    std::uint64_t round_hbm_budget_bytes = 0;
};

/// One schedulable batch: compatible requests plus the padded size the
/// execution plan is actually built for.
struct Batch {
    std::string model;
    SliceMode mode = SliceMode::kMultigrain;
    index_t bucket = 0;
    int planned_batch = 0;  ///< Padded size the layer graph replays with.
    std::vector<Request> requests;

    int size() const { return static_cast<int>(requests.size()); }
};

class Scheduler {
  public:
    /// Projected HBM bytes of one batch's execution plan:
    /// (model, mode, bucket, planned_batch) -> bytes. Installed by the
    /// Server from the cached MemPlans (layer peak x num_layers); byte
    /// packing stays off until both this and round_hbm_budget_bytes are
    /// set.
    using BatchFootprint = std::function<std::uint64_t(
        const std::string &model, SliceMode mode, index_t bucket,
        int planned_batch)>;

    /// Validates bucket_granularity against every model in `models`
    /// (block alignment and cap) and caches their configs.
    Scheduler(const SchedulerConfig &config,
              const std::vector<std::string> &models);

    const SchedulerConfig &config() const { return config_; }

    void set_footprint(BatchFootprint fn) { footprint_ = std::move(fn); }

    /// The bucket `r` pads to: valid_len rounded up to the granularity,
    /// clamped to its model's cap.
    index_t bucket_of(const Request &r) const;
    /// The padded batch size a batch of `actual` requests plans with.
    int planned_batch(int actual) const;

    /// Forms the next round of batches from `queue` (empty result iff
    /// the queue is empty).
    std::vector<Batch> next_round(AdmissionQueue &queue) const;

  private:
    const ModelConfig &model_for(const std::string &name) const;

    SchedulerConfig config_;
    std::unordered_map<std::string, ModelConfig> models_;
    BatchFootprint footprint_;
};

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_SCHEDULER_H_
