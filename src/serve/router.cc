#include "serve/router.h"

#include "common/error.h"

namespace multigrain::serve {

namespace {

/// FNV-1a over the seed bytes then the tenant name — the seeded,
/// platform-independent hash behind tenant-affinity pinning.
std::uint64_t
affinity_hash(std::uint64_t seed, const std::string &tenant)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    for (int i = 0; i < 8; ++i) {
        mix((seed >> (8 * i)) & 0xff);
    }
    for (const char c : tenant) {
        mix(static_cast<unsigned char>(c));
    }
    return h;
}

}  // namespace

const char *
to_string(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::kRoundRobin:
        return "round-robin";
      case RoutePolicy::kLeastBytes:
        return "least-bytes";
      case RoutePolicy::kTenantAffinity:
        return "tenant-affinity";
    }
    MG_CHECK(false) << "unreachable";
    return "";
}

RoutePolicy
route_policy_by_name(const std::string &name)
{
    if (name == "round-robin") {
        return RoutePolicy::kRoundRobin;
    }
    if (name == "least-bytes") {
        return RoutePolicy::kLeastBytes;
    }
    if (name == "tenant-affinity") {
        return RoutePolicy::kTenantAffinity;
    }
    throw Error("unknown route policy \"" + name +
                "\" (round-robin|least-bytes|tenant-affinity)");
}

Router::Router(RoutePolicy policy, std::size_t replicas,
               std::uint64_t seed)
    : policy_(policy),
      replicas_(replicas),
      seed_(seed),
      cursor_(replicas > 0 ? seed % replicas : 0)
{
    MG_CHECK(replicas > 0) << "router needs at least one replica";
    stats_.per_replica.assign(replicas, 0);
}

int
Router::pick(const Request &r, const std::vector<ReplicaView> &views)
{
    MG_CHECK(views.size() == replicas_)
        << "router saw " << views.size() << " views for " << replicas_
        << " replicas";
    switch (policy_) {
      case RoutePolicy::kRoundRobin: {
        for (std::size_t step = 0; step < replicas_; ++step) {
            const std::size_t i = (cursor_ + step) % replicas_;
            if (views[i].alive) {
                cursor_ = (i + 1) % replicas_;
                return static_cast<int>(i);
            }
        }
        return -1;
      }
      case RoutePolicy::kLeastBytes: {
        int best = -1;
        for (std::size_t i = 0; i < replicas_; ++i) {
            if (!views[i].alive) {
                continue;
            }
            if (best < 0 || views[i].outstanding_bytes <
                                views[static_cast<std::size_t>(best)]
                                    .outstanding_bytes) {
                best = static_cast<int>(i);
            }
        }
        return best;
      }
      case RoutePolicy::kTenantAffinity: {
        const auto [it, inserted] = pins_.try_emplace(
            r.tenant, affinity_hash(seed_, r.tenant) % replicas_);
        if (views[it->second].alive) {
            return static_cast<int>(it->second);
        }
        // The pin is dead: move it to the next alive replica after it,
        // and keep it there (stickiness preserves the plan-cache
        // working set the tenant builds at the new home).
        for (std::size_t step = 1; step <= replicas_; ++step) {
            const std::size_t i = (it->second + step) % replicas_;
            if (views[i].alive) {
                it->second = i;
                ++stats_.affinity_repins;
                return static_cast<int>(i);
            }
        }
        return -1;
      }
    }
    MG_CHECK(false) << "unreachable";
    return -1;
}

int
Router::route(const Request &r, const std::vector<ReplicaView> &views)
{
    const int target = pick(r, views);
    if (target < 0) {
        ++stats_.shed_arrivals;
        return target;
    }
    ++stats_.routed;
    ++stats_.per_replica[static_cast<std::size_t>(target)];
    return target;
}

int
Router::reroute(const Request &r, const std::vector<ReplicaView> &views)
{
    const int target = pick(r, views);
    if (target < 0) {
        ++stats_.shed_reroutes;
        return target;
    }
    ++stats_.rerouted;
    ++stats_.per_replica[static_cast<std::size_t>(target)];
    return target;
}

}  // namespace multigrain::serve
