#include "serve/cost.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "profiler/export.h"
#include "serve/server.h"

namespace multigrain::serve {

namespace {

bool
close_rel(double a, double b)
{
    return std::abs(a - b) <=
           kCostReconcileRelTol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

// ---- TenantLedger -------------------------------------------------------

TenantLedger::TenantLedger(const std::vector<TenantSpec> &tenants)
{
    tenants_.reserve(tenants.size());
    for (const TenantSpec &t : tenants) {
        TenantState state;
        state.name = t.name;
        tenants_.push_back(std::move(state));
    }
}

TenantLedger::TenantState &
TenantLedger::state_for(const std::string &tenant)
{
    for (TenantState &s : tenants_) {
        if (s.name == tenant) {
            return s;
        }
    }
    TenantState state;
    state.name = tenant;
    tenants_.push_back(std::move(state));
    return tenants_.back();
}

CostCell &
TenantLedger::cell_for(const Request &r)
{
    const int slo = static_cast<int>(r.slo);
    MG_CHECK(slo >= 0 && slo < kNumSloClasses)
        << "request with unknown SLO class " << slo;
    return state_for(r.tenant).by_class[slo];
}

void
TenantLedger::charge_round(double round_us,
                           const std::vector<BatchCharge> &batches)
{
    MG_CHECK(!batches.empty()) << "charge_round without batches";
    ++rounds_;
    double span_sum = 0;
    for (const BatchCharge &b : batches) {
        MG_CHECK(b.requests != nullptr && !b.requests->empty())
            << "batch charge without members";
        span_sum += b.device_us;
    }
    for (const BatchCharge &b : batches) {
        // Concurrent batches share the round span they co-occupy:
        // each gets the round pro-rata by its own device span, so the
        // batch charges sum back to round_us — the exact quantity
        // ServeReport::busy_us accumulated for this round.
        const double batch_device =
            span_sum > 0
                ? round_us * (b.device_us / span_sum)
                : round_us / static_cast<double>(batches.size());
        double useful_tokens = 0;
        for (const Request &r : *b.requests) {
            useful_tokens += static_cast<double>(r.valid_len);
        }
        const double planned_tokens =
            static_cast<double>(b.planned_batch) *
            static_cast<double>(b.bucket);
        const double pad_frac =
            planned_tokens > 0
                ? std::max(0.0, 1.0 - useful_tokens / planned_tokens)
                : 0.0;
        const double pad_total = batch_device * pad_frac;
        const double compute_total = batch_device - pad_total;
        const double byte_us =
            static_cast<double>(b.footprint_bytes) * batch_device;
        const double members =
            static_cast<double>(b.requests->size());
        for (const Request &r : *b.requests) {
            CostCell &cell = cell_for(r);
            // Compute by useful-token share, pad and byte residency
            // pro-rata: every member needed the padded plan to run.
            cell.compute_us +=
                useful_tokens > 0
                    ? compute_total *
                          (static_cast<double>(r.valid_len) /
                           useful_tokens)
                    : compute_total / members;
            cell.pad_us += pad_total / members;
            cell.hbm_byte_us += byte_us / members;
        }
        charged_device_us_ += batch_device;
        charged_hbm_byte_us_ += byte_us;
    }
}

void
TenantLedger::note_completed(const Request &r, double queue_us,
                             double latency_us, bool deadline_met)
{
    TenantState &state = state_for(r.tenant);
    CostCell &cell = cell_for(r);
    ++cell.completed;
    if (!deadline_met) {
        ++cell.deadline_miss;
    }
    cell.queue_us += queue_us;
    charged_queue_us_ += queue_us;
    state.latencies.push_back(latency_us);
}

void
TenantLedger::note_shed(const Request &r, AdmitDecision::Shed reason)
{
    CostCell &cell = cell_for(r);
    switch (reason) {
      case AdmitDecision::Shed::kRateLimit:
        ++cell.shed_ratelimit;
        break;
      case AdmitDecision::Shed::kCapacity:
        ++cell.shed_capacity;
        break;
      case AdmitDecision::Shed::kMemory:
        ++cell.shed_memory;
        break;
      case AdmitDecision::Shed::kNone:
        MG_CHECK(false) << "note_shed on an admitted request";
    }
}

void
TenantLedger::note_aged_out(const Request &r, double waited_us)
{
    CostCell &cell = cell_for(r);
    ++cell.aged_out;
    cell.queue_us += waited_us;
    charged_queue_us_ += waited_us;
}

void
TenantLedger::note_lost(const Request &r, double queue_us)
{
    CostCell &cell = cell_for(r);
    ++cell.lost_in_flight;
    cell.queue_us += queue_us;
    charged_queue_us_ += queue_us;
}

std::vector<std::pair<std::string, double>>
TenantLedger::charged_device_by_tenant() const
{
    std::vector<std::pair<std::string, double>> charged;
    charged.reserve(tenants_.size());
    for (const TenantState &state : tenants_) {
        double device_us = 0;
        for (int c = 0; c < kNumSloClasses; ++c) {
            device_us += state.by_class[c].device_us();
        }
        charged.emplace_back(state.name, device_us);
    }
    return charged;
}

void
add_cell(CostCell &into, const CostCell &cell)
{
    into.compute_us += cell.compute_us;
    into.pad_us += cell.pad_us;
    into.queue_us += cell.queue_us;
    into.hbm_byte_us += cell.hbm_byte_us;
    into.completed += cell.completed;
    into.shed_capacity += cell.shed_capacity;
    into.shed_memory += cell.shed_memory;
    into.shed_ratelimit += cell.shed_ratelimit;
    into.aged_out += cell.aged_out;
    into.deadline_miss += cell.deadline_miss;
    into.lost_in_flight += cell.lost_in_flight;
}

CostReport
TenantLedger::finish(double busy_us) const
{
    CostReport report;
    report.rounds = rounds_;
    report.busy_us = busy_us;
    report.charged_device_us = charged_device_us_;
    report.charged_queue_us = charged_queue_us_;
    report.charged_hbm_byte_us = charged_hbm_byte_us_;
    report.tenants.reserve(tenants_.size());
    for (const TenantState &state : tenants_) {
        TenantCost tc;
        tc.tenant = state.name;
        for (int c = 0; c < kNumSloClasses; ++c) {
            tc.by_class[c] = state.by_class[c];
            add_cell(tc.total, state.by_class[c]);
        }
        tc.latency = prof::summarize_latencies(state.latencies);
        report.tenants.push_back(std::move(tc));
    }
    return report;
}

// ---- Reconciliation -----------------------------------------------------

std::vector<std::string>
reconcile_cost(const CostReport &cost, const ServeReport &report)
{
    std::vector<std::string> errors;
    const auto check = [&errors](bool ok, const std::string &msg) {
        if (!ok) {
            errors.push_back(msg);
        }
    };
    const auto mismatch = [](const std::string &what, double got,
                             double want) {
        std::ostringstream os;
        os << what << ": ledger says " << got << ", ServeReport says "
           << want;
        return os.str();
    };

    // ---- The conservation invariant -----------------------------------
    // Per-tenant charged device time must telescope back to the total
    // device-busy time: the ledger split every round without losing or
    // inventing a microsecond.
    double device_sum = 0;
    double queue_sum = 0;
    double byte_sum = 0;
    CostCell counts;  // Counter totals across tenants (exact).
    for (const TenantCost &t : cost.tenants) {
        device_sum += t.total.device_us();
        queue_sum += t.total.queue_us;
        byte_sum += t.total.hbm_byte_us;
        add_cell(counts, t.total);

        // A tenant's total must be its class cells, nothing more.
        CostCell from_classes;
        for (int c = 0; c < kNumSloClasses; ++c) {
            add_cell(from_classes, t.by_class[c]);
        }
        check(close_rel(t.total.device_us(), from_classes.device_us()) &&
                  t.total.completed == from_classes.completed &&
                  t.total.offered() == from_classes.offered(),
              "tenant " + t.tenant +
                  ": total does not match its class cells");
    }
    check(close_rel(device_sum, cost.busy_us),
          mismatch("charged device time", device_sum, cost.busy_us));
    check(close_rel(cost.charged_device_us, cost.busy_us),
          mismatch("ledger device total", cost.charged_device_us,
                   cost.busy_us));
    check(cost.busy_us == report.busy_us,
          mismatch("busy_us", cost.busy_us, report.busy_us));
    check(close_rel(byte_sum, cost.charged_hbm_byte_us),
          mismatch("HBM byte-time", byte_sum,
                   cost.charged_hbm_byte_us));
    check(cost.rounds == report.rounds,
          mismatch("rounds", static_cast<double>(cost.rounds),
                   static_cast<double>(report.rounds)));

    // ---- Counters are integers: exact or wrong ------------------------
    const AdmissionStats &adm = report.admission;
    check(counts.completed == report.completed,
          mismatch("completed", static_cast<double>(counts.completed),
                   static_cast<double>(report.completed)));
    check(counts.shed_capacity + counts.shed_memory +
                  counts.shed_ratelimit ==
              adm.rejected,
          mismatch("sheds",
                   static_cast<double>(counts.shed_capacity +
                                       counts.shed_memory +
                                       counts.shed_ratelimit),
                   static_cast<double>(adm.rejected)));
    check(counts.shed_memory == adm.shed_memory,
          mismatch("shed_memory",
                   static_cast<double>(counts.shed_memory),
                   static_cast<double>(adm.shed_memory)));
    check(counts.shed_ratelimit == adm.shed_ratelimit,
          mismatch("shed_ratelimit",
                   static_cast<double>(counts.shed_ratelimit),
                   static_cast<double>(adm.shed_ratelimit)));
    check(counts.aged_out == adm.timed_out,
          mismatch("aged_out", static_cast<double>(counts.aged_out),
                   static_cast<double>(adm.timed_out)));
    check(counts.deadline_miss == report.deadline_miss,
          mismatch("deadline_miss",
                   static_cast<double>(counts.deadline_miss),
                   static_cast<double>(report.deadline_miss)));
    check(counts.lost_in_flight == report.lost_in_flight,
          mismatch("lost_in_flight",
                   static_cast<double>(counts.lost_in_flight),
                   static_cast<double>(report.lost_in_flight)));
    // Every offer either reached a terminal cell here or was drained to
    // the router when the replica died — drained requests are the one
    // non-terminal exit, so they reconcile the offered count.
    check(counts.offered() + adm.drained == adm.offered,
          mismatch("offered",
                   static_cast<double>(counts.offered() + adm.drained),
                   static_cast<double>(adm.offered)));

    // ---- Queue occupancy re-derived from the request records ----------
    double want_queue = 0;
    for (const RequestRecord &rec : report.records) {
        if (rec.outcome == RequestRecord::Outcome::kCompleted ||
            rec.outcome == RequestRecord::Outcome::kLostReplica) {
            want_queue += rec.queue_us();
        } else if (rec.outcome == RequestRecord::Outcome::kTimedOut) {
            want_queue += rec.finish_us - rec.request.arrival_us;
        }
    }
    check(close_rel(queue_sum, want_queue),
          mismatch("queue occupancy", queue_sum, want_queue));
    check(close_rel(cost.charged_queue_us, want_queue),
          mismatch("ledger queue total", cost.charged_queue_us,
                   want_queue));

    // ---- Per-tenant counters re-derived from the records --------------
    for (const TenantCost &t : cost.tenants) {
        std::uint64_t completed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t aged = 0;
        std::uint64_t lost = 0;
        for (const RequestRecord &rec : report.records) {
            if (rec.request.tenant != t.tenant) {
                continue;
            }
            switch (rec.outcome) {
              case RequestRecord::Outcome::kCompleted:
                ++completed;
                break;
              case RequestRecord::Outcome::kRejected:
                ++rejected;
                break;
              case RequestRecord::Outcome::kTimedOut:
                ++aged;
                break;
              case RequestRecord::Outcome::kLostReplica:
                ++lost;
                break;
            }
        }
        check(t.total.completed == completed,
              mismatch("tenant " + t.tenant + " completed",
                       static_cast<double>(t.total.completed),
                       static_cast<double>(completed)));
        check(t.total.shed_capacity + t.total.shed_memory +
                      t.total.shed_ratelimit ==
                  rejected,
              mismatch("tenant " + t.tenant + " sheds",
                       static_cast<double>(t.total.shed_capacity +
                                           t.total.shed_memory +
                                           t.total.shed_ratelimit),
                       static_cast<double>(rejected)));
        check(t.total.aged_out == aged,
              mismatch("tenant " + t.tenant + " aged_out",
                       static_cast<double>(t.total.aged_out),
                       static_cast<double>(aged)));
        check(t.total.lost_in_flight == lost,
              mismatch("tenant " + t.tenant + " lost_in_flight",
                       static_cast<double>(t.total.lost_in_flight),
                       static_cast<double>(lost)));
        check(t.latency.count == t.total.completed,
              mismatch("tenant " + t.tenant + " latency samples",
                       static_cast<double>(t.latency.count),
                       static_cast<double>(t.total.completed)));
    }
    return errors;
}

void
scale_tenant_charges(CostReport &cost, std::size_t tenant_index,
                     double scale)
{
    MG_CHECK(tenant_index < cost.tenants.size())
        << "no tenant at index " << tenant_index;
    TenantCost &t = cost.tenants[tenant_index];
    t.total.compute_us *= scale;
    for (int c = 0; c < kNumSloClasses; ++c) {
        t.by_class[c].compute_us *= scale;
    }
}

// ---- Report document ----------------------------------------------------

void
write_cost_cell(JsonWriter &w, const CostCell &cell, double busy_us)
{
    w.field("completed", static_cast<std::int64_t>(cell.completed));
    w.field("shed_capacity",
            static_cast<std::int64_t>(cell.shed_capacity));
    w.field("shed_memory", static_cast<std::int64_t>(cell.shed_memory));
    w.field("shed_ratelimit",
            static_cast<std::int64_t>(cell.shed_ratelimit));
    w.field("aged_out", static_cast<std::int64_t>(cell.aged_out));
    w.field("lost_in_flight",
            static_cast<std::int64_t>(cell.lost_in_flight));
    w.field("deadline_miss",
            static_cast<std::int64_t>(cell.deadline_miss));
    w.field("compute_us", cell.compute_us);
    w.field("pad_us", cell.pad_us);
    w.field("device_us", cell.device_us());
    w.field("queue_us", cell.queue_us);
    w.field("hbm_byte_us", cell.hbm_byte_us);
    w.field("device_share",
            busy_us > 0 ? cell.device_us() / busy_us : 0.0);
}

std::string
cost_report_json(const CostReport &cost, const CostRunInfo &info,
                 const std::vector<std::string> &errors,
                 const prof::RunManifest &manifest)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("schema", prof::kServeCostReportSchema);
        w.field("schema_version", prof::kServeCostReportVersion);
        w.key("manifest");
        prof::write_manifest(w, manifest);
        w.field("preset", info.preset);
        w.field("device", info.device);
        w.field("seed", static_cast<std::int64_t>(info.seed));
        w.field("rounds", cost.rounds);
        w.field("busy_us", cost.busy_us);
        w.field("charged_device_us", cost.charged_device_us);
        w.field("charged_queue_us", cost.charged_queue_us);
        w.field("charged_hbm_byte_us", cost.charged_hbm_byte_us);
        w.field("conserved", errors.empty());
        w.key("reconcile_errors");
        w.begin_array();
        for (const std::string &e : errors) {
            w.value(e);
        }
        w.end_array();
        w.key("tenants");
        w.begin_array();
        for (const TenantCost &t : cost.tenants) {
            w.begin_object();
            w.field("tenant", t.tenant);
            write_cost_cell(w, t.total, cost.busy_us);
            w.key("latency");
            w.begin_object();
            w.field("count", static_cast<std::int64_t>(t.latency.count));
            w.field("mean_us", t.latency.mean);
            w.field("p50_us", t.latency.p50);
            w.field("p95_us", t.latency.p95);
            w.field("p99_us", t.latency.p99);
            w.field("max_us", t.latency.max);
            w.end_object();
            w.key("classes");
            w.begin_array();
            for (int c = 0; c < kNumSloClasses; ++c) {
                w.begin_object();
                w.field("class",
                        to_string(static_cast<SloClass>(c)));
                write_cost_cell(w, t.by_class[c], cost.busy_us);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    return os.str();
}

std::string
cost_report_json(const CostReport &cost, const CostRunInfo &info,
                 const std::vector<std::string> &errors)
{
    return cost_report_json(cost, info, errors,
                            prof::RunManifest::collect(info.device));
}

// ---- Time-series telemetry ----------------------------------------------

TelemetryRecorder::TelemetryRecorder(TelemetryConfig config,
                                     std::vector<std::string> tenants)
    : config_(config), tenants_(std::move(tenants))
{
    MG_CHECK(config_.interval_us > 0)
        << "telemetry interval must be positive";
    current_.queue_depth.assign(tenants_.size(), 0);
    current_.bucket_fill.assign(tenants_.size(), 0.0);
}

void
TelemetryRecorder::emit_through(double limit_us, bool inclusive)
{
    while (inclusive ? next_grid_us_ <= limit_us
                     : next_grid_us_ < limit_us) {
        TelemetrySample s = current_;
        s.t_us = next_grid_us_;
        samples_.push_back(std::move(s));
        next_grid_us_ += config_.interval_us;
    }
}

void
TelemetryRecorder::observe(double now_us, TelemetrySample state)
{
    emit_through(now_us, /*inclusive=*/false);
    // Tenants discovered mid-run would desync the columns; clamp the
    // vectors to the construction-time tenant list.
    state.queue_depth.resize(tenants_.size(), 0);
    state.bucket_fill.resize(tenants_.size(), 0.0);
    current_ = std::move(state);
}

void
TelemetryRecorder::finish(double end_us)
{
    emit_through(end_us, /*inclusive=*/true);
}

void
write_telemetry_csv(const TelemetryRecorder &recorder, std::ostream &os)
{
    os << "t_us,in_flight,round_hbm_bytes";
    for (const std::string &t : recorder.tenants()) {
        os << ",queue_depth." << t;
    }
    for (const std::string &t : recorder.tenants()) {
        os << ",bucket_fill." << t;
    }
    os << "\n";
    for (const TelemetrySample &s : recorder.samples()) {
        os << s.t_us << "," << s.in_flight << "," << s.round_hbm_bytes;
        for (const std::size_t d : s.queue_depth) {
            os << "," << d;
        }
        for (const double f : s.bucket_fill) {
            os << "," << f;
        }
        os << "\n";
    }
}

std::string
telemetry_csv(const TelemetryRecorder &recorder)
{
    std::ostringstream os;
    write_telemetry_csv(recorder, os);
    return os.str();
}

}  // namespace multigrain::serve
