#ifndef MULTIGRAIN_SERVE_ADMISSION_H_
#define MULTIGRAIN_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/traffic.h"

/// Admission control and queueing for mgserve (ISSUE 4).
///
/// The queue is the loss valve of the serving layer: it is bounded, so
/// under overload requests are shed at the door (rejected) instead of
/// growing an unbounded backlog, and optionally aged out (timed out) when
/// they have waited past a configured bound — both with exact counters,
/// because a serving system that silently drops work is broken in a way
/// throughput numbers never show.
///
/// Fairness is per tenant: each tenant has its own FIFO, and the
/// scheduler-facing dequeue methods visit tenants from a rotating cursor,
/// so one tenant's burst cannot starve the others — it can only fill its
/// share of the bounded queue. Across tenant heads, dequeue order is
/// earliest-deadline-first (EDF), which is what makes the scheduler
/// SLO-aware: an interactive request overtakes queued batch work the
/// moment its tighter budget makes it more urgent.
///
/// Rate limiting (ISSUE 8) polices each tenant before the shared queue is
/// even consulted: a per-tenant token bucket on the virtual serving clock
/// (TenantSpec::rate_rps / burst) sheds a misbehaving tenant's excess at
/// the door — with its own exact counter, disjoint from depth and memory
/// shedding — so a noisy neighbor pays for its burst instead of squeezing
/// everyone else out of the bounded queue.
namespace multigrain::serve {

struct AdmissionConfig {
    /// Global bound on queued requests across all tenants; offers beyond
    /// it are shed.
    std::size_t queue_capacity = 64;
    /// Maximum time a request may wait in the queue before it is dropped
    /// as timed out; 0 disables aging.
    double max_queue_wait_us = 0;
    /// Projected-HBM admission bound, bytes; 0 disables memory shedding.
    /// When set, an offer whose stamped footprint_bytes would push the
    /// queue's projected total past the bound is shed at the door with
    /// an exact counter (shed_memory) — the byte-budget analogue of the
    /// depth bound above.
    std::uint64_t hbm_budget_bytes = 0;
    /// Burst-aware weighted fair queueing (ISSUE 9): when enabled,
    /// pop_seed picks the tenant head with the smallest charged device
    /// time per TenantSpec::weight (fed back from the TenantLedger via
    /// set_charged) instead of pure EDF — a tenant that already burned
    /// its share of the device waits behind tenants that have not, even
    /// if its deadlines are tighter. Deadlines still break debt ties, so
    /// the policy degrades to EDF while charges are equal (e.g. at the
    /// start of a run).
    bool wfq = false;
};

struct AdmissionStats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< All door sheds (rate/depth/memory).
    /// Subset of `rejected`: shed because the queue's projected HBM
    /// bytes would exceed hbm_budget_bytes.
    std::uint64_t shed_memory = 0;
    /// Subset of `rejected`: shed by the tenant's token bucket, disjoint
    /// from both depth sheds and shed_memory (the bucket is checked
    /// first, so a rate-limited offer never reaches the other valves).
    std::uint64_t shed_ratelimit = 0;
    std::uint64_t timed_out = 0;  ///< Aged out waiting.
    std::uint64_t dispatched = 0; ///< Handed to the scheduler.
    /// Admitted-but-undispatched requests removed by drain() when the
    /// replica holding this queue went down (ISSUE 9). Disjoint from
    /// every terminal counter above: a drained request leaves this queue
    /// alive and is re-offered elsewhere by the cluster router, so
    /// offered == completed-or-shed outcomes + drained per queue.
    std::uint64_t drained = 0;
    /// High-water mark of the total queue depth — never exceeds
    /// queue_capacity (asserted by tests/serve_test.cc through the serve
    /// metric registry).
    std::size_t max_depth = 0;
    /// High-water mark of the queue's projected HBM bytes.
    std::uint64_t max_queued_bytes = 0;
};

/// Deterministic token bucket on the virtual serving clock. Refill is
/// computed lazily from the elapsed virtual time at each take, so the
/// bucket is a pure function of the offer timestamps — same seed, same
/// decisions, same fill levels.
class TokenBucket {
  public:
    /// Unlimited: try_take always succeeds and the fill stays at burst.
    TokenBucket() = default;
    TokenBucket(double rate_rps, double burst);

    /// Refills by (t_us - last) * rate_rps / 1e6 capped at burst, then
    /// consumes one token if at least one is available. `t_us` must be
    /// non-decreasing across calls (the serving clock guarantees it).
    bool try_take(double t_us);

    /// Current fill, tokens (telemetry). Reflects the last refill point;
    /// unlimited buckets report their burst capacity.
    double fill() const { return limited() ? tokens_ : burst_; }
    bool limited() const { return rate_rps_ > 0; }

  private:
    double rate_rps_ = 0;  ///< 0 = unlimited.
    double burst_ = 1;
    double tokens_ = 1;
    double last_us_ = 0;
};

/// The outcome of one offer. Contextually convertible to bool
/// ("admitted?") so pre-rate-limit call sites keep reading naturally;
/// the reason distinguishes the three disjoint shed valves for trace
/// events and per-tenant cost attribution.
struct AdmitDecision {
    enum class Shed { kNone = 0, kRateLimit, kCapacity, kMemory };

    bool admitted = false;
    Shed reason = Shed::kNone;

    explicit operator bool() const { return admitted; }
};

class AdmissionQueue {
  public:
    /// `tenants` fixes the fairness rotation order and supplies the
    /// per-tenant rate limits (TenantSpec::rate_rps / burst); requests
    /// from tenants not listed get their own FIFO, with an unlimited
    /// bucket, appended in arrival order.
    AdmissionQueue(const AdmissionConfig &config,
                   const std::vector<TenantSpec> &tenants);

    /// Admits `r` unless its tenant's token bucket, the depth bound, or
    /// the byte budget refuses it — in that order, so every shed has
    /// exactly one reason. The bucket refills on the request's arrival
    /// time (arrivals are ingested in non-decreasing order).
    AdmitDecision offer(Request r, double now_us);
    /// Failover re-admission (ISSUE 9): offers a request the cluster
    /// router moved here after its original replica died. The tenant's
    /// token bucket is skipped — the tenant already paid for this
    /// arrival at the replica that admitted it, and a fault-caused move
    /// must not double-bill its rate budget (nor rewind this queue's
    /// bucket clock to the request's old arrival time). Depth and byte
    /// valves still apply, so a reroute into a full replica sheds with
    /// the usual exact counters.
    AdmitDecision reoffer(Request r, double now_us);
    /// Removes and returns every queued request that has waited longer
    /// than max_queue_wait_us at `now_us` (empty when aging is off).
    std::vector<Request> expire(double now_us);
    /// Removes and returns everything queued, in tenant-rotation order
    /// and FIFO within each tenant — the failover path when this
    /// queue's replica goes down. Counted in AdmissionStats::drained
    /// (not dispatched, not timed out): the requests are not terminal
    /// here, the router re-offers them fleet-wide.
    std::vector<Request> drain();

    std::size_t depth() const;
    bool empty() const { return depth() == 0; }

    /// Pops the next batch seed: among the tenant queue heads, the
    /// request with the earliest deadline, ties broken by the rotating
    /// tenant cursor (round-robin fairness). FIFO within a tenant.
    /// Advances the cursor past the chosen tenant. Empty when idle.
    std::optional<Request> pop_seed();
    /// Removes up to `limit` queued requests satisfying `pred`, visiting
    /// tenants from the fairness cursor and FIFO within each tenant —
    /// how the scheduler fills a batch with requests compatible with its
    /// seed.
    std::vector<Request> take_matching(
        const std::function<bool(const Request &)> &pred,
        std::size_t limit);
    /// Returns a request popped this scheduling point back to the head
    /// of its tenant queue (un-dispatches it) — how the byte-budget
    /// scheduler closes a round whose remaining budget cannot hold the
    /// next seed even alone.
    void push_front(Request r);

    /// Projected HBM bytes of everything queued (sum of stamped
    /// footprint_bytes).
    std::uint64_t queued_bytes() const { return queued_bytes_; }

    /// WFQ feedback: the tenant's cumulative charged device time from
    /// the TenantLedger (absolute, not a delta — the Server pushes the
    /// ledger's running totals after every completed round). Ignored
    /// unless AdmissionConfig::wfq is set.
    void set_charged(const std::string &tenant, double device_us);

    const AdmissionStats &stats() const { return stats_; }

    // ---- Telemetry views (ISSUE 8) ----------------------------------
    /// Tenant names in fairness-rotation order (specs first, unknown
    /// tenants appended as they appear).
    const std::vector<std::string> &tenant_names() const
    {
        return tenant_names_;
    }
    /// Queued requests per tenant, parallel to tenant_names().
    std::vector<std::size_t> tenant_depths() const;
    /// Token-bucket fill per tenant, parallel to tenant_names().
    std::vector<double> bucket_fills() const;

  private:
    std::size_t tenant_index(const std::string &name);
    void note_depth();
    /// The shared depth/byte valves behind offer and reoffer (the token
    /// bucket is offer-only).
    AdmitDecision admit(Request r, std::size_t tenant);

    AdmissionConfig config_;
    std::vector<std::string> tenant_names_;
    std::vector<std::deque<Request>> queues_;  ///< Parallel to names.
    std::vector<TokenBucket> buckets_;         ///< Parallel to names.
    std::vector<double> weights_;              ///< WFQ weights, parallel.
    std::vector<double> charged_us_;           ///< WFQ debt, parallel.
    std::size_t cursor_ = 0;
    std::uint64_t queued_bytes_ = 0;
    AdmissionStats stats_;
};

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_ADMISSION_H_
