#ifndef MULTIGRAIN_SERVE_ADMISSION_H_
#define MULTIGRAIN_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/traffic.h"

/// Admission control and queueing for mgserve (ISSUE 4).
///
/// The queue is the loss valve of the serving layer: it is bounded, so
/// under overload requests are shed at the door (rejected) instead of
/// growing an unbounded backlog, and optionally aged out (timed out) when
/// they have waited past a configured bound — both with exact counters,
/// because a serving system that silently drops work is broken in a way
/// throughput numbers never show.
///
/// Fairness is per tenant: each tenant has its own FIFO, and the
/// scheduler-facing dequeue methods visit tenants from a rotating cursor,
/// so one tenant's burst cannot starve the others — it can only fill its
/// share of the bounded queue. Across tenant heads, dequeue order is
/// earliest-deadline-first (EDF), which is what makes the scheduler
/// SLO-aware: an interactive request overtakes queued batch work the
/// moment its tighter budget makes it more urgent.
namespace multigrain::serve {

struct AdmissionConfig {
    /// Global bound on queued requests across all tenants; offers beyond
    /// it are shed.
    std::size_t queue_capacity = 64;
    /// Maximum time a request may wait in the queue before it is dropped
    /// as timed out; 0 disables aging.
    double max_queue_wait_us = 0;
    /// Projected-HBM admission bound, bytes; 0 disables memory shedding.
    /// When set, an offer whose stamped footprint_bytes would push the
    /// queue's projected total past the bound is shed at the door with
    /// an exact counter (shed_memory) — the byte-budget analogue of the
    /// depth bound above.
    std::uint64_t hbm_budget_bytes = 0;
};

struct AdmissionStats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< All door sheds (depth or memory).
    /// Subset of `rejected`: shed because the queue's projected HBM
    /// bytes would exceed hbm_budget_bytes.
    std::uint64_t shed_memory = 0;
    std::uint64_t timed_out = 0;  ///< Aged out waiting.
    std::uint64_t dispatched = 0; ///< Handed to the scheduler.
    /// High-water mark of the total queue depth — never exceeds
    /// queue_capacity (asserted by tests/serve_test.cc through the serve
    /// metric registry).
    std::size_t max_depth = 0;
    /// High-water mark of the queue's projected HBM bytes.
    std::uint64_t max_queued_bytes = 0;
};

class AdmissionQueue {
  public:
    /// `tenants` fixes the fairness rotation order; requests from tenants
    /// not listed get their own FIFO appended in arrival order.
    AdmissionQueue(const AdmissionConfig &config,
                   std::vector<std::string> tenants);

    /// Admits `r` unless the queue is at capacity; false means shed.
    bool offer(Request r, double now_us);
    /// Removes and returns every queued request that has waited longer
    /// than max_queue_wait_us at `now_us` (empty when aging is off).
    std::vector<Request> expire(double now_us);

    std::size_t depth() const;
    bool empty() const { return depth() == 0; }

    /// Pops the next batch seed: among the tenant queue heads, the
    /// request with the earliest deadline, ties broken by the rotating
    /// tenant cursor (round-robin fairness). FIFO within a tenant.
    /// Advances the cursor past the chosen tenant. Empty when idle.
    std::optional<Request> pop_seed();
    /// Removes up to `limit` queued requests satisfying `pred`, visiting
    /// tenants from the fairness cursor and FIFO within each tenant —
    /// how the scheduler fills a batch with requests compatible with its
    /// seed.
    std::vector<Request> take_matching(
        const std::function<bool(const Request &)> &pred,
        std::size_t limit);
    /// Returns a request popped this scheduling point back to the head
    /// of its tenant queue (un-dispatches it) — how the byte-budget
    /// scheduler closes a round whose remaining budget cannot hold the
    /// next seed even alone.
    void push_front(Request r);

    /// Projected HBM bytes of everything queued (sum of stamped
    /// footprint_bytes).
    std::uint64_t queued_bytes() const { return queued_bytes_; }

    const AdmissionStats &stats() const { return stats_; }

  private:
    std::size_t tenant_index(const std::string &name);
    void note_depth();

    AdmissionConfig config_;
    std::vector<std::string> tenant_names_;
    std::vector<std::deque<Request>> queues_;  ///< Parallel to names.
    std::size_t cursor_ = 0;
    std::uint64_t queued_bytes_ = 0;
    AdmissionStats stats_;
};

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_ADMISSION_H_
