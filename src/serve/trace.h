#ifndef MULTIGRAIN_SERVE_TRACE_H_
#define MULTIGRAIN_SERVE_TRACE_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "gpusim/engine.h"
#include "serve/server.h"
#include "serve/traffic.h"

/// mgtrace: end-to-end request tracing for the serving layer (ISSUE 6).
///
/// mgserve's ServeReport says *how bad* the tail is; this layer says
/// *where the time went*. When tracing is enabled, the Server emits one
/// structured TraceEvent at every state transition a request goes
/// through — arrival, admission decision, batch formation, round
/// dispatch, device completion, or a terminal shed/age-out — each
/// stamped with the virtual serving clock and the stable
/// request/tenant/batch/round ids the rest of the system already uses.
/// Everything downstream is a pure function of the event log:
///
///  * spans_from_events() folds the log into per-request span timelines
///    whose boundary timestamps chain exactly (admission → queue →
///    batch-wait → device), so the components telescope to the
///    end-to-end latency by construction;
///  * build_trace_report() decomposes each SLO class's latency
///    percentiles into queue / batch-wait / pad / device components and
///    reconciles every derived number against the ServeReport the same
///    run produced — a disagreement means the instrumentation lies and
///    is reported as a validation failure (mgtrace exits 2);
///  * TraceLog's flight recorder keeps a bounded ring of the last N
///    rounds of events and, on an anomaly trigger (shed burst,
///    deadline-miss streak, empty-round stall), freezes it into a
///    self-contained incident that serializes to JSON and replays —
///    parse the dump, rebuild the spans, get byte-for-byte the same
///    answer the live log gives;
///  * write_serve_trace() renders the run as one correlated Perfetto
///    timeline: async request spans per tenant, batch-slot and round
///    lanes, serving counter tracks (queue depth, in-flight, sheds),
///    and — when per-round simulator capture is on — every round's
///    gpusim kernel replay overlaid at its dispatch offset via
///    sim::append_kernel_slices.
///
/// Tracing is off by default: the Server's hot loop guards every
/// emission behind a null check, and an untraced run is byte-identical
/// to a pre-trace one. Same (preset, seed, device) runs produce
/// byte-identical event logs — the property the determinism tests pin.
namespace multigrain::serve {

// ---- Events -------------------------------------------------------------

enum class TraceEventKind {
    kArrive = 0,     ///< Request issued by the traffic source.
    kAdmit,          ///< Admission accepted it into the tenant queue.
    kShed,           ///< Terminal: rejected at the door (queue/memory).
    kShedRateLimit,  ///< Terminal: shed by the tenant's token bucket.
    kAgeOut,         ///< Terminal: expired waiting past the queue bound.
    kBatchForm,      ///< Packed into a batch (one event per member).
    kRoundDispatch,  ///< A round of batches started on the device.
    kBatchDone,      ///< A batch's replay finished.
    kComplete,       ///< Terminal: request served (deadline_met in flag).
    kRoundDone,      ///< The round released the device.
};

const char *to_string(TraceEventKind kind);
/// Inverse of to_string; throws Error on an unknown name.
TraceEventKind trace_event_kind_by_name(const std::string &name);

/// One structured log record. Fields beyond (seq, kind, t_us) are
/// meaningful per kind and left defaulted otherwise; the serializer
/// emits only the meaningful ones, deterministically, so same-seed runs
/// write byte-identical logs.
struct TraceEvent {
    std::uint64_t seq = 0;  ///< Dense log position, assigned by TraceLog.
    TraceEventKind kind = TraceEventKind::kArrive;
    double t_us = 0;  ///< Virtual serving-clock timestamp.
    std::int64_t request = -1;
    std::int64_t batch = -1;
    std::int64_t round = -1;
    std::string tenant;  ///< kArrive.
    std::string model;   ///< kArrive, kBatchForm.
    int slo = -1;        ///< kArrive (SloClass as int).
    index_t valid_len = 0;      ///< kArrive.
    double deadline_us = 0;     ///< kArrive.
    index_t bucket = 0;         ///< kBatchForm.
    int planned_batch = 0;      ///< kBatchForm (padded plan size).
    int actual_batch = 0;       ///< kBatchForm members; kRoundDispatch batches.
    /// kRoundDispatch: projected HBM footprint of the round's plans
    /// (sum of each batch's MemPlan peak), bytes.
    std::uint64_t hbm_bytes = 0;
    bool flag = false;          ///< kComplete: deadline met.
};

/// One line of the JSONL event log (no trailing newline).
std::string event_to_json(const TraceEvent &event);
TraceEvent event_from_json(const JsonValue &doc);
void write_events_jsonl(const std::vector<TraceEvent> &events,
                        std::ostream &os);
std::vector<TraceEvent> events_from_jsonl(const std::string &text);

// ---- The log + flight recorder ------------------------------------------

struct TraceConfig {
    /// Keep the complete event log in memory (what mgtrace reads).
    /// false = flight-recorder-only: memory stays bounded by the ring.
    bool retain_full = true;
    /// Capture each round's gpusim SimResult for the Perfetto overlay.
    /// Off by default — it retains per-kernel stats for every round.
    bool capture_sim = false;
    /// Flight-recorder window: events of the last `ring_rounds` rounds.
    std::size_t ring_rounds = 8;
    /// Anomaly trigger: >= shed_burst sheds within shed_window_us.
    int shed_burst = 8;
    double shed_window_us = 1000;
    /// Anomaly trigger: this many consecutive completions that missed
    /// their deadline.
    int miss_streak = 4;
    /// Anomaly trigger: device idle for longer than this between rounds
    /// (an empty-round stall). 0 disables.
    double stall_us = 0;
    /// Anomaly trigger: this many consecutive offers shed by a token
    /// bucket (no admit or other shed in between) — a tenant hammering
    /// past its rate allowance. 0 disables.
    int ratelimit_streak = 6;
};

/// A frozen flight-recorder window: the trigger plus a copy of the ring
/// at the moment it fired.
struct Incident {
    /// "shed_burst" | "deadline_miss_streak" | "empty_round_stall" |
    /// "ratelimit_burst".
    std::string trigger;
    double t_us = 0;      ///< Serving-clock time of the trigger.
    std::string detail;   ///< Human-readable trigger context.
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    std::vector<TraceEvent> events;
};

/// Identity of the traced run, stamped into incidents and the report.
struct TraceRunInfo {
    std::string preset;
    std::string device;
    std::uint64_t seed = 0;
};

/// Self-contained "mgtrace.incident" v1 document: run identity, trigger,
/// thresholds, and the full event window — everything needed to rebuild
/// the spans with no access to the original process.
std::string incident_to_json(const Incident &incident,
                             const TraceRunInfo &info,
                             const TraceConfig &config);
/// Validates schema/version; throws Error on mismatch.
Incident incident_from_json(const JsonValue &doc);
Incident incident_from_json(const std::string &text);

class TraceLog {
  public:
    explicit TraceLog(TraceConfig config = {});

    const TraceConfig &config() const { return config_; }

    /// Appends one event: assigns the next seq, maintains the ring
    /// window, and runs the anomaly detectors (which may freeze an
    /// incident including this event).
    void record(TraceEvent event);

    /// Stores one round's simulator result for the Perfetto overlay
    /// (no-op unless config().capture_sim).
    void record_round_sim(std::int64_t round, double dispatch_us,
                          const sim::SimResult &result);

    /// The full log (empty when retain_full is off).
    const std::vector<TraceEvent> &events() const { return events_; }
    /// The current flight-recorder window (last ring_rounds rounds).
    const std::deque<TraceEvent> &ring() const { return ring_; }
    const std::vector<Incident> &incidents() const { return incidents_; }

    struct RoundSim {
        std::int64_t round = -1;
        double dispatch_us = 0;
        sim::SimResult result;
    };
    const std::vector<RoundSim> &round_sims() const { return round_sims_; }

  private:
    void detect(const TraceEvent &event);
    void fire(const char *trigger, double t_us, std::string detail);

    TraceConfig config_;
    std::uint64_t next_seq_ = 0;
    std::vector<TraceEvent> events_;
    std::deque<TraceEvent> ring_;
    /// seq of each retained kRoundDispatch, oldest first.
    std::deque<std::uint64_t> round_start_seqs_;
    std::vector<Incident> incidents_;
    std::vector<RoundSim> round_sims_;
    /// Detector state.
    std::deque<double> recent_shed_us_;
    int miss_run_ = 0;
    int ratelimit_run_ = 0;
    double last_round_done_us_ = -1;  ///< -1 until a round completes.
};

// ---- Spans --------------------------------------------------------------

/// One request's reconstructed timeline. The five boundaries are taken
/// verbatim from event timestamps (arrive <= admit <= batched <=
/// dispatched <= finish), so the four boundary components plus the
/// pad/compute split of device time telescope to latency_us() exactly.
/// Terminal outcomes collapse the unreached boundaries onto the
/// terminal time: a shed request has all five equal to its arrival; an
/// aged-out request spends everything after admit in queue_us().
struct RequestSpans {
    std::int64_t request = -1;
    std::string tenant;
    std::string model;
    int slo = 0;
    /// "completed" | "shed" | "rate_limited" | "aged_out".
    std::string outcome;
    bool deadline_met = true;
    index_t valid_len = 0;
    index_t bucket = 0;
    int planned_batch = 0;
    int actual_batch = 0;
    std::int64_t batch = -1;
    std::int64_t round = -1;

    double arrive_us = 0;
    double admit_us = 0;
    double batched_us = 0;
    double dispatched_us = 0;
    double finish_us = 0;
    /// Share of device time spent on padding (bucket slack + pow2 batch
    /// slack): device_us() * (1 - useful_tokens / planned work).
    double pad_us = 0;

    double admission_us() const { return admit_us - arrive_us; }
    double queue_us() const { return batched_us - admit_us; }
    double batch_wait_us() const { return dispatched_us - batched_us; }
    double device_us() const { return finish_us - dispatched_us; }
    double compute_us() const { return device_us() - pad_us; }
    double latency_us() const { return finish_us - arrive_us; }
};

/// Folds an event stream into per-request spans, sorted by request id.
/// Requests whose arrival lies outside the stream (possible in a
/// flight-recorder window) are skipped — a span without its arrival has
/// no defined latency. Throws Error on a malformed stream (e.g. a
/// completion for a request that was never batched).
std::vector<RequestSpans> spans_from_events(
    const std::vector<TraceEvent> &events);
std::vector<RequestSpans> spans_from_events(
    const std::deque<TraceEvent> &events);

// ---- SLO attribution report ---------------------------------------------

/// One latency figure decomposed into its span components. The
/// components sum to total_us (up to float rounding of the percentile
/// interpolation, bounded by the reconciliation tolerance).
struct SpanBreakdown {
    double total_us = 0;
    double admission_us = 0;
    double queue_us = 0;
    double batch_wait_us = 0;
    double pad_us = 0;
    double device_us = 0;  ///< Compute share (padding reported apart).
};

struct ClassAttribution {
    int slo = 0;
    std::size_t count = 0;  ///< Completed requests of this class.
    SpanBreakdown mean;
    SpanBreakdown p50;
    SpanBreakdown p95;
    SpanBreakdown p99;
};

/// Relative tolerance for reconciling trace-derived latencies against
/// ServeReport figures (both are doubles computed by the same formulas;
/// the slack only absorbs summation-order rounding).
inline constexpr double kReconcileRelTol = 1e-9;

struct TraceReport {
    TraceRunInfo info;
    std::size_t events = 0;
    std::size_t requests = 0;
    std::size_t completed = 0;
    std::size_t shed = 0;          ///< Depth/memory sheds.
    std::size_t rate_limited = 0;  ///< Token-bucket sheds.
    std::size_t aged_out = 0;
    std::size_t deadline_miss = 0;
    std::int64_t rounds = 0;
    ClassAttribution classes[kNumSloClasses];
    /// Trigger summaries of every incident the run froze (the event
    /// windows live in the separate incident documents).
    std::vector<Incident> incidents;
    /// Empty iff every span chains exactly and every derived figure
    /// matches the ServeReport. mgtrace turns a non-empty list into a
    /// ValidationError (exit 2).
    std::vector<std::string> reconcile_errors;

    bool reconciled() const { return reconcile_errors.empty(); }
};

/// Builds the attribution report from a finished run's log + report and
/// cross-checks every figure (span chaining, admission counters, class
/// counts, p50/p95/p99/mean/makespan). Never throws on mismatch — the
/// failures are collected in reconcile_errors so the CLI and tests can
/// show all of them.
TraceReport build_trace_report(const TraceLog &log,
                               const ServeReport &report,
                               const TraceRunInfo &info);

/// The validated "mgtrace.report" v1 JSON document (manifest-stamped).
std::string trace_report_json(const TraceReport &report);

// ---- Perfetto export ----------------------------------------------------

class TelemetryRecorder;  // serve/cost.h

struct ServeTraceOptions {
    /// Serving counter tracks: queue depth, in-flight requests,
    /// cumulative sheds.
    bool counters = true;
    /// Overlay each captured round's kernel replay (needs a TraceLog
    /// built with capture_sim).
    bool device_lanes = true;
    /// When set, the mgcost time-series samples are rendered as extra
    /// counter tracks ("tele.*": per-tenant queue depth and bucket fill,
    /// in-flight requests, round HBM watermark) beside the event-derived
    /// lanes above. Must outlive the export call.
    const TelemetryRecorder *telemetry = nullptr;
};

/// Renders the traced run as one Chrome/Perfetto timeline: async
/// request spans (grouped per tenant), batch-slot and round lanes, the
/// serving counter tracks, and the per-round gpusim replays under a
/// second process, all on the shared serving clock.
void write_serve_trace(const TraceLog &log, std::ostream &os,
                       const ServeTraceOptions &options);
std::string serve_trace_json(const TraceLog &log,
                             const ServeTraceOptions &options = {});
void write_serve_trace_file(const TraceLog &log, const std::string &path,
                            const ServeTraceOptions &options = {});

/// One replica's contribution to a fleet timeline (ISSUE 9). The label
/// (e.g. "r0") prefixes the replica's process names, counter tracks and
/// async categories so N replicas coexist in one Perfetto view; the
/// optional telemetry recorder overrides ServeTraceOptions::telemetry
/// for this replica only. Both pointers must outlive the export call.
struct FleetReplicaTrace {
    const TraceLog *log = nullptr;
    const TelemetryRecorder *telemetry = nullptr;
    std::string label;
};

/// Renders N replicas' event logs as one correlated timeline on the
/// shared cluster clock: replica k's serving lanes run under pid 2k and
/// its gpusim replays under pid 2k+1, every track name prefixed
/// "<label>.". A single-replica fleet with an empty label is
/// byte-identical to write_serve_trace of the same log.
void write_fleet_trace(const std::vector<FleetReplicaTrace> &replicas,
                       std::ostream &os,
                       const ServeTraceOptions &options = {});
std::string fleet_trace_json(const std::vector<FleetReplicaTrace> &replicas,
                             const ServeTraceOptions &options = {});
void write_fleet_trace_file(const std::vector<FleetReplicaTrace> &replicas,
                            const std::string &path,
                            const ServeTraceOptions &options = {});

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_TRACE_H_
