#ifndef MULTIGRAIN_SERVE_TRAFFIC_H_
#define MULTIGRAIN_SERVE_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/util.h"
#include "patterns/slice.h"

/// The request model and seeded synthetic traffic generators of the
/// mgserve serving layer (ISSUE 4).
///
/// A request is one inference call: a model, a sequence length, a tenant,
/// and an SLO class that fixes its latency budget. Traffic is generated
/// deterministically from a seed — either an open-loop Poisson arrival
/// process (the classic serving-benchmark shape: arrivals do not react to
/// the system, so queues grow under overload) or a closed loop of N
/// clients that each issue the next request only after the previous one
/// finishes (throughput-bound, self-throttling). Both processes draw
/// every random quantity from common/rng.h, so a (preset, seed) pair
/// replays the exact same request stream on every run — the property the
/// scheduler-determinism tests and the mgperf serving gate stand on.
namespace multigrain::serve {

/// Service classes, strictest first. The class sets the request's
/// deadline (arrival + budget) and thereby its EDF scheduling priority.
enum class SloClass { kInteractive = 0, kStandard = 1, kBatch = 2 };
inline constexpr int kNumSloClasses = 3;

const char *to_string(SloClass slo);

struct Request {
    std::uint64_t id = 0;
    std::string tenant;
    /// CLI model name ("tiny" | "qds" | ...), resolved through
    /// model_config_by_name when the scheduler builds plans.
    std::string model;
    SliceMode mode = SliceMode::kMultigrain;
    /// Requested (unpadded) sequence length; the scheduler buckets it.
    index_t valid_len = 0;
    double arrival_us = 0;
    SloClass slo = SloClass::kStandard;
    /// Absolute deadline; +infinity when the class carries no budget.
    double deadline_us = 0;
    /// Projected HBM footprint of serving this request alone (its
    /// bucketed single-request plan's peak_hbm_bytes across all layers).
    /// Stamped by the Server at ingest when an admission memory budget
    /// is configured; 0 = untracked.
    std::uint64_t footprint_bytes = 0;
};

enum class ArrivalProcess {
    kPoisson,     ///< Open loop, exponential interarrivals at rate_rps.
    kClosedLoop,  ///< `concurrency` clients, think_time_us between calls.
};

const char *to_string(ArrivalProcess process);

struct TenantSpec {
    std::string name;
    /// Relative share of generated requests.
    double weight = 1.0;
    SloClass slo = SloClass::kStandard;
    /// Token-bucket admission rate on the virtual serving clock,
    /// requests/s; 0 disables rate limiting for this tenant. Offers
    /// beyond the bucket are shed at the door with a distinct counter
    /// (AdmissionStats::shed_ratelimit).
    double rate_rps = 0;
    /// Token-bucket capacity (burst allowance), tokens. Only meaningful
    /// when rate_rps > 0; a full bucket admits `burst` back-to-back
    /// arrivals before the refill rate governs.
    double burst = 1;
};

struct TrafficConfig {
    ArrivalProcess arrivals = ArrivalProcess::kPoisson;
    double rate_rps = 100.0;    ///< Poisson arrival rate, requests/s.
    int concurrency = 4;        ///< Closed-loop client count.
    double think_time_us = 0;   ///< Closed-loop pause after a completion.
    int num_requests = 32;      ///< Total requests the source issues.
    std::uint64_t seed = 2022;
    /// Uniform model mix; every entry must resolve via
    /// model_config_by_name.
    std::vector<std::string> models = {"tiny"};
    /// Sequence-length range; max_len == 0 means the model's cap.
    index_t min_len = 1;
    index_t max_len = 0;
    std::vector<TenantSpec> tenants = {{"default", 1.0,
                                        SloClass::kStandard}};
    /// Latency budget per SLO class (indexed by SloClass), microseconds;
    /// 0 leaves that class without a deadline.
    double slo_budget_us[kNumSloClasses] = {0, 0, 0};
};

/// Deterministic request stream over a TrafficConfig. Poisson traffic is
/// fully pregenerated at construction; closed-loop traffic seeds one
/// request per client and schedules each client's next request when
/// on_completion() reports the previous one finished.
class TrafficSource {
  public:
    explicit TrafficSource(const TrafficConfig &config);

    /// Arrival time of the earliest pending request; +infinity when no
    /// request is pending (for a closed loop more may appear after the
    /// next on_completion).
    double peek_us() const;
    /// Removes and returns the earliest pending request (by arrival
    /// time, ids breaking ties). Requires peek_us() < infinity.
    Request pop();
    /// Closed-loop feedback: `r` finished at `finish_us`. Schedules the
    /// issuing client's next request at finish + think_time while the
    /// source has requests left to issue. No-op for Poisson traffic.
    void on_completion(const Request &r, double finish_us);

    /// Requests handed out so far (== num_requests when exhausted).
    int issued() const { return issued_; }
    bool exhausted() const;

  private:
    Request make_request(double arrival_us);

    TrafficConfig config_;
    Rng rng_;
    std::vector<index_t> model_caps_;  ///< Parallel to config_.models.
    double tenant_weight_total_ = 0;
    /// Pending arrivals, kept as a min-heap on (arrival_us, id).
    std::vector<Request> pending_;
    int issued_ = 0;
    int popped_ = 0;
};

}  // namespace multigrain::serve

#endif  // MULTIGRAIN_SERVE_TRAFFIC_H_
