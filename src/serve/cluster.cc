#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/error.h"
#include "profiler/export.h"
#include "serve/traffic.h"

namespace multigrain::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool
close_rel(double a, double b)
{
    return std::abs(a - b) <=
           kCostReconcileRelTol * std::max({1.0, std::abs(a), std::abs(b)});
}

/// One endpoint of a scripted fault, on the shared clock.
struct Transition {
    double t_us = 0;
    std::size_t replica = 0;
    bool down = false;
};

std::vector<Transition>
fault_transitions(const std::vector<ReplicaFault> &faults)
{
    std::vector<Transition> transitions;
    for (const ReplicaFault &f : faults) {
        transitions.push_back({f.down_us, f.replica, true});
        if (f.up_us < kInf) {
            transitions.push_back({f.up_us, f.replica, false});
        }
    }
    // Downs before ups at equal times so a fault window of zero length
    // still drains; replica index breaks the remaining ties.
    std::sort(transitions.begin(), transitions.end(),
              [](const Transition &a, const Transition &b) {
                  return std::tie(a.t_us, b.down, a.replica) <
                         std::tie(b.t_us, a.down, b.replica);
              });
    return transitions;
}

}  // namespace

// ---- Presets ------------------------------------------------------------

namespace {

/// Shared base of the fleet presets: the tiny traffic shape scaled up
/// to keep N replicas busy, with a generous (never-shedding) byte
/// budget so every request is priced — the least-bytes policy balances
/// on those footprints.
ClusterConfig
cluster_base(const char *name, std::size_t replicas,
             const std::string &device_cli_name)
{
    ClusterConfig c;
    c.preset = name;
    c.serve = serve_preset_by_name("tiny");
    c.serve.preset = name;
    c.serve.traffic.num_requests =
        static_cast<int>(64 * replicas);
    c.serve.admission.hbm_budget_bytes = 1ull << 30;  // Prices, never sheds.
    const sim::DeviceSpec device =
        sim::device_spec_by_name(device_cli_name);
    for (std::size_t k = 0; k < replicas; ++k) {
        c.devices.push_back(device);
        c.device_names.push_back(device_cli_name);
    }
    c.router_seed = c.serve.traffic.seed;
    return c;
}

}  // namespace

const std::vector<ClusterPresetInfo> &
cluster_presets()
{
    static const std::vector<ClusterPresetInfo> presets = {
        {"fleet2", "2 homogeneous replicas, round-robin routing"},
        {"fleet4",
         "4 homogeneous replicas, least-outstanding-bytes routing"},
        {"hetero",
         "a100 + rtx3090 pair, tenant-affinity routing (plan-cache "
         "locality)"},
        {"failover",
         "2 replicas, round-robin; replica 0 dies mid-run and its "
         "backlog reroutes"},
    };
    return presets;
}

ClusterConfig
cluster_preset_by_name(const std::string &name,
                       const std::string &device_cli_name)
{
    if (name == "fleet2") {
        return cluster_base("fleet2", 2, device_cli_name);
    }
    if (name == "fleet4") {
        ClusterConfig c = cluster_base("fleet4", 4, device_cli_name);
        c.serve.traffic.rate_rps = 40000;
        c.policy = RoutePolicy::kLeastBytes;
        return c;
    }
    if (name == "hetero") {
        ClusterConfig c = cluster_base("hetero", 2, "a100");
        c.devices[1] = sim::device_spec_by_name("rtx3090");
        c.device_names[1] = "rtx3090";
        c.policy = RoutePolicy::kTenantAffinity;
        return c;
    }
    if (name == "failover") {
        ClusterConfig c = cluster_base("failover", 2, device_cli_name);
        // Arrivals outpace the fleet early so replica 0 dies holding
        // real backlog (its queue drains through the router: the
        // self-tests assert rerouted > 0 and lost_in_flight > 0), then
        // it revives in time to absorb the tail.
        c.serve.traffic.rate_rps = 60000;
        c.faults.push_back({0, 1500.0, 4000.0});
        return c;
    }
    throw Error("unknown cluster preset \"" + name +
                "\" (fleet2|fleet4|hetero|failover)");
}

// ---- Cluster ------------------------------------------------------------

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      router_(config_.policy, config_.devices.size(),
              config_.router_seed)
{
    MG_CHECK(!config_.devices.empty())
        << "a cluster needs at least one replica";
    MG_CHECK(config_.device_names.size() == config_.devices.size())
        << "device_names must parallel devices";
    MG_CHECK(config_.serve.traffic.arrivals != ArrivalProcess::kClosedLoop)
        << "closed-loop traffic is not supported fleet-wide";
    for (const ReplicaFault &f : config_.faults) {
        MG_CHECK(f.replica < config_.devices.size())
            << "fault on unknown replica " << f.replica;
        MG_CHECK(f.down_us >= 0 && f.up_us > f.down_us)
            << "fault window must be ordered";
    }
    servers_.reserve(config_.devices.size());
    for (const sim::DeviceSpec &device : config_.devices) {
        servers_.emplace_back(config_.serve, device);
    }
}

void
Cluster::set_trace(std::size_t replica, TraceLog *trace)
{
    MG_CHECK(replica < servers_.size()) << "no replica " << replica;
    servers_[replica].set_trace(trace);
}

void
Cluster::set_telemetry(std::size_t replica, TelemetryRecorder *telemetry)
{
    MG_CHECK(replica < servers_.size()) << "no replica " << replica;
    servers_[replica].set_telemetry(telemetry);
}

std::vector<ReplicaView>
Cluster::views() const
{
    std::vector<ReplicaView> v;
    v.reserve(servers_.size());
    for (const Server &s : servers_) {
        v.push_back({!s.down(), s.outstanding_bytes()});
    }
    return v;
}

ClusterReport
Cluster::run()
{
    MG_CHECK(!ran_) << "Cluster::run may be called once";
    ran_ = true;

    const PlanCacheStats cache_before = PlanCache::instance().stats();
    for (Server &s : servers_) {
        s.begin();
    }
    TrafficSource source(config_.serve.traffic);
    const std::vector<Transition> transitions =
        fault_transitions(config_.faults);
    std::size_t next_transition = 0;

    double now = 0;
    for (;;) {
        // Fault transitions due first: a kill at this timestamp drains
        // before the timestamp's arrivals are placed, so the reroutes
        // and the arrivals see the same fleet state. (A round completing
        // exactly at the fault time already completed on the previous
        // clock advance — the fault truncates strictly running work.)
        while (next_transition < transitions.size() &&
               transitions[next_transition].t_us <= now) {
            const Transition &tr = transitions[next_transition++];
            if (tr.down) {
                std::vector<Request> drained =
                    servers_[tr.replica].kill(now);
                for (Request &r : drained) {
                    const int target = router_.reroute(r, views());
                    if (target >= 0) {
                        servers_[static_cast<std::size_t>(target)]
                            .reingest(std::move(r), now);
                    }
                }
            } else {
                servers_[tr.replica].revive();
            }
        }
        // Ingest every arrival due by now through the router; a fleet
        // with no replica alive sheds at the router with its own
        // counter (no replica ledger ever saw the request).
        while (source.peek_us() <= now) {
            Request r = source.pop();
            const int target = router_.route(r, views());
            if (target >= 0) {
                servers_[static_cast<std::size_t>(target)].ingest(
                    std::move(r), now);
            }
        }
        for (Server &s : servers_) {
            s.expire(now);
        }
        // Every eligible idle replica starts a round, in index order —
        // the fleet analogue of the single-server dispatch step.
        for (Server &s : servers_) {
            if (s.can_dispatch()) {
                s.dispatch(now);
            }
        }
        for (Server &s : servers_) {
            s.observe(now);
        }

        double next = source.peek_us();
        for (const Server &s : servers_) {
            next = std::min(next, s.busy_until());
        }
        if (next_transition < transitions.size()) {
            next = std::min(next, transitions[next_transition].t_us);
        }
        if (next == kInf) {
            break;
        }
        now = next;
        for (Server &s : servers_) {
            if (s.busy() && now >= s.busy_until()) {
                s.complete(source);
            }
        }
    }
    MG_CHECK(source.exhausted())
        << "cluster loop ended with arrivals pending";
    for (const Server &s : servers_) {
        MG_CHECK(!s.busy()) << "cluster loop ended with a round running";
    }

    // ---- Reduce the fleet ---------------------------------------------
    ClusterReport report;
    report.preset = config_.preset;
    report.policy = config_.policy;
    report.device_names = config_.device_names;
    report.faults = config_.faults;
    report.router = router_.stats();
    report.arrivals = static_cast<std::uint64_t>(source.issued());
    report.replicas.reserve(servers_.size());
    for (Server &s : servers_) {
        report.replicas.push_back(s.finish(now));
    }

    std::vector<double> latencies;
    std::vector<double> by_class[kNumSloClasses];
    double first_arrival = kInf;
    double last_finish = 0;
    for (const ServeReport &rep : report.replicas) {
        report.completed += rep.completed;
        report.deadline_miss += rep.deadline_miss;
        report.rejected += rep.admission.rejected;
        report.timed_out += rep.admission.timed_out;
        report.lost_in_flight += rep.lost_in_flight;
        report.rounds += rep.rounds;
        report.busy_us += rep.busy_us;
        for (const RequestRecord &rec : rep.records) {
            if (rec.outcome != RequestRecord::Outcome::kCompleted) {
                continue;
            }
            latencies.push_back(rec.latency_us());
            by_class[static_cast<int>(rec.request.slo)].push_back(
                rec.latency_us());
            first_arrival =
                std::min(first_arrival, rec.request.arrival_us);
            last_finish = std::max(last_finish, rec.finish_us);
        }
    }
    report.latency = prof::summarize_latencies(std::move(latencies));
    for (int c = 0; c < kNumSloClasses; ++c) {
        report.latency_by_class[c] =
            prof::summarize_latencies(std::move(by_class[c]));
    }
    if (report.completed > 0) {
        report.makespan_us = last_finish - first_arrival;
    }
    if (report.makespan_us > 0) {
        report.throughput_rps = static_cast<double>(report.completed) /
                                (report.makespan_us / 1e6);
    }
    report.replica_util.reserve(report.replicas.size());
    double util_min = kInf;
    double util_max = 0;
    for (const ServeReport &rep : report.replicas) {
        const double util =
            report.makespan_us > 0
                ? std::min(1.0, rep.busy_us / report.makespan_us)
                : 0.0;
        report.replica_util.push_back(util);
        util_min = std::min(util_min, util);
        util_max = std::max(util_max, util);
    }
    report.util_skew =
        report.replicas.empty() ? 0.0 : util_max - util_min;
    report.cost = merge_replica_costs(report.replicas);
    report.plan_cache =
        stats_delta(cache_before, PlanCache::instance().stats());
    return report;
}

// ---- Fleet ledger merge -------------------------------------------------

CostReport
merge_replica_costs(const std::vector<ServeReport> &replicas)
{
    CostReport merged;
    std::vector<std::vector<double>> latencies;
    const auto index_of = [&merged,
                           &latencies](const std::string &tenant) {
        for (std::size_t i = 0; i < merged.tenants.size(); ++i) {
            if (merged.tenants[i].tenant == tenant) {
                return i;
            }
        }
        merged.tenants.emplace_back();
        merged.tenants.back().tenant = tenant;
        latencies.emplace_back();
        return merged.tenants.size() - 1;
    };
    for (const ServeReport &rep : replicas) {
        merged.rounds += rep.cost.rounds;
        merged.busy_us += rep.cost.busy_us;
        merged.charged_device_us += rep.cost.charged_device_us;
        merged.charged_queue_us += rep.cost.charged_queue_us;
        merged.charged_hbm_byte_us += rep.cost.charged_hbm_byte_us;
        for (const TenantCost &t : rep.cost.tenants) {
            TenantCost &into = merged.tenants[index_of(t.tenant)];
            add_cell(into.total, t.total);
            for (int c = 0; c < kNumSloClasses; ++c) {
                add_cell(into.by_class[c], t.by_class[c]);
            }
        }
        for (const RequestRecord &rec : rep.records) {
            if (rec.outcome != RequestRecord::Outcome::kCompleted) {
                continue;
            }
            latencies[index_of(rec.request.tenant)].push_back(
                rec.latency_us());
        }
    }
    for (std::size_t i = 0; i < merged.tenants.size(); ++i) {
        merged.tenants[i].latency =
            prof::summarize_latencies(std::move(latencies[i]));
    }
    return merged;
}

// ---- Reconciliation -----------------------------------------------------

std::vector<std::string>
reconcile_cluster(const ClusterReport &report)
{
    std::vector<std::string> errors;
    const auto check = [&errors](bool ok, const std::string &msg) {
        if (!ok) {
            errors.push_back(msg);
        }
    };
    const auto mismatch = [](const std::string &what, double got,
                             double want) {
        std::ostringstream os;
        os << what << ": report says " << got << ", re-derived " << want;
        return os.str();
    };

    const std::size_t n = report.replicas.size();
    const RouterStats &router = report.router;
    check(router.per_replica.size() == n,
          "router per-replica counters do not match the replica count");

    // ---- Per-replica ledgers + the router's placement counters -------
    std::uint64_t offered = 0;
    std::uint64_t drained = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_miss = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t lost = 0;
    int rounds = 0;
    double busy = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const ServeReport &rep = report.replicas[k];
        const std::string prefix =
            "replica " + std::to_string(k) + ": ";
        for (const std::string &e : reconcile_cost(rep.cost, rep)) {
            errors.push_back(prefix + e);
        }
        if (k < router.per_replica.size()) {
            check(router.per_replica[k] == rep.admission.offered,
                  mismatch(prefix + "router placements vs offered",
                           static_cast<double>(router.per_replica[k]),
                           static_cast<double>(rep.admission.offered)));
        }
        offered += rep.admission.offered;
        drained += rep.admission.drained;
        completed += rep.completed;
        deadline_miss += rep.deadline_miss;
        rejected += rep.admission.rejected;
        timed_out += rep.admission.timed_out;
        lost += rep.lost_in_flight;
        rounds += rep.rounds;
        busy += rep.busy_us;
    }

    // ---- The fleet conservation telescope -----------------------------
    // Arrivals split at the router, offers split at each replica, and
    // drains come back through the router: the three identities chain
    // into arrivals == terminal outcomes + failover sheds.
    check(report.arrivals == router.routed + router.shed_arrivals,
          mismatch("arrivals vs routed + shed_arrivals",
                   static_cast<double>(report.arrivals),
                   static_cast<double>(router.routed +
                                       router.shed_arrivals)));
    check(offered == router.routed + router.rerouted,
          mismatch("fleet offered vs routed + rerouted",
                   static_cast<double>(offered),
                   static_cast<double>(router.routed + router.rerouted)));
    check(drained == router.rerouted + router.shed_reroutes,
          mismatch("fleet drained vs rerouted + shed_reroutes",
                   static_cast<double>(drained),
                   static_cast<double>(router.rerouted +
                                       router.shed_reroutes)));
    check(report.arrivals == completed + rejected + timed_out + lost +
                                 router.failover_sheds(),
          mismatch("fleet conservation (arrivals vs outcomes)",
                   static_cast<double>(report.arrivals),
                   static_cast<double>(completed + rejected + timed_out +
                                       lost + router.failover_sheds())));

    // ---- Fleet aggregates re-derived from the replica reports ---------
    check(report.completed == completed,
          mismatch("completed", static_cast<double>(report.completed),
                   static_cast<double>(completed)));
    check(report.deadline_miss == deadline_miss,
          mismatch("deadline_miss",
                   static_cast<double>(report.deadline_miss),
                   static_cast<double>(deadline_miss)));
    check(report.rejected == rejected,
          mismatch("rejected", static_cast<double>(report.rejected),
                   static_cast<double>(rejected)));
    check(report.timed_out == timed_out,
          mismatch("timed_out", static_cast<double>(report.timed_out),
                   static_cast<double>(timed_out)));
    check(report.lost_in_flight == lost,
          mismatch("lost_in_flight",
                   static_cast<double>(report.lost_in_flight),
                   static_cast<double>(lost)));
    check(report.rounds == rounds,
          mismatch("rounds", static_cast<double>(report.rounds),
                   static_cast<double>(rounds)));
    check(close_rel(report.busy_us, busy),
          mismatch("busy_us", report.busy_us, busy));
    check(report.latency.count == report.completed,
          mismatch("fleet latency samples",
                   static_cast<double>(report.latency.count),
                   static_cast<double>(report.completed)));

    double first_arrival = kInf;
    double last_finish = 0;
    for (const ServeReport &rep : report.replicas) {
        for (const RequestRecord &rec : rep.records) {
            if (rec.outcome != RequestRecord::Outcome::kCompleted) {
                continue;
            }
            first_arrival =
                std::min(first_arrival, rec.request.arrival_us);
            last_finish = std::max(last_finish, rec.finish_us);
        }
    }
    const double want_makespan =
        completed > 0 ? last_finish - first_arrival : 0.0;
    check(close_rel(report.makespan_us, want_makespan),
          mismatch("makespan_us", report.makespan_us, want_makespan));
    const double want_throughput =
        want_makespan > 0
            ? static_cast<double>(completed) / (want_makespan / 1e6)
            : 0.0;
    check(close_rel(report.throughput_rps, want_throughput),
          mismatch("throughput_rps", report.throughput_rps,
                   want_throughput));
    check(report.replica_util.size() == n,
          "replica_util does not match the replica count");
    double util_min = n > 0 ? kInf : 0.0;
    double util_max = 0;
    for (std::size_t k = 0; k < n && k < report.replica_util.size();
         ++k) {
        const double want =
            want_makespan > 0
                ? std::min(1.0,
                           report.replicas[k].busy_us / want_makespan)
                : 0.0;
        check(close_rel(report.replica_util[k], want),
              mismatch("replica " + std::to_string(k) + " util",
                       report.replica_util[k], want));
        util_min = std::min(util_min, want);
        util_max = std::max(util_max, want);
    }
    check(close_rel(report.util_skew,
                    n > 0 ? util_max - util_min : 0.0),
          mismatch("util_skew", report.util_skew,
                   n > 0 ? util_max - util_min : 0.0));

    // ---- The merged ledger equals the per-replica sum -----------------
    const CostReport want = merge_replica_costs(report.replicas);
    check(report.cost.rounds == want.rounds,
          mismatch("merged rounds",
                   static_cast<double>(report.cost.rounds),
                   static_cast<double>(want.rounds)));
    check(close_rel(report.cost.busy_us, want.busy_us),
          mismatch("merged busy_us", report.cost.busy_us, want.busy_us));
    check(close_rel(report.cost.charged_device_us,
                    want.charged_device_us),
          mismatch("merged charged device", report.cost.charged_device_us,
                   want.charged_device_us));
    check(close_rel(report.cost.charged_queue_us, want.charged_queue_us),
          mismatch("merged charged queue", report.cost.charged_queue_us,
                   want.charged_queue_us));
    check(close_rel(report.cost.charged_hbm_byte_us,
                    want.charged_hbm_byte_us),
          mismatch("merged charged HBM byte-time",
                   report.cost.charged_hbm_byte_us,
                   want.charged_hbm_byte_us));
    check(report.cost.tenants.size() == want.tenants.size(),
          "merged ledger tenant count does not match the replica sum");
    for (std::size_t i = 0;
         i < report.cost.tenants.size() && i < want.tenants.size();
         ++i) {
        const TenantCost &got_t = report.cost.tenants[i];
        const TenantCost &want_t = want.tenants[i];
        const std::string label = "merged tenant " + got_t.tenant;
        check(got_t.tenant == want_t.tenant,
              label + ": order differs from the replica sum");
        check(got_t.total.completed == want_t.total.completed &&
                  got_t.total.offered() == want_t.total.offered() &&
                  got_t.total.deadline_miss ==
                      want_t.total.deadline_miss,
              label + ": counters do not sum across replicas");
        check(close_rel(got_t.total.device_us(),
                        want_t.total.device_us()) &&
                  close_rel(got_t.total.queue_us, want_t.total.queue_us) &&
                  close_rel(got_t.total.hbm_byte_us,
                            want_t.total.hbm_byte_us),
              label + ": charges do not sum across replicas");
        check(got_t.latency.count == got_t.total.completed,
              label + ": latency samples vs completed");
        for (int c = 0; c < kNumSloClasses; ++c) {
            check(got_t.by_class[c].offered() ==
                          want_t.by_class[c].offered() &&
                      close_rel(got_t.by_class[c].device_us(),
                                want_t.by_class[c].device_us()),
                  label + ": class " +
                      to_string(static_cast<SloClass>(c)) +
                      " cell does not sum across replicas");
        }
    }
    return errors;
}

void
perturb_router_counter(ClusterReport &report, std::int64_t offset)
{
    report.router.rerouted = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(report.router.rerouted) + offset);
}

// ---- Report document ----------------------------------------------------

namespace {

void
write_latency(JsonWriter &w, const prof::LatencySummary &s)
{
    w.begin_object();
    w.field("count", static_cast<std::int64_t>(s.count));
    w.field("mean_us", s.mean);
    w.field("p50_us", s.p50);
    w.field("p95_us", s.p95);
    w.field("p99_us", s.p99);
    w.field("max_us", s.max);
    w.end_object();
}

}  // namespace

std::string
cluster_report_json(const ClusterReport &report,
                    const ClusterRunInfo &info,
                    const std::vector<std::string> &errors,
                    const prof::RunManifest &manifest)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.begin_object();
        w.field("schema", prof::kClusterReportSchema);
        w.field("schema_version", prof::kClusterReportVersion);
        w.key("manifest");
        prof::write_manifest(w, manifest);
        w.field("preset", info.preset);
        w.field("device", info.device);
        w.field("policy", to_string(report.policy));
        w.field("seed", static_cast<std::int64_t>(info.seed));
        w.field("replicas", static_cast<std::int64_t>(
                                report.replicas.size()));

        w.key("fleet");
        w.begin_object();
        w.field("arrivals", static_cast<std::int64_t>(report.arrivals));
        w.field("completed",
                static_cast<std::int64_t>(report.completed));
        w.field("deadline_miss",
                static_cast<std::int64_t>(report.deadline_miss));
        w.field("rejected", static_cast<std::int64_t>(report.rejected));
        w.field("timed_out",
                static_cast<std::int64_t>(report.timed_out));
        w.field("lost_in_flight",
                static_cast<std::int64_t>(report.lost_in_flight));
        w.field("failover_sheds", static_cast<std::int64_t>(
                                      report.router.failover_sheds()));
        w.field("rounds", report.rounds);
        w.field("makespan_us", report.makespan_us);
        w.field("busy_us", report.busy_us);
        w.field("throughput_rps", report.throughput_rps);
        w.field("util_skew", report.util_skew);
        w.key("latency");
        write_latency(w, report.latency);
        w.key("latency_by_class");
        w.begin_array();
        for (int c = 0; c < kNumSloClasses; ++c) {
            w.begin_object();
            w.field("class", to_string(static_cast<SloClass>(c)));
            w.key("latency");
            write_latency(w, report.latency_by_class[c]);
            w.end_object();
        }
        w.end_array();
        w.end_object();

        w.key("router");
        w.begin_object();
        w.field("policy", to_string(report.policy));
        w.field("routed",
                static_cast<std::int64_t>(report.router.routed));
        w.field("rerouted",
                static_cast<std::int64_t>(report.router.rerouted));
        w.field("shed_arrivals", static_cast<std::int64_t>(
                                     report.router.shed_arrivals));
        w.field("shed_reroutes", static_cast<std::int64_t>(
                                     report.router.shed_reroutes));
        w.field("affinity_repins", static_cast<std::int64_t>(
                                       report.router.affinity_repins));
        w.key("per_replica");
        w.begin_array();
        for (const std::uint64_t c : report.router.per_replica) {
            w.value(static_cast<std::int64_t>(c));
        }
        w.end_array();
        w.end_object();

        w.key("faults");
        w.begin_array();
        for (const ReplicaFault &f : report.faults) {
            w.begin_object();
            w.field("replica", static_cast<std::int64_t>(f.replica));
            w.field("down_us", f.down_us);
            w.field("up_us", f.up_us);  // null when permanent.
            w.end_object();
        }
        w.end_array();

        w.key("replica_reports");
        w.begin_array();
        for (std::size_t k = 0; k < report.replicas.size(); ++k) {
            const ServeReport &rep = report.replicas[k];
            w.begin_object();
            w.field("replica", static_cast<std::int64_t>(k));
            w.field("device", k < report.device_names.size()
                                  ? report.device_names[k]
                                  : rep.device);
            w.field("offered", static_cast<std::int64_t>(
                                   rep.admission.offered));
            w.field("admitted", static_cast<std::int64_t>(
                                    rep.admission.admitted));
            w.field("completed",
                    static_cast<std::int64_t>(rep.completed));
            w.field("rejected", static_cast<std::int64_t>(
                                    rep.admission.rejected));
            w.field("timed_out", static_cast<std::int64_t>(
                                     rep.admission.timed_out));
            w.field("drained", static_cast<std::int64_t>(
                                   rep.admission.drained));
            w.field("lost_in_flight",
                    static_cast<std::int64_t>(rep.lost_in_flight));
            w.field("rounds", rep.rounds);
            w.field("busy_us", rep.busy_us);
            w.field("util",
                    k < report.replica_util.size()
                        ? report.replica_util[k]
                        : 0.0);
            w.key("latency");
            write_latency(w, rep.latency);
            w.end_object();
        }
        w.end_array();

        w.key("plan_cache");
        w.begin_object();
        w.field("hits",
                static_cast<std::int64_t>(report.plan_cache.hits));
        w.field("misses",
                static_cast<std::int64_t>(report.plan_cache.misses));
        w.field("evictions",
                static_cast<std::int64_t>(report.plan_cache.evictions));
        w.end_object();

        w.key("tenants");
        w.begin_array();
        for (const TenantCost &t : report.cost.tenants) {
            w.begin_object();
            w.field("tenant", t.tenant);
            write_cost_cell(w, t.total, report.cost.busy_us);
            w.key("latency");
            write_latency(w, t.latency);
            w.end_object();
        }
        w.end_array();

        w.field("conserved", errors.empty());
        w.key("reconcile_errors");
        w.begin_array();
        for (const std::string &e : errors) {
            w.value(e);
        }
        w.end_array();
        w.end_object();
    }
    return os.str();
}

std::string
cluster_report_json(const ClusterReport &report,
                    const ClusterRunInfo &info,
                    const std::vector<std::string> &errors)
{
    return cluster_report_json(report, info, errors,
                               prof::RunManifest::collect(info.device));
}

}  // namespace multigrain::serve
