#ifndef MULTIGRAIN_COMMON_GITINFO_H_
#define MULTIGRAIN_COMMON_GITINFO_H_

#include <string>

/// Best-effort identification of the source revision a binary was run
/// from, so benchmark artifacts can be pinned to a commit (the mgperf
/// RunManifest). Resolution order:
///
///   1. `MULTIGRAIN_GIT_SHA` / `MULTIGRAIN_GIT_DIRTY` environment
///      variables (CI and tests set these to pin or fake a revision);
///   2. `git rev-parse HEAD` + `git status --porcelain` run in the
///      process working directory;
///   3. the graceful fallback: sha "unknown", not dirty, known == false.
///
/// The lookup runs once per process and is cached; it never throws.
namespace multigrain {

struct GitInfo {
    std::string sha = "unknown";
    bool dirty = false;
    /// False when neither the env override nor git could name a revision.
    bool known = false;
};

/// The cached process-wide revision info (first call resolves it).
const GitInfo &git_info();

/// Uncached resolution (tests that flip the env overrides).
GitInfo resolve_git_info();

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_GITINFO_H_
