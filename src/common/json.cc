#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/error.h"

namespace multigrain {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::~JsonWriter()
{
    // Unbalanced begin/end is a programming error, but destructors must
    // not throw; exporters always close their scopes explicitly.
}

void
JsonWriter::separator()
{
    if (stack_.empty()) {
        return;
    }
    if (stack_.back() == Scope::kObject) {
        MG_CHECK(pending_key_) << "JSON value inside object without a key";
        pending_key_ = false;
        return;
    }
    if (!first_.back()) {
        os_ << ",";
    }
    first_.back() = false;
}

void
JsonWriter::begin_object()
{
    separator();
    os_ << "{";
    stack_.push_back(Scope::kObject);
    first_.push_back(true);
}

void
JsonWriter::end_object()
{
    MG_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
        << "unbalanced end_object";
    MG_CHECK(!pending_key_) << "dangling key at end_object";
    os_ << "}";
    stack_.pop_back();
    first_.pop_back();
}

void
JsonWriter::begin_array()
{
    separator();
    os_ << "[";
    stack_.push_back(Scope::kArray);
    first_.push_back(true);
}

void
JsonWriter::end_array()
{
    MG_CHECK(!stack_.empty() && stack_.back() == Scope::kArray)
        << "unbalanced end_array";
    os_ << "]";
    stack_.pop_back();
    first_.pop_back();
}

void
JsonWriter::key(const std::string &k)
{
    MG_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
        << "JSON key outside an object";
    MG_CHECK(!pending_key_) << "two keys in a row";
    if (!first_.back()) {
        os_ << ",";
    }
    first_.back() = false;
    os_ << "\"" << json_escape(k) << "\":";
    pending_key_ = true;
}

void
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        os_ << "null";
        return;
    }
    char buf[32];
    // %.17g round-trips doubles exactly; trim to %g-style compactness
    // first and fall back when re-parsing would lose bits.
    std::snprintf(buf, sizeof buf, "%.12g", v);
    if (std::strtod(buf, nullptr) != v) {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    os_ << buf;
}

void
JsonWriter::value(std::int64_t v)
{
    separator();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    separator();
    os_ << "\"" << json_escape(v) << "\"";
}

void
JsonWriter::null()
{
    separator();
    os_ << "null";
}

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::kObject) {
        return nullptr;
    }
    for (const auto &[key, value] : object) {
        if (key == k) {
            return &value;
        }
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &k) const
{
    const JsonValue *v = find(k);
    MG_CHECK(v != nullptr) << "JSON object has no member \"" << k << "\"";
    return *v;
}

double
JsonValue::as_number() const
{
    MG_CHECK(type == Type::kNumber) << "JSON value is not a number";
    return number;
}

const std::string &
JsonValue::as_string() const
{
    MG_CHECK(type == Type::kString) << "JSON value is not a string";
    return string;
}

bool
JsonValue::as_bool() const
{
    MG_CHECK(type == Type::kBool) << "JSON value is not a bool";
    return boolean;
}

namespace {

/// Recursive-descent parser over a raw character range.
class Parser {
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    JsonValue parse_document()
    {
        JsonValue v = parse_value();
        skip_ws();
        MG_CHECK(p_ == end_) << "trailing garbage after JSON document";
        return v;
    }

  private:
    void skip_ws()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r')) {
            ++p_;
        }
    }

    char peek()
    {
        skip_ws();
        MG_CHECK(p_ != end_) << "unexpected end of JSON input";
        return *p_;
    }

    void expect(char c)
    {
        MG_CHECK(peek() == c)
            << "expected '" << c << "' in JSON, got '" << *p_ << "'";
        ++p_;
    }

    bool consume_literal(const char *lit)
    {
        const char *q = p_;
        for (const char *l = lit; *l; ++l, ++q) {
            if (q == end_ || *q != *l) {
                return false;
            }
        }
        p_ = q;
        return true;
    }

    std::string parse_string_body()
    {
        expect('"');
        std::string out;
        while (true) {
            MG_CHECK(p_ != end_) << "unterminated JSON string";
            const char c = *p_++;
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                MG_CHECK(static_cast<unsigned char>(c) >= 0x20)
                    << "raw control character in JSON string";
                out += c;
                continue;
            }
            MG_CHECK(p_ != end_) << "unterminated escape in JSON string";
            const char e = *p_++;
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                MG_CHECK(end_ - p_ >= 4) << "truncated \\u escape";
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code += static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code += static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code += static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        MG_CHECK(false) << "bad hex digit in \\u escape";
                    }
                }
                // UTF-8 encode (surrogate pairs unsupported — the
                // writer never emits them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                MG_CHECK(false) << "bad escape '\\" << e << "' in JSON";
            }
        }
    }

    JsonValue parse_value()
    {
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            ++p_;
            v.type = JsonValue::Type::kObject;
            if (peek() == '}') {
                ++p_;
                return v;
            }
            while (true) {
                skip_ws();
                std::string key = parse_string_body();
                expect(':');
                v.object.emplace_back(std::move(key), parse_value());
                const char sep = peek();
                ++p_;
                if (sep == '}') {
                    return v;
                }
                MG_CHECK(sep == ',')
                    << "expected ',' or '}' in JSON object";
            }
        }
        if (c == '[') {
            ++p_;
            v.type = JsonValue::Type::kArray;
            if (peek() == ']') {
                ++p_;
                return v;
            }
            while (true) {
                v.array.push_back(parse_value());
                const char sep = peek();
                ++p_;
                if (sep == ']') {
                    return v;
                }
                MG_CHECK(sep == ',')
                    << "expected ',' or ']' in JSON array";
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::kString;
            v.string = parse_string_body();
            return v;
        }
        skip_ws();
        if (consume_literal("null")) {
            v.type = JsonValue::Type::kNull;
            return v;
        }
        if (consume_literal("true")) {
            v.type = JsonValue::Type::kBool;
            v.boolean = true;
            return v;
        }
        if (consume_literal("false")) {
            v.type = JsonValue::Type::kBool;
            v.boolean = false;
            return v;
        }
        // Number.
        const char *start = p_;
        if (p_ != end_ && *p_ == '-') {
            ++p_;
        }
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) ||
                *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                *p_ == '-')) {
            ++p_;
        }
        MG_CHECK(p_ != start) << "invalid JSON value";
        const std::string text(start, p_);
        char *parse_end = nullptr;
        v.type = JsonValue::Type::kNumber;
        v.number = std::strtod(text.c_str(), &parse_end);
        MG_CHECK(parse_end == text.c_str() + text.size())
            << "malformed JSON number \"" << text << "\"";
        return v;
    }

    const char *p_;
    const char *end_;
};

}  // namespace

JsonValue
json_parse(const std::string &text)
{
    Parser parser(text.data(), text.data() + text.size());
    return parser.parse_document();
}

}  // namespace multigrain
