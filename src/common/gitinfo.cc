#include "common/gitinfo.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace multigrain {

namespace {

/// Runs `command`, returning its first output line (trimmed) or "" when
/// the command fails or prints nothing.
std::string
first_line_of(const char *command)
{
#if defined(_WIN32)
    (void)command;
    return "";
#else
    std::FILE *pipe = ::popen(command, "r");
    if (pipe == nullptr) {
        return "";
    }
    char buffer[256];
    std::string line;
    if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
        line = buffer;
    }
    const int status = ::pclose(pipe);
    if (status != 0) {
        return "";
    }
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ')) {
        line.pop_back();
    }
    return line;
#endif
}

bool
looks_like_sha(const std::string &s)
{
    if (s.size() < 7 || s.size() > 64) {
        return false;
    }
    for (const char c : s) {
        if (std::strchr("0123456789abcdefABCDEF", c) == nullptr) {
            return false;
        }
    }
    return true;
}

}  // namespace

GitInfo
resolve_git_info()
{
    GitInfo info;
    if (const char *sha = std::getenv("MULTIGRAIN_GIT_SHA");
        sha != nullptr && *sha != '\0') {
        info.sha = sha;
        info.known = true;
        if (const char *dirty = std::getenv("MULTIGRAIN_GIT_DIRTY")) {
            info.dirty = std::strcmp(dirty, "0") != 0 && *dirty != '\0';
        }
        return info;
    }

    const std::string sha =
        first_line_of("git rev-parse HEAD 2>/dev/null");
    if (!looks_like_sha(sha)) {
        return info;  // The graceful "unknown" fallback.
    }
    info.sha = sha;
    info.known = true;
    // Any tracked-file change marks the run dirty; untracked files (build
    // outputs, artifacts) do not.
    const std::string status = first_line_of(
        "git status --porcelain --untracked-files=no 2>/dev/null");
    info.dirty = !status.empty();
    return info;
}

const GitInfo &
git_info()
{
    static const GitInfo info = resolve_git_info();
    return info;
}

}  // namespace multigrain
