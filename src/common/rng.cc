#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"

namespace multigrain {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_) {
        word = splitmix64(sm);
    }
}

std::uint64_t
Rng::next_u64()
{
    // xoshiro256** step.
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    MG_CHECK(bound > 0) << "next_below requires a positive bound";
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

std::int64_t
Rng::next_range(std::int64_t lo, std::int64_t hi)
{
    MG_CHECK(lo <= hi) << "next_range requires lo <= hi, got [" << lo << ", "
                       << hi << "]";
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

float
Rng::next_float()
{
    // 24 high bits give a uniform value in [0, 1) exactly representable.
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

float
Rng::next_float(float lo, float hi)
{
    return lo + (hi - lo) * next_float();
}

float
Rng::next_gaussian()
{
    if (has_spare_gaussian_) {
        has_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    float u1 = next_float();
    while (u1 <= 1e-12f) {
        u1 = next_float();
    }
    const float u2 = next_float();
    const float radius = std::sqrt(-2.0f * std::log(u1));
    const float angle = 2.0f * 3.14159265358979323846f * u2;
    spare_gaussian_ = radius * std::sin(angle);
    has_spare_gaussian_ = true;
    return radius * std::cos(angle);
}

std::vector<std::int64_t>
Rng::sample_distinct(std::int64_t bound, std::int64_t count)
{
    MG_CHECK(count >= 0 && count <= bound)
        << "cannot draw " << count << " distinct values below " << bound;
    std::vector<std::int64_t> result;
    result.reserve(static_cast<std::size_t>(count));
    if (count > bound / 2) {
        // Dense case: Fisher-Yates over the full range prefix.
        std::vector<std::int64_t> all(static_cast<std::size_t>(bound));
        for (std::int64_t i = 0; i < bound; ++i) {
            all[static_cast<std::size_t>(i)] = i;
        }
        for (std::int64_t i = 0; i < count; ++i) {
            const auto j = static_cast<std::int64_t>(
                next_below(static_cast<std::uint64_t>(bound - i))) + i;
            std::swap(all[static_cast<std::size_t>(i)],
                      all[static_cast<std::size_t>(j)]);
        }
        result.assign(all.begin(), all.begin() + count);
    } else {
        std::unordered_set<std::int64_t> seen;
        while (static_cast<std::int64_t>(result.size()) < count) {
            const auto v = static_cast<std::int64_t>(
                next_below(static_cast<std::uint64_t>(bound)));
            if (seen.insert(v).second) {
                result.push_back(v);
            }
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

Rng
Rng::fork()
{
    return Rng(next_u64() ^ 0xd1b54a32d192ed03ull);
}

}  // namespace multigrain
