#ifndef MULTIGRAIN_COMMON_UTIL_H_
#define MULTIGRAIN_COMMON_UTIL_H_

#include <cstdint>

/// Small arithmetic helpers shared across modules.
namespace multigrain {

/// Integer ceiling division; requires b > 0 and a >= 0.
template <typename T>
constexpr T
ceil_div(T a, T b)
{
    return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b`; requires b > 0 and a >= 0.
template <typename T>
constexpr T
round_up(T a, T b)
{
    return ceil_div(a, b) * b;
}

/// Index type used for all matrix dimensions and nonzero counts. Sequence
/// lengths are small (<= 64K), but nnz counts and flat element indices can
/// exceed 2^31 for batched long-sequence attention, so 64-bit throughout.
using index_t = std::int64_t;

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_UTIL_H_
