#include "common/logging.h"

#include <iostream>
#include <utility>

namespace multigrain {

namespace {

LogLevel g_level = LogLevel::kWarn;

LogSink &
sink_slot()
{
    static LogSink *sink = new LogSink;  // Leaked: usable during exit.
    return *sink;
}

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kDebug:
        return "DEBUG";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

LogSink
set_log_sink(LogSink sink)
{
    LogSink previous = std::move(sink_slot());
    sink_slot() = std::move(sink);
    return previous;
}

void
log_message(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) > static_cast<int>(g_level)) {
        return;
    }
    const LogSink &sink = sink_slot();
    if (sink) {
        sink(level, message);
        return;
    }
    std::cerr << "[multigrain " << level_tag(level) << "] " << message
              << "\n";
}

}  // namespace multigrain
