#include "common/logging.h"

#include <iostream>

namespace multigrain {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kDebug:
        return "DEBUG";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log_message(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) <= static_cast<int>(g_level)) {
        std::cerr << "[multigrain " << level_tag(level) << "] " << message
                  << "\n";
    }
}

}  // namespace multigrain
