#ifndef MULTIGRAIN_COMMON_ERROR_H_
#define MULTIGRAIN_COMMON_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

/// Error handling helpers.
///
/// The library reports contract violations by throwing multigrain::Error
/// (derived from std::runtime_error). MG_CHECK is used at public API
/// boundaries and for internal invariants that, if broken, would silently
/// corrupt results; it is kept on in release builds because all checks are
/// O(1) or amortized into existing walks.
namespace multigrain {

class Error : public std::runtime_error {
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/// A validation failure: a written artifact that fails its read-back
/// check, a cross-check (reconciliation) that does not hold, or a
/// user-supplied name (preset, device) that does not resolve. The CLIs
/// catch this distinctly from Error and exit with status 2, so CI can
/// tell "the numbers are wrong" from "the invocation was wrong" (1).
class ValidationError : public Error {
  public:
    using Error::Error;
};

namespace detail {

/// Builds the final message for a failed check and throws.
[[noreturn]] inline void
throw_check_failure(const char *expr, const char *file, int line,
                    const std::string &message)
{
    std::ostringstream os;
    os << file << ":" << line << ": check failed: " << expr;
    if (!message.empty()) {
        os << " — " << message;
    }
    throw Error(os.str());
}

/// Stream-capture helper so MG_CHECK can accept `<<`-style messages.
class MessageStream {
  public:
    template <typename T>
    MessageStream &operator<<(const T &value)
    {
        os_ << value;
        return *this;
    }
    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

}  // namespace detail
}  // namespace multigrain

/// Checks a condition and throws multigrain::Error when it does not hold.
/// Usage: MG_CHECK(rows > 0) << "rows=" << rows;
#define MG_CHECK(cond)                                                        \
    if (cond) {                                                               \
    } else                                                                    \
        ::multigrain::detail::CheckFailer{#cond, __FILE__, __LINE__} =        \
            ::multigrain::detail::MessageStream{}

namespace multigrain::detail {

/// Receives the streamed message and throws from its operator=. The odd
/// shape keeps MG_CHECK usable as a single statement with a trailing `<<`.
struct CheckFailer {
    const char *expr;
    const char *file;
    int line;

    [[noreturn]] void operator=(const MessageStream &ms)
    {
        throw_check_failure(expr, file, line, ms.str());
    }
};

}  // namespace multigrain::detail

#endif  // MULTIGRAIN_COMMON_ERROR_H_
