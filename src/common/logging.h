#ifndef MULTIGRAIN_COMMON_LOGGING_H_
#define MULTIGRAIN_COMMON_LOGGING_H_

#include <string>

/// Minimal leveled logging to stderr.
///
/// The library itself stays silent at the default level; benches and
/// examples raise the level to narrate what the simulator is doing.
namespace multigrain {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the process-wide log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` is at or below the threshold.
void log_message(LogLevel level, const std::string &message);

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_LOGGING_H_
