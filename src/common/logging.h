#ifndef MULTIGRAIN_COMMON_LOGGING_H_
#define MULTIGRAIN_COMMON_LOGGING_H_

#include <functional>
#include <string>

/// Minimal leveled logging to stderr.
///
/// The library itself stays silent at the default level; benches and
/// examples raise the level to narrate what the simulator is doing.
/// Tests and mgprof install a sink to capture lines instead of losing
/// them to stderr.
namespace multigrain {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the process-wide log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every message that passes the threshold. The message is the
/// raw text, without the "[multigrain LEVEL]" framing the stderr default
/// adds.
using LogSink = std::function<void(LogLevel, const std::string &)>;

/// Installs `sink` as the destination for log lines and returns the
/// previously installed sink (empty when the stderr default was active).
/// Passing an empty function restores the stderr default. Not
/// thread-safe with concurrent log_message calls; install sinks at
/// startup or around single-threaded test sections.
LogSink set_log_sink(LogSink sink);

/// Emits one line if `level` is at or below the threshold: to the
/// installed sink, or to stderr when none is set.
void log_message(LogLevel level, const std::string &message);

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_LOGGING_H_
