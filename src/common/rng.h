#ifndef MULTIGRAIN_COMMON_RNG_H_
#define MULTIGRAIN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

/// Deterministic pseudo-random number generation.
///
/// All stochastic pieces of the system (random sparse patterns, synthetic
/// workload generation, test data) draw from Rng so every experiment is
/// reproducible from a seed. The generator is splitmix64-seeded
/// xoshiro256**, which is small, fast, and has no dependence on libstdc++
/// distribution implementations (so streams are stable across toolchains).
namespace multigrain {

class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform integer in [0, bound) via rejection sampling; bound > 0.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi);

    /// Uniform float in [0, 1).
    float next_float();

    /// Uniform float in [lo, hi).
    float next_float(float lo, float hi);

    /// Standard normal variate (Box-Muller).
    float next_gaussian();

    /// Draws `count` distinct integers from [0, bound), sorted ascending.
    /// Requires count <= bound.
    std::vector<std::int64_t> sample_distinct(std::int64_t bound,
                                              std::int64_t count);

    /// Creates a child generator with an independent stream. Used to give
    /// each (batch, head) its own stream without coupling draw order.
    Rng fork();

  private:
    std::uint64_t state_[4];
    bool has_spare_gaussian_ = false;
    float spare_gaussian_ = 0.0f;
};

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_RNG_H_
