#ifndef MULTIGRAIN_COMMON_HALF_H_
#define MULTIGRAIN_COMMON_HALF_H_

#include <cstdint>
#include <iosfwd>

/// IEEE-754 binary16 ("half") implemented in software.
///
/// The paper's kernels store operands in FP16 and accumulate in FP32 (the
/// tensor-core m16n8k16 MMA contract). Every functional kernel in this
/// repository follows the same precision discipline: matrix storage is
/// multigrain::half, accumulation happens in float, and the final result is
/// rounded back to half. Conversion uses round-to-nearest-even, matching
/// the CUDA __float2half behaviour.
namespace multigrain {

/// Converts a float to binary16 bits with round-to-nearest-even.
std::uint16_t float_to_half_bits(float value);

/// Converts binary16 bits to a float (exact; every half is a float).
float half_bits_to_float(std::uint16_t bits);

/// A 16-bit floating point value. Trivially copyable, 2 bytes, no padding.
class half {
  public:
    half() = default;
    explicit half(float value) : bits_(float_to_half_bits(value)) {}

    /// Implicit widening to float mirrors the hardware's free up-conversion.
    operator float() const { return half_bits_to_float(bits_); }

    static half from_bits(std::uint16_t bits)
    {
        half h;
        h.bits_ = bits;
        return h;
    }
    std::uint16_t bits() const { return bits_; }

    half &operator+=(half other)
    {
        *this = half(float(*this) + float(other));
        return *this;
    }
    half &operator-=(half other)
    {
        *this = half(float(*this) - float(other));
        return *this;
    }
    half &operator*=(half other)
    {
        *this = half(float(*this) * float(other));
        return *this;
    }

    friend bool operator==(half a, half b) { return float(a) == float(b); }
    friend bool operator!=(half a, half b) { return float(a) != float(b); }
    friend bool operator<(half a, half b) { return float(a) < float(b); }
    friend bool operator<=(half a, half b) { return float(a) <= float(b); }
    friend bool operator>(half a, half b) { return float(a) > float(b); }
    friend bool operator>=(half a, half b) { return float(a) >= float(b); }

  private:
    std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be exactly 16 bits");

std::ostream &operator<<(std::ostream &os, half h);

/// Largest finite half value (65504).
half half_max();
/// Most negative finite half value (-65504).
half half_lowest();
/// Negative infinity in half precision; used for masked-out logits.
half half_neg_inf();

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_HALF_H_
