#include "common/timer.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

namespace multigrain {

namespace {

struct Registry {
    std::mutex mu;
    std::map<std::string, TimerStat> stats;
};

Registry &
registry()
{
    static Registry *r = new Registry;  // Leaked: usable during exit.
    return *r;
}

}  // namespace

ScopedTimer::ScopedTimer(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
}

ScopedTimer::~ScopedTimer()
{
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    add_host_timer_sample(name_, us);
}

void
add_host_timer_sample(const std::string &name, double us)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    TimerStat &stat = r.stats[name];
    stat.name = name;
    stat.total_us += us;
    stat.count += 1;
}

std::vector<TimerStat>
host_timer_stats()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::vector<TimerStat> out;
    out.reserve(r.stats.size());
    for (const auto &[name, stat] : r.stats) {
        out.push_back(stat);
    }
    return out;
}

void
reset_host_timers()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.stats.clear();
}

}  // namespace multigrain
