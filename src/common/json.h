#ifndef MULTIGRAIN_COMMON_JSON_H_
#define MULTIGRAIN_COMMON_JSON_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

/// Minimal JSON support shared by the trace/profiler exporters and their
/// tests: a streaming writer (no intermediate tree, handles the large
/// per-kernel arrays cheaply) and a small validating parser used to check
/// emitted artifacts and to read them back.
///
/// The writer always produces strictly valid JSON: non-finite doubles are
/// emitted as null (arithmetic intensity of a kernel with no DRAM traffic
/// is +inf, which JSON cannot represent).
namespace multigrain {

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string json_escape(const std::string &s);

/// Streaming JSON writer with automatic comma/nesting management.
/// Usage: begin_object(); key("a"); value(1.0); end_object();
/// Misuse (value without key inside an object, unbalanced end) trips
/// MG_CHECK.
class JsonWriter {
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();
    void key(const std::string &k);
    void value(double v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void null();

    /// key + value in one call, for terse exporters.
    template <typename T>
    void field(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

  private:
    enum class Scope { kObject, kArray };
    void separator();

    std::ostream &os_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;
    bool pending_key_ = false;
};

/// Parsed JSON value. Object member order is preserved (vector of pairs),
/// so round-trip tests can pin field ordering if they care.
struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_null() const { return type == Type::kNull; }
    bool is_object() const { return type == Type::kObject; }
    bool is_array() const { return type == Type::kArray; }

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue *find(const std::string &k) const;
    /// Object member access; MG_CHECKs presence.
    const JsonValue &at(const std::string &k) const;
    /// Typed accessors; MG_CHECK on type mismatch.
    double as_number() const;
    const std::string &as_string() const;
    bool as_bool() const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed).
/// Throws Error on malformed input — this is the validation the mgprof
/// smoke test and the trace tests rely on.
JsonValue json_parse(const std::string &text);

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_JSON_H_
