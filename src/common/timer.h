#ifndef MULTIGRAIN_COMMON_TIMER_H_
#define MULTIGRAIN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

/// Host-side scoped timers for the offline preprocessing paths.
///
/// The paper's §3.1 pitch is that slice-and-dice classification and the
/// (transposed) metadata builds run "offline, once per input shape"; these
/// timers put a number on that claim. Every ScopedTimer charges its
/// lifetime to a process-wide registry keyed by name, which mgprof and the
/// profiler exporters snapshot next to the simulated device timeline.
///
/// The registry is mutex-protected; timers on hot paths should wrap the
/// once-per-shape work, not per-element loops.
namespace multigrain {

struct TimerStat {
    std::string name;
    double total_us = 0;
    std::int64_t count = 0;
};

/// RAII: charges (destruction time - construction time) to `name`.
class ScopedTimer {
  public:
    explicit ScopedTimer(std::string name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

/// Snapshot of every timer recorded so far, sorted by name.
std::vector<TimerStat> host_timer_stats();

/// Clears the registry (tests; mgprof before a run it wants isolated).
void reset_host_timers();

/// Directly charges `us` microseconds to `name` (for call sites that
/// already measured, e.g. aggregating an external phase).
void add_host_timer_sample(const std::string &name, double us);

}  // namespace multigrain

#endif  // MULTIGRAIN_COMMON_TIMER_H_
