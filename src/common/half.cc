#include "common/half.h"

#include <bit>
#include <cstring>
#include <ostream>

namespace multigrain {

namespace {

std::uint32_t
float_bits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bits_float(std::uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

}  // namespace

std::uint16_t
float_to_half_bits(float value)
{
    const std::uint32_t f = float_bits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::uint32_t abs = f & 0x7fffffffu;

    if (abs >= 0x7f800000u) {
        // Inf stays Inf; NaN keeps a payload bit so it stays NaN.
        const std::uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0;
        return static_cast<std::uint16_t>(sign | 0x7c00u | mantissa);
    }
    if (abs >= 0x477ff000u) {
        // Values that round to >= 2^16 overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (abs < 0x38800000u) {
        // Subnormal half (or zero): shift the implicit leading one into the
        // mantissa and round to nearest even.
        if (abs < 0x33000001u) {
            return static_cast<std::uint16_t>(sign);  // Rounds to +-0.
        }
        const int exp = static_cast<int>(abs >> 23);
        const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
        // The float value is mant * 2^(exp-150); a subnormal-half ULP is
        // 2^-24, so the result is mant * 2^(exp-126) rounded to nearest even.
        // exp lies in [102, 112] here, so the shift stays within [14, 24].
        const int drop = 126 - exp;
        const std::uint32_t kept = mant >> drop;
        const std::uint32_t rem = mant & ((1u << drop) - 1);
        const std::uint32_t halfway = 1u << (drop - 1);
        std::uint32_t result = kept;
        if (rem > halfway || (rem == halfway && (kept & 1u))) {
            ++result;
        }
        return static_cast<std::uint16_t>(sign | result);
    }

    // Normal range: rebias exponent from 127 to 15, round mantissa 23 -> 10.
    const std::uint32_t rebased = abs - 0x38000000u;  // Subtract (127-15)<<23.
    const std::uint32_t kept = rebased >> 13;
    const std::uint32_t rem = rebased & 0x1fffu;
    std::uint32_t result = kept;
    if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u))) {
        ++result;  // May carry into the exponent; that is correct rounding.
    }
    return static_cast<std::uint16_t>(sign | result);
}

float
half_bits_to_float(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
    const std::uint32_t exp = (bits >> 10) & 0x1fu;
    const std::uint32_t mant = bits & 0x03ffu;

    if (exp == 0) {
        if (mant == 0) {
            return bits_float(sign);  // Signed zero.
        }
        // Subnormal: normalize by shifting the mantissa up.
        int e = -1;
        std::uint32_t m = mant;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x0400u) == 0);
        const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
        const std::uint32_t fmant = (m & 0x03ffu) << 13;
        return bits_float(sign | (fexp << 23) | fmant);
    }
    if (exp == 0x1fu) {
        return bits_float(sign | 0x7f800000u | (mant << 13));  // Inf / NaN.
    }
    const std::uint32_t fexp = exp + (127 - 15);
    return bits_float(sign | (fexp << 23) | (mant << 13));
}

std::ostream &
operator<<(std::ostream &os, half h)
{
    return os << float(h);
}

half
half_max()
{
    return half::from_bits(0x7bffu);
}

half
half_lowest()
{
    return half::from_bits(0xfbffu);
}

half
half_neg_inf()
{
    return half::from_bits(0xfc00u);
}

}  // namespace multigrain
