#ifndef MULTIGRAIN_GPUSIM_REPORT_H_
#define MULTIGRAIN_GPUSIM_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/engine.h"

/// Workload characterization (the IISWC angle): given a simulated
/// timeline and the device it ran on, classify each kernel against the
/// roofline — which resource bound it, at what utilization, with what
/// arithmetic intensity — and estimate dynamic + static energy.
namespace multigrain::sim {

enum class Bound {
    kTensor,   ///< Tensor-pipe throughput bound.
    kCuda,     ///< CUDA-pipe throughput bound.
    kDram,     ///< DRAM bandwidth bound.
    kL2,       ///< L2 bandwidth bound.
    kLatency,  ///< None saturated: launch/prologue/occupancy limited.
};

const char *to_string(Bound bound);

struct KernelCharacterization {
    std::string name;
    double duration_us = 0;
    /// Flops per DRAM byte (tensor + CUDA flops over DRAM traffic);
    /// +inf when the kernel moves no DRAM bytes.
    double arithmetic_intensity = 0;
    /// Achieved fraction of each achievable peak over the kernel's span.
    double tensor_util = 0;
    double cuda_util = 0;
    double dram_util = 0;
    double l2_util = 0;
    Bound bound = Bound::kLatency;
    /// Dynamic energy (compute + memory), joules.
    double dynamic_j = 0;
};

struct WorkloadReport {
    std::vector<KernelCharacterization> kernels;
    double total_us = 0;
    double dynamic_j = 0;
    double static_j = 0;  ///< static_watts over the makespan.
    double total_j() const { return dynamic_j + static_j; }
    double average_watts() const
    {
        return total_us > 0 ? total_j() / (total_us * 1e-6) : 0;
    }
};

/// Characterizes every kernel of `result` against `device`. A kernel is
/// classified as bound by the resource with the highest utilization if
/// that utilization exceeds `bound_threshold` (default 60 %), else
/// latency-bound.
WorkloadReport characterize(const SimResult &result,
                            const DeviceSpec &device,
                            double bound_threshold = 0.6);

/// Prints the report as a fixed-width table (top `max_kernels` kernels by
/// duration, plus totals).
void print_report(const WorkloadReport &report, std::ostream &os,
                  int max_kernels = 20);

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_REPORT_H_
