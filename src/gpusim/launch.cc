#include "gpusim/launch.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/error.h"

namespace multigrain::sim {

namespace {

/// Process-wide interning table. Leaked (never destroyed) so buffer ids
/// stay resolvable from atexit handlers and static destructors.
struct BufferTable {
    std::mutex mutex;
    std::vector<std::string> names;
    std::unordered_map<std::string, BufferId> ids;
};

BufferTable &
buffer_table()
{
    static BufferTable *table = new BufferTable;
    return *table;
}

}  // namespace

BufferId
intern_buffer(const std::string &name)
{
    MG_CHECK(!name.empty()) << "buffer name must be non-empty";
    BufferTable &table = buffer_table();
    const std::lock_guard<std::mutex> lock(table.mutex);
    const auto it = table.ids.find(name);
    if (it != table.ids.end()) {
        return it->second;
    }
    const BufferId id = static_cast<BufferId>(table.names.size());
    table.names.push_back(name);
    table.ids.emplace(name, id);
    return id;
}

std::string
buffer_name(BufferId id)
{
    BufferTable &table = buffer_table();
    const std::lock_guard<std::mutex> lock(table.mutex);
    MG_CHECK(id >= 0 && static_cast<std::size_t>(id) < table.names.size())
        << "unknown buffer id " << id;
    return table.names[static_cast<std::size_t>(id)];
}

bool
buffer_is_plan_local(BufferId id)
{
    return buffer_name(id).front() == '%';
}

namespace {

/// MULTIGRAIN_MEM_PERTURB: multiplicative scale on every annotated byte
/// size, read once per process. The memory analogue of
/// MULTIGRAIN_PERTURB (device.h): it exists so the mgperf gate's
/// self-test can prove a grown footprint trips the exact
/// peak_hbm_bytes policy, without a code change. 1.0 (or unset) is
/// identity; timing inputs are untouched.
double
mem_perturbation()
{
    static const double scale = [] {
        const char *spec = std::getenv("MULTIGRAIN_MEM_PERTURB");
        if (spec == nullptr || *spec == '\0') {
            return 1.0;
        }
        const double s = std::atof(spec);
        MG_CHECK(s > 0) << "MULTIGRAIN_MEM_PERTURB must be positive: "
                        << spec;
        return s;
    }();
    return scale;
}

std::uint64_t
scale_bytes(std::uint64_t bytes)
{
    const double s = mem_perturbation();
    if (s == 1.0) {
        return bytes;
    }
    return static_cast<std::uint64_t>(static_cast<double>(bytes) * s);
}

}  // namespace

KernelLaunch
annotate(KernelLaunch launch, std::initializer_list<SizedBuffer> reads,
         std::initializer_list<SizedBuffer> writes,
         std::initializer_list<SizedBuffer> accums)
{
    for (const SizedBuffer &buf : reads) {
        launch.reads.push_back(intern_buffer(buf.name));
        launch.read_bytes.push_back(scale_bytes(buf.bytes));
        launch.read_flags.push_back(buf.flags);
    }
    for (const SizedBuffer &buf : writes) {
        launch.writes.push_back(intern_buffer(buf.name));
        launch.write_bytes.push_back(scale_bytes(buf.bytes));
        launch.write_flags.push_back(buf.flags);
    }
    for (const SizedBuffer &buf : accums) {
        launch.accums.push_back(intern_buffer(buf.name));
        launch.accum_bytes.push_back(scale_bytes(buf.bytes));
        launch.accum_flags.push_back(buf.flags);
    }
    return launch;
}

index_t
KernelLaunch::num_tbs() const
{
    index_t n = 0;
    for (const auto &group : tbs) {
        n += group.count;
    }
    return n;
}

TbWork
KernelLaunch::total_work() const
{
    TbWork total;
    for (const auto &group : tbs) {
        total.tensor_flops += group.work.tensor_flops * group.count;
        total.cuda_flops += group.work.cuda_flops * group.count;
        total.dram_read_bytes += group.work.dram_read_bytes * group.count;
        total.dram_write_bytes += group.work.dram_write_bytes * group.count;
        total.l2_bytes += group.work.l2_bytes * group.count;
    }
    return total;
}

void
KernelLaunch::add_tb(const TbWork &work, index_t count)
{
    MG_CHECK(count >= 0) << "TB count must be non-negative";
    if (count == 0) {
        return;
    }
    if (!tbs.empty()) {
        TbGroup &tail = tbs.back();
        if (tail.work.tensor_flops == work.tensor_flops &&
            tail.work.cuda_flops == work.cuda_flops &&
            tail.work.dram_read_bytes == work.dram_read_bytes &&
            tail.work.dram_write_bytes == work.dram_write_bytes &&
            tail.work.l2_bytes == work.l2_bytes) {
            tail.count += count;
            return;
        }
    }
    tbs.push_back({work, count});
}

int
occupancy_per_sm(const DeviceSpec &device, const TbShape &shape)
{
    MG_CHECK(shape.threads > 0) << "TB must have threads";
    int limit = device.max_tb_per_sm;
    limit = std::min(limit, device.max_threads_per_sm / shape.threads);
    if (shape.smem_bytes > 0) {
        limit = std::min(limit, device.smem_per_sm_bytes / shape.smem_bytes);
    }
    const int regs_per_tb = shape.threads * shape.regs_per_thread;
    if (regs_per_tb > 0) {
        limit = std::min(limit, device.regs_per_sm / regs_per_tb);
    }
    return std::max(limit, 1);
}

}  // namespace multigrain::sim
