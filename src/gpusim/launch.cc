#include "gpusim/launch.h"

#include <algorithm>

#include "common/error.h"

namespace multigrain::sim {

index_t
KernelLaunch::num_tbs() const
{
    index_t n = 0;
    for (const auto &group : tbs) {
        n += group.count;
    }
    return n;
}

TbWork
KernelLaunch::total_work() const
{
    TbWork total;
    for (const auto &group : tbs) {
        total.tensor_flops += group.work.tensor_flops * group.count;
        total.cuda_flops += group.work.cuda_flops * group.count;
        total.dram_read_bytes += group.work.dram_read_bytes * group.count;
        total.dram_write_bytes += group.work.dram_write_bytes * group.count;
        total.l2_bytes += group.work.l2_bytes * group.count;
    }
    return total;
}

void
KernelLaunch::add_tb(const TbWork &work, index_t count)
{
    MG_CHECK(count >= 0) << "TB count must be non-negative";
    if (count == 0) {
        return;
    }
    if (!tbs.empty()) {
        TbGroup &tail = tbs.back();
        if (tail.work.tensor_flops == work.tensor_flops &&
            tail.work.cuda_flops == work.cuda_flops &&
            tail.work.dram_read_bytes == work.dram_read_bytes &&
            tail.work.dram_write_bytes == work.dram_write_bytes &&
            tail.work.l2_bytes == work.l2_bytes) {
            tail.count += count;
            return;
        }
    }
    tbs.push_back({work, count});
}

int
occupancy_per_sm(const DeviceSpec &device, const TbShape &shape)
{
    MG_CHECK(shape.threads > 0) << "TB must have threads";
    int limit = device.max_tb_per_sm;
    limit = std::min(limit, device.max_threads_per_sm / shape.threads);
    if (shape.smem_bytes > 0) {
        limit = std::min(limit, device.smem_per_sm_bytes / shape.smem_bytes);
    }
    const int regs_per_tb = shape.threads * shape.regs_per_thread;
    if (regs_per_tb > 0) {
        limit = std::min(limit, device.regs_per_sm / regs_per_tb);
    }
    return std::max(limit, 1);
}

}  // namespace multigrain::sim
