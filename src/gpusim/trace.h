#ifndef MULTIGRAIN_GPUSIM_TRACE_H_
#define MULTIGRAIN_GPUSIM_TRACE_H_

#include <iosfwd>
#include <string>

#include "gpusim/engine.h"

/// Chrome trace-event export: turns a SimResult into a JSON timeline that
/// chrome://tracing or https://ui.perfetto.dev renders, one lane ("thread")
/// per CUDA stream. The multi-stream overlap of Multigrain's coarse ∥ fine
/// ∥ special parts is directly visible this way.
namespace multigrain::sim {

/// Writes the trace JSON to `os`.
void write_chrome_trace(const SimResult &result, std::ostream &os);

/// Convenience: the trace as a string.
std::string chrome_trace_json(const SimResult &result);

/// Convenience: writes the trace to `path`; throws Error on I/O failure.
void write_chrome_trace_file(const SimResult &result,
                             const std::string &path);

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_TRACE_H_
