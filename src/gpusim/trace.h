#ifndef MULTIGRAIN_GPUSIM_TRACE_H_
#define MULTIGRAIN_GPUSIM_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "gpusim/engine.h"

/// Chrome trace-event export: turns a SimResult into a JSON timeline that
/// chrome://tracing or https://ui.perfetto.dev renders, one lane ("thread")
/// per CUDA stream. The multi-stream overlap of Multigrain's coarse ∥ fine
/// ∥ special parts is directly visible this way.
///
/// Beyond the per-kernel slices, the exporter can emit the Nsight-style
/// context the paper reads off its profiles:
///  * counter tracks — DRAM bandwidth utilization and resident thread
///    blocks over time (piecewise-constant, sampled at kernel
///    boundaries);
///  * flow arrows for every cross-stream dependency recorded by
///    join_streams(), connecting the end of the awaited kernel to the
///    start of the waiter;
///  * phase marker slices on a dedicated "phases" lane (the carved
///    sddmm/softmax/spmm spans the profiler computes).
namespace multigrain::sim {

/// One marker slice on the "phases" lane.
struct PhaseMark {
    std::string name;
    double start_us = 0;
    double end_us = 0;
};

struct TraceOptions {
    /// Enables the counter tracks; utilization needs the device peaks.
    /// When null, counters are omitted.
    const DeviceSpec *device = nullptr;
    /// Flow arrows for cross-stream dependencies (joins).
    bool flows = true;
    /// Marker slices drawn on a separate lane; the mgprof CLI fills this
    /// from the profiler's carved phases.
    std::vector<PhaseMark> phases;
};

/// Writes the trace JSON to `os`. The two-argument form emits slices and
/// flow arrows only (no device — no counters).
void write_chrome_trace(const SimResult &result, std::ostream &os);
void write_chrome_trace(const SimResult &result, std::ostream &os,
                        const TraceOptions &options);

/// Convenience: the trace as a string.
std::string chrome_trace_json(const SimResult &result);
std::string chrome_trace_json(const SimResult &result,
                              const TraceOptions &options);

/// Convenience: writes the trace to `path`; throws Error on I/O failure.
void write_chrome_trace_file(const SimResult &result,
                             const std::string &path);
void write_chrome_trace_file(const SimResult &result,
                             const std::string &path,
                             const TraceOptions &options);

/// Appends `result`'s per-kernel slices to an already-open
/// "traceEvents" array, shifted forward by `offset_us` and placed under
/// process `pid` (lane = simulated stream id). No lane-name metadata,
/// no flows, no counters — the minimal building block a composite
/// exporter (mgtrace's correlated serving timeline) overlays per-round
/// replays with. `w` must be positioned inside an open JSON array.
void append_kernel_slices(JsonWriter &w, const SimResult &result,
                          double offset_us, int pid);

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_TRACE_H_
