#ifndef MULTIGRAIN_GPUSIM_ENGINE_H_
#define MULTIGRAIN_GPUSIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"

/// The GPU execution engine: a deterministic processor-sharing (fluid)
/// event simulator.
///
/// Model (DESIGN.md §4). Thread blocks are admitted to SM slots round-robin
/// as resources free, under the CUDA occupancy rules. While resident, a
/// block's tensor-pipe work drains at an equal share of its SM's tensor
/// throughput, its CUDA-pipe work at an equal share of the SM's CUDA
/// throughput, and its memory work at an equal share of device DRAM
/// bandwidth (additionally capped by a per-SM burst limit). A block
/// completes when all of its work components have drained, after a fixed
/// per-block prologue. Kernels in one stream serialize; kernels in
/// different streams co-schedule on the same SM array — this is exactly the
/// mechanism by which Multigrain's coarse ∥ fine multi-stream split wins.
///
/// Implementation: per-resource progress clocks. A clock advances at
/// R / N(t) where N is its live consumer count; a block's component
/// finishes when the clock crosses (value-at-admission + work). Crossings
/// are tracked with lazily-invalidated predictions in one global event
/// heap, so simulation cost is O(blocks · log), independent of how long
/// blocks overlap.
namespace multigrain::sim {

struct KernelStats {
    std::string name;
    int stream = 0;
    index_t num_tbs = 0;
    int occupancy_per_sm = 0;
    double ready_us = 0;  ///< Dependencies resolved + launch latency.
    double start_us = 0;  ///< First block admitted.
    double end_us = 0;    ///< Last block drained.
    TbWork work;          ///< Aggregate flops / DRAM traffic.
    /// Average resident thread blocks while the kernel ran; the analogue of
    /// Nsight's achieved-occupancy signal the paper uses for the load
    /// imbalance discussion (§5.2.1).
    double avg_concurrency = 0;
    /// Indices (into SimResult::kernels) of the kernels this one waited
    /// for: the previous kernel on its stream plus any join_streams()
    /// barrier tails. Sorted, deduplicated. Cross-stream entries are the
    /// edges the trace exporter renders as flow arrows.
    std::vector<int> deps;

    double duration_us() const { return end_us - start_us; }
};

struct SimResult {
    double total_us = 0;
    TbWork work;
    std::vector<KernelStats> kernels;

    double dram_bytes() const { return work.dram_bytes(); }
    /// Sum of durations of kernels whose name starts with `prefix`.
    /// Overlapping kernels both count (this is per-kernel time, not
    /// critical-path time).
    double sum_kernel_time(const std::string &prefix) const;
    /// Wall-clock span (max end - min start) over kernels whose name
    /// starts with `prefix`; the right metric for a multi-stream phase.
    /// Zero when nothing matches.
    double span(const std::string &prefix) const;
    /// Absolute completion time (max end since t = 0) over kernels whose
    /// name starts with `prefix`; zero when nothing matches. This is the
    /// per-batch finish time the serving layer reads off a round where
    /// several batches co-schedule on different streams.
    double finish_us(const std::string &prefix) const;
    /// Aggregate DRAM traffic of kernels whose name starts with `prefix`.
    double dram_bytes_for(const std::string &prefix) const;
    const KernelStats *find(const std::string &name) const;
};

class GpuSim {
  public:
    explicit GpuSim(DeviceSpec device);

    const DeviceSpec &device() const { return device_; }

    /// Process-unique identity of this simulator instance. Pointer
    /// comparison is not a safe identity for caching (a new simulator can
    /// reuse a destroyed one's address); cache against this id instead.
    std::uint64_t id() const { return id_; }

    /// Streams are small integers; stream 0 always exists.
    int create_stream();

    /// Enqueues a kernel on `stream`, ordered after everything previously
    /// launched on that stream (plus any pending join).
    void launch(int stream, KernelLaunch launch);

    /// The next kernel launched on *any* stream will additionally wait for
    /// every kernel submitted so far (device-wide synchronization point in
    /// the recorded program, like an event barrier across streams).
    void join_streams();

    /// Simulates everything submitted so far. May be called once.
    SimResult run();

    /// Stream-binding slot for capture/replay clients (core/launch_graph):
    /// the logical→real stream map a client (keyed by an arbitrary id, e.g.
    /// an AttentionEngine's replay key) uses when instantiating graphs into
    /// *this* simulator. The binding lives with the simulator, so a
    /// logically-const client can plan into two sims concurrently without
    /// mutable per-sim state of its own aliasing between them. Returns an
    /// empty vector on first use; the replay path fills it.
    std::vector<int> &stream_binding(std::uint64_t client_key)
    {
        return stream_bindings_[client_key];
    }

  private:
    struct KernelNode {
        KernelLaunch launch;
        int stream = 0;
        std::vector<int> deps;
        int unresolved = 0;
        std::vector<int> children;
    };

    DeviceSpec device_;
    std::uint64_t id_ = 0;
    int num_streams_ = 1;
    std::vector<int> stream_tail_;  ///< Last kernel id per stream, -1 none.
    std::vector<int> join_set_;     ///< Stream tails the last join covers.
    std::vector<bool> join_applied_;  ///< Per stream: join already waited.
    std::vector<KernelNode> kernels_;
    std::unordered_map<std::uint64_t, std::vector<int>> stream_bindings_;
    bool ran_ = false;
};

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_ENGINE_H_
