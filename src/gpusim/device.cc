#include "gpusim/device.h"

#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace multigrain::sim {

namespace {

/// Efficiency constants shared by both devices. Sources: achieved FP16
/// tensor GEMM fractions on large tiles (~55-65 % of peak for hand-tiled
/// kernels), CUDA-core FMA sustained fractions (~60 %), stream-bandwidth
/// tests (~82-86 % of pin rate), and measured kernel-launch / block
/// dispatch latencies on Ampere-class parts.
constexpr double kTensorEff = 0.58;
constexpr double kDenseTensorEff = 0.75;
constexpr double kCudaEff = 0.62;
constexpr double kDramEff = 0.84;
constexpr double kLaunchUs = 3.0;
constexpr double kTbOverheadUs = 0.5;
constexpr double kSmBurst = 3.0;
constexpr double kUnitSaturation = 4.0;
// Energy constants from public measurements of Ampere-class parts:
// ~0.5-1 pJ per FP16 tensor MAC-flop, a few pJ per CUDA-core flop,
// tens of pJ per DRAM byte (HBM2e cheaper per byte than GDDR6X),
// and single-digit pJ per L2 byte.

}  // namespace

DeviceSpec
DeviceSpec::a100()
{
    DeviceSpec d;
    d.name = "A100";
    d.num_sms = 108;
    d.tensor_tflops = 169.0;  // Table 1 (non-sparse FP16 TC rate).
    d.cuda_tflops = 42.3;
    d.dram_gbps = 1555.0;
    d.hbm_gbytes = 80.0;  // SXM 80 GB variant.
    d.l2_mb = 40.0;
    d.l2_gbps = 4500.0;  // Measured A100 L2 aggregate bandwidth (~3x DRAM).
    d.l1_kb_per_sm = 192;
    d.max_tb_per_sm = 32;
    d.max_threads_per_sm = 2048;
    d.regs_per_sm = 65536;
    d.smem_per_sm_bytes = 164 * 1024;
    d.tensor_efficiency = kTensorEff;
    d.dense_tensor_efficiency = kDenseTensorEff;
    d.cuda_efficiency = kCudaEff;
    d.dram_efficiency = kDramEff;
    d.kernel_launch_us = kLaunchUs;
    d.tb_overhead_us = kTbOverheadUs;
    d.sm_mem_burst = kSmBurst;
    d.unit_saturation = kUnitSaturation;
    d.pj_per_tensor_flop = 0.8;
    d.pj_per_cuda_flop = 2.5;
    d.pj_per_dram_byte = 40.0;   // HBM2e.
    d.pj_per_l2_byte = 6.0;
    d.static_watts = 90.0;
    apply_perturbation(d, env_perturbation());
    return d;
}

DeviceSpec
DeviceSpec::rtx3090()
{
    DeviceSpec d;
    d.name = "RTX3090";
    d.num_sms = 82;
    d.tensor_tflops = 58.0;  // Table 1: TC peak drops 2.9x vs A100 ...
    d.cuda_tflops = 29.3;    // ... while the CUDA-core peak drops only 1.4x.
    d.dram_gbps = 936.2;
    d.hbm_gbytes = 24.0;
    d.l2_mb = 6.0;
    d.l2_gbps = 1800.0;  // GA102 L2 aggregate bandwidth (~2x DRAM).
    d.l1_kb_per_sm = 128;
    d.max_tb_per_sm = 16;
    d.max_threads_per_sm = 1536;
    d.regs_per_sm = 65536;
    d.smem_per_sm_bytes = 100 * 1024;
    d.tensor_efficiency = kTensorEff;
    d.dense_tensor_efficiency = kDenseTensorEff;
    d.cuda_efficiency = kCudaEff;
    d.dram_efficiency = kDramEff;
    d.kernel_launch_us = kLaunchUs;
    d.tb_overhead_us = kTbOverheadUs;
    d.sm_mem_burst = kSmBurst;
    d.unit_saturation = kUnitSaturation;
    d.pj_per_tensor_flop = 1.1;
    d.pj_per_cuda_flop = 3.0;
    d.pj_per_dram_byte = 65.0;   // GDDR6X.
    d.pj_per_l2_byte = 7.0;
    d.static_watts = 80.0;
    apply_perturbation(d, env_perturbation());
    return d;
}

DeviceSpec
device_spec_by_name(const std::string &name)
{
    if (name == "a100") {
        return DeviceSpec::a100();
    }
    if (name == "rtx3090") {
        return DeviceSpec::rtx3090();
    }
    throw Error("unknown device \"" + name + "\" (a100|rtx3090)");
}

bool
DevicePerturbation::identity() const
{
    return dram == 1.0 && tensor == 1.0 && cuda == 1.0 && l2 == 1.0 &&
           launch == 1.0;
}

DevicePerturbation
DevicePerturbation::parse(const std::string &spec)
{
    DevicePerturbation p;
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty()) {
            continue;
        }
        const std::size_t eq = item.find('=');
        MG_CHECK(eq != std::string::npos)
            << "perturbation term \"" << item << "\" is not key=scale";
        const std::string key = item.substr(0, eq);
        double scale = 0;
        try {
            scale = std::stod(item.substr(eq + 1));
        } catch (const std::exception &) {
            throw Error("perturbation scale in \"" + item +
                        "\" is not a number");
        }
        MG_CHECK(scale > 0) << "perturbation scale must be positive: "
                            << item;
        if (key == "dram") {
            p.dram = scale;
        } else if (key == "tensor") {
            p.tensor = scale;
        } else if (key == "cuda") {
            p.cuda = scale;
        } else if (key == "l2") {
            p.l2 = scale;
        } else if (key == "launch") {
            p.launch = scale;
        } else {
            throw Error("unknown perturbation key \"" + key +
                        "\" (dram|tensor|cuda|l2|launch)");
        }
    }
    return p;
}

void
apply_perturbation(DeviceSpec &spec, const DevicePerturbation &p)
{
    if (p.identity()) {
        return;
    }
    spec.dram_gbps *= p.dram;
    spec.tensor_tflops *= p.tensor;
    spec.cuda_tflops *= p.cuda;
    spec.l2_gbps *= p.l2;
    spec.kernel_launch_us *= p.launch;
    spec.tb_overhead_us *= p.launch;
}

DevicePerturbation
env_perturbation()
{
    const char *spec = std::getenv("MULTIGRAIN_PERTURB");
    if (spec == nullptr || *spec == '\0') {
        return {};
    }
    return DevicePerturbation::parse(spec);
}

}  // namespace multigrain::sim
