#ifndef MULTIGRAIN_GPUSIM_LAUNCH_H_
#define MULTIGRAIN_GPUSIM_LAUNCH_H_

#include <string>
#include <vector>

#include "common/util.h"
#include "gpusim/device.h"

/// Kernel-launch descriptors: the interface between kernels and the
/// execution engine.
///
/// A kernel's plan() walks the same sparse metadata its functional run()
/// walks and emits one TbWork per thread block (or a TbGroup of identical
/// blocks). The engine then executes the launch against a DeviceSpec.
namespace multigrain::sim {

/// Resource footprint of one thread block; drives the occupancy limit.
struct TbShape {
    int threads = 128;
    int smem_bytes = 0;
    int regs_per_thread = 32;
};

/// Work carried by one thread block. DRAM bytes are *actual* device-memory
/// traffic the block induces (after the kernel's reuse/overfetch model),
/// matching what a profiler reports; l2_bytes are additional accesses
/// served by the L2 cache (re-touches of resident data). Flops are useful
/// arithmetic on each pipe.
struct TbWork {
    double tensor_flops = 0;
    double cuda_flops = 0;
    double dram_read_bytes = 0;
    double dram_write_bytes = 0;
    double l2_bytes = 0;

    TbWork &operator+=(const TbWork &other)
    {
        tensor_flops += other.tensor_flops;
        cuda_flops += other.cuda_flops;
        dram_read_bytes += other.dram_read_bytes;
        dram_write_bytes += other.dram_write_bytes;
        l2_bytes += other.l2_bytes;
        return *this;
    }
    double dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
    /// Everything that moves through the L2 slice (DRAM fills + L2 hits).
    double mem_bytes() const { return dram_bytes() + l2_bytes; }
    bool empty() const
    {
        return tensor_flops == 0 && cuda_flops == 0 && mem_bytes() == 0;
    }
};

/// `count` thread blocks with identical work.
struct TbGroup {
    TbWork work;
    index_t count = 1;
};

struct KernelLaunch {
    std::string name;
    TbShape shape;
    std::vector<TbGroup> tbs;

    index_t num_tbs() const;
    TbWork total_work() const;

    /// Appends `count` identical blocks, merging with the tail group when
    /// the work matches exactly (keeps descriptors compact for the large
    /// regular kernels).
    void add_tb(const TbWork &work, index_t count = 1);
};

/// Thread blocks of `shape` that fit on one SM concurrently under the CUDA
/// occupancy rules (block slots, threads, registers, shared memory).
/// Always at least 1 (a block that oversubscribes an SM still runs alone;
/// callers keep shapes within device limits).
int occupancy_per_sm(const DeviceSpec &device, const TbShape &shape);

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_LAUNCH_H_
