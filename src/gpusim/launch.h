#ifndef MULTIGRAIN_GPUSIM_LAUNCH_H_
#define MULTIGRAIN_GPUSIM_LAUNCH_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/util.h"
#include "gpusim/device.h"

/// Kernel-launch descriptors: the interface between kernels and the
/// execution engine.
///
/// A kernel's plan() walks the same sparse metadata its functional run()
/// walks and emits one TbWork per thread block (or a TbGroup of identical
/// blocks). The engine then executes the launch against a DeviceSpec.
namespace multigrain::sim {

/// Resource footprint of one thread block; drives the occupancy limit.
struct TbShape {
    int threads = 128;
    int smem_bytes = 0;
    int regs_per_thread = 32;
};

/// Work carried by one thread block. DRAM bytes are *actual* device-memory
/// traffic the block induces (after the kernel's reuse/overfetch model),
/// matching what a profiler reports; l2_bytes are additional accesses
/// served by the L2 cache (re-touches of resident data). Flops are useful
/// arithmetic on each pipe.
struct TbWork {
    double tensor_flops = 0;
    double cuda_flops = 0;
    double dram_read_bytes = 0;
    double dram_write_bytes = 0;
    double l2_bytes = 0;

    TbWork &operator+=(const TbWork &other)
    {
        tensor_flops += other.tensor_flops;
        cuda_flops += other.cuda_flops;
        dram_read_bytes += other.dram_read_bytes;
        dram_write_bytes += other.dram_write_bytes;
        l2_bytes += other.l2_bytes;
        return *this;
    }
    double dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
    /// Everything that moves through the L2 slice (DRAM fills + L2 hits).
    double mem_bytes() const { return dram_bytes() + l2_bytes; }
    bool empty() const
    {
        return tensor_flops == 0 && cuda_flops == 0 && mem_bytes() == 0;
    }
};

/// `count` thread blocks with identical work.
struct TbGroup {
    TbWork work;
    index_t count = 1;
};

// ---- Dataflow annotations (the mglint hazard model's vocabulary) --------

/// Interned handle for a logical tensor a kernel touches ("q", "%s.fine",
/// "dv", ...). The table is process-wide and append-only; ids are stable
/// for the life of the process.
using BufferId = int;
inline constexpr BufferId kNoBuffer = -1;

/// Interns `name` (returning the existing id when already known). Names
/// beginning with '%' are *plan-local*: they denote intermediates private
/// to one captured graph (the S/P score matrices, the dP gradients) and
/// are re-namespaced when a graph is appended into a larger one, so two
/// co-scheduled copies of the same plan never alias. All other names are
/// shared interface tensors (q/k/v/o, dq/dk/dv, activations).
BufferId intern_buffer(const std::string &name);

/// The name `id` was interned under; throws Error on an unknown id.
std::string buffer_name(BufferId id);

/// True for '%'-prefixed (plan-local) buffer names.
bool buffer_is_plan_local(BufferId id);

// Definedness declarations a plan site can attach to an annotated buffer
// reference. They state dataflow facts the graph itself cannot express —
// mgcheck (src/core/check.h) consumes them; lint and the memory planner
// ignore them.

/// The buffer is defined before the graph starts (an inbound tensor: a
/// stashed forward activation read by the backward graph, a mask built at
/// setup time). Reads need no in-graph dominating write.
inline constexpr unsigned kBufInput = 1U << 0;
/// The buffer is zero-filled at graph entry; accumulating into it without
/// a prior in-graph write is sound.
inline constexpr unsigned kBufZeroInit = 1U << 1;
/// The buffer escapes the graph (a result or a stash consumed by a later
/// graph); a final write with no in-graph reader is not a dead store.
inline constexpr unsigned kBufOutput = 1U << 2;

/// One annotated buffer reference: a name plus the byte size of the
/// region the kernel touches through it. Implicitly convertible from a
/// bare name so legacy `{"q", "k"}` annotation lists keep compiling;
/// bytes == 0 means "unsized" (the memory planner accounts the buffer
/// at zero width but still tracks its live range). `flags` is an OR of
/// kBufInput/kBufZeroInit/kBufOutput definedness declarations.
struct SizedBuffer {
    // NOLINTNEXTLINE(google-explicit-constructor)
    constexpr SizedBuffer(const char *n, std::uint64_t b = 0, unsigned f = 0)
        : name(n), bytes(b), flags(f)
    {
    }
    const char *name;
    std::uint64_t bytes;
    unsigned flags;
};

struct KernelLaunch {
    std::string name;
    TbShape shape;
    std::vector<TbGroup> tbs;

    /// Dataflow annotations: the logical buffers this kernel reads,
    /// writes, and accumulates into (commutative read-modify-write, e.g.
    /// atomic adds into a shared output — two accumulators never conflict
    /// with each other, only with plain readers/writers). Optional: empty
    /// sets mean "not annotated" and the linter treats the kernel as
    /// touching nothing. The execution engine never consults them.
    std::vector<BufferId> reads;
    std::vector<BufferId> writes;
    std::vector<BufferId> accums;

    /// Byte sizes parallel to reads/writes/accums (entry i sizes buffer
    /// i of the matching id vector). Kept as separate vectors so graph
    /// re-namespacing — which rewrites only BufferId vectors — carries
    /// sizes along untouched, and replay (which copies the launch
    /// wholesale) stays byte-identical. 0 = unsized.
    std::vector<std::uint64_t> read_bytes;
    std::vector<std::uint64_t> write_bytes;
    std::vector<std::uint64_t> accum_bytes;

    /// Definedness declarations (OR of kBufInput/kBufZeroInit/kBufOutput),
    /// parallel to reads/writes/accums like the byte vectors. They ride
    /// along unchanged through append()'s re-namespacing, which rewrites
    /// only the BufferId vectors.
    std::vector<unsigned> read_flags;
    std::vector<unsigned> write_flags;
    std::vector<unsigned> accum_flags;

    index_t num_tbs() const;
    TbWork total_work() const;

    /// Appends `count` identical blocks, merging with the tail group when
    /// the work matches exactly (keeps descriptors compact for the large
    /// regular kernels).
    void add_tb(const TbWork &work, index_t count = 1);
};

/// Builder-style annotation helper for plan() call sites:
///   sink.launch(s, annotate(plan_fine_sddmm(...), {{"q", qb}, {"k", kb}},
///                           {{"%s.fine", sb}}));
/// Bare names (`{"q", "k"}`) still work and annotate at zero bytes.
KernelLaunch annotate(KernelLaunch launch,
                      std::initializer_list<SizedBuffer> reads,
                      std::initializer_list<SizedBuffer> writes,
                      std::initializer_list<SizedBuffer> accums = {});

/// Thread blocks of `shape` that fit on one SM concurrently under the CUDA
/// occupancy rules (block slots, threads, registers, shared memory).
/// Always at least 1 (a block that oversubscribes an SM still runs alone;
/// callers keep shapes within device limits).
int occupancy_per_sm(const DeviceSpec &device, const TbShape &shape);

}  // namespace multigrain::sim

#endif  // MULTIGRAIN_GPUSIM_LAUNCH_H_
