#include "gpusim/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/error.h"

namespace multigrain::sim {

namespace {

/// Escapes a string for embedding in a JSON literal.
std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

void
write_chrome_trace(const SimResult &result, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;

    // Lane names: one per stream.
    std::set<int> streams;
    for (const auto &k : result.kernels) {
        streams.insert(k.stream);
    }
    for (const int s : streams) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << s
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"stream " << s
           << "\"}}";
    }

    for (const auto &k : result.kernels) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << k.stream
           << ",\"name\":\"" << json_escape(k.name) << "\",\"ts\":"
           << k.start_us << ",\"dur\":" << k.duration_us()
           << ",\"args\":{\"thread_blocks\":" << k.num_tbs
           << ",\"tensor_gflops\":" << k.work.tensor_flops / 1e9
           << ",\"cuda_gflops\":" << k.work.cuda_flops / 1e9
           << ",\"dram_mb\":" << k.work.dram_bytes() / 1e6
           << ",\"avg_concurrency\":" << k.avg_concurrency << "}}";
    }
    os << "]}";
}

std::string
chrome_trace_json(const SimResult &result)
{
    std::ostringstream os;
    write_chrome_trace(result, os);
    return os.str();
}

void
write_chrome_trace_file(const SimResult &result, const std::string &path)
{
    std::ofstream file(path);
    MG_CHECK(file.good()) << "cannot open trace file " << path;
    write_chrome_trace(result, file);
    file.flush();
    MG_CHECK(file.good()) << "failed writing trace file " << path;
}

}  // namespace multigrain::sim
